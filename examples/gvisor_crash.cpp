// Recreates Appendix A.2.2: the crash-causing open(2) program on gVisor.
//
// The paper's C recreation passes raw arguments through syscall(2):
//
//   // open(&(0x7f0000000000)='/lib/x86_64-Linux-gnu/libc.so.6\x00',
//   //      0x680002, 0x20)
//   int result = syscall(SYS_open, "/lib/x86_64-Linux-gnu/libc.so.6",
//                        0x680002, 0x20);
//
// Here the same program is delivered to a simulated gVisor container; the
// sentry panics on the flag pattern and the container exits — then the same
// call on runC is shown to be harmless, isolating the bug to the runtime.
#include <cstdio>

#include "core/campaign.h"
#include "core/seeds.h"

using namespace torpedo;

namespace {

void run_on(runtime::RuntimeKind rt) {
  core::CampaignConfig config;
  config.runtime = rt;
  config.round_duration = kSecond;
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("gvisor-open-crash"),
      *core::named_seed("gvisor-prog1"),
      *core::named_seed("gvisor-prog2"),
  };
  std::printf("--- runtime %s ---\nprogram under test:\n%s\n",
              std::string(runtime::runtime_name(rt)).c_str(),
              programs[0].serialize().c_str());

  const observer::RoundResult& round = campaign.observer().run_round(programs);
  const exec::RunStats& stats = round.stats[0];
  if (stats.crashed) {
    std::printf("CONTAINER CRASHED: %s\n", stats.crash_message.c_str());
    std::printf("(executions before crash: %llu)\n",
                static_cast<unsigned long long>(stats.executions));
  } else {
    std::printf("no crash; %llu executions, last result: %s (errno %d)\n",
                static_cast<unsigned long long>(stats.executions),
                stats.last_iteration.empty()
                    ? "-"
                    : std::to_string(stats.last_iteration[0].ret).c_str(),
                stats.last_iteration.empty() ? 0
                                             : stats.last_iteration[0].err);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::puts("Appendix A.2.2 recreation: open(2) with flags 0x680002\n");
  run_on(runtime::RuntimeKind::kGvisor);
  run_on(runtime::RuntimeKind::kRunc);
  std::puts(
      "conclusion: the crash is a gVisor sentry bug, not kernel behaviour —\n"
      "\"quitting the container is almost certainly indicative of a bug in\n"
      "the underlying runtime\" (§4.4.1).");
  return 0;
}
