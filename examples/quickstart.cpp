// Quickstart: run the three Appendix A.1.1 programs in runC containers for
// one observed round and print a Table-A.1-style utilization breakdown.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/campaign.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

int main() {
  // The paper's §4.2 setup: 12 hardware threads, 3 fuzzing containers pinned
  // to cores 0-2, each limited to 1 CPU, 5-second rounds.
  core::CampaignConfig config;
  config.runtime = runtime::RuntimeKind::kRunc;
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2"),
  };

  std::puts("Programs under test:");
  for (std::size_t i = 0; i < programs.size(); ++i) {
    std::printf("-- program %zu --\n%s", i, programs[i].serialize().c_str());
  }

  const observer::RoundResult& round = campaign.observer().run_round(programs);
  const observer::Observation& obs = round.observation;

  TextTable table({"CORE", "BUSY", "TOTAL", "PERCENT", "USER", "NICE",
                   "SYSTEM", "IDLE", "IO WAIT", "IRQ", "SOFTIRQ"});
  auto row = [&](const observer::CoreUsage& usage, const std::string& label) {
    table.add_row({label, std::to_string(usage.busy()),
                   std::to_string(usage.total()),
                   format("%.2f", usage.percent()),
                   std::to_string(usage[sim::CpuCategory::kUser]),
                   std::to_string(usage[sim::CpuCategory::kNice]),
                   std::to_string(usage[sim::CpuCategory::kSystem]),
                   std::to_string(usage[sim::CpuCategory::kIdle]),
                   std::to_string(usage[sim::CpuCategory::kIoWait]),
                   std::to_string(usage[sim::CpuCategory::kIrq]),
                   std::to_string(usage[sim::CpuCategory::kSoftirq])});
  };
  for (const observer::CoreUsage& usage : obs.cores)
    row(usage, "cpu" + std::to_string(usage.core));
  row(obs.aggregate, "CPU");
  std::printf("\n%s\n", table.to_string().c_str());

  std::puts("Executor stats:");
  for (std::size_t i = 0; i < round.stats.size(); ++i) {
    const exec::RunStats& s = round.stats[i];
    std::printf(
        "  executor %zu: %llu executions, avg %.1f us, signal %zu, "
        "fatal signals %llu\n",
        i, static_cast<unsigned long long>(s.executions),
        static_cast<double>(s.avg_execution_time) / 1000.0, s.signal.size(),
        static_cast<unsigned long long>(s.fatal_signals));
  }

  std::puts("\nTop (long-lived processes only):");
  for (const observer::ProcSample& p : obs.processes) {
    if (p.cpu_percent < 0.2) continue;
    std::printf("  %-22s %6.2f%%  %s\n", p.name.c_str(), p.cpu_percent,
                p.cgroup.c_str());
  }

  std::printf("\nOracle score (total CPU utilization): %.2f%%\n",
              campaign.cpu_oracle().score(obs));
  for (const auto& v : campaign.cpu_oracle().flag(obs))
    std::printf("  CPU violation: %s\n", v.to_string().c_str());
  for (const auto& v : campaign.io_oracle().flag(obs))
    std::printf("  IO violation: %s\n", v.to_string().c_str());
  return 0;
}
