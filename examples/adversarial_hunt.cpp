// Adversarial hunt: a complete TORPEDO fuzzing campaign against runC.
//
// Loads a Moonshine-like seed corpus, fuzzes it in batches (mutate <->
// shuffle-confirm, Figure 3.3), then runs the post-processing pipeline: flag
// scan over the round log, single-program confirmation, Algorithm-3
// minimization, and trace-based cause classification. Prints a Table-4.2
// style summary.
//
//   ./build/examples/adversarial_hunt [batches] [seeds]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.h"

using namespace torpedo;

int main(int argc, char** argv) {
  core::CampaignConfig config;
  config.batches = argc > 1 ? std::atoi(argv[1]) : 4;
  config.num_seeds = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                              : 12;
  config.round_duration = 3 * kSecond;
  config.fuzzer.cycle_out_rounds = 8;

  std::printf("TORPEDO adversarial hunt: runtime=%s, %d batches, %zu seeds\n\n",
              std::string(runtime::runtime_name(config.runtime)).c_str(),
              config.batches, config.num_seeds);

  core::Campaign campaign(config);
  campaign.load_default_seeds();

  for (int b = 0; b < config.batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    std::printf(
        "batch %d: %2d rounds, score %.1f -> %.1f, %d confirmed improvements, "
        "%d rejected by shuffle%s\n",
        b, batch.rounds, batch.baseline_score, batch.best_score,
        batch.improvements, batch.rejected_confirms,
        batch.saw_crash ? " [container crash]" : "");
  }

  const core::CampaignReport report = campaign.finalize();
  std::printf("\n%d rounds total, %llu program executions, corpus size %zu\n",
              report.rounds,
              static_cast<unsigned long long>(report.executions),
              report.corpus_size);

  std::puts("\n=== adversarial findings ===");
  for (const core::Finding& f : report.findings) {
    std::printf("\n[%s]  cause: %s%s\n  symptoms: %s\n  minimized program:\n",
                f.syscall_list().c_str(), f.cause.c_str(),
                f.is_new ? "  (previously undocumented)" : "",
                f.symptoms.c_str());
    for (const auto line : {f.serialized})
      std::printf("%s", line.c_str());
  }
  if (report.findings.empty()) std::puts("(none — try more batches)");

  if (!report.crashes.empty()) {
    std::puts("\n=== container crashes ===");
    for (const core::CrashFinding& c : report.crashes)
      std::printf("%s (reproduced: %s)\n", c.message.c_str(),
                  c.reproduced ? "yes" : "no");
  }
  return 0;
}
