// Tool-assisted minimization (Algorithm 3) walkthrough.
//
// Starts from a bloated adversarial program (the Table A.3 audit/modprobe
// workload buried in unrelated calls), confirms it violates the CPU oracle,
// then strips it to the minimal call sequence that still produces the same
// violations — demonstrating both the oracle-guided removal and the
// resource-chain preservation the paper describes (§4.1.3).
#include <cstdio>

#include "core/campaign.h"
#include "core/classify.h"
#include "core/minimize.h"
#include "core/seeds.h"

using namespace torpedo;

int main() {
  core::CampaignConfig config;
  config.round_duration = 2 * kSecond;
  core::Campaign campaign(config);

  // The A.1.3 program padded with junk a fuzzer would accumulate.
  auto bloated = prog::Program::parse(
      "r0 = getpid()\n"
      "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n"
      "r1 = socket$netlink(0x10, 0x3, 0x9)\n"
      "uname('')\n"
      "socketpair(0x4, 0x3, 0x7, '')\n"
      "umask(0x12)\n"
      "sendto(r1, 'testing audit system', 0x24, 0x0, '', 0xc)\n"
      "sched_yield()\n");
  if (!bloated) {
    std::puts("internal error: seed failed to parse");
    return 1;
  }

  std::printf("original program (%zu calls):\n%s\n", bloated->size(),
              bloated->serialize().c_str());

  core::SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  const auto before = runner.violations(*bloated);
  std::puts("oracle violations of the original:");
  for (const auto& v : before) std::printf("  %s\n", v.to_string().c_str());
  if (before.empty()) {
    std::puts("  (none — nothing to minimize)");
    return 0;
  }

  const prog::Program minimized = core::minimize(*bloated, runner);
  std::printf("\nminimized program (%zu calls, %d confirmation rounds):\n%s\n",
              minimized.size(), runner.rounds_used(),
              minimized.serialize().c_str());

  const auto after = runner.violations(minimized);
  std::puts("oracle violations of the minimized program:");
  for (const auto& v : after) std::printf("  %s\n", v.to_string().c_str());
  std::printf("violation sets match: %s\n",
              core::same_violations(before, after) ? "yes" : "NO");

  core::CauseClassifier classifier(campaign.kernel());
  const observer::Observation& window = runner.last_round().observation;
  std::printf("classified cause: %s\n",
              classifier
                  .classify(window.window_start, window.window_end,
                            runner.last_round().stats[0])
                  .c_str());
  return 0;
}
