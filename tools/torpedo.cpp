// torpedo — command-line driver for the TORPEDO framework.
//
// Subcommands mirror the paper's workflow:
//
//   torpedo run   — a full fuzzing campaign (syz-manager equivalent):
//                   seeds in, batches of mutate/confirm rounds, then the
//                   flag/minimize/classify pipeline; artifacts land in a
//                   workdir.
//   torpedo exec  — manual execution of one serialized program ("a tool
//                   packaged with SYZKALLER that allows manual execution of
//                   programs in intermediate representation", §4.1): one
//                   observed round plus oracle verdicts.
//   torpedo seeds — materialize the Moonshine-like seed corpus as .prog
//                   files for inspection or editing.
//   torpedo report — offline triage: rebuild a campaign summary from a
//                   workdir's violation bundles, metrics.json, trace.jsonl
//                   and chrome-trace spans, without re-running anything.
//   torpedo stats — campaign introspection: ASCII signal-growth curves from
//                   timeseries.jsonl, the per-operator mutation-efficacy
//                   table, lineage-depth histograms from corpus.txt, and
//                   each finding's ancestry chain.
//   torpedo diff  — cross-campaign triage diff: match clusters across two
//                   workdirs, report new/fixed/persisting findings plus
//                   throughput and mutation-efficacy deltas, and exit
//                   nonzero on regression so CI can gate on it.
//   torpedo selftest — the framework testing itself: randomized invariant
//                   trials against the simulated substrate, fault-injection
//                   campaigns, and deterministic replay of recorded
//                   workdirs (`--replay WORKDIR`).
//
// Argument handling is table-driven: every subcommand declares its flags in
// one SubcommandSpec, which feeds the parser, the per-subcommand --help
// text, and the unknown-flag error path alike.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/campaign.h"
#include "core/provenance.h"
#include "core/seeds.h"
#include "core/sharded.h"
#include "core/workdir.h"
#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "fleet/coordinator.h"
#include "fleet/manifest.h"
#include "fleet/worker.h"
#include "selftest/harness.h"
#include "selftest/replay.h"
#include "telemetry/monitor.h"
#include "telemetry/span.h"
#include "triage/cluster.h"
#include "triage/diff.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "kernel/errno.h"
#include "kernel/syscalls.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

namespace {

// One flag of one subcommand: drives parsing, --help, and error text.
struct FlagSpec {
  const char* name;        // long name, without the leading --
  bool is_switch;          // true: takes no value
  const char* value_name;  // "N", "DIR", ... (nullptr for switches)
  const char* help;
  // Parsed but omitted from --help: internal plumbing flags (the fleet
  // coordinator's worker-mode handshake), not user surface.
  bool hidden = false;
};

struct SubcommandSpec {
  const char* name;
  const char* positional;  // positional-argument summary ("" if none)
  const char* brief;
  std::vector<FlagSpec> flags;
};

const std::vector<SubcommandSpec>& subcommands() {
  static const std::vector<SubcommandSpec> kSpecs = {
      {"run", "",
       "full fuzzing campaign: seeds in, mutate/confirm batches, then the "
       "flag/minimize/classify/triage pipeline",
       {
           {"runtime", false, "NAME", "runc|crun|runsc|kata (default runc)"},
           {"batches", false, "N", "fuzzing batches to run"},
           {"executors", false, "N", "parallel executors per round"},
           {"round-seconds", false, "S", "observer round duration"},
           {"num-seeds", false, "N", "seed programs to generate"},
           {"seeds-dir", false, "DIR", "load .prog seed files from DIR"},
           {"workdir", false, "DIR", "write campaign artifacts to DIR"},
           {"seed", false, "N", "campaign RNG seed"},
           {"v", true, nullptr, "verbose logging"},
           {"trace", false, "FILE", "round-by-round JSONL trace"},
           {"metrics", false, "FILE", "final telemetry counters as JSON"},
           {"chrome-trace", false, "FILE", "phase spans as a Chrome trace"},
           {"monitor-port", false, "N",
            "serve live /metrics, /status, /findings, /clusters"},
           {"watchdog-seconds", false, "S", "stall-detector budget"},
           {"watchdog-abort", true, nullptr, "abort the batch on stall"},
           {"shards", false, "N", "parallel campaign shards"},
           {"no-corpus-sync", true, nullptr, "isolate shard corpora"},
           {"snapshot-exec", true, nullptr, "snapshot fast path (default)"},
           {"no-snapshot-exec", true, nullptr, "cold boot per program"},
           // Fleet worker mode: set by the coordinator's fork/exec, never by
           // hand. The worker re-derives its exact config from the fleet
           // manifest, so no campaign flag round-trips lossily through the
           // command line.
           {"fleet-socket", false, "PATH", "coordinator socket", true},
           {"fleet-worker", false, "K", "worker index", true},
           {"fleet-manifest", false, "FILE", "fleet manifest", true},
       }},
      {"fleet", "",
       "distributed campaign: coordinator + N worker processes trading "
       "corpus over a socket; merged workdir",
       {
           {"workers", false, "N", "worker processes (default 2)"},
           {"manifest", false, "FILE",
            "experiment-matrix manifest (overrides the flags below)"},
           {"workdir", false, "DIR", "merged workdir (required)"},
           {"max-restarts", false, "N",
            "restarts per crashed worker (default 2)"},
           {"monitor-port", false, "N",
            "coordinator /metrics aggregation + /fleet status"},
           {"worker-monitor", true, nullptr,
            "give each worker an ephemeral /metrics port"},
           {"stall-seconds", false, "S",
            "heartbeat age marking a worker stalled (default 60)"},
           {"runtime", false, "NAME", "runc|crun|runsc|kata (default runc)"},
           {"batches", false, "N", "fuzzing batches per worker"},
           {"executors", false, "N", "parallel executors per round"},
           {"round-seconds", false, "S", "observer round duration"},
           {"num-seeds", false, "N", "seed programs to generate"},
           {"seeds-dir", false, "DIR", "load .prog seed files from DIR"},
           {"seed", false, "N", "base RNG seed (worker k gets a mix)"},
           {"snapshot-exec", true, nullptr, "snapshot fast path (default)"},
           {"no-snapshot-exec", true, nullptr, "cold boot per program"},
           {"v", true, nullptr, "verbose logging"},
       }},
      {"exec", "FILE.prog",
       "manual execution of one serialized program: one observed round plus "
       "oracle verdicts",
       {
           {"runtime", false, "NAME", "runc|crun|runsc|kata (default runc)"},
           {"round-seconds", false, "S", "observer round duration"},
           {"executors", false, "N", "parallel executors"},
           {"seed", false, "N", "RNG seed"},
           {"snapshot-exec", true, nullptr, "snapshot fast path (default)"},
           {"no-snapshot-exec", true, nullptr, "cold boot per program"},
       }},
      {"seeds", "",
       "materialize the Moonshine-like seed corpus as .prog files",
       {
           {"out", false, "DIR", "output directory (default seeds)"},
           {"count", false, "N", "seeds to write (default 200)"},
       }},
      {"report", "WORKDIR",
       "offline triage: findings, clusters, lineage and metrics from a "
       "recorded workdir",
       {
           {"json", true, nullptr, "machine-readable output"},
       }},
      {"stats", "WORKDIR",
       "campaign introspection: growth curves, efficacy, lineage, clusters",
       {}},
      {"diff", "WORKDIR_A WORKDIR_B",
       "cross-campaign diff: new/fixed/persisting clusters plus throughput "
       "and efficacy deltas; exits 2 on regression",
       {
           {"json", true, nullptr, "machine-readable output"},
           {"similarity", false, "X",
            "cluster match threshold (default 0.60)"},
           {"severity-regression", false, "X",
            "severity rise counting as regression (default 5)"},
           {"max-throughput-drop", false, "PCT",
            "also gate on throughput drops beyond PCT"},
       }},
      {"selftest", "",
       "the framework testing itself: invariant trials, fault injection, "
       "workdir replay",
       {
           {"trials", false, "N", "randomized trials per pillar"},
           {"seed", false, "N", "trial RNG seed"},
           {"scratch", false, "DIR", "scratch directory"},
           {"keep-scratch", true, nullptr, "keep scratch on success"},
           {"report", false, "FILE", "JSON report path"},
           {"json", true, nullptr, "print the JSON report"},
           {"v", true, nullptr, "verbose logging"},
           {"only", false, "PILLAR", "invariants|faults|replay"},
           {"replay", false, "WORKDIR",
            "replay one recorded workdir and diff every artifact"},
       }},
  };
  return kSpecs;
}

int usage(FILE* out = stderr) {
  std::fputs("usage: torpedo <command> [flags] [args]\n\ncommands:\n", out);
  for (const SubcommandSpec& spec : subcommands())
    std::fprintf(out, "  %-9s %-21s %s\n", spec.name, spec.positional,
                 spec.brief);
  std::fputs("\nrun 'torpedo <command> --help' for that command's flags\n",
             out);
  return out == stderr ? 2 : 0;
}

int subcommand_help(const SubcommandSpec& spec) {
  std::printf("usage: torpedo %s%s%s%s\n\n%s\n", spec.name,
              spec.flags.empty() ? "" : " [flags]",
              *spec.positional ? " " : "", spec.positional, spec.brief);
  if (!spec.flags.empty()) {
    std::printf("\nflags:\n");
    for (const FlagSpec& flag : spec.flags) {
      if (flag.hidden) continue;
      std::string left = std::string("--") + flag.name;
      if (!flag.is_switch && flag.value_name != nullptr)
        left += std::string(" ") + flag.value_name;
      std::printf("  %-26s %s\n", left.c_str(), flag.help);
    }
  }
  return 0;
}

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;
  bool help = false;

  std::optional<std::string> get(const std::string& name) const {
    for (const auto& [k, v] : options)
      if (k == name) return v;
    return std::nullopt;
  }
  bool has(const std::string& name) const { return get(name).has_value(); }
  long num(const std::string& name, long fallback) const {
    auto v = get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }
  double fnum(const std::string& name, double fallback) const {
    auto v = get(name);
    return v ? std::atof(v->c_str()) : fallback;
  }
};

// Parses against the subcommand's spec: switches take no value, unknown
// flags share one error path, --help/-h anywhere prints the command's help.
std::optional<Args> parse_args(int argc, char** argv,
                               const SubcommandSpec& spec) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--") && !(arg.size() == 2 && arg[0] == '-')) {
      args.positional.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(arg[1] == '-' ? 2 : 1);
    if (name == "help" || name == "h") {
      args.help = true;
      continue;
    }
    const FlagSpec* flag = nullptr;
    for (const FlagSpec& f : spec.flags)
      if (name == f.name) {
        flag = &f;
        break;
      }
    if (flag == nullptr) {
      std::fprintf(
          stderr,
          "unknown flag --%s for 'torpedo %s' (see 'torpedo %s --help')\n",
          name.c_str(), spec.name, spec.name);
      return std::nullopt;
    }
    if (flag->is_switch) {
      args.options.emplace_back(name, "1");
    } else if (i + 1 < argc) {
      args.options.emplace_back(name, argv[++i]);
    } else {
      std::fprintf(stderr, "missing value for --%s (torpedo %s)\n",
                   name.c_str(), spec.name);
      return std::nullopt;
    }
  }
  return args;
}

std::optional<core::CampaignConfig> campaign_config(const Args& args) {
  core::CampaignConfig config;
  if (auto rt = args.get("runtime")) {
    auto kind = runtime::runtime_from_name(*rt);
    if (!kind) {
      std::fprintf(stderr, "unknown runtime: %s\n", rt->c_str());
      return std::nullopt;
    }
    config.runtime = *kind;
  }
  config.batches = static_cast<int>(args.num("batches", config.batches));
  config.num_executors =
      static_cast<int>(args.num("executors", config.num_executors));
  config.round_duration = seconds(static_cast<double>(
      args.num("round-seconds", 5)));
  config.num_seeds = static_cast<std::size_t>(
      args.num("num-seeds", static_cast<long>(config.num_seeds)));
  config.seed = static_cast<std::uint64_t>(args.num("seed", 0x7095ED0));
  // Default on; --no-snapshot-exec selects the cold boot-per-program path
  // (same artifacts byte for byte, just slower).
  if (args.has("no-snapshot-exec")) config.snapshot_exec = false;
  return config;
}

// Uninstalls the process-wide span tracer on every exit path: the tracer is
// a stack object in cmd_run, so it must be detached before it is destroyed.
struct SpanGuard {
  ~SpanGuard() { telemetry::set_spans(nullptr); }
};

// Same contract for the process-wide syscall profile.
struct ProfileGuard {
  ~ProfileGuard() { feedback::set_syscall_profile(nullptr); }
};

// ... and for the process-wide mutation-efficacy profiler.
struct EfficacyGuard {
  ~EfficacyGuard() { feedback::set_mutation_efficacy(nullptr); }
};

// `torpedo run --shards N` for N > 1: a ShardedCampaign fleet instead of one
// Campaign. Per-shard observability (live status, heartbeat, trace sink,
// watchdog) is wired on each shard's worker thread via the shard hooks; the
// monitor aggregates everything under {shard="k"} labels. Workdir artifacts
// are the deterministic merged report/corpus.
int cmd_run_sharded(const Args& args, const core::CampaignConfig& config,
                    int shards) {
  feedback::SyscallProfile profile;
  ProfileGuard profile_guard;
  feedback::set_syscall_profile(&profile);
  feedback::MutationEfficacy efficacy;
  EfficacyGuard efficacy_guard;
  feedback::set_mutation_efficacy(&efficacy);

  core::ShardedConfig sharded_config;
  sharded_config.base = config;
  sharded_config.shards = shards;
  sharded_config.corpus_sync = !args.has("no-corpus-sync");
  core::ShardedCampaign sharded(sharded_config);

  if (auto dir = args.get("seeds-dir")) {
    std::vector<std::string> errors;
    auto seeds = core::load_seed_files(*dir, &errors);
    for (const std::string& e : errors)
      std::fprintf(stderr, "warning: %s\n", e.c_str());
    std::printf("loaded %zu seeds from %s\n", seeds.size(), dir->c_str());
    sharded.set_seeds(std::move(seeds));
  }

  // Per-shard observability slots. deques: these types hold mutexes/atomics
  // and their addresses are wired into campaigns and the monitor.
  std::deque<telemetry::LiveStatus> statuses;
  std::deque<telemetry::Watchdog> watchdogs;
  std::deque<telemetry::HeartbeatWriter> heartbeats;
  std::deque<telemetry::TraceSink> traces;
  // The process-wide span tracer is single-writer, so each shard thread gets
  // its own tracer via the thread-local override; finalize merges them into
  // one Chrome trace with pid = shard.
  std::deque<telemetry::SpanTracer> tracers;
  std::deque<telemetry::TimeSeriesRecorder> timeseries;
  const long watchdog_seconds = args.num("watchdog-seconds", 0);
  const auto workdir = args.get("workdir");
  const auto trace_path = args.get("trace");
  const auto chrome_trace = args.get("chrome-trace");

  // "foo.jsonl" -> "foo.shard-3.jsonl"
  auto shard_file = [](const std::string& base, int shard) {
    const std::filesystem::path p(base);
    std::filesystem::path out = p.parent_path() / p.stem();
    out += ".shard-" + std::to_string(shard);
    out += p.extension();
    return out.string();
  };
  auto ensure_parent = [](const std::string& path) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
  };

  for (int s = 0; s < shards; ++s) {
    statuses.emplace_back();
    {
      telemetry::TimeSeriesRecorder::Config ts_config;
      ts_config.shard = s;
      timeseries.emplace_back(ts_config);
    }
    if (chrome_trace) tracers.emplace_back();
    if (watchdog_seconds > 0) {
      telemetry::Watchdog::Config wd_config;
      wd_config.stall_budget_wall_ns =
          static_cast<Nanos>(watchdog_seconds) * kSecond;
      wd_config.abort_on_stall = args.has("watchdog-abort");
      watchdogs.emplace_back(wd_config);
    }
    if (workdir)
      heartbeats.emplace_back(std::filesystem::path(*workdir) /
                              format("heartbeat.shard-%d.json", s));
    if (trace_path) {
      const std::string path = shard_file(*trace_path, s);
      ensure_parent(path);
      traces.emplace_back(path);
      if (!traces.back().ok()) {
        std::fprintf(stderr, "cannot open trace file %s\n", path.c_str());
        return 1;
      }
    }
  }

  sharded.set_shard_start_hook([&](int shard, core::Campaign& campaign) {
    campaign.set_live_status(&statuses[static_cast<std::size_t>(shard)]);
    campaign.set_timeseries(&timeseries[static_cast<std::size_t>(shard)]);
    if (!watchdogs.empty())
      campaign.set_watchdog(&watchdogs[static_cast<std::size_t>(shard)]);
    if (!heartbeats.empty())
      campaign.set_heartbeat(&heartbeats[static_cast<std::size_t>(shard)]);
    if (!traces.empty())
      campaign.set_trace_sink(&traces[static_cast<std::size_t>(shard)]);
    if (!tracers.empty()) {
      telemetry::SpanTracer& tracer =
          tracers[static_cast<std::size_t>(shard)];
      tracer.set_sim_clock(
          [](void* ctx) { return static_cast<sim::Host*>(ctx)->now(); },
          &campaign.kernel().host());
      telemetry::set_thread_spans(&tracer);
    }
  });
  std::atomic<Nanos> max_sim_ns{0};
  sharded.set_shard_finish_hook([&](int shard, core::Campaign& campaign) {
    statuses[static_cast<std::size_t>(shard)].set_done();
    if (!tracers.empty()) telemetry::set_thread_spans(nullptr);
    const Nanos sim = campaign.kernel().host().now();
    Nanos cur = max_sim_ns.load(std::memory_order_relaxed);
    while (sim > cur &&
           !max_sim_ns.compare_exchange_weak(cur, sim,
                                             std::memory_order_relaxed)) {
    }
  });

  // Triage snapshot holder: /findings and /clusters serve empty arrays
  // until the merged report is clustered below.
  triage::LiveTriage live_triage;

  std::optional<telemetry::MonitorServer> monitor;
  if (args.has("monitor-port") || watchdog_seconds > 0) {
    telemetry::MonitorServer::Config mon_config;
    mon_config.port = static_cast<int>(args.num("monitor-port", 0));
    monitor.emplace(mon_config);
    for (int s = 0; s < shards; ++s)
      monitor->add_shard(s, &statuses[static_cast<std::size_t>(s)],
                         watchdogs.empty()
                             ? nullptr
                             : &watchdogs[static_cast<std::size_t>(s)]);
    monitor->set_extra_metrics([&profile, &efficacy, &live_triage] {
      return profile.to_prometheus(&kernel::sysno_name) +
             efficacy.to_prometheus() + live_triage.to_prometheus();
    });
    monitor->add_json_endpoint("/findings", [&live_triage](
                                                std::string_view p) {
      return live_triage.handle(p);
    });
    monitor->add_json_endpoint("/clusters", [&live_triage](
                                                std::string_view p) {
      return live_triage.handle(p);
    });
    if (!monitor->start()) {
      std::fprintf(stderr, "cannot bind monitor to 127.0.0.1:%d\n",
                   mon_config.port);
      return 1;
    }
    // Ephemeral-port discovery, as in the sequential path: the bound port
    // lands in every shard's heartbeat stamps.
    for (telemetry::HeartbeatWriter& hb : heartbeats)
      hb.set_monitor_port(monitor->port());
    std::printf("monitor: http://127.0.0.1:%d/metrics (and /status, "
                "/healthz, /findings, /clusters; per-shard series under "
                "{shard=\"k\"})\n",
                monitor->port());
  }

  std::printf("fuzzing: runtime=%s executors=%d T=%llds batches=%d "
              "shards=%d sync=%s\n",
              std::string(runtime::runtime_name(config.runtime)).c_str(),
              config.num_executors,
              static_cast<long long>(config.round_duration / kSecond),
              config.batches, shards,
              sharded_config.corpus_sync ? "on" : "off");

  core::CampaignReport report;
  try {
    report = sharded.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    if (monitor) monitor->stop();
    return 1;
  }
  // Cluster the merged report: the sort-by-hash pass inside makes the
  // outcome independent of shard interleaving, so shards=N matches the
  // equivalent unsharded campaign byte for byte.
  const triage::TriageResult tri =
      triage::cluster_report(report, runtime::runtime_name(config.runtime));
  live_triage.install(tri);

  for (int s = 0; s < shards; ++s) {
    const core::CampaignReport& r =
        sharded.shard_reports()[static_cast<std::size_t>(s)];
    std::printf("shard %d: rounds=%d executions=%llu findings=%zu "
                "crashes=%zu\n",
                s, r.rounds, static_cast<unsigned long long>(r.executions),
                r.findings.size(), r.crashes.size());
  }
  const feedback::CorpusHub::Stats hub_stats = sharded.hub().stats();
  std::printf("hub: epochs=%llu published=%llu unique=%llu merged=%llu "
              "pulled=%llu denylist=%zu\n",
              static_cast<unsigned long long>(hub_stats.epochs),
              static_cast<unsigned long long>(hub_stats.published),
              static_cast<unsigned long long>(hub_stats.unique),
              static_cast<unsigned long long>(hub_stats.merged),
              static_cast<unsigned long long>(hub_stats.pulled),
              hub_stats.denylist_size);

  std::printf("\n%zu findings, %zu crashes over %d rounds (%llu executions)\n",
              report.findings.size(), report.crashes.size(), report.rounds,
              static_cast<unsigned long long>(report.executions));
  for (const core::Finding& f : report.findings)
    std::printf("  [shard %d] [%s] %s%s\n", f.shard,
                f.syscall_list().c_str(), f.cause.c_str(),
                f.is_new ? " (NEW)" : "");
  for (const core::CrashFinding& c : report.crashes)
    std::printf("  CRASH: [shard %d] %s\n", c.shard, c.message.c_str());
  if (!tri.clusters.empty())
    std::printf("%s", triage::cluster_table(tri).c_str());

  if (monitor) monitor->stop();

  if (workdir) {
    const std::filesystem::path dir(*workdir);
    core::save_corpus(dir / "corpus.txt", sharded.merged_corpus());
    core::save_report(dir / "report.txt", report);
    triage::save_clusters(dir / "clusters.json", tri);
    const std::size_t bundles = core::write_violation_bundles(dir, report);
    {
      std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
      if (out) out << profile.to_json(&kernel::sysno_name) << "\n";
    }
    std::vector<const telemetry::TimeSeriesRecorder*> recorder_ptrs;
    for (const telemetry::TimeSeriesRecorder& r : timeseries)
      recorder_ptrs.push_back(&r);
    core::save_timeseries(dir / "timeseries.jsonl", recorder_ptrs);
    core::save_mutation_efficacy(dir / "mutation_efficacy.json", efficacy);
    core::CampaignManifest manifest = core::CampaignManifest::from_config(config);
    manifest.shards = shards;
    manifest.corpus_sync = sharded_config.corpus_sync;
    if (auto seeds_dir = args.get("seeds-dir")) manifest.seeds_dir = *seeds_dir;
    core::save_campaign_manifest(dir / "campaign.json", manifest);
    std::printf("workdir written: %s (corpus.txt, report.txt, "
                "clusters.json, syscall_profile.json, timeseries.jsonl, "
                "mutation_efficacy.json, campaign.json, %zu violation "
                "bundle%s)\n",
                dir.string().c_str(), bundles, bundles == 1 ? "" : "s");
  }

  if (auto path = args.get("metrics")) {
    ensure_parent(*path);
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file %s\n", path->c_str());
      return 1;
    }
    out << telemetry::global().to_json(
               max_sim_ns.load(std::memory_order_relaxed))
        << "\n";
    std::printf("metrics written: %s\n", path->c_str());
  }
  if (trace_path) {
    std::uint64_t records = 0;
    for (const telemetry::TraceSink& t : traces) records += t.records();
    std::printf("traces written: %s (%d shard files, %llu records)\n",
                shard_file(*trace_path, 0).c_str(), shards,
                static_cast<unsigned long long>(records));
  }
  if (chrome_trace) {
    ensure_parent(*chrome_trace);
    // One file per shard (its own spans, pid = shard) plus a merged trace at
    // the requested path with every shard in its own process lane.
    std::size_t span_count = 0;
    for (int s = 0; s < shards; ++s) {
      const std::string path = shard_file(*chrome_trace, s);
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot open chrome trace file %s\n",
                     path.c_str());
        return 1;
      }
      tracers[static_cast<std::size_t>(s)].write_chrome_trace(out, s);
      span_count += tracers[static_cast<std::size_t>(s)].spans().size();
    }
    std::ofstream out(*chrome_trace, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open chrome trace file %s\n",
                   chrome_trace->c_str());
      return 1;
    }
    std::vector<std::pair<int, const telemetry::SpanTracer*>> lanes;
    for (int s = 0; s < shards; ++s)
      lanes.emplace_back(s, &tracers[static_cast<std::size_t>(s)]);
    telemetry::write_merged_chrome_trace(out, lanes);
    std::printf("chrome trace written: %s (%zu spans across %d shard lanes; "
                "per-shard files %s...)\n",
                chrome_trace->c_str(), span_count, shards,
                shard_file(*chrome_trace, 0).c_str());
  }
  return 0;
}

// `torpedo run --fleet-socket ...`: this process is one worker of a fleet
// coordinator's campaign. Everything about the campaign comes from the fleet
// manifest (the coordinator wrote it next to the merged workdir), so the
// worker runs the exact config the coordinator's replay will re-derive.
int cmd_run_fleet_worker(const Args& args, const std::string& socket_path) {
  const auto manifest_path = args.get("fleet-manifest");
  const auto workdir = args.get("workdir");
  if (!manifest_path || !workdir || !args.has("fleet-worker")) {
    std::fprintf(stderr, "--fleet-socket requires --fleet-worker, "
                 "--fleet-manifest and --workdir\n");
    return 2;
  }
  auto manifest = fleet::load_manifest(*manifest_path);
  if (!manifest) {
    std::fprintf(stderr, "cannot load fleet manifest %s\n",
                 manifest_path->c_str());
    return 1;
  }
  const int worker = static_cast<int>(args.num("fleet-worker", 0));
  if (worker < 0 || worker >= manifest->workers) {
    std::fprintf(stderr, "worker index %d out of range (fleet of %d)\n",
                 worker, manifest->workers);
    return 2;
  }
  fleet::WorkerOptions options;
  options.worker_id = worker;
  options.socket_path = socket_path;
  options.config = manifest->worker_config(worker);
  options.workdir = *workdir;
  options.seeds_dir = manifest->defaults.seeds_dir;
  options.cpuset = manifest->worker_cpuset(worker);
  if (args.has("monitor-port"))
    options.monitor_port = static_cast<int>(args.num("monitor-port", 0));
  options.verbose = args.has("v");
  return fleet::worker_main(options);
}

int cmd_run(const Args& args) {
  if (args.has("v")) set_log_level(LogLevel::kInfo);
  if (auto socket_path = args.get("fleet-socket"))
    return cmd_run_fleet_worker(args, *socket_path);
  auto config = campaign_config(args);
  if (!config) return 2;

  // --shards N forks off into the sharded driver; --shards 1 (the default)
  // stays on this exact code path, artifacts byte-identical to before the
  // flag existed.
  const int shards = static_cast<int>(args.num("shards", 1));
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (shards > 1) return cmd_run_sharded(args, *config, shards);

  // The per-syscall attribution profiler is always on for `run`: relaxed
  // single-writer counters cost nothing measurable and /metrics + the report
  // table both want them.
  feedback::SyscallProfile profile;
  ProfileGuard profile_guard;
  feedback::set_syscall_profile(&profile);
  // Likewise the per-operator efficacy profiler and the signal-growth
  // recorder: always-on introspection, pointer-check cheap.
  feedback::MutationEfficacy efficacy;
  EfficacyGuard efficacy_guard;
  feedback::set_mutation_efficacy(&efficacy);

  core::Campaign campaign(*config);

  telemetry::TimeSeriesRecorder timeseries;
  campaign.set_timeseries(&timeseries);

  const long watchdog_seconds = args.num("watchdog-seconds", 0);
  telemetry::SpanTracer tracer;
  SpanGuard span_guard;
  // The watchdog wants the open span stack in its stall log, so it implies
  // the tracer even without --chrome-trace.
  if (args.has("chrome-trace") || watchdog_seconds > 0) {
    tracer.set_sim_clock(
        [](void* ctx) { return static_cast<sim::Host*>(ctx)->now(); },
        &campaign.kernel().host());
    telemetry::set_spans(&tracer);
  }

  telemetry::LiveStatus status;
  campaign.set_live_status(&status);

  std::optional<telemetry::HeartbeatWriter> heartbeat;
  if (auto workdir = args.get("workdir")) {
    heartbeat.emplace(std::filesystem::path(*workdir) / "heartbeat.json");
    campaign.set_heartbeat(&*heartbeat);
  }

  std::optional<telemetry::Watchdog> watchdog;
  if (watchdog_seconds > 0) {
    telemetry::Watchdog::Config wd_config;
    wd_config.stall_budget_wall_ns =
        static_cast<Nanos>(watchdog_seconds) * kSecond;
    wd_config.abort_on_stall = args.has("watchdog-abort");
    watchdog.emplace(wd_config);
    campaign.set_watchdog(&*watchdog);
  }

  // Triage snapshot holder: /findings and /clusters serve empty arrays
  // until finalize() installs the clustered result.
  triage::LiveTriage live_triage;

  // The watchdog samples progress on the monitor thread, so asking for a
  // watchdog without --monitor-port still starts the server (ephemeral
  // port).
  std::optional<telemetry::MonitorServer> monitor;
  if (args.has("monitor-port") || watchdog) {
    telemetry::MonitorServer::Config mon_config;
    mon_config.port = static_cast<int>(args.num("monitor-port", 0));
    monitor.emplace(mon_config);
    monitor->set_status(&status);
    if (watchdog) monitor->set_watchdog(&*watchdog);
    monitor->set_extra_metrics([&profile, &efficacy, &live_triage] {
      return profile.to_prometheus(&kernel::sysno_name) +
             efficacy.to_prometheus() + live_triage.to_prometheus();
    });
    monitor->add_json_endpoint("/findings", [&live_triage](
                                                std::string_view p) {
      return live_triage.handle(p);
    });
    monitor->add_json_endpoint("/clusters", [&live_triage](
                                                std::string_view p) {
      return live_triage.handle(p);
    });
    if (!monitor->start()) {
      std::fprintf(stderr, "cannot bind monitor to 127.0.0.1:%d\n",
                   mon_config.port);
      return 1;
    }
    // --monitor-port 0 binds an ephemeral port; record the actual port in
    // every heartbeat stamp so external tooling can discover the endpoint.
    if (heartbeat) heartbeat->set_monitor_port(monitor->port());
    std::printf("monitor: http://127.0.0.1:%d/metrics (and /status, "
                "/healthz, /findings, /clusters)\n",
                monitor->port());
  }

  // Output files may point into a not-yet-created workdir.
  auto ensure_parent = [](const std::string& path) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
  };

  std::optional<telemetry::TraceSink> trace;
  if (auto path = args.get("trace")) {
    ensure_parent(*path);
    trace.emplace(*path);
    if (!trace->ok()) {
      std::fprintf(stderr, "cannot open trace file %s\n", path->c_str());
      return 1;
    }
    campaign.set_trace_sink(&*trace);
  }

  if (auto dir = args.get("seeds-dir")) {
    std::vector<std::string> errors;
    auto seeds = core::load_seed_files(*dir, &errors);
    for (const std::string& e : errors)
      std::fprintf(stderr, "warning: %s\n", e.c_str());
    std::printf("loaded %zu seeds from %s\n", seeds.size(), dir->c_str());
    campaign.load_seeds(std::move(seeds));
  } else {
    campaign.load_default_seeds();
  }

  std::printf("fuzzing: runtime=%s executors=%d T=%llds batches=%d\n",
              std::string(runtime::runtime_name(config->runtime)).c_str(),
              config->num_executors,
              static_cast<long long>(config->round_duration / kSecond),
              config->batches);

  for (int b = 0; b < config->batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    std::printf("batch %2d: rounds=%2d score %.1f -> %.1f (+%d confirmed)%s\n",
                b, batch.rounds, batch.baseline_score, batch.best_score,
                batch.improvements, batch.saw_crash ? " [crash]" : "");
  }
  const core::CampaignReport report = campaign.finalize();
  // Cluster the findings while the provenance records are still in memory;
  // the same result feeds the live endpoints, the stdout table, and
  // workdir/clusters.json.
  const triage::TriageResult tri = triage::cluster_report(
      report, runtime::runtime_name(config->runtime));
  live_triage.install(tri);

  std::printf("\n%zu findings, %zu crashes over %d rounds (%llu executions)\n",
              report.findings.size(), report.crashes.size(), report.rounds,
              static_cast<unsigned long long>(report.executions));
  for (const core::Finding& f : report.findings)
    std::printf("  [%s] %s%s\n", f.syscall_list().c_str(), f.cause.c_str(),
                f.is_new ? " (NEW)" : "");
  for (const core::CrashFinding& c : report.crashes)
    std::printf("  CRASH: %s\n", c.message.c_str());
  if (!tri.clusters.empty())
    std::printf("%s", triage::cluster_table(tri).c_str());

  if (monitor) monitor->stop();

  if (auto workdir = args.get("workdir")) {
    const std::filesystem::path dir(*workdir);
    core::save_corpus(dir / "corpus.txt", campaign.corpus());
    core::save_report(dir / "report.txt", report);
    triage::save_clusters(dir / "clusters.json", tri);
    const std::size_t bundles = core::write_violation_bundles(dir, report);
    {
      std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
      if (out) out << profile.to_json(&kernel::sysno_name) << "\n";
    }
    const telemetry::TimeSeriesRecorder* recorder_ptrs[] = {&timeseries};
    core::save_timeseries(dir / "timeseries.jsonl", recorder_ptrs);
    core::save_mutation_efficacy(dir / "mutation_efficacy.json", efficacy);
    // The manifest makes the workdir replayable: `torpedo selftest --replay`
    // re-executes the campaign from it and diffs every artifact.
    core::CampaignManifest manifest =
        core::CampaignManifest::from_config(*config);
    if (auto seeds_dir = args.get("seeds-dir")) manifest.seeds_dir = *seeds_dir;
    core::save_campaign_manifest(dir / "campaign.json", manifest);
    std::printf("workdir written: %s (corpus.txt, report.txt, "
                "clusters.json, syscall_profile.json, timeseries.jsonl, "
                "mutation_efficacy.json, campaign.json, %zu violation "
                "bundle%s)\n",
                dir.string().c_str(), bundles, bundles == 1 ? "" : "s");
  }

  if (auto path = args.get("metrics")) {
    ensure_parent(*path);
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file %s\n", path->c_str());
      return 1;
    }
    out << telemetry::global().to_json(campaign.kernel().host().now()) << "\n";
    std::printf("metrics written: %s\n", path->c_str());
  }
  if (trace) {
    std::printf("trace written: %s (%llu records)\n",
                args.get("trace")->c_str(),
                static_cast<unsigned long long>(trace->records()));
  }
  if (auto path = args.get("chrome-trace")) {
    ensure_parent(*path);
    std::ofstream out(*path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open chrome trace file %s\n",
                   path->c_str());
      return 1;
    }
    tracer.write_chrome_trace(out);
    std::printf("chrome trace written: %s (%zu spans; open in Perfetto or "
                "chrome://tracing)\n",
                path->c_str(), tracer.spans().size());
  }
  return 0;
}

int cmd_exec(const Args& args) {
  if (args.positional.size() != 1) return usage();
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.positional[0].c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto program = prog::Program::parse(buffer.str());
  if (!program || program->empty()) {
    std::fprintf(stderr, "parse error in %s\n", args.positional[0].c_str());
    return 1;
  }

  auto config = campaign_config(args);
  if (!config) return 2;
  core::Campaign campaign(*config);
  core::SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  const auto cpu_violations = runner.violations(*program);
  const observer::RoundResult& rr = runner.last_round();

  std::printf("program:\n%s\n", program->serialize().c_str());
  const exec::RunStats& stats = rr.stats[0];
  std::printf("executions: %llu, avg %.1f us, fatal signals %llu%s\n",
              static_cast<unsigned long long>(stats.executions),
              static_cast<double>(stats.avg_execution_time) / 1000.0,
              static_cast<unsigned long long>(stats.fatal_signals),
              stats.crashed ? " [CONTAINER CRASHED]" : "");
  if (stats.crashed) std::printf("crash: %s\n", stats.crash_message.c_str());
  for (const exec::CallRecord& call : stats.last_iteration)
    std::printf("  %s -> %lld (%s)\n",
                std::string(kernel::sysno_name(call.nr)).c_str(),
                static_cast<long long>(call.ret),
                std::string(kernel::errno_name(call.err)).c_str());

  std::printf("oracle score: %.2f%%\n",
              campaign.cpu_oracle().score(rr.observation));
  for (const auto& v : cpu_violations)
    std::printf("CPU violation: %s\n", v.to_string().c_str());
  for (const auto& v : campaign.io_oracle().flag(rr.observation))
    std::printf("IO violation: %s\n", v.to_string().c_str());
  core::CauseClassifier classifier(campaign.kernel());
  std::printf("trace classification: %s\n",
              classifier
                  .classify(rr.observation.window_start,
                            rr.observation.window_end, stats)
                  .c_str());
  return 0;
}

// --- torpedo report ---------------------------------------------------------

using JsonObject = std::map<std::string, telemetry::JsonValue>;

std::optional<std::string> slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string str_field(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? std::string() : it->second.text;
}

double num_field(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end()) return 0;
  const telemetry::JsonValue& v = it->second;
  return v.is_integer ? static_cast<double>(v.integer) : v.number;
}

// Renders a vector of rendered JSON objects as a JSON array.
std::string json_array(const std::vector<std::string>& rendered) {
  std::string out = "[";
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i) out += ",";
    out += rendered[i];
  }
  return out + "]";
}

// Findings table + dedup from violations/NNN/bundle.json. In json mode the
// same rows land under out["findings"] / out["by_heuristic"] instead of
// stdout.
void report_bundles(const std::filesystem::path& workdir, bool json,
                    telemetry::JsonDict& out) {
  namespace fs = std::filesystem;
  std::vector<fs::path> bundle_files;
  const fs::path violations = workdir / "violations";
  if (fs::exists(violations))
    for (const auto& entry : fs::directory_iterator(violations))
      if (fs::exists(entry.path() / "bundle.json"))
        bundle_files.push_back(entry.path() / "bundle.json");
  std::sort(bundle_files.begin(), bundle_files.end());

  TextTable table({"bundle", "syscalls", "heuristics", "cause", "round",
                   "score"});
  std::vector<std::string> finding_objects;
  std::map<std::string, int> by_heuristic;
  std::set<std::string> signatures;
  int duplicates = 0;
  for (const fs::path& file : bundle_files) {
    const auto text = slurp(file);
    const auto obj = text ? telemetry::parse_json_object(*text) : std::nullopt;
    if (!obj) {
      std::fprintf(stderr, "warning: unparseable bundle %s\n",
                   file.string().c_str());
      continue;
    }
    // Dedup by program signature: two bundles minimizing to the same program
    // are one finding.
    const std::string hash = str_field(*obj, "program_hash");
    if (!hash.empty() && !signatures.insert(hash).second) {
      ++duplicates;
      continue;
    }
    const std::string heuristics = str_field(*obj, "heuristics");
    for (const auto h : split(heuristics, ','))
      if (!trim(h).empty()) by_heuristic[std::string(trim(h))]++;
    table.add_row({format("%03d", static_cast<int>(num_field(*obj, "bundle"))),
                   str_field(*obj, "syscalls"), heuristics,
                   str_field(*obj, "cause"),
                   format("%d", static_cast<int>(
                                    num_field(*obj, "source_round"))),
                   format("%.2f", num_field(*obj, "oracle_score"))});
    finding_objects.push_back(
        telemetry::JsonDict{}
            .set("bundle", static_cast<std::int64_t>(num_field(*obj, "bundle")))
            .set("syscalls", str_field(*obj, "syscalls"))
            .set("heuristics", heuristics)
            .set("cause", str_field(*obj, "cause"))
            .set("source_round",
                 static_cast<std::int64_t>(num_field(*obj, "source_round")))
            .set("oracle_score", num_field(*obj, "oracle_score"))
            .to_string());
  }

  telemetry::JsonDict heuristic_counts;
  for (const auto& [heuristic, n] : by_heuristic)
    heuristic_counts.set(heuristic, n);
  out.set_raw("findings", json_array(finding_objects))
      .set("duplicate_bundles", duplicates)
      .set_raw("by_heuristic", heuristic_counts.to_string());
  if (json) return;

  std::printf("findings: %zu confirmed bundle%s", table.num_rows(),
              table.num_rows() == 1 ? "" : "s");
  if (duplicates)
    std::printf(" (+%d duplicate%s by program signature)", duplicates,
                duplicates == 1 ? "" : "s");
  std::printf("\n");
  if (table.num_rows()) std::printf("\n%s\n", table.to_string().c_str());
  if (!by_heuristic.empty()) {
    TextTable counts({"heuristic", "findings"});
    for (const auto& [heuristic, n] : by_heuristic)
      counts.add_row({heuristic, format("%d", n)});
    std::printf("by heuristic:\n\n%s\n", counts.to_string().c_str());
  }
}

// Campaign totals from metrics.json (written by `run --metrics`).
void report_metrics(const std::filesystem::path& workdir, bool json,
                    telemetry::JsonDict& out) {
  const auto text = slurp(workdir / "metrics.json");
  if (!text) return;
  const auto obj = telemetry::parse_json_object(*text);
  if (!obj) return;
  auto counters_it = obj->find("counters");
  const auto counters =
      counters_it != obj->end()
          ? telemetry::parse_json_object(counters_it->second.text)
          : std::nullopt;
  if (json) {
    telemetry::JsonDict metrics;
    metrics.set("sim_ns",
                static_cast<std::int64_t>(num_field(*obj, "sim_ns")));
    if (counters_it != obj->end() && counters)
      metrics.set_raw("counters", counters_it->second.text);
    out.set_raw("metrics", metrics.to_string());
    return;
  }
  std::printf("metrics.json: sim end %.3f s",
              num_field(*obj, "sim_ns") / 1e9);
  if (counters) {
    for (const char* key :
         {"exec.executions", "fuzzer.batches", "fuzzer.mutations_accepted",
          "oracle.flags", "exec.container_crashes"}) {
      auto it = counters->find(key);
      if (it != counters->end())
        std::printf(", %s=%lld", key,
                    static_cast<long long>(num_field(*counters, key)));
    }
  }
  std::printf("\n");
}

// Round-by-round record counts from trace.jsonl (written by `run --trace`).
void report_round_trace(const std::filesystem::path& workdir, bool json,
                        telemetry::JsonDict& out) {
  std::ifstream in(workdir / "trace.jsonl");
  if (!in) return;
  std::map<std::string, int> by_event;
  std::string line;
  std::size_t records = 0;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    ++records;
    if (auto obj = telemetry::parse_json_object(line))
      by_event[str_field(*obj, "event")]++;
  }
  if (json) {
    telemetry::JsonDict events;
    for (const auto& [event, n] : by_event) events.set(event, n);
    out.set("trace_records", static_cast<std::uint64_t>(records))
        .set_raw("trace_events", events.to_string());
    return;
  }
  std::printf("trace.jsonl: %zu records (", records);
  bool first = true;
  for (const auto& [event, n] : by_event) {
    std::printf("%s%s=%d", first ? "" : ", ", event.c_str(), n);
    first = false;
  }
  std::printf(")\n");
}

// Per-phase time breakdown from the chrome-trace span file, aggregated by
// span name across both clocks.
void report_spans(const std::filesystem::path& workdir, bool json,
                  telemetry::JsonDict& out) {
  const auto text = slurp(workdir / "trace.json");
  if (!text) return;
  const auto events = telemetry::parse_json_array_of_objects(*text);
  if (!events) {
    std::fprintf(stderr, "warning: unparseable chrome trace %s\n",
                 (workdir / "trace.json").string().c_str());
    return;
  }
  struct Phase {
    int count = 0;
    double sim_us = 0;
    double wall_ns = 0;
  };
  std::map<std::string, Phase> phases;
  for (const JsonObject& event : *events) {
    Phase& phase = phases[str_field(event, "name")];
    phase.count++;
    phase.sim_us += num_field(event, "dur");
    auto args_it = event.find("args");
    if (args_it == event.end()) continue;
    if (auto a = telemetry::parse_json_object(args_it->second.text))
      phase.wall_ns +=
          num_field(*a, "wall_end_ns") - num_field(*a, "wall_begin_ns");
  }

  std::vector<std::pair<std::string, Phase>> sorted(phases.begin(),
                                                    phases.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.sim_us > b.second.sim_us;
  });
  if (json) {
    std::vector<std::string> phase_objects;
    for (const auto& [name, phase] : sorted)
      phase_objects.push_back(telemetry::JsonDict{}
                                  .set("phase", name)
                                  .set("spans", phase.count)
                                  .set("sim_us", phase.sim_us)
                                  .set("wall_ns", phase.wall_ns)
                                  .to_string());
    out.set("span_count", static_cast<std::uint64_t>(events->size()))
        .set_raw("phases", json_array(phase_objects));
    return;
  }
  TextTable table({"phase", "spans", "sim ms", "wall ms"});
  for (const auto& [name, phase] : sorted)
    table.add_row({name, format("%d", phase.count),
                   format("%.1f", phase.sim_us / 1e3),
                   format("%.2f", phase.wall_ns / 1e6)});
  std::printf("phase breakdown (%zu spans; nested phases overlap their "
              "parents):\n\n%s\n",
              events->size(), table.to_string().c_str());
}

// Per-syscall attribution table from syscall_profile.json (written by
// `run --workdir`): which syscalls executed, contributed signal, and were
// implicated by the flag scan.
void report_syscall_profile(const std::filesystem::path& workdir, bool json,
                            telemetry::JsonDict& out) {
  const auto text = slurp(workdir / "syscall_profile.json");
  if (!text) return;
  const auto obj = telemetry::parse_json_object(*text);
  if (!obj) {
    std::fprintf(stderr, "warning: unparseable %s\n",
                 (workdir / "syscall_profile.json").string().c_str());
    return;
  }
  auto rows_it = obj->find("syscalls");
  const auto rows = rows_it != obj->end()
                        ? telemetry::parse_json_array_of_objects(
                              rows_it->second.text)
                        : std::nullopt;
  if (!rows) return;
  if (json) {
    out.set_raw("syscall_profile", rows_it->second.text);
    return;
  }
  std::vector<const JsonObject*> sorted;
  for (const JsonObject& row : *rows) sorted.push_back(&row);
  std::sort(sorted.begin(), sorted.end(),
            [](const JsonObject* a, const JsonObject* b) {
              return num_field(*a, "executions") > num_field(*b, "executions");
            });
  TextTable table({"syscall", "nr", "executions", "signal", "implications"});
  for (const JsonObject* row : sorted)
    table.add_row(
        {str_field(*row, "name"),
         format("%d", static_cast<int>(num_field(*row, "nr"))),
         format("%lld",
                static_cast<long long>(num_field(*row, "executions"))),
         format("%lld",
                static_cast<long long>(num_field(*row, "signal_new"))),
         format("%lld",
                static_cast<long long>(num_field(*row, "implications")))});
  std::printf("syscall attribution (%zu syscalls):\n\n%s\n", sorted.size(),
              table.to_string().c_str());
}

// Ancestry chains from the `lineage` arrays in violation bundles: per
// finding, the suspect first, then each splice donor back to a root. In json
// mode the per-bundle chain lengths land under out["lineage_depth"].
void report_lineage(const std::filesystem::path& workdir, bool json,
                    telemetry::JsonDict& out) {
  namespace fs = std::filesystem;
  std::vector<fs::path> bundle_files;
  const fs::path violations = workdir / "violations";
  if (fs::exists(violations))
    for (const auto& entry : fs::directory_iterator(violations))
      if (fs::exists(entry.path() / "bundle.json"))
        bundle_files.push_back(entry.path() / "bundle.json");
  std::sort(bundle_files.begin(), bundle_files.end());

  std::vector<std::string> depth_objects;
  bool printed_header = false;
  for (const fs::path& file : bundle_files) {
    const auto text = slurp(file);
    const auto obj = text ? telemetry::parse_json_object(*text) : std::nullopt;
    if (!obj) continue;
    auto lineage_it = obj->find("lineage");
    if (lineage_it == obj->end()) continue;
    const auto links =
        telemetry::parse_json_array_of_objects(trim(lineage_it->second.text));
    if (!links || links->empty()) continue;
    const int bundle = static_cast<int>(num_field(*obj, "bundle"));
    depth_objects.push_back(
        telemetry::JsonDict{}
            .set("bundle", bundle)
            .set("depth", static_cast<std::int64_t>(links->size()))
            .to_string());
    if (json) continue;
    if (!printed_header) {
      std::printf("ancestry (suspect first, oldest splice donor last):\n");
      printed_header = true;
    }
    std::string chain;
    for (const JsonObject& link : *links) {
      if (!chain.empty()) chain += " <- ";
      chain += str_field(link, "hash");
      chain += format("(%s r%d)", str_field(link, "op").c_str(),
                      static_cast<int>(num_field(link, "round")));
    }
    std::printf("  bundle %03d: %s\n", bundle, chain.c_str());
  }
  if (json)
    out.set_raw("lineage_depth", json_array(depth_objects));
  else if (printed_header)
    std::printf("\n");
}

// Per-operator efficacy table from mutation_efficacy.json (written by
// `run --workdir`): which mutation operators earn their keep.
void report_efficacy(const std::filesystem::path& workdir, bool json,
                     telemetry::JsonDict& out) {
  const auto text = slurp(workdir / "mutation_efficacy.json");
  if (!text) return;
  const auto obj = telemetry::parse_json_object(*text);
  if (!obj) {
    std::fprintf(stderr, "warning: unparseable %s\n",
                 (workdir / "mutation_efficacy.json").string().c_str());
    return;
  }
  auto ops_it = obj->find("ops");
  const auto rows = ops_it != obj->end()
                        ? telemetry::parse_json_array_of_objects(
                              trim(ops_it->second.text))
                        : std::nullopt;
  if (!rows) return;
  if (json) {
    out.set_raw("mutation_efficacy", ops_it->second.text);
    return;
  }
  TextTable table({"operator", "attempts", "accepted", "executions",
                   "novel signal", "violations", "inserts"});
  for (const JsonObject& row : *rows)
    table.add_row(
        {str_field(row, "op"),
         format("%lld", static_cast<long long>(num_field(row, "attempts"))),
         format("%lld", static_cast<long long>(num_field(row, "accepted"))),
         format("%lld",
                static_cast<long long>(num_field(row, "executions"))),
         format("%lld",
                static_cast<long long>(num_field(row, "novel_signal"))),
         format("%lld",
                static_cast<long long>(num_field(row, "violations"))),
         format("%lld",
                static_cast<long long>(num_field(row, "corpus_inserts")))});
  std::printf("mutation efficacy (%zu operators):\n\n%s\n", rows->size(),
              table.to_string().c_str());
}

// Severity-ranked cluster table from clusters.json, recomputed from the
// violation bundles when the file is absent. In json mode the rendered
// clusters land under out["clusters"] plus a flat bundle -> cluster
// assignment list (what a dashboard joins against the findings array).
void report_clusters(const std::filesystem::path& workdir, bool json,
                     telemetry::JsonDict& out) {
  const auto tri = triage::triage_workdir(workdir);
  if (!tri) return;
  if (json) {
    out.set_raw("clusters", triage::clusters_to_json_array(*tri));
    std::vector<std::string> assignments;
    for (const triage::Cluster& c : tri->clusters)
      for (const triage::ClusterMember& m : c.members)
        assignments.push_back(telemetry::JsonDict{}
                                  .set("bundle", m.features.bundle)
                                  .set("cluster", c.id)
                                  .set("severity", c.severity)
                                  .set("similarity", m.similarity)
                                  .to_string());
    out.set_raw("cluster_assignments", json_array(assignments));
    return;
  }
  std::printf("%s", triage::cluster_table(*tri).c_str());
}

int cmd_report(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const bool json = args.has("json");
  const std::filesystem::path workdir(args.positional[0]);
  if (!std::filesystem::exists(workdir)) {
    std::fprintf(stderr, "no such workdir: %s\n", workdir.string().c_str());
    return 1;
  }
  telemetry::JsonDict out;
  out.set("workdir", workdir.string());
  if (!json) std::printf("torpedo report: %s\n\n", workdir.string().c_str());
  report_bundles(workdir, json, out);
  report_clusters(workdir, json, out);
  if (!json) std::printf("\n");
  report_lineage(workdir, json, out);
  report_metrics(workdir, json, out);
  report_round_trace(workdir, json, out);
  if (!json) std::printf("\n");
  report_spans(workdir, json, out);
  report_syscall_profile(workdir, json, out);
  report_efficacy(workdir, json, out);
  if (json) std::printf("%s\n", out.to_string().c_str());
  return 0;
}

// --- torpedo stats ----------------------------------------------------------

// Scales `values` into a one-line ASCII curve of `width` columns using a
// ten-level density ramp. Deterministic: pure function of the sample values.
std::string ascii_curve(const std::vector<double>& values, std::size_t width) {
  static const char kRamp[] = " .:-=+*#%@";
  if (values.empty()) return "";
  double max = 0;
  for (double v : values) max = std::max(max, v);
  if (width > values.size()) width = values.size();
  std::string curve;
  for (std::size_t col = 0; col < width; ++col) {
    // Last value in this column's bucket: growth curves are cumulative, so
    // the bucket's end is the honest summary.
    const std::size_t i = (col + 1) * values.size() / width - 1;
    const double v = values[i];
    const std::size_t level =
        max <= 0 ? 0
                 : std::min<std::size_t>(9, static_cast<std::size_t>(
                                                v / max * 9.0 + 0.5));
    curve += kRamp[level];
  }
  return curve;
}

// `torpedo stats WORKDIR`: growth curves from timeseries.jsonl, the
// mutation-efficacy table, lineage-depth histogram from corpus.txt headers,
// and each finding's ancestry chain.
int cmd_stats(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const std::filesystem::path workdir(args.positional[0]);
  if (!std::filesystem::exists(workdir)) {
    std::fprintf(stderr, "no such workdir: %s\n", workdir.string().c_str());
    return 1;
  }
  std::printf("torpedo stats: %s\n\n", workdir.string().c_str());

  // --- signal-growth curves, one block per shard ---
  std::map<int, std::vector<JsonObject>> by_shard;
  {
    std::ifstream in(workdir / "timeseries.jsonl");
    std::string line;
    while (in && std::getline(in, line)) {
      if (trim(line).empty()) continue;
      if (auto obj = telemetry::parse_json_object(line)) {
        const int shard = obj->count("shard")
                              ? static_cast<int>(num_field(*obj, "shard"))
                              : -1;
        by_shard[shard].push_back(std::move(*obj));
      }
    }
  }
  if (by_shard.empty()) {
    std::printf("no timeseries.jsonl (record one with `torpedo run "
                "--workdir DIR`)\n\n");
  }
  for (const auto& [shard, samples] : by_shard) {
    std::vector<double> signals, corpus;
    for (const JsonObject& s : samples) {
      signals.push_back(num_field(s, "distinct_signals"));
      corpus.push_back(num_field(s, "corpus_size"));
    }
    const JsonObject& last = samples.back();
    const double sim_s = num_field(last, "sim_ns") / 1e9;
    const double execs = num_field(last, "executions");
    if (shard < 0)
      std::printf("campaign (%zu samples):\n", samples.size());
    else
      std::printf("shard %d (%zu samples):\n", shard, samples.size());
    std::printf("  distinct signals |%s| %lld\n",
                ascii_curve(signals, 60).c_str(),
                static_cast<long long>(signals.back()));
    std::printf("  corpus size      |%s| %lld\n",
                ascii_curve(corpus, 60).c_str(),
                static_cast<long long>(corpus.back()));
    std::printf("  rounds=%d executions=%lld violations=%lld sim=%.1fs "
                "(%.0f exec/sim-s)\n\n",
                static_cast<int>(num_field(last, "round")),
                static_cast<long long>(execs),
                static_cast<long long>(num_field(last, "violations")), sim_s,
                sim_s > 0 ? execs / sim_s : 0.0);
  }

  // --- violation clusters, severity-ranked ---
  telemetry::JsonDict scratch_out;
  report_clusters(workdir, /*json=*/false, scratch_out);
  std::printf("\n");

  // --- mutation efficacy ---
  report_efficacy(workdir, /*json=*/false, scratch_out);

  // --- lineage depth histogram from corpus.txt headers ---
  {
    std::map<unsigned long long, unsigned long long> parent_of;
    std::ifstream in(workdir / "corpus.txt");
    std::string line;
    while (in && std::getline(in, line)) {
      if (!starts_with(line, "# score=")) continue;
      unsigned long long hash = 0, parent = 0;
      for (const auto field : split_ws(line)) {
        if (starts_with(field, "hash="))
          hash = std::strtoull(std::string(field.substr(5)).c_str(), nullptr,
                               16);
        else if (starts_with(field, "parent="))
          parent = std::strtoull(std::string(field.substr(7)).c_str(),
                                 nullptr, 16);
      }
      if (hash != 0) parent_of[hash] = parent;
    }
    if (!parent_of.empty()) {
      std::map<int, int> histogram;
      for (const auto& [hash, parent] : parent_of) {
        int depth = 0;
        unsigned long long cursor = parent;
        while (cursor != 0 && depth < 64) {
          auto it = parent_of.find(cursor);
          if (it == parent_of.end()) break;
          ++depth;
          cursor = it->second;
        }
        histogram[depth]++;
      }
      TextTable table({"depth", "entries", ""});
      int max_count = 0;
      for (const auto& [depth, n] : histogram)
        max_count = std::max(max_count, n);
      for (const auto& [depth, n] : histogram)
        table.add_row({format("%d", depth), format("%d", n),
                       std::string(static_cast<std::size_t>(
                                       max_count > 0 ? n * 40 / max_count : 0),
                                   '#')});
      std::printf("corpus lineage depth (%zu entries):\n\n%s\n",
                  parent_of.size(), table.to_string().c_str());
    }
  }

  // --- ancestry per finding ---
  report_lineage(workdir, /*json=*/false, scratch_out);
  return 0;
}

// --- torpedo diff -----------------------------------------------------------

// `torpedo diff WD_A WD_B`: cross-campaign triage diff. Exit codes: 0 clean,
// 1 error (a workdir could not be triaged), 2 regression — so CI can gate a
// change on "no new violation clusters, no severity jumps".
int cmd_diff(const Args& args) {
  if (args.positional.size() != 2) return usage();
  triage::DiffOptions options;
  options.match_threshold =
      args.fnum("similarity", options.match_threshold);
  options.severity_regression =
      args.fnum("severity-regression", options.severity_regression);
  options.max_throughput_drop_pct =
      args.fnum("max-throughput-drop", options.max_throughput_drop_pct);
  const std::filesystem::path a(args.positional[0]);
  const std::filesystem::path b(args.positional[1]);
  const triage::DiffResult result = triage::diff_workdirs(a, b, options);

  if (args.has("json")) {
    std::printf("%s\n", result.to_json().to_string().c_str());
    return result.ran ? (result.regression ? 2 : 0) : 1;
  }
  if (!result.ran) {
    std::fprintf(stderr, "diff failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("torpedo diff: %s -> %s\n\n", a.string().c_str(),
              b.string().c_str());
  std::printf("clusters: %zu persisting, %zu fixed, %zu new\n",
              result.persisting.size(), result.fixed.size(),
              result.added.size());
  if (!result.persisting.empty()) {
    TextTable table({"A", "B", "match", "severity A", "severity B", "delta",
                     "label"});
    for (const triage::MatchedCluster& m : result.persisting)
      table.add_row({format("%d", m.id_a), format("%d", m.id_b),
                     format("%.2f", m.similarity),
                     format("%.1f", m.severity_a),
                     format("%.1f", m.severity_b),
                     format("%+.1f", m.severity_b - m.severity_a), m.label});
    std::printf("\n%s\n", table.to_string().c_str());
  }
  for (const triage::UnmatchedCluster& c : result.fixed)
    std::printf("  FIXED: cluster %d (severity %.1f, size %zu) %s\n", c.id,
                c.severity, c.size, c.label.c_str());
  for (const triage::UnmatchedCluster& c : result.added)
    std::printf("  NEW:   cluster %d (severity %.1f, size %zu) %s\n", c.id,
                c.severity, c.size, c.label.c_str());

  if (result.have_throughput) {
    const double delta_pct =
        result.execs_per_sim_sec_a > 0
            ? 100.0 *
                  (result.execs_per_sim_sec_b - result.execs_per_sim_sec_a) /
                  result.execs_per_sim_sec_a
            : 0.0;
    std::printf("\nthroughput: %.0f -> %.0f exec/sim-s (%+.1f%%)\n",
                result.execs_per_sim_sec_a, result.execs_per_sim_sec_b,
                delta_pct);
  }
  if (!result.efficacy.empty()) {
    TextTable table({"operator", "accept A", "accept B", "novel A",
                     "novel B"});
    for (const triage::EfficacyDelta& e : result.efficacy)
      table.add_row(
          {e.op, format("%.1f%%", 100.0 * e.accept_rate_a),
           format("%.1f%%", 100.0 * e.accept_rate_b),
           format("%llu", static_cast<unsigned long long>(e.novel_a)),
           format("%llu", static_cast<unsigned long long>(e.novel_b))});
    std::printf("\nmutation efficacy deltas:\n\n%s\n",
                table.to_string().c_str());
  }

  if (result.regression) {
    std::printf("\nREGRESSION:\n");
    for (const std::string& reason : result.regression_reasons)
      std::printf("  %s\n", reason.c_str());
    return 2;
  }
  std::printf("\nno regression\n");
  return 0;
}

// --- torpedo selftest -------------------------------------------------------

// `--replay WORKDIR`: re-execute one recorded campaign and diff artifacts.
int cmd_selftest_replay(const Args& args, const std::string& workdir) {
  selftest::ReplayOptions options;
  options.workdir = workdir;
  if (auto scratch = args.get("scratch")) options.scratch = *scratch;
  options.keep_scratch = true;  // the user will want to inspect the diff
  const selftest::ReplayResult result = selftest::replay_workdir(options);
  if (args.has("json")) {
    std::printf("%s\n", result.to_json().to_string().c_str());
    return result.identical ? 0 : 1;
  }
  if (!result.ran) {
    std::fprintf(stderr, "replay failed: %s\n", result.error.c_str());
    return 1;
  }
  if (result.identical) {
    std::printf("replay identical: %d artifact%s regenerated byte-for-byte\n",
                result.artifacts_compared,
                result.artifacts_compared == 1 ? "" : "s");
    return 0;
  }
  std::printf("replay DIVERGED: %zu difference%s across %d artifacts\n",
              result.diffs.size(), result.diffs.size() == 1 ? "" : "s",
              result.artifacts_compared);
  for (const selftest::ReplayDiff& diff : result.diffs)
    std::printf("  %s %s: recorded %s, replayed %s\n", diff.artifact.c_str(),
                diff.path.c_str(), diff.original.c_str(),
                diff.replayed.c_str());
  return 1;
}

int cmd_selftest(const Args& args) {
  if (auto workdir = args.get("replay")) {
    return cmd_selftest_replay(args, *workdir);
  }
  if (!args.positional.empty()) return usage();

  selftest::SelftestOptions options;
  options.trials = static_cast<int>(args.num("trials", options.trials));
  options.seed = static_cast<std::uint64_t>(
      args.num("seed", static_cast<long>(options.seed)));
  if (auto scratch = args.get("scratch")) options.scratch = *scratch;
  options.keep_scratch = args.has("keep-scratch");
  options.verbose = args.has("v");
  if (auto only = args.get("only")) {
    options.run_invariants = *only == "invariants";
    options.run_faults = *only == "faults";
    options.run_replay = *only == "replay";
    if (!options.run_invariants && !options.run_faults &&
        !options.run_replay) {
      std::fprintf(stderr, "unknown pillar: %s\n", only->c_str());
      return 2;
    }
  }

  const selftest::SelftestResult result = selftest::run_selftest(options);

  const std::string report_path =
      args.get("report").value_or("selftest_report.json");
  {
    std::ofstream out(report_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open report file %s\n",
                   report_path.c_str());
      return 1;
    }
    out << result.report_json;
  }

  if (args.has("json")) {
    std::fputs(result.report_json.c_str(), stdout);
  } else {
    std::printf("selftest: %d trial%s, %d failed -> %s\n", result.trials_run,
                result.trials_run == 1 ? "" : "s", result.trials_failed,
                result.passed ? "PASS" : "FAIL");
    std::printf("report written: %s\n", report_path.c_str());
  }
  return result.passed ? 0 : 1;
}

// `torpedo fleet`: the coordinator process. Builds the experiment-matrix
// manifest (from --manifest or the campaign flags), spawns N `torpedo run
// --fleet-socket ...` workers, drives the socket epoch barrier, restarts
// crashed workers, and merges the per-worker workdirs.
int cmd_fleet(const Args& args) {
  if (args.has("v")) set_log_level(LogLevel::kInfo);
  const auto workdir = args.get("workdir");
  if (!workdir) {
    std::fprintf(stderr, "torpedo fleet requires --workdir DIR\n");
    return 2;
  }

  fleet::Manifest manifest;
  if (auto file = args.get("manifest")) {
    auto loaded = fleet::load_manifest(*file);
    if (!loaded) {
      std::fprintf(stderr, "cannot load fleet manifest %s\n", file->c_str());
      return 1;
    }
    manifest = std::move(*loaded);
    if (args.has("workers"))
      manifest.workers = static_cast<int>(args.num("workers", 2));
  } else {
    auto config = campaign_config(args);
    if (!config) return 2;
    manifest.workers = static_cast<int>(args.num("workers", 2));
    manifest.defaults = core::CampaignManifest::from_config(*config);
    if (auto seeds_dir = args.get("seeds-dir"))
      manifest.defaults.seeds_dir = *seeds_dir;
  }
  if (args.has("max-restarts"))
    manifest.max_restarts = static_cast<int>(args.num("max-restarts", 2));
  if (manifest.workers < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 2;
  }

  fleet::FleetConfig config;
  config.manifest = std::move(manifest);
  config.workdir = *workdir;
  {
    char self[4096];
    const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    if (n <= 0) {
      std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
      return 1;
    }
    self[n] = '\0';
    config.worker_binary = self;
  }
  if (args.has("worker-monitor")) config.worker_monitor_port = 0;
  if (args.has("monitor-port"))
    config.coordinator_monitor_port =
        static_cast<int>(args.num("monitor-port", 0));
  if (args.has("stall-seconds"))
    config.stall_budget_wall_ns = static_cast<Nanos>(
        args.num("stall-seconds", 60)) * kSecond;
  config.verbose = args.has("v");

  std::printf("fleet: %d workers x %d batches, runtime=%s, max-restarts=%d, "
              "workdir=%s\n",
              config.manifest.workers, config.manifest.defaults.batches,
              config.manifest.defaults.runtime.c_str(),
              config.manifest.max_restarts, workdir->c_str());

  fleet::Coordinator coordinator(std::move(config));
  const fleet::Coordinator::Result result = coordinator.run();

  for (const fleet::WorkerStatus& st : coordinator.workers())
    std::printf("worker %d: %s rounds=%d executions=%llu corpus=%llu "
                "findings=%llu crashes=%llu restarts=%d\n",
                st.id, std::string(fleet::worker_state_name(st.state)).c_str(),
                st.rounds, static_cast<unsigned long long>(st.executions),
                static_cast<unsigned long long>(st.corpus),
                static_cast<unsigned long long>(st.findings),
                static_cast<unsigned long long>(st.crashes), st.restarts);
  const feedback::CorpusLedger::Stats& hub = coordinator.ledger().stats();
  std::printf("hub: epochs=%llu published=%llu unique=%llu merged=%llu "
              "pulled=%llu denylist=%zu\n",
              static_cast<unsigned long long>(hub.epochs),
              static_cast<unsigned long long>(hub.published),
              static_cast<unsigned long long>(hub.unique),
              static_cast<unsigned long long>(hub.merged),
              static_cast<unsigned long long>(hub.pulled),
              hub.denylist_size);
  std::printf("fleet %s: %d/%d workers completed, %d restart%s, "
              "%llu executions, merge %.1f ms\n",
              result.ok ? "done" : "FAILED", result.completed,
              result.completed + result.failed, result.restarts,
              result.restarts == 1 ? "" : "s",
              static_cast<unsigned long long>(result.executions),
              static_cast<double>(result.merge_wall_ns) / 1e6);
  std::printf("merged workdir: %s (fleet_status.json, fleet.json, and the "
              "standard campaign artifacts)\n", workdir->c_str());
  return result.ok ? 0 : 1;
}

int cmd_seeds(const Args& args) {
  const std::string out = args.get("out").value_or("seeds");
  const std::size_t count =
      static_cast<std::size_t>(args.num("count", 200));
  const auto seeds = core::moonshine_seeds(count);
  const std::size_t written = core::write_seed_files(out, seeds);
  std::printf("wrote %zu seed files to %s\n", written, out.c_str());
  return written == count ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h")
    return usage(stdout);
  const SubcommandSpec* spec = nullptr;
  for (const SubcommandSpec& s : subcommands())
    if (command == s.name) {
      spec = &s;
      break;
    }
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
    return usage();
  }
  auto args = parse_args(argc, argv, *spec);
  if (!args) return 2;
  if (args->help) return subcommand_help(*spec);
  if (command == "run") return cmd_run(*args);
  if (command == "fleet") return cmd_fleet(*args);
  if (command == "exec") return cmd_exec(*args);
  if (command == "seeds") return cmd_seeds(*args);
  if (command == "report") return cmd_report(*args);
  if (command == "stats") return cmd_stats(*args);
  if (command == "diff") return cmd_diff(*args);
  return cmd_selftest(*args);
}
