// Unit tests for src/util: RNG, string helpers, table formatter, time units,
// and the check macros.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/time.h"

namespace torpedo {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

class RngBelowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowTest, StaysBelowBound) {
  Rng rng(7);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBelowTest,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000,
                                           1ULL << 33, ~0ULL));

TEST(Rng, BelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), CheckFailure);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, RangeSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.chance(1, 1));
    EXPECT_TRUE(rng.chance(5, 3));
    EXPECT_FALSE(rng.chance(0, 10));
  }
}

TEST(Rng, ChanceRoughlyFair) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(1, 4)) ++hits;
  EXPECT_NEAR(hits, 2500, 250);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(7);
  const double weights[] = {1.0, 0.0, 3.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 8000; ++i) counts[rng.weighted(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, WeightedAllZeroThrows) {
  Rng rng(7);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(weights), CheckFailure);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ForkIndependentOfParentDraws) {
  Rng a(42);
  Rng child = a.fork();
  // Continuing the parent must not replay the child's stream.
  EXPECT_NE(child.next(), a.next());
}

TEST(Rng, PickFromVector) {
  Rng rng(7);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

// --- strings -------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitWsDropsEmpties) {
  auto parts = split_ws("  cpu0  12 \t 34\n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "cpu0");
  EXPECT_EQ(parts[2], "34");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

struct ParseCase {
  const char* text;
  bool ok;
  std::uint64_t value;
};

class ParseU64Test : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParseU64Test, Parses) {
  const ParseCase& c = GetParam();
  auto v = parse_u64(c.text);
  EXPECT_EQ(v.has_value(), c.ok) << c.text;
  if (c.ok && v) EXPECT_EQ(*v, c.value) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseU64Test,
    ::testing::Values(ParseCase{"0", true, 0}, ParseCase{"123", true, 123},
                      ParseCase{"0x10", true, 16},
                      ParseCase{"0xffffffffffffffff", true, ~0ULL},
                      ParseCase{"0XAb", true, 0xab},
                      ParseCase{"18446744073709551615", true, ~0ULL},
                      ParseCase{"18446744073709551616", false, 0},  // overflow
                      ParseCase{"", false, 0}, ParseCase{"-1", false, 0},
                      ParseCase{"0x", false, 0}, ParseCase{"12a", false, 0},
                      ParseCase{"0x1 ", false, 0},
                      ParseCase{"0x12345678123456789", false, 0}));

TEST(Strings, ParseI64) {
  EXPECT_EQ(parse_i64("-5"), -5);
  EXPECT_EQ(parse_i64("+7"), 7);
  EXPECT_EQ(parse_i64("0x10"), 16);
  EXPECT_EQ(parse_i64("-0x10"), -16);
  EXPECT_FALSE(parse_i64("--1").has_value());
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());
  EXPECT_EQ(parse_i64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
}

class HexRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HexRoundTripTest, RoundTrips) {
  EXPECT_EQ(parse_u64(hex(GetParam())), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, HexRoundTripTest,
                         ::testing::Values(0, 1, 0x10, 0x680002, 0xffffffff,
                                           ~0ULL, 0x7f0000000000ULL));

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("kworker/u:3", "kworker"));
  EXPECT_FALSE(starts_with("kw", "kworker"));
}

// --- table ---------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"A", "LONG"});
  t.add_row({"xx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("A   LONG"), std::string::npos);
  EXPECT_NE(out.find("xx  1"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), CheckFailure);
}

// --- time ---------------------------------------------------------------------

TEST(Time, JiffyConversions) {
  EXPECT_EQ(nanos_to_jiffies(kSecond), 100);
  EXPECT_EQ(nanos_to_jiffies(kJiffy - 1), 0);
  EXPECT_EQ(jiffies_to_nanos(100), kSecond);
  EXPECT_EQ(seconds(2.5), 2 * kSecond + kSecond / 2);
}

// --- check ---------------------------------------------------------------------

TEST(Check, ThrowsWithLocation) {
  try {
    TORPEDO_CHECK_MSG(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { TORPEDO_CHECK(1 + 1 == 2); }

// --- log ---------------------------------------------------------------------

TEST(Log, LevelGate) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(old);
}

}  // namespace
}  // namespace torpedo
