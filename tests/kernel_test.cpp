// Unit tests for the simulated kernel: VFS, processes, every syscall family,
// the adversarial side-effect paths (coredump/usermodehelper, modprobe,
// sync/writeback, audit), procfs, and the trace.
#include <gtest/gtest.h>

#include "kernel/errno.h"
#include "kernel/kernel.h"
#include "kernel/procfs.h"
#include "kernel/signals.h"
#include "kernel/syscalls.h"

namespace torpedo::kernel {
namespace {

using sim::Segment;

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    KernelConfig cfg;
    cfg.host.num_cores = 8;
    kernel_ = std::make_unique<SimKernel>(cfg);
    auto& hierarchy = kernel_->host().cgroups();
    group_ = &hierarchy.create(hierarchy.root(), "ctr");
    // The process task idles unless a test runs the host.
    task_ = &kernel_->host().spawn(
        {.name = "proc",
         .group = group_,
         .supplier = [](sim::Host&, sim::Task& t) {
           t.push(Segment::block_wake());
           return true;
         }});
    proc_ = &kernel_->create_process("proc", group_, task_->id());
  }

  SysResult call(int nr, std::vector<SysArg> args = {}) {
    return kernel_->do_syscall(*proc_, {nr, std::move(args)});
  }
  static SysArg num(std::uint64_t v) { return SysArg::num(v); }
  static SysArg text(std::string s) { return SysArg::text(std::move(s)); }

  int open_path(const std::string& path, std::uint64_t flags = 0) {
    const SysResult r = call(kOpen, {text(path), num(flags), num(0)});
    EXPECT_EQ(r.err, 0) << path;
    return static_cast<int>(r.ret);
  }

  std::unique_ptr<SimKernel> kernel_;
  cgroup::Cgroup* group_ = nullptr;
  sim::Task* task_ = nullptr;
  Process* proc_ = nullptr;
};

// --- process / fd table -----------------------------------------------------

TEST_F(KernelTest, FdTableAllocatesLowestFree) {
  const int a = open_path("/etc/passwd");
  const int b = open_path("/etc/passwd");
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 4);
  EXPECT_EQ(call(kClose, {num(static_cast<std::uint64_t>(a))}).err, 0);
  EXPECT_EQ(open_path("/etc/passwd"), 3);  // reuses the hole
}

TEST_F(KernelTest, CloseBadFd) {
  EXPECT_EQ(call(kClose, {num(99)}).err, EBADF_);
}

TEST_F(KernelTest, NofileLimitGivesEmfile) {
  proc_->set_rlimit(RLIMIT_NOFILE_, 2);
  open_path("/etc/passwd");
  open_path("/etc/passwd");
  const SysResult r = call(kOpen, {text("/etc/passwd"), num(0), num(0)});
  EXPECT_EQ(r.err, EMFILE_);
}

TEST_F(KernelTest, ResetProcessClearsState) {
  open_path("/etc/passwd");
  call(kMmap, {num(0), num(4096), num(3), num(0x32), num(~0ULL), num(0)});
  call(kAlarm, {num(100)});
  EXPECT_GT(proc_->open_fd_count(), 0u);
  EXPECT_GT(proc_->mapped_bytes, 0u);
  kernel_->reset_process(*proc_);
  EXPECT_EQ(proc_->open_fd_count(), 0u);
  EXPECT_EQ(proc_->mapped_bytes, 0u);
  EXPECT_EQ(proc_->alarm_at, 0);
  EXPECT_EQ(group_->memory().usage_bytes, 0);
}

// --- VFS ----------------------------------------------------------------------

TEST(Vfs, NormalizePath) {
  EXPECT_EQ(normalize_path("a//b/"), "a/b");
  EXPECT_EQ(normalize_path("/a"), "/a");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), "");
}

TEST(Vfs, LookupAndCreate) {
  Vfs vfs;
  EXPECT_NE(vfs.lookup("/etc/passwd").inode, nullptr);
  EXPECT_EQ(vfs.lookup("/missing").error, ENOENT_);
  Inode* inode = nullptr;
  EXPECT_EQ(vfs.create("newfile", 0644, &inode), 0);
  ASSERT_NE(inode, nullptr);
  inode->size = 10;
  // creat() on an existing file truncates.
  Inode* again = nullptr;
  EXPECT_EQ(vfs.create("newfile", 0644, &again), 0);
  EXPECT_EQ(again, inode);
  EXPECT_EQ(inode->size, 0u);
}

TEST(Vfs, SelfLoopSymlinkEloop) {
  Vfs vfs;
  const LookupResult r = vfs.lookup("test_eloop");
  EXPECT_EQ(r.error, ELOOP_);
  EXPECT_GT(r.follows, 30);
}

TEST(Vfs, EloopThroughDirectoryComponents) {
  Vfs vfs;
  const LookupResult r =
      vfs.lookup("test_eloop/test_eloop/test_eloop/file");
  EXPECT_EQ(r.error, ELOOP_);
}

TEST(Vfs, MkdirAndRemove) {
  Vfs vfs;
  EXPECT_EQ(vfs.mkdir("d", 0755), 0);
  EXPECT_EQ(vfs.mkdir("d", 0755), EEXIST_);
  EXPECT_EQ(vfs.remove("d"), EISDIR_);
  vfs.create("d/f", 0644, nullptr);
  EXPECT_EQ(vfs.remove("d/f"), 0);
  EXPECT_EQ(vfs.remove("d/f"), ENOENT_);
}

TEST(Vfs, DirtyLedgerCapped) {
  Vfs vfs;
  vfs.dirty(Vfs::kMaxDirtyBytes * 3);
  EXPECT_EQ(vfs.dirty_bytes(), Vfs::kMaxDirtyBytes);
  EXPECT_EQ(vfs.consume_dirty(100), 100u);
  EXPECT_EQ(vfs.take_dirty(), Vfs::kMaxDirtyBytes - 100);
  EXPECT_EQ(vfs.dirty_bytes(), 0u);
}

// --- syscall name table ---------------------------------------------------------

TEST(Sysno, NamesRoundTrip) {
  const int nrs[] = {kRead,  kWrite, kOpen,   kSync,      kSocket,
                     kRseq,  kKcmp,  kCreat,  kFallocate, kRtSigreturn,
                     kSetuid, kGetxattr, kMqOpen, kSyncfs};
  for (int nr : nrs) {
    const auto name = sysno_name(nr);
    ASSERT_NE(name, "unknown") << nr;
    EXPECT_EQ(sysno_from_name(name), nr);
  }
  EXPECT_EQ(sysno_name(99999), "unknown");
  EXPECT_FALSE(sysno_from_name("frobnicate").has_value());
}

// --- file IO ---------------------------------------------------------------------

TEST_F(KernelTest, ReadWriteLseek) {
  const int fd = open_path("/etc/passwd");
  SysResult r =
      call(kRead, {num(static_cast<std::uint64_t>(fd)), text(""), num(100)});
  EXPECT_EQ(r.ret, 100);
  r = call(kLseek, {num(static_cast<std::uint64_t>(fd)), num(0), num(2)});
  EXPECT_EQ(r.ret, 1704);
  r = call(kRead, {num(static_cast<std::uint64_t>(fd)), text(""), num(100)});
  EXPECT_EQ(r.ret, 0);  // EOF
  r = call(kLseek, {num(static_cast<std::uint64_t>(fd)),
                    num(static_cast<std::uint64_t>(-5)), num(1)});
  EXPECT_EQ(r.ret, 1699);
  r = call(kLseek, {num(static_cast<std::uint64_t>(fd)),
                    num(static_cast<std::uint64_t>(-5000)), num(1)});
  EXPECT_EQ(r.err, EINVAL_);
  r = call(kLseek, {num(static_cast<std::uint64_t>(fd)), num(0), num(7)});
  EXPECT_EQ(r.err, EINVAL_);
}

TEST_F(KernelTest, WriteExtendsAndDirties) {
  const SysResult c = call(kCreat, {text("wfile"), num(0644)});
  const int fd = static_cast<int>(c.ret);
  const std::uint64_t dirty_before = kernel_->vfs().dirty_bytes();
  const SysResult w =
      call(kWrite, {num(static_cast<std::uint64_t>(fd)), text("x"), num(4096)});
  EXPECT_EQ(w.ret, 4096);
  EXPECT_EQ(kernel_->vfs().dirty_bytes() - dirty_before, 4096u);
  EXPECT_EQ(kernel_->vfs().lookup("wfile").inode->size, 4096u);
  // Buffered writes are never charged to blkio — the gap sync(2) exploits.
  EXPECT_EQ(group_->blkio().bytes_written, 0u);
}

TEST_F(KernelTest, ProcFileReadWrite) {
  const int fd = open_path("/proc/sys/fs/mqueue/msg_max", 0x2);
  SysResult r =
      call(kRead, {num(static_cast<std::uint64_t>(fd)), text(""), num(7)});
  EXPECT_EQ(r.ret, 3);  // "10\n"
  r = call(kWrite,
           {num(static_cast<std::uint64_t>(fd)), text("47530"), num(6)});
  EXPECT_EQ(r.ret, 6);
  EXPECT_EQ(
      kernel_->vfs().lookup("/proc/sys/fs/mqueue/msg_max").inode->contents,
      "47530");
}

TEST_F(KernelTest, OpenErrors) {
  EXPECT_EQ(call(kOpen, {text("/missing"), num(0), num(0)}).err, ENOENT_);
  EXPECT_EQ(call(kOpen, {text("test_eloop"), num(0), num(0)}).err, ELOOP_);
  EXPECT_EQ(call(kOpen, {text("newone"), num(0x40), num(0644)}).err, 0);
}

TEST_F(KernelTest, SocketFdsRejectFileOps) {
  const SysResult s = call(kSocket, {num(2), num(2), num(0)});
  ASSERT_EQ(s.err, 0);
  const std::uint64_t fd = static_cast<std::uint64_t>(s.ret);
  EXPECT_EQ(call(kLseek, {num(fd), num(0), num(0)}).err, ESPIPE_);
  EXPECT_EQ(call(kRead, {num(fd), text(""), num(10)}).err, ENOTCONN_);
}

TEST_F(KernelTest, DupPipeEtc) {
  const int fd = open_path("/etc/passwd");
  const SysResult d = call(kDup, {num(static_cast<std::uint64_t>(fd))});
  EXPECT_GT(d.ret, fd);
  EXPECT_EQ(call(kPipe, {text("")}).err, 0);
  EXPECT_GT(call(kEpollCreate1, {num(0)}).ret, 0);
  EXPECT_GT(call(kEventfd2, {num(0), num(0)}).ret, 0);
  EXPECT_GT(call(kMemfdCreate, {text("m"), num(0)}).ret, 0);
  EXPECT_GT(call(kMqOpen, {text("q"), num(0x40), num(0600), text("")}).ret, 0);
  EXPECT_EQ(call(kDup, {num(1234)}).err, EBADF_);
}

TEST_F(KernelTest, PathSyscalls) {
  EXPECT_EQ(call(kStat, {text("/etc/passwd"), text("")}).err, 0);
  EXPECT_EQ(call(kStat, {text("/nope"), text("")}).err, ENOENT_);
  EXPECT_EQ(call(kAccess, {text("testdir_1"), num(4)}).err, 0);
  EXPECT_EQ(call(kChmod, {text("testdir_1"), num(0x1ff)}).err, 0);
  EXPECT_EQ(kernel_->vfs().lookup("testdir_1").inode->mode, 0x1ffu);
  EXPECT_EQ(call(kMkdir, {text("newdir"), num(0700)}).err, 0);
  EXPECT_EQ(call(kMkdir, {text("newdir"), num(0700)}).err, EEXIST_);
  EXPECT_EQ(call(kUnlink, {text("/etc/passwd")}).err, 0);
  EXPECT_EQ(call(kStat, {text("/etc/passwd"), text("")}).err, ENOENT_);
}

TEST_F(KernelTest, RenameMovesFile) {
  call(kCreat, {text("src"), num(0644)});
  EXPECT_EQ(call(kRename, {text("src"), text("dst")}).err, 0);
  EXPECT_EQ(kernel_->vfs().lookup("src").error, ENOENT_);
  EXPECT_NE(kernel_->vfs().lookup("dst").inode, nullptr);
}

TEST_F(KernelTest, ReadlinkSemantics) {
  const SysResult loop = call(
      kReadlink, {text("test_eloop/test_eloop/test_eloop"), text(""), num(0)});
  EXPECT_EQ(loop.err, ELOOP_);
  const SysResult notlink =
      call(kReadlink, {text("/etc/passwd"), text(""), num(0)});
  EXPECT_EQ(notlink.err, EINVAL_);
  const SysResult missing = call(kReadlink, {text("/gone"), text(""), num(0)});
  EXPECT_EQ(missing.err, ENOENT_);
}

TEST_F(KernelTest, ReadlinkEloopCostsMore) {
  const SysResult cheap = call(kStat, {text("/etc/passwd"), text("")});
  const SysResult costly =
      call(kReadlink, {text("test_eloop/test_eloop"), text(""), num(0)});
  EXPECT_GT(costly.sys_ns, cheap.sys_ns + 30 * kMicrosecond);
}

// --- xattr -----------------------------------------------------------------------

TEST_F(KernelTest, XattrRoundTrip) {
  call(kCreat, {text("xfile"), num(0644)});
  EXPECT_EQ(call(kSetxattr, {text("xfile"), text("user.k"),
                             text("this is a test value"), num(0x15), num(0)})
                .err,
            0);
  SysResult r =
      call(kGetxattr, {text("xfile"), text("user.k"), text(""), num(0)});
  EXPECT_EQ(r.ret, 20);  // size-0 query returns the attribute size
  r = call(kGetxattr, {text("xfile"), text("user.k"), text(""), num(4)});
  EXPECT_EQ(r.err, ERANGE_);
  r = call(kGetxattr, {text("xfile"), text("user.k"), text(""), num(64)});
  EXPECT_EQ(r.ret, 20);
  r = call(kGetxattr, {text("xfile"), text("user.other"), text(""), num(0)});
  EXPECT_EQ(r.err, ENODATA_);
}

// --- size / rlimit (SIGXFSZ) --------------------------------------------------------

TEST_F(KernelTest, FallocateWithinLimit) {
  const int fd = static_cast<int>(call(kCreat, {text("big"), num(0644)}).ret);
  const SysResult r = call(kFallocate, {num(static_cast<std::uint64_t>(fd)),
                                        num(0), num(0), num(1 << 20)});
  EXPECT_EQ(r.err, 0);
  EXPECT_EQ(kernel_->vfs().lookup("big").inode->size, 1u << 20);
}

TEST_F(KernelTest, FallocateBeyondFsizeDeliversSigxfsz) {
  const int fd = static_cast<int>(call(kCreat, {text("big"), num(0644)}).ret);
  const std::uint64_t dumps_before = kernel_->coredumps();
  const SysResult r =
      call(kFallocate, {num(static_cast<std::uint64_t>(fd)), num(0), num(0),
                        num(0x4000000000000000ULL)});
  EXPECT_EQ(r.fatal_signal, SIGXFSZ_);
  EXPECT_EQ(kernel_->coredumps(), dumps_before + 1);
  EXPECT_GE(kernel_->trace().count(TraceKind::kCoredump, 0,
                                   kernel_->host().now() + 1),
            1u);
}

TEST_F(KernelTest, FallocateOverflowSaturates) {
  const int fd = static_cast<int>(call(kCreat, {text("big"), num(0644)}).ret);
  const SysResult r = call(kFallocate, {num(static_cast<std::uint64_t>(fd)),
                                        num(0), num(~0ULL - 5), num(100)});
  EXPECT_EQ(r.fatal_signal, SIGXFSZ_);
}

TEST_F(KernelTest, FallocateErrors) {
  EXPECT_EQ(call(kFallocate, {num(77), num(0), num(0), num(10)}).err, EBADF_);
  const int fd = static_cast<int>(call(kCreat, {text("f"), num(0644)}).ret);
  EXPECT_EQ(call(kFallocate,
                 {num(static_cast<std::uint64_t>(fd)), num(0), num(0), num(0)})
                .err,
            EINVAL_);
}

TEST_F(KernelTest, FtruncateBeyondFsize) {
  const int fd = static_cast<int>(call(kCreat, {text("t"), num(0644)}).ret);
  EXPECT_EQ(call(kFtruncate, {num(static_cast<std::uint64_t>(fd)),
                              num(0x7000000000000000ULL)})
                .fatal_signal,
            SIGXFSZ_);
}

TEST_F(KernelTest, WriteBeyondFsize) {
  proc_->set_rlimit(RLIMIT_FSIZE_, 1024);
  const int fd = static_cast<int>(call(kCreat, {text("w"), num(0644)}).ret);
  const SysResult r =
      call(kWrite, {num(static_cast<std::uint64_t>(fd)), text(""), num(4096)});
  EXPECT_EQ(r.fatal_signal, SIGXFSZ_);
  EXPECT_EQ(r.err, EFBIG_);
}

TEST_F(KernelTest, UnlimitedFsizeNeverSignals) {
  proc_->set_rlimit(RLIMIT_FSIZE_, kRlimInfinity);
  const int fd = static_cast<int>(call(kCreat, {text("nf"), num(0644)}).ret);
  const SysResult r =
      call(kFtruncate, {num(static_cast<std::uint64_t>(fd)), num(~0ULL)});
  EXPECT_EQ(r.fatal_signal, 0);
}

// --- signals ----------------------------------------------------------------------

TEST(Signals, CoredumpSetMatchesPaper) {
  // §4.3.2: "SIGABRT/SIGIOT, SIGBUS, SIGFPE, SIGILL, SIGSEGV, SIGQUIT,
  // SIGSYS/SIGUNUSED, SIGTRAP, SIGXCPU and SIGXFSZ by default".
  const int dumping[] = {SIGABRT_, SIGBUS_, SIGFPE_, SIGILL_,  SIGSEGV_,
                         SIGQUIT_, SIGSYS_, SIGTRAP_, SIGXCPU_, SIGXFSZ_};
  for (int sig : dumping) EXPECT_TRUE(signal_dumps_core(sig)) << sig;
  const int non_dumping[] = {SIGKILL_, SIGTERM_, SIGALRM_, SIGHUP_,
                             SIGINT_,  SIGPIPE_, SIGUSR1_};
  for (int sig : non_dumping) EXPECT_FALSE(signal_dumps_core(sig)) << sig;
}

TEST_F(KernelTest, RtSigreturnOutsideHandlerSegfaults) {
  const SysResult r = call(kRtSigreturn);
  EXPECT_EQ(r.fatal_signal, SIGSEGV_);
  EXPECT_EQ(kernel_->coredumps(), 1u);
}

TEST_F(KernelTest, RseqSemantics) {
  EXPECT_EQ(
      call(kRseq, {num(0x7f0000000000), num(32), num(0), num(0x53053053)}).err,
      0);
  EXPECT_EQ(call(kRseq, {num(0x7f0000000001), num(32), num(0), num(0)})
                .fatal_signal,
            SIGSEGV_);
  EXPECT_EQ(call(kRseq, {num(0x7f0000000000), num(64), num(0), num(0)})
                .fatal_signal,
            SIGSEGV_);
  const SysResult r =
      call(kRseq, {num(0x7f0000000000), num(32), num(7), num(0)});
  EXPECT_EQ(r.err, EINVAL_);
  EXPECT_EQ(r.fatal_signal, 0);
}

TEST_F(KernelTest, KillSelf) {
  const std::uint64_t self = proc_->pid();
  EXPECT_EQ(call(kKill, {num(self), num(0)}).err, 0);  // probe
  EXPECT_EQ(call(kKill, {num(self), num(SIGUSR1_)}).fatal_signal, 0);
  EXPECT_EQ(call(kKill, {num(self), num(SIGTERM_)}).fatal_signal, SIGTERM_);
  kernel_->reset_process(*proc_);
  EXPECT_EQ(call(kKill, {num(self), num(SIGSEGV_)}).fatal_signal, SIGSEGV_);
  EXPECT_GE(kernel_->coredumps(), 1u);
}

TEST_F(KernelTest, KillOtherPidIsNamespaced) {
  EXPECT_EQ(call(kKill, {num(0x1586), num(9)}).err, ESRCH_);
  EXPECT_EQ(call(kKill, {num(proc_->pid()), num(70)}).err, EINVAL_);
}

TEST_F(KernelTest, AlarmFiresAtNextSyscallAfterExpiry) {
  EXPECT_EQ(call(kAlarm, {num(1)}).err, 0);
  EXPECT_EQ(call(kGetpid).fatal_signal, 0);  // not yet
  kernel_->host().run_for(2 * kSecond);
  const SysResult r = call(kGetpid);
  EXPECT_EQ(r.fatal_signal, SIGALRM_);
  EXPECT_EQ(kernel_->coredumps(), 0u);  // SIGALRM terminates without a dump
}

TEST_F(KernelTest, AlarmZeroCancels) {
  call(kAlarm, {num(100)});
  const SysResult r = call(kAlarm, {num(0)});
  EXPECT_EQ(r.err, 0);
  EXPECT_GE(r.ret, 99);  // remaining seconds from the previous alarm
  kernel_->host().run_for(kSecond);
  EXPECT_EQ(call(kGetpid).fatal_signal, 0);
}

TEST_F(KernelTest, ExitIsFatalWithoutDump) {
  const SysResult r = call(kExit, {num(0)});
  EXPECT_NE(r.fatal_signal, 0);
  EXPECT_EQ(kernel_->coredumps(), 0u);
}

TEST_F(KernelTest, HostCoredumpsFlagSuppressesHelper) {
  proc_->host_coredumps = false;
  const SysResult r = call(kRtSigreturn);
  EXPECT_EQ(r.fatal_signal, SIGSEGV_);
  EXPECT_EQ(kernel_->coredumps(), 0u);
  EXPECT_EQ(kernel_->trace().count(TraceKind::kCoredump, 0,
                                   kernel_->host().now() + 1),
            0u);
}

TEST_F(KernelTest, CoredumpHelperRunsInRootCgroup) {
  const Nanos root_before = kernel_->host().cgroups().root().cpu().usage;
  const Nanos ctr_before = group_->cpu().usage;
  call(kRtSigreturn);
  kernel_->host().run_for(100 * kMillisecond);
  // The helper burned CPU charged to the root cgroup, not the container.
  EXPECT_GT(kernel_->host().cgroups().root().cpu().usage - root_before,
            2 * kMillisecond);
  EXPECT_EQ(group_->cpu().usage, ctr_before);
}

// --- sockets & modprobe ---------------------------------------------------------------

struct SocketCase {
  int family;
  int type;
  int protocol;
  int want_err;
  bool want_modprobe;
};

class SocketTest : public KernelTest,
                   public ::testing::WithParamInterface<SocketCase> {};

TEST_P(SocketTest, FamilyTypeProtocolMatrix) {
  const SocketCase& c = GetParam();
  const std::uint64_t probes_before = kernel_->modprobe_execs();
  const SysResult r =
      call(kSocket, {num(static_cast<std::uint64_t>(c.family)),
                     num(static_cast<std::uint64_t>(c.type)),
                     num(static_cast<std::uint64_t>(c.protocol))});
  EXPECT_EQ(r.err, c.want_err);
  EXPECT_EQ(kernel_->modprobe_execs() - probes_before,
            c.want_modprobe ? 1u : 0u);
  if (c.want_err == 0) EXPECT_GE(r.ret, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SocketTest,
    ::testing::Values(
        // Loaded families succeed.
        SocketCase{1, 1, 0, 0, false},   // unix stream
        SocketCase{2, 2, 17, 0, false},  // inet udp
        SocketCase{10, 1, 6, 0, false},  // inet6 tcp
        SocketCase{16, 3, 9, 0, false},  // netlink audit (Table A.3!)
        SocketCase{17, 2, 0, 0, false},  // packet
        // Valid-but-missing modules: modprobe fires, errno 97.
        SocketCase{3, 3, 9, EAFNOSUPPORT_, true},   // AX25
        SocketCase{4, 3, 7, EAFNOSUPPORT_, true},   // IPX (the A.1.3 pair)
        SocketCase{9, 2, 0, EAFNOSUPPORT_, true},   // X25
        SocketCase{21, 1, 0, EAFNOSUPPORT_, true},  // RDS
        SocketCase{44, 1, 0, EAFNOSUPPORT_, true},
        // Invalid family: rejected before the module path, no modprobe.
        SocketCase{45, 1, 0, EAFNOSUPPORT_, false},
        SocketCase{200, 1, 0, EAFNOSUPPORT_, false},
        // Bad type on a loaded family: errno 94 + modprobe.
        SocketCase{2, 0, 0, ESOCKTNOSUPPORT_, true},
        SocketCase{2, 7, 0, ESOCKTNOSUPPORT_, true},
        // Bad protocol on a loaded family: errno 93 + modprobe.
        SocketCase{2, 2, 99, EPROTONOSUPPORT_, true},
        SocketCase{16, 3, 23, EPROTONOSUPPORT_, true},
        SocketCase{1, 1, 5, EPROTONOSUPPORT_, true}));

TEST_F(KernelTest, ModprobeHasNoNegativeCache) {
  // "repeated requests for a socket will cause modprobe to be executed
  // again and again" (§4.3.3).
  for (int i = 1; i <= 5; ++i) {
    call(kSocket, {num(4), num(3), num(9)});
    EXPECT_EQ(kernel_->modprobe_execs(), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(kernel_->trace().count(TraceKind::kModprobe, 0,
                                   kernel_->host().now() + 1),
            5u);
}

TEST_F(KernelTest, ModprobeSuppressedForSandboxedRuntime) {
  proc_->modprobe_on_missing = false;
  const SysResult r = call(kSocket, {num(4), num(3), num(9)});
  EXPECT_EQ(r.err, EAFNOSUPPORT_);
  EXPECT_EQ(kernel_->modprobe_execs(), 0u);
  EXPECT_EQ(r.block_until, 0);
}

TEST_F(KernelTest, ModprobeHelperChargesRoot) {
  proc_->block_deadline = kernel_->host().now() + kSecond;
  const Nanos root_before = kernel_->host().cgroups().root().cpu().usage;
  const SysResult r = call(kSocket, {num(4), num(3), num(9)});
  EXPECT_GT(r.block_until, kernel_->host().now());
  EXPECT_GE(r.block_hint, 0);
  kernel_->host().run_for(500 * kMillisecond);
  EXPECT_GT(kernel_->host().cgroups().root().cpu().usage - root_before,
            kMillisecond);
}

TEST_F(KernelTest, SocketpairInstallsTwoFds) {
  const std::size_t before = proc_->open_fd_count();
  EXPECT_EQ(call(kSocketpair, {num(1), num(1), num(0), text("")}).err, 0);
  EXPECT_EQ(proc_->open_fd_count(), before + 2);
}

TEST_F(KernelTest, SendtoNetlinkAuditGeneratesAuditEvents) {
  const SysResult s = call(kSocket, {num(16), num(3), num(9)});
  ASSERT_EQ(s.err, 0);
  const std::uint64_t before = kernel_->services().audit_events();
  const SysResult r = call(kSendto, {num(static_cast<std::uint64_t>(s.ret)),
                                     text("testing audit system"), num(0x24),
                                     num(0), text(""), num(0xc)});
  EXPECT_EQ(r.ret, 0x24);
  EXPECT_EQ(kernel_->services().audit_events(), before + 1);
}

TEST_F(KernelTest, SendtoAuditGatedByHostAudit) {
  proc_->host_audit = false;
  const SysResult s = call(kSocket, {num(16), num(3), num(9)});
  call(kSendto, {num(static_cast<std::uint64_t>(s.ret)), text("x"), num(4),
                 num(0), text(""), num(0xc)});
  EXPECT_EQ(kernel_->services().audit_events(), 0u);
}

TEST_F(KernelTest, SendtoUdpRaisesNetSoftirq) {
  const SysResult s = call(kSocket, {num(2), num(2), num(17)});
  ASSERT_EQ(s.err, 0);
  call(kSendto, {num(static_cast<std::uint64_t>(s.ret)), text("p"), num(64),
                 num(0), text(""), num(16)});
  EXPECT_EQ(kernel_->trace().count(TraceKind::kNetSoftirq, 0,
                                   kernel_->host().now() + 1),
            1u);
}

TEST_F(KernelTest, SendtoStreamUnconnected) {
  const SysResult s = call(kSocket, {num(2), num(1), num(6)});
  EXPECT_EQ(call(kSendto, {num(static_cast<std::uint64_t>(s.ret)), text("p"),
                           num(4), num(0), text(""), num(16)})
                .err,
            ENOTCONN_);
}

// --- sync / writeback -------------------------------------------------------------

TEST_F(KernelTest, SyncFlushesDirtyAndBlocks) {
  kernel_->vfs().dirty(8 << 20);
  const SysResult r = call(kSync);
  EXPECT_EQ(r.err, 0);
  EXPECT_GT(r.block_until, kernel_->host().now());
  EXPECT_TRUE(r.block_io);
  EXPECT_EQ(kernel_->vfs().dirty_bytes(), 0u);
  EXPECT_EQ(kernel_->trace().count(TraceKind::kIoFlush, 0,
                                   kernel_->host().now() + 1),
            1u);
  EXPECT_TRUE(kernel_->host().disk().busy_at(kernel_->host().now()));
}

TEST_F(KernelTest, WritersStallDuringSyncFlush) {
  kernel_->vfs().dirty(32 << 20);
  call(kSync);
  const int fd = static_cast<int>(call(kCreat, {text("lw"), num(0644)}).ret);
  const SysResult w =
      call(kWrite, {num(static_cast<std::uint64_t>(fd)), text(""), num(512)});
  EXPECT_GT(w.block_until, kernel_->host().now());
  EXPECT_TRUE(w.block_io);
}

TEST_F(KernelTest, FsyncPartialFlush) {
  kernel_->vfs().dirty(8 << 20);
  const int fd = static_cast<int>(call(kCreat, {text("ff"), num(0644)}).ret);
  call(kFsync, {num(static_cast<std::uint64_t>(fd))});
  EXPECT_GE(kernel_->vfs().dirty_bytes(), 7u << 20);
  EXPECT_EQ(call(kFsync, {num(99)}).err, EBADF_);
}

TEST_F(KernelTest, SyncSchedulesKworkerWriteback) {
  kernel_->vfs().dirty(4 << 20);
  const Nanos root_before = kernel_->host().cgroups().root().cpu().usage;
  call(kSync);
  kernel_->host().run_for(kSecond);
  EXPECT_GT(kernel_->host().cgroups().root().cpu().usage, root_before);
}

// --- blocking calls -----------------------------------------------------------------

TEST_F(KernelTest, BlockingCallsCappedAtDeadline) {
  proc_->block_deadline = kernel_->host().now() + 100 * kMillisecond;
  SysResult r = call(kPause);
  EXPECT_EQ(r.block_until, proc_->block_deadline);
  r = call(kNanosleep,
           {num(static_cast<std::uint64_t>(kSecond) * 100), text("")});
  EXPECT_EQ(r.block_until, proc_->block_deadline);
  r = call(kNanosleep, {num(kMillisecond), text("")});
  EXPECT_EQ(r.block_until, kernel_->host().now() + kMillisecond);
  r = call(kPoll, {text(""), num(1), num(10)});
  EXPECT_EQ(r.block_until, kernel_->host().now() + 10 * kMillisecond);
  const SysResult sock = call(kSocket, {num(2), num(2), num(0)});
  r = call(kRecvfrom, {num(static_cast<std::uint64_t>(sock.ret)), text(""),
                       num(64), num(0), text(""), num(16)});
  EXPECT_EQ(r.err, EAGAIN_);
  EXPECT_EQ(r.block_until, proc_->block_deadline);
}

// --- memory -----------------------------------------------------------------------

TEST_F(KernelTest, MmapChargesMemoryCgroup) {
  group_->memory().limit_bytes = 1 << 20;
  SysResult r = call(kMmap, {num(0), num(512 << 10), num(3), num(0x32),
                             num(~0ULL), num(0)});
  EXPECT_EQ(r.err, 0);
  EXPECT_EQ(group_->memory().usage_bytes, 512 << 10);
  r = call(kMmap,
           {num(0), num(1 << 20), num(3), num(0x32), num(~0ULL), num(0)});
  EXPECT_EQ(r.err, ENOMEM_);
  EXPECT_EQ(group_->memory().failcnt, 1u);
  r = call(kMunmap, {num(0x7f0000000000), num(512 << 10)});
  EXPECT_EQ(r.err, 0);
  EXPECT_EQ(group_->memory().usage_bytes, 0);
}

TEST_F(KernelTest, MmapErrors) {
  EXPECT_EQ(
      call(kMmap, {num(0), num(0), num(3), num(0x32), num(~0ULL), num(0)}).err,
      EINVAL_);
  EXPECT_EQ(call(kMmap, {num(0), num(1ULL << 60), num(3), num(0x32),
                         num(~0ULL), num(0)})
                .err,
            ENOMEM_);
  EXPECT_EQ(call(kMunmap, {num(0), num(0)}).err, EINVAL_);
}

// --- misc process syscalls ------------------------------------------------------------

TEST_F(KernelTest, ProcessInfoCalls) {
  EXPECT_EQ(call(kGetpid).ret, static_cast<std::int64_t>(proc_->pid()));
  EXPECT_EQ(call(kGetuid).ret, 0);
  EXPECT_EQ(call(kSetuid, {num(0xfffe)}).err, 0);
  EXPECT_EQ(call(kGetuid).ret, 0xfffe);
  EXPECT_EQ(call(kUmask, {num(0777)}).ret, 022);
  EXPECT_EQ(call(kUname, {text("")}).err, 0);
  EXPECT_EQ(call(kSchedYield).err, 0);
}

TEST_F(KernelTest, SetuidAudits) {
  call(kSetuid, {num(0xfffe)});
  EXPECT_EQ(kernel_->services().audit_events(), 1u);
  proc_->host_audit = false;
  call(kSetuid, {num(0)});
  EXPECT_EQ(kernel_->services().audit_events(), 1u);
}

TEST_F(KernelTest, RlimitCalls) {
  EXPECT_EQ(call(kGetrlimit, {num(0x3e8), text("")}).err, EINVAL_);
  EXPECT_EQ(call(kGetrlimit, {num(1), text("")}).err, 0);
  EXPECT_EQ(call(kSetrlimit, {num(1), num(4096)}).err, 0);
  EXPECT_EQ(proc_->rlimit(RLIMIT_FSIZE_), 4096u);
}

TEST_F(KernelTest, KcmpSemantics) {
  EXPECT_EQ(call(kKcmp, {num(proc_->pid()), num(proc_->pid()), num(9), num(0),
                         num(0)})
                .err,
            EINVAL_);
  EXPECT_EQ(
      call(kKcmp, {num(0x1586), num(proc_->pid()), num(0), num(0), num(0)})
          .err,
      ESRCH_);
  EXPECT_EQ(call(kKcmp, {num(proc_->pid()), num(proc_->pid()), num(0), num(0),
                         num(0)})
                .err,
            0);
}

TEST_F(KernelTest, IoctlAlwaysEnotty) {
  const int fd = open_path("/etc/passwd");
  EXPECT_EQ(call(kIoctl, {num(static_cast<std::uint64_t>(fd)),
                          num(0x80087601), text("")})
                .err,
            ENOTTY_);
  EXPECT_EQ(call(kIoctl, {num(99), num(0), text("")}).err, EBADF_);
}

TEST_F(KernelTest, InotifyCalls) {
  const SysResult i = call(kInotifyInit);
  ASSERT_GT(i.ret, 0);
  EXPECT_EQ(call(kInotifyAddWatch, {num(static_cast<std::uint64_t>(i.ret)),
                                    text("testdir_1"), num(2)})
                .ret,
            1);
  const int fd = open_path("/etc/passwd");
  EXPECT_EQ(call(kInotifyAddWatch, {num(static_cast<std::uint64_t>(fd)),
                                    text("testdir_1"), num(2)})
                .err,
            EINVAL_);
}

TEST_F(KernelTest, UnknownSyscallEnosys) { EXPECT_EQ(call(9999).err, ENOSYS_); }

TEST_F(KernelTest, EveryCallCostsTime) {
  const SysResult r = call(kGetpid);
  EXPECT_GT(r.sys_ns, 0);
  EXPECT_GT(r.user_ns, 0);
}

// --- procfs -----------------------------------------------------------------------

TEST_F(KernelTest, ProcStatRenderParseRoundTrip) {
  kernel_->host().run_for(kSecond);
  const std::string text_out = render_proc_stat(kernel_->host());
  auto parsed = parse_proc_stat(text_out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cores.size(), 8u);
  for (int cat = 0; cat < sim::kNumCpuCategories; ++cat) {
    std::int64_t sum = 0;
    for (const auto& row : parsed->cores)
      sum += row.jiffies[static_cast<std::size_t>(cat)];
    EXPECT_EQ(parsed->aggregate.jiffies[static_cast<std::size_t>(cat)], sum);
  }
  // Each category truncates to jiffies independently, so a core's total can
  // undershoot the elapsed jiffies by at most one per category — exactly
  // like the real /proc/stat.
  for (const auto& row : parsed->cores) {
    EXPECT_LE(row.total(), nanos_to_jiffies(kernel_->host().now()));
    EXPECT_GE(row.total(), nanos_to_jiffies(kernel_->host().now()) -
                               sim::kNumCpuCategories);
  }
}

TEST(ProcStat, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_proc_stat("").has_value());
  EXPECT_FALSE(parse_proc_stat("cpu 1 2 3").has_value());
  EXPECT_FALSE(parse_proc_stat("cpux 1 2 3 4 5 6 7 8 9 10").has_value());
}

TEST(ProcStat, ParseSkipsTrailerLines) {
  const std::string text_in =
      "cpu 1 2 3 4 5 6 7 8 9 10\ncpu0 1 2 3 4 5 6 7 8 9 10\nintr 0\nctxt 5\n";
  auto parsed = parse_proc_stat(text_in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->aggregate.total(), 55);
  EXPECT_EQ(parsed->cores[0].busy(), 55 - 4 - 5);
}

// --- services & trace ----------------------------------------------------------------

TEST_F(KernelTest, AuditRateLimiting) {
  for (int i = 0; i < 5000; ++i) kernel_->services().audit_event(1, "flood");
  EXPECT_LE(kernel_->services().audit_events(), 2001u);
  EXPECT_GT(kernel_->services().audit_suppressed(), 0u);
}

TEST_F(KernelTest, AuditWorkChargedToDaemonCgroups) {
  auto& services = kernel_->services();
  for (int i = 0; i < 100; ++i) services.audit_event(1, "e");
  kernel_->host().run_for(kSecond);
  auto* journald =
      kernel_->host().cgroups().find("/system.slice/systemd-journald");
  ASSERT_NE(journald, nullptr);
  EXPECT_GT(journald->cpu().usage, 0);
  EXPECT_EQ(group_->cpu().usage, 0);  // nothing lands on the caller
}

TEST_F(KernelTest, LdiscStreamRaisesSoftirq) {
  kernel_->services().ldisc_stream(3, 1 << 20, 42);
  kernel_->host().run_for(kSecond);
  EXPECT_GT(kernel_->host().core_times(3)[sim::CpuCategory::kSoftirq], 0);
  EXPECT_EQ(kernel_->trace().count(TraceKind::kLdiscFlush, 0,
                                   kernel_->host().now() + 1),
            1u);
}

TEST(KernelTrace, WindowAndCapacity) {
  KernelTrace trace(4);
  for (int i = 0; i < 6; ++i)
    trace.record({.time = i, .kind = TraceKind::kAudit, .pid = 1});
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.count(TraceKind::kAudit, 2, 6), 4u);
  EXPECT_EQ(trace.window(3, 5).size(), 2u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

// Regression for the binary-search window(): eviction at capacity pops the
// deque's front, so queries must stay correct against every survivor set,
// including boundaries that fall exactly on, between, and outside surviving
// timestamps.
TEST(KernelTrace, EvictionAtCapacityPreservesQueries) {
  KernelTrace trace(8);
  std::vector<TraceEvent> all;
  for (int i = 0; i < 50; ++i) {
    TraceEvent e{.time = i * 10,
                 .kind = i % 2 ? TraceKind::kAudit : TraceKind::kIoFlush,
                 .pid = static_cast<std::uint64_t>(i)};
    trace.record(e);
    all.push_back(e);
  }
  ASSERT_EQ(trace.size(), 8u);
  const std::vector<TraceEvent> survivors(all.end() - 8, all.end());

  for (Nanos from : {0, 415, 420, 425, 490, 500}) {
    for (Nanos to : {0, 415, 420, 445, 490, 491, 1000}) {
      std::size_t expected = 0;
      std::size_t expected_audit = 0;
      for (const TraceEvent& e : survivors) {
        if (e.time < from || e.time >= to) continue;
        ++expected;
        if (e.kind == TraceKind::kAudit) ++expected_audit;
      }
      const auto got = trace.window(from, to);
      EXPECT_EQ(got.size(), expected) << "[" << from << ", " << to << ")";
      EXPECT_EQ(trace.count(TraceKind::kAudit, from, to), expected_audit)
          << "[" << from << ", " << to << ")";
      // window() returns the events themselves, in time order.
      for (std::size_t i = 1; i < got.size(); ++i)
        EXPECT_LE(got[i - 1].time, got[i].time);
    }
  }
}

// A producer stamping with a cached (stale) clock must not break the sorted
// invariant the binary search depends on.
TEST(KernelTrace, StaleTimestampClampedToTail) {
  KernelTrace trace(8);
  trace.record({.time = 100, .kind = TraceKind::kAudit, .pid = 1});
  trace.record({.time = 50, .kind = TraceKind::kAudit, .pid = 2});
  const auto events = trace.window(0, 200);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].time, 100);  // clamped up to the tail stamp
  EXPECT_EQ(trace.window(0, 100).size(), 0u);
  EXPECT_EQ(trace.window(100, 101).size(), 2u);
}

}  // namespace
}  // namespace torpedo::kernel
