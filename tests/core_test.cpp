// Tests for the Torpedo core: seed corpus, the batch state machine, the
// Algorithm-3 minimizer, the cause classifier, and campaign plumbing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "core/campaign.h"
#include "core/classify.h"
#include "core/fuzzer.h"
#include "core/minimize.h"
#include "core/provenance.h"
#include "core/seeds.h"
#include "core/workdir.h"
#include "kernel/signals.h"
#include "telemetry/json.h"

namespace torpedo::core {
namespace {

// A fast campaign configuration for unit tests: short rounds, quick
// cycle-out.
CampaignConfig fast_config(runtime::RuntimeKind rt = runtime::RuntimeKind::kRunc) {
  CampaignConfig cfg;
  cfg.runtime = rt;
  cfg.round_duration = kSecond;
  cfg.fuzzer.cycle_out_rounds = 3;
  cfg.num_seeds = 6;
  cfg.batches = 2;
  return cfg;
}

// --- seeds -----------------------------------------------------------------------

class NamedSeedTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NamedSeedTest, IsValidAndNonEmpty) {
  auto seed = named_seed(GetParam());
  ASSERT_TRUE(seed.has_value());
  EXPECT_FALSE(seed->empty());
  EXPECT_TRUE(seed->valid());
}

INSTANTIATE_TEST_SUITE_P(All, NamedSeedTest,
                         ::testing::ValuesIn(named_seed_names()));

TEST(Seeds, UnknownNameIsNullopt) {
  EXPECT_FALSE(named_seed("no-such-seed").has_value());
}

TEST(Seeds, MoonshineCorpusSizeAndDeterminism) {
  const auto a = moonshine_seeds(200);
  EXPECT_EQ(a.size(), 200u);
  const auto b = moonshine_seeds(200);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].hash(), b[i].hash()) << i;
  for (const prog::Program& p : a) EXPECT_TRUE(p.valid());
}

TEST(Seeds, KnownVulnSeedsComeFirst) {
  const auto seeds = moonshine_seeds(10);
  // The first entries are the hand-distilled recreations (§4.1), in the
  // named order, with the gVisor crash seed excluded.
  EXPECT_EQ(seeds[0].hash(), named_seed("appendix-a1-prog0")->hash());
  EXPECT_EQ(seeds[3].hash(), named_seed("sync")->hash());
  for (const prog::Program& p : seeds)
    EXPECT_NE(p.hash(), named_seed("gvisor-open-crash")->hash());
}

TEST(Seeds, GeneratedTailIsInterfaceCoherent) {
  const auto seeds = moonshine_seeds(60);
  // Generated seeds (past the named ones) must serialize/parse cleanly.
  for (std::size_t i = 20; i < seeds.size(); ++i) {
    auto parsed = prog::Program::parse(seeds[i].serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, seeds[i]);
  }
}

// --- fuzzer ------------------------------------------------------------------------

TEST(Fuzzer, AddSeedFiltersDenylist) {
  Campaign campaign(fast_config());
  auto p = prog::Program::parse("pause()\n");
  ASSERT_TRUE(p.has_value());
  // 'pause' isn't denylisted yet, so the seed goes in whole.
  campaign.fuzzer().add_seed(*p);
  EXPECT_EQ(campaign.fuzzer().pending(), 1u);
}

TEST(Fuzzer, RunBatchProducesRoundsAndCorpus) {
  Campaign campaign(fast_config());
  campaign.load_seeds({*named_seed("appendix-a1-prog0"),
                       *named_seed("appendix-a1-prog1"),
                       *named_seed("appendix-a1-prog2")});
  const BatchResult result = campaign.run_one_batch();
  EXPECT_GT(result.rounds, 3);  // candidate + triage + baseline + mutate...
  EXPECT_GT(result.baseline_score, 0);
  EXPECT_GE(result.best_score, result.baseline_score);
  EXPECT_EQ(result.final_programs.size(), 3u);
  EXPECT_EQ(campaign.corpus().size(), 3u);
  EXPECT_EQ(campaign.observer().log().size(),
            static_cast<std::size_t>(result.rounds));
}

TEST(Fuzzer, CycleOutBoundsRounds) {
  CampaignConfig cfg = fast_config();
  cfg.fuzzer.cycle_out_rounds = 2;
  Campaign campaign(cfg);
  campaign.load_seeds({*named_seed("kcmp-pair"), *named_seed("kcmp-pair"),
                       *named_seed("kcmp-pair")});
  const BatchResult result = campaign.run_one_batch();
  // candidate + triage + baseline + (mutate [+ confirm]) per attempt; with
  // cycle_out=2 and few improvements, this stays small.
  EXPECT_LE(result.rounds, 3 + 2 * (2 + 2 * result.improvements + 4));
}

TEST(Fuzzer, GeneratesWhenQueueEmpty) {
  Campaign campaign(fast_config());
  EXPECT_EQ(campaign.fuzzer().pending(), 0u);
  const BatchResult result = campaign.run_one_batch();  // generated programs
  EXPECT_EQ(result.final_programs.size(), 3u);
}

// A deterministic oracle for scripting the batch loop: returns queued
// scores in call order (base, mutate, confirm, ...), clamping to the last.
class ScriptedOracle : public oracle::Oracle {
 public:
  explicit ScriptedOracle(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  std::string_view name() const override { return "scripted"; }
  double score(const observer::Observation&) const override {
    return scores_[std::min(next_++, scores_.size() - 1)];
  }
  std::vector<oracle::Violation> flag(
      const observer::Observation&) const override {
    return {};
  }

 private:
  std::vector<double> scores_;
  mutable std::size_t next_ = 0;
};

// Regression: when the batch ends on a *rejected* shuffle-confirm round, the
// observer log's tail holds rotated stats for rejected mutants. Retiring the
// batch from log().back() gave each program a different program's coverage
// signal; the fuzzer must retire from the last current-aligned round.
TEST(Fuzzer, ShuffleConfirmRejectionRetiresAlignedRound) {
  Campaign campaign(fast_config());

  // base=10, mutate=20 (a significant improvement), confirm=5 (confirmation
  // fails) -> exactly one rejected confirm, then cycle-out.
  ScriptedOracle oracle({10, 20, 5});
  FuzzerConfig fcfg;
  fcfg.verify_triage = false;
  fcfg.use_coverage = false;
  fcfg.confirm_shuffle = true;
  fcfg.use_resource_score = true;
  fcfg.cycle_out_rounds = 1;
  fcfg.auto_denylist = false;
  prog::Generator generator{Rng(42)};
  prog::Mutator mutator(generator);
  feedback::Corpus corpus;
  TorpedoFuzzer fuzzer(campaign.observer(), oracle, generator, mutator,
                       corpus, fcfg);
  fuzzer.add_seed(*named_seed("sync"));
  fuzzer.add_seed(*named_seed("kcmp-pair"));
  fuzzer.add_seed(*named_seed("audit-oob"));

  const BatchResult result = fuzzer.run_batch();
  const auto& log = campaign.observer().log();

  // Scenario shape: candidate + baseline + mutate + rejected confirm, and
  // the trailing confirm round really is rotated out of batch order.
  ASSERT_EQ(result.rounds, 4);
  ASSERT_EQ(result.rejected_confirms, 1);
  EXPECT_NE(log.back().programs, result.final_programs);

  // The retiring round's executor order matches the final programs...
  ASSERT_GE(result.corpus_signal_round, 0);
  ASSERT_LT(static_cast<std::size_t>(result.corpus_signal_round), log.size());
  const observer::RoundResult& aligned = log[result.corpus_signal_round];
  EXPECT_EQ(aligned.programs, result.final_programs);

  // ...and each corpus entry carries that round's per-slot signal, not the
  // rotated stats of the confirm round.
  ASSERT_EQ(corpus.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(corpus.entry(i).program, result.final_programs[i]) << i;
    EXPECT_EQ(corpus.entry(i).signal.elements(),
              aligned.stats[i].signal.elements())
        << i;
  }
}

TEST(Fuzzer, AutoDenylistsBlockingCalls) {
  Campaign campaign(fast_config());
  auto pause_prog = prog::Program::parse("pause()\n");
  campaign.load_seeds({*pause_prog, *named_seed("kcmp-pair"),
                       *named_seed("appendix-a1-prog2")});
  campaign.run_one_batch();
  const auto& denylist = campaign.fuzzer().denylist();
  EXPECT_NE(std::find(denylist.begin(), denylist.end(), "pause"),
            denylist.end());
}

// --- minimizer ---------------------------------------------------------------------

TEST(Minimize, SameViolationsComparesHeuristicSets) {
  using oracle::Violation;
  const std::vector<Violation> a = {{"h1", "cpu0", 1, 2}, {"h2", "cpu1", 3, 4}};
  const std::vector<Violation> b = {{"h2", "cpu5", 9, 9}, {"h1", "cpu7", 0, 0}};
  const std::vector<Violation> c = {{"h1", "cpu0", 1, 2}};
  EXPECT_TRUE(same_violations(a, b));  // subjects may move between cores
  EXPECT_FALSE(same_violations(a, c));
  EXPECT_TRUE(same_violations({}, {}));
}

TEST(Minimize, StripsJunkAroundSync) {
  Campaign campaign(fast_config());
  SingleRunner runner(campaign.observer(), campaign.io_oracle());
  // sync padded with unrelated calls.
  auto padded = prog::Program::parse(
      "getpid()\n"
      "mmap(0x7f0000000000, 0x1000, 0x3, 0x32, 0xffffffffffffffff, 0x0)\n"
      "sync()\n"
      "uname('')\n");
  ASSERT_TRUE(padded.has_value());
  const prog::Program minimized = minimize(*padded, runner);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.calls()[0].desc->name, "sync");
}

TEST(Minimize, RecordsRemovalHistory) {
  Campaign campaign(fast_config());
  SingleRunner runner(campaign.observer(), campaign.io_oracle());
  auto padded = prog::Program::parse(
      "getpid()\n"
      "sync()\n"
      "uname('')\n");
  ASSERT_TRUE(padded.has_value());
  std::vector<MinimizeStep> history;
  const prog::Program minimized = minimize(*padded, runner, &history);
  ASSERT_EQ(minimized.size(), 1u);
  // One trial per removal attempt, each naming the call it tried to drop.
  ASSERT_EQ(history.size(), 3u);
  std::size_t kept = 0;
  for (const MinimizeStep& step : history) {
    EXPECT_FALSE(step.call_name.empty());
    // sync is load-bearing: its removal trial must have been rolled back.
    if (step.call_name == "sync") EXPECT_FALSE(step.kept_removal);
    if (step.kept_removal) ++kept;
  }
  // getpid and uname were both dropped.
  EXPECT_EQ(kept, 2u);
  EXPECT_EQ(history.back().size_after, minimized.size());
}

TEST(Minimize, PreservesResourceChains) {
  Campaign campaign(fast_config());
  SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  // fallocate needs its creat to produce the fd; minimization must keep it.
  const prog::Program minimized =
      minimize(*named_seed("fallocate-sigxfsz"), runner);
  ASSERT_EQ(minimized.size(), 2u);
  EXPECT_EQ(minimized.calls()[0].desc->name, "creat");
  EXPECT_EQ(minimized.calls()[1].desc->name, "fallocate");
}

TEST(Minimize, NoViolationsReturnsOriginal) {
  Campaign campaign(fast_config());
  SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  const prog::Program original = *named_seed("kcmp-pair");
  const prog::Program minimized = minimize(original, runner);
  EXPECT_EQ(minimized, original);
}

// --- classifier --------------------------------------------------------------------

TEST(Classifier, ClassifiesByDominantTracePattern) {
  kernel::KernelConfig kcfg;
  kernel::SimKernel kernel(kcfg);
  CauseClassifier classifier(kernel);
  exec::RunStats stats;

  auto fill = [&](kernel::TraceKind kind, int n) {
    kernel.trace().clear();
    for (int i = 0; i < n; ++i)
      kernel.trace().record({.time = 100 + i, .kind = kind, .pid = 1});
  };

  fill(kernel::TraceKind::kModprobe, 50);
  EXPECT_EQ(classifier.classify(0, 1000, stats), "repeated kernel modprobe");

  fill(kernel::TraceKind::kCoredump, 50);
  stats.last_fatal_signal = kernel::SIGXFSZ_;
  EXPECT_EQ(classifier.classify(0, 1000, stats), "coredump via SIGXFSZ");
  stats.last_fatal_signal = kernel::SIGSEGV_;
  EXPECT_EQ(classifier.classify(0, 1000, stats), "coredump via SIGSEGV");

  fill(kernel::TraceKind::kIoFlush, 50);
  EXPECT_EQ(classifier.classify(0, 1000, stats),
            "triggering IO buffer flushes");

  fill(kernel::TraceKind::kAudit, 500);
  EXPECT_EQ(classifier.classify(0, 1000, stats),
            "audit daemon workload (kauditd/journald)");

  kernel.trace().clear();
  EXPECT_EQ(classifier.classify(0, 1000, stats),
            "unclassified kernel interaction");
}

TEST(Classifier, WindowRespected) {
  kernel::KernelConfig kcfg;
  kernel::SimKernel kernel(kcfg);
  CauseClassifier classifier(kernel);
  for (int i = 0; i < 50; ++i)
    kernel.trace().record(
        {.time = 5000 + i, .kind = kernel::TraceKind::kModprobe, .pid = 1});
  exec::RunStats stats;
  EXPECT_EQ(classifier.classify(0, 1000, stats),
            "unclassified kernel interaction");
  EXPECT_EQ(classifier.classify(5000, 6000, stats),
            "repeated kernel modprobe");
}

TEST(Classifier, NewCausePolicy) {
  EXPECT_TRUE(CauseClassifier::is_new_cause("repeated kernel modprobe"));
  EXPECT_FALSE(CauseClassifier::is_new_cause("coredump via SIGXFSZ"));
  EXPECT_FALSE(CauseClassifier::is_new_cause("triggering IO buffer flushes"));
}

TEST(Classifier, SummarizeSymptomsDedups) {
  using oracle::Violation;
  const std::vector<Violation> v = {{"a", "x", 0, 0},
                                    {"b", "y", 0, 0},
                                    {"a", "z", 0, 0}};
  EXPECT_EQ(summarize_symptoms(v), "a; b");
}

TEST(Finding, SyscallListJoins) {
  Finding f;
  f.syscalls = {"sync", "fsync"};
  EXPECT_EQ(f.syscall_list(), "sync, fsync");
}

// --- workdir persistence --------------------------------------------------------------

class WorkdirTest : public ::testing::Test {
 protected:
  WorkdirTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("torpedo-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  ~WorkdirTest() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(WorkdirTest, SeedFilesRoundTrip) {
  const std::vector<prog::Program> seeds = {
      *named_seed("sync"), *named_seed("audit-oob"),
      *named_seed("appendix-a1-prog1")};
  EXPECT_EQ(write_seed_files(dir_, seeds), 3u);
  std::vector<std::string> errors;
  const auto loaded = load_seed_files(dir_, &errors);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_TRUE(errors.empty());
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_EQ(loaded[i], seeds[i]) << i;
}

TEST_F(WorkdirTest, LoadSkipsBrokenSeedFiles) {
  write_seed_files(dir_, {*named_seed("sync")});
  std::ofstream bad(dir_ / "seed-999.prog");
  bad << "florble(0x1)\n";
  bad.close();
  std::vector<std::string> errors;
  const auto loaded = load_seed_files(dir_, &errors);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(errors.size(), 1u);
}

TEST_F(WorkdirTest, MissingDirectoryIsEmpty) {
  EXPECT_TRUE(load_seed_files(dir_ / "nope").empty());
}

TEST_F(WorkdirTest, CorpusRoundTrip) {
  feedback::Corpus corpus;
  feedback::SignalSet sig;
  sig.add(1);
  corpus.add(*named_seed("sync"), sig, 21.5);
  corpus.add(*named_seed("audit-oob"), sig, 33.25);
  const auto file = dir_ / "corpus.txt";
  save_corpus(file, corpus);

  feedback::Corpus restored;
  EXPECT_EQ(load_corpus(file, restored), 2u);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.entry(0).program, *named_seed("sync"));
  EXPECT_DOUBLE_EQ(restored.entry(0).best_score, 21.5);
  EXPECT_DOUBLE_EQ(restored.entry(1).best_score, 33.25);
  // Loading again dedups by content.
  EXPECT_EQ(load_corpus(file, restored), 0u);
  EXPECT_EQ(restored.size(), 2u);
}

TEST_F(WorkdirTest, ReportIsWritten) {
  CampaignReport report;
  Finding f;
  f.program = *named_seed("sync");
  f.serialized = f.program.serialize();
  f.syscalls = {"sync"};
  f.cause = "triggering IO buffer flushes";
  f.violations = {{"nonfuzz-core-iowait-high", "cpu6", 0.07, 0.02}};
  report.findings.push_back(std::move(f));
  const auto file = dir_ / "report.txt";
  save_report(file, report);
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("triggering IO buffer flushes"),
            std::string::npos);
  EXPECT_NE(buffer.str().find("sync()"), std::string::npos);
  // Violations are written as structured JSON, one object per line.
  const std::string text = buffer.str();
  const auto pos = text.find("violation: ");
  ASSERT_NE(pos, std::string::npos);
  const std::string line =
      text.substr(pos + 11, text.find('\n', pos) - pos - 11);
  const auto parsed = telemetry::parse_json_object(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->at("heuristic").text, "nonfuzz-core-iowait-high");
  EXPECT_EQ(parsed->at("subject").text, "cpu6");
}

TEST_F(WorkdirTest, ViolationBundlesRoundTrip) {
  CampaignReport report;
  Finding f;
  f.program = *named_seed("sync");
  f.serialized = f.program.serialize();
  f.syscalls = {"sync"};
  f.cause = "triggering IO buffer flushes";
  report.findings.push_back(std::move(f));

  Provenance p;
  p.finding_index = 0;
  p.original_serialized = "getpid()\nsync()\n";
  p.minimized_serialized = "sync()\n";
  p.program_hash = 0xDEADBEEFCAFE1234ULL;
  p.source_round = 7;
  p.confirm_rounds = 3;
  p.oracle_score = 6.96;
  p.cause = "triggering IO buffer flushes";
  p.symptoms = "nonfuzz-core-iowait-high";
  p.syscalls = "sync";
  p.final_violations = {{"nonfuzz-core-iowait-high", "cpu6", 0.04, 0.02}};
  p.observation.round = 7;
  p.observation.window_start = 1000;
  p.observation.window_end = 6000;
  observer::CoreUsage core;
  core.core = 0;
  core.jiffies[static_cast<int>(sim::CpuCategory::kUser)] = 40;
  core.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] = 60;
  p.observation.cores.push_back(core);
  p.observation.processes.push_back({42, "kworker/u8:1", "/", 12.5});
  p.trace_events.push_back(
      {2000, kernel::TraceKind::kIoFlush, 42, "sync bytes=1024"});
  p.minimize_history.push_back({0, "getpid", true, 1});
  report.provenance.push_back(std::move(p));

  EXPECT_EQ(write_violation_bundles(dir_, report), 1u);
  const auto bundle_dir = dir_ / "violations" / "000";
  for (const char* name :
       {"bundle.json", "report.md", "program.prog", "original.prog"})
    EXPECT_TRUE(std::filesystem::exists(bundle_dir / name)) << name;

  std::ifstream in(bundle_dir / "bundle.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto bundle = telemetry::parse_json_object(buffer.str());
  ASSERT_TRUE(bundle.has_value());
  EXPECT_EQ(bundle->at("program_hash").text, "deadbeefcafe1234");
  EXPECT_EQ(bundle->at("syscalls").text, "sync");
  EXPECT_EQ(bundle->at("heuristics").text, "nonfuzz-core-iowait-high");
  EXPECT_EQ(bundle->at("source_round").integer, 7);
  EXPECT_EQ(bundle->at("program").text, "sync()\n");

  // Nested evidence comes back as raw JSON that itself parses.
  const auto obs = telemetry::parse_json_object(bundle->at("observation").text);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->at("window_start_ns").integer, 1000);
  const auto cores =
      telemetry::parse_json_array_of_objects(obs->at("cores").text);
  ASSERT_TRUE(cores.has_value());
  ASSERT_EQ(cores->size(), 1u);
  EXPECT_DOUBLE_EQ((*cores)[0].at("busy_percent").number, 40.0);

  const auto events =
      telemetry::parse_json_array_of_objects(bundle->at("kernel_trace").text);
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].at("kind").text, "io_flush");
  EXPECT_EQ((*events)[0].at("time_ns").integer, 2000);

  const auto history = telemetry::parse_json_array_of_objects(
      bundle->at("minimize_history").text);
  ASSERT_TRUE(history.has_value());
  ASSERT_EQ(history->size(), 1u);
  EXPECT_EQ((*history)[0].at("call").text, "getpid");

  // The human-readable companion tells the same story.
  std::ifstream md_in(bundle_dir / "report.md");
  std::stringstream md;
  md << md_in.rdbuf();
  EXPECT_NE(md.str().find("triggering IO buffer flushes"), std::string::npos);
  EXPECT_NE(md.str().find("io_flush"), std::string::npos);
}

// --- campaign ----------------------------------------------------------------------

TEST(CampaignTest, ConfigDrivesExecutorLayout) {
  CampaignConfig cfg = fast_config();
  cfg.num_executors = 2;
  Campaign campaign(cfg);
  EXPECT_EQ(campaign.observer().executor_count(), 2u);
  EXPECT_EQ(campaign.executor(0).container().spec().cpuset_cpus, "0");
  EXPECT_EQ(campaign.executor(1).container().spec().cpuset_cpus, "1");
  EXPECT_DOUBLE_EQ(campaign.executor(0).container().spec().cpus, 1.0);
}

TEST(CampaignTest, ExecutorCoreMapReflectsPinning) {
  CampaignConfig cfg = fast_config();
  Campaign pinned(cfg);
  const auto map = pinned.executor_core_map();
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.at(0), 0u);
  EXPECT_EQ(map.at(1), 1u);
  EXPECT_EQ(map.at(2), 2u);

  // Unpinned executors share the whole host cpuset: no core identifies an
  // executor, so the map must be empty.
  cfg.pin_executors = false;
  Campaign unpinned(cfg);
  EXPECT_TRUE(unpinned.executor_core_map().empty());
}

// Regression: finalize() used to map a fuzz-core-utilization-low violation
// on cpuN to executor N unconditionally — wrong whenever executors are not
// pinned 1:1 to cores 0..N-1.
TEST(CampaignTest, AttributionFollowsActualCpusets) {
  using oracle::Violation;
  const std::vector<Violation> low = {
      {"fuzz-core-utilization-low", "cpu5", 10.0, 80.0}};

  // Executors pinned off the identity layout: cpu4->slot0, cpu5->slot1, ...
  const std::unordered_map<int, std::size_t> shifted = {{4, 0}, {5, 1}, {6, 2}};
  EXPECT_EQ(implicated_slots(low, 3, shifted),
            (std::vector<bool>{false, true, false}));

  // Unpinned (empty map): per-core attribution is guesswork, so the whole
  // batch is implicated. The old code would have indexed slot 5.
  EXPECT_EQ(implicated_slots(low, 3, {}),
            (std::vector<bool>{true, true, true}));

  // Violations on non-executor subjects always implicate the whole batch.
  const std::vector<Violation> host_wide = {
      {"nonfuzz-core-iowait-high", "cpu7", 0.5, 0.1}};
  EXPECT_EQ(implicated_slots(host_wide, 3, shifted),
            (std::vector<bool>{true, true, true}));

  // So does a low core nobody is pinned to.
  const std::vector<Violation> stray = {
      {"fuzz-core-utilization-low", "cpu0", 10.0, 80.0}};
  EXPECT_EQ(implicated_slots(stray, 3, shifted),
            (std::vector<bool>{true, true, true}));

  // No violations -> nobody implicated.
  EXPECT_EQ(implicated_slots({}, 3, shifted),
            (std::vector<bool>{false, false, false}));
}

// Regression for the incremental flag scan: bounding the observer's round
// log must not change what a campaign reports, because every round's
// evidence is extracted by the scan hook before prune_log() can drop it.
TEST(CampaignTest, LogRetentionDoesNotChangeReport) {
  CampaignConfig cfg = fast_config();
  cfg.batches = 1;
  const std::vector<prog::Program> seeds = {*named_seed("sync"),
                                            *named_seed("kcmp-pair"),
                                            *named_seed("appendix-a1-prog2")};

  Campaign unlimited(cfg);
  unlimited.load_seeds(seeds);
  unlimited.run_one_batch();
  const CampaignReport a = unlimited.finalize();

  cfg.observer.max_log_rounds = 1;  // prune as aggressively as possible
  Campaign bounded(cfg);
  bounded.load_seeds(seeds);
  bounded.run_one_batch();
  // The bound is enforced between batches.
  EXPECT_EQ(bounded.observer().log().size(), 1u);
  const CampaignReport b = bounded.finalize();

  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.crash_suspects, b.crash_suspects);
  EXPECT_EQ(a.confirmations_run, b.confirmations_run);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].serialized, b.findings[i].serialized) << i;
    EXPECT_EQ(a.findings[i].cause, b.findings[i].cause) << i;
    EXPECT_EQ(a.findings[i].source_round, b.findings[i].source_round) << i;
  }
}

TEST(CampaignTest, RunCFindsSyncFinding) {
  CampaignConfig cfg = fast_config();
  cfg.batches = 1;
  Campaign campaign(cfg);
  campaign.load_seeds({*named_seed("sync"), *named_seed("kcmp-pair"),
                       *named_seed("appendix-a1-prog2")});
  campaign.run_one_batch();
  const CampaignReport report = campaign.finalize();
  ASSERT_FALSE(report.findings.empty());
  bool found_sync = false;
  for (const Finding& f : report.findings)
    if (f.cause == "triggering IO buffer flushes") found_sync = true;
  EXPECT_TRUE(found_sync);
  EXPECT_GT(report.rounds, 0);
  EXPECT_GT(report.executions, 0u);
  EXPECT_GT(report.suspects, 0);
  EXPECT_GT(report.confirmations_run, 0);
}

TEST(CampaignTest, ProvenanceCapturedPerFinding) {
  CampaignConfig cfg = fast_config();
  cfg.batches = 1;
  Campaign campaign(cfg);
  campaign.load_seeds({*named_seed("sync"), *named_seed("kcmp-pair"),
                       *named_seed("appendix-a1-prog2")});
  campaign.run_one_batch();
  const CampaignReport report = campaign.finalize();
  ASSERT_FALSE(report.findings.empty());

  // Every finding carries a full evidence record, and every record points
  // back at the finding it agrees with.
  EXPECT_EQ(report.provenance.size(), report.findings.size());
  for (const Provenance& p : report.provenance) {
    ASSERT_GE(p.finding_index, 0);
    ASSERT_LT(static_cast<std::size_t>(p.finding_index),
              report.findings.size());
    const Finding& f = report.findings[static_cast<std::size_t>(p.finding_index)];
    EXPECT_EQ(p.cause, f.cause);
    EXPECT_EQ(p.syscalls, f.syscall_list());
    EXPECT_EQ(p.minimized_serialized, f.serialized);
    EXPECT_FALSE(p.original_serialized.empty());
    EXPECT_FALSE(p.final_violations.empty());
    EXPECT_GE(p.source_round, 0);
    EXPECT_GT(p.confirm_rounds, 0);
    // The captured observation is the finding's confirmation window, with
    // the per-core evidence intact.
    EXPECT_FALSE(p.observation.cores.empty());
    EXPECT_GT(p.observation.window_end, p.observation.window_start);
  }

  // The sync finding's cause came from KernelTrace io_flush events; its
  // bundle must carry that window.
  bool sync_has_trace = false;
  for (const Provenance& p : report.provenance)
    if (p.cause == "triggering IO buffer flushes" && !p.trace_events.empty())
      sync_has_trace = true;
  EXPECT_TRUE(sync_has_trace);
}

TEST(CampaignTest, GvisorFindsOpenCrash) {
  CampaignConfig cfg = fast_config(runtime::RuntimeKind::kGvisor);
  cfg.batches = 1;
  Campaign campaign(cfg);
  campaign.load_seeds({*named_seed("gvisor-open-crash"),
                       *named_seed("gvisor-prog1"),
                       *named_seed("gvisor-prog2")});
  campaign.run_one_batch();
  const CampaignReport report = campaign.finalize();
  ASSERT_FALSE(report.crashes.empty());
  EXPECT_NE(report.crashes[0].message.find("sentry panic"),
            std::string::npos);
  EXPECT_TRUE(report.crashes[0].reproduced);
}

TEST(CampaignTest, FindingsDedupAcrossMutants) {
  CampaignConfig cfg = fast_config();
  cfg.batches = 1;
  Campaign campaign(cfg);
  // Two sync-containing seeds; the report should carry one sync row per
  // distinct (syscalls, cause) pair, not one per mutant.
  campaign.load_seeds({*named_seed("sync"), *named_seed("sync"),
                       *named_seed("kcmp-pair")});
  campaign.run_one_batch();
  const CampaignReport report = campaign.finalize();
  int sync_rows = 0;
  for (const Finding& f : report.findings)
    if (f.syscall_list() == "sync") ++sync_rows;
  EXPECT_LE(sync_rows, 1);
}

}  // namespace
}  // namespace torpedo::core
