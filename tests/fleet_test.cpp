// Fleet tests: the wire codec (round-trips and hostile-input paths), the
// frame transport, the CorpusLedger rejoin contract, the fleet manifest,
// metrics aggregation, and end-to-end fork-mode fleets — including the
// deterministic crash/restart path via the crash_after_batch hook.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/seeds.h"
#include "feedback/corpus_hub.h"
#include "feedback/wire.h"
#include "fleet/coordinator.h"
#include "fleet/frame.h"
#include "fleet/manifest.h"
#include "fleet/worker.h"
#include "telemetry/aggregate.h"
#include "util/rng.h"
#include "util/time.h"

using namespace torpedo;
using namespace torpedo::fleet;

namespace {

namespace fs = std::filesystem;

feedback::CorpusEntry entry_for(const char* seed_name, double score) {
  feedback::CorpusEntry entry;
  entry.program = *core::named_seed(seed_name);
  entry.signal.add(entry.program.hash());
  entry.best_score = score;
  return entry;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- wire codec ------------------------------------------------------------------

TEST(WireCodec, CorpusEntryRoundTripsAndReencodesIdentically) {
  feedback::CorpusEntry entry = entry_for("sync", 3.25);
  // Insert signal out of order; the codec must sort before writing.
  entry.signal.add(0xDEAD);
  entry.signal.add(0x0001);
  entry.lineage.parent_hash = 0xFEEDFACE;
  entry.lineage.op = feedback::OriginOp::kSplice;
  entry.lineage.birth_round = 7;
  entry.lineage.birth_shard = 1;

  feedback::WireWriter w;
  feedback::encode_corpus_entry(w, entry);
  const std::string bytes = w.take();

  feedback::WireReader r(bytes);
  auto decoded = feedback::decode_corpus_entry(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(decoded->program.hash(), entry.program.hash());
  EXPECT_EQ(decoded->best_score, 3.25);
  EXPECT_EQ(decoded->lineage.parent_hash, 0xFEEDFACEu);
  EXPECT_EQ(decoded->lineage.op, feedback::OriginOp::kSplice);
  EXPECT_EQ(decoded->lineage.birth_round, 7);
  EXPECT_EQ(decoded->lineage.birth_shard, 1);
  EXPECT_TRUE(decoded->signal.contains(0xDEAD));
  EXPECT_TRUE(decoded->signal.contains(0x0001));

  // Determinism contract: decode -> re-encode is byte-identical.
  feedback::WireWriter w2;
  feedback::encode_corpus_entry(w2, *decoded);
  EXPECT_EQ(w2.data(), bytes);
}

TEST(WireCodec, PublishBodyRoundTrips) {
  feedback::PublishBody body;
  body.entries = {entry_for("sync", 1.0), entry_for("kcmp-pair", 2.0)};
  body.denylist = {"pause", "sync"};
  const std::string payload = feedback::encode_publish(body);

  auto decoded = feedback::decode_publish(payload);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].program.hash(), body.entries[0].program.hash());
  EXPECT_EQ(decoded->entries[1].program.hash(), body.entries[1].program.hash());
  EXPECT_EQ(decoded->denylist, body.denylist);
  // Empty body round-trips too.
  EXPECT_TRUE(feedback::decode_publish(feedback::encode_publish({})));
}

TEST(WireCodec, DeltaBodyRoundTrips) {
  feedback::DeltaBody body;
  body.epoch = 42;
  body.entries = {entry_for("sync", 1.5)};
  body.denylist = {"kcmp"};
  auto decoded = feedback::decode_delta(feedback::encode_delta(body));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 42u);
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_EQ(decoded->entries[0].best_score, 1.5);
  EXPECT_EQ(decoded->denylist, std::vector<std::string>{"kcmp"});
}

TEST(WireCodec, TruncatedPayloadIsRejectedAtEveryPrefix) {
  feedback::PublishBody body;
  body.entries = {entry_for("sync", 1.0)};
  body.denylist = {"pause"};
  const std::string payload = feedback::encode_publish(body);
  // A short read can stop anywhere; no prefix may decode (or crash).
  for (std::size_t n = 0; n < payload.size(); ++n)
    EXPECT_FALSE(feedback::decode_publish(payload.substr(0, n)).has_value())
        << "prefix of " << n << " bytes decoded";
}

TEST(WireCodec, TrailingBytesAreRejected) {
  const std::string payload = feedback::encode_publish({});
  EXPECT_TRUE(feedback::decode_publish(payload).has_value());
  EXPECT_FALSE(feedback::decode_publish(payload + "x").has_value());
}

TEST(WireCodec, UnknownOriginOpIsRejected) {
  feedback::WireWriter w;
  feedback::encode_corpus_entry(w, entry_for("sync", 1.0));
  std::string bytes = w.take();
  // The op byte sits right after the program string and score + parent hash.
  feedback::WireReader probe(bytes);
  const std::string text = probe.str();
  const std::size_t op_offset = 4 + text.size() + 8 + 8;
  ASSERT_LT(op_offset, bytes.size());
  bytes[op_offset] = char(0x7F);
  feedback::WireReader r(bytes);
  EXPECT_FALSE(feedback::decode_corpus_entry(r).has_value());
}

TEST(WireCodec, HostileListLengthDoesNotAllocate) {
  // A 4 GiB entry count must be rejected by the bounds check, not reserved.
  feedback::WireWriter w;
  w.u32(0xFFFFFFFFu);
  EXPECT_FALSE(feedback::decode_publish(w.data()).has_value());
}

TEST(WireCodec, ReaderShortReadFlipsOkAndStaysDown) {
  feedback::WireReader r(std::string_view("\x01\x02", 2));
  EXPECT_EQ(r.u8(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // only one byte left
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u64(), 0u);  // stays down
  EXPECT_FALSE(r.at_end());
}

// --- frame transport -------------------------------------------------------------

TEST(FrameTransport, SendRecvOverSocketpairAndEofAfterClose) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(send_frame(fds[0], FrameType::kHello, "payload"));
  ASSERT_TRUE(send_frame(fds[0], FrameType::kDone, ""));

  Frame frame;
  ASSERT_TRUE(recv_frame(fds[1], &frame));
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.payload, "payload");
  ASSERT_TRUE(recv_frame(fds[1], &frame));
  EXPECT_EQ(frame.type, FrameType::kDone);
  EXPECT_TRUE(frame.payload.empty());

  close(fds[0]);
  EXPECT_FALSE(recv_frame(fds[1], &frame));  // EOF
  close(fds[1]);
}

TEST(FrameTransport, FrameBufferReassemblesByteByByte) {
  const std::string stream = encode_frame(FrameType::kHello, "hi") +
                             encode_frame(FrameType::kPublish,
                                          std::string(300, 'x'));
  FrameBuffer buf;
  std::vector<Frame> frames;
  Frame frame;
  for (char c : stream) {
    buf.append(&c, 1);
    while (buf.next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHello);
  EXPECT_EQ(frames[0].payload, "hi");
  EXPECT_EQ(frames[1].type, FrameType::kPublish);
  EXPECT_EQ(frames[1].payload, std::string(300, 'x'));
  EXPECT_FALSE(buf.error());
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(FrameTransport, OversizedLengthPrefixPoisonsTheBuffer) {
  const std::uint32_t length = kMaxFramePayload + 1;
  char header[5];
  for (int i = 0; i < 4; ++i)
    header[i] = static_cast<char>((length >> (8 * i)) & 0xff);
  header[4] = 1;
  FrameBuffer buf;
  buf.append(header, sizeof(header));
  Frame frame;
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.error());
  // A poisoned buffer never yields again, even when valid bytes follow.
  const std::string good = encode_frame(FrameType::kHello, "x");
  buf.append(good.data(), good.size());
  EXPECT_FALSE(buf.next(&frame));
  EXPECT_TRUE(buf.error());
}

// --- ledger rejoin ---------------------------------------------------------------

TEST(CorpusLedgerTest, RejoinRewindsTheCursorToReplayCommittedStream) {
  feedback::CorpusLedger ledger(2);
  ledger.publish(0, {entry_for("sync", 1.0)}, {"sync"});
  ledger.publish(1, {entry_for("kcmp-pair", 2.0)}, {});
  ASSERT_TRUE(ledger.epoch_ready());
  ledger.commit_epoch();
  EXPECT_EQ(ledger.pull(0).entries.size(), 1u);
  EXPECT_EQ(ledger.pull(1).entries.size(), 1u);

  // Worker 1 dies: the barrier shrinks, worker 0 carries the next epoch.
  ledger.leave(1);
  EXPECT_TRUE(ledger.left(1));
  ledger.publish(0, {entry_for("readlink-eloop", 3.0)}, {});
  ASSERT_TRUE(ledger.epoch_ready());
  ledger.commit_epoch();

  // Restart: rejoin rewinds the cursor, so the first pull replays every
  // committed entry that did not originate from this worker — the ledger
  // itself is the checkpoint.
  ledger.rejoin(1);
  EXPECT_FALSE(ledger.left(1));
  EXPECT_EQ(ledger.active(), 2);
  const feedback::CorpusDelta replay = ledger.pull(1);
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.entries[0].program.hash(),
            core::named_seed("sync")->hash());
  EXPECT_EQ(replay.entries[1].program.hash(),
            core::named_seed("readlink-eloop")->hash());
  EXPECT_EQ(replay.denylist, std::vector<std::string>{"sync"});

  // And the barrier needs both again.
  ledger.publish(1, {}, {});
  EXPECT_FALSE(ledger.epoch_ready());
  ledger.publish(0, {}, {});
  EXPECT_TRUE(ledger.epoch_ready());
}

// --- manifest --------------------------------------------------------------------

Manifest example_manifest() {
  Manifest m;
  m.workers = 3;
  m.max_restarts = 5;
  m.defaults.runtime = "runc";
  m.defaults.batches = 4;
  m.defaults.num_executors = 2;
  m.defaults.round_duration = 50 * kMillisecond;
  m.defaults.num_seeds = 6;
  m.defaults.seed = 0xBEEF;
  WorkerSpec s;
  s.worker = 1;
  s.runtime = "gvisor";
  s.seed = 99;
  s.batches = 2;
  s.cpus = 1.5;
  s.cpuset = "0-1";
  m.matrix.push_back(s);
  return m;
}

TEST(FleetManifest, JsonRoundTripPreservesMatrixOverrides) {
  const Manifest m = example_manifest();
  auto parsed = manifest_from_json(manifest_to_json(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workers, 3);
  EXPECT_EQ(parsed->max_restarts, 5);
  EXPECT_EQ(parsed->defaults.batches, 4);
  EXPECT_EQ(parsed->defaults.seed, 0xBEEFu);
  ASSERT_EQ(parsed->matrix.size(), 1u);
  EXPECT_EQ(parsed->matrix[0].worker, 1);
  EXPECT_EQ(*parsed->matrix[0].runtime, "gvisor");
  EXPECT_EQ(*parsed->matrix[0].seed, 99u);
  EXPECT_EQ(*parsed->matrix[0].batches, 2);
  EXPECT_EQ(parsed->matrix[0].cpuset, "0-1");
  // Serialization is canonical: one more round trip is textually stable.
  EXPECT_EQ(manifest_to_json(*parsed), manifest_to_json(m));
}

TEST(FleetManifest, WorkerConfigAppliesDefaultsAndOverrides) {
  const Manifest m = example_manifest();
  // Worker 0: pure defaults with the mixed per-worker seed stream.
  const core::CampaignConfig c0 = m.worker_config(0);
  EXPECT_EQ(c0.batches, 4);
  EXPECT_EQ(c0.seed, mix_seed(0xBEEF, 0));
  EXPECT_EQ(m.worker_cpuset(0), "");
  // Worker 1: explicit seed, batch count, runtime, and cpuset.
  const core::CampaignConfig c1 = m.worker_config(1);
  EXPECT_EQ(c1.seed, 99u);
  EXPECT_EQ(c1.batches, 2);
  EXPECT_EQ(c1.runtime, runtime::RuntimeKind::kGvisor);
  EXPECT_EQ(c1.cpus_per_container, 1.5);
  EXPECT_EQ(m.worker_cpuset(1), "0-1");
  EXPECT_EQ(m.worker_runtime(1), "gvisor");
  EXPECT_EQ(m.worker_runtime(2), "runc");
}

TEST(FleetManifest, SaveLoadRoundTripsThroughAFile) {
  const fs::path dir = fresh_dir("fleet-manifest");
  const Manifest m = example_manifest();
  save_manifest(dir / "fleet.json", m);
  auto loaded = load_manifest(dir / "fleet.json");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(manifest_to_json(*loaded), manifest_to_json(m));
  EXPECT_FALSE(load_manifest(dir / "absent.json").has_value());
}

TEST(FleetManifest, RejectsMalformedDocuments) {
  EXPECT_FALSE(manifest_from_json("not json").has_value());
  EXPECT_FALSE(manifest_from_json("{}").has_value());  // workers required
  EXPECT_FALSE(manifest_from_json(R"({"workers":0})").has_value());
  // Matrix rows must name a worker inside [0, workers).
  EXPECT_FALSE(
      manifest_from_json(R"({"workers":2,"matrix":[{"worker":2}]})")
          .has_value());
  EXPECT_FALSE(
      manifest_from_json(R"({"workers":2,"matrix":[{"seed":1}]})").has_value());
  // Unknown runtimes fail at parse time, not at spawn time.
  EXPECT_FALSE(manifest_from_json(
                   R"({"workers":2,"matrix":[{"worker":0,"runtime":"qemu"}]})")
                   .has_value());
}

TEST(FleetManifest, HandWrittenPartialDefaultsParse) {
  // The fleet manifest is the hand-written surface: "defaults" lists only
  // the keys the user overrides, everything else keeps the campaign
  // defaults (README's example document).
  const auto manifest = manifest_from_json(R"({
    "workers": 2,
    "max_restarts": 2,
    "defaults": {"runtime": "runsc", "batches": 3, "seed": 42},
    "matrix": [{"worker": 1, "runtime": "kata", "seed": 7}]
  })");
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->defaults.runtime, "runsc");
  EXPECT_EQ(manifest->defaults.batches, 3);
  EXPECT_EQ(manifest->defaults.seed, 42u);
  const core::CampaignManifest stock;
  EXPECT_EQ(manifest->defaults.num_executors, stock.num_executors);
  EXPECT_EQ(manifest->defaults.round_duration, stock.round_duration);
  EXPECT_EQ(manifest->defaults.num_seeds, stock.num_seeds);
  const core::CampaignConfig w1 = manifest->worker_config(1);
  EXPECT_EQ(w1.runtime, runtime::RuntimeKind::kKata);
  EXPECT_EQ(w1.seed, 7u);
  // Present-but-mistyped keys are still errors, even when optional.
  EXPECT_FALSE(manifest_from_json(
                   R"({"workers":2,"defaults":{"batches":"eight"}})")
                   .has_value());
}

// --- metrics aggregation ---------------------------------------------------------

TEST(AggregateExpositions, RelabelsSamplesAndMergesFamilies) {
  const std::string w0 =
      "# HELP torpedo_executions_total Executions.\n"
      "# TYPE torpedo_executions_total counter\n"
      "torpedo_executions_total 100\n"
      "torpedo_rounds{batch=\"1\"} 3\n";
  const std::string w1 =
      "# HELP torpedo_executions_total Executions.\n"
      "# TYPE torpedo_executions_total counter\n"
      "torpedo_executions_total 250\n";
  const std::string merged = telemetry::aggregate_expositions(
      {{0, w0}, {1, w1}});

  // Family comments once, every sample relabeled with its worker.
  EXPECT_EQ(merged.find("# HELP torpedo_executions_total"),
            merged.rfind("# HELP torpedo_executions_total"));
  EXPECT_NE(merged.find("torpedo_executions_total{worker=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(merged.find("torpedo_executions_total{worker=\"1\"} 250"),
            std::string::npos);
  // Existing labels survive after the injected worker label.
  EXPECT_NE(merged.find("torpedo_rounds{worker=\"0\",batch=\"1\"} 3"),
            std::string::npos);
}

TEST(AggregateExpositions, HttpBodySplitsAtTheHeaderBoundary) {
  EXPECT_EQ(telemetry::http_body("HTTP/1.1 200 OK\r\nA: b\r\n\r\nbody"),
            "body");
  EXPECT_EQ(telemetry::http_body("no blank line"), "");
}

// --- cpuset ----------------------------------------------------------------------

TEST(ApplyCpuset, ParsesListsAndRejectsGarbage) {
  EXPECT_FALSE(apply_cpuset(""));
  EXPECT_FALSE(apply_cpuset("abc"));
  EXPECT_FALSE(apply_cpuset("1-0"));   // inverted range
  EXPECT_FALSE(apply_cpuset("0,,1"));  // empty element
  // CPU 0 always exists; the affinity call itself is best-effort.
  EXPECT_TRUE(apply_cpuset("0"));
  EXPECT_TRUE(apply_cpuset("0-0"));
  EXPECT_TRUE(apply_cpuset("0,0"));
}

// --- end-to-end fork-mode fleets -------------------------------------------------

Manifest small_fleet_manifest(int workers) {
  Manifest m;
  m.workers = workers;
  m.defaults.batches = 2;
  m.defaults.num_executors = 2;
  m.defaults.round_duration = 50 * kMillisecond;
  m.defaults.num_seeds = 6;
  m.defaults.seed = 0xF1EE7;
  return m;
}

TEST(FleetCampaign, TwoWorkerForkModeCompletesAndMerges) {
  const fs::path workdir = fresh_dir("fleet-e2e");
  FleetConfig config;
  config.manifest = small_fleet_manifest(2);
  config.workdir = workdir;  // empty worker_binary => fork mode

  Coordinator coordinator(std::move(config));
  const Coordinator::Result result = coordinator.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.completed, 2);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.restarts, 0);
  EXPECT_GT(result.executions, 0u);
  EXPECT_GT(result.merge_wall_ns, 0);

  for (const WorkerStatus& w : coordinator.workers()) {
    EXPECT_EQ(w.state, WorkerState::kCompleted);
    EXPECT_TRUE(w.done_frame);
    EXPECT_EQ(w.batches, 2);
    EXPECT_GT(w.executions, 0u);
  }
  // Workers published at every batch boundary: one epoch per batch.
  EXPECT_EQ(coordinator.ledger().stats().epochs, 2u);
  EXPECT_GT(coordinator.ledger().stats().published, 0u);

  // The merged workdir carries the full single-campaign artifact set plus
  // the fleet extras, and campaign.json marks it as a fleet product.
  for (const char* name :
       {"report.txt", "corpus.txt", "campaign.json", "clusters.json",
        "syscall_profile.json", "mutation_efficacy.json", "timeseries.jsonl",
        "fleet.json", "fleet_status.json"})
    EXPECT_TRUE(fs::exists(workdir / name)) << name;
  EXPECT_NE(slurp(workdir / "campaign.json").find("\"fleet_workers\":2"),
            std::string::npos);
  EXPECT_TRUE(fs::exists(workdir / "workers" / "0" / "report.txt"));
  EXPECT_TRUE(fs::exists(workdir / "workers" / "1" / "report.txt"));

  const std::string status = coordinator.fleet_status_json();
  EXPECT_NE(status.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(status.find("\"state\":\"completed\""), std::string::npos);
  // Merged timeseries lines are tagged with their producing worker.
  EXPECT_NE(slurp(workdir / "timeseries.jsonl").find("\"worker\":1"),
            std::string::npos);
}

TEST(FleetCampaign, CrashedWorkerRestartsAndStillCompletes) {
  const fs::path workdir = fresh_dir("fleet-crash");
  FleetConfig config;
  config.manifest = small_fleet_manifest(2);
  config.manifest.max_restarts = 2;
  config.workdir = workdir;
  // Worker 1's first incarnation _exit(77)s right after publishing batch 0,
  // mid-epoch — the coordinator must detect the death, shrink the barrier so
  // worker 0 is not deadlocked, respawn, and replay the committed stream.
  config.test_crash_worker = 1;
  config.test_crash_batch = 0;

  Coordinator coordinator(std::move(config));
  const Coordinator::Result result = coordinator.run();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.completed, 2);
  EXPECT_GE(result.restarts, 1);
  EXPECT_GT(result.max_recovery_wall_ns, 0);

  const std::vector<WorkerStatus> workers = coordinator.workers();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[1].restarts, 1);
  EXPECT_EQ(workers[1].state, WorkerState::kCompleted);
  EXPECT_GT(workers[1].recovery_wall_ns, 0);
  EXPECT_EQ(workers[0].restarts, 0);

  EXPECT_TRUE(fs::exists(workdir / "report.txt"));
  const std::string status = coordinator.fleet_status_json();
  EXPECT_NE(status.find("\"restarts\":1"), std::string::npos);
}

TEST(FleetCampaign, WorkerExhaustingRestartBudgetFailsTheFleet) {
  const fs::path workdir = fresh_dir("fleet-budget");
  FleetConfig config;
  config.manifest = small_fleet_manifest(1);
  config.manifest.max_restarts = 0;
  config.workdir = workdir;
  config.test_crash_worker = 0;
  config.test_crash_batch = 0;

  Coordinator coordinator(std::move(config));
  const Coordinator::Result result = coordinator.run();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.completed, 0);
  EXPECT_EQ(result.failed, 1);
  EXPECT_EQ(result.restarts, 0);
  ASSERT_EQ(coordinator.workers().size(), 1u);
  EXPECT_EQ(coordinator.workers()[0].state, WorkerState::kFailed);
}

}  // namespace
