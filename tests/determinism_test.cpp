// Golden byte-determinism tests: two campaigns with identical configs must
// regenerate every workdir artifact byte-for-byte — report.txt, corpus.txt,
// violation bundles, clusters.json, syscall_profile.json, timeseries.jsonl,
// mutation_efficacy.json — for both the sequential and the sharded engine,
// plus the final heartbeat modulo its wall-clock stamp.
#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/provenance.h"
#include "core/sharded.h"
#include "core/workdir.h"
#include "fleet/coordinator.h"
#include "fleet/manifest.h"
#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "kernel/syscalls.h"
#include "runtime/runtime.h"
#include "telemetry/json.h"
#include "telemetry/monitor.h"
#include "telemetry/timeseries.h"
#include "triage/cluster.h"

namespace torpedo {
namespace {

namespace fs = std::filesystem;

core::CampaignConfig golden_config() {
  core::CampaignConfig config;
  config.num_executors = 2;
  config.round_duration = 50 * kMillisecond;
  config.batches = 2;
  config.num_seeds = 6;
  config.seed = 0xD0D0;
  config.max_confirmations = 6;
  config.fuzzer.cycle_out_rounds = 3;
  config.kernel.host.num_cores = 8;
  config.kernel.host.num_kworkers = 4;
  return config;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// One full campaign run writing the `torpedo run --workdir` artifact stack
// (plus the final heartbeat for the sequential engine).
void run_workdir(const fs::path& dir, int shards, bool heartbeat) {
  const core::CampaignConfig config = golden_config();
  feedback::SyscallProfile profile;
  feedback::set_syscall_profile(&profile);
  feedback::MutationEfficacy efficacy;
  feedback::set_mutation_efficacy(&efficacy);
  std::deque<telemetry::TimeSeriesRecorder> recorders;
  core::CampaignReport report;
  if (shards > 1) {
    core::ShardedConfig sharded_config;
    sharded_config.base = config;
    sharded_config.shards = shards;
    core::ShardedCampaign sharded(sharded_config);
    for (int s = 0; s < shards; ++s) {
      telemetry::TimeSeriesRecorder::Config ts_config;
      ts_config.shard = s;
      recorders.emplace_back(ts_config);
    }
    sharded.set_shard_start_hook([&](int shard, core::Campaign& campaign) {
      campaign.set_timeseries(&recorders[static_cast<std::size_t>(shard)]);
    });
    report = sharded.run();
    core::save_corpus(dir / "corpus.txt", sharded.merged_corpus());
  } else {
    core::Campaign campaign(config);
    recorders.emplace_back();
    campaign.set_timeseries(&recorders.back());
    std::optional<telemetry::HeartbeatWriter> hb;
    if (heartbeat) {
      hb.emplace(dir / "heartbeat.json");
      campaign.set_heartbeat(&*hb);
    }
    campaign.load_default_seeds();
    report = campaign.run();
    core::save_corpus(dir / "corpus.txt", campaign.corpus());
  }
  feedback::set_syscall_profile(nullptr);
  feedback::set_mutation_efficacy(nullptr);
  core::save_report(dir / "report.txt", report);
  triage::save_clusters(
      dir / "clusters.json",
      triage::cluster_report(report,
                             runtime::runtime_name(config.runtime)));
  core::write_violation_bundles(dir, report);
  std::vector<const telemetry::TimeSeriesRecorder*> recorder_ptrs;
  for (const telemetry::TimeSeriesRecorder& r : recorders)
    recorder_ptrs.push_back(&r);
  core::save_timeseries(dir / "timeseries.jsonl", recorder_ptrs);
  core::save_mutation_efficacy(dir / "mutation_efficacy.json", efficacy);
  std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
  out << profile.to_json(&kernel::sysno_name) << "\n";
}

// Relative paths of every regular file under `dir`, sorted.
std::vector<std::string> file_list(const fs::path& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir))
    if (entry.is_regular_file())
      files.push_back(fs::relative(entry.path(), dir).string());
  std::sort(files.begin(), files.end());
  return files;
}

// Heartbeats are compared field-by-field minus wall_ns, the one
// intentionally non-deterministic stamp.
std::string heartbeat_minus_wall(const fs::path& file) {
  const auto obj = telemetry::parse_json_object(slurp(file));
  EXPECT_TRUE(obj.has_value()) << file;
  std::string out;
  for (const auto& [key, value] : *obj) {
    if (key == "wall_ns") continue;
    out += key + "=" + value.text +
           (value.is_integer ? std::to_string(value.integer) : "") + ";";
  }
  return out;
}

void expect_identical_trees(const fs::path& a, const fs::path& b) {
  const std::vector<std::string> files_a = file_list(a);
  ASSERT_EQ(files_a, file_list(b));
  for (const std::string& rel : files_a) {
    if (rel == "heartbeat.json") {
      EXPECT_EQ(heartbeat_minus_wall(a / rel), heartbeat_minus_wall(b / rel));
      continue;
    }
    EXPECT_EQ(slurp(a / rel), slurp(b / rel)) << rel;
  }
}

TEST(Determinism, SequentialCampaignIsByteIdentical) {
  const fs::path a = fresh_dir("torpedo-golden-seq-a");
  const fs::path b = fresh_dir("torpedo-golden-seq-b");
  run_workdir(a, 1, true);
  run_workdir(b, 1, true);
  EXPECT_FALSE(slurp(a / "report.txt").empty());
  expect_identical_trees(a, b);
}

TEST(Determinism, ShardedCampaignIsByteIdentical) {
  const fs::path a = fresh_dir("torpedo-golden-sh-a");
  const fs::path b = fresh_dir("torpedo-golden-sh-b");
  run_workdir(a, 2, false);
  run_workdir(b, 2, false);
  expect_identical_trees(a, b);
}

// One fork-mode fleet run: a coordinator plus two forked worker processes
// exchanging corpus entries over the Unix socket, merged into `dir`.
void run_fleet_workdir(const fs::path& dir) {
  fleet::Manifest manifest;
  manifest.workers = 2;
  manifest.defaults.batches = 2;
  manifest.defaults.num_executors = 2;
  manifest.defaults.round_duration = 50 * kMillisecond;
  manifest.defaults.num_seeds = 6;
  manifest.defaults.seed = 0xD0D0;
  fleet::FleetConfig config;
  config.manifest = std::move(manifest);
  config.workdir = dir;  // empty worker_binary => fork mode
  fleet::Coordinator coordinator(std::move(config));
  ASSERT_TRUE(coordinator.run().ok);
}

TEST(Determinism, FleetCampaignIsByteIdentical) {
  const fs::path a = fresh_dir("torpedo-golden-fleet-a");
  const fs::path b = fresh_dir("torpedo-golden-fleet-b");
  run_fleet_workdir(a);
  run_fleet_workdir(b);

  // Same file set, byte-identical contents — except the two wall-clock
  // bearers: fleet_status.json (run timing snapshot) and the per-worker
  // heartbeats, whose wall_ns stamp is intentionally non-deterministic.
  const std::vector<std::string> files = file_list(a);
  ASSERT_EQ(files, file_list(b));
  EXPECT_FALSE(slurp(a / "report.txt").empty());
  for (const std::string& rel : files) {
    if (rel == "fleet_status.json") continue;
    if (rel.size() >= 14 &&
        rel.compare(rel.size() - 14, 14, "heartbeat.json") == 0) {
      EXPECT_EQ(heartbeat_minus_wall(a / rel), heartbeat_minus_wall(b / rel));
      continue;
    }
    EXPECT_EQ(slurp(a / rel), slurp(b / rel)) << rel;
  }
}

}  // namespace
}  // namespace torpedo
