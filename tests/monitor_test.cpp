// Tests for the live campaign monitor: Prometheus exposition format, the
// /status JSON contract, heartbeat stamping, watchdog stall detection (fake
// clock), the embedded HTTP server, and the per-syscall profiler.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/campaign.h"
#include "feedback/syscall_profile.h"
#include "kernel/syscalls.h"
#include "telemetry/json.h"
#include "telemetry/monitor.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"

using namespace torpedo;
using namespace torpedo::telemetry;

namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

double num(const std::map<std::string, JsonValue>& obj, const char* key) {
  auto it = obj.find(key);
  if (it == obj.end()) return -1;
  return it->second.is_integer ? static_cast<double>(it->second.integer)
                               : it->second.number;
}

// --- Prometheus exposition ----------------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("exec.executions"), "exec_executions");
  EXPECT_EQ(prometheus_name("a-b c:d_e9"), "a_b_c:d_e9");
}

TEST(Prometheus, CounterAndGaugeExposition) {
  Registry reg;
  reg.counter("exec.executions").inc(42);
  reg.gauge("fuzzer.denylist_size").set(3.5);
  const std::string text = reg.to_prometheus();

  EXPECT_NE(text.find("# HELP torpedo_exec_executions_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE torpedo_exec_executions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("torpedo_exec_executions_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE torpedo_fuzzer_denylist_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("torpedo_fuzzer_denylist_size 3.5\n"),
            std::string::npos);
}

TEST(Prometheus, HistogramExposition) {
  Registry reg;
  Histogram& h = reg.histogram("observer.round_wall_us");
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(100);
  const std::string text = reg.to_prometheus();
  const std::string base = "torpedo_observer_round_wall_us";

  EXPECT_NE(text.find("# TYPE " + base + " histogram"), std::string::npos);
  // Cumulative buckets with inclusive upper edges: le="0" holds the value 0,
  // le="1" adds the value 1, le="3" adds the value 3.
  EXPECT_NE(text.find(base + "_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find(base + "_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find(base + "_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find(base + "_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find(base + "_sum 104\n"), std::string::npos);
  EXPECT_NE(text.find(base + "_count 4\n"), std::string::npos);
  // Percentile estimates ride as companion gauges.
  EXPECT_NE(text.find(base + "_p50"), std::string::npos);
  EXPECT_NE(text.find(base + "_p90"), std::string::npos);
  EXPECT_NE(text.find(base + "_p99"), std::string::npos);
}

// Concurrent scrapes while a writer hammers the instruments: relaxed
// atomics must keep every observed value torn-free and monotone.
TEST(Prometheus, ConcurrentScrapeIsSafe) {
  Registry reg;
  Counter& c = reg.counter("exec.executions");
  Histogram& h = reg.histogram("latency");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      c.inc();
      h.record(i++ % 1000);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string text = reg.to_prometheus();
    EXPECT_NE(text.find("torpedo_exec_executions_total"), std::string::npos);
    const std::uint64_t now = c.value();
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// --- LiveStatus ---------------------------------------------------------------

TEST(LiveStatusTest, StatusJsonRoundTrip) {
  LiveStatus status;
  status.begin_campaign(8, 3);
  status.on_batch(2);
  status.on_round(17, 5 * kSecond, 1234,
                  {{"fuzz0", 400, false}, {"fuzz1", 500, false},
                   {"fuzz2", 334, true}});
  status.on_findings(5, 1);

  const auto obj = parse_json_object(status.to_json().to_string());
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num(*obj, "batch"), 2);
  EXPECT_EQ(num(*obj, "batches_total"), 8);
  EXPECT_EQ(num(*obj, "round"), 17);
  EXPECT_EQ(num(*obj, "rounds_completed"), 1);
  EXPECT_EQ(num(*obj, "executions"), 1234);
  EXPECT_EQ(num(*obj, "sim_ns"), 5e9);
  EXPECT_EQ(num(*obj, "findings"), 5);
  EXPECT_EQ(num(*obj, "crashes"), 1);
  EXPECT_EQ(status.executions(), 1234u);

  // The executors array round-trips with per-executor state.
  auto it = obj->find("executors");
  ASSERT_NE(it, obj->end());
  const auto executors = parse_json_array_of_objects(it->second.text);
  ASSERT_TRUE(executors.has_value());
  ASSERT_EQ(executors->size(), 3u);
  EXPECT_EQ((*executors)[2].at("name").text, "fuzz2");
  EXPECT_EQ(num((*executors)[2], "executions"), 334);
  EXPECT_TRUE((*executors)[2].at("crashed").boolean);
}

TEST(LiveStatusTest, ExecsPerSecFromSamples) {
  LiveStatus status;
  status.begin_campaign(1, 1);
  EXPECT_EQ(status.execs_per_sec(), 0.0);  // no samples yet
  status.on_round(0, kSecond, 1000, {});
  EXPECT_EQ(status.execs_per_sec(), 0.0);  // one sample: no rate yet
  status.on_round(1, 2 * kSecond, 3000, {});
  // Two wall samples microseconds apart: the rate is huge but finite and
  // non-negative.
  EXPECT_GE(status.execs_per_sec(), 0.0);
}

// --- HeartbeatWriter ----------------------------------------------------------

TEST(HeartbeatTest, StampWritesParseableJson) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "torpedo_hb_test" /
      "heartbeat.json";
  std::filesystem::remove_all(path.parent_path());
  HeartbeatWriter hb(path);

  hb.stamp(5 * kSecond, 0, 3, 1000);
  hb.stamp(10 * kSecond, 1, 7, 2500);
  EXPECT_EQ(hb.stamps(), 2u);

  const auto obj = parse_json_object(slurp(path));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num(*obj, "sim_ns"), 10e9);
  EXPECT_EQ(num(*obj, "batch"), 1);
  EXPECT_EQ(num(*obj, "round"), 7);
  EXPECT_EQ(num(*obj, "executions"), 2500);
  EXPECT_EQ(num(*obj, "stamps"), 2);
  // The atomic tmp+rename leaves no partial file behind.
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::filesystem::remove_all(path.parent_path());
}

TEST(HeartbeatTest, CampaignStampsAtRoundBoundaries) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "torpedo_hb_campaign" /
      "heartbeat.json";
  std::filesystem::remove_all(path.parent_path());

  core::CampaignConfig cfg;
  cfg.round_duration = kSecond;
  cfg.fuzzer.cycle_out_rounds = 2;
  cfg.num_seeds = 3;
  cfg.batches = 1;
  core::Campaign campaign(cfg);

  LiveStatus status;
  HeartbeatWriter hb(path);
  campaign.set_live_status(&status);
  campaign.set_heartbeat(&hb);

  campaign.load_default_seeds();
  const core::BatchResult result = campaign.run_one_batch();

  // One stamp per observed round.
  EXPECT_EQ(hb.stamps(), static_cast<std::uint64_t>(result.rounds));
  const auto obj = parse_json_object(slurp(path));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num(*obj, "batch"), 0);
  EXPECT_GT(num(*obj, "executions"), 0);

  // LiveStatus tracked the same campaign.
  EXPECT_GT(status.executions(), 0u);
  const auto st = parse_json_object(status.to_json().to_string());
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(num(*st, "batch"), 0);
  EXPECT_EQ(num(*st, "rounds_completed"), result.rounds);
  std::filesystem::remove_all(path.parent_path());
}

// --- Watchdog -----------------------------------------------------------------

struct FakeClock {
  Nanos now = 0;
  static Nanos read(void* ctx) { return static_cast<FakeClock*>(ctx)->now; }
};

TEST(WatchdogTest, DetectsStallWithFakeClock) {
  Registry reg;
  FakeClock clock;
  Watchdog::Config cfg;
  cfg.stall_budget_wall_ns = 10 * kSecond;
  Watchdog dog(cfg, &reg);
  dog.set_clock(&FakeClock::read, &clock);

  EXPECT_FALSE(dog.poll(100));  // primes
  clock.now = 5 * kSecond;
  EXPECT_FALSE(dog.poll(100));  // within budget
  clock.now = 11 * kSecond;
  EXPECT_TRUE(dog.poll(100));  // newly stalled
  EXPECT_TRUE(dog.stalled());
  EXPECT_EQ(dog.stalls(), 1u);
  EXPECT_EQ(reg.counter("campaign.stalls").value(), 1u);
  clock.now = 20 * kSecond;
  EXPECT_FALSE(dog.poll(100));  // one trip per stall

  // Progress re-arms.
  clock.now = 21 * kSecond;
  EXPECT_FALSE(dog.poll(200));
  EXPECT_FALSE(dog.stalled());
  clock.now = 40 * kSecond;
  EXPECT_TRUE(dog.poll(200));  // second stall
  EXPECT_EQ(dog.stalls(), 2u);
}

TEST(WatchdogTest, ProgressResetsBudget) {
  Registry reg;
  FakeClock clock;
  Watchdog::Config cfg;
  cfg.stall_budget_wall_ns = 10 * kSecond;
  Watchdog dog(cfg, &reg);
  dog.set_clock(&FakeClock::read, &clock);

  std::uint64_t executions = 0;
  for (int tick = 0; tick < 100; ++tick) {
    clock.now += kSecond;
    EXPECT_FALSE(dog.poll(++executions));  // steady progress: never stalls
  }
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(WatchdogTest, CapturesOpenSpanStackAndRaisesAbort) {
  Registry reg;
  FakeClock clock;
  Watchdog::Config cfg;
  cfg.stall_budget_wall_ns = kSecond;
  cfg.abort_on_stall = true;
  Watchdog dog(cfg, &reg);
  dog.set_clock(&FakeClock::read, &clock);

  SpanTracer tracer;
  set_spans(&tracer);
  const std::uint64_t outer = tracer.begin("campaign.batch");
  const std::uint64_t inner = tracer.begin("fuzz.mutate");

  EXPECT_FALSE(dog.poll(1));
  clock.now = 2 * kSecond;
  EXPECT_TRUE(dog.poll(1));
  EXPECT_EQ(dog.last_stall_spans(),
            (std::vector<std::string>{"campaign.batch", "fuzz.mutate"}));
  EXPECT_TRUE(dog.abort_flag().load());
  dog.clear_abort();
  EXPECT_FALSE(dog.abort_flag().load());

  tracer.end(inner);
  tracer.end(outer);
  set_spans(nullptr);
}

// --- MonitorServer ------------------------------------------------------------

TEST(MonitorServerTest, HandleRoutes) {
  MonitorServer server;
  EXPECT_EQ(server.handle("GET", "/healthz").code, 200);
  EXPECT_EQ(server.handle("GET", "/healthz").body, "ok\n");
  EXPECT_EQ(server.handle("GET", "/metrics").code, 200);
  EXPECT_EQ(server.handle("GET", "/metrics").content_type,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(server.handle("GET", "/status").code, 200);
  EXPECT_EQ(server.handle("GET", "/status").content_type,
            "application/json");
  EXPECT_EQ(server.handle("GET", "/nope").code, 404);
  EXPECT_EQ(server.handle("POST", "/metrics").code, 405);
}

TEST(MonitorServerTest, ErrorBodiesAreStructuredJson) {
  MonitorServer server;
  const MonitorServer::Response missing = server.handle("GET", "/nope");
  EXPECT_EQ(missing.code, 404);
  EXPECT_EQ(missing.content_type, "application/json");
  const auto missing_obj = parse_json_object(missing.body);
  ASSERT_TRUE(missing_obj.has_value()) << missing.body;
  EXPECT_EQ(missing_obj->at("error").text, "not found");
  EXPECT_EQ(missing_obj->at("path").text, "/nope");

  const MonitorServer::Response bad = server.handle("POST", "/metrics");
  EXPECT_EQ(bad.code, 405);
  EXPECT_EQ(bad.content_type, "application/json");
  const auto bad_obj = parse_json_object(bad.body);
  ASSERT_TRUE(bad_obj.has_value()) << bad.body;
  EXPECT_EQ(bad_obj->at("error").text, "method not allowed");
  EXPECT_EQ(bad_obj->at("method").text, "POST");
}

TEST(MonitorServerTest, JsonEndpointsRouteByPrefix) {
  MonitorServer server;
  server.add_json_endpoint(
      "/things", [](std::string_view path) -> std::optional<std::string> {
        if (path == "/things") return std::string("{\"all\":true}");
        if (path == "/things/7") return std::string("{\"id\":7}");
        return std::nullopt;
      });

  const MonitorServer::Response all = server.handle("GET", "/things");
  EXPECT_EQ(all.code, 200);
  EXPECT_EQ(all.content_type, "application/json");
  EXPECT_EQ(all.body, "{\"all\":true}\n");
  EXPECT_EQ(server.handle("GET", "/things/7").body, "{\"id\":7}\n");

  // A handler returning nullopt is a structured 404, and a prefix match
  // requires a path-segment boundary ("/thingsies" is not "/things/...").
  const MonitorServer::Response gone = server.handle("GET", "/things/8");
  EXPECT_EQ(gone.code, 404);
  const auto gone_obj = parse_json_object(gone.body);
  ASSERT_TRUE(gone_obj.has_value()) << gone.body;
  EXPECT_EQ(gone_obj->at("error").text, "not found");
  EXPECT_EQ(server.handle("GET", "/thingsies").code, 404);
}

TEST(MonitorServerTest, MetricsSynthesizesCampaignSeries) {
  Registry reg;
  reg.counter("exec.executions").inc(7);
  LiveStatus status;
  status.begin_campaign(4, 2);
  status.on_batch(1);
  status.on_round(9, kSecond, 555, {});
  MonitorServer::Config cfg;
  cfg.registry = &reg;
  MonitorServer server(cfg);
  server.set_status(&status);
  server.set_extra_metrics([] { return std::string("extra_metric 1\n"); });

  const std::string text = server.metrics_text();
  EXPECT_NE(text.find("torpedo_exec_executions_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("torpedo_executions_total 555\n"), std::string::npos);
  EXPECT_NE(text.find("torpedo_batch 1\n"), std::string::npos);
  EXPECT_NE(text.find("torpedo_round 9\n"), std::string::npos);
  EXPECT_NE(text.find("torpedo_rounds_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("torpedo_up 1\n"), std::string::npos);
  EXPECT_NE(text.find("extra_metric 1\n"), std::string::npos);
}

TEST(MonitorServerTest, ServesOverLoopback) {
  Registry reg;
  reg.counter("exec.executions").inc(3);
  LiveStatus status;
  status.begin_campaign(1, 1);
  status.on_round(0, kSecond, 123, {{"fuzz0", 123, false}});

  MonitorServer::Config cfg;
  cfg.registry = &reg;
  cfg.port = 0;  // ephemeral
  MonitorServer server(cfg);
  server.set_status(&status);
  ASSERT_TRUE(server.start());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("torpedo_executions_total 123"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string st = http_get(server.port(), "/status");
  const std::size_t body_at = st.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const auto obj = parse_json_object(
      std::string_view(st).substr(body_at + 4));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num(*obj, "executions"), 123);

  EXPECT_GE(server.requests(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MonitorServerTest, WatchdogRidesTheServingLoop) {
  Registry reg;
  // No execution progress ever, tiny budget: the loop's watchdog tick must
  // trip the stall without any HTTP traffic.
  Watchdog::Config wd_cfg;
  wd_cfg.stall_budget_wall_ns = 20 * kMillisecond;
  Watchdog dog(wd_cfg, &reg);

  MonitorServer::Config cfg;
  cfg.registry = &reg;
  cfg.poll_interval_ns = 10 * kMillisecond;
  MonitorServer server(cfg);
  server.set_watchdog(&dog);
  ASSERT_TRUE(server.start());
  for (int i = 0; i < 200 && dog.stalls() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  EXPECT_GE(dog.stalls(), 1u);
  EXPECT_NE(server.metrics_text().find("torpedo_watchdog_stalled 1\n"),
            std::string::npos);
}

// --- SyscallProfile -----------------------------------------------------------

TEST(SyscallProfileTest, RowsAndRendering) {
  feedback::SyscallProfile profile;
  profile.record_execution(0);   // read
  profile.record_execution(0);
  profile.record_execution(1);   // write
  profile.record_novel_signal(0, 5);
  profile.record_implication(1);
  profile.record_execution(-3);     // dropped
  profile.record_execution(99999);  // dropped

  const auto rows = profile.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].nr, 0);
  EXPECT_EQ(rows[0].executions, 2u);
  EXPECT_EQ(rows[0].signal_new, 5u);
  EXPECT_EQ(rows[1].nr, 1);
  EXPECT_EQ(rows[1].implications, 1u);

  const auto obj = parse_json_object(profile.to_json(&kernel::sysno_name));
  ASSERT_TRUE(obj.has_value());
  const auto parsed =
      parse_json_array_of_objects(obj->at("syscalls").text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].at("name").text, "read");
  EXPECT_EQ(num((*parsed)[0], "executions"), 2);

  const std::string prom = profile.to_prometheus(&kernel::sysno_name);
  EXPECT_NE(prom.find("torpedo_syscall_executions_total{syscall=\"read\","
                      "nr=\"0\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("torpedo_syscall_signal_total{syscall=\"read\","
                      "nr=\"0\"} 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("torpedo_syscall_implications_total{syscall=\"write\","
                      "nr=\"1\"} 1\n"),
            std::string::npos);

  profile.reset();
  EXPECT_TRUE(profile.rows().empty());
}

TEST(SyscallProfileTest, CampaignPopulatesProfile) {
  feedback::SyscallProfile profile;
  feedback::set_syscall_profile(&profile);

  core::CampaignConfig cfg;
  cfg.round_duration = kSecond;
  cfg.fuzzer.cycle_out_rounds = 2;
  cfg.num_seeds = 3;
  cfg.batches = 1;
  core::Campaign campaign(cfg);
  campaign.load_default_seeds();
  campaign.run_one_batch();
  (void)campaign.finalize();
  feedback::set_syscall_profile(nullptr);

  const auto rows = profile.rows();
  ASSERT_FALSE(rows.empty());
  std::uint64_t executions = 0;
  for (const auto& row : rows) executions += row.executions;
  EXPECT_GT(executions, 0u);
}

}  // namespace
