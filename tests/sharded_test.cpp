// Sharded campaign tests: shard seeding, the CorpusHub exchange protocol,
// monitor aggregation, and the determinism contract of the merged report.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/seeds.h"
#include "core/sharded.h"
#include "core/workdir.h"
#include "feedback/corpus_hub.h"
#include "telemetry/monitor.h"
#include "util/time.h"

using namespace torpedo;
using namespace torpedo::core;

namespace {

CampaignConfig fast_config() {
  CampaignConfig cfg;
  cfg.round_duration = kSecond;
  cfg.fuzzer.cycle_out_rounds = 3;
  cfg.num_seeds = 6;
  cfg.batches = 2;
  return cfg;
}

feedback::CorpusEntry entry_for(const char* seed_name, double score) {
  feedback::CorpusEntry entry;
  entry.program = *named_seed(seed_name);
  entry.signal.add(entry.program.hash());
  entry.best_score = score;
  return entry;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- shard seeds -----------------------------------------------------------------

TEST(ShardSeed, ShardZeroReproducesTheBaseSeed) {
  EXPECT_EQ(ShardedCampaign::shard_seed(0x7095ED0, 0), 0x7095ED0u);
  EXPECT_EQ(ShardedCampaign::shard_seed(42, 0), 42u);
}

TEST(ShardSeed, ShardsGetDistinctWellMixedSeeds) {
  std::set<std::uint64_t> seeds;
  for (int s = 0; s < 8; ++s) seeds.insert(ShardedCampaign::shard_seed(1, s));
  EXPECT_EQ(seeds.size(), 8u);
  // Adjacent base seeds must not collide across shard streams either.
  for (int s = 1; s < 8; ++s)
    EXPECT_NE(ShardedCampaign::shard_seed(1, s),
              ShardedCampaign::shard_seed(2, s));
}

// --- CorpusHub -------------------------------------------------------------------

TEST(CorpusHub, SingleShardExchangeCommitsAndPullsNothing) {
  feedback::CorpusHub hub(1);
  auto delta = hub.exchange(0, {entry_for("sync", 1.0)}, {"pause"});
  EXPECT_TRUE(delta.entries.empty());  // own publications are never returned
  EXPECT_EQ(delta.denylist, std::vector<std::string>{"pause"});
  EXPECT_EQ(delta.epoch, 1u);
  const auto stats = hub.stats();
  EXPECT_EQ(stats.epochs, 1u);
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.unique, 1u);
  EXPECT_EQ(stats.pulled, 0u);
}

TEST(CorpusHub, TwoShardsSwapEntriesAndMergeDenylists) {
  feedback::CorpusHub hub(2);
  feedback::CorpusHub::Delta d0, d1;
  std::thread t0([&] {
    d0 = hub.exchange(0, {entry_for("sync", 1.0)}, {"sync"});
  });
  std::thread t1([&] {
    d1 = hub.exchange(1, {entry_for("kcmp-pair", 2.0)}, {"pause"});
  });
  t0.join();
  t1.join();

  ASSERT_EQ(d0.entries.size(), 1u);
  EXPECT_EQ(d0.entries[0].program.hash(), named_seed("kcmp-pair")->hash());
  ASSERT_EQ(d1.entries.size(), 1u);
  EXPECT_EQ(d1.entries[0].program.hash(), named_seed("sync")->hash());
  // Both walk away with the same merged, sorted denylist.
  const std::vector<std::string> want{"pause", "sync"};
  EXPECT_EQ(d0.denylist, want);
  EXPECT_EQ(d1.denylist, want);
  EXPECT_EQ(hub.stats().pulled, 2u);
}

TEST(CorpusHub, DuplicateHashMergesSignalAndKeepsMaxScore) {
  feedback::CorpusHub hub(2);
  // Both shards publish the same program; shard 1's copy carries a second
  // signal element and a higher score.
  feedback::CorpusEntry a = entry_for("sync", 1.0);
  feedback::CorpusEntry b = entry_for("sync", 5.0);
  b.signal.add(0xFEEDu);
  feedback::CorpusHub::Delta d0, d1;
  std::thread t0([&] { d0 = hub.exchange(0, {std::move(a)}, {}); });
  std::thread t1([&] { d1 = hub.exchange(1, {std::move(b)}, {}); });
  t0.join();
  t1.join();

  // One committed entry; the duplicate merged into it, so neither shard
  // pulls a copy of a program it already has... except the merge happened
  // under shard 0's insert, so shard 1 pulls shard 0's (merged) entry.
  const auto stats = hub.stats();
  EXPECT_EQ(stats.unique, 1u);
  EXPECT_EQ(stats.merged, 1u);
  ASSERT_EQ(d1.entries.size(), 1u);
  EXPECT_EQ(d1.entries[0].best_score, 5.0);  // max of both publications
  EXPECT_TRUE(d1.entries[0].signal.contains(0xFEEDu));
  EXPECT_TRUE(d0.entries.empty());  // lower shard owns the insert
}

TEST(CorpusHub, LeaveShrinksTheBarrier) {
  feedback::CorpusHub hub(2);
  hub.leave(1);
  // Shard 0 must complete alone without blocking.
  auto delta = hub.exchange(0, {entry_for("sync", 1.0)}, {});
  EXPECT_EQ(delta.epoch, 1u);
  hub.leave(1);  // idempotent
  hub.leave(0);
}

TEST(CorpusHub, LeaveReleasesABlockedWaiter) {
  feedback::CorpusHub hub(2);
  feedback::CorpusHub::Delta d0;
  std::thread waiter([&] {
    d0 = hub.exchange(0, {entry_for("sync", 1.0)}, {"sync"});
  });
  // Let the waiter reach the barrier, then retire shard 1; its leave must
  // commit the epoch on the waiter's behalf.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  hub.leave(1);
  waiter.join();
  EXPECT_EQ(d0.epoch, 1u);
  EXPECT_EQ(d0.denylist, std::vector<std::string>{"sync"});
}

TEST(CorpusHub, CursorSkipsEntriesAlreadyPulled) {
  feedback::CorpusHub hub(2);
  feedback::CorpusHub::Delta d0a, d1a, d0b, d1b;
  {
    std::thread t0([&] { d0a = hub.exchange(0, {entry_for("sync", 1.0)}, {}); });
    std::thread t1([&] { d1a = hub.exchange(1, {}, {}); });
    t0.join();
    t1.join();
  }
  {
    std::thread t0([&] { d0b = hub.exchange(0, {}, {}); });
    std::thread t1([&] {
      d1b = hub.exchange(1, {entry_for("kcmp-pair", 2.0)}, {});
    });
    t0.join();
    t1.join();
  }
  EXPECT_EQ(d1a.entries.size(), 1u);  // pulled shard 0's entry in epoch 1
  EXPECT_TRUE(d1b.entries.empty());   // nothing new for shard 1 in epoch 2
  EXPECT_TRUE(d0a.entries.empty());
  ASSERT_EQ(d0b.entries.size(), 1u);  // shard 1's epoch-2 entry
  EXPECT_EQ(d0b.entries[0].program.hash(), named_seed("kcmp-pair")->hash());
}

// --- monitor aggregation ---------------------------------------------------------

TEST(MonitorSharded, MetricsAndStatusGrowPerShardSeries) {
  telemetry::LiveStatus s0, s1;
  s0.begin_campaign(2, 3);
  s1.begin_campaign(2, 3);
  s0.on_round(0, kSecond, 100, {});
  s1.on_round(0, kSecond, 250, {});
  s1.set_done();

  telemetry::Watchdog wd0;
  telemetry::MonitorServer monitor;
  monitor.add_shard(0, &s0, &wd0);
  monitor.add_shard(1, &s1);

  const std::string metrics = monitor.metrics_text();
  EXPECT_NE(metrics.find("torpedo_shards 2"), std::string::npos);
  EXPECT_NE(metrics.find("torpedo_shard_executions_total{shard=\"0\"} 100"),
            std::string::npos);
  EXPECT_NE(metrics.find("torpedo_shard_executions_total{shard=\"1\"} 250"),
            std::string::npos);
  EXPECT_NE(metrics.find("torpedo_shard_done{shard=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("torpedo_shard_watchdog_stalled{shard=\"0\"} 0"),
            std::string::npos);
  // No campaign-wide LiveStatus: unlabeled totals are synthesized sums.
  EXPECT_NE(metrics.find("torpedo_executions_total 350"), std::string::npos);

  const std::string status = monitor.status_json();
  EXPECT_NE(status.find("\"shard_count\":2"), std::string::npos);
  EXPECT_NE(status.find("\"shards\":["), std::string::npos);
  EXPECT_NE(status.find("\"executions\":350"), std::string::npos);
}

// --- sharded campaigns -----------------------------------------------------------

TEST(ShardedCampaignTest, SingleShardMatchesPlainCampaign) {
  ShardedConfig config;
  config.base = fast_config();
  config.base.batches = 1;
  config.shards = 1;
  ShardedCampaign fleet(config);
  const CampaignReport merged = fleet.run();

  Campaign plain(config.base);
  plain.load_default_seeds();
  for (int b = 0; b < config.base.batches; ++b) plain.run_one_batch();
  const CampaignReport report = plain.finalize();

  EXPECT_EQ(merged.rounds, report.rounds);
  EXPECT_EQ(merged.executions, report.executions);
  ASSERT_EQ(merged.findings.size(), report.findings.size());
  for (std::size_t i = 0; i < merged.findings.size(); ++i) {
    EXPECT_EQ(merged.findings[i].serialized, report.findings[i].serialized);
    EXPECT_EQ(merged.findings[i].cause, report.findings[i].cause);
  }
}

TEST(ShardedCampaignTest, TwoShardRunsAreByteDeterministic) {
  const auto run_once = [](const std::filesystem::path& report_file) {
    ShardedConfig config;
    config.base = fast_config();
    config.base.batches = 1;
    config.shards = 2;
    ShardedCampaign fleet(config);
    const CampaignReport merged = fleet.run();
    save_report(report_file, merged);
    return merged;
  };
  const auto dir = std::filesystem::temp_directory_path() / "torpedo-shard";
  std::filesystem::create_directories(dir);
  const CampaignReport a = run_once(dir / "a.txt");
  const CampaignReport b = run_once(dir / "b.txt");

  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  const std::string text_a = slurp(dir / "a.txt");
  EXPECT_FALSE(text_a.empty());
  EXPECT_EQ(text_a, slurp(dir / "b.txt"));
}

TEST(ShardedCampaignTest, MergedReportIsSortedAndRemapped) {
  ShardedConfig config;
  config.base = fast_config();
  config.base.batches = 1;
  config.shards = 3;
  ShardedCampaign fleet(config);
  const CampaignReport merged = fleet.run();

  ASSERT_EQ(fleet.shard_reports().size(), 3u);
  int rounds = 0;
  std::uint64_t executions = 0;
  for (const CampaignReport& r : fleet.shard_reports()) {
    rounds += r.rounds;
    executions += r.executions;
  }
  EXPECT_EQ(merged.rounds, rounds);
  EXPECT_EQ(merged.executions, executions);

  ASSERT_EQ(merged.provenance.size(), merged.findings.size());
  for (std::size_t i = 0; i < merged.findings.size(); ++i) {
    EXPECT_GE(merged.findings[i].shard, 0);
    EXPECT_LT(merged.findings[i].shard, 3);
    EXPECT_EQ(merged.provenance[i].finding_index, static_cast<int>(i));
    EXPECT_EQ(merged.provenance[i].shard, merged.findings[i].shard);
    if (i > 0)
      EXPECT_GE(merged.findings[i].shard, merged.findings[i - 1].shard);
  }
  EXPECT_TRUE(std::is_sorted(merged.denylist.begin(), merged.denylist.end()));
  EXPECT_EQ(merged.corpus_size, fleet.merged_corpus().size());
  EXPECT_GT(fleet.hub().stats().epochs, 0u);
}

TEST(ShardedCampaignTest, HooksRunPerShardAndSyncCanBeDisabled) {
  ShardedConfig config;
  config.base = fast_config();
  config.base.batches = 1;
  config.shards = 2;
  config.corpus_sync = false;
  ShardedCampaign fleet(config);

  std::mutex mu;
  std::set<int> started, finished;
  fleet.set_shard_start_hook([&](int shard, Campaign&) {
    std::lock_guard<std::mutex> lock(mu);
    started.insert(shard);
  });
  fleet.set_shard_finish_hook([&](int shard, Campaign&) {
    std::lock_guard<std::mutex> lock(mu);
    finished.insert(shard);
  });
  const CampaignReport merged = fleet.run();
  EXPECT_EQ(started, (std::set<int>{0, 1}));
  EXPECT_EQ(finished, (std::set<int>{0, 1}));
  EXPECT_GT(merged.rounds, 0);
  // Sync off: the hub saw only the final leave()s, never an exchange.
  EXPECT_EQ(fleet.hub().stats().epochs, 0u);
  EXPECT_EQ(fleet.hub().stats().published, 0u);
}

}  // namespace
