// Unit & property tests for the program IR: descriptions, validity/fixup,
// the text serializer/parser, the generator, and the mutation operators.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/seeds.h"
#include "core/workdir.h"
#include "feedback/corpus.h"
#include "prog/desc.h"
#include "prog/generate.h"
#include "prog/mutate.h"
#include "prog/program.h"

namespace torpedo::prog {
namespace {

const SyscallDesc* desc(const char* name) {
  const SyscallDesc* d = SyscallTable::instance().by_name(name);
  EXPECT_NE(d, nullptr) << name;
  return d;
}

Call make_call(const char* name, std::vector<ArgValue> args) {
  Call c;
  c.desc = desc(name);
  c.args = std::move(args);
  return c;
}

// --- table -----------------------------------------------------------------------

TEST(SyscallTableTest, LooksUpEveryEntryByName) {
  const SyscallTable& table = SyscallTable::instance();
  for (const SyscallDesc& d : table.all()) {
    EXPECT_EQ(table.by_name(d.name), &d);
    EXPECT_FALSE(d.interface.empty()) << d.name;
  }
  EXPECT_EQ(table.by_name("no_such_call"), nullptr);
}

TEST(SyscallTableTest, ProducersOfFd) {
  auto producers = SyscallTable::instance().producers_of("fd");
  ASSERT_FALSE(producers.empty());
  bool has_open = false, has_socket = false;
  for (const SyscallDesc* d : producers) {
    if (d->name == "open") has_open = true;
    if (d->name == "socket") has_socket = true;  // sock degrades to fd
  }
  EXPECT_TRUE(has_open);
  EXPECT_TRUE(has_socket);
}

TEST(SyscallTableTest, ProducersOfSockExcludesOpen) {
  auto producers = SyscallTable::instance().producers_of("sock");
  for (const SyscallDesc* d : producers) EXPECT_NE(d->name, "open");
  EXPECT_FALSE(producers.empty());
}

TEST(SyscallTableTest, InterfaceGroupsNonEmpty) {
  const char* interfaces[] = {"file", "net",    "signal", "mem",
                              "proc", "xattr",  "sync",   "inotify"};
  for (const char* name : interfaces)
    EXPECT_FALSE(SyscallTable::instance().interface(name).empty()) << name;
}

TEST(ResourceCompat, Matrix) {
  EXPECT_TRUE(resource_compatible("fd", "fd"));
  EXPECT_TRUE(resource_compatible("fd", "sock"));
  EXPECT_TRUE(resource_compatible("fd", "inotifyfd"));
  EXPECT_FALSE(resource_compatible("sock", "fd"));
  EXPECT_FALSE(resource_compatible("inotifyfd", "sock"));
  EXPECT_TRUE(resource_compatible("sock", "sock"));
}

// --- validity & fixup ------------------------------------------------------------

TEST(Program, ValidAcceptsWellFormed) {
  Program p({make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)}),
             make_call("fsync", {ArgValue::result(0)})});
  EXPECT_TRUE(p.valid());
}

TEST(Program, ForwardReferenceInvalid) {
  Program p({make_call("fsync", {ArgValue::result(1)}),
             make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)})});
  EXPECT_FALSE(p.valid());
}

TEST(Program, SelfReferenceInvalid) {
  Program p({make_call("fsync", {ArgValue::result(0)})});
  EXPECT_FALSE(p.valid());
}

TEST(Program, ReferenceToNonProducerInvalid) {
  Program p({make_call("sync", {}),
             make_call("fsync", {ArgValue::result(0)})});
  EXPECT_FALSE(p.valid());
}

TEST(Program, IncompatibleResourceInvalid) {
  // sendto wants a sock; creat produces a plain fd.
  Program p({make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)}),
             make_call("sendto",
                       {ArgValue::result(0), ArgValue::text(""), ArgValue::lit(4),
                        ArgValue::lit(0), ArgValue::text(""), ArgValue::lit(16)})});
  EXPECT_FALSE(p.valid());
}

TEST(Program, ArgCountMismatchInvalid) {
  Program p({make_call("creat", {ArgValue::text("f")})});
  EXPECT_FALSE(p.valid());
}

TEST(Program, FixupRebindsToNearestProducer) {
  Program p({make_call("creat", {ArgValue::text("a"), ArgValue::lit(0644)}),
             make_call("creat", {ArgValue::text("b"), ArgValue::lit(0644)}),
             make_call("fsync", {ArgValue::result(5)})});  // dangling
  p.fixup();
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.calls()[2].args[0].result_of, 1);  // nearest earlier producer
}

TEST(Program, FixupDegradesToBadFd) {
  Program p({make_call("fsync", {ArgValue::result(3)})});
  p.fixup();
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.calls()[0].args[0].kind, ArgValue::Kind::kLiteral);
  EXPECT_EQ(p.calls()[0].args[0].literal, 0xffffffffffffffffULL);
}

TEST(Program, FixupRespectsResourceKinds) {
  // A sendto referencing a plain fd must degrade, not bind.
  Program p({make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)}),
             make_call("sendto",
                       {ArgValue::result(0), ArgValue::text(""), ArgValue::lit(4),
                        ArgValue::lit(0), ArgValue::text(""), ArgValue::lit(16)})});
  p.fixup();
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.calls()[1].args[0].kind, ArgValue::Kind::kLiteral);
}

TEST(Program, FilterCallsRemapsReferences) {
  Program p({make_call("pause", {}),
             make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)}),
             make_call("fsync", {ArgValue::result(1)})});
  p.filter_calls({"pause"});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.calls()[1].args[0].result_of, 0);
}

TEST(Program, FilterRemovingProducerDegradesConsumer) {
  Program p({make_call("creat", {ArgValue::text("f"), ArgValue::lit(0644)}),
             make_call("fsync", {ArgValue::result(0)})});
  p.filter_calls({"creat"});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.calls()[0].args[0].kind, ArgValue::Kind::kLiteral);
}

// --- serializer / parser -----------------------------------------------------------

class SeedRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SeedRoundTripTest, SerializeParseRoundTrips) {
  auto seed = core::named_seed(GetParam());
  ASSERT_TRUE(seed.has_value());
  EXPECT_TRUE(seed->valid());
  const std::string text = seed->serialize();
  auto parsed = Program::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  EXPECT_EQ(*parsed, *seed) << text;
  EXPECT_EQ(parsed->serialize(), text);
}

INSTANTIATE_TEST_SUITE_P(AllNamedSeeds, SeedRoundTripTest,
                         ::testing::ValuesIn(core::named_seed_names()));

TEST(Serializer, FormatLooksLikeSyzkaller) {
  auto seed = core::named_seed("audit-oob");
  const std::string text = seed->serialize();
  EXPECT_NE(text.find("r0 = socket$netlink(0x10, 0x3, 0x9)"),
            std::string::npos);
  EXPECT_NE(text.find("sendto(r0, 'testing audit system', 0x24, 0x0, '', 0xc)"),
            std::string::npos);
}

TEST(Parser, RejectsMalformed) {
  EXPECT_FALSE(Program::parse("florble(0x1)").has_value());
  EXPECT_FALSE(Program::parse("sync(").has_value());
  EXPECT_FALSE(Program::parse("creat('f')").has_value());      // arg count
  EXPECT_FALSE(Program::parse("fsync(r7)").has_value());       // undefined ref
  EXPECT_FALSE(Program::parse("r3 = creat('f', 0x1)").has_value());  // label gap
  EXPECT_FALSE(Program::parse("r0 = sync()").has_value());  // non-producer
  EXPECT_FALSE(Program::parse("creat('f, 0x1)").has_value());  // bad quote
}

TEST(Parser, AcceptsCommentsAndBlanks) {
  auto p = Program::parse("# header\n\nsync()\n");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 1u);
}

TEST(Parser, EscapedStrings) {
  Program p({make_call("creat", {ArgValue::text("a'b\\c\nd"),
                                 ArgValue::lit(0644)})});
  auto parsed = Program::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->calls()[0].args[0].str, "a'b\\c\nd");
}

TEST(Program, HashDistinguishesPrograms) {
  auto a = core::named_seed("sync");
  auto b = core::named_seed("audit-oob");
  EXPECT_NE(a->hash(), b->hash());
  EXPECT_EQ(a->hash(), core::named_seed("sync")->hash());
}

// --- generator (property) -----------------------------------------------------------

class GeneratorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorPropertyTest, GeneratedProgramsAreValid) {
  Generator gen{Rng(GetParam())};
  for (int i = 0; i < 50; ++i) {
    const Program p = gen.generate();
    ASSERT_TRUE(p.valid()) << p.serialize();
    EXPECT_GE(p.size(), gen.config().min_calls);
    EXPECT_LE(p.size(), gen.config().max_calls);
    // And they round-trip through the serializer.
    auto parsed = Program::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value()) << p.serialize();
    EXPECT_EQ(*parsed, p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorPropertyTest,
                         ::testing::Values(1, 7, 42, 1337, 0xdead));

// Property sweep: 500 seeded random programs, parse(serialize(p)) == p
// exactly (call descs, every arg value, resource references).
TEST(GeneratorProperty, FiveHundredProgramsRoundTripExactly) {
  Generator gen{Rng(0x500)};
  for (int i = 0; i < 500; ++i) {
    const Program p = gen.generate();
    const auto parsed = Program::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value()) << "program " << i << ":\n"
                                    << p.serialize();
    ASSERT_EQ(*parsed, p) << "program " << i;
  }
}

// The same property through the corpus file format: save_corpus followed by
// load_corpus preserves every program exactly and every score to the
// serializer's %.4f precision (signal is re-learned, not persisted).
TEST(GeneratorProperty, CorpusSaveLoadRoundTrips) {
  Generator gen{Rng(0x501)};
  Rng score_rng(0x502);
  feedback::Corpus corpus;
  while (corpus.size() < 60) {
    feedback::SignalSet sig;
    sig.add(score_rng.next());  // unique signal per entry
    corpus.add(gen.generate(), sig, 100.0 * score_rng.uniform());
  }
  const std::filesystem::path file =
      std::filesystem::path(::testing::TempDir()) / "corpus-roundtrip.txt";
  core::save_corpus(file, corpus);
  feedback::Corpus loaded;
  ASSERT_EQ(core::load_corpus(file, loaded), corpus.size());
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded.entry(i).program, corpus.entry(i).program) << i;
    EXPECT_NEAR(loaded.entry(i).best_score, corpus.entry(i).best_score, 1e-4)
        << i;
  }
}

TEST(Generator, DenylistRespected) {
  GenConfig cfg;
  cfg.denylist = {"pause", "nanosleep", "poll", "recvfrom"};
  Generator gen(Rng(9), cfg);
  for (int i = 0; i < 100; ++i) {
    const Program p = gen.generate();
    for (const Call& call : p.calls()) {
      EXPECT_NE(call.desc->name, "pause");
      EXPECT_NE(call.desc->name, "nanosleep");
      EXPECT_NE(call.desc->name, "poll");
      EXPECT_NE(call.desc->name, "recvfrom");
    }
  }
}

TEST(Generator, InsertBiasedCallGrowsByOneAndStaysValid) {
  Generator gen(Rng(11));
  Program p = *core::named_seed("fsync-flood");
  const std::size_t before = p.size();
  gen.insert_biased_call(p);
  EXPECT_EQ(p.size(), before + 1);
  EXPECT_TRUE(p.valid());
}

TEST(Generator, ConstArgsAlwaysConst) {
  Generator gen(Rng(13));
  const SyscallDesc* netlink = desc("socket$netlink");
  for (int i = 0; i < 50; ++i) {
    Program empty;
    const ArgValue v = gen.random_arg(empty, 0, netlink->args[0]);
    EXPECT_EQ(v.literal, 16u);  // AF_NETLINK, narrowed by the variant
  }
}

// --- mutator (property) ---------------------------------------------------------------

class MutatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutatorPropertyTest, AllOpsPreserveValidity) {
  Generator gen{Rng(GetParam())};
  Mutator mutator(gen);
  std::vector<Program> corpus;
  for (int i = 0; i < 5; ++i) corpus.push_back(gen.generate());

  Program p = gen.generate();
  for (int step = 0; step < 200; ++step) {
    mutator.mutate(p, corpus);
    ASSERT_TRUE(p.valid()) << "step " << step << "\n" << p.serialize();
    ASSERT_GE(p.size(), 1u);
    ASSERT_LE(p.size(), mutator.config().max_calls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatorPropertyTest,
                         ::testing::Values(2, 3, 5, 99, 0xbeef));

TEST(Mutator, RemoveShrinks) {
  Generator gen(Rng(21));
  Mutator mutator(gen);
  Program p = *core::named_seed("appendix-a1-prog1");
  const std::size_t before = p.size();
  mutator.remove_call(p);
  EXPECT_EQ(p.size(), before - 1);
  EXPECT_TRUE(p.valid());
}

TEST(Mutator, RemoveKeepsLastCall) {
  Generator gen(Rng(22));
  Mutator mutator(gen);
  Program p = *core::named_seed("sync");
  mutator.remove_call(p);
  EXPECT_EQ(p.size(), 1u);  // refuses to empty the program
}

TEST(Mutator, SpliceRespectsMaxCalls) {
  Generator gen(Rng(23));
  MutateConfig cfg;
  cfg.max_calls = 6;
  Mutator mutator(gen, cfg);
  Program p = *core::named_seed("appendix-a1-prog1");  // 9 calls
  while (p.size() > 5) mutator.remove_call(p);
  const Program donor = *core::named_seed("appendix-a1-prog1");
  mutator.splice(p, donor);
  EXPECT_LE(p.size(), 6u);
  EXPECT_TRUE(p.valid());
}

TEST(Mutator, MutateArgChangesSomething) {
  Generator gen(Rng(25));
  Mutator mutator(gen);
  Program p = *core::named_seed("appendix-a1-prog1");
  const std::uint64_t before = p.hash();
  int changed = 0;
  for (int i = 0; i < 40; ++i) {
    Program q = p;
    mutator.mutate_arg(q);
    if (q.hash() != before) ++changed;
  }
  EXPECT_GT(changed, 20);
}

TEST(Mutator, EmptyCorpusDisablesSplice) {
  Generator gen(Rng(27));
  MutateConfig cfg;
  cfg.insert_weight = 0.001;
  cfg.remove_weight = 0.001;
  cfg.mutate_arg_weight = 0.001;
  cfg.splice_weight = 1000.0;
  Mutator mutator(gen, cfg);
  Program p = *core::named_seed("sync");
  // With an empty corpus, splice weight collapses and another op is chosen —
  // no crash, program stays valid.
  mutator.mutate(p, std::span<const Program>{});
  EXPECT_TRUE(p.valid());
}

}  // namespace
}  // namespace torpedo::prog
