// Integration & property tests: the Table-4.2 / Table-4.3 behaviours as a
// test suite, gVisor suppression of the runC findings, determinism, and
// host-wide accounting invariants across full rounds.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/classify.h"
#include "core/minimize.h"
#include "core/seeds.h"

namespace torpedo::core {
namespace {

CampaignConfig fast_config(runtime::RuntimeKind rt) {
  CampaignConfig cfg;
  cfg.runtime = rt;
  cfg.round_duration = 2 * kSecond;
  cfg.fuzzer.cycle_out_rounds = 3;
  return cfg;
}

// One known-vulnerability case from §4.1 / Table 4.2: the seed, the oracle
// that must flag it under runC, and the expected classified cause.
struct KnownVuln {
  const char* seed;
  const char* oracle;  // "cpu" or "io"
  const char* cause;
  bool is_new;
};

class KnownVulnTest : public ::testing::TestWithParam<KnownVuln> {};

TEST_P(KnownVulnTest, DetectedFlaggedAndClassifiedOnRunc) {
  const KnownVuln& c = GetParam();
  Campaign campaign(fast_config(runtime::RuntimeKind::kRunc));
  oracle::Oracle& oracle =
      std::string(c.oracle) == "io"
          ? static_cast<oracle::Oracle&>(campaign.io_oracle())
          : campaign.cpu_oracle();
  SingleRunner runner(campaign.observer(), oracle);

  auto seed = named_seed(c.seed);
  ASSERT_TRUE(seed.has_value());
  const auto violations = runner.violations(*seed);
  ASSERT_FALSE(violations.empty()) << c.seed << " was not flagged";

  CauseClassifier classifier(campaign.kernel());
  const observer::Observation& window = runner.last_round().observation;
  EXPECT_EQ(classifier.classify(window.window_start, window.window_end,
                                runner.last_round().stats[0]),
            c.cause);
  EXPECT_EQ(CauseClassifier::is_new_cause(c.cause), c.is_new);
}

TEST_P(KnownVulnTest, SuppressedOnGvisor) {
  // §4.4.2: "none of the adversarial programs identified in Section 4.3
  // exhibited the same behavior when run on gVisor."
  const KnownVuln& c = GetParam();
  Campaign campaign(fast_config(runtime::RuntimeKind::kGvisor));
  oracle::Oracle& oracle =
      std::string(c.oracle) == "io"
          ? static_cast<oracle::Oracle&>(campaign.io_oracle())
          : campaign.cpu_oracle();
  SingleRunner runner(campaign.observer(), oracle);
  const auto violations = runner.violations(*named_seed(c.seed));
  for (const auto& v : violations)
    ADD_FAILURE() << c.seed << " flagged on gVisor: " << v.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Table42, KnownVulnTest,
    ::testing::Values(
        KnownVuln{"sync", "io", "triggering IO buffer flushes", false},
        KnownVuln{"fsync-flood", "io", "triggering IO buffer flushes", false},
        KnownVuln{"rt-sigreturn", "cpu", "coredump via SIGSEGV", false},
        KnownVuln{"rseq-invalid", "cpu", "coredump via SIGSEGV", false},
        KnownVuln{"fallocate-sigxfsz", "cpu", "coredump via SIGXFSZ", false},
        KnownVuln{"ftruncate-sigxfsz", "cpu", "coredump via SIGXFSZ", false},
        KnownVuln{"socket-modprobe", "cpu", "repeated kernel modprobe", true},
        // The A.1.3 program pairs an audit flood with a socketpair(AF_IPX)
        // modprobe storm; the classifier reports the dominant (usermode-
        // helper) pattern, the paper's new finding.
        KnownVuln{"audit-oob", "cpu", "repeated kernel modprobe", true},
        KnownVuln{"setuid-audit", "cpu",
                  "audit daemon workload (kauditd/journald)", false}),
    [](const auto& info) {
      std::string name = info.param.seed;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Baseline, RuncBaselineProgramsAreClean) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kRunc));
  const std::vector<prog::Program> programs = {
      *named_seed("appendix-a1-prog0"), *named_seed("appendix-a1-prog1"),
      *named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  EXPECT_TRUE(campaign.cpu_oracle().flag(rr.observation).empty());
  EXPECT_TRUE(campaign.io_oracle().flag(rr.observation).empty());
}

TEST(Baseline, GvisorBaselineProgramsAreClean) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kGvisor));
  const std::vector<prog::Program> programs = {*named_seed("gvisor-prog0"),
                                               *named_seed("gvisor-prog1"),
                                               *named_seed("gvisor-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  EXPECT_TRUE(campaign.cpu_oracle().flag(rr.observation).empty());
  EXPECT_TRUE(campaign.io_oracle().flag(rr.observation).empty());
}

TEST(Baseline, GvisorUtilizationLowerThanRunc) {
  // Table A.4 vs A.1: "gVisor introduces additional overhead ... overall
  // utilization numbers are lower."
  auto run_baseline = [](runtime::RuntimeKind rt, const char* p0,
                         const char* p1, const char* p2) {
    Campaign campaign(fast_config(rt));
    const std::vector<prog::Program> programs = {
        *named_seed(p0), *named_seed(p1), *named_seed(p2)};
    const observer::RoundResult& rr = campaign.observer().run_round(programs);
    double busy = 0;
    for (int core : rr.observation.fuzz_cores)
      busy += rr.observation.core_usage(core)->percent();
    return busy / 3.0;
  };
  const double runc = run_baseline(runtime::RuntimeKind::kRunc,
                                   "appendix-a1-prog0", "appendix-a1-prog1",
                                   "appendix-a1-prog2");
  const double gvisor = run_baseline(runtime::RuntimeKind::kGvisor,
                                     "gvisor-prog0", "gvisor-prog1",
                                     "gvisor-prog2");
  EXPECT_GT(runc, 80.0);
  EXPECT_LT(gvisor, runc);
}

TEST(GvisorCrash, FlagPatternCrashIsDeterministic) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kGvisor));
  const std::vector<prog::Program> programs = {
      *named_seed("gvisor-open-crash"), *named_seed("gvisor-prog1"),
      *named_seed("gvisor-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  ASSERT_TRUE(rr.any_crash);
  EXPECT_TRUE(rr.stats[0].crashed);
  EXPECT_NE(rr.stats[0].crash_message.find("0x680002"), std::string::npos);
  // Reproduction: run it again in a fresh container (observer restarts it).
  const observer::RoundResult& rr2 = campaign.observer().run_round(programs);
  EXPECT_TRUE(rr2.any_crash);
}

TEST(Determinism, IdenticalCampaignsProduceIdenticalResults) {
  auto run = [] {
    CampaignConfig cfg;
    cfg.round_duration = kSecond;
    cfg.fuzzer.cycle_out_rounds = 2;
    cfg.batches = 1;
    cfg.num_seeds = 3;
    Campaign campaign(cfg);
    campaign.load_default_seeds();
    const BatchResult batch = campaign.run_one_batch();
    std::uint64_t fingerprint = 0;
    for (const prog::Program& p : batch.final_programs)
      fingerprint ^= p.hash();
    return std::tuple<int, double, std::uint64_t, std::uint64_t>(
        batch.rounds, batch.best_score, fingerprint,
        campaign.fuzzer().total_executions());
  };
  EXPECT_EQ(run(), run());
}

TEST(Invariants, PerCoreTimeConservedAcrossRounds) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kRunc));
  campaign.load_seeds({*named_seed("sync"), *named_seed("rt-sigreturn"),
                       *named_seed("socket-modprobe")});
  campaign.run_one_batch();
  const Nanos elapsed = campaign.kernel().host().now();
  for (int c = 0; c < campaign.kernel().host().num_cores(); ++c)
    EXPECT_EQ(campaign.kernel().host().core_times(c).total(), elapsed)
        << "core " << c;
}

TEST(Invariants, ContainerChargesRespectQuota) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kRunc));
  const std::vector<prog::Program> programs = {
      *named_seed("appendix-a1-prog0"), *named_seed("appendix-a1-prog1"),
      *named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  for (const observer::ContainerUsage& c : rr.observation.containers) {
    // --cpus 1.0 over a 2s window: at most ~2s of charged CPU.
    EXPECT_LE(c.cpu_ns, 2 * kSecond + 200 * kMillisecond) << c.cgroup_path;
  }
}

TEST(Invariants, OobWorkNeverChargedToContainers) {
  Campaign campaign(fast_config(runtime::RuntimeKind::kRunc));
  const std::vector<prog::Program> programs = {
      *named_seed("socket-modprobe"), *named_seed("rt-sigreturn"),
      *named_seed("kcmp-pair")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  // The whole point: host busy time far exceeds what the containers were
  // charged for.
  Nanos charged = 0;
  for (const observer::ContainerUsage& c : rr.observation.containers)
    charged += c.cpu_ns;
  const Nanos busy = rr.observation.aggregate.busy() * kJiffy;
  EXPECT_GT(busy, charged + kSecond);
  EXPECT_GT(campaign.kernel().modprobe_execs(), 0u);
  EXPECT_GT(campaign.kernel().coredumps(), 0u);
}

TEST(MemoryOracleE2E, MmapThrashFlagsUnderMemoryLimit) {
  // §5.1's future-work memory oracle, implemented: a container with -m 32MiB
  // running an mmap-hungry program trips the limit thousands of times per
  // round; the memory oracle flags the thrashing.
  CampaignConfig cfg = fast_config(runtime::RuntimeKind::kRunc);
  cfg.memory_bytes_per_container = 32 << 20;
  Campaign campaign(cfg);
  const std::vector<prog::Program> programs = {
      *named_seed("mmap-thrash"), *named_seed("kcmp-pair"),
      *named_seed("kcmp-pair")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  oracle::MemoryOracle memory_oracle;
  const auto violations = memory_oracle.flag(rr.observation);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].heuristic, "memory-limit-thrashing");
  EXPECT_GT(memory_oracle.score(rr.observation), 100.0);
}

TEST(MemoryOracleE2E, UnlimitedContainerClean) {
  CampaignConfig cfg = fast_config(runtime::RuntimeKind::kRunc);
  Campaign campaign(cfg);
  const std::vector<prog::Program> programs = {
      *named_seed("mmap-thrash"), *named_seed("kcmp-pair"),
      *named_seed("kcmp-pair")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  oracle::MemoryOracle memory_oracle;
  EXPECT_TRUE(memory_oracle.flag(rr.observation).empty());
}

TEST(EndToEnd, MiniRuncCampaignReportShape) {
  CampaignConfig cfg = fast_config(runtime::RuntimeKind::kRunc);
  cfg.batches = 3;
  cfg.num_seeds = 9;
  Campaign campaign(cfg);
  const CampaignReport report = campaign.run();
  EXPECT_EQ(report.batches, 3);
  EXPECT_GT(report.rounds, 9);
  EXPECT_GT(report.executions, 10'000u);
  EXPECT_GE(report.corpus_size, 3u);
  EXPECT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) {
    EXPECT_FALSE(f.syscalls.empty());
    EXPECT_FALSE(f.serialized.empty());
    EXPECT_FALSE(f.violations.empty());
    EXPECT_FALSE(f.cause.empty());
    // Every reported program must re-parse (it is handed to a human).
    EXPECT_TRUE(prog::Program::parse(f.serialized).has_value());
  }
}

}  // namespace
}  // namespace torpedo::core
