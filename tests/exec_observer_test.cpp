// Tests for the feedback layer (signals/corpus), the in-container executor
// (Algorithm 1), and the Observer (Algorithm 2 rounds).
#include <gtest/gtest.h>

#include "core/seeds.h"
#include "kernel/signals.h"
#include "exec/executor.h"
#include "feedback/corpus.h"
#include "feedback/signal.h"
#include "observer/observer.h"
#include "util/check.h"

namespace torpedo {
namespace {

// --- fallback signal ---------------------------------------------------------------

TEST(FallbackSignal, DistinctForDifferentInputs) {
  std::set<std::uint64_t> seen;
  const int errnos[] = {0, 2, 9, 22, 93, 94, 97};
  for (int nr = 0; nr < 64; ++nr)
    for (int err : errnos) seen.insert(feedback::fallback_signal(nr, err));
  EXPECT_EQ(seen.size(), 64u * 7u);
}

TEST(FallbackSignal, Deterministic) {
  EXPECT_EQ(feedback::fallback_signal(41, 97),
            feedback::fallback_signal(41, 97));
}

TEST(SignalSet, AddMergeNovelty) {
  feedback::SignalSet a, b;
  EXPECT_TRUE(a.add(1));
  EXPECT_FALSE(a.add(1));
  b.add(1);
  b.add(2);
  EXPECT_EQ(a.novelty(b), 1u);
  EXPECT_EQ(a.merge(b), 1u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.novelty(b), 0u);
}

// --- corpus ------------------------------------------------------------------------

TEST(Corpus, DedupsByContent) {
  feedback::Corpus corpus;
  feedback::SignalSet sig;
  sig.add(10);
  EXPECT_TRUE(corpus.add(*core::named_seed("sync"), sig, 5.0));
  EXPECT_FALSE(corpus.add(*core::named_seed("sync"), sig, 9.0));
  EXPECT_EQ(corpus.size(), 1u);
  EXPECT_EQ(corpus.entry(0).best_score, 9.0);  // refreshed
  EXPECT_TRUE(corpus.add(*core::named_seed("audit-oob"), sig, 1.0));
  ASSERT_EQ(corpus.donors().size(), 2u);
  // Donor pointers alias the stored entries (single-storage invariant) and
  // stay stable as the corpus grows.
  EXPECT_EQ(corpus.donors()[0], &corpus.entry(0).program);
  const prog::Program* first = corpus.donors()[0];
  for (const char* name : {"sync", "appendix-a1-prog0", "appendix-a1-prog2"})
    corpus.add(*core::named_seed(name), sig, 1.0);
  EXPECT_EQ(corpus.donors()[0], first);
  EXPECT_EQ(first->hash(), core::named_seed("sync")->hash());
}

TEST(Corpus, CoverageAccumulates) {
  feedback::Corpus corpus;
  feedback::SignalSet s1, s2;
  s1.add(1);
  s2.add(1);
  s2.add(2);
  corpus.add(*core::named_seed("sync"), s1, 0);
  EXPECT_EQ(corpus.novelty(s2), 1u);
  corpus.add(*core::named_seed("audit-oob"), s2, 0);
  EXPECT_EQ(corpus.novelty(s2), 0u);
  EXPECT_EQ(corpus.coverage().size(), 2u);
}

// --- executor + observer harness --------------------------------------------------

struct Harness {
  explicit Harness(runtime::RuntimeKind rt = runtime::RuntimeKind::kRunc,
                   int executors = 2, Nanos round = kSecond,
                   std::size_t max_log_rounds = 0) {
    kernel::KernelConfig cfg;
    cfg.host.num_cores = 8;
    kernel = std::make_unique<kernel::SimKernel>(cfg);
    engine = std::make_unique<runtime::Engine>(*kernel);
    for (int i = 0; i < executors; ++i) {
      runtime::ContainerSpec spec;
      spec.name = "e" + std::to_string(i);
      spec.runtime = rt;
      spec.cpus = 1.0;
      spec.cpuset_cpus = std::to_string(i);
      execs.push_back(std::make_unique<exec::Executor>(*engine, spec));
    }
    std::vector<exec::Executor*> raw;
    for (auto& e : execs) raw.push_back(e.get());
    observer::ObserverConfig ocfg;
    ocfg.round_duration = round;
    ocfg.side_band_core = 3;
    ocfg.max_log_rounds = max_log_rounds;
    observer = std::make_unique<observer::Observer>(*kernel, raw, ocfg);
    kernel->host().run_for(500 * kMillisecond);  // settle startup helpers
  }

  std::unique_ptr<kernel::SimKernel> kernel;
  std::unique_ptr<runtime::Engine> engine;
  std::vector<std::unique_ptr<exec::Executor>> execs;
  std::unique_ptr<observer::Observer> observer;
};

TEST(Executor, RunsProgramForOneRound) {
  Harness h;
  const Nanos stop = h.kernel->host().now() + kSecond;
  h.execs[0]->prime(*core::named_seed("appendix-a1-prog2"), stop);
  h.execs[1]->prime(*core::named_seed("appendix-a1-prog0"), stop);
  EXPECT_FALSE(h.execs[0]->idle());
  h.execs[0]->start();
  h.execs[1]->start();
  h.kernel->host().run_until(stop + 100 * kMillisecond);
  ASSERT_TRUE(h.execs[0]->idle());
  const exec::RunStats& stats = h.execs[0]->stats();
  EXPECT_GT(stats.executions, 1000u);
  EXPECT_GT(stats.avg_execution_time, 0);
  EXPECT_FALSE(stats.signal.empty());
  EXPECT_EQ(stats.call_signal.size(), 2u);
  EXPECT_EQ(stats.last_iteration.size(), 2u);
}

// Regression: stream_every == 0 is documented as "never stream", but the
// executor divided by it on every iteration (and once more in the
// round-finalize flush) — a hard SIGFPE. Same for bytes_per_result == 0,
// which just made every flush a no-op worth skipping.
TEST(Executor, StreamEveryZeroDisablesStreaming) {
  Harness h;
  exec::ExecConfig cfg;
  cfg.stream_every = 0;
  runtime::ContainerSpec spec;
  spec.name = "no-stream";
  spec.cpus = 1.0;
  spec.cpuset_cpus = "5";
  exec::Executor executor(*h.engine, spec, cfg);

  const Nanos stop = h.kernel->host().now() + kSecond;
  executor.prime(*core::named_seed("appendix-a1-prog2"), stop);
  executor.start();
  h.kernel->host().run_until(stop + 100 * kMillisecond);
  ASSERT_TRUE(executor.idle());
  EXPECT_GT(executor.stats().executions, 0u);
}

TEST(Executor, BytesPerResultZeroDisablesStreaming) {
  Harness h;
  exec::ExecConfig cfg;
  cfg.bytes_per_result = 0;
  runtime::ContainerSpec spec;
  spec.name = "no-bytes";
  spec.cpus = 1.0;
  spec.cpuset_cpus = "5";
  exec::Executor executor(*h.engine, spec, cfg);

  const Nanos stop = h.kernel->host().now() + kSecond;
  executor.prime(*core::named_seed("appendix-a1-prog0"), stop);
  executor.start();
  h.kernel->host().run_until(stop + 100 * kMillisecond);
  ASSERT_TRUE(executor.idle());
  EXPECT_GT(executor.stats().executions, 0u);
}

TEST(Executor, PrimeWhileRunningThrows) {
  Harness h;
  const Nanos stop = h.kernel->host().now() + kSecond;
  h.execs[0]->prime(*core::named_seed("sync"), stop);
  EXPECT_THROW(h.execs[0]->prime(*core::named_seed("sync"), stop),
               CheckFailure);
}

TEST(Executor, StartRequiresPrime) {
  Harness h;
  EXPECT_THROW(h.execs[0]->start(), CheckFailure);
}

TEST(Executor, TakeStatsResets) {
  Harness h;
  const Nanos stop = h.kernel->host().now() + 500 * kMillisecond;
  h.execs[0]->prime(*core::named_seed("kcmp-pair"), stop);
  h.execs[1]->prime(*core::named_seed("kcmp-pair"), stop);
  h.execs[0]->start();
  h.execs[1]->start();
  h.kernel->host().run_until(stop + 50 * kMillisecond);
  const exec::RunStats stats = h.execs[0]->take_stats();
  EXPECT_GT(stats.executions, 0u);
  EXPECT_EQ(h.execs[0]->stats().executions, 0u);
}

TEST(Executor, FatalSignalProgramsRespawn) {
  Harness h;
  const Nanos stop = h.kernel->host().now() + kSecond;
  h.execs[0]->prime(*core::named_seed("rt-sigreturn"), stop);
  h.execs[1]->prime(*core::named_seed("kcmp-pair"), stop);
  h.execs[0]->start();
  h.execs[1]->start();
  h.kernel->host().run_until(stop + 100 * kMillisecond);
  const exec::RunStats& stats = h.execs[0]->stats();
  // Every iteration died to SIGSEGV yet execution continued (respawn).
  EXPECT_GT(stats.executions, 50u);
  EXPECT_EQ(stats.fatal_signals, stats.executions);
  EXPECT_EQ(stats.last_fatal_signal, kernel::SIGSEGV_);
}

TEST(Executor, GvisorCrashDetectedAndRestartable) {
  Harness h(runtime::RuntimeKind::kGvisor);
  const Nanos stop = h.kernel->host().now() + kSecond;
  h.execs[0]->prime(*core::named_seed("gvisor-open-crash"), stop);
  h.execs[1]->prime(*core::named_seed("gvisor-prog1"), stop);
  h.execs[0]->start();
  h.execs[1]->start();
  h.kernel->host().run_until(stop + 100 * kMillisecond);
  ASSERT_TRUE(h.execs[0]->crashed());
  EXPECT_NE(h.execs[0]->stats().crash_message.find("sentry panic"),
            std::string::npos);
  EXPECT_TRUE(h.execs[1]->idle());  // the neighbour is unaffected
  h.execs[0]->restart();
  EXPECT_TRUE(h.execs[0]->idle());
  EXPECT_EQ(h.execs[0]->container().restarts(), 1);
  EXPECT_EQ(h.engine->crashes(), 1u);
}

TEST(Executor, InterruptForcesEarlyFinish) {
  Harness h;
  const Nanos stop = h.kernel->host().now() + 10 * kSecond;
  // pause() blocks the whole round.
  auto pause_prog = prog::Program::parse("pause()\n");
  ASSERT_TRUE(pause_prog.has_value());
  h.execs[0]->prime(*pause_prog, stop);
  h.execs[1]->prime(*core::named_seed("kcmp-pair"), stop);
  h.execs[0]->start();
  h.execs[1]->start();
  h.kernel->host().run_for(200 * kMillisecond);
  EXPECT_FALSE(h.execs[0]->idle());
  h.execs[0]->interrupt();
  h.kernel->host().run_for(50 * kMillisecond);
  EXPECT_TRUE(h.execs[0]->idle());
}

// --- Observer ----------------------------------------------------------------------

TEST(Observer, RoundProducesAlignedObservation) {
  Harness h;
  const std::vector<prog::Program> programs = {
      *core::named_seed("kcmp-pair"), *core::named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = h.observer->run_round(programs);
  EXPECT_EQ(rr.round, 0);
  EXPECT_EQ(rr.observation.duration(), kSecond);
  EXPECT_EQ(rr.observation.cores.size(), 8u);
  EXPECT_EQ(rr.stats.size(), 2u);
  EXPECT_EQ(rr.programs.size(), 2u);
  // Conservation in jiffies: every core's row sums to the window length,
  // modulo per-category truncation (one jiffy per category at most).
  for (const observer::CoreUsage& core : rr.observation.cores) {
    EXPECT_LE(core.total(), nanos_to_jiffies(kSecond) +
                                sim::kNumCpuCategories) << core.core;
    EXPECT_GE(core.total(), nanos_to_jiffies(kSecond) -
                                sim::kNumCpuCategories) << core.core;
  }
}

TEST(Observer, FuzzCoresAndCapsReported) {
  Harness h;
  const std::vector<prog::Program> programs = {
      *core::named_seed("kcmp-pair"), *core::named_seed("kcmp-pair")};
  const observer::RoundResult& rr = h.observer->run_round(programs);
  EXPECT_EQ(rr.observation.fuzz_cores, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(rr.observation.configured_cpu_cap, 2.0);
  EXPECT_EQ(rr.observation.side_band_core, 3);
  EXPECT_TRUE(rr.observation.is_fuzz_core(0));
  EXPECT_FALSE(rr.observation.is_fuzz_core(5));
}

TEST(Observer, FuzzCoresAreBusyDuringRound) {
  Harness h;
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = h.observer->run_round(programs);
  for (int core : rr.observation.fuzz_cores) {
    const observer::CoreUsage* usage = rr.observation.core_usage(core);
    ASSERT_NE(usage, nullptr);
    EXPECT_GT(usage->percent(), 50.0) << core;
  }
}

TEST(Observer, WrongProgramCountThrows) {
  Harness h;
  const std::vector<prog::Program> one = {*core::named_seed("sync")};
  EXPECT_THROW(h.observer->run_round(one), CheckFailure);
}

TEST(Observer, TopMissesShortLivedHelpers) {
  Harness h;
  // socket-modprobe spawns hundreds of short-lived modprobe tasks.
  const std::vector<prog::Program> programs = {
      *core::named_seed("socket-modprobe"), *core::named_seed("kcmp-pair")};
  const observer::RoundResult& rr = h.observer->run_round(programs);
  EXPECT_GT(h.kernel->modprobe_execs(), 10u);
  for (const observer::ProcSample& p : rr.observation.processes)
    EXPECT_EQ(p.name.find("modprobe"), std::string::npos)
        << "top should be blind to short-lived helpers";
  // ... but the container entrypoints are long-lived and visible.
  bool saw_container = false;
  for (const observer::ProcSample& p : rr.observation.processes)
    if (p.name.rfind("ctr/", 0) == 0) saw_container = true;
  EXPECT_TRUE(saw_container);
}

TEST(Observer, ContainerUsageDeltas) {
  Harness h;
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"), *core::named_seed("kcmp-pair")};
  const observer::RoundResult& rr = h.observer->run_round(programs);
  ASSERT_EQ(rr.observation.containers.size(), 2u);
  for (const observer::ContainerUsage& c : rr.observation.containers) {
    EXPECT_GT(c.cpu_ns, 0);
    EXPECT_LE(c.cpu_ns, kSecond + 100 * kMillisecond);  // capped at 1 CPU
  }
}

TEST(Observer, CrashedExecutorIsRestartedNextRound) {
  Harness h(runtime::RuntimeKind::kGvisor);
  const std::vector<prog::Program> crash_programs = {
      *core::named_seed("gvisor-open-crash"), *core::named_seed("gvisor-prog1")};
  const observer::RoundResult& rr = h.observer->run_round(crash_programs);
  EXPECT_TRUE(rr.any_crash);
  // The next round restarts the crashed container transparently.
  const std::vector<prog::Program> benign = {
      *core::named_seed("gvisor-prog1"), *core::named_seed("gvisor-prog1")};
  const observer::RoundResult& rr2 = h.observer->run_round(benign);
  EXPECT_FALSE(rr2.any_crash);
  EXPECT_GT(rr2.stats[0].executions, 0u);
  EXPECT_EQ(h.observer->log().size(), 2u);
}

TEST(Observer, RoundsAccumulateInLog) {
  Harness h;
  const std::vector<prog::Program> programs = {
      *core::named_seed("kcmp-pair"), *core::named_seed("kcmp-pair")};
  h.observer->run_round(programs);
  h.observer->run_round(programs);
  h.observer->run_round(programs);
  EXPECT_EQ(h.observer->log().size(), 3u);
  EXPECT_EQ(h.observer->log()[2].round, 2);
  EXPECT_GT(h.observer->log()[2].observation.window_start,
            h.observer->log()[0].observation.window_end - kMillisecond);
}

TEST(Observer, LogRetentionPrunesOldestAndKeepsRecentReferencesValid) {
  Harness h(runtime::RuntimeKind::kRunc, 2, kSecond, /*max_log_rounds=*/3);
  const std::vector<prog::Program> programs = {
      *core::named_seed("kcmp-pair"), *core::named_seed("kcmp-pair")};
  for (int r = 0; r < 6; ++r) h.observer->run_round(programs);
  // Pruning is explicit — nothing is dropped until the owner says so.
  EXPECT_EQ(h.observer->log().size(), 6u);
  h.observer->prune_log();
  ASSERT_EQ(h.observer->log().size(), 3u);
  EXPECT_EQ(h.observer->log().front().round, 3);
  EXPECT_EQ(h.observer->log().back().round, 5);
  // References returned by run_round stay valid within the retention
  // window: only the *oldest* rounds are dropped, and the deque never
  // reallocates elements.
  const observer::RoundResult& r6 = h.observer->run_round(programs);
  const observer::RoundResult& r7 = h.observer->run_round(programs);
  h.observer->prune_log();  // retains rounds 5, 6, 7
  EXPECT_EQ(r6.round, 6);
  EXPECT_EQ(r6.stats.size(), 2u);
  EXPECT_EQ(r7.round, 7);
  EXPECT_EQ(h.observer->rounds_run(), 8);
  EXPECT_EQ(h.observer->log().front().round, 5);
}

}  // namespace
}  // namespace torpedo
