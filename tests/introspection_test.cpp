// Campaign introspection tests: seed lineage (corpus, hub exchange, sharded
// merge), the per-operator mutation-efficacy profiler, and the signal-growth
// time-series recorder with its plateau detector.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/seeds.h"
#include "core/sharded.h"
#include "feedback/corpus.h"
#include "feedback/corpus_hub.h"
#include "feedback/mutation_efficacy.h"
#include "telemetry/json.h"
#include "telemetry/timeseries.h"
#include "util/time.h"

using namespace torpedo;

namespace {

core::CampaignConfig fast_config() {
  core::CampaignConfig cfg;
  cfg.round_duration = kSecond;
  cfg.fuzzer.cycle_out_rounds = 3;
  cfg.num_seeds = 6;
  cfg.batches = 2;
  return cfg;
}

feedback::SignalSet signal_of(std::uint64_t element) {
  feedback::SignalSet signal;
  signal.add(element);
  return signal;
}

// --- origin ops -------------------------------------------------------------

TEST(OriginOp, NamesRoundTrip) {
  for (int i = 0; i < feedback::kNumOriginOps; ++i) {
    const auto op = static_cast<feedback::OriginOp>(i);
    const auto name = feedback::origin_op_name(op);
    EXPECT_FALSE(name.empty());
    const auto back = feedback::origin_op_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(feedback::origin_op_from_name("quantum_leap").has_value());
}

// --- corpus lineage ---------------------------------------------------------

TEST(CorpusLineage, ParentsResolveAndDepthCounts) {
  feedback::Corpus corpus;
  const prog::Program a = *core::named_seed("sync");
  const prog::Program b = *core::named_seed("kcmp-pair");
  const prog::Program c = *core::named_seed("readlink-eloop");

  ASSERT_TRUE(corpus.add(a, signal_of(1), 1.0,
                         {0, feedback::OriginOp::kSeed, 0, -1}));
  ASSERT_TRUE(corpus.add(b, signal_of(2), 1.0,
                         {a.hash(), feedback::OriginOp::kSplice, 3, -1}));
  ASSERT_TRUE(corpus.add(c, signal_of(3), 1.0,
                         {b.hash(), feedback::OriginOp::kMutateArg, 5, -1}));

  const feedback::CorpusEntry* entry = corpus.find(c.hash());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lineage.parent_hash, b.hash());
  EXPECT_EQ(entry->lineage.op, feedback::OriginOp::kMutateArg);
  EXPECT_EQ(entry->lineage.birth_round, 5);

  EXPECT_EQ(corpus.depth(a.hash()), 0u);
  EXPECT_EQ(corpus.depth(b.hash()), 1u);
  EXPECT_EQ(corpus.depth(c.hash()), 2u);
}

TEST(CorpusLineage, FirstBirthWinsOnDuplicates) {
  feedback::Corpus corpus;
  const prog::Program a = *core::named_seed("sync");
  ASSERT_TRUE(corpus.add(a, signal_of(1), 1.0,
                         {0, feedback::OriginOp::kGenerate, 7, 2}));
  // Re-discovering the same program must not rewrite its ancestry.
  EXPECT_FALSE(corpus.add(a, signal_of(2), 2.0,
                          {42, feedback::OriginOp::kSplice, 9, 0}));
  const feedback::CorpusEntry* entry = corpus.find(a.hash());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->lineage.parent_hash, 0u);
  EXPECT_EQ(entry->lineage.op, feedback::OriginOp::kGenerate);
  EXPECT_EQ(entry->lineage.birth_round, 7);
  EXPECT_EQ(entry->lineage.birth_shard, 2);
}

TEST(CorpusLineage, ShardStampsOnlyUnstampedEntries) {
  feedback::Corpus corpus;
  corpus.set_shard(3);
  const prog::Program a = *core::named_seed("sync");
  const prog::Program b = *core::named_seed("kcmp-pair");
  // birth_shard -1: the corpus stamps its own shard.
  corpus.add(a, signal_of(1), 1.0, {0, feedback::OriginOp::kSeed, 0, -1});
  // An entry pulled from another shard keeps its original birth_shard.
  corpus.add(b, signal_of(2), 1.0, {0, feedback::OriginOp::kSeed, 0, 1});
  EXPECT_EQ(corpus.find(a.hash())->lineage.birth_shard, 3);
  EXPECT_EQ(corpus.find(b.hash())->lineage.birth_shard, 1);
}

// --- hub exchange preserves lineage ------------------------------------------

TEST(CorpusHubLineage, LineageSurvivesPublishAndPull) {
  feedback::CorpusHub hub(2);
  feedback::CorpusEntry entry;
  entry.program = *core::named_seed("sync");
  entry.signal.add(entry.program.hash());
  entry.best_score = 4.5;
  entry.lineage = {0xDEAD, feedback::OriginOp::kInsertCall, 11, 0};

  feedback::CorpusHub::Delta pulled;
  std::thread other([&] { pulled = hub.exchange(1, {}, {}); });
  (void)hub.exchange(0, {entry}, {});
  other.join();

  ASSERT_EQ(pulled.entries.size(), 1u);
  const feedback::Lineage& lin = pulled.entries[0].lineage;
  EXPECT_EQ(lin.parent_hash, 0xDEADu);
  EXPECT_EQ(lin.op, feedback::OriginOp::kInsertCall);
  EXPECT_EQ(lin.birth_round, 11);
  EXPECT_EQ(lin.birth_shard, 0);
}

// --- mutation efficacy -------------------------------------------------------

TEST(MutationEfficacy, RowsComeBackInFixedOrderWithSums) {
  feedback::MutationEfficacy eff;
  eff.record_attempt(feedback::OriginOp::kSplice);
  eff.record_attempt(feedback::OriginOp::kSplice);
  eff.record_accept(feedback::OriginOp::kSplice);
  eff.record_executions(feedback::OriginOp::kSplice, 100);
  eff.record_novel_signal(feedback::OriginOp::kSplice, 7);
  eff.record_violation(feedback::OriginOp::kMutateArg);
  eff.record_corpus_insert(feedback::OriginOp::kSeed);

  const auto rows = eff.rows();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(feedback::kNumOriginOps));
  for (int i = 0; i < feedback::kNumOriginOps; ++i)
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].op,
              static_cast<feedback::OriginOp>(i));
  const auto& splice = rows[static_cast<std::size_t>(
      feedback::OriginOp::kSplice)];
  EXPECT_EQ(splice.attempts, 2u);
  EXPECT_EQ(splice.accepted, 1u);
  EXPECT_EQ(splice.executions, 100u);
  EXPECT_EQ(splice.novel_signal, 7u);
  EXPECT_EQ(
      rows[static_cast<std::size_t>(feedback::OriginOp::kMutateArg)]
          .violations,
      1u);
  EXPECT_EQ(
      rows[static_cast<std::size_t>(feedback::OriginOp::kSeed)].corpus_inserts,
      1u);

  eff.reset();
  for (const auto& row : eff.rows()) {
    EXPECT_EQ(row.attempts, 0u);
    EXPECT_EQ(row.executions, 0u);
  }
}

TEST(MutationEfficacy, JsonAndPrometheusRender) {
  feedback::MutationEfficacy eff;
  eff.record_attempt(feedback::OriginOp::kGenerate);
  const auto obj = telemetry::parse_json_object(eff.to_json());
  ASSERT_TRUE(obj.has_value());
  ASSERT_TRUE(obj->count("ops"));
  const auto rows =
      telemetry::parse_json_array_of_objects(obj->at("ops").text);
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->size(), static_cast<std::size_t>(feedback::kNumOriginOps));

  const std::string prom = eff.to_prometheus();
  EXPECT_NE(prom.find("torpedo_mutation_attempts_total{op=\"generate\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE torpedo_mutation_executions_total counter"),
            std::string::npos);
}

// --- time series -------------------------------------------------------------

telemetry::RoundSample sample(int round, std::uint64_t signals) {
  telemetry::RoundSample s;
  s.round = round;
  s.sim_ns = static_cast<Nanos>(round) * kSecond;
  s.executions = static_cast<std::uint64_t>(round) * 100;
  s.corpus_size = signals / 2;
  s.distinct_signals = signals;
  s.violations = 0;
  return s;
}

TEST(TimeSeries, PlateauEnteredOnceAndExitsOnGrowth) {
  telemetry::TimeSeriesRecorder::Config config;
  config.plateau_rounds = 3;
  telemetry::TimeSeriesRecorder rec(config);

  EXPECT_FALSE(rec.record(sample(0, 1)));  // growth (from 0)
  EXPECT_FALSE(rec.record(sample(1, 1)));  // stagnant x1
  EXPECT_FALSE(rec.record(sample(2, 1)));  // stagnant x2
  EXPECT_TRUE(rec.record(sample(3, 1)));   // stagnant x3 -> plateau
  EXPECT_FALSE(rec.record(sample(4, 1)));  // still stagnant, already entered
  EXPECT_TRUE(rec.in_plateau());
  EXPECT_EQ(rec.plateaus(), 1u);

  EXPECT_FALSE(rec.record(sample(5, 2)));  // growth exits the plateau
  EXPECT_FALSE(rec.in_plateau());
  EXPECT_EQ(rec.rounds_since_growth(), 0);

  EXPECT_FALSE(rec.record(sample(6, 2)));
  EXPECT_FALSE(rec.record(sample(7, 2)));
  EXPECT_TRUE(rec.record(sample(8, 2)));  // second plateau
  EXPECT_EQ(rec.plateaus(), 2u);
}

TEST(TimeSeries, StrideDoublingKeepsABoundedSpanningSet) {
  telemetry::TimeSeriesRecorder::Config config;
  config.capacity = 4;
  telemetry::TimeSeriesRecorder rec(config);
  for (int r = 0; r < 64; ++r) rec.record(sample(r, 1));

  EXPECT_LE(rec.size(), 4u);
  EXPECT_GT(rec.stride(), 1u);
  ASSERT_FALSE(rec.samples().empty());
  // The retained set still spans the whole run: first sample is round 0 and
  // rounds are strictly increasing.
  EXPECT_EQ(rec.samples().front().round, 0);
  for (std::size_t i = 1; i < rec.samples().size(); ++i)
    EXPECT_LT(rec.samples()[i - 1].round, rec.samples()[i].round);
}

TEST(TimeSeries, FlushIsDeterministicAndStampsShard) {
  telemetry::TimeSeriesRecorder::Config config;
  config.shard = 1;
  telemetry::TimeSeriesRecorder a(config), b(config);
  for (int r = 0; r < 10; ++r) {
    a.record(sample(r, static_cast<std::uint64_t>(r)));
    b.record(sample(r, static_cast<std::uint64_t>(r)));
  }
  std::ostringstream out_a, out_b;
  a.flush_jsonl(out_a);
  b.flush_jsonl(out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_NE(out_a.str().find("\"shard\":1"), std::string::npos);

  telemetry::TimeSeriesRecorder unsharded;
  unsharded.record(sample(0, 1));
  std::ostringstream out_c;
  unsharded.flush_jsonl(out_c);
  EXPECT_EQ(out_c.str().find("\"shard\""), std::string::npos);
}

// --- end-to-end through the campaign -----------------------------------------

TEST(Introspection, EfficacyExecutionsMatchTheFuzzerExactly) {
  feedback::MutationEfficacy efficacy;
  feedback::set_mutation_efficacy(&efficacy);
  core::Campaign campaign(fast_config());
  campaign.load_default_seeds();
  (void)campaign.run();
  feedback::set_mutation_efficacy(nullptr);

  std::uint64_t executions = 0, attempts = 0;
  for (const auto& row : efficacy.rows()) {
    executions += row.executions;
    EXPECT_LE(row.accepted, row.attempts) << origin_op_name(row.op);
    attempts += row.attempts;
  }
  EXPECT_GT(attempts, 0u);
  // Every simulated execution is attributed to exactly one operator.
  EXPECT_EQ(executions, campaign.fuzzer().total_executions());
}

TEST(Introspection, CampaignFeedsTheTimeSeries) {
  telemetry::TimeSeriesRecorder recorder;
  core::Campaign campaign(fast_config());
  campaign.set_timeseries(&recorder);
  campaign.load_default_seeds();
  (void)campaign.run();

  ASSERT_GT(recorder.size(), 0u);
  const auto& samples = recorder.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].round, samples[i].round);
    EXPECT_LE(samples[i - 1].executions, samples[i].executions);
    EXPECT_LE(samples[i - 1].sim_ns, samples[i].sim_ns);
  }
  EXPECT_GT(samples.back().executions, 0u);
}

TEST(Introspection, ShardedMergeKeepsParentsResolvable) {
  core::ShardedConfig config;
  config.base = fast_config();
  config.shards = 2;
  core::ShardedCampaign sharded(config);
  (void)sharded.run();

  const feedback::Corpus& merged = sharded.merged_corpus();
  ASSERT_GT(merged.size(), 0u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const feedback::CorpusEntry& entry = merged.entry(i);
    // Every entry was born on a real shard...
    EXPECT_GE(entry.lineage.birth_shard, 0);
    EXPECT_LT(entry.lineage.birth_shard, 2);
    // ...and every non-root parent link resolves in the merged corpus (no
    // dangling ancestry after cross-shard pulls + the final merge).
    if (entry.lineage.parent_hash != 0)
      EXPECT_NE(merged.find(entry.lineage.parent_hash), nullptr)
          << "dangling parent of entry " << i;
    EXPECT_LT(merged.depth(entry.program.hash()), 64u);
  }
}

}  // namespace
