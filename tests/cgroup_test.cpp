// Unit tests for src/cgroup: cpusets, hierarchy, and the cpu/memory/blkio
// controllers (including CFS bandwidth windows).
#include <gtest/gtest.h>

#include "cgroup/cgroup.h"
#include "cgroup/cpuset.h"
#include "util/check.h"

namespace torpedo::cgroup {
namespace {

// --- CpuSet --------------------------------------------------------------------

struct CpusetParseCase {
  const char* spec;
  bool ok;
  int count;
};

class CpuSetParseTest : public ::testing::TestWithParam<CpusetParseCase> {};

TEST_P(CpuSetParseTest, Parses) {
  const auto& c = GetParam();
  auto set = CpuSet::parse(c.spec);
  EXPECT_EQ(set.has_value(), c.ok) << c.spec;
  if (set) EXPECT_EQ(set->count(), c.count) << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CpuSetParseTest,
    ::testing::Values(CpusetParseCase{"0", true, 1},
                      CpusetParseCase{"0-2", true, 3},
                      CpusetParseCase{"0-2,7", true, 4},
                      CpusetParseCase{"63", true, 1},
                      CpusetParseCase{" 1 , 3-4 ", true, 3},
                      CpusetParseCase{"", false, 0},
                      CpusetParseCase{"5-2", false, 0},
                      CpusetParseCase{"64", false, 0},
                      CpusetParseCase{"0-64", false, 0},
                      CpusetParseCase{"a", false, 0},
                      CpusetParseCase{"1-", false, 0}));

class CpuSetRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CpuSetRoundTripTest, ToStringRoundTrips) {
  auto set = CpuSet::parse(GetParam());
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Canonical, CpuSetRoundTripTest,
                         ::testing::Values("0", "0-2", "0-2,7", "1,3,5",
                                           "0-63", "5-8,10-12"));

TEST(CpuSet, BasicOps) {
  CpuSet s = CpuSet::of({1, 3});
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.count(), 2);
  EXPECT_EQ(s.first(), 1);
  s.remove(1);
  EXPECT_EQ(s.first(), 3);
  s.remove(3);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.first(), -1);
}

TEST(CpuSet, All) {
  EXPECT_EQ(CpuSet::all(12).count(), 12);
  EXPECT_EQ(CpuSet::all(64).count(), 64);
  EXPECT_TRUE(CpuSet::all(0).empty());
}

TEST(CpuSet, Intersect) {
  const CpuSet a = CpuSet::of({0, 1, 2});
  const CpuSet b = CpuSet::of({1, 2, 3});
  EXPECT_EQ(a.intersect(b).cores(), (std::vector<int>{1, 2}));
}

TEST(CpuSet, OutOfRange) {
  CpuSet s;
  EXPECT_THROW(s.add(64), CheckFailure);
  EXPECT_THROW(s.add(-1), CheckFailure);
  EXPECT_FALSE(s.contains(64));
  EXPECT_FALSE(s.contains(-1));
}

// --- Hierarchy -------------------------------------------------------------------

TEST(Hierarchy, CreateFindRemove) {
  Hierarchy h(12);
  Cgroup& docker = h.create(h.root(), "docker");
  Cgroup& ctr = h.create(docker, "ctr-1");
  EXPECT_EQ(ctr.path(), "/docker/ctr-1");
  EXPECT_EQ(h.find("/docker/ctr-1"), &ctr);
  EXPECT_EQ(h.find("/docker"), &docker);
  EXPECT_EQ(h.find("/"), &h.root());
  EXPECT_EQ(h.find("/nope"), nullptr);
  EXPECT_EQ(h.find("docker"), nullptr);  // must be absolute
  h.remove(ctr);
  EXPECT_EQ(h.find("/docker/ctr-1"), nullptr);
}

TEST(Hierarchy, DuplicateNameThrows) {
  Hierarchy h(4);
  h.create(h.root(), "x");
  EXPECT_THROW(h.create(h.root(), "x"), CheckFailure);
}

TEST(Hierarchy, BadNamesThrow) {
  Hierarchy h(4);
  EXPECT_THROW(h.create(h.root(), ""), CheckFailure);
  EXPECT_THROW(h.create(h.root(), "a/b"), CheckFailure);
}

TEST(Hierarchy, RemoveRootOrNonEmptyThrows) {
  Hierarchy h(4);
  Cgroup& parent = h.create(h.root(), "p");
  h.create(parent, "c");
  EXPECT_THROW(h.remove(h.root()), CheckFailure);
  EXPECT_THROW(h.remove(parent), CheckFailure);
}

TEST(Hierarchy, EffectiveCpusetInherits) {
  Hierarchy h(12);
  Cgroup& parent = h.create(h.root(), "p");
  Cgroup& child = h.create(parent, "c");
  // Empty own set inherits.
  EXPECT_EQ(child.effective_cpuset().count(), 12);
  parent.set_cpuset(CpuSet::of({0, 1, 2}));
  EXPECT_EQ(child.effective_cpuset().count(), 3);
  child.set_cpuset(CpuSet::of({2, 3}));
  // Intersection with the ancestor.
  EXPECT_EQ(child.effective_cpuset().cores(), (std::vector<int>{2}));
}

TEST(Hierarchy, ChargePropagatesUp) {
  Hierarchy h(4);
  Cgroup& a = h.create(h.root(), "a");
  Cgroup& b = h.create(a, "b");
  b.charge_cpu(100);
  EXPECT_EQ(b.cpu().usage, 100);
  EXPECT_EQ(a.cpu().usage, 100);
  EXPECT_EQ(h.root().cpu().usage, 100);
  a.charge_cpu(50);
  EXPECT_EQ(b.cpu().usage, 100);
  EXPECT_EQ(h.root().cpu().usage, 150);
}

TEST(Hierarchy, UsageListing) {
  Hierarchy h(4);
  Cgroup& a = h.create(h.root(), "a");
  h.create(a, "b");
  a.charge_cpu(10);
  auto listing = h.cpu_usage_by_group();
  ASSERT_EQ(listing.size(), 3u);
  EXPECT_EQ(listing[0].first, "/");
  EXPECT_EQ(listing[1].first, "/a");
  EXPECT_EQ(listing[1].second, 10);
  EXPECT_EQ(listing[2].first, "/a/b");
}

// --- CFS bandwidth ---------------------------------------------------------------

TEST(CpuBandwidth, UnlimitedAlwaysAvailable) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  EXPECT_EQ(g.cpu_runtime_available(0, 1000), 1000);
  g.consume_cpu(0, 1'000'000'000);
  EXPECT_EQ(g.cpu_runtime_available(0, 1000), 1000);
}

TEST(CpuBandwidth, QuotaExhaustsAndRefills) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  g.cpu().quota = 50 * kMillisecond;  // 0.5 CPU per 100ms period
  EXPECT_EQ(g.cpu_runtime_available(0, 60 * kMillisecond),
            50 * kMillisecond);
  g.consume_cpu(0, 50 * kMillisecond);
  EXPECT_EQ(g.cpu_runtime_available(10 * kMillisecond, kMillisecond), 0);
  EXPECT_EQ(g.next_refill(10 * kMillisecond), 100 * kMillisecond);
  // After the window rolls, quota is fresh.
  EXPECT_EQ(g.cpu_runtime_available(100 * kMillisecond, kMillisecond),
            kMillisecond);
  EXPECT_GE(g.cpu().nr_throttled, 1u);
}

TEST(CpuBandwidth, NeverRunsPastWindowEnd) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  g.cpu().quota = 80 * kMillisecond;
  // At t=90ms, only 10ms remain in the window even though quota is 80ms.
  EXPECT_EQ(g.cpu_runtime_available(90 * kMillisecond, 50 * kMillisecond),
            10 * kMillisecond);
}

TEST(CpuBandwidth, ChildBoundedByParent) {
  Hierarchy h(4);
  Cgroup& parent = h.create(h.root(), "p");
  Cgroup& child = h.create(parent, "c");
  parent.cpu().quota = 10 * kMillisecond;
  EXPECT_EQ(child.cpu_runtime_available(0, 50 * kMillisecond),
            10 * kMillisecond);
  child.consume_cpu(0, 10 * kMillisecond);
  EXPECT_EQ(child.cpu_runtime_available(kMillisecond, kMillisecond), 0);
}

TEST(CpuBandwidth, PeriodsCounted) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  g.cpu().quota = 10 * kMillisecond;
  g.consume_cpu(0, kMillisecond);
  g.consume_cpu(350 * kMillisecond, kMillisecond);  // 3 periods later
  EXPECT_GE(g.cpu().nr_periods, 3u);
}

// --- memory ---------------------------------------------------------------------

TEST(Memory, ChargeWithinLimit) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  g.memory().limit_bytes = 1000;
  EXPECT_TRUE(g.charge_memory(600));
  EXPECT_EQ(g.memory().usage_bytes, 600);
  EXPECT_FALSE(g.charge_memory(600));
  EXPECT_EQ(g.memory().failcnt, 1u);
  EXPECT_EQ(g.memory().usage_bytes, 600);  // failed charge doesn't apply
  g.uncharge_memory(600);
  EXPECT_EQ(g.memory().usage_bytes, 0);
  EXPECT_EQ(g.memory().max_usage_bytes, 600);
}

TEST(Memory, AncestorLimitApplies) {
  Hierarchy h(4);
  Cgroup& parent = h.create(h.root(), "p");
  Cgroup& child = h.create(parent, "c");
  parent.memory().limit_bytes = 100;
  EXPECT_FALSE(child.charge_memory(200));
  EXPECT_EQ(parent.memory().failcnt, 1u);
  EXPECT_TRUE(child.charge_memory(50));
  EXPECT_EQ(parent.memory().usage_bytes, 50);
}

TEST(Memory, UnchargeFloorsAtZero) {
  Hierarchy h(4);
  Cgroup& g = h.create(h.root(), "g");
  g.charge_memory(10);
  g.uncharge_memory(100);
  EXPECT_EQ(g.memory().usage_bytes, 0);
}

// --- blkio ----------------------------------------------------------------------

TEST(Blkio, CountersPropagate) {
  Hierarchy h(4);
  Cgroup& parent = h.create(h.root(), "p");
  Cgroup& child = h.create(parent, "c");
  child.charge_blkio_write(4096);
  child.charge_blkio_read(512);
  EXPECT_EQ(child.blkio().bytes_written, 4096u);
  EXPECT_EQ(parent.blkio().bytes_read, 512u);
  EXPECT_EQ(h.root().blkio().ios, 2u);
}

}  // namespace
}  // namespace torpedo::cgroup
