// Tests for the selftest subsystem: invariant oracles (including the
// deliberately-broken-accounting detector validation), probe-mode
// shrinking, fault injection, torn-artifact handling, the replay differ,
// and harness determinism. Plus the mid-round watchdog-abort regression.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/campaign.h"
#include "core/minimize.h"
#include "core/provenance.h"
#include "core/seeds.h"
#include "core/workdir.h"
#include "feedback/syscall_profile.h"
#include "kernel/errno.h"
#include "kernel/syscalls.h"
#include "selftest/faultinject.h"
#include "selftest/harness.h"
#include "selftest/invariants.h"
#include "selftest/replay.h"

namespace torpedo {
namespace {

namespace fs = std::filesystem;

fs::path temp_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::CampaignConfig tiny_config(std::uint64_t seed) {
  core::CampaignConfig config;
  config.num_executors = 2;
  config.round_duration = 40 * kMillisecond;
  config.batches = 1;
  config.num_seeds = 4;
  config.seed = seed;
  config.max_confirmations = 4;
  config.fuzzer.cycle_out_rounds = 3;
  config.kernel.host.num_cores = 8;
  config.kernel.host.num_kworkers = 4;
  return config;
}

// --- invariant checker --------------------------------------------------------

TEST(InvariantChecker, CleanCampaignHasNoViolations) {
  core::Campaign campaign(tiny_config(11));
  selftest::InvariantChecker checker(campaign.kernel());
  checker.install();
  campaign.load_default_seeds();
  campaign.run_one_batch();
  checker.check_now();
  checker.uninstall();
  EXPECT_GT(checker.checks_run(), 0u);
  EXPECT_TRUE(checker.violations().empty())
      << selftest::invariant_violations_to_json(checker.violations());
  EXPECT_EQ(checker.first_violation_tick(), -1);
}

// Acceptance gate: a deliberately broken accounting mutation (the test-only
// skip-charging switch) must be caught by the conservation invariant.
TEST(InvariantChecker, CatchesDeliberatelyBrokenCharging) {
  core::Campaign campaign(tiny_config(12));
  campaign.kernel().host().set_skip_cgroup_charging_for_selftest(true);
  selftest::InvariantChecker checker(campaign.kernel());
  checker.install();
  campaign.load_default_seeds();
  campaign.run_one_batch();
  checker.uninstall();
  ASSERT_FALSE(checker.violations().empty());
  bool saw_charge = false;
  for (const selftest::InvariantViolation& v : checker.violations())
    if (v.invariant == "charge-conservation") saw_charge = true;
  EXPECT_TRUE(saw_charge);
  EXPECT_GT(checker.first_violation_tick(), 0);
}

// Probe mode runs exactly one check at the requested tick and throws
// ProbeStop — the shrinker's bisection primitive.
TEST(InvariantChecker, ProbeModeStopsAtRequestedTick) {
  const core::CampaignConfig config = tiny_config(13);
  core::Campaign campaign(config);
  campaign.kernel().host().set_skip_cgroup_charging_for_selftest(true);
  const Nanos probe_at = campaign.kernel().host().now() + 30 * kMillisecond;
  selftest::InvariantConfig icfg;
  icfg.probe_at_ns = probe_at;
  selftest::InvariantChecker checker(campaign.kernel(), icfg);
  checker.install();
  campaign.load_default_seeds();
  bool stopped = false;
  try {
    campaign.run_one_batch();
  } catch (const selftest::ProbeStop& stop) {
    stopped = true;
    EXPECT_GE(stop.tick_ns, probe_at);
    EXPECT_TRUE(stop.violated);  // charging is broken from warm-up's end
  }
  checker.uninstall();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(checker.checks_run(), 1u);
}

TEST(InvariantChecker, CatchesCpusetEscape) {
  kernel::KernelConfig cfg;
  cfg.host.num_cores = 8;
  kernel::SimKernel kernel(cfg);
  sim::Host& host = kernel.host();
  cgroup::Cgroup& jail = host.cgroups().create(host.cgroups().root(), "jail");
  jail.set_cpuset(cgroup::CpuSet::of({0, 1}));
  // Explicit affinity outside the cgroup's cpuset: the one way a runnable
  // task can sit on a core its group does not own.
  sim::Task& task = host.spawn({.name = "escapee",
                                .group = &jail,
                                .affinity = cgroup::CpuSet::single(5)});
  task.push(sim::Segment::user(10 * kMillisecond));
  host.run_for(kMillisecond);
  selftest::InvariantChecker checker(kernel);
  checker.check_now();
  bool saw_escape = false;
  for (const selftest::InvariantViolation& v : checker.violations())
    if (v.invariant == "cpuset-containment" && v.subject == "/jail")
      saw_escape = true;
  EXPECT_TRUE(saw_escape)
      << selftest::invariant_violations_to_json(checker.violations());
}

// --- fault injection ----------------------------------------------------------

TEST(FaultInjector, PlansAreSeedDeterministic) {
  const selftest::FaultPlan a = selftest::FaultPlan::random(99);
  const selftest::FaultPlan b = selftest::FaultPlan::random(99);
  EXPECT_EQ(a.to_json().to_string(), b.to_json().to_string());
  const selftest::FaultPlan c = selftest::FaultPlan::random(100);
  EXPECT_NE(a.to_json().to_string(), c.to_json().to_string());
}

TEST(FaultInjector, ForcedErrnoReachesEveryCall) {
  core::Campaign campaign(tiny_config(14));
  selftest::FaultPlan plan;
  plan.syscall_error_pct = 1.0;  // every syscall fails...
  plan.error_errno = kernel::EIO_;
  selftest::FaultInjector injector(plan);
  injector.install(campaign.kernel());
  core::SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  runner.violations(*core::named_seed("appendix-a1-prog0"));
  injector.uninstall(campaign.kernel());
  const exec::RunStats& stats = runner.last_round().stats[0];
  ASSERT_FALSE(stats.last_iteration.empty());
  for (const exec::CallRecord& call : stats.last_iteration) {
    EXPECT_EQ(call.err, kernel::EIO_);
    EXPECT_EQ(call.ret, -kernel::EIO_);
  }
  EXPECT_GT(injector.stats().errors_injected, 0u);
}

TEST(FaultInjector, CampaignSurvivesFaultStorm) {
  core::Campaign campaign(tiny_config(15));
  selftest::FaultPlan plan;
  plan.syscall_error_pct = 0.25;
  plan.error_errno = kernel::EINTR_;
  plan.drop_wakeup_pct = 0.5;
  plan.irq_burst_pct = 0.02;
  selftest::FaultInjector injector(plan);
  injector.install(campaign.kernel());
  campaign.load_default_seeds();
  campaign.run_one_batch();
  const core::CampaignReport report = campaign.finalize();
  injector.uninstall(campaign.kernel());
  EXPECT_GT(report.rounds, 0);
  EXPECT_GT(injector.stats().errors_injected, 0u);
}

TEST(TruncateFile, TornArtifactsAreRejectedNotFatal) {
  const fs::path dir = temp_dir("torpedo-torn");
  core::Campaign campaign(tiny_config(16));
  campaign.load_default_seeds();
  campaign.run_one_batch();
  core::save_corpus(dir / "corpus.txt", campaign.corpus());
  ASSERT_GT(fs::file_size(dir / "corpus.txt"), 0u);
  const std::uintmax_t kept = selftest::truncate_file(dir / "corpus.txt", 0.5);
  EXPECT_EQ(kept, fs::file_size(dir / "corpus.txt"));
  feedback::Corpus loaded;
  (void)core::load_corpus(dir / "corpus.txt", loaded);  // must not throw
  EXPECT_LE(loaded.size(), campaign.corpus().size());
}

// --- replay -------------------------------------------------------------------

// Records a mini campaign (manifest-capturable config only) with the full
// `torpedo run --workdir` artifact stack.
core::CampaignManifest record_workdir(const fs::path& dir,
                                      std::uint64_t seed) {
  core::CampaignManifest manifest;
  manifest.batches = 1;
  manifest.num_executors = 2;
  manifest.round_duration = 40 * kMillisecond;
  manifest.num_seeds = 4;
  manifest.seed = seed;
  feedback::SyscallProfile profile;
  feedback::set_syscall_profile(&profile);
  core::Campaign campaign(manifest.to_config());
  campaign.load_default_seeds();
  const core::CampaignReport report = campaign.run();
  feedback::set_syscall_profile(nullptr);
  core::save_corpus(dir / "corpus.txt", campaign.corpus());
  core::save_report(dir / "report.txt", report);
  core::write_violation_bundles(dir, report);
  std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
  out << profile.to_json(&kernel::sysno_name) << "\n";
  core::save_campaign_manifest(dir / "campaign.json", manifest);
  return manifest;
}

TEST(Replay, RecordedWorkdirReplaysByteIdentical) {
  const fs::path dir = temp_dir("torpedo-replay-ok");
  record_workdir(dir, 21);
  selftest::ReplayOptions options;
  options.workdir = dir;
  const selftest::ReplayResult result = selftest::replay_workdir(options);
  EXPECT_TRUE(result.ran) << result.error;
  EXPECT_TRUE(result.identical);
  EXPECT_GE(result.artifacts_compared, 3);
  EXPECT_TRUE(result.diffs.empty());
}

TEST(Replay, DetectsTamperedArtifact) {
  const fs::path dir = temp_dir("torpedo-replay-tamper");
  record_workdir(dir, 22);
  {
    std::ofstream out(dir / "report.txt", std::ios::app);
    out << "tampered line\n";
  }
  selftest::ReplayOptions options;
  options.workdir = dir;
  options.keep_scratch = true;
  const selftest::ReplayResult result = selftest::replay_workdir(options);
  ASSERT_TRUE(result.ran) << result.error;
  EXPECT_FALSE(result.identical);
  ASSERT_FALSE(result.diffs.empty());
  EXPECT_EQ(result.diffs[0].artifact, "report.txt");
}

TEST(Replay, MissingManifestFailsCleanly) {
  const fs::path dir = temp_dir("torpedo-replay-nomanifest");
  selftest::ReplayOptions options;
  options.workdir = dir;
  const selftest::ReplayResult result = selftest::replay_workdir(options);
  EXPECT_FALSE(result.ran);
  EXPECT_NE(result.error.find("campaign.json"), std::string::npos);
}

TEST(DiffJson, NamesTheExactDivergedField) {
  std::vector<selftest::ReplayDiff> diffs;
  selftest::diff_json("t", "", R"({"a":1,"nested":{"x":2,"y":"s"}})",
                      R"({"a":1,"nested":{"x":3,"y":"s"}})", diffs);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].path, "nested.x");
  EXPECT_EQ(diffs[0].original, "2");
  EXPECT_EQ(diffs[0].replayed, "3");
}

// --- harness ------------------------------------------------------------------

TEST(SelftestHarness, SameSeedSameReport) {
  selftest::SelftestOptions options;
  options.trials = 2;
  options.seed = 77;
  options.scratch = temp_dir("torpedo-selftest-a");
  const selftest::SelftestResult a = selftest::run_selftest(options);
  options.scratch = temp_dir("torpedo-selftest-b");
  const selftest::SelftestResult b = selftest::run_selftest(options);
  EXPECT_TRUE(a.passed) << a.report_json;
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_GT(a.trials_run, 0);
}

// --- watchdog abort -----------------------------------------------------------

// Regression: the abort flag used to be honored only at round boundaries,
// so an executor mid-round (e.g. spinning through an injected infinite-
// EINTR storm) kept the wall-clock-stalled batch alive for the rest of its
// round. The supplier now checks the flag at every iteration boundary and
// retires the round immediately.
TEST(WatchdogAbort, RetiresExecutorMidRound) {
  core::Campaign campaign(tiny_config(31));
  selftest::FaultPlan plan;
  plan.syscall_error_pct = 1.0;  // every call spins on EINTR
  plan.error_errno = kernel::EINTR_;
  selftest::FaultInjector injector(plan);
  injector.install(campaign.kernel());

  std::atomic<bool> abort_flag{false};
  exec::Executor& executor = campaign.executor(0);
  executor.set_abort_flag(&abort_flag);
  sim::Host& host = campaign.kernel().host();
  // A round long enough that only the abort flag can end it early.
  const Nanos stop = host.now() + 30 * kSecond;
  executor.prime(*core::named_seed("appendix-a1-prog0"), stop);
  executor.start();
  host.run_for(50 * kMillisecond);
  ASSERT_FALSE(executor.idle());

  abort_flag.store(true, std::memory_order_relaxed);
  host.run_for(50 * kMillisecond);
  EXPECT_TRUE(executor.idle());  // retired ~30s before the round deadline
  injector.uninstall(campaign.kernel());
}

}  // namespace
}  // namespace torpedo
