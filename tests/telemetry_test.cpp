// Telemetry layer: counters/gauges/histograms, the JSON builder/parser
// round-trip, and the JSONL trace sink contract (one record per write,
// event/seq/sim_ns/wall_ns stamped on every line).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace torpedo::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, HoldsLastValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.record(1);
  h.record(10);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
}

TEST(HistogramTest, PercentileBoundsObservedRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Log2 buckets give ~2x relative error; the estimate must stay within the
  // observed range and be monotone in p.
  const std::uint64_t p50 = h.percentile(50);
  const std::uint64_t p99 = h.percentile(99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p99);
  EXPECT_EQ(h.percentile(100), h.max());
  EXPECT_EQ(h.percentile(0), h.min());
}

TEST(HistogramTest, BucketsAreLog2) {
  Histogram h;
  h.record(0);    // bit_width(0) == 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
}

TEST(HistogramTest, ToJsonCarriesSummary) {
  Histogram h;
  h.record(7);
  const std::string json = h.to_json().to_string();
  auto parsed = parse_json_object(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["count"].integer, 1);
  EXPECT_EQ((*parsed)["sum"].integer, 7);
  EXPECT_EQ((*parsed)["min"].integer, 7);
  EXPECT_EQ((*parsed)["max"].integer, 7);
}

TEST(RegistryTest, InstrumentIdentityIsStable) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.inc(5);
  // Same name -> same instrument, even after other registrations rebalance
  // the map.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(reg.find_counter("x"), &a);
  EXPECT_EQ(reg.find_counter("never-registered"), nullptr);
}

TEST(RegistryTest, ToJsonAndReset) {
  Registry reg;
  reg.counter("hits").inc(3);
  reg.gauge("load").set(0.5);
  reg.histogram("lat").record(12);

  auto parsed = parse_json_object(reg.to_json(1234));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["sim_ns"].integer, 1234);
  EXPECT_GT((*parsed)["wall_ns"].integer, 0);
  // Sections come back as raw nested objects.
  EXPECT_NE((*parsed)["counters"].text.find("\"hits\":3"), std::string::npos);
  EXPECT_NE((*parsed)["gauges"].text.find("load"), std::string::npos);
  EXPECT_NE((*parsed)["histograms"].text.find("lat"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.find_counter("hits"), nullptr);
  EXPECT_TRUE(reg.counters().empty());
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&global(), &global());
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, DictPreservesInsertionOrder) {
  JsonDict d;
  d.set("z", 1).set("a", 2).set("m", true).set("s", "hi");
  EXPECT_EQ(d.to_string(), "{\"z\":1,\"a\":2,\"m\":true,\"s\":\"hi\"}");
}

TEST(JsonTest, Int64RoundTripIsExact) {
  // Epoch nanoseconds exceed 2^53 and would lose precision as a double.
  const std::int64_t wall = 1754400000123456789;
  JsonDict d;
  d.set("wall_ns", wall).set("neg", std::int64_t{-42});
  auto parsed = parse_json_object(d.to_string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE((*parsed)["wall_ns"].is_integer);
  EXPECT_EQ((*parsed)["wall_ns"].integer, wall);
  EXPECT_EQ((*parsed)["neg"].integer, -42);
}

TEST(JsonTest, ParsesStringsDoublesBoolsAndNested) {
  auto parsed = parse_json_object(
      "{\"s\":\"a\\nb\",\"d\":1.5,\"t\":true,\"f\":false,\"n\":null,"
      "\"o\":{\"inner\":[1,2]}}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["s"].text, "a\nb");
  EXPECT_EQ((*parsed)["d"].number, 1.5);
  EXPECT_FALSE((*parsed)["d"].is_integer);
  EXPECT_TRUE((*parsed)["t"].boolean);
  EXPECT_FALSE((*parsed)["f"].boolean);
  EXPECT_EQ((*parsed)["n"].kind, JsonValue::Kind::kNull);
  EXPECT_EQ((*parsed)["o"].kind, JsonValue::Kind::kRaw);
  EXPECT_EQ((*parsed)["o"].text, "{\"inner\":[1,2]}");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json_object("").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1").has_value());
  EXPECT_FALSE(parse_json_object("[1,2]").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1}trailing").has_value());
}

TEST(TraceSinkTest, WritesOneStampedRecordPerLine) {
  std::ostringstream out;
  TraceSink sink(out);
  ASSERT_TRUE(sink.ok());

  JsonDict fields;
  fields.set("round", 0).set("score", 12.5);
  sink.write("round", 5 * 1000000000LL, fields);
  sink.write("batch", 6 * 1000000000LL, JsonDict{});
  EXPECT_EQ(sink.records(), 2u);

  std::istringstream lines(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(lines, line));
  auto first = parse_json_object(line);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)["event"].text, "round");
  EXPECT_EQ((*first)["seq"].integer, 0);
  EXPECT_EQ((*first)["sim_ns"].integer, 5000000000LL);
  EXPECT_GT((*first)["wall_ns"].integer, 0);
  EXPECT_EQ((*first)["round"].integer, 0);
  EXPECT_EQ((*first)["score"].number, 12.5);

  ASSERT_TRUE(std::getline(lines, line));
  auto second = parse_json_object(line);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)["event"].text, "batch");
  EXPECT_EQ((*second)["seq"].integer, 1);

  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

TEST(TraceSinkTest, FileSinkTruncatesAndAppends) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "torpedo_trace_test.jsonl";
  {
    TraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.write("a", 1, JsonDict{});
    sink.write("b", 2, JsonDict{});
  }
  {
    TraceSink sink(path);  // reopening truncates
    sink.write("c", 3, JsonDict{});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = parse_json_object(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["event"].text, "c");
  EXPECT_FALSE(std::getline(in, line));
  std::filesystem::remove(path);
}

TEST(ScopedTimerTest, RecordsOnScopeExit) {
  Histogram h;
  { ScopedTimerUs timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace torpedo::telemetry
