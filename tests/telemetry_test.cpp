// Telemetry layer: counters/gauges/histograms, the JSON builder/parser
// round-trip, and the JSONL trace sink contract (one record per write,
// event/seq/sim_ns/wall_ns stamped on every line).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "telemetry/json.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace torpedo::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, HoldsLastValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.record(1);
  h.record(10);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 37.0);
}

TEST(HistogramTest, PercentileBoundsObservedRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Log2 buckets give ~2x relative error; the estimate must stay within the
  // observed range and be monotone in p.
  const std::uint64_t p50 = h.percentile(50);
  const std::uint64_t p99 = h.percentile(99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p99);
  EXPECT_EQ(h.percentile(100), h.max());
  EXPECT_EQ(h.percentile(0), h.min());
}

TEST(HistogramTest, BucketsAreLog2) {
  Histogram h;
  h.record(0);    // bit_width(0) == 0
  h.record(1);    // bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
}

TEST(HistogramTest, ToJsonCarriesSummary) {
  Histogram h;
  h.record(7);
  const std::string json = h.to_json().to_string();
  auto parsed = parse_json_object(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["count"].integer, 1);
  EXPECT_EQ((*parsed)["sum"].integer, 7);
  EXPECT_EQ((*parsed)["min"].integer, 7);
  EXPECT_EQ((*parsed)["max"].integer, 7);
}

TEST(RegistryTest, InstrumentIdentityIsStable) {
  Registry reg;
  Counter& a = reg.counter("x");
  a.inc(5);
  // Same name -> same instrument, even after other registrations rebalance
  // the map.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  EXPECT_EQ(reg.find_counter("x"), &a);
  EXPECT_EQ(reg.find_counter("never-registered"), nullptr);
}

TEST(RegistryTest, ToJsonAndReset) {
  Registry reg;
  reg.counter("hits").inc(3);
  reg.gauge("load").set(0.5);
  reg.histogram("lat").record(12);

  auto parsed = parse_json_object(reg.to_json(1234));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["sim_ns"].integer, 1234);
  EXPECT_GT((*parsed)["wall_ns"].integer, 0);
  // Sections come back as raw nested objects.
  EXPECT_NE((*parsed)["counters"].text.find("\"hits\":3"), std::string::npos);
  EXPECT_NE((*parsed)["gauges"].text.find("load"), std::string::npos);
  EXPECT_NE((*parsed)["histograms"].text.find("lat"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.find_counter("hits"), nullptr);
  EXPECT_TRUE(reg.counters().empty());
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&global(), &global());
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, DictPreservesInsertionOrder) {
  JsonDict d;
  d.set("z", 1).set("a", 2).set("m", true).set("s", "hi");
  EXPECT_EQ(d.to_string(), "{\"z\":1,\"a\":2,\"m\":true,\"s\":\"hi\"}");
}

TEST(JsonTest, Int64RoundTripIsExact) {
  // Epoch nanoseconds exceed 2^53 and would lose precision as a double.
  const std::int64_t wall = 1754400000123456789;
  JsonDict d;
  d.set("wall_ns", wall).set("neg", std::int64_t{-42});
  auto parsed = parse_json_object(d.to_string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE((*parsed)["wall_ns"].is_integer);
  EXPECT_EQ((*parsed)["wall_ns"].integer, wall);
  EXPECT_EQ((*parsed)["neg"].integer, -42);
}

TEST(JsonTest, ParsesStringsDoublesBoolsAndNested) {
  auto parsed = parse_json_object(
      "{\"s\":\"a\\nb\",\"d\":1.5,\"t\":true,\"f\":false,\"n\":null,"
      "\"o\":{\"inner\":[1,2]}}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["s"].text, "a\nb");
  EXPECT_EQ((*parsed)["d"].number, 1.5);
  EXPECT_FALSE((*parsed)["d"].is_integer);
  EXPECT_TRUE((*parsed)["t"].boolean);
  EXPECT_FALSE((*parsed)["f"].boolean);
  EXPECT_EQ((*parsed)["n"].kind, JsonValue::Kind::kNull);
  EXPECT_EQ((*parsed)["o"].kind, JsonValue::Kind::kRaw);
  EXPECT_EQ((*parsed)["o"].text, "{\"inner\":[1,2]}");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json_object("").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1").has_value());
  EXPECT_FALSE(parse_json_object("[1,2]").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1}trailing").has_value());
}

// Property: every proper prefix of a valid render is rejected (returns
// nullopt), never crashes — the torn-write case selftest's fault pillar
// simulates with truncate_file().
TEST(JsonTest, TruncatedObjectsAreRejectedCleanly) {
  JsonDict inner;
  inner.set("deep", std::int64_t{7}).set("s", "va\"lue\n");
  JsonDict d;
  d.set("a", std::int64_t{1})
      .set("text", "hello \\ \"world\"")
      .set_raw("nested", inner.to_string())
      .set_raw("arr", "[{\"x\":1},{\"x\":2}]");
  const std::string full = d.to_string();
  ASSERT_TRUE(parse_json_object(full).has_value());
  for (std::size_t len = 0; len < full.size(); ++len)
    EXPECT_FALSE(parse_json_object(full.substr(0, len)).has_value())
        << "prefix length " << len;
}

TEST(JsonTest, RejectsBadEscapesAndUnterminatedStrings) {
  EXPECT_FALSE(parse_json_object("{\"a\":\"\\x\"}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":\"\\q41\"}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":\"\\u12G4\"}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":\"\\u12\"}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":\"unterminated}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":\"trailing backslash\\").has_value());
}

TEST(JsonTest, Int64BoundariesStayExact) {
  JsonDict d;
  d.set("max", std::int64_t{9223372036854775807LL})
      .set("min", std::int64_t{-9223372036854775807LL - 1});
  const auto parsed = parse_json_object(d.to_string());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->at("max").is_integer);
  EXPECT_EQ(parsed->at("max").integer, 9223372036854775807LL);
  ASSERT_TRUE(parsed->at("min").is_integer);
  EXPECT_EQ(parsed->at("min").integer, -9223372036854775807LL - 1);
  // One past int64 range: must degrade to double, not crash or wrap.
  const auto over = parse_json_object("{\"v\":9223372036854775808}");
  ASSERT_TRUE(over.has_value());
  EXPECT_FALSE(over->at("v").is_integer);
  EXPECT_DOUBLE_EQ(over->at("v").number, 9223372036854775808.0);
}

// The raw-value scanner is iterative, so pathological nesting depth must
// not overflow the stack (a recursive parser dies around a few 10k deep).
TEST(JsonTest, DeepNestingDoesNotCrash) {
  std::string deep = "{\"v\":";
  for (int i = 0; i < 200000; ++i) deep += "[";
  for (int i = 0; i < 200000; ++i) deep += "]";
  deep += "}";
  const auto parsed = parse_json_object(deep);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("v").kind, JsonValue::Kind::kRaw);
  // Truncated deep nesting (unbalanced brackets) rejects, same as shallow.
  EXPECT_FALSE(parse_json_object(deep.substr(0, deep.size() / 2)).has_value());
}

TEST(TraceSinkTest, WritesOneStampedRecordPerLine) {
  std::ostringstream out;
  TraceSink sink(out);
  ASSERT_TRUE(sink.ok());

  JsonDict fields;
  fields.set("round", 0).set("score", 12.5);
  sink.write("round", 5 * 1000000000LL, fields);
  sink.write("batch", 6 * 1000000000LL, JsonDict{});
  EXPECT_EQ(sink.records(), 2u);

  std::istringstream lines(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(lines, line));
  auto first = parse_json_object(line);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)["event"].text, "round");
  EXPECT_EQ((*first)["seq"].integer, 0);
  EXPECT_EQ((*first)["sim_ns"].integer, 5000000000LL);
  EXPECT_GT((*first)["wall_ns"].integer, 0);
  EXPECT_EQ((*first)["round"].integer, 0);
  EXPECT_EQ((*first)["score"].number, 12.5);

  ASSERT_TRUE(std::getline(lines, line));
  auto second = parse_json_object(line);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)["event"].text, "batch");
  EXPECT_EQ((*second)["seq"].integer, 1);

  EXPECT_FALSE(std::getline(lines, line));  // exactly two lines
}

TEST(TraceSinkTest, FileSinkTruncatesAndAppends) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "torpedo_trace_test.jsonl";
  {
    TraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.write("a", 1, JsonDict{});
    sink.write("b", 2, JsonDict{});
  }
  {
    TraceSink sink(path);  // reopening truncates
    sink.write("c", 3, JsonDict{});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto parsed = parse_json_object(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)["event"].text, "c");
  EXPECT_FALSE(std::getline(in, line));
  std::filesystem::remove(path);
}

TEST(ScopedTimerTest, RecordsOnScopeExit) {
  Histogram h;
  { ScopedTimerUs timer(h); }
  EXPECT_EQ(h.count(), 1u);
}

// --- span tracer -------------------------------------------------------------

// Installs a test-controlled sim clock: set `now`, spans stamp it.
struct FakeClock {
  Nanos now = 0;
  void install(SpanTracer& tracer) {
    tracer.set_sim_clock(
        [](void* ctx) { return static_cast<FakeClock*>(ctx)->now; }, this);
  }
};

TEST(SpanTracerTest, NestingAndParenting) {
  SpanTracer tracer;
  FakeClock clock;
  clock.install(tracer);

  clock.now = 100;
  const auto outer = tracer.begin("outer");
  clock.now = 200;
  const auto inner = tracer.begin("inner");
  EXPECT_EQ(tracer.open_depth(), 2u);
  clock.now = 300;
  tracer.end(inner);
  clock.now = 400;
  tracer.end(outer);
  EXPECT_EQ(tracer.open_depth(), 0u);

  // Completed in end order: inner first, then outer.
  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& in = tracer.spans()[0];
  const Span& out = tracer.spans()[1];
  EXPECT_EQ(in.name, "inner");
  EXPECT_EQ(in.parent, out.id);
  EXPECT_EQ(out.parent, 0u);
  EXPECT_EQ(in.sim_begin_ns, 200);
  EXPECT_EQ(in.sim_end_ns, 300);
  EXPECT_EQ(out.sim_duration(), 300);
  EXPECT_GE(in.wall_end_ns, in.wall_begin_ns);
}

TEST(SpanTracerTest, EmitParentsToOpenSpan) {
  SpanTracer tracer;
  FakeClock clock;
  clock.install(tracer);
  const auto round = tracer.begin("round");
  JsonDict args;
  args.set("container", "exec-0");
  tracer.emit("exec", 10, 20, args);
  tracer.end(round);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const Span& exec = tracer.spans()[0];
  EXPECT_EQ(exec.name, "exec");
  EXPECT_EQ(exec.parent, tracer.spans()[1].id);
  EXPECT_EQ(exec.sim_begin_ns, 10);
  EXPECT_EQ(exec.sim_end_ns, 20);
  EXPECT_NE(exec.args_json.find("exec-0"), std::string::npos);
}

TEST(SpanTracerTest, MissedEndClosesChildrenFirst) {
  SpanTracer tracer;
  const auto a = tracer.begin("a");
  tracer.begin("b");
  tracer.begin("c");
  tracer.end(a);  // b and c leaked; closing a must close them too
  EXPECT_EQ(tracer.open_depth(), 0u);
  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "c");
  EXPECT_EQ(tracer.spans()[1].name, "b");
  EXPECT_EQ(tracer.spans()[2].name, "a");
  // Parent chain survives the forced unwind.
  EXPECT_EQ(tracer.spans()[0].parent, tracer.spans()[1].id);
  EXPECT_EQ(tracer.spans()[1].parent, tracer.spans()[2].id);
}

TEST(SpanTracerTest, UnknownEndIsIgnored) {
  SpanTracer tracer;
  const auto a = tracer.begin("a");
  tracer.end(a);
  tracer.end(a);    // double end
  tracer.end(999);  // never existed
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(SpanTracerTest, ScopedSpanIsNoopWithoutGlobalTracer) {
  set_spans(nullptr);
  { ScopedSpan span("nothing"); }  // must not crash

  SpanTracer tracer;
  set_spans(&tracer);
  { ScopedSpan span("something"); }
  set_spans(nullptr);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "something");
}

// Sim and wall stamps must survive the Chrome-JSON writer exactly: wall
// stamps are epoch nanoseconds (> 2^53), so any double round-trip would
// corrupt them.
TEST(ChromeTraceTest, ExactInt64RoundTrip) {
  SpanTracer tracer;
  FakeClock clock;
  clock.install(tracer);

  clock.now = 1234567890123456789LL;
  const auto id = tracer.begin("big");
  clock.now += 4321;
  tracer.end(id);
  const Span& span = tracer.spans()[0];

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const auto events = parse_json_array_of_objects(out.str());
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 1u);
  const auto& event = (*events)[0];
  const auto args = parse_json_object(event.at("args").text);
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->at("sim_begin_ns").is_integer);
  EXPECT_EQ(args->at("sim_begin_ns").integer, 1234567890123456789LL);
  EXPECT_EQ(args->at("sim_end_ns").integer, 1234567890123461110LL);
  EXPECT_EQ(args->at("wall_begin_ns").integer, span.wall_begin_ns);
  EXPECT_EQ(args->at("wall_end_ns").integer, span.wall_end_ns);
}

// Golden structural check: every event carries the fields Perfetto /
// chrome://tracing require of a complete event.
TEST(ChromeTraceTest, PerfettoRequiredFields) {
  SpanTracer tracer;
  FakeClock clock;
  clock.install(tracer);
  const auto outer = tracer.begin("outer");
  clock.now = 2000;  // 2 us
  const auto inner = tracer.begin("inner");
  clock.now = 5000;
  tracer.end(inner);
  tracer.end(outer);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  // The writer's envelope is part of the contract: a bare JSON array of
  // objects rendered with this exact field prefix.
  EXPECT_EQ(out.str().substr(0, 1), "[");
  EXPECT_NE(out.str().find("\"cat\":\"torpedo\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(out.str().find("\"pid\":1,\"tid\":1"), std::string::npos);

  const auto events = parse_json_array_of_objects(out.str());
  ASSERT_TRUE(events.has_value());
  ASSERT_EQ(events->size(), 2u);
  for (const auto& event : *events) {
    for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid"})
      EXPECT_TRUE(event.count(key)) << "missing " << key;
    EXPECT_EQ(event.at("ph").text, "X");
  }
  // ts/dur are sim microseconds: inner spans [2us, 5us).
  const auto& inner_event = (*events)[0];
  EXPECT_EQ(inner_event.at("ts").integer, 2);
  EXPECT_EQ(inner_event.at("dur").integer, 3);
}

TEST(JsonParse, ArrayOfObjects) {
  const auto parsed =
      parse_json_array_of_objects("[{\"a\":1},{\"a\":2,\"b\":\"x\"}]");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].at("a").integer, 1);
  EXPECT_EQ((*parsed)[1].at("b").text, "x");
  EXPECT_TRUE(parse_json_array_of_objects("[]")->empty());
  EXPECT_FALSE(parse_json_array_of_objects("[1,2]").has_value());
  EXPECT_FALSE(parse_json_array_of_objects("{\"a\":1}").has_value());
  EXPECT_FALSE(parse_json_array_of_objects("[{\"a\":1}").has_value());
}

}  // namespace
}  // namespace torpedo::telemetry
