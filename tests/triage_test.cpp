// Triage engine tests: feature extraction, weighted-Jaccard similarity,
// deterministic clustering, severity ordering, clusters.json round-tripping,
// the live /findings//clusters endpoints, and cross-campaign diffing
// (including the self-diff-is-empty property CI gates on).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/provenance.h"
#include "core/workdir.h"
#include "runtime/runtime.h"
#include "telemetry/json.h"
#include "triage/cluster.h"
#include "triage/diff.h"
#include "triage/features.h"

namespace torpedo {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

triage::FindingFeatures make_features(
    const std::string& hash, std::vector<std::string> heuristics,
    std::vector<std::pair<std::string, int>> syscalls, std::string cause,
    double escape = 2.0) {
  triage::FindingFeatures f;
  f.bundle = 0;
  f.program_hash = hash;
  f.source_round = 1;
  f.heuristics = std::move(heuristics);
  f.syscalls = std::move(syscalls);
  f.signals = {"sched_switch"};
  f.subjects = {"core0"};
  f.cause = std::move(cause);
  f.runtime = "runc";
  f.escape_magnitude = escape;
  f.minimized_calls = 2;
  f.confirm_rounds = 3;
  return f;
}

// --- feature extraction -------------------------------------------------------

TEST(Features, ViolationExcessIsDirectionAgnostic) {
  // Value above threshold and value below threshold both land at the same
  // ratio > 1; meeting the threshold exactly is ratio 1.
  EXPECT_DOUBLE_EQ(triage::violation_excess(2.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(triage::violation_excess(1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(triage::violation_excess(3.0, 3.0), 1.0);
}

TEST(Features, ViolationExcessIsCapped) {
  EXPECT_DOUBLE_EQ(triage::violation_excess(1e6, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(triage::violation_excess(1.0, 1e6), 10.0);
}

TEST(Features, SyscallMultisetStripsResultPrefixAndCounts) {
  const auto ms = triage::syscall_multiset(
      "r0 = open(\"/tmp/a\", 0)\nftruncate(r0, 99)\nopen(\"/tmp/b\", 0)\n");
  ASSERT_EQ(ms.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(ms[0].first, "ftruncate");
  EXPECT_EQ(ms[0].second, 1);
  EXPECT_EQ(ms[1].first, "open");
  EXPECT_EQ(ms[1].second, 2);
}

TEST(Features, MultisetJoinParseRoundTrips) {
  const std::vector<std::pair<std::string, int>> ms = {{"open", 2},
                                                       {"sync", 1}};
  EXPECT_EQ(triage::parse_multiset(triage::join_multiset(ms)), ms);
  const std::vector<std::string> facet = {"a", "b"};
  EXPECT_EQ(triage::parse_facet(triage::join_facet(facet)), facet);
}

// --- similarity ---------------------------------------------------------------

TEST(Similarity, IdenticalFeaturesScoreOne) {
  const auto f = make_features("aaaa", {"h1"}, {{"open", 1}}, "cause");
  EXPECT_DOUBLE_EQ(triage::weighted_jaccard(f, f), 1.0);
}

TEST(Similarity, DisjointFeaturesScoreZero) {
  auto a = make_features("aaaa", {"h1"}, {{"open", 1}}, "cause-a");
  auto b = make_features("bbbb", {"h2"}, {{"sync", 1}}, "cause-b");
  b.signals = {"softirq"};
  b.subjects = {"core1"};
  b.runtime = "runsc";
  EXPECT_DOUBLE_EQ(triage::weighted_jaccard(a, b), 0.0);
}

TEST(Similarity, IsSymmetric) {
  const auto a = make_features("aaaa", {"h1", "h2"}, {{"open", 2}}, "cause");
  const auto b = make_features("bbbb", {"h1"}, {{"open", 1}, {"sync", 1}},
                               "cause");
  EXPECT_DOUBLE_EQ(triage::weighted_jaccard(a, b),
                   triage::weighted_jaccard(b, a));
  EXPECT_GT(triage::weighted_jaccard(a, b), 0.0);
  EXPECT_LT(triage::weighted_jaccard(a, b), 1.0);
}

// --- clustering ---------------------------------------------------------------

TEST(Cluster, ExactHashDuplicatesCollapse) {
  const auto result = triage::ClusterEngine().cluster(
      {make_features("aaaa", {"h1"}, {{"open", 1}}, "c"),
       make_features("aaaa", {"h1"}, {{"open", 1}}, "c")});
  EXPECT_EQ(result.findings, 1);
  EXPECT_EQ(result.duplicates, 1);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].members.size(), 1u);
}

TEST(Cluster, NearDuplicatesGroupAndDistinctFindingsSeparate) {
  auto near = make_features("bbbb", {"h1"}, {{"open", 1}}, "c");
  auto far = make_features("cccc", {"h9"}, {{"socket", 1}}, "other");
  far.signals = {"softirq"};
  far.subjects = {"core7"};
  const auto result = triage::ClusterEngine().cluster(
      {make_features("aaaa", {"h1"}, {{"open", 1}}, "c"), near, far});
  EXPECT_EQ(result.findings, 3);
  ASSERT_EQ(result.clusters.size(), 2u);
  const std::size_t sizes[] = {result.clusters[0].members.size(),
                               result.clusters[1].members.size()};
  EXPECT_EQ(std::max(sizes[0], sizes[1]), 2u);
  EXPECT_EQ(std::min(sizes[0], sizes[1]), 1u);
}

TEST(Cluster, InputOrderDoesNotChangeTheRenderedResult) {
  std::vector<triage::FindingFeatures> findings = {
      make_features("aaaa", {"h1"}, {{"open", 1}}, "c"),
      make_features("bbbb", {"h1"}, {{"open", 1}}, "c"),
      make_features("cccc", {"h9"}, {{"socket", 1}}, "other", 3.0),
      make_features("dddd", {"h2", "h3"}, {{"sync", 2}}, "io"),
  };
  const triage::ClusterEngine engine;
  const std::string golden = triage::clusters_to_json(engine.cluster(findings));
  std::reverse(findings.begin(), findings.end());
  EXPECT_EQ(triage::clusters_to_json(engine.cluster(findings)), golden);
  std::rotate(findings.begin(), findings.begin() + 1, findings.end());
  EXPECT_EQ(triage::clusters_to_json(engine.cluster(findings)), golden);
}

// --- severity -----------------------------------------------------------------

TEST(Severity, ScoreSpansZeroToHundred) {
  EXPECT_DOUBLE_EQ(triage::severity_score(0, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(triage::severity_score(1, 1, 1, 1), 100.0);
}

TEST(Severity, MonotonicInEachComponent) {
  const double base = triage::severity_score(0.5, 0.5, 0.5, 0.5);
  EXPECT_GT(triage::severity_score(0.9, 0.5, 0.5, 0.5), base);
  EXPECT_GT(triage::severity_score(0.5, 0.9, 0.5, 0.5), base);
  EXPECT_GT(triage::severity_score(0.5, 0.5, 0.9, 0.5), base);
  EXPECT_GT(triage::severity_score(0.5, 0.5, 0.5, 0.9), base);
}

TEST(Severity, HigherEscapeRanksFirst) {
  auto tame = make_features("aaaa", {"h1"}, {{"open", 1}}, "c", 1.0);
  auto wild = make_features("bbbb", {"h9"}, {{"socket", 1}}, "other", 4.0);
  wild.signals = {"softirq"};
  wild.subjects = {"core7"};
  const auto result = triage::ClusterEngine().cluster({tame, wild});
  ASSERT_EQ(result.clusters.size(), 2u);
  // Clusters come back severity-descending; the escape-4x finding leads.
  EXPECT_EQ(result.clusters[0].centroid.program_hash, "bbbb");
  EXPECT_GT(result.clusters[0].severity, result.clusters[1].severity);
  EXPECT_EQ(result.clusters[0].id, 0);
  EXPECT_EQ(result.clusters[1].id, 1);
}

TEST(Severity, BroaderSubjectSpreadRanksFirst) {
  auto narrow = make_features("aaaa", {"h1"}, {{"open", 1}}, "c");
  auto broad = make_features("bbbb", {"h9"}, {{"socket", 1}}, "other");
  broad.signals = {"softirq"};
  broad.subjects = {"core1", "core2", "core3", "core4"};
  const auto result = triage::ClusterEngine().cluster({narrow, broad});
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].centroid.program_hash, "bbbb");
}

// --- persistence --------------------------------------------------------------

TEST(Persistence, SaveLoadRoundTripsByteIdentically) {
  const auto result = triage::ClusterEngine().cluster(
      {make_features("aaaa", {"h1"}, {{"open", 1}}, "c"),
       make_features("bbbb", {"h1"}, {{"open", 1}}, "c"),
       make_features("cccc", {"h9"}, {{"socket", 1}}, "other", 3.0)});
  const fs::path dir = fresh_dir("torpedo-triage-roundtrip");
  triage::save_clusters(dir / "clusters.json", result);
  const auto loaded = triage::load_clusters(dir / "clusters.json");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->findings, result.findings);
  EXPECT_EQ(loaded->duplicates, result.duplicates);
  EXPECT_EQ(loaded->runtime, result.runtime);
  EXPECT_EQ(triage::clusters_to_json(*loaded),
            triage::clusters_to_json(result));
}

// --- in-process vs offline extraction -----------------------------------------

core::CampaignConfig small_config() {
  core::CampaignConfig config;
  config.num_executors = 2;
  config.round_duration = 50 * kMillisecond;
  config.batches = 2;
  config.num_seeds = 6;
  config.seed = 0xD0D0;
  config.max_confirmations = 6;
  config.fuzzer.cycle_out_rounds = 3;
  config.kernel.host.num_cores = 8;
  config.kernel.host.num_kworkers = 4;
  return config;
}

TEST(Pipeline, InProcessAndBundleExtractionAgree) {
  const core::CampaignConfig config = small_config();
  core::Campaign campaign(config);
  campaign.load_default_seeds();
  const core::CampaignReport report = campaign.run();
  ASSERT_FALSE(report.findings.empty());

  const triage::TriageResult in_process = triage::cluster_report(
      report, runtime::runtime_name(config.runtime));
  EXPECT_EQ(in_process.findings + in_process.duplicates,
            static_cast<int>(report.provenance.size()));

  // Re-reading the written bundles must reproduce the exact same clusters:
  // `torpedo report`/`torpedo diff` on a workdir see what `torpedo run` saw.
  const fs::path dir = fresh_dir("torpedo-triage-pipeline");
  core::write_violation_bundles(dir, report);
  core::save_campaign_manifest(
      dir / "campaign.json", core::CampaignManifest::from_config(config));
  const auto offline = triage::triage_workdir(dir);
  ASSERT_TRUE(offline.has_value());
  EXPECT_EQ(triage::clusters_to_json(*offline),
            triage::clusters_to_json(in_process));
}

// --- live endpoints -----------------------------------------------------------

using JsonObject = std::map<std::string, telemetry::JsonValue>;

double num_of(const JsonObject& obj, const std::string& key) {
  auto it = obj.find(key);
  if (it == obj.end()) return -1;
  return it->second.is_integer ? static_cast<double>(it->second.integer)
                               : it->second.number;
}

TEST(LiveTriage, ServesEmptyBeforeInstallAndFullAfter) {
  triage::LiveTriage live;
  auto before = live.handle("/findings");
  ASSERT_TRUE(before.has_value());
  auto obj = telemetry::parse_json_object(*before);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ((*obj)["ready"].boolean, false);
  EXPECT_EQ(num_of(*obj, "count"), 0);

  live.install(triage::ClusterEngine().cluster(
      {make_features("aaaa", {"h1"}, {{"open", 1}}, "c"),
       make_features("bbbb", {"h1"}, {{"open", 1}}, "c")}));

  auto findings = live.handle("/findings");
  ASSERT_TRUE(findings.has_value());
  obj = telemetry::parse_json_object(*findings);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ((*obj)["ready"].boolean, true);
  EXPECT_EQ(num_of(*obj, "count"), 2);

  auto clusters = live.handle("/clusters");
  ASSERT_TRUE(clusters.has_value());
  obj = telemetry::parse_json_object(*clusters);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num_of(*obj, "count"), 1);

  auto one = live.handle("/clusters/0");
  ASSERT_TRUE(one.has_value());
  obj = telemetry::parse_json_object(*one);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(num_of(*obj, "size"), 2);

  EXPECT_FALSE(live.handle("/clusters/99").has_value());
  EXPECT_FALSE(live.handle("/clusters/bogus").has_value());
  EXPECT_FALSE(live.handle("/nope").has_value());
  EXPECT_NE(live.to_prometheus().find("torpedo_clusters 1"),
            std::string::npos);
}

// --- diff ---------------------------------------------------------------------

TEST(Diff, SelfDiffIsEmptyAndClean) {
  const auto result = triage::ClusterEngine().cluster(
      {make_features("aaaa", {"h1"}, {{"open", 1}}, "c"),
       make_features("bbbb", {"h9"}, {{"socket", 1}}, "other", 3.0)});
  const fs::path dir = fresh_dir("torpedo-diff-self");
  triage::save_clusters(dir / "clusters.json", result);
  const triage::DiffResult diff = triage::diff_workdirs(dir, dir);
  ASSERT_TRUE(diff.ran) << diff.error;
  EXPECT_EQ(diff.persisting.size(), result.clusters.size());
  EXPECT_TRUE(diff.fixed.empty());
  EXPECT_TRUE(diff.added.empty());
  EXPECT_FALSE(diff.regression);
  for (const triage::MatchedCluster& m : diff.persisting) {
    EXPECT_DOUBLE_EQ(m.similarity, 1.0);
    EXPECT_DOUBLE_EQ(m.severity_a, m.severity_b);
  }
}

TEST(Diff, NewClusterIsARegressionAndFixedIsNot) {
  const auto shared = make_features("aaaa", {"h1"}, {{"open", 1}}, "c");
  auto extra = make_features("bbbb", {"h9"}, {{"socket", 1}}, "other");
  extra.signals = {"softirq"};
  extra.subjects = {"core7"};
  const triage::ClusterEngine engine;
  const fs::path one = fresh_dir("torpedo-diff-one");
  const fs::path two = fresh_dir("torpedo-diff-two");
  triage::save_clusters(one / "clusters.json", engine.cluster({shared}));
  triage::save_clusters(two / "clusters.json",
                        engine.cluster({shared, extra}));

  const triage::DiffResult grew = triage::diff_workdirs(one, two);
  ASSERT_TRUE(grew.ran) << grew.error;
  EXPECT_EQ(grew.persisting.size(), 1u);
  EXPECT_EQ(grew.added.size(), 1u);
  EXPECT_TRUE(grew.regression);
  ASSERT_FALSE(grew.regression_reasons.empty());
  EXPECT_NE(grew.regression_reasons[0].find("new cluster"),
            std::string::npos);

  const triage::DiffResult shrank = triage::diff_workdirs(two, one);
  ASSERT_TRUE(shrank.ran) << shrank.error;
  EXPECT_EQ(shrank.fixed.size(), 1u);
  EXPECT_TRUE(shrank.added.empty());
  EXPECT_FALSE(shrank.regression);
}

TEST(Diff, SeverityJumpOnPersistingClusterIsARegression) {
  const triage::ClusterEngine engine;
  const fs::path mild = fresh_dir("torpedo-diff-mild");
  const fs::path severe = fresh_dir("torpedo-diff-severe");
  triage::save_clusters(
      mild / "clusters.json",
      engine.cluster({make_features("aaaa", {"h1"}, {{"open", 1}}, "c",
                                    1.0)}));
  triage::save_clusters(
      severe / "clusters.json",
      engine.cluster({make_features("aaaa", {"h1"}, {{"open", 1}}, "c",
                                    4.0)}));
  const triage::DiffResult diff = triage::diff_workdirs(mild, severe);
  ASSERT_TRUE(diff.ran) << diff.error;
  ASSERT_EQ(diff.persisting.size(), 1u);
  EXPECT_GT(diff.persisting[0].severity_b, diff.persisting[0].severity_a);
  EXPECT_TRUE(diff.regression);
  ASSERT_FALSE(diff.regression_reasons.empty());
  EXPECT_NE(diff.regression_reasons[0].find("severity rose"),
            std::string::npos);
}

TEST(Diff, MissingWorkdirIsAnErrorNotARegression) {
  const triage::DiffResult diff = triage::diff_workdirs(
      fs::path(::testing::TempDir()) / "torpedo-no-such-a",
      fs::path(::testing::TempDir()) / "torpedo-no-such-b");
  EXPECT_FALSE(diff.ran);
  EXPECT_FALSE(diff.error.empty());
  EXPECT_FALSE(diff.regression);
}

}  // namespace
}  // namespace torpedo
