// Snapshot/restore equivalence suite for the fork-server analogue.
//
// The contract under test: every gated fast path (pre-lowered program
// image, epoch fd-table restore, VFS lookup cache) must be byte-identical
// to the cold-boot path it replaces — same results, same errno, same
// artifacts — with only the wall-clock cost differing. Plus regression
// tests for the Algorithm 1 blocking-time accounting and the lazily
// derived per-round signal union.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/seeds.h"
#include "core/sharded.h"
#include "core/workdir.h"
#include "exec/executor.h"
#include "exec/snapshot.h"
#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/vfs.h"
#include "observer/observer.h"
#include "prog/program.h"
#include "runtime/engine.h"
#include "util/arena.h"

namespace torpedo {
namespace {

namespace fs = std::filesystem;

// --- arena -------------------------------------------------------------------------

TEST(Arena, AlignsAndSeparatesAllocations) {
  util::Arena arena(256);
  char* a = static_cast<char*>(arena.alloc(3, 1));
  double* d = static_cast<double*>(arena.alloc(sizeof(double), alignof(double)));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  // Writes through one allocation never alias the other.
  a[0] = 'x';
  *d = 1.5;
  EXPECT_EQ(a[0], 'x');
}

TEST(Arena, InternCopiesIntoStableStorage) {
  util::Arena arena;
  std::string src = "/containers/c0/data";
  const std::string_view view = arena.intern(src);
  src.assign(src.size(), '#');  // clobber the source
  EXPECT_EQ(view, "/containers/c0/data");
}

TEST(Arena, ResetRecyclesChunksInsteadOfFreeing) {
  util::Arena arena(1 << 10);
  for (int i = 0; i < 100; ++i) (void)arena.alloc(100, 8);
  const std::size_t chunks = arena.chunks();
  EXPECT_GT(chunks, 1u);
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  for (int i = 0; i < 100; ++i) (void)arena.alloc(100, 8);
  // The same allocation pattern refills the recycled chunks; no growth.
  EXPECT_EQ(arena.chunks(), chunks);
}

TEST(Arena, MakeArrayDefaultConstructs) {
  util::Arena arena;
  std::uint32_t* xs = arena.make_array<std::uint32_t>(64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(xs[i], 0u);
}

// --- program image -----------------------------------------------------------------

prog::Program parse_or_die(const std::string& text) {
  auto p = prog::Program::parse(text);
  if (!p.has_value()) {
    ADD_FAILURE() << "unparseable program:\n" << text;
    return prog::Program{};
  }
  return *p;
}

TEST(ProgramImage, MaterializePatchesOnlyResultSlots) {
  const prog::Program program = parse_or_die(
      "r0 = open('/tmp/snap', 0x42, 0x1a4)\n"
      "close(r0)\n"
      "nanosleep(0x3e8, '')\n");
  exec::ProgramImage image;
  image.build(program);
  ASSERT_TRUE(image.built());
  ASSERT_EQ(image.size(), 3u);
  EXPECT_EQ(image.dirty_slots(), 1u);  // close(r0) is the only result ref

  std::vector<std::int64_t> results = {7, 0, 0};
  const kernel::SysReq& close_req = image.materialize(1, results);
  EXPECT_EQ(close_req.val(0), 7u);
  results[0] = 12;
  EXPECT_EQ(image.materialize(1, results).val(0), 12u);

  // Non-result slots are immutable snapshot state across restores.
  const kernel::SysReq& open_req = image.materialize(0, results);
  EXPECT_EQ(open_req.str(0), "/tmp/snap");
  EXPECT_EQ(open_req.val(1), 0x42u);
  EXPECT_EQ(open_req.val(2), 0x1a4u);
}

TEST(ProgramImage, MissingResultRestoresAsMinusOne) {
  // A result ref whose producer never ran (crash/fatal break) reads -1,
  // exactly what cold lowering produces for an unset slot.
  const prog::Program program = parse_or_die(
      "r0 = open('/x', 0x0, 0x0)\n"
      "close(r0)\n");
  exec::ProgramImage image;
  image.build(program);
  const std::vector<std::int64_t> unset = {-1, -1};
  EXPECT_EQ(image.materialize(1, unset).val(0),
            static_cast<std::uint64_t>(std::int64_t{-1}));
}

TEST(ProgramImage, RebuildReusesStorage) {
  exec::ProgramImage image;
  const prog::Program program = parse_or_die(
      "r0 = open('/a', 0x0, 0x0)\n"
      "r1 = dup(r0)\n"
      "close(r1)\n"
      "close(r0)\n");
  image.build(program);
  EXPECT_EQ(image.dirty_slots(), 3u);
  image.clear();
  EXPECT_FALSE(image.built());
  image.build(program);  // re-prime: same image, recycled arena
  EXPECT_TRUE(image.built());
  EXPECT_EQ(image.dirty_slots(), 3u);
  std::vector<std::int64_t> results = {3, 4, 0, 0};
  EXPECT_EQ(image.materialize(1, results).val(0), 3u);
  EXPECT_EQ(image.materialize(2, results).val(0), 4u);
}

// --- epoch fd-table restore --------------------------------------------------------

kernel::FileDesc file_desc() {
  kernel::FileDesc d;
  d.kind = kernel::FdKind::kFile;
  return d;
}

// Runs the same descriptor-table workout against an epoch-restore table and
// a teardown-restore table; every observable (fd numbers, EMFILE, lookups,
// open counts) must match step for step.
TEST(EpochFdTable, IdenticalToTeardownRestore) {
  kernel::Process epoch(1, "epoch", nullptr, 0);
  kernel::Process cold(2, "cold", nullptr, 0);
  epoch.set_epoch_fd_restore(true);
  cold.set_epoch_fd_restore(false);

  for (int round = 0; round < 3; ++round) {
    // Same numbering from a fresh table: lowest free fd >= 3.
    for (int i = 0; i < 8; ++i) {
      const int a = epoch.install_fd(file_desc());
      const int b = cold.install_fd(file_desc());
      ASSERT_EQ(a, b);
      ASSERT_EQ(a, 3 + i);
    }
    // Closing frees the lowest slot for reuse in both modes.
    EXPECT_EQ(epoch.close_fd(5), cold.close_fd(5));
    EXPECT_EQ(epoch.install_fd(file_desc()), 5);
    EXPECT_EQ(cold.install_fd(file_desc()), 5);
    EXPECT_EQ(epoch.close_fd(99), cold.close_fd(99));  // same errno
    EXPECT_EQ(epoch.open_fd_count(), cold.open_fd_count());
    EXPECT_NE(epoch.fd(4), nullptr);
    EXPECT_NE(cold.fd(4), nullptr);

    // The per-iteration restore: everything dies, numbering restarts.
    epoch.close_all_fds();
    cold.close_all_fds();
    EXPECT_EQ(epoch.open_fd_count(), 0u);
    EXPECT_EQ(cold.open_fd_count(), 0u);
    EXPECT_EQ(epoch.fd(4), nullptr);
    EXPECT_EQ(cold.fd(4), nullptr);
  }
}

TEST(EpochFdTable, EmfileLimitHoldsInBothModes) {
  for (const bool use_epoch : {true, false}) {
    kernel::Process proc(1, "p", nullptr, 0);
    proc.set_epoch_fd_restore(use_epoch);
    proc.set_rlimit(kernel::RLIMIT_NOFILE_, 3);  // limit counts open fds
    EXPECT_EQ(proc.install_fd(file_desc()), 3);
    EXPECT_EQ(proc.install_fd(file_desc()), 4);
    EXPECT_EQ(proc.install_fd(file_desc()), 5);
    EXPECT_LT(proc.install_fd(file_desc()), 0) << "rlimit must cap the table";
    proc.close_all_fds();
    EXPECT_EQ(proc.install_fd(file_desc()), 3) << "restore resets the limit";
  }
}

// --- VFS lookup cache --------------------------------------------------------------

// Same structural mutations against a cached and an uncached VFS: every
// resolution must return the same inode-presence and errno at every step
// (a cached result is only valid while the generation stands still).
TEST(VfsLookupCache, MatchesColdResolutionAcrossMutations) {
  kernel::Vfs hot;
  kernel::Vfs cold;
  hot.set_lookup_cache(true);
  cold.set_lookup_cache(false);

  auto expect_same = [&](std::string_view path) {
    const kernel::LookupResult a = hot.lookup(path);
    const kernel::LookupResult b = cold.lookup(path);
    EXPECT_EQ(a.inode != nullptr, b.inode != nullptr) << path;
    EXPECT_EQ(a.error, b.error) << path;
  };

  expect_same("/etc/hostname");
  expect_same("/no/such/file");
  kernel::Inode* out = nullptr;
  EXPECT_EQ(hot.create("/data/log", 0644, &out), 0);
  EXPECT_EQ(cold.create("/data/log", 0644, &out), 0);
  expect_same("/data/log");
  expect_same("/data/log");  // cache-hit path
  EXPECT_EQ(hot.mkdir("/data/sub", 0755), cold.mkdir("/data/sub", 0755));
  expect_same("/data/sub");
  // Structural mutation bumps the generation; stale entries must not
  // survive it.
  EXPECT_EQ(hot.remove("/data/log"), cold.remove("/data/log"));
  expect_same("/data/log");
  EXPECT_EQ(hot.file_count(), cold.file_count());
  const std::uint64_t gen = hot.generation();
  (void)hot.lookup("/etc/hostname");  // pure lookups never dirty the table
  EXPECT_EQ(hot.generation(), gen);
}

// --- Algorithm 1 blocking-time accounting ------------------------------------------

TEST(BlockingCharge, MeasuresFromVirtualPosition) {
  // A block ending at t=30ms charged from a call 10ms into the iteration
  // costs 20ms — not the full 30 (that was the double-count bug).
  EXPECT_EQ(exec::blocking_charge(30 * kMillisecond, -1, 10 * kMillisecond),
            20 * kMillisecond);
  // A deadline already behind the virtual position charges nothing.
  EXPECT_EQ(exec::blocking_charge(30 * kMillisecond, -1, 45 * kMillisecond),
            0);
  // An explicit early-wake hint overrides the deadline arithmetic.
  EXPECT_EQ(exec::blocking_charge(30 * kMillisecond, 2 * kMillisecond,
                                  10 * kMillisecond),
            2 * kMillisecond);
}

struct ExecHarness {
  explicit ExecHarness(runtime::RuntimeKind rt, bool snapshot) {
    kernel::KernelConfig cfg;
    cfg.host.num_cores = 8;  // default service placement needs cores 0..6
    kernel = std::make_unique<kernel::SimKernel>(cfg);
    engine = std::make_unique<runtime::Engine>(*kernel);
    runtime::ContainerSpec spec;
    spec.name = "e0";
    spec.runtime = rt;
    spec.cpus = 1.0;
    spec.cpuset_cpus = "0";
    exec::ExecConfig ecfg;
    ecfg.snapshot_exec = snapshot;
    executor = std::make_unique<exec::Executor>(*engine, spec, ecfg);
    kernel->host().run_for(500 * kMillisecond);  // settle startup helpers
  }

  exec::RunStats run_round(const prog::Program& program, Nanos round) {
    const Nanos stop = kernel->host().now() + round;
    executor->prime(program, stop);
    executor->start();
    kernel->host().run_until(stop + 100 * kMillisecond);
    return executor->take_stats();
  }

  std::unique_ptr<kernel::SimKernel> kernel;
  std::unique_ptr<runtime::Engine> engine;
  std::unique_ptr<exec::Executor> executor;
};

TEST(BlockingCharge, BackToBackSleepsSingleCount) {
  // Two 30ms nanosleeps lowered at the same sim instant share one deadline:
  // the task really sleeps ~30ms per iteration. Double-counting the second
  // block would report ~60ms and halve the measured throughput.
  const prog::Program program = parse_or_die(
      "nanosleep(0x1c9c380, '')\n"
      "nanosleep(0x1c9c380, '')\n");
  ExecHarness h(runtime::RuntimeKind::kRunc, /*snapshot=*/true);
  const exec::RunStats stats = h.run_round(program, kSecond);
  ASSERT_GT(stats.executions, 10u);
  EXPECT_GE(stats.avg_execution_time, 30 * kMillisecond);
  EXPECT_LT(stats.avg_execution_time, 45 * kMillisecond)
      << "second block appears double-counted";
}

// --- run stats ---------------------------------------------------------------------

TEST(RunStats, SignalIsUnionOfCallSignal) {
  ExecHarness h(runtime::RuntimeKind::kRunc, /*snapshot=*/true);
  const exec::RunStats stats =
      h.run_round(*core::named_seed("appendix-a1-prog0"), 300 * kMillisecond);
  ASSERT_FALSE(stats.signal.empty());
  std::set<std::uint64_t> expected;
  for (const feedback::SmallSignalSet& cs : stats.call_signal)
    for (std::uint64_t e : cs.elements()) expected.insert(e);
  EXPECT_EQ(stats.signal.size(), expected.size());
  for (std::uint64_t e : expected) EXPECT_TRUE(stats.signal.contains(e));
}

// --- denylist re-filtering ---------------------------------------------------------

// Denylist entries learned mid-campaign (or adopted from another shard)
// must be applied to programs already sitting in the queue, not only to
// future seeds: a queued program that becomes empty is dropped.
TEST(Fuzzer, AdoptedDenylistRefiltersQueuedPrograms) {
  core::CampaignConfig config;
  config.num_executors = 2;
  config.round_duration = 50 * kMillisecond;
  config.kernel.host.num_cores = 8;
  core::Campaign campaign(config);
  campaign.fuzzer().add_seed(parse_or_die("pause()\n"));
  campaign.fuzzer().add_seed(parse_or_die(
      "pause()\n"
      "nanosleep(0x3e8, '')\n"));
  ASSERT_EQ(campaign.fuzzer().pending(), 2u);

  const std::string deny[] = {"pause"};
  campaign.fuzzer().adopt_denylist(deny);
  // The pure-pause program is now empty and must be dropped; the mixed one
  // survives with its nanosleep call.
  EXPECT_EQ(campaign.fuzzer().pending(), 1u);
}

// --- crash semantics under snapshot exec -------------------------------------------

// The gVisor injected panic (open flag combination) must crash the round
// identically in both execution modes: same iteration count, same message.
TEST(SnapshotExec, CrashRoundIsModeIdentical) {
  const prog::Program crasher = *core::named_seed("gvisor-open-crash");
  exec::RunStats on, off;
  {
    ExecHarness h(runtime::RuntimeKind::kGvisor, /*snapshot=*/true);
    on = h.run_round(crasher, kSecond);
  }
  {
    ExecHarness h(runtime::RuntimeKind::kGvisor, /*snapshot=*/false);
    off = h.run_round(crasher, kSecond);
  }
  EXPECT_TRUE(on.crashed);
  EXPECT_TRUE(off.crashed);
  EXPECT_EQ(on.executions, off.executions);
  EXPECT_EQ(on.crash_message, off.crash_message);
  EXPECT_FALSE(on.crash_message.empty());
}

// --- campaign-level byte identity --------------------------------------------------

core::CampaignConfig identity_config(bool snapshot) {
  core::CampaignConfig config;
  config.num_executors = 2;
  config.round_duration = 50 * kMillisecond;
  config.batches = 2;
  config.num_seeds = 6;
  config.seed = 0x5A5A;
  config.fuzzer.cycle_out_rounds = 3;
  config.kernel.host.num_cores = 8;
  config.kernel.host.num_kworkers = 4;
  config.snapshot_exec = snapshot;
  return config;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void run_workdir(const fs::path& dir, bool snapshot, int shards) {
  const core::CampaignConfig config = identity_config(snapshot);
  core::CampaignReport report;
  if (shards > 1) {
    core::ShardedConfig sharded_config;
    sharded_config.base = config;
    sharded_config.shards = shards;
    core::ShardedCampaign sharded(sharded_config);
    report = sharded.run();
    core::save_corpus(dir / "corpus.txt", sharded.merged_corpus());
  } else {
    core::Campaign campaign(config);
    campaign.load_default_seeds();
    report = campaign.run();
    core::save_corpus(dir / "corpus.txt", campaign.corpus());
  }
  core::save_report(dir / "report.txt", report);
  core::write_violation_bundles(dir, report);
}

void expect_identical_trees(const fs::path& a, const fs::path& b) {
  std::vector<std::string> files_a, files_b;
  for (const auto& e : fs::recursive_directory_iterator(a))
    if (e.is_regular_file())
      files_a.push_back(fs::relative(e.path(), a).string());
  for (const auto& e : fs::recursive_directory_iterator(b))
    if (e.is_regular_file())
      files_b.push_back(fs::relative(e.path(), b).string());
  std::sort(files_a.begin(), files_a.end());
  std::sort(files_b.begin(), files_b.end());
  ASSERT_EQ(files_a, files_b);
  for (const std::string& rel : files_a)
    EXPECT_EQ(slurp(a / rel), slurp(b / rel)) << rel;
}

// The headline invariant: a campaign with --snapshot-exec produces the same
// bytes in every artifact as the cold-boot campaign it accelerates.
TEST(SnapshotExec, CampaignArtifactsMatchColdBoot) {
  const fs::path on = fresh_dir("torpedo-snap-on");
  const fs::path off = fresh_dir("torpedo-snap-off");
  run_workdir(on, true, 1);
  run_workdir(off, false, 1);
  EXPECT_FALSE(slurp(on / "report.txt").empty());
  expect_identical_trees(on, off);
}

TEST(SnapshotExec, ShardedCampaignArtifactsMatchColdBoot) {
  const fs::path on = fresh_dir("torpedo-snap-sh-on");
  const fs::path off = fresh_dir("torpedo-snap-sh-off");
  run_workdir(on, true, 2);
  run_workdir(off, false, 2);
  expect_identical_trees(on, off);
}

}  // namespace
}  // namespace torpedo
