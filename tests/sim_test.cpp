// Unit & property tests for the discrete-event host: scheduling, accounting
// conservation, cgroup throttling, kworkers, softirq, the block device, and
// the noise model.
#include <gtest/gtest.h>

#include "sim/block_device.h"
#include "sim/host.h"
#include "sim/noise.h"
#include "util/check.h"

namespace torpedo::sim {
namespace {

HostConfig small_host(int cores = 2) {
  HostConfig cfg;
  cfg.num_cores = cores;
  cfg.num_kworkers = 2;
  return cfg;
}

// Sum of all CpuCategory counters on a core must equal wall time: every
// nanosecond is accounted exactly once.
void expect_conservation(const Host& host) {
  for (int c = 0; c < host.num_cores(); ++c) {
    EXPECT_EQ(host.core_times(c).total(), host.now())
        << "core " << c << " leaks time";
  }
}

TEST(CoreTimes, Arithmetic) {
  CoreTimes a;
  a[CpuCategory::kUser] = 10;
  a[CpuCategory::kIdle] = 5;
  a[CpuCategory::kIoWait] = 3;
  EXPECT_EQ(a.total(), 18);
  EXPECT_EQ(a.busy(), 10);
  CoreTimes b = a;
  b += a;
  EXPECT_EQ(b.total(), 36);
  EXPECT_EQ((b - a).total(), 18);
}

TEST(Host, IdleHostAccountsIdle) {
  Host host(small_host());
  host.run_for(kSecond);
  EXPECT_EQ(host.now(), kSecond);
  for (int c = 0; c < 2; ++c)
    EXPECT_EQ(host.core_times(c)[CpuCategory::kIdle], kSecond);
  expect_conservation(host);
}

TEST(Host, SimpleTaskAccountsUserAndSystem) {
  Host host(small_host());
  Task& t = host.spawn({.name = "t", .kind = TaskKind::kUser});
  t.push(Segment::user(30 * kMillisecond));
  t.push(Segment::system(20 * kMillisecond));
  host.run_for(100 * kMillisecond);
  EXPECT_EQ(t.utime(), 30 * kMillisecond);
  EXPECT_EQ(t.stime(), 20 * kMillisecond);
  const CoreTimes agg = host.aggregate_times();
  EXPECT_EQ(agg[CpuCategory::kUser], 30 * kMillisecond);
  EXPECT_EQ(agg[CpuCategory::kSystem], 20 * kMillisecond);
  expect_conservation(host);
  // No supplier: the task exits when its queue drains.
  EXPECT_FALSE(t.alive());
  EXPECT_GE(t.end_time(), 50 * kMillisecond);
}

TEST(Host, SegmentCompletionCallbackFires) {
  Host host(small_host());
  bool fired = false;
  Task& t = host.spawn({.name = "t"});
  t.push(std::move(Segment::user(kMillisecond)
                       .then([](Host&, std::uint64_t flag) {
                         *reinterpret_cast<bool*>(flag) = true;
                       }, reinterpret_cast<std::uint64_t>(&fired))));
  host.run_for(10 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST(Host, TwoTasksShareCoreFairly) {
  HostConfig cfg = small_host(1);
  Host host(cfg);
  Task& a = host.spawn({.name = "a"});
  Task& b = host.spawn({.name = "b"});
  a.push(Segment::user(10 * kSecond));
  b.push(Segment::user(10 * kSecond));
  host.run_for(kSecond);
  const double ratio = static_cast<double>(a.cpu_time()) /
                       static_cast<double>(b.cpu_time());
  EXPECT_NEAR(ratio, 1.0, 0.05);
  expect_conservation(host);
}

TEST(Host, SharesWeightScheduling) {
  Host host(small_host(1));
  auto& cg = host.cgroups();
  cgroup::Cgroup& heavy = cg.create(cg.root(), "heavy");
  heavy.cpu().shares = 2048;
  cgroup::Cgroup& light = cg.create(cg.root(), "light");
  light.cpu().shares = 1024;
  Task& a = host.spawn({.name = "a", .group = &heavy});
  Task& b = host.spawn({.name = "b", .group = &light});
  a.push(Segment::user(10 * kSecond));
  b.push(Segment::user(10 * kSecond));
  host.run_for(kSecond);
  const double ratio = static_cast<double>(a.cpu_time()) /
                       static_cast<double>(b.cpu_time());
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(Host, CpusetAffinityRespected) {
  Host host(small_host(4));
  Task& t = host.spawn({.name = "pinned",
                        .affinity = cgroup::CpuSet::single(2)});
  t.push(Segment::user(kSecond));
  host.run_for(500 * kMillisecond);
  EXPECT_EQ(t.core(), 2);
  EXPECT_GT(host.core_times(2)[CpuCategory::kUser], 0);
  EXPECT_EQ(host.core_times(0)[CpuCategory::kUser], 0);
}

TEST(Host, EmptyAffinityThrows) {
  Host host(small_host(2));
  // Affinity on cores the host doesn't have.
  EXPECT_THROW(host.spawn({.name = "bad",
                           .affinity = cgroup::CpuSet::single(63)}),
               CheckFailure);
}

TEST(Host, CgroupQuotaThrottles) {
  Host host(small_host(1));
  auto& cg = host.cgroups();
  cgroup::Cgroup& capped = cg.create(cg.root(), "capped");
  capped.cpu().quota = 25 * kMillisecond;  // 25% of one core
  Task& t = host.spawn({.name = "t", .group = &capped});
  t.push(Segment::user(10 * kSecond));
  host.run_for(2 * kSecond);
  const double used = static_cast<double>(t.cpu_time()) /
                      static_cast<double>(2 * kSecond);
  EXPECT_NEAR(used, 0.25, 0.02);
  EXPECT_GT(capped.cpu().nr_throttled, 0u);
  // Throttled time shows as idle, not charged anywhere.
  EXPECT_NEAR(static_cast<double>(
                  host.core_times(0)[CpuCategory::kIdle]),
              1.5 * kSecond, 0.1 * kSecond);
  expect_conservation(host);
}

TEST(Host, BlockUntilWakesOnTime) {
  Host host(small_host());
  Task& t = host.spawn({.name = "sleeper"});
  t.push(Segment::block_until(50 * kMillisecond));
  t.push(Segment::user(10 * kMillisecond));
  host.run_for(40 * kMillisecond);
  EXPECT_EQ(t.cpu_time(), 0);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  host.run_for(30 * kMillisecond);
  EXPECT_GT(t.cpu_time(), 0);
}

TEST(Host, BlockWakeNeedsExplicitWake) {
  Host host(small_host());
  Task& t = host.spawn({.name = "waiter"});
  t.push(Segment::block_wake());
  t.push(Segment::user(kMillisecond));
  host.run_for(100 * kMillisecond);
  EXPECT_EQ(t.state(), TaskState::kBlocked);
  host.wake(t);
  host.run_for(10 * kMillisecond);
  EXPECT_EQ(t.utime(), kMillisecond);
}

TEST(Host, EarlyWakeOfTimedBlock) {
  Host host(small_host());
  Task& t = host.spawn({.name = "t"});
  t.push(Segment::block_until(10 * kSecond));
  t.push(Segment::user(kMillisecond));
  host.run_for(5 * kMillisecond);
  host.wake(t);  // signal-style early wake
  host.run_for(5 * kMillisecond);
  EXPECT_EQ(t.utime(), kMillisecond);
}

TEST(Host, IoWaitAccounting) {
  Host host(small_host(1));
  Task& t = host.spawn({.name = "io"});
  t.push(Segment::block_until(100 * kMillisecond, /*io_wait=*/true));
  host.run_for(100 * kMillisecond);
  EXPECT_EQ(host.core_times(0)[CpuCategory::kIoWait], 100 * kMillisecond);
  EXPECT_EQ(host.core_times(0)[CpuCategory::kIdle], 0);
}

TEST(Host, KworkerExecutesDeferredWorkInRootCgroup) {
  Host host(small_host());
  auto& cg = host.cgroups();
  const Nanos before = cg.root().cpu().usage;
  bool completed = false;
  WorkItem item;
  item.name = "flush";
  item.system_time = 5 * kMillisecond;
  item.on_complete = [&] { completed = true; };
  host.schedule_work(std::move(item));
  host.run_for(50 * kMillisecond);
  EXPECT_TRUE(completed);
  EXPECT_GE(cg.root().cpu().usage - before, 5 * kMillisecond);
  // The work shows as system time on some core.
  EXPECT_GE(host.aggregate_times()[CpuCategory::kSystem], 5 * kMillisecond);
}

TEST(Host, KworkerWritebackOccupiesDisk) {
  Host host(small_host());
  WorkItem item;
  item.name = "writeback";
  item.system_time = kMillisecond;
  item.io_write_bytes = 10 << 20;
  host.schedule_work(std::move(item));
  host.run_for(10 * kMillisecond);
  EXPECT_GT(host.disk().total_bytes(), 0u);
}

TEST(Host, SoftirqChargedToCoreAndRoot) {
  Host host(small_host());
  const Nanos before = host.cgroups().root().cpu().usage;
  host.raise_softirq(1, 7 * kMillisecond);
  host.run_for(20 * kMillisecond);
  EXPECT_EQ(host.core_times(1)[CpuCategory::kSoftirq], 7 * kMillisecond);
  EXPECT_EQ(host.core_times(0)[CpuCategory::kSoftirq], 0);
  EXPECT_GE(host.cgroups().root().cpu().usage - before, 7 * kMillisecond);
  expect_conservation(host);
}

TEST(Host, SoftirqPreemptsRunningTask) {
  Host host(small_host(1));
  Task& t = host.spawn({.name = "victim"});
  t.push(Segment::user(kSecond));
  host.run_for(10 * kMillisecond);
  host.raise_softirq(0, 30 * kMillisecond);
  host.run_for(50 * kMillisecond);
  // The softirq time came out of the victim's runtime.
  EXPECT_EQ(host.core_times(0)[CpuCategory::kSoftirq], 30 * kMillisecond);
  EXPECT_EQ(t.cpu_time(), 30 * kMillisecond);
}

TEST(Host, IrqCounted) {
  Host host(small_host());
  host.raise_irq(0, kMillisecond);
  host.run_for(10 * kMillisecond);
  EXPECT_EQ(host.core_times(0)[CpuCategory::kIrq], kMillisecond);
}

TEST(Host, SupplierDrivesTask) {
  Host host(small_host());
  int supplies = 0;
  host.spawn({.name = "gen",
              .supplier = [&](Host&, Task& task) {
                if (++supplies > 3) return false;  // exit
                task.push(Segment::user(kMillisecond));
                return true;
              }});
  host.run_for(100 * kMillisecond);
  EXPECT_EQ(supplies, 4);
}

TEST(Host, SupplierMustMakeProgress) {
  Host host(small_host());
  host.spawn({.name = "bad", .supplier = [](Host&, Task&) { return true; }});
  EXPECT_THROW(host.run_for(10 * kMillisecond), CheckFailure);
}

TEST(Host, SpawnFromCallback) {
  Host host(small_host());
  Task& t = host.spawn({.name = "parent"});
  t.push(std::move(Segment::user(kMillisecond).then([](Host& h, std::uint64_t) {
    Task& child = h.spawn({.name = "child"});
    child.push(Segment::user(2 * kMillisecond));
  })));
  host.run_for(50 * kMillisecond);
  EXPECT_GE(host.aggregate_times()[CpuCategory::kUser], 3 * kMillisecond);
}

TEST(Host, KillRemovesTask) {
  Host host(small_host());
  Task& t = host.spawn({.name = "t"});
  t.push(Segment::user(kSecond));
  host.run_for(10 * kMillisecond);
  host.kill(t);
  EXPECT_FALSE(t.alive());
  const Nanos at_kill = t.cpu_time();
  host.run_for(10 * kMillisecond);
  EXPECT_EQ(t.cpu_time(), at_kill);
}

TEST(Host, FindTaskAndReap) {
  Host host(small_host());
  Task& t = host.spawn({.name = "t"});
  const TaskId id = t.id();
  t.push(Segment::user(kMillisecond));
  host.run_for(10 * kMillisecond);
  EXPECT_FALSE(t.alive());
  EXPECT_EQ(host.find_task(id), &t);
  host.reap_dead_tasks_before(host.now());
  EXPECT_EQ(host.find_task(id), nullptr);
}

TEST(Host, HelpersSpreadAcrossCores) {
  Host host(small_host(8));
  for (int i = 0; i < 8; ++i) {
    Task& h = host.spawn({.name = "helper", .kind = TaskKind::kHelper});
    h.push(Segment::user(kMillisecond));
  }
  std::set<int> cores;
  for (const TaskSample& s : host.sample_tasks())
    if (s.name == "helper") cores.insert(host.find_task(s.id)->core());
  EXPECT_GE(cores.size(), 4u);
}

TEST(Host, SampleTasksSnapshot) {
  Host host(small_host());
  Task& t = host.spawn({.name = "visible", .kind = TaskKind::kDaemon});
  t.push(Segment::user(kMillisecond));
  auto samples = host.sample_tasks();
  bool found = false;
  for (const TaskSample& s : samples)
    if (s.name == "visible") {
      found = true;
      EXPECT_TRUE(s.alive);
      EXPECT_EQ(s.cgroup_path, "/");
    }
  EXPECT_TRUE(found);
}

// Property: conservation holds across randomized task mixes.
class ConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConservationTest, TimeIsConserved) {
  HostConfig cfg;
  cfg.num_cores = 4;
  cfg.seed = GetParam();
  Host host(cfg);
  Rng rng(GetParam());
  for (int i = 0; i < 10; ++i) {
    Task& t = host.spawn({.name = "t" + std::to_string(i)});
    for (int s = 0; s < 5; ++s) {
      switch (rng.below(4)) {
        case 0: t.push(Segment::user(rng.range(1, 20) * kMillisecond)); break;
        case 1: t.push(Segment::system(rng.range(1, 20) * kMillisecond)); break;
        case 2:
          t.push(Segment::block_until(rng.range(1, 300) * kMillisecond,
                                      rng.chance(1, 2)));
          break;
        default:
          host.raise_softirq(static_cast<int>(rng.below(4)),
                             rng.range(1, 5) * kMillisecond);
          break;
      }
    }
  }
  host.run_for(rng.range(1, 3) * kSecond);
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(host.core_times(c).total(), host.now()) << "core " << c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- BlockDevice -----------------------------------------------------------------

TEST(BlockDevice, TransferTime) {
  BlockDevice dev(100 << 20);  // 100 MB/s
  EXPECT_EQ(dev.transfer_time(100 << 20), kSecond);
  EXPECT_EQ(dev.transfer_time(0), 0);
}

TEST(BlockDevice, SubmitsSerialize) {
  BlockDevice dev(100 << 20);
  const Nanos first = dev.submit(0, 50 << 20);   // 0.5s
  const Nanos second = dev.submit(0, 50 << 20);  // queued behind
  EXPECT_EQ(first, kSecond / 2);
  EXPECT_EQ(second, kSecond);
  // A submit after the device went idle starts fresh.
  const Nanos third = dev.submit(2 * kSecond, 50 << 20);
  EXPECT_EQ(third, 2 * kSecond + kSecond / 2);
  EXPECT_EQ(dev.total_ios(), 3u);
}

TEST(BlockDevice, Occupy) {
  BlockDevice dev;
  EXPECT_EQ(dev.occupy(10, 100), 110);
  EXPECT_EQ(dev.occupy(10, 100), 210);  // serialized
  EXPECT_TRUE(dev.busy_at(150));
  EXPECT_FALSE(dev.busy_at(210));
}

// --- noise ----------------------------------------------------------------------

class NoiseLevelTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseLevelTest, MeanUtilizationWithinBand) {
  HostConfig cfg;
  cfg.num_cores = 4;
  Host host(cfg);
  NoiseConfig noise;
  noise.mean_utilization = GetParam();
  noise.spike_chance = 0;  // isolate the mean
  install_noise(host, noise);
  host.run_for(10 * kSecond);
  for (int c = 0; c < 4; ++c) {
    const double busy = static_cast<double>(host.core_times(c).busy()) /
                        static_cast<double>(host.now());
    EXPECT_NEAR(busy, GetParam(), GetParam() * 0.35 + 0.005) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, NoiseLevelTest,
                         ::testing::Values(0.02, 0.045, 0.10, 0.20));

TEST(Noise, Deterministic) {
  auto run = [] {
    Host host(small_host(2));
    install_noise(host, {});
    host.run_for(2 * kSecond);
    return host.aggregate_times().busy();
  };
  EXPECT_EQ(run(), run());
}

TEST(Noise, ZeroUtilizationStaysIdle) {
  Host host(small_host(2));
  NoiseConfig cfg;
  cfg.mean_utilization = 0;
  install_noise(host, cfg);
  host.run_for(kSecond);
  EXPECT_EQ(host.aggregate_times().busy(), 0);
}

}  // namespace
}  // namespace torpedo::sim
