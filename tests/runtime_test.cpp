// Unit tests for the container runtimes (runC/crun native, gVisor sandboxed,
// Kata virtualized) and the Docker-like Engine.
#include <gtest/gtest.h>

#include "kernel/errno.h"
#include "kernel/syscalls.h"
#include "runtime/engine.h"
#include "runtime/gvisor.h"
#include "runtime/kata.h"
#include "runtime/native.h"
#include "util/check.h"

namespace torpedo::runtime {
namespace {

using kernel::SysArg;
using kernel::SysReq;
using kernel::Sysno;

SysArg num(std::uint64_t v) { return SysArg::num(v); }
SysArg text(std::string s) { return SysArg::text(std::move(s)); }

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    kernel::KernelConfig cfg;
    cfg.host.num_cores = 8;
    kernel_ = std::make_unique<kernel::SimKernel>(cfg);
    engine_ = std::make_unique<Engine>(*kernel_);
  }

  // A container whose entrypoint just idles.
  Container& idle_container(const ContainerSpec& spec) {
    return engine_->run(spec, [](sim::Host&, sim::Task& t) {
      t.push(sim::Segment::block_wake());
      return true;
    });
  }

  ExecOutcome run_call(Container& ctr, const SysReq& req,
                       bool collider = false) {
    ExecOutcome out;
    ctr.runtime().execute(*ctr.process(), req,
                          ExecContext{.collider = collider}, out);
    return out;
  }

  std::unique_ptr<kernel::SimKernel> kernel_;
  std::unique_ptr<Engine> engine_;
};

// --- name mapping ----------------------------------------------------------------

struct NameCase {
  const char* name;
  RuntimeKind kind;
};

class RuntimeNameTest : public ::testing::TestWithParam<NameCase> {};

TEST_P(RuntimeNameTest, RoundTrips) {
  EXPECT_EQ(runtime_from_name(GetParam().name), GetParam().kind);
}

INSTANTIATE_TEST_SUITE_P(Names, RuntimeNameTest,
                         ::testing::Values(NameCase{"runc", RuntimeKind::kRunc},
                                           NameCase{"crun", RuntimeKind::kCrun},
                                           NameCase{"runsc",
                                                    RuntimeKind::kGvisor},
                                           NameCase{"gvisor",
                                                    RuntimeKind::kGvisor},
                                           NameCase{"kata",
                                                    RuntimeKind::kKata}));

TEST(RuntimeName, UnknownIsNullopt) {
  EXPECT_FALSE(runtime_from_name("docker").has_value());
}

// --- Engine ----------------------------------------------------------------------

TEST_F(RuntimeTest, RunTranslatesRestrictions) {
  ContainerSpec spec;
  spec.name = "web";
  spec.cpus = 1.5;
  spec.cpuset_cpus = "0-2";
  spec.memory_bytes = 64 << 20;
  Container& ctr = idle_container(spec);
  EXPECT_EQ(ctr.state(), ContainerState::kRunning);
  // --cpus 1.5 => quota of 1.5 periods.
  EXPECT_EQ(ctr.group().cpu().quota,
            static_cast<Nanos>(1.5 * static_cast<double>(
                                         ctr.group().cpu().period)));
  EXPECT_EQ(ctr.group().effective_cpuset().count(), 3);
  EXPECT_EQ(ctr.group().memory().limit_bytes, 64 << 20);
  EXPECT_NE(ctr.process(), nullptr);
  EXPECT_EQ(engine_->live_containers(), 1u);
}

TEST_F(RuntimeTest, UnrestrictedSpecLeavesDefaults) {
  Container& ctr = idle_container({});
  EXPECT_EQ(ctr.group().cpu().quota, cgroup::CpuController::kNoQuota);
  EXPECT_EQ(ctr.group().effective_cpuset().count(), 8);
}

TEST_F(RuntimeTest, InvalidCpusetThrows) {
  ContainerSpec spec;
  spec.cpuset_cpus = "9-5";
  EXPECT_THROW(idle_container(spec), CheckFailure);
}

TEST_F(RuntimeTest, StartupCostLandsInContainerCgroup) {
  Container& ctr = idle_container({});
  kernel_->host().run_for(200 * kMillisecond);
  // The runc:create helper burned its startup cost inside the container
  // cgroup.
  EXPECT_GT(ctr.group().cpu().usage, 10 * kMillisecond);
}

TEST_F(RuntimeTest, StopAndRemove) {
  Container& ctr = idle_container({});
  engine_->stop(ctr);
  EXPECT_EQ(ctr.state(), ContainerState::kStopped);
  EXPECT_EQ(ctr.process(), nullptr);
  EXPECT_EQ(engine_->live_containers(), 0u);
  engine_->remove(ctr);
  EXPECT_EQ(ctr.state(), ContainerState::kRemoved);
}

TEST_F(RuntimeTest, CrashAndRestart) {
  Container& ctr = idle_container({});
  engine_->mark_crashed(ctr, "sentry panic: test");
  EXPECT_EQ(ctr.state(), ContainerState::kCrashed);
  EXPECT_EQ(ctr.crash_message(), "sentry panic: test");
  EXPECT_EQ(engine_->crashes(), 1u);
  engine_->restart(ctr, [](sim::Host&, sim::Task& t) {
    t.push(sim::Segment::block_wake());
    return true;
  });
  EXPECT_EQ(ctr.state(), ContainerState::kRunning);
  EXPECT_EQ(ctr.restarts(), 1);
  EXPECT_NE(ctr.process(), nullptr);
}

TEST_F(RuntimeTest, StreamOutputRaisesLdiscSoftirq) {
  Container& ctr = idle_container({});
  engine_->stream_output(ctr, 1 << 20);
  kernel_->host().run_for(kSecond);
  EXPECT_GT(kernel_->host().core_times(
                engine_->config().ldisc_core)[sim::CpuCategory::kSoftirq],
            0);
}

TEST_F(RuntimeTest, RuntimeInstancesAreShared) {
  EXPECT_EQ(&engine_->runtime(RuntimeKind::kGvisor),
            &engine_->runtime(RuntimeKind::kGvisor));
  EXPECT_NE(&engine_->runtime(RuntimeKind::kRunc),
            &engine_->runtime(RuntimeKind::kGvisor));
}

// --- native runtimes ---------------------------------------------------------------

TEST_F(RuntimeTest, NativePassesThroughToHostKernel) {
  Container& ctr = idle_container({});
  const ExecOutcome out =
      run_call(ctr, {Sysno::kSocket, {num(4), num(3), num(9)}});
  EXPECT_EQ(out.res.err, kernel::EAFNOSUPPORT_);
  EXPECT_EQ(kernel_->modprobe_execs(), 1u);  // host effect reachable
  EXPECT_FALSE(out.runtime_crashed);
}

TEST_F(RuntimeTest, StartupCostsOrdered) {
  Runtime& runc = engine_->runtime(RuntimeKind::kRunc);
  Runtime& crun = engine_->runtime(RuntimeKind::kCrun);
  Runtime& gvisor = engine_->runtime(RuntimeKind::kGvisor);
  Runtime& kata = engine_->runtime(RuntimeKind::kKata);
  EXPECT_LT(crun.startup_cost(), runc.startup_cost());
  EXPECT_LT(runc.startup_cost(), gvisor.startup_cost());
  EXPECT_LT(gvisor.startup_cost(), kata.startup_cost());
}

// --- gVisor ---------------------------------------------------------------------

class GvisorTest : public RuntimeTest {
 protected:
  GvisorTest() {
    ContainerSpec spec;
    spec.runtime = RuntimeKind::kGvisor;
    ctr_ = &idle_container(spec);
  }
  Container* ctr_ = nullptr;
};

TEST_F(GvisorTest, PrepareProcessDisablesHostEffects) {
  EXPECT_FALSE(ctr_->process()->host_coredumps);
  EXPECT_FALSE(ctr_->process()->modprobe_on_missing);
  EXPECT_FALSE(ctr_->process()->host_audit);
}

struct CompatCase {
  int nr;
  bool supported;
};

class GvisorCompatTest : public GvisorTest,
                         public ::testing::WithParamInterface<CompatCase> {};

TEST_P(GvisorCompatTest, CompatTable) {
  auto& gvisor = static_cast<GvisorRuntime&>(ctr_->runtime());
  EXPECT_EQ(gvisor.supports(GetParam().nr), GetParam().supported);
  if (!GetParam().supported) {
    const ExecOutcome out = run_call(*ctr_, {GetParam().nr, {}});
    EXPECT_EQ(out.res.err, kernel::ENOSYS_);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Surface, GvisorCompatTest,
    ::testing::Values(CompatCase{kernel::Sysno::kOpen, true},
                      CompatCase{kernel::Sysno::kRead, true},
                      CompatCase{kernel::Sysno::kSocket, true},
                      CompatCase{kernel::Sysno::kSync, true},
                      // The paper leans on these gaps: kcov ioctl, rseq, ...
                      CompatCase{kernel::Sysno::kIoctl, false},
                      CompatCase{kernel::Sysno::kRseq, false},
                      CompatCase{kernel::Sysno::kKcmp, false},
                      CompatCase{kernel::Sysno::kSetxattr, false},
                      CompatCase{kernel::Sysno::kInotifyInit, false},
                      CompatCase{kernel::Sysno::kMqOpen, false}));

TEST_F(GvisorTest, OpenPanicFlagPatternCrashes) {
  // §A.2.2: open('/lib/.../libc.so.6', 0x680002, 0x20) kills the container.
  const ExecOutcome out =
      run_call(*ctr_, {Sysno::kOpen, {text("/lib/x86_64-linux-gnu/libc.so.6"),
                                      num(0x680002), num(0x20)}});
  EXPECT_TRUE(out.runtime_crashed);
  EXPECT_NE(out.crash_message.find("0x680002"), std::string::npos);
}

class GvisorOpenFlagTest
    : public GvisorTest,
      public ::testing::WithParamInterface<std::pair<std::uint64_t, bool>> {};

TEST_P(GvisorOpenFlagTest, OnlyThePatternCrashes) {
  const auto [flags, crashes] = GetParam();
  const ExecOutcome out =
      run_call(*ctr_, {Sysno::kOpen,
                       {text("/etc/passwd"), num(flags), num(0)}});
  EXPECT_EQ(out.runtime_crashed, crashes) << std::hex << flags;
}

INSTANTIATE_TEST_SUITE_P(
    Flags, GvisorOpenFlagTest,
    ::testing::Values(std::pair<std::uint64_t, bool>{0x0, false},
                      std::pair<std::uint64_t, bool>{0x2, false},
                      std::pair<std::uint64_t, bool>{0x200000, false},
                      std::pair<std::uint64_t, bool>{0x400000, false},
                      std::pair<std::uint64_t, bool>{0x600000, true},
                      std::pair<std::uint64_t, bool>{0x680002, true},
                      std::pair<std::uint64_t, bool>{0x600001, true}));

TEST_F(GvisorTest, ColliderOpenRaceCrashesEventually) {
  int crashes = 0;
  for (int i = 0; i < 500; ++i) {
    const ExecOutcome out = run_call(
        *ctr_, {Sysno::kOpen, {text("/etc/passwd"), num(0), num(0)}},
        /*collider=*/true);
    if (out.runtime_crashed) ++crashes;
  }
  EXPECT_GT(crashes, 0);
  EXPECT_LT(crashes, 100);  // it's a race, not a certainty
}

TEST_F(GvisorTest, NoColliderNoRace) {
  for (int i = 0; i < 500; ++i) {
    const ExecOutcome out = run_call(
        *ctr_, {Sysno::kOpen, {text("/etc/passwd"), num(0), num(0)}});
    ASSERT_FALSE(out.runtime_crashed);
  }
}

TEST_F(GvisorTest, SyncHandledInSentry) {
  kernel_->vfs().dirty(8 << 20);
  const ExecOutcome out = run_call(*ctr_, {Sysno::kSync, {}});
  EXPECT_EQ(out.res.err, 0);
  EXPECT_EQ(out.res.block_until, 0);                  // no device wait
  EXPECT_EQ(kernel_->vfs().dirty_bytes(), 8u << 20);  // host cache untouched
  EXPECT_EQ(kernel_->trace().count(kernel::TraceKind::kIoFlush, 0,
                                   kernel_->host().now() + 1),
            0u);
}

TEST_F(GvisorTest, SocketNeverModprobes) {
  const ExecOutcome out =
      run_call(*ctr_, {Sysno::kSocket, {num(4), num(3), num(9)}});
  EXPECT_EQ(out.res.err, kernel::EAFNOSUPPORT_);
  EXPECT_EQ(kernel_->modprobe_execs(), 0u);
}

TEST_F(GvisorTest, FatalSignalDumpsInSandbox) {
  // open with mode triggering nothing; use kill(self, SIGSEGV) instead.
  const ExecOutcome out = run_call(
      *ctr_,
      {Sysno::kKill, {num(ctr_->process()->pid()), num(11)}});
  EXPECT_EQ(out.res.fatal_signal, 11);
  EXPECT_EQ(kernel_->coredumps(), 0u);  // no host usermodehelper
  // The sentry-side dump cost shows as user time in the container.
  EXPECT_GT(out.res.user_ns, 500 * kMicrosecond);
}

TEST_F(GvisorTest, CostTransformationShape) {
  ContainerSpec native_spec;
  Container& native = idle_container(native_spec);
  const SysReq req{Sysno::kGetpid, {}};
  // Average over many calls (jitter + stalls are randomized).
  Nanos gv_user = 0, gv_sys = 0, nat_user = 0, nat_sys = 0;
  for (int i = 0; i < 200; ++i) {
    const ExecOutcome g = run_call(*ctr_, req);
    gv_user += g.res.user_ns;
    gv_sys += g.res.sys_ns;
    const ExecOutcome n = run_call(native, req);
    nat_user += n.res.user_ns;
    nat_sys += n.res.sys_ns;
  }
  EXPECT_GT(gv_user, nat_user);  // sentry dispatch adds user time
  EXPECT_GT(gv_sys, 0);
}

// --- Kata -----------------------------------------------------------------------

TEST_F(RuntimeTest, KataSuppressesHostEffects) {
  ContainerSpec spec;
  spec.runtime = RuntimeKind::kKata;
  Container& ctr = idle_container(spec);
  EXPECT_FALSE(ctr.process()->host_coredumps);
  EXPECT_FALSE(ctr.process()->modprobe_on_missing);
  const ExecOutcome out =
      run_call(ctr, {Sysno::kSocket, {num(4), num(3), num(9)}});
  EXPECT_EQ(out.res.err, kernel::EAFNOSUPPORT_);
  EXPECT_EQ(kernel_->modprobe_execs(), 0u);
}

TEST_F(RuntimeTest, KataGuestWorkShowsAsVmmUserTime) {
  ContainerSpec spec;
  spec.runtime = RuntimeKind::kKata;
  Container& ctr = idle_container(spec);
  const ExecOutcome out =
      run_call(ctr, {Sysno::kOpen, {text("/etc/passwd"), num(0), num(0)}});
  EXPECT_EQ(out.res.err, 0);
  // Guest kernel time is accounted as VMM user time; host sys is just the
  // vm-exit.
  EXPECT_GT(out.res.user_ns, out.res.sys_ns);
  EXPECT_LT(out.res.sys_ns, 10 * kMicrosecond);
}

}  // namespace
}  // namespace torpedo::runtime
