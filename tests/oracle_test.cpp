// Unit tests for the oracle library: the Table-4.1 CPU heuristics plus the
// IO and memory oracles, on synthetic observations.
#include <gtest/gtest.h>

#include "oracle/oracle.h"
#include "telemetry/json.h"

namespace torpedo::oracle {
namespace {

// Builds an observation with uniform per-core utilization that individual
// tests then perturb.
observer::Observation make_observation(int cores = 12, int fuzz_cores = 3,
                                       double cap_per_container = 1.0) {
  observer::Observation obs;
  obs.window_start = 0;
  obs.window_end = 5 * kSecond;
  obs.configured_cpu_cap = cap_per_container * fuzz_cores;
  obs.side_band_core = fuzz_cores;  // the core after the fuzzing set
  const std::int64_t total = 500;   // jiffies per core over the window
  for (int c = 0; c < cores; ++c) {
    observer::CoreUsage usage;
    usage.core = c;
    const bool fuzz = c < fuzz_cores;
    if (fuzz) obs.fuzz_cores.push_back(c);
    const std::int64_t busy = fuzz ? 420 : 25;
    usage.jiffies[static_cast<int>(sim::CpuCategory::kUser)] = busy / 4;
    usage.jiffies[static_cast<int>(sim::CpuCategory::kSystem)] =
        busy - busy / 4;
    usage.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] = total - busy;
    obs.cores.push_back(usage);
  }
  for (const auto& usage : obs.cores) {
    for (int i = 0; i < sim::kNumCpuCategories; ++i)
      obs.aggregate.jiffies[static_cast<std::size_t>(i)] +=
          usage.jiffies[static_cast<std::size_t>(i)];
  }
  obs.aggregate.core = -1;
  return obs;
}

void set_busy(observer::Observation& obs, int core, std::int64_t busy) {
  auto& usage = obs.cores[static_cast<std::size_t>(core)];
  const std::int64_t total = usage.total();
  usage.jiffies[static_cast<int>(sim::CpuCategory::kUser)] = busy / 4;
  usage.jiffies[static_cast<int>(sim::CpuCategory::kSystem)] = busy - busy / 4;
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] = total - busy;
  // Rebuild the aggregate.
  obs.aggregate = observer::CoreUsage{};
  obs.aggregate.core = -1;
  for (const auto& u : obs.cores)
    for (int i = 0; i < sim::kNumCpuCategories; ++i)
      obs.aggregate.jiffies[static_cast<std::size_t>(i)] +=
          u.jiffies[static_cast<std::size_t>(i)];
}

bool has(const std::vector<Violation>& violations, const std::string& name) {
  for (const Violation& v : violations)
    if (v.heuristic == name) return true;
  return false;
}

TEST(CpuOracle, CleanBaselineDoesNotFlag) {
  CpuOracle oracle;
  const auto obs = make_observation();
  EXPECT_TRUE(oracle.flag(obs).empty());
}

TEST(CpuOracle, ScoreIsTotalUtilization) {
  CpuOracle oracle;
  const auto obs = make_observation();
  EXPECT_NEAR(oracle.score(obs), obs.total_utilization(), 1e-9);
  EXPECT_NEAR(oracle.score(obs), 100.0 * (3 * 420 + 9 * 25) / 6000.0, 0.01);
}

class FuzzCoreBusyTest
    : public ::testing::TestWithParam<std::pair<std::int64_t, bool>> {};

TEST_P(FuzzCoreBusyTest, FlagsWhenBelowThreshold) {
  const auto [busy, flags] = GetParam();
  CpuOracle oracle;  // threshold 0.35 of 500 = 175
  auto obs = make_observation();
  set_busy(obs, 0, busy);
  EXPECT_EQ(has(oracle.flag(obs), "fuzz-core-utilization-low"), flags)
      << busy;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzCoreBusyTest,
    ::testing::Values(std::pair<std::int64_t, bool>{420, false},
                      std::pair<std::int64_t, bool>{200, false},
                      std::pair<std::int64_t, bool>{176, false},
                      std::pair<std::int64_t, bool>{170, true},
                      std::pair<std::int64_t, bool>{60, true},
                      std::pair<std::int64_t, bool>{0, true}));

class IdleCoreBusyTest
    : public ::testing::TestWithParam<std::pair<std::int64_t, bool>> {};

TEST_P(IdleCoreBusyTest, FlagsWhenAboveThreshold) {
  const auto [busy, flags] = GetParam();
  CpuOracle oracle;  // threshold 0.10 of 500 = 50
  auto obs = make_observation();
  set_busy(obs, 7, busy);
  EXPECT_EQ(has(oracle.flag(obs), "idle-core-utilization-high"), flags)
      << busy;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IdleCoreBusyTest,
    ::testing::Values(std::pair<std::int64_t, bool>{25, false},
                      std::pair<std::int64_t, bool>{49, false},
                      std::pair<std::int64_t, bool>{60, true},
                      std::pair<std::int64_t, bool>{400, true}));

TEST(CpuOracle, SideBandCoreExempt) {
  CpuOracle oracle;
  auto obs = make_observation();
  // Core 3 is the engine's LDISC side-band; busy it up heavily.
  set_busy(obs, 3, 400);
  EXPECT_FALSE(has(oracle.flag(obs), "idle-core-utilization-high"));
  // The same load on core 4 flags.
  set_busy(obs, 3, 25);
  set_busy(obs, 4, 400);
  EXPECT_TRUE(has(oracle.flag(obs), "idle-core-utilization-high"));
}

TEST(CpuOracle, TotalUtilizationCap) {
  CpuOracle oracle;
  auto obs = make_observation();
  EXPECT_FALSE(has(oracle.flag(obs), "total-utilization-exceeds-caps"));
  // Load every idle core: total far above caps + headroom.
  for (int c = 3; c < 12; ++c) set_busy(obs, c, 400);
  EXPECT_TRUE(has(oracle.flag(obs), "total-utilization-exceeds-caps"));
}

TEST(CpuOracle, SystemProcessHeuristic) {
  CpuOracle oracle;
  auto obs = make_observation();
  obs.processes.push_back({1, "systemd-journal", "/system.slice", 35.0});
  obs.processes.push_back({2, "myapp", "/docker/x", 95.0});  // not a sysproc
  const auto violations = oracle.flag(obs);
  ASSERT_TRUE(has(violations, "system-process-utilization-high"));
  for (const Violation& v : violations)
    if (v.heuristic == "system-process-utilization-high")
      EXPECT_EQ(v.subject, "systemd-journal");
}

TEST(IsSystemProcess, Filter) {
  EXPECT_TRUE(is_system_process("dockerd"));
  EXPECT_TRUE(is_system_process("kworker/u:3"));
  EXPECT_TRUE(is_system_process("kauditd"));
  EXPECT_TRUE(is_system_process("systemd-journal"));
  EXPECT_TRUE(is_system_process("containerd"));
  EXPECT_TRUE(is_system_process("ksoftirqd/0"));
  EXPECT_FALSE(is_system_process("ctr/1"));
  EXPECT_FALSE(is_system_process("nginx"));
  EXPECT_FALSE(is_system_process("noise/3"));
}

// --- IO oracle -------------------------------------------------------------------

TEST(IoOracle, FlagsIowaitOnNonFuzzCores) {
  IoOracle oracle;
  auto obs = make_observation();
  auto& usage = obs.cores[7];
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] -= 100;
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIoWait)] += 100;
  const auto violations = oracle.flag(obs);
  ASSERT_TRUE(has(violations, "nonfuzz-core-iowait-high"));
  EXPECT_EQ(violations[0].subject, "cpu7");
}

TEST(IoOracle, IgnoresIowaitOnFuzzCores) {
  IoOracle oracle;
  auto obs = make_observation();
  auto& usage = obs.cores[0];
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] = 0;
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIoWait)] = 80;
  EXPECT_FALSE(has(oracle.flag(obs), "nonfuzz-core-iowait-high"));
}

TEST(IoOracle, UnattributedDeviceBytes) {
  IoOracle oracle;
  auto obs = make_observation();
  obs.device_bytes = 500ull << 20;  // 100 MB/s over 5s, nobody charged
  EXPECT_TRUE(has(oracle.flag(obs), "unattributed-device-io"));
  // Charged IO doesn't count.
  observer::ContainerUsage ctr;
  ctr.blkio_bytes = obs.device_bytes;
  obs.containers.push_back(ctr);
  EXPECT_FALSE(has(oracle.flag(obs), "unattributed-device-io"));
}

TEST(IoOracle, ScoreIsMeanIowaitPercent) {
  IoOracle oracle;
  auto obs = make_observation();
  EXPECT_DOUBLE_EQ(oracle.score(obs), 0.0);
  auto& usage = obs.cores[5];
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIdle)] -= 250;
  usage.jiffies[static_cast<int>(sim::CpuCategory::kIoWait)] += 250;
  EXPECT_NEAR(oracle.score(obs), 100.0 * 0.5 / 12.0, 0.01);
}

// --- memory oracle -----------------------------------------------------------------

TEST(MemoryOracle, FlagsThrashing) {
  MemoryOracle oracle;
  auto obs = make_observation();
  observer::ContainerUsage ctr;
  ctr.cgroup_path = "/docker/x";
  ctr.memory_failcnt = 500;
  obs.containers.push_back(ctr);
  const auto violations = oracle.flag(obs);
  ASSERT_TRUE(has(violations, "memory-limit-thrashing"));
  EXPECT_EQ(violations[0].subject, "/docker/x");
  EXPECT_EQ(oracle.score(obs), 500.0);
}

TEST(MemoryOracle, QuietContainerClean) {
  MemoryOracle oracle;
  auto obs = make_observation();
  observer::ContainerUsage ctr;
  ctr.memory_failcnt = 3;
  obs.containers.push_back(ctr);
  EXPECT_TRUE(oracle.flag(obs).empty());
}

TEST(Violation, ToStringIsReadable) {
  const Violation v{"idle-core-utilization-high", "cpu7", 0.42, 0.10};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("idle-core-utilization-high"), std::string::npos);
  EXPECT_NE(s.find("cpu7"), std::string::npos);
  EXPECT_NE(s.find("0.42"), std::string::npos);
}

TEST(Violation, ToJsonRoundTrips) {
  const Violation v{"nonfuzz-core-iowait-high", "cpu6", 0.0398, 0.02};
  const auto parsed = telemetry::parse_json_object(v.to_json().to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at("heuristic").text, "nonfuzz-core-iowait-high");
  EXPECT_EQ(parsed->at("subject").text, "cpu6");
  EXPECT_DOUBLE_EQ(parsed->at("value").number, 0.0398);
  EXPECT_DOUBLE_EQ(parsed->at("threshold").number, 0.02);
}

TEST(Violation, ListRendersAsJsonArray) {
  const std::vector<Violation> violations = {
      {"h1", "cpu0", 1.5, 1.0}, {"h2", "proc kauditd", 2.0, 0.5}};
  const auto parsed =
      telemetry::parse_json_array_of_objects(violations_to_json(violations));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].at("heuristic").text, "h1");
  EXPECT_EQ((*parsed)[1].at("subject").text, "proc kauditd");
  EXPECT_EQ(violations_to_json({}), "[]");
}

}  // namespace
}  // namespace torpedo::oracle
