// Reproduces Table A.4: "Standard Utilization" under gVisor — the §A.2.1
// programs on the sandboxed runtime.
//
// Expected shape vs the paper: overall utilization lower than the runC
// baseline (sentry interception overhead + internal stalls), no host-side
// adversarial effects.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main() {
  bench::print_header("Table A.4",
                      "Baseline utilization, 3 fuzzing processes under gVisor");

  core::CampaignConfig config;
  config.runtime = runtime::RuntimeKind::kGvisor;
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("gvisor-prog0"),
      *core::named_seed("gvisor-prog1"),
      *core::named_seed("gvisor-prog2"),
  };
  std::fputs(bench::program_listing(programs).c_str(), stdout);

  const observer::RoundResult& round = campaign.observer().run_round(programs);
  std::fputs(bench::utilization_table(round.observation).c_str(), stdout);

  std::printf(
      "\npaper reference: fuzz cores busy 72.6-77.8%% (vs 83-87%% under "
      "runC), total 22.8%%\nmeasured:        total %.2f%%\n",
      round.observation.total_utilization());

  bool flagged = false;
  for (const auto& v : campaign.cpu_oracle().flag(round.observation)) {
    std::printf("unexpected CPU violation: %s\n", v.to_string().c_str());
    flagged = true;
  }
  if (!flagged) std::puts("oracle: gVisor baseline is clean (as in the paper)");
  return 0;
}
