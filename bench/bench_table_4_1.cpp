// Reproduces Table 4.1: "TORPEDO CPU Oracle Heuristics" — the four
// heuristics, their configured thresholds, and the values calibrated from a
// baseline round (the paper tunes these against known-vulnerability seeds,
// §4.1).
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

int main() {
  bench::print_header("Table 4.1", "TORPEDO CPU oracle heuristics");

  core::CampaignConfig config;
  core::Campaign campaign(config);

  // Calibration: a clean baseline round, then one known-vulnerable round.
  const std::vector<prog::Program> baseline = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2"),
  };
  const observer::RoundResult& base = campaign.observer().run_round(baseline);

  double fuzz_min = 100.0, idle_max = 0.0, sysproc_max = 0.0;
  for (const observer::CoreUsage& core : base.observation.cores) {
    if (base.observation.is_fuzz_core(core.core))
      fuzz_min = std::min(fuzz_min, core.percent());
    else if (core.core != base.observation.side_band_core)
      idle_max = std::max(idle_max, core.percent());
  }
  for (const observer::ProcSample& p : base.observation.processes)
    if (oracle::is_system_process(p.name))
      sysproc_max = std::max(sysproc_max, p.cpu_percent);

  const oracle::CpuOracleConfig& oc = campaign.cpu_oracle().config();
  TextTable table({"heuristic", "notes", "threshold", "baseline value"});
  table.add_row({"fuzzing core CPU utilization", "expect above some threshold",
                 format("%.0f%%", oc.fuzz_core_min_busy * 100),
                 format("min %.1f%%", fuzz_min)});
  table.add_row({"idle core CPU utilization", "expect below some threshold",
                 format("%.0f%%", oc.idle_core_max_busy * 100),
                 format("max %.1f%%", idle_max)});
  table.add_row({"total CPU utilization", "expect below some threshold",
                 format("caps+%.1f%%/core", oc.noise_headroom_per_core * 100),
                 format("%.1f%%", base.observation.total_utilization())});
  table.add_row({"system process CPU utilization",
                 "expect below some threshold",
                 format("%.0f%% of a core", oc.sysproc_max_percent),
                 format("max %.1f%%", sysproc_max)});
  std::fputs(table.to_string().c_str(), stdout);

  // Sanity: the heuristics fire on a known-vulnerable seed.
  std::puts("\nvalidation against a known vulnerability (socket-modprobe):");
  const std::vector<prog::Program> vuln = {
      *core::named_seed("socket-modprobe"),
      *core::named_seed("kcmp-pair"),
      *core::named_seed("appendix-a1-prog2"),
  };
  const observer::RoundResult& bad = campaign.observer().run_round(vuln);
  for (const auto& v : campaign.cpu_oracle().flag(bad.observation))
    std::printf("  flagged: %s\n", v.to_string().c_str());
  return 0;
}
