// Reproduces Table A.2: "Impact of Adversarial IO Behavior" — the §A.1.2
// batch where program 0 is sync() and the others are benign.
//
// Expected shape vs the paper: the sync core's utilization collapses versus
// the ~84-93% baseline, IO wait appears on the system-daemon cores (6-7 in
// the paper), and the IO oracle flags non-fuzzing-core IO wait.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main() {
  bench::print_header("Table A.2",
                      "Adversarial IO workload caused by sync(2)");

  core::CampaignConfig config;
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("sync"),
      *core::named_seed("kcmp-pair"),
      *core::named_seed("readlink-eloop"),
  };
  std::fputs(bench::program_listing(programs).c_str(), stdout);

  // A baseline round first, for the contrast the appendix tables show.
  const std::vector<prog::Program> baseline = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2"),
  };
  const observer::RoundResult& base = campaign.observer().run_round(baseline);
  const observer::RoundResult& round = campaign.observer().run_round(programs);

  std::fputs(bench::utilization_table(round.observation).c_str(), stdout);

  const auto iow = [](const observer::Observation& o) {
    return o.aggregate[sim::CpuCategory::kIoWait];
  };
  std::printf(
      "\npaper reference: sync core busy drops 84%%->42%%, IO WAIT rises on "
      "daemon cores\n  (53j on cpu6, 165j on cpu7), total IO WAIT 70j -> "
      "267j\nmeasured:        sync core busy %.1f%% (baseline %.1f%%), total "
      "IO WAIT %lldj (baseline %lldj)\n",
      round.observation.core_usage(0)->percent(),
      base.observation.core_usage(0)->percent(),
      static_cast<long long>(iow(round.observation)),
      static_cast<long long>(iow(base.observation)));

  for (const auto& v : campaign.io_oracle().flag(round.observation))
    std::printf("IO oracle violation: %s\n", v.to_string().c_str());
  for (const auto& v : campaign.cpu_oracle().flag(round.observation))
    std::printf("CPU oracle violation: %s\n", v.to_string().c_str());
  return 0;
}
