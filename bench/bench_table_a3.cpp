// Reproduces Table A.3: "OOB Workload Created by Program on Core 1" — the
// §A.1.3 netlink-audit + socketpair(AF_IPX) program whose modprobe storm and
// audit records land on cores the container is not allowed to use.
//
// Expected shape vs the paper: user+system load spread over the idle cores
// (the short-lived modprobe helpers), invisible to the top(1) sampler, and
// flagged by the idle-core heuristic.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main() {
  bench::print_header("Table A.3",
                      "Out-of-band workload via uncached modprobe + audit");

  core::CampaignConfig config;
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("audit-oob"),
      *core::named_seed("kcmp-pair"),
      *core::named_seed("appendix-a1-prog2"),
  };
  std::fputs(bench::program_listing(programs).c_str(), stdout);

  const observer::RoundResult& round = campaign.observer().run_round(programs);
  std::fputs(bench::utilization_table(round.observation).c_str(), stdout);

  std::printf("\nmodprobe execs this campaign: %llu; audit events: %llu\n",
              static_cast<unsigned long long>(campaign.kernel().modprobe_execs()),
              static_cast<unsigned long long>(
                  campaign.kernel().services().audit_events()));

  std::puts(
      "\npaper reference: originator core busy collapses; idle cores pick up\n"
      "  user+system load from short-lived root-cgroup helpers (38-80j busy)");

  // The paper's key observation: top cannot see the helpers.
  bool top_saw_modprobe = false;
  for (const observer::ProcSample& p : round.observation.processes)
    if (p.name.find("modprobe") != std::string::npos) top_saw_modprobe = true;
  std::printf("top(1) saw modprobe processes: %s (per-core counters did)\n",
              top_saw_modprobe ? "YES (unexpected!)" : "no");

  for (const auto& v : campaign.cpu_oracle().flag(round.observation))
    std::printf("CPU oracle violation: %s\n", v.to_string().c_str());
  return 0;
}
