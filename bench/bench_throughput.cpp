// Throughput bench: how fast the whole stack turns the crank.
//
// Runs a stock campaign (paper §4.2 defaults, scaled down) and measures the
// host-side cost of the simulation: observed rounds per wall second,
// simulated executions per wall second, and wall milliseconds per batch.
// The campaign runs several times — plain, with the span tracer, with the
// live monitor serving /metrics under a once-per-second scraper, and with
// post-campaign triage clustering — so every observability layer's overhead
// is measured by the same harness that would catch any other regression.
// Results land in BENCH_throughput.json so CI and the telemetry layer's
// consumers can chart regressions.
//
//   bench_throughput [--quick] [--out FILE.json]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "feedback/mutation_efficacy.h"
#include "telemetry/json.h"
#include "telemetry/monitor.h"
#include "telemetry/span.h"
#include "runtime/runtime.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"
#include "triage/cluster.h"

using namespace torpedo;

namespace {

struct Result {
  int batches = 0;
  int rounds = 0;
  std::uint64_t executions = 0;
  double wall_ms = 0;
  std::size_t spans = 0;

  double rounds_per_sec() const {
    return wall_ms > 0 ? rounds / (wall_ms / 1000.0) : 0;
  }
  double execs_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(executions) / (wall_ms / 1000.0)
                       : 0;
  }
  double wall_ms_per_batch() const {
    return batches > 0 ? wall_ms / batches : 0;
  }
};

Result run_campaign(int batches, bool with_tracer, bool with_monitor,
                    bool snapshot_exec = true,
                    bool with_introspection = false,
                    double* triage_ms = nullptr) {
  core::CampaignConfig config;
  config.batches = batches;
  config.round_duration = 2 * kSecond;
  config.fuzzer.cycle_out_rounds = 4;
  config.snapshot_exec = snapshot_exec;
  core::Campaign campaign(config);
  campaign.load_default_seeds();

  // Introspection-on: the per-operator efficacy probes fire in the mutate
  // loop and the time-series recorder samples every observer round — the
  // exact wiring `torpedo run` always enables.
  feedback::MutationEfficacy efficacy;
  telemetry::TimeSeriesRecorder timeseries;
  if (with_introspection) {
    feedback::set_mutation_efficacy(&efficacy);
    campaign.set_timeseries(&timeseries);
  }

  telemetry::SpanTracer tracer;
  if (with_tracer) {
    tracer.set_sim_clock(
        [](void* ctx) { return static_cast<sim::Host*>(ctx)->now(); },
        &campaign.kernel().host());
    telemetry::set_spans(&tracer);
  }

  // Monitor-on: the embedded server runs and an external scraper hits
  // /metrics once per second, the cadence a real Prometheus would use.
  telemetry::LiveStatus status;
  telemetry::MonitorServer monitor;
  std::thread scraper;
  std::atomic<bool> stop_scraper{false};
  if (with_monitor) {
    campaign.set_live_status(&status);
    monitor.set_status(&status);
    if (monitor.start()) {
      scraper = std::thread([&stop_scraper, port = monitor.port()] {
        while (!stop_scraper.load(std::memory_order_acquire)) {
          (void)telemetry::http_get(port, "/metrics");
          for (int i = 0; i < 10 && !stop_scraper.load(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
    }
  }

  Result result;
  const auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    result.rounds += batch.rounds;
    result.batches++;
  }
  const auto end = std::chrono::steady_clock::now();
  // Triage-on: finalize the campaign (minimize + provenance, the same work
  // every `torpedo run` does) and time only the clustering pass on top.
  if (triage_ms != nullptr) {
    const core::CampaignReport report = campaign.finalize();
    const auto triage_start = std::chrono::steady_clock::now();
    const triage::TriageResult tri = triage::cluster_report(
        report, runtime::runtime_name(config.runtime));
    const auto triage_end = std::chrono::steady_clock::now();
    *triage_ms = std::chrono::duration<double, std::milli>(triage_end -
                                                           triage_start)
                     .count();
    // Keep the clustering observable so the optimizer cannot elide it.
    if (tri.findings < 0) std::abort();
  }
  telemetry::set_spans(nullptr);
  feedback::set_mutation_efficacy(nullptr);
  if (scraper.joinable()) {
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
  }
  monitor.stop();
  result.executions = campaign.fuzzer().total_executions();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.spans = tracer.spans().size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 4;
  std::string out_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      batches = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--quick] [--batches N] "
                   "[--out FILE.json]\n");
      return 2;
    }
  }

  bench::print_header("Throughput", "host-side cost of the fuzzing loop");

  // Untimed warmup batch so the first measured run isn't charged for process
  // cold-start (allocator arenas, page faults, CPU frequency ramp) that the
  // later runs in this process never pay.
  (void)run_campaign(1, /*with_tracer=*/false, /*with_monitor=*/false);

  // The plain run is snapshot-exec on (the default); the cold run re-executes
  // the same campaign (byte-identical results) without any gated fast path.
  const Result r =
      run_campaign(batches, /*with_tracer=*/false, /*with_monitor=*/false);
  const Result cold =
      run_campaign(batches, /*with_tracer=*/false, /*with_monitor=*/false,
                   /*snapshot_exec=*/false);
  const Result traced =
      run_campaign(batches, /*with_tracer=*/true, /*with_monitor=*/false);
  const Result monitored =
      run_campaign(batches, /*with_tracer=*/false, /*with_monitor=*/true);
  const Result introspected =
      run_campaign(batches, /*with_tracer=*/false, /*with_monitor=*/false,
                   /*snapshot_exec=*/true, /*with_introspection=*/true);
  double triage_ms = 0;
  const Result triaged =
      run_campaign(batches, /*with_tracer=*/false, /*with_monitor=*/false,
                   /*snapshot_exec=*/true, /*with_introspection=*/false,
                   &triage_ms);
  const double overhead_pct =
      r.wall_ms > 0 ? 100.0 * (traced.wall_ms - r.wall_ms) / r.wall_ms : 0;
  const double monitor_overhead_pct =
      r.wall_ms > 0 ? 100.0 * (monitored.wall_ms - r.wall_ms) / r.wall_ms : 0;
  const double introspection_overhead_pct =
      r.wall_ms > 0 ? 100.0 * (introspected.wall_ms - r.wall_ms) / r.wall_ms
                    : 0;
  // Triage runs once after the campaign, so its honest overhead is the
  // clustering wall time relative to the campaign wall time — not a
  // campaign-vs-campaign delta, which would drown in run-to-run noise.
  const double triage_overhead_pct =
      triaged.wall_ms > 0 ? 100.0 * triage_ms / triaged.wall_ms : 0;
  const double snapshot_speedup =
      r.execs_per_sec() > 0 ? cold.execs_per_sec() > 0
                                  ? r.execs_per_sec() / cold.execs_per_sec()
                                  : 0
                            : 0;

  std::printf(
      "%d batches, %d rounds, %llu executions in %.1f ms\n"
      "  %.2f rounds/sec, %.0f execs/sec, %.1f ms/batch\n"
      "with span tracer: %.1f ms (%zu spans, %+.1f%% wall overhead)\n"
      "with live monitor (1 Hz scrape): %.1f ms (%+.1f%% wall overhead)\n",
      r.batches, r.rounds, static_cast<unsigned long long>(r.executions),
      r.wall_ms, r.rounds_per_sec(), r.execs_per_sec(), r.wall_ms_per_batch(),
      traced.wall_ms, traced.spans, overhead_pct, monitored.wall_ms,
      monitor_overhead_pct);
  std::printf(
      "without --snapshot-exec (cold boot per program): %.1f ms, "
      "%.0f execs/sec (snapshot speedup %.2fx)\n",
      cold.wall_ms, cold.execs_per_sec(), snapshot_speedup);
  std::printf(
      "with introspection (efficacy + time series): %.1f ms "
      "(%+.1f%% wall overhead)\n",
      introspected.wall_ms, introspection_overhead_pct);
  std::printf(
      "with triage clustering after finalize: %.2f ms "
      "(%+.2f%% of campaign wall)\n",
      triage_ms, triage_overhead_pct);

  telemetry::JsonDict json;
  json.set("bench", "throughput")
      .set("batches", r.batches)
      .set("rounds", r.rounds)
      .set("executions", r.executions)
      .set("wall_ms", r.wall_ms)
      .set("rounds_per_sec", r.rounds_per_sec())
      .set("execs_per_sec", r.execs_per_sec())
      .set("wall_ms_per_batch", r.wall_ms_per_batch())
      .set("tracer_wall_ms", traced.wall_ms)
      .set("tracer_spans", static_cast<std::uint64_t>(traced.spans))
      .set("tracer_overhead_pct", overhead_pct)
      .set("monitor_wall_ms", monitored.wall_ms)
      .set("monitor_overhead_pct", monitor_overhead_pct)
      .set("snapshot_on_execs_per_sec", r.execs_per_sec())
      .set("snapshot_off_wall_ms", cold.wall_ms)
      .set("snapshot_off_execs_per_sec", cold.execs_per_sec())
      .set("snapshot_speedup", snapshot_speedup)
      .set("introspection_wall_ms", introspected.wall_ms)
      .set("introspection_overhead_pct", introspection_overhead_pct)
      .set("triage_wall_ms", triage_ms)
      .set("triage_overhead_pct", triage_overhead_pct);

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json.to_string() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
