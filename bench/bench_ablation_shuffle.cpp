// Ablation: the "confirm as shuffle" stage (§3.5.2).
//
// "We implement the 'confirm' phase as 'shuffle', where individual programs
// are shuffled between cores ... This helps to reduce false positives from
// the case where system noise is concentrated on a subset of cores."
//
// This bench plants exactly that pathology — a bursty cron-style task pinned
// to one core — and runs batches of benign seeds with the confirm stage on
// and off, counting how many score "improvements" each accepts. Improvements
// over benign programs are spurious by construction.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

namespace {

// A hot-core disturbance: every 1-3s, burn 0.3-0.9s on one pinned core.
void install_hot_core(sim::Host& host, int core, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  host.spawn({
      .name = "cron-burst",
      .kind = sim::TaskKind::kDaemon,
      .group = nullptr,
      .affinity = cgroup::CpuSet::single(core),
      .supplier =
          [rng](sim::Host& h, sim::Task& task) {
            task.push(sim::Segment::block_until(
                h.now() + rng->range(1, 3) * kSecond));
            task.push(sim::Segment::user(rng->range(300, 900) * kMillisecond));
            return true;
          },
  });
}

struct Outcome {
  int accepted = 0;
  int rejected = 0;
  int rounds = 0;
};

Outcome run(bool shuffle_confirm, std::uint64_t seed) {
  core::CampaignConfig config;
  config.round_duration = 3 * kSecond;
  config.batches = 3;
  config.seed = seed;
  config.fuzzer.cycle_out_rounds = 8;
  config.fuzzer.confirm_shuffle = shuffle_confirm;
  // Keep mutants cost-neutral (arg tweaks on trivial calls only) so *every*
  // accepted improvement is noise-driven by construction.
  config.mutate.splice_weight = 0;
  config.mutate.insert_weight = 0.0001;
  config.mutate.remove_weight = 0.0001;
  config.mutate.mutate_arg_weight = 5;
  config.gen.denylist = {"pause", "nanosleep", "poll", "recvfrom"};
  core::Campaign campaign(config);
  install_hot_core(campaign.kernel().host(), 7, seed * 31 + 7);

  // Benign seeds only: any accepted improvement is a false positive.
  std::vector<prog::Program> seeds;
  for (int i = 0; i < 9; ++i) seeds.push_back(*core::named_seed("kcmp-pair"));
  campaign.load_seeds(std::move(seeds));

  Outcome outcome;
  for (int b = 0; b < config.batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    outcome.accepted += batch.improvements;
    outcome.rejected += batch.rejected_confirms;
    outcome.rounds += batch.rounds;
  }
  return outcome;
}

}  // namespace

int main() {
  bench::print_header("Ablation: confirm-as-shuffle (§3.5.2)",
                      "spurious improvements under hot-core noise");

  TextTable table({"confirm stage", "seed", "rounds", "accepted (spurious)",
                   "rejected by confirm"});
  int with_total = 0, without_total = 0;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const Outcome with_confirm = run(true, seed);
    const Outcome without_confirm = run(false, seed);
    with_total += with_confirm.accepted;
    without_total += without_confirm.accepted;
    table.add_row({"shuffle-confirm ON", std::to_string(seed),
                   std::to_string(with_confirm.rounds),
                   std::to_string(with_confirm.accepted),
                   std::to_string(with_confirm.rejected)});
    table.add_row({"shuffle-confirm OFF", std::to_string(seed),
                   std::to_string(without_confirm.rounds),
                   std::to_string(without_confirm.accepted), "-"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "\ntotals: %d spurious improvements accepted with confirm, %d "
      "without\nexpected shape: the shuffle-confirm stage rejects most "
      "noise-driven score jumps.\n",
      with_total, without_total);
  return 0;
}
