// Micro-benchmarks (google-benchmark): throughput of the hot framework
// paths — program generation/mutation, (de)serialization, syscall dispatch,
// oracle evaluation, procfs round trips, and a full observer round.
#include <benchmark/benchmark.h>

#include "core/campaign.h"
#include "core/seeds.h"
#include "feedback/signal.h"
#include "kernel/procfs.h"
#include "kernel/syscalls.h"
#include "prog/generate.h"
#include "prog/mutate.h"

using namespace torpedo;

namespace {

void BM_GenerateProgram(benchmark::State& state) {
  prog::Generator gen{Rng(42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_MutateProgram(benchmark::State& state) {
  prog::Generator gen{Rng(42)};
  prog::Mutator mutator(gen);
  std::vector<prog::Program> corpus;
  for (int i = 0; i < 16; ++i) corpus.push_back(gen.generate());
  prog::Program p = gen.generate();
  for (auto _ : state) {
    mutator.mutate(p, corpus);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MutateProgram);

void BM_SerializeProgram(benchmark::State& state) {
  const prog::Program p = *core::named_seed("appendix-a1-prog1");
  for (auto _ : state) benchmark::DoNotOptimize(p.serialize());
}
BENCHMARK(BM_SerializeProgram);

void BM_ParseProgram(benchmark::State& state) {
  const std::string text = core::named_seed("appendix-a1-prog1")->serialize();
  for (auto _ : state) benchmark::DoNotOptimize(prog::Program::parse(text));
}
BENCHMARK(BM_ParseProgram);

void BM_ProgramHash(benchmark::State& state) {
  const prog::Program p = *core::named_seed("appendix-a1-prog1");
  for (auto _ : state) benchmark::DoNotOptimize(p.hash());
}
BENCHMARK(BM_ProgramHash);

// Per-call signal representation, before/after. The executor keeps one
// signal set per call index; each holds a handful of distinct
// (sysno, err) elements per round. "Hash" is the old unordered_set
// representation, "Small" the sorted-vector SmallSignalSet that replaced
// it. The workload is the hot path: add N mostly-duplicate elements, then
// one novelty scan against the corpus-wide SignalSet.
constexpr int kDistinctPerCall = 6;
constexpr int kAddsPerRound = 64;

std::vector<std::uint64_t> per_call_elements() {
  std::vector<std::uint64_t> elements;
  for (int i = 0; i < kAddsPerRound; ++i)
    elements.push_back(
        feedback::fallback_signal(i % kDistinctPerCall, -(i % 3)));
  return elements;
}

void BM_SignalPerCall_HashSet(benchmark::State& state) {
  const std::vector<std::uint64_t> elements = per_call_elements();
  feedback::SignalSet corpus;
  for (int i = 0; i < kDistinctPerCall / 2; ++i)
    corpus.add(elements[static_cast<std::size_t>(i)]);
  for (auto _ : state) {
    feedback::SignalSet per_call;
    for (std::uint64_t e : elements) per_call.add(e);
    benchmark::DoNotOptimize(corpus.novelty(per_call));
  }
}
BENCHMARK(BM_SignalPerCall_HashSet);

void BM_SignalPerCall_SmallSet(benchmark::State& state) {
  const std::vector<std::uint64_t> elements = per_call_elements();
  feedback::SignalSet corpus;
  for (int i = 0; i < kDistinctPerCall / 2; ++i)
    corpus.add(elements[static_cast<std::size_t>(i)]);
  for (auto _ : state) {
    feedback::SmallSignalSet per_call;
    for (std::uint64_t e : elements) per_call.add(e);
    benchmark::DoNotOptimize(corpus.novelty(per_call));
  }
}
BENCHMARK(BM_SignalPerCall_SmallSet);

// SignalSet::merge across two large sets: the corpus-accept path. The
// reserve-on-merge change bounds rehashing to at most one grow.
void BM_SignalMerge(benchmark::State& state) {
  feedback::SignalSet incoming;
  for (int i = 0; i < 512; ++i)
    incoming.add(feedback::fallback_signal(i, -i));
  for (auto _ : state) {
    state.PauseTiming();
    feedback::SignalSet base;
    for (int i = 0; i < 256; ++i)
      base.add(feedback::fallback_signal(i, -i));
    state.ResumeTiming();
    benchmark::DoNotOptimize(base.merge(incoming));
  }
}
BENCHMARK(BM_SignalMerge);

void BM_SyscallDispatch(benchmark::State& state) {
  kernel::KernelConfig cfg;
  kernel::SimKernel kernel(cfg);
  auto& hierarchy = kernel.host().cgroups();
  auto& group = hierarchy.create(hierarchy.root(), "bm");
  sim::Task& task = kernel.host().spawn({.name = "bm", .group = &group});
  kernel::Process& proc = kernel.create_process("bm", &group, task.id());
  kernel::SysReq req{kernel::Sysno::kGetpid, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.do_syscall(proc, req));
  }
}
BENCHMARK(BM_SyscallDispatch);

void BM_ProcStatRoundTrip(benchmark::State& state) {
  kernel::KernelConfig cfg;
  kernel::SimKernel kernel(cfg);
  kernel.host().run_for(kSecond);
  for (auto _ : state) {
    auto parsed = kernel::parse_proc_stat(kernel::render_proc_stat(kernel.host()));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ProcStatRoundTrip);

void BM_CpuOracleFlag(benchmark::State& state) {
  core::CampaignConfig config;
  config.round_duration = kSecond;
  core::Campaign campaign(config);
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  for (auto _ : state)
    benchmark::DoNotOptimize(campaign.cpu_oracle().flag(rr.observation));
}
BENCHMARK(BM_CpuOracleFlag);

// One full observed round: 1 simulated second across 12 cores, 3 executors,
// hundreds of thousands of simulated syscalls.
void BM_ObserverRound(benchmark::State& state) {
  core::CampaignConfig config;
  config.round_duration = kSecond;
  core::Campaign campaign(config);
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.observer().run_round(programs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserverRound)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
