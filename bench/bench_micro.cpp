// Micro-benchmarks (google-benchmark): throughput of the hot framework
// paths — program generation/mutation, (de)serialization, syscall dispatch,
// oracle evaluation, procfs round trips, and a full observer round.
#include <benchmark/benchmark.h>

#include "core/campaign.h"
#include "core/seeds.h"
#include "kernel/procfs.h"
#include "kernel/syscalls.h"
#include "prog/generate.h"
#include "prog/mutate.h"

using namespace torpedo;

namespace {

void BM_GenerateProgram(benchmark::State& state) {
  prog::Generator gen{Rng(42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_GenerateProgram);

void BM_MutateProgram(benchmark::State& state) {
  prog::Generator gen{Rng(42)};
  prog::Mutator mutator(gen);
  std::vector<prog::Program> corpus;
  for (int i = 0; i < 16; ++i) corpus.push_back(gen.generate());
  prog::Program p = gen.generate();
  for (auto _ : state) {
    mutator.mutate(p, corpus);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MutateProgram);

void BM_SerializeProgram(benchmark::State& state) {
  const prog::Program p = *core::named_seed("appendix-a1-prog1");
  for (auto _ : state) benchmark::DoNotOptimize(p.serialize());
}
BENCHMARK(BM_SerializeProgram);

void BM_ParseProgram(benchmark::State& state) {
  const std::string text = core::named_seed("appendix-a1-prog1")->serialize();
  for (auto _ : state) benchmark::DoNotOptimize(prog::Program::parse(text));
}
BENCHMARK(BM_ParseProgram);

void BM_ProgramHash(benchmark::State& state) {
  const prog::Program p = *core::named_seed("appendix-a1-prog1");
  for (auto _ : state) benchmark::DoNotOptimize(p.hash());
}
BENCHMARK(BM_ProgramHash);

void BM_SyscallDispatch(benchmark::State& state) {
  kernel::KernelConfig cfg;
  kernel::SimKernel kernel(cfg);
  auto& hierarchy = kernel.host().cgroups();
  auto& group = hierarchy.create(hierarchy.root(), "bm");
  sim::Task& task = kernel.host().spawn({.name = "bm", .group = &group});
  kernel::Process& proc = kernel.create_process("bm", &group, task.id());
  kernel::SysReq req{kernel::Sysno::kGetpid, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.do_syscall(proc, req));
  }
}
BENCHMARK(BM_SyscallDispatch);

void BM_ProcStatRoundTrip(benchmark::State& state) {
  kernel::KernelConfig cfg;
  kernel::SimKernel kernel(cfg);
  kernel.host().run_for(kSecond);
  for (auto _ : state) {
    auto parsed = kernel::parse_proc_stat(kernel::render_proc_stat(kernel.host()));
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ProcStatRoundTrip);

void BM_CpuOracleFlag(benchmark::State& state) {
  core::CampaignConfig config;
  config.round_duration = kSecond;
  core::Campaign campaign(config);
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2")};
  const observer::RoundResult& rr = campaign.observer().run_round(programs);
  for (auto _ : state)
    benchmark::DoNotOptimize(campaign.cpu_oracle().flag(rr.observation));
}
BENCHMARK(BM_CpuOracleFlag);

// One full observed round: 1 simulated second across 12 cores, 3 executors,
// hundreds of thousands of simulated syscalls.
void BM_ObserverRound(benchmark::State& state) {
  core::CampaignConfig config;
  config.round_duration = kSecond;
  core::Campaign campaign(config);
  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(campaign.observer().run_round(programs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserverRound)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
