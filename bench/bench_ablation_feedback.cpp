// Ablation: what does each feedback mechanism contribute? (§3.5)
//
// Torpedo combines code-coverage gating (program level) with the resource
// oracle score (batch level). This bench runs the same campaign three ways:
//   combined       — the full TORPEDO algorithm
//   coverage-only  — mutations accepted unconditionally (no oracle score)
//   resource-only  — no coverage gating of batch membership
// and reports how often rounds were flagged as adversarial, the first
// flagged round, and the best oracle score reached.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

namespace {

struct ModeResult {
  int rounds = 0;
  int flagged_rounds = 0;
  int first_flagged = -1;
  double best_score = 0;
  std::uint64_t executions = 0;
};

ModeResult run_mode(bool use_resource, bool use_coverage) {
  core::CampaignConfig config;
  config.round_duration = 2 * kSecond;
  config.batches = 4;
  config.fuzzer.cycle_out_rounds = 8;
  config.fuzzer.use_resource_score = use_resource;
  config.fuzzer.use_coverage = use_coverage;
  core::Campaign campaign(config);

  // Seeds one mutation away from adversarial behaviour: valid sockets whose
  // family/protocol flips into the modprobe path, and small fallocates whose
  // length can blow past RLIMIT_FSIZE.
  std::vector<prog::Program> seeds;
  for (int i = 0; i < 6; ++i) {
    seeds.push_back(*prog::Program::parse(
        "r0 = socket$inet(0x2, 0x2, 0x0)\n"
        "shutdown(r0, 0x1)\n"));
    seeds.push_back(*prog::Program::parse(
        "r0 = creat('abl_f', 0x1a4)\n"
        "fallocate(r0, 0x0, 0x0, 0x100000)\n"));
    seeds.push_back(*core::named_seed("kcmp-pair"));
  }
  campaign.load_seeds(std::move(seeds));

  ModeResult result;
  for (int b = 0; b < config.batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    result.best_score = std::max(result.best_score, batch.best_score);
  }
  result.executions = campaign.fuzzer().total_executions();
  const auto& log = campaign.observer().log();
  result.rounds = static_cast<int>(log.size());
  for (const observer::RoundResult& rr : log) {
    if (campaign.cpu_oracle().flag(rr.observation).empty()) continue;
    ++result.flagged_rounds;
    if (result.first_flagged < 0) result.first_flagged = rr.round;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: feedback mechanisms (§3.5)",
      "coverage gating x resource scoring, same seeds & budget");

  const struct {
    const char* name;
    bool resource;
    bool coverage;
  } modes[] = {
      {"combined (TORPEDO)", true, true},
      {"coverage-only", false, true},
      {"resource-only", true, false},
  };

  TextTable table({"mode", "rounds", "flagged rounds", "first flagged",
                   "best score", "executions"});
  for (const auto& mode : modes) {
    const ModeResult r = run_mode(mode.resource, mode.coverage);
    table.add_row({mode.name, std::to_string(r.rounds),
                   std::to_string(r.flagged_rounds),
                   r.first_flagged < 0 ? "never"
                                       : std::to_string(r.first_flagged),
                   format("%.1f", r.best_score),
                   std::to_string(r.executions)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nexpected shape: the combined mode reaches adversarial mutants at\n"
      "least as reliably as either ablated mode; coverage-only drifts\n"
      "without retaining adversarial mutants.");
  return 0;
}
