#include "bench_common.h"

#include <algorithm>
#include <cstdio>

#include "util/strings.h"
#include "util/table.h"

namespace torpedo::bench {

std::string utilization_table(const observer::Observation& obs) {
  TextTable table({"CORE", "BUSY", "TOTAL", "PERCENT", "USER", "NICE",
                   "SYSTEM", "IDLE", "IO WAIT", "IRQ", "SOFTIRQ", "STEAL",
                   "GUEST", "GUEST NICE"});
  auto row = [&](const observer::CoreUsage& usage, const std::string& label) {
    table.add_row(
        {label, std::to_string(usage.busy()), std::to_string(usage.total()),
         format("%.2f", usage.percent()),
         std::to_string(usage[sim::CpuCategory::kUser]),
         std::to_string(usage[sim::CpuCategory::kNice]),
         std::to_string(usage[sim::CpuCategory::kSystem]),
         std::to_string(usage[sim::CpuCategory::kIdle]),
         std::to_string(usage[sim::CpuCategory::kIoWait]),
         std::to_string(usage[sim::CpuCategory::kIrq]),
         std::to_string(usage[sim::CpuCategory::kSoftirq]),
         std::to_string(usage[sim::CpuCategory::kSteal]),
         std::to_string(usage[sim::CpuCategory::kGuest]),
         std::to_string(usage[sim::CpuCategory::kGuestNice])});
  };
  for (const observer::CoreUsage& usage : obs.cores)
    row(usage, "cpu" + std::to_string(usage.core));
  row(obs.aggregate, "CPU");
  return table.to_string();
}

std::string findings_table(const core::CampaignReport& report) {
  // Group findings by cause like the paper's rows ({sync, fsync} -> one
  // "IO buffer flushes" row), unioning syscalls and symptoms.
  struct Row {
    std::vector<std::string> syscalls;
    std::vector<std::string> symptoms;
    bool is_new = false;
  };
  std::vector<std::pair<std::string, Row>> rows;
  auto row_for = [&](const std::string& cause) -> Row& {
    for (auto& [c, row] : rows)
      if (c == cause) return row;
    rows.emplace_back(cause, Row{});
    return rows.back().second;
  };
  auto merge = [](std::vector<std::string>& into, const std::string& value) {
    if (std::find(into.begin(), into.end(), value) == into.end())
      into.push_back(value);
  };
  for (const core::Finding& f : report.findings) {
    Row& row = row_for(f.cause);
    for (const std::string& s : f.syscalls) merge(row.syscalls, s);
    for (const oracle::Violation& v : f.violations)
      merge(row.symptoms, v.heuristic);
    row.is_new = row.is_new || f.is_new;
  }

  TextTable table({"syscall(s)", "Symptoms", "Cause", "New?"});
  for (const auto& [cause, row] : rows) {
    std::string names, symptoms;
    for (const std::string& s : row.syscalls)
      names += (names.empty() ? "" : ", ") + s;
    for (const std::string& s : row.symptoms)
      symptoms += (symptoms.empty() ? "" : "; ") + s;
    table.add_row({names, symptoms, cause, row.is_new ? "yes" : "reconfirm"});
  }
  if (report.findings.empty()) table.add_row({"(none)", "-", "-", "-"});
  return table.to_string();
}

std::string crashes_table(const core::CampaignReport& report) {
  TextTable table({"syscall(s)", "Symptoms", "Cause", "New?"});
  for (const core::CrashFinding& crash : report.crashes) {
    // Collect the distinct syscalls of the crashing program.
    std::string names;
    std::vector<std::string> seen;
    for (const prog::Call& call : crash.program.calls()) {
      if (std::find(seen.begin(), seen.end(), call.desc->name) != seen.end())
        continue;
      seen.push_back(call.desc->name);
    }
    // Table 4.3 lists only the culpable call; open(2) dominates.
    const bool has_open =
        std::find(seen.begin(), seen.end(), "open") != seen.end();
    names = has_open ? "open" : (seen.empty() ? "?" : seen.front());
    table.add_row({names, "container crash",
                   crash.message.substr(0, 60), "likely"});
  }
  if (report.crashes.empty()) table.add_row({"(none)", "-", "-", "-"});
  return table.to_string();
}

std::string program_listing(const std::vector<prog::Program>& programs) {
  std::string out;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    out += "program " + std::to_string(i) + "\n";
    out += programs[i].serialize();
    out += "\n";
  }
  return out;
}

void print_header(const char* table, const char* description) {
  std::printf("================================================================\n");
  std::printf("TORPEDO reproduction — %s\n", table);
  std::printf("%s\n", description);
  std::printf("================================================================\n\n");
}

}  // namespace torpedo::bench
