// Extension bench (§5.2 "Testing Additional Environments"): the same
// baseline workload across all four runtime designs the paper discusses —
// native (runC, crun), sandboxed (gVisor), and virtualized (Kata) — plus
// whether each host-side adversarial path is reachable.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

namespace {

struct RuntimeRow {
  double fuzz_busy_pct = 0;
  double total_pct = 0;
  std::uint64_t executions = 0;
  Nanos startup = 0;
  bool modprobe_reachable = false;
  bool coredump_reachable = false;
  bool sync_flush_reachable = false;
};

RuntimeRow run(runtime::RuntimeKind rt) {
  core::CampaignConfig config;
  config.runtime = rt;
  config.round_duration = 3 * kSecond;
  core::Campaign campaign(config);
  RuntimeRow row;
  row.startup = campaign.engine().runtime(rt).startup_cost();

  const std::vector<prog::Program> baseline = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("gvisor-prog2"),
      *core::named_seed("appendix-a1-prog2"),
  };
  const observer::RoundResult& base = campaign.observer().run_round(baseline);
  double busy = 0;
  for (int core : base.observation.fuzz_cores)
    busy += base.observation.core_usage(core)->percent();
  row.fuzz_busy_pct = busy / 3.0;
  row.total_pct = base.observation.total_utilization();
  for (const exec::RunStats& s : base.stats) row.executions += s.executions;

  // Probe the three host-side deferral paths with the known seeds.
  const std::vector<prog::Program> probes = {
      *core::named_seed("socket-modprobe"),
      *core::named_seed("rt-sigreturn"),
      *core::named_seed("sync"),
  };
  campaign.observer().run_round(probes);
  row.modprobe_reachable = campaign.kernel().modprobe_execs() > 0;
  row.coredump_reachable = campaign.kernel().coredumps() > 0;
  // A handful of flushes suffices: next to the coredump probe's dirty
  // flood, each sync(2) flush moves the full dirty cap and takes ~0.6 s.
  row.sync_flush_reachable =
      campaign.kernel().trace().count(kernel::TraceKind::kIoFlush, 0,
                                      campaign.kernel().host().now()) >= 3;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: runtime comparison (§5.2)",
      "baseline utilization + adversarial-path reachability per runtime");

  TextTable table({"runtime", "design", "startup", "fuzz-core busy",
                   "total util", "executions/round", "modprobe?", "coredump?",
                   "sync flush?"});
  const struct {
    runtime::RuntimeKind kind;
    const char* design;
  } rows[] = {
      {runtime::RuntimeKind::kRunc, "native"},
      {runtime::RuntimeKind::kCrun, "native"},
      {runtime::RuntimeKind::kGvisor, "sandboxed"},
      {runtime::RuntimeKind::kKata, "virtualized"},
  };
  for (const auto& r : rows) {
    const RuntimeRow row = run(r.kind);
    table.add_row({std::string(runtime::runtime_name(r.kind)), r.design,
                   format("%lld ms", static_cast<long long>(
                                         row.startup / kMillisecond)),
                   format("%.1f%%", row.fuzz_busy_pct),
                   format("%.1f%%", row.total_pct),
                   std::to_string(row.executions),
                   row.modprobe_reachable ? "REACHABLE" : "blocked",
                   row.coredump_reachable ? "REACHABLE" : "blocked",
                   row.sync_flush_reachable ? "REACHABLE" : "blocked"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nexpected shape: native runtimes expose every host deferral path;\n"
      "sandboxed/virtualized runtimes suppress all three at the cost of\n"
      "startup time and per-call overhead.");
  return 0;
}
