// Fleet scaling bench: what multi-process campaigns buy over one process.
//
// ShardedCampaign scales to the thread ceiling of one address space;
// `torpedo fleet` (fleet/coordinator.h) scales past it with N worker
// processes trading corpus entries through the coordinator's Unix socket.
// This bench runs fork-mode fleets for worker counts {1, 2, 4}, measuring
// wall time, aggregate executions per wall second, speedup versus one
// worker, and the file-level merge cost — then probes the crash/restart
// path with the deterministic crash_after_batch hook and reports how long
// the fleet takes to get a dead worker publishing again. Results land in
// BENCH_fleet.json; CI charts them and fails the build when the 4-worker
// speedup drops below its floor.
//
//   bench_fleet_scaling [--quick] [--batches N] [--max-workers N]
//                       [--out FILE.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fleet/coordinator.h"
#include "fleet/manifest.h"
#include "telemetry/json.h"

using namespace torpedo;

namespace {

namespace fs = std::filesystem;

struct Result {
  int workers = 0;
  bool ok = false;
  int restarts = 0;
  std::uint64_t executions = 0;
  double wall_ms = 0;
  double merge_ms = 0;
  double recovery_ms = 0;
  feedback::CorpusLedger::Stats hub;

  double execs_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(executions) / (wall_ms / 1000.0)
                       : 0;
  }
};

fleet::Manifest bench_manifest(int workers, int batches) {
  fleet::Manifest manifest;
  manifest.workers = workers;
  manifest.defaults.batches = batches;
  manifest.defaults.round_duration = 2 * kSecond;
  manifest.defaults.num_seeds = 12;
  manifest.defaults.seed = 0xF1EE7;
  return manifest;
}

// One fork-mode fleet run into a scratch workdir. crash_worker >= 0 arms the
// crash_after_batch hook on that worker's first incarnation, so the run also
// exercises detection + respawn + committed-stream replay.
Result run_fleet(int workers, int batches, int crash_worker) {
  const fs::path workdir =
      fs::temp_directory_path() /
      ("torpedo-bench-fleet-" + std::to_string(workers) +
       (crash_worker >= 0 ? "-crash" : ""));
  fs::remove_all(workdir);

  fleet::FleetConfig config;
  config.manifest = bench_manifest(workers, batches);
  config.workdir = workdir;  // empty worker_binary => fork mode
  if (crash_worker >= 0) {
    config.manifest.max_restarts = 2;
    config.test_crash_worker = crash_worker;
    config.test_crash_batch = 0;
  }
  fleet::Coordinator coordinator(std::move(config));

  const auto start = std::chrono::steady_clock::now();
  const fleet::Coordinator::Result fleet_result = coordinator.run();
  const auto end = std::chrono::steady_clock::now();

  Result result;
  result.workers = workers;
  result.ok = fleet_result.ok;
  result.restarts = fleet_result.restarts;
  result.executions = fleet_result.executions;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.merge_ms =
      static_cast<double>(fleet_result.merge_wall_ns) / 1e6;
  result.recovery_ms =
      static_cast<double>(fleet_result.max_recovery_wall_ns) / 1e6;
  result.hub = coordinator.ledger().stats();
  fs::remove_all(workdir);
  return result;
}

std::string result_json(const Result& r, double baseline_execs_per_sec) {
  telemetry::JsonDict d;
  d.set("workers", r.workers)
      .set("ok", r.ok)
      .set("restarts", r.restarts)
      .set("executions", r.executions)
      .set("wall_ms", r.wall_ms)
      .set("execs_per_sec", r.execs_per_sec())
      .set("speedup", baseline_execs_per_sec > 0
                          ? r.execs_per_sec() / baseline_execs_per_sec
                          : 0.0)
      .set("merge_wall_ms", r.merge_ms)
      .set("recovery_ms", r.recovery_ms)
      .set("hub_epochs", r.hub.epochs)
      .set("hub_published", r.hub.published)
      .set("hub_unique", r.hub.unique)
      .set("hub_merged", r.hub.merged)
      .set("hub_pulled", r.hub.pulled);
  return d.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 2;
  int max_workers = 4;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      batches = 1;
      max_workers = 2;
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-workers") == 0 && i + 1 < argc) {
      max_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet_scaling [--quick] [--batches N] "
                   "[--max-workers N] [--out FILE.json]\n");
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  bench::print_header("Fleet scaling",
                      "multi-process campaign throughput vs worker count");
  std::printf("host: %u hardware threads\n\n", cores);

  std::vector<Result> results;
  double baseline = 0;
  for (int workers : {1, 2, 4}) {
    if (workers > max_workers) break;
    const Result r = run_fleet(workers, batches, /*crash_worker=*/-1);
    if (workers == 1) baseline = r.execs_per_sec();
    std::printf("workers=%d: %.1f ms, %llu execs, %.0f execs/sec (%.2fx), "
                "merge %.1f ms, hub epochs=%llu pulled=%llu%s\n",
                workers, r.wall_ms,
                static_cast<unsigned long long>(r.executions),
                r.execs_per_sec(),
                baseline > 0 ? r.execs_per_sec() / baseline : 0.0,
                r.merge_ms, static_cast<unsigned long long>(r.hub.epochs),
                static_cast<unsigned long long>(r.hub.pulled),
                r.ok ? "" : "  [INCOMPLETE]");
    results.push_back(r);
  }

  if (results.empty()) {
    std::fprintf(stderr, "--max-workers must be >= 1\n");
    return 2;
  }

  // Restart probe: kill one of two workers mid-epoch via the deterministic
  // crash hook, measure failure-detection -> next publish of the respawn.
  const int probe_workers = std::min(2, max_workers);
  const Result probe = run_fleet(probe_workers, batches,
                                 /*crash_worker=*/probe_workers - 1);
  std::printf("restart probe: workers=%d, %d restart(s), recovery %.1f ms%s\n",
              probe.workers, probe.restarts, probe.recovery_ms,
              probe.ok ? "" : "  [INCOMPLETE]");

  std::string worker_array = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) worker_array += ",";
    worker_array += result_json(results[i], baseline);
  }
  worker_array += "]";

  telemetry::JsonDict json;
  json.set("bench", "fleet_scaling")
      .set("cores", static_cast<std::uint64_t>(cores))
      .set("batches", batches)
      .set_raw("worker_counts", worker_array)
      .set_raw("restart_probe", result_json(probe, baseline));

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json.to_string() << "\n";
  std::printf("wrote %s\n", out_path.c_str());

  bool ok = probe.ok && probe.restarts >= 1;
  for (const Result& r : results) ok = ok && r.ok;
  return ok ? 0 : 1;
}
