// Reproduces Table 4.3: "Collected Results from gVisor tests".
//
// The same campaign as Table 4.2 but with --runtime runsc. Expected results:
// none of the runC adversarial findings reproduce (the sentry services
// sync/signals/sockets internally), and fuzzing discovers open(2) container
// crashes: the flag-pattern panic and the multithreaded-collision race.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main(int argc, char** argv) {
  bench::print_header("Table 4.3", "Collected results from gVisor tests");

  core::CampaignConfig config;
  config.runtime = runtime::RuntimeKind::kGvisor;
  config.num_seeds = 24;
  config.batches = 12;
  if (argc > 1 && std::string(argv[1]) == "--quick") {
    config.batches = 3;
    config.num_seeds = 9;
    config.round_duration = 2 * kSecond;
    config.fuzzer.cycle_out_rounds = 4;
  }

  core::Campaign campaign(config);
  campaign.load_default_seeds();
  // The Moonshine corpus is open(2)-heavy — the paper attributes its gVisor
  // crash discoveries to "the relative prevalence of open(2) in the
  // Moonshine seeds" (§4.4.2). Mirror that bias.
  std::vector<prog::Program> open_heavy;
  for (int i = 0; i < 9; ++i) {
    open_heavy.push_back(*prog::Program::parse(
        "r0 = open('/lib/x86_64-linux-gnu/libc.so.6', 0x" +
        std::string(i % 3 == 0 ? "80000" : i % 3 == 1 ? "2" : "400") +
        ", 0x20)\n"
        "read(r0, '', 0x1000)\n"
        "lseek(r0, 0x0, 0x0)\n"
        "close(r0)\n"));
  }
  campaign.load_seeds(std::move(open_heavy));
  const core::CampaignReport report = campaign.run();

  std::printf(
      "campaign: %d batches, %d rounds, %llu program executions, corpus %zu, "
      "container crashes observed: %llu\n\n",
      report.batches, report.rounds,
      static_cast<unsigned long long>(report.executions), report.corpus_size,
      static_cast<unsigned long long>(campaign.engine().crashes()));

  std::puts("container-crash findings (Table 4.3):");
  std::fputs(bench::crashes_table(report).c_str(), stdout);

  std::puts("\ncrash-causing programs:");
  for (const core::CrashFinding& crash : report.crashes) {
    std::printf("-- %s (reproduced: %s) --\n%s", crash.message.c_str(),
                crash.reproduced ? "yes" : "no", crash.serialized.c_str());
  }

  std::puts("\nresource findings (paper: \"relatively uninteresting\"):");
  std::fputs(bench::findings_table(report).c_str(), stdout);

  std::printf(
      "\npaper reference rows: {open | container crash | invalid argument | "
      "likely},\n  {open | container crash | multithreaded collision | "
      "likely};\n  none of the runC adversarial rows reproduce on gVisor\n");
  return 0;
}
