// Parallel scaling bench: what sharding buys on a multi-core host.
//
// The paper's campaign is round-serialized — one thread, no matter the host
// (§3.4). ShardedCampaign lifts that ceiling with K independent campaign
// stacks trading corpus entries through the CorpusHub. This bench measures
// the lift: wall time, aggregate simulated executions per wall second, and
// speedup versus one shard, for shard counts {1, 2, 4, 8} (capped by
// --max-shards and by what fits the host). A final ablation re-runs the
// largest shard count with corpus sync off, so the hub's cost/benefit is a
// number, not a belief. Results land in BENCH_parallel.json; CI charts them
// and fails the build when the 4-shard speedup drops below its floor.
//
//   bench_parallel_scaling [--quick] [--batches N] [--max-shards N]
//                          [--out FILE.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sharded.h"
#include "telemetry/json.h"

using namespace torpedo;

namespace {

struct Result {
  int shards = 0;
  bool sync = true;
  int rounds = 0;
  std::uint64_t executions = 0;
  std::size_t findings = 0;
  std::size_t crashes = 0;
  std::size_t corpus = 0;
  double wall_ms = 0;
  feedback::CorpusHub::Stats hub;

  double execs_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(executions) / (wall_ms / 1000.0)
                       : 0;
  }
};

Result run_fleet(int shards, int batches, bool sync) {
  core::ShardedConfig config;
  config.base.batches = batches;
  config.base.round_duration = 2 * kSecond;
  config.base.fuzzer.cycle_out_rounds = 4;
  config.shards = shards;
  config.corpus_sync = sync;
  core::ShardedCampaign fleet(config);

  const auto start = std::chrono::steady_clock::now();
  const core::CampaignReport report = fleet.run();
  const auto end = std::chrono::steady_clock::now();

  Result result;
  result.shards = shards;
  result.sync = sync;
  result.rounds = report.rounds;
  result.executions = report.executions;
  result.findings = report.findings.size();
  result.crashes = report.crashes.size();
  result.corpus = report.corpus_size;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.hub = fleet.hub().stats();
  return result;
}

std::string result_json(const Result& r, double baseline_execs_per_sec) {
  telemetry::JsonDict d;
  d.set("shards", r.shards)
      .set("corpus_sync", r.sync)
      .set("rounds", r.rounds)
      .set("executions", r.executions)
      .set("findings", static_cast<std::uint64_t>(r.findings))
      .set("crashes", static_cast<std::uint64_t>(r.crashes))
      .set("corpus", static_cast<std::uint64_t>(r.corpus))
      .set("wall_ms", r.wall_ms)
      .set("execs_per_sec", r.execs_per_sec())
      .set("speedup", baseline_execs_per_sec > 0
                          ? r.execs_per_sec() / baseline_execs_per_sec
                          : 0.0)
      .set("hub_epochs", r.hub.epochs)
      .set("hub_published", r.hub.published)
      .set("hub_unique", r.hub.unique)
      .set("hub_merged", r.hub.merged)
      .set("hub_pulled", r.hub.pulled)
      .set("hub_denylist", static_cast<std::uint64_t>(r.hub.denylist_size));
  return d.to_string();
}

}  // namespace

int main(int argc, char** argv) {
  int batches = 2;
  int max_shards = 8;
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      batches = 1;
      max_shards = 2;
    } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-shards") == 0 && i + 1 < argc) {
      max_shards = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_parallel_scaling [--quick] [--batches N] "
                   "[--max-shards N] [--out FILE.json]\n");
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  bench::print_header("Parallel scaling",
                      "sharded campaign throughput vs shard count");
  std::printf("host: %u hardware threads\n\n", cores);

  std::vector<Result> results;
  double baseline = 0;
  for (int shards : {1, 2, 4, 8}) {
    if (shards > max_shards) break;
    const Result r = run_fleet(shards, batches, /*sync=*/true);
    if (shards == 1) baseline = r.execs_per_sec();
    std::printf("shards=%d: %.1f ms, %llu execs, %.0f execs/sec "
                "(%.2fx), %zu findings, hub epochs=%llu pulled=%llu\n",
                shards, r.wall_ms,
                static_cast<unsigned long long>(r.executions),
                r.execs_per_sec(),
                baseline > 0 ? r.execs_per_sec() / baseline : 0.0,
                r.findings, static_cast<unsigned long long>(r.hub.epochs),
                static_cast<unsigned long long>(r.hub.pulled));
    results.push_back(r);
  }

  if (results.empty()) {
    std::fprintf(stderr, "--max-shards must be >= 1\n");
    return 2;
  }

  // Ablation: the largest fleet again, corpus sync off. Isolated shards
  // skip the hub barrier but stop sharing discoveries.
  const Result no_sync =
      run_fleet(results.back().shards, batches, /*sync=*/false);
  std::printf("shards=%d sync=off: %.1f ms, %.0f execs/sec, %zu findings\n",
              no_sync.shards, no_sync.wall_ms, no_sync.execs_per_sec(),
              no_sync.findings);

  std::string shard_array = "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i) shard_array += ",";
    shard_array += result_json(results[i], baseline);
  }
  shard_array += "]";

  telemetry::JsonDict json;
  json.set("bench", "parallel_scaling")
      .set("cores", static_cast<std::uint64_t>(cores))
      .set("batches", batches)
      .set_raw("shard_counts", shard_array)
      .set_raw("sync_ablation", result_json(no_sync, baseline));

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << json.to_string() << "\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
