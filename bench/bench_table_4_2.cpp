// Reproduces Table 4.2: "Collected Results from runC Tests".
//
// Runs a full fuzzing campaign with the paper's §4.2 parameters (3 executor
// threads, 5-second rounds, 2.5% equivalence band, 1pp significance,
// 15-round cycle-out) over a Moonshine-like seed corpus, then prints the
// flagged / minimized / classified findings in the paper's table layout.
//
// Expected rows (by cause):
//   sync, fsync          -> triggering IO buffer flushes        (reconfirm)
//   rt_sigreturn, rseq   -> coredump via SIGSEGV                (reconfirm)
//   fallocate, ftruncate -> coredump via SIGXFSZ                (reconfirm)
//   socket               -> repeated kernel modprobe            (NEW)
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main(int argc, char** argv) {
  bench::print_header("Table 4.2", "Collected results from runC tests");

  core::CampaignConfig config;  // paper defaults
  config.num_seeds = 24;
  config.batches = 8;
  // Shorter campaigns for smoke runs: bench_table_4_2 --quick
  if (argc > 1 && std::string(argv[1]) == "--quick") {
    config.batches = 3;
    config.num_seeds = 9;
    config.round_duration = 2 * kSecond;
    config.fuzzer.cycle_out_rounds = 4;
  }

  core::Campaign campaign(config);
  campaign.load_default_seeds();
  const core::CampaignReport report = campaign.run();

  std::printf(
      "campaign: %d batches, %d rounds, %llu program executions, corpus %zu\n"
      "denylisted blocking syscalls:",
      report.batches, report.rounds,
      static_cast<unsigned long long>(report.executions), report.corpus_size);
  for (const std::string& d : report.denylist) std::printf(" %s", d.c_str());
  std::printf("\n\n");

  std::fputs(bench::findings_table(report).c_str(), stdout);

  std::puts("\nminimized adversarial programs:");
  for (const core::Finding& f : report.findings) {
    std::printf("-- %s (%s) --\n%s", f.syscall_list().c_str(),
                f.cause.c_str(), f.serialized.c_str());
  }

  std::printf(
      "\npaper reference rows: {sync,fsync | IO flush}, {rt_sigreturn | "
      "SIGSEGV dump},\n  {rseq | SIGSEGV dump}, {fallocate,ftruncate | "
      "SIGXFSZ dump}, {socket | modprobe, NEW}\n");
  return 0;
}
