// Reproduces Table A.1: "Standard Utilization for 3 Fuzzing Processes under
// runC" — the exact three programs from §A.1.1 for one 5-second observed
// round on the paper's 12-thread / 3-executor setup.
//
// Expected shape vs the paper: fuzzing cores 0-2 at ~83-87% busy with a
// system:user ratio near 3.5, the framework's softirq side-band on cpu3, and
// idle cores at ~4-7%.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"

using namespace torpedo;

int main() {
  bench::print_header(
      "Table A.1",
      "Baseline per-core utilization, 3 fuzzing processes under runC");

  core::CampaignConfig config;  // §4.2 defaults: 12 cores, 3 execs, T=5s
  core::Campaign campaign(config);

  const std::vector<prog::Program> programs = {
      *core::named_seed("appendix-a1-prog0"),
      *core::named_seed("appendix-a1-prog1"),
      *core::named_seed("appendix-a1-prog2"),
  };
  std::fputs(bench::program_listing(programs).c_str(), stdout);

  const observer::RoundResult& round = campaign.observer().run_round(programs);
  std::fputs(bench::utilization_table(round.observation).c_str(), stdout);

  std::printf(
      "\npaper reference: fuzz cores busy 83-87%%, USER ~85-100j, SYSTEM "
      "~336-357j,\n  SOFTIRQ side-band ~107j on cpu3, idle cores ~4.4-7%%, "
      "total 26.8%%\nmeasured:        total %.2f%%\n",
      round.observation.total_utilization());

  bool flagged = false;
  for (const auto& v : campaign.cpu_oracle().flag(round.observation)) {
    std::printf("unexpected CPU violation: %s\n", v.to_string().c_str());
    flagged = true;
  }
  if (!flagged) std::puts("oracle: baseline is clean (as in the paper)");
  return 0;
}
