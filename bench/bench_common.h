// Shared helpers for the table-reproduction benches: the appendix-style
// per-core utilization table and the Table-4.2/4.3-style findings tables.
#pragma once

#include <string>

#include "core/campaign.h"
#include "observer/observation.h"

namespace torpedo::bench {

// Renders one observed round exactly like the paper's Appendix A tables:
// CORE | BUSY | TOTAL | PERCENT | USER | NICE | SYSTEM | IDLE | IO WAIT |
// IRQ | SOFTIRQ | STEAL | GUEST | GUEST NICE.
std::string utilization_table(const observer::Observation& obs);

// Renders findings like Table 4.2: syscall(s) | Symptoms | Cause | New?.
std::string findings_table(const core::CampaignReport& report);

// Renders crashes like Table 4.3: syscall(s) | Symptoms | Cause | New?.
std::string crashes_table(const core::CampaignReport& report);

// Prints the programs of a round in the paper's "program N" style.
std::string program_listing(const std::vector<prog::Program>& programs);

// Standard bench header.
void print_header(const char* table, const char* description);

}  // namespace torpedo::bench
