// Ablation: round duration T (§3.4).
//
// "Too short of an interval is more easily disrupted by temporary 'noise
// spikes' from the host ... while longer intervals produce more useful
// measurements but significantly reduce program throughput. We settle on
// values ... typically between 3 and 5 [seconds]."
//
// This bench sweeps T over benign workloads under amplified host noise and
// reports the false-positive rate (rounds flagged despite benign programs)
// and the program throughput.
#include <cstdio>

#include "bench_common.h"
#include "core/seeds.h"
#include "util/strings.h"
#include "util/table.h"

using namespace torpedo;

int main() {
  bench::print_header("Ablation: round duration T (§3.4)",
                      "noise-induced false positives vs throughput");

  TextTable table({"T (s)", "rounds", "false positives", "FP rate",
                   "executions/s (per executor)"});

  for (const double seconds_t : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    core::CampaignConfig config;
    config.round_duration = seconds(seconds_t);
    // Spiky host: cron jobs / log rotation bursts (§3.4's disruptors).
    config.noise.mean_utilization = 0.05;
    config.noise.spike_chance = 0.06;
    config.noise.burst_min = 2 * kMillisecond;
    config.noise.burst_max = 16 * kMillisecond;
    core::Campaign campaign(config);

    const std::vector<prog::Program> benign = {
        *core::named_seed("appendix-a1-prog0"),
        *core::named_seed("appendix-a1-prog1"),
        *core::named_seed("appendix-a1-prog2"),
    };

    const int rounds = static_cast<int>(60.0 / seconds_t);  // fixed budget
    int false_positives = 0;
    std::uint64_t executions = 0;
    for (int r = 0; r < rounds; ++r) {
      const observer::RoundResult& rr = campaign.observer().run_round(benign);
      if (!campaign.cpu_oracle().flag(rr.observation).empty())
        ++false_positives;
      for (const exec::RunStats& s : rr.stats) executions += s.executions;
    }
    table.add_row(
        {format("%.0f", seconds_t), std::to_string(rounds),
         std::to_string(false_positives),
         format("%.1f%%", 100.0 * false_positives / rounds),
         format("%.0f", static_cast<double>(executions) /
                            (60.0 * 3.0))});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nexpected shape: FP rate falls as T grows (spikes average out);\n"
      "measurement overhead per executed program falls too, which is why\n"
      "the paper settles on T in [3, 5] seconds.");
  return 0;
}
