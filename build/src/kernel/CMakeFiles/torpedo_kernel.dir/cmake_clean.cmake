file(REMOVE_RECURSE
  "CMakeFiles/torpedo_kernel.dir/kernel.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/torpedo_kernel.dir/process.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/process.cpp.o.d"
  "CMakeFiles/torpedo_kernel.dir/procfs.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/procfs.cpp.o.d"
  "CMakeFiles/torpedo_kernel.dir/services.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/services.cpp.o.d"
  "CMakeFiles/torpedo_kernel.dir/syscalls.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/syscalls.cpp.o.d"
  "CMakeFiles/torpedo_kernel.dir/vfs.cpp.o"
  "CMakeFiles/torpedo_kernel.dir/vfs.cpp.o.d"
  "libtorpedo_kernel.a"
  "libtorpedo_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
