# Empty dependencies file for torpedo_kernel.
# This may be replaced when dependencies are built.
