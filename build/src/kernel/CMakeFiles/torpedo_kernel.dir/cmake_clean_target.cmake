file(REMOVE_RECURSE
  "libtorpedo_kernel.a"
)
