
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/process.cpp.o.d"
  "/root/repo/src/kernel/procfs.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/procfs.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/procfs.cpp.o.d"
  "/root/repo/src/kernel/services.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/services.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/services.cpp.o.d"
  "/root/repo/src/kernel/syscalls.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/syscalls.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/syscalls.cpp.o.d"
  "/root/repo/src/kernel/vfs.cpp" "src/kernel/CMakeFiles/torpedo_kernel.dir/vfs.cpp.o" "gcc" "src/kernel/CMakeFiles/torpedo_kernel.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/torpedo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/torpedo_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/torpedo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
