file(REMOVE_RECURSE
  "CMakeFiles/torpedo_runtime.dir/engine.cpp.o"
  "CMakeFiles/torpedo_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/torpedo_runtime.dir/gvisor.cpp.o"
  "CMakeFiles/torpedo_runtime.dir/gvisor.cpp.o.d"
  "CMakeFiles/torpedo_runtime.dir/runtime.cpp.o"
  "CMakeFiles/torpedo_runtime.dir/runtime.cpp.o.d"
  "libtorpedo_runtime.a"
  "libtorpedo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
