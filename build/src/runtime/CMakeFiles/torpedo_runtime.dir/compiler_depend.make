# Empty compiler generated dependencies file for torpedo_runtime.
# This may be replaced when dependencies are built.
