file(REMOVE_RECURSE
  "libtorpedo_runtime.a"
)
