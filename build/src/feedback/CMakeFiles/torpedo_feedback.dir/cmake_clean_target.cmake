file(REMOVE_RECURSE
  "libtorpedo_feedback.a"
)
