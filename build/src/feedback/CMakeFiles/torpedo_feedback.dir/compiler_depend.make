# Empty compiler generated dependencies file for torpedo_feedback.
# This may be replaced when dependencies are built.
