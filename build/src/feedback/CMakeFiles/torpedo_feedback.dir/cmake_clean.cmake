file(REMOVE_RECURSE
  "CMakeFiles/torpedo_feedback.dir/corpus.cpp.o"
  "CMakeFiles/torpedo_feedback.dir/corpus.cpp.o.d"
  "libtorpedo_feedback.a"
  "libtorpedo_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
