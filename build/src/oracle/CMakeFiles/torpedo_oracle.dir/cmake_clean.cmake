file(REMOVE_RECURSE
  "CMakeFiles/torpedo_oracle.dir/oracle.cpp.o"
  "CMakeFiles/torpedo_oracle.dir/oracle.cpp.o.d"
  "libtorpedo_oracle.a"
  "libtorpedo_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
