# Empty dependencies file for torpedo_oracle.
# This may be replaced when dependencies are built.
