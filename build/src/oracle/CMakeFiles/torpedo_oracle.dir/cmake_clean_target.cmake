file(REMOVE_RECURSE
  "libtorpedo_oracle.a"
)
