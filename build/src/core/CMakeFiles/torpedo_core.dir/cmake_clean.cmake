file(REMOVE_RECURSE
  "CMakeFiles/torpedo_core.dir/campaign.cpp.o"
  "CMakeFiles/torpedo_core.dir/campaign.cpp.o.d"
  "CMakeFiles/torpedo_core.dir/classify.cpp.o"
  "CMakeFiles/torpedo_core.dir/classify.cpp.o.d"
  "CMakeFiles/torpedo_core.dir/fuzzer.cpp.o"
  "CMakeFiles/torpedo_core.dir/fuzzer.cpp.o.d"
  "CMakeFiles/torpedo_core.dir/minimize.cpp.o"
  "CMakeFiles/torpedo_core.dir/minimize.cpp.o.d"
  "CMakeFiles/torpedo_core.dir/seeds.cpp.o"
  "CMakeFiles/torpedo_core.dir/seeds.cpp.o.d"
  "CMakeFiles/torpedo_core.dir/workdir.cpp.o"
  "CMakeFiles/torpedo_core.dir/workdir.cpp.o.d"
  "libtorpedo_core.a"
  "libtorpedo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
