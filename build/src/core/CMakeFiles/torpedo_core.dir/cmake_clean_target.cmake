file(REMOVE_RECURSE
  "libtorpedo_core.a"
)
