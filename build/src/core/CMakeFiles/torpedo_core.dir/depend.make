# Empty dependencies file for torpedo_core.
# This may be replaced when dependencies are built.
