file(REMOVE_RECURSE
  "CMakeFiles/torpedo_util.dir/log.cpp.o"
  "CMakeFiles/torpedo_util.dir/log.cpp.o.d"
  "CMakeFiles/torpedo_util.dir/rng.cpp.o"
  "CMakeFiles/torpedo_util.dir/rng.cpp.o.d"
  "CMakeFiles/torpedo_util.dir/strings.cpp.o"
  "CMakeFiles/torpedo_util.dir/strings.cpp.o.d"
  "CMakeFiles/torpedo_util.dir/table.cpp.o"
  "CMakeFiles/torpedo_util.dir/table.cpp.o.d"
  "libtorpedo_util.a"
  "libtorpedo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
