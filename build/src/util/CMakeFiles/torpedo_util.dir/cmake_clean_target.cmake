file(REMOVE_RECURSE
  "libtorpedo_util.a"
)
