# Empty dependencies file for torpedo_util.
# This may be replaced when dependencies are built.
