file(REMOVE_RECURSE
  "libtorpedo_sim.a"
)
