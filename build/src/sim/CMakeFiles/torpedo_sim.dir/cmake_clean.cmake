file(REMOVE_RECURSE
  "CMakeFiles/torpedo_sim.dir/host.cpp.o"
  "CMakeFiles/torpedo_sim.dir/host.cpp.o.d"
  "CMakeFiles/torpedo_sim.dir/noise.cpp.o"
  "CMakeFiles/torpedo_sim.dir/noise.cpp.o.d"
  "libtorpedo_sim.a"
  "libtorpedo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
