# Empty dependencies file for torpedo_sim.
# This may be replaced when dependencies are built.
