
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prog/desc.cpp" "src/prog/CMakeFiles/torpedo_prog.dir/desc.cpp.o" "gcc" "src/prog/CMakeFiles/torpedo_prog.dir/desc.cpp.o.d"
  "/root/repo/src/prog/generate.cpp" "src/prog/CMakeFiles/torpedo_prog.dir/generate.cpp.o" "gcc" "src/prog/CMakeFiles/torpedo_prog.dir/generate.cpp.o.d"
  "/root/repo/src/prog/mutate.cpp" "src/prog/CMakeFiles/torpedo_prog.dir/mutate.cpp.o" "gcc" "src/prog/CMakeFiles/torpedo_prog.dir/mutate.cpp.o.d"
  "/root/repo/src/prog/program.cpp" "src/prog/CMakeFiles/torpedo_prog.dir/program.cpp.o" "gcc" "src/prog/CMakeFiles/torpedo_prog.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/torpedo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/torpedo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/torpedo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/torpedo_cgroup.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
