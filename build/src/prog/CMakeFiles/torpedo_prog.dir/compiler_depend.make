# Empty compiler generated dependencies file for torpedo_prog.
# This may be replaced when dependencies are built.
