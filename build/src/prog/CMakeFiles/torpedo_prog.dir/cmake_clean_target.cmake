file(REMOVE_RECURSE
  "libtorpedo_prog.a"
)
