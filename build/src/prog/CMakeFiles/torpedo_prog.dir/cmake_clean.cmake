file(REMOVE_RECURSE
  "CMakeFiles/torpedo_prog.dir/desc.cpp.o"
  "CMakeFiles/torpedo_prog.dir/desc.cpp.o.d"
  "CMakeFiles/torpedo_prog.dir/generate.cpp.o"
  "CMakeFiles/torpedo_prog.dir/generate.cpp.o.d"
  "CMakeFiles/torpedo_prog.dir/mutate.cpp.o"
  "CMakeFiles/torpedo_prog.dir/mutate.cpp.o.d"
  "CMakeFiles/torpedo_prog.dir/program.cpp.o"
  "CMakeFiles/torpedo_prog.dir/program.cpp.o.d"
  "libtorpedo_prog.a"
  "libtorpedo_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
