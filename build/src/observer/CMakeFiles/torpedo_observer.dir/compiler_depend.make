# Empty compiler generated dependencies file for torpedo_observer.
# This may be replaced when dependencies are built.
