file(REMOVE_RECURSE
  "libtorpedo_observer.a"
)
