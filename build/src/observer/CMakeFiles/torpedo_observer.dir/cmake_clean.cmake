file(REMOVE_RECURSE
  "CMakeFiles/torpedo_observer.dir/observer.cpp.o"
  "CMakeFiles/torpedo_observer.dir/observer.cpp.o.d"
  "libtorpedo_observer.a"
  "libtorpedo_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
