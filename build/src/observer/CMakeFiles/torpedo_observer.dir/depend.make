# Empty dependencies file for torpedo_observer.
# This may be replaced when dependencies are built.
