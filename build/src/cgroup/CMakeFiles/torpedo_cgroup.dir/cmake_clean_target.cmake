file(REMOVE_RECURSE
  "libtorpedo_cgroup.a"
)
