# Empty compiler generated dependencies file for torpedo_cgroup.
# This may be replaced when dependencies are built.
