file(REMOVE_RECURSE
  "CMakeFiles/torpedo_cgroup.dir/cgroup.cpp.o"
  "CMakeFiles/torpedo_cgroup.dir/cgroup.cpp.o.d"
  "CMakeFiles/torpedo_cgroup.dir/cpuset.cpp.o"
  "CMakeFiles/torpedo_cgroup.dir/cpuset.cpp.o.d"
  "libtorpedo_cgroup.a"
  "libtorpedo_cgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_cgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
