
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgroup/cgroup.cpp" "src/cgroup/CMakeFiles/torpedo_cgroup.dir/cgroup.cpp.o" "gcc" "src/cgroup/CMakeFiles/torpedo_cgroup.dir/cgroup.cpp.o.d"
  "/root/repo/src/cgroup/cpuset.cpp" "src/cgroup/CMakeFiles/torpedo_cgroup.dir/cpuset.cpp.o" "gcc" "src/cgroup/CMakeFiles/torpedo_cgroup.dir/cpuset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/torpedo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
