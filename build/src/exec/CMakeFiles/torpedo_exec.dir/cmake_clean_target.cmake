file(REMOVE_RECURSE
  "libtorpedo_exec.a"
)
