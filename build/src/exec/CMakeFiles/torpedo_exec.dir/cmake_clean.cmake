file(REMOVE_RECURSE
  "CMakeFiles/torpedo_exec.dir/executor.cpp.o"
  "CMakeFiles/torpedo_exec.dir/executor.cpp.o.d"
  "libtorpedo_exec.a"
  "libtorpedo_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
