# Empty dependencies file for torpedo_exec.
# This may be replaced when dependencies are built.
