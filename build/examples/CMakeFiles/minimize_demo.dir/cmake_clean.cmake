file(REMOVE_RECURSE
  "CMakeFiles/minimize_demo.dir/minimize_demo.cpp.o"
  "CMakeFiles/minimize_demo.dir/minimize_demo.cpp.o.d"
  "minimize_demo"
  "minimize_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimize_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
