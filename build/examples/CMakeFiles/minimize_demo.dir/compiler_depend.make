# Empty compiler generated dependencies file for minimize_demo.
# This may be replaced when dependencies are built.
