# Empty dependencies file for gvisor_crash.
# This may be replaced when dependencies are built.
