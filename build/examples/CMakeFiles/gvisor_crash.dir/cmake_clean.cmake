file(REMOVE_RECURSE
  "CMakeFiles/gvisor_crash.dir/gvisor_crash.cpp.o"
  "CMakeFiles/gvisor_crash.dir/gvisor_crash.cpp.o.d"
  "gvisor_crash"
  "gvisor_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvisor_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
