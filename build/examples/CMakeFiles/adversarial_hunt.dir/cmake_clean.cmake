file(REMOVE_RECURSE
  "CMakeFiles/adversarial_hunt.dir/adversarial_hunt.cpp.o"
  "CMakeFiles/adversarial_hunt.dir/adversarial_hunt.cpp.o.d"
  "adversarial_hunt"
  "adversarial_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
