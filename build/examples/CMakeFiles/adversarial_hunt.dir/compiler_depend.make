# Empty compiler generated dependencies file for adversarial_hunt.
# This may be replaced when dependencies are built.
