# Empty compiler generated dependencies file for torpedo_bench_common.
# This may be replaced when dependencies are built.
