file(REMOVE_RECURSE
  "CMakeFiles/torpedo_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/torpedo_bench_common.dir/bench_common.cpp.o.d"
  "libtorpedo_bench_common.a"
  "libtorpedo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
