file(REMOVE_RECURSE
  "libtorpedo_bench_common.a"
)
