
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_round_duration.cpp" "bench/CMakeFiles/bench_ablation_round_duration.dir/bench_ablation_round_duration.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_round_duration.dir/bench_ablation_round_duration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/torpedo_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/torpedo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/oracle/CMakeFiles/torpedo_oracle.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/torpedo_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/torpedo_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/torpedo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/torpedo_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/torpedo_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/torpedo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/torpedo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cgroup/CMakeFiles/torpedo_cgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/torpedo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
