# Empty dependencies file for bench_ablation_round_duration.
# This may be replaced when dependencies are built.
