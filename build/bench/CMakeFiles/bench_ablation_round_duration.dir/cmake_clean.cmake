file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_round_duration.dir/bench_ablation_round_duration.cpp.o"
  "CMakeFiles/bench_ablation_round_duration.dir/bench_ablation_round_duration.cpp.o.d"
  "bench_ablation_round_duration"
  "bench_ablation_round_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_round_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
