file(REMOVE_RECURSE
  "CMakeFiles/bench_table_a3.dir/bench_table_a3.cpp.o"
  "CMakeFiles/bench_table_a3.dir/bench_table_a3.cpp.o.d"
  "bench_table_a3"
  "bench_table_a3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_a3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
