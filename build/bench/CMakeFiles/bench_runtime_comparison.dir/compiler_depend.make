# Empty compiler generated dependencies file for bench_runtime_comparison.
# This may be replaced when dependencies are built.
