file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_comparison.dir/bench_runtime_comparison.cpp.o"
  "CMakeFiles/bench_runtime_comparison.dir/bench_runtime_comparison.cpp.o.d"
  "bench_runtime_comparison"
  "bench_runtime_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
