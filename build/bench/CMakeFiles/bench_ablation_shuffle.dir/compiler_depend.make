# Empty compiler generated dependencies file for bench_ablation_shuffle.
# This may be replaced when dependencies are built.
