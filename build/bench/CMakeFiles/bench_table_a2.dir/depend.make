# Empty dependencies file for bench_table_a2.
# This may be replaced when dependencies are built.
