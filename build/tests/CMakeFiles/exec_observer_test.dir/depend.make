# Empty dependencies file for exec_observer_test.
# This may be replaced when dependencies are built.
