file(REMOVE_RECURSE
  "CMakeFiles/exec_observer_test.dir/exec_observer_test.cpp.o"
  "CMakeFiles/exec_observer_test.dir/exec_observer_test.cpp.o.d"
  "exec_observer_test"
  "exec_observer_test.pdb"
  "exec_observer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
