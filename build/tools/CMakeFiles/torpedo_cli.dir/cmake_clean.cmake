file(REMOVE_RECURSE
  "CMakeFiles/torpedo_cli.dir/torpedo.cpp.o"
  "CMakeFiles/torpedo_cli.dir/torpedo.cpp.o.d"
  "torpedo"
  "torpedo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torpedo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
