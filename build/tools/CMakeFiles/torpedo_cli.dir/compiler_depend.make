# Empty compiler generated dependencies file for torpedo_cli.
# This may be replaced when dependencies are built.
