// Fleet workdir merge: folds N per-worker workdirs into one merged workdir
// with the exact artifact byte formats `torpedo report`, `stats`, and `diff`
// already consume — a fleet campaign's output is indistinguishable from a
// big sharded run's.
//
// Sources of truth:
//   * corpus.txt       rebuilt from the coordinator's CorpusLedger, not the
//                      worker files: every entry passed through the ledger
//                      (workers publish after every batch including the
//                      last), and the wire codec preserves the coverage
//                      signal that a corpus.txt round-trip would lose.
//   * report.txt       block-level merge of the worker reports: summed
//                      header, finding blocks worker-major, crash blocks
//                      deduplicated by message (ShardedCampaign::merge's
//                      policy at the file level).
//   * violations/      bundle directories copied worker-major and renumbered
//                      (bundle.json ids and report.md titles rewritten).
//   * clusters.json    recomputed over the merged bundles via
//                      triage_workdir — same clustering the in-process
//                      sharded path gets.
//   * profile/efficacy per-key counter sums in canonical key order.
//   * timeseries.jsonl worker-major concatenation; every line gains a
//                      "worker" field.
//   * campaign.json    the fleet defaults manifest with fleet_workers > 0,
//                      which routes `torpedo selftest --replay` to the fleet
//                      regeneration path.
#pragma once

#include <filesystem>
#include <vector>

#include "feedback/corpus_hub.h"
#include "fleet/manifest.h"

namespace torpedo::fleet {

struct MergeOptions {
  std::filesystem::path workdir;  // merged root; workers live underneath
  // Completed workers' directories in worker-id order (the directory name
  // is the worker id). Failed workers are excluded — their artifacts are
  // partial — but their published corpus survives through the ledger.
  std::vector<std::filesystem::path> worker_dirs;
  const feedback::CorpusLedger* ledger = nullptr;
  const Manifest* manifest = nullptr;
};

// Writes the merged artifact set into options.workdir. Missing per-worker
// files are tolerated (skipped); returns false only when a merged artifact
// cannot be written.
bool merge_workdir(const MergeOptions& options);

}  // namespace torpedo::fleet
