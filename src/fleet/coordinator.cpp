#include "fleet/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <optional>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "feedback/wire.h"
#include "fleet/merge.h"
#include "telemetry/aggregate.h"
#include "telemetry/json.h"
#include "telemetry/monitor.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/log.h"
#include "util/strings.h"

namespace torpedo::fleet {

namespace {

constexpr int kPollTimeoutMs = 50;
constexpr Nanos kStatusWritePeriod = 250 * kMillisecond;

// Blocking full write on a non-blocking fd: waits for POLLOUT on EAGAIN.
// Workers block in recv_frame whenever a delta is owed, so in practice the
// buffer drains immediately; the wait is a safety net, not a steady state.
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::write(fd, data, n);
    if (sent > 0) {
      data += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 5000);
      continue;
    }
    return false;
  }
  return true;
}

bool send_frame_nb(int fd, FrameType type, std::string_view payload) {
  const std::string frame = encode_frame(type, payload);
  return send_all(fd, frame.data(), frame.size());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

std::string_view worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::kNotStarted: return "not-started";
    case WorkerState::kRunning: return "running";
    case WorkerState::kStalled: return "stalled";
    case WorkerState::kFailed: return "failed";
    case WorkerState::kCompleted: return "completed";
  }
  return "?";
}

struct Coordinator::Connection {
  int fd = -1;
  int worker = -1;  // unknown until the kHello frame
  FrameBuffer buf;
};

Coordinator::Coordinator(FleetConfig config) : config_(std::move(config)) {
  TORPEDO_CHECK(config_.manifest.workers > 0);
  const int n = config_.manifest.workers;
  ledger_ = std::make_unique<feedback::CorpusLedger>(n);
  workers_.resize(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) workers_[static_cast<std::size_t>(w)].id = w;
  awaiting_delta_.assign(static_cast<std::size_t>(n), false);
  failure_detected_ns_.assign(static_cast<std::size_t>(n), 0);
  // Fork mode calls worker_main() in a fork child with no exec, which is
  // only safe while this process is single-threaded — no monitor thread.
  if (config_.worker_binary.empty()) config_.coordinator_monitor_port = -1;
}

Coordinator::~Coordinator() {
  for (auto& conn : conns_)
    if (conn->fd >= 0) ::close(conn->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

bool Coordinator::setup_listener() {
  socket_path_ = config_.workdir / "fleet.sock";
  sockaddr_un addr{};
  // sun_path is ~108 bytes; deep build/test directories overflow it, so
  // fall back to a /tmp rendezvous (the path, not the workdir, is private
  // to this fleet).
  if (socket_path_.string().size() >= sizeof(addr.sun_path) - 1)
    socket_path_ = std::filesystem::temp_directory_path() /
                   format("torpedo-fleet-%d.sock", static_cast<int>(getpid()));
  ::unlink(socket_path_.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  set_cloexec(listen_fd_);
  set_nonblocking(listen_fd_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.manifest.workers + 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

WorkerOptions Coordinator::worker_options(int worker) const {
  WorkerOptions opts;
  opts.worker_id = worker;
  opts.socket_path = socket_path_.string();
  opts.config = config_.manifest.worker_config(worker);
  opts.workdir = config_.workdir / "workers" / std::to_string(worker);
  opts.seeds_dir = config_.manifest.defaults.seeds_dir;
  opts.cpuset = config_.manifest.worker_cpuset(worker);
  opts.monitor_port = config_.worker_monitor_port;
  opts.verbose = config_.verbose;
  return opts;
}

bool Coordinator::spawn_worker(int worker) {
  const std::size_t wi = static_cast<std::size_t>(worker);
  WorkerOptions opts = worker_options(worker);
  if (worker == config_.test_crash_worker && workers_[wi].restarts == 0)
    opts.crash_after_batch = config_.test_crash_batch;

  std::error_code ec;
  std::filesystem::create_directories(opts.workdir, ec);

  // Exec mode: build argv (and open-path strings) before fork so the child
  // touches no allocator between fork and exec.
  std::vector<std::string> args;
  if (!config_.worker_binary.empty()) {
    args = {config_.worker_binary,
            "run",
            "--fleet-socket",
            opts.socket_path,
            "--fleet-worker",
            std::to_string(worker),
            "--fleet-manifest",
            (config_.workdir / "fleet.json").string(),
            "--workdir",
            opts.workdir.string()};
    if (config_.worker_monitor_port >= 0) {
      args.emplace_back("--monitor-port");
      args.emplace_back(std::to_string(config_.worker_monitor_port));
    }
    if (config_.verbose) args.emplace_back("-v");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const std::string log_path = (opts.workdir / "log.txt").string();

  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    if (!config_.worker_binary.empty()) {
      const int log_fd =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, STDOUT_FILENO);
        ::dup2(log_fd, STDERR_FILENO);
        if (log_fd > STDERR_FILENO) ::close(log_fd);
      }
      ::execv(argv[0], argv.data());
      _exit(127);
    }
    // Fork mode: run the worker in this child directly. Drop the parent's
    // coordinator fds first — the worker owns only its own client socket.
    if (listen_fd_ >= 0) ::close(listen_fd_);
    for (auto& conn : conns_)
      if (conn->fd >= 0) ::close(conn->fd);
    _exit(worker_main(opts));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    WorkerStatus& st = workers_[wi];
    st.pid = pid;
    st.state = WorkerState::kRunning;
    st.done_frame = false;
  }
  TORPEDO_LOG(LogLevel::kInfo, "fleet: worker %d spawned (pid %d)", worker,
              static_cast<int>(pid));
  return true;
}

void Coordinator::accept_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing (more) to accept
    set_cloexec(fd);
    set_nonblocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conns_.push_back(std::move(conn));
  }
}

void Coordinator::worker_left(int worker) {
  if (ledger_->left(worker)) return;
  if (ledger_->leave(worker)) flush_deltas();
}

void Coordinator::flush_deltas() {
  for (int w = 0; w < config_.manifest.workers; ++w) {
    const std::size_t wi = static_cast<std::size_t>(w);
    if (!awaiting_delta_[wi]) continue;
    // Find the live connection for this worker.
    Connection* conn = nullptr;
    for (auto& c : conns_)
      if (c->worker == w && c->fd >= 0) conn = c.get();
    if (conn == nullptr) continue;  // died mid-epoch; leave() dropped it
    feedback::CorpusDelta delta = ledger_->pull(w);
    feedback::DeltaBody body;
    body.epoch = delta.epoch;
    body.entries = std::move(delta.entries);
    body.denylist = std::move(delta.denylist);
    awaiting_delta_[wi] = false;
    if (!send_frame_nb(conn->fd, FrameType::kDelta,
                       feedback::encode_delta(body))) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
}

void Coordinator::handle_frame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      feedback::WireReader r(frame.payload);
      const std::uint32_t version = r.u32();
      const std::uint32_t id = r.u32();
      if (!r.at_end() || version != 1 ||
          id >= static_cast<std::uint32_t>(config_.manifest.workers)) {
        ::close(conn.fd);
        conn.fd = -1;
        return;
      }
      conn.worker = static_cast<int>(id);
      // A restarted worker rejoins the barrier; its cursor rewinds so the
      // first pull replays the whole committed stream (the checkpoint).
      if (ledger_->left(conn.worker)) ledger_->rejoin(conn.worker);
      return;
    }
    case FrameType::kPublish: {
      if (conn.worker < 0) break;
      auto body = feedback::decode_publish(frame.payload);
      if (!body) break;
      const std::size_t wi = static_cast<std::size_t>(conn.worker);
      if (failure_detected_ns_[wi] != 0) {
        const Nanos rec = telemetry::steady_now_ns() - failure_detected_ns_[wi];
        failure_detected_ns_[wi] = 0;
        max_recovery_ns_ = std::max(max_recovery_ns_, rec);
        std::lock_guard<std::mutex> lock(mu_);
        workers_[wi].recovery_wall_ns = rec;
      }
      ledger_->publish(conn.worker, std::move(body->entries),
                       std::move(body->denylist));
      awaiting_delta_[wi] = true;
      if (ledger_->epoch_ready()) {
        ledger_->commit_epoch();
        flush_deltas();
      }
      return;
    }
    case FrameType::kDone: {
      if (conn.worker < 0) break;
      feedback::WireReader r(frame.payload);
      WorkerStatus totals;
      totals.batches = static_cast<int>(r.u32());
      totals.rounds = static_cast<int>(r.u32());
      totals.executions = r.u64();
      totals.corpus = r.u64();
      totals.findings = r.u64();
      totals.crashes = r.u64();
      if (r.at_end()) {
        std::lock_guard<std::mutex> lock(mu_);
        WorkerStatus& st = workers_[static_cast<std::size_t>(conn.worker)];
        st.done_frame = true;
        st.batches = totals.batches;
        st.rounds = totals.rounds;
        st.executions = totals.executions;
        st.corpus = totals.corpus;
        st.findings = totals.findings;
        st.crashes = totals.crashes;
      }
      worker_left(conn.worker);
      return;
    }
    case FrameType::kDelta:
      break;  // coordinator never receives deltas
  }
  // Protocol violation: drop the peer; the reaper decides what it means.
  ::close(conn.fd);
  conn.fd = -1;
}

void Coordinator::read_connection(std::size_t index) {
  Connection& conn = *conns_[index];
  char buf[65536];
  for (;;) {
    const ssize_t got = ::read(conn.fd, buf, sizeof(buf));
    if (got > 0) {
      conn.buf.append(buf, static_cast<std::size_t>(got));
      if (static_cast<std::size_t>(got) < sizeof(buf)) break;
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error: the worker is gone from the socket's point of
    // view. If it never sent kDone this drops its pending publication so
    // the survivors' barrier cannot stall.
    ::close(conn.fd);
    conn.fd = -1;
    if (conn.worker >= 0) {
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        done = workers_[static_cast<std::size_t>(conn.worker)].done_frame;
      }
      if (!done) worker_left(conn.worker);
    }
    return;
  }
  Frame frame;
  while (conn.fd >= 0 && conn.buf.next(&frame)) handle_frame(conn, frame);
  if (conn.fd >= 0 && conn.buf.error()) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void Coordinator::fail_worker(int worker) {
  const std::size_t wi = static_cast<std::size_t>(worker);
  worker_left(worker);
  int restarts = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    restarts = workers_[wi].restarts;
  }
  if (restarts < config_.manifest.max_restarts) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_[wi].restarts;
    }
    ++total_restarts_;
    failure_detected_ns_[wi] = telemetry::steady_now_ns();
    TORPEDO_LOG(LogLevel::kWarn, "fleet: worker %d died, restarting (%d/%d)",
                worker, restarts + 1, config_.manifest.max_restarts);
    if (!spawn_worker(worker)) {
      std::lock_guard<std::mutex> lock(mu_);
      workers_[wi].state = WorkerState::kFailed;
    }
  } else {
    TORPEDO_LOG(LogLevel::kError,
                "fleet: worker %d died, restart budget exhausted", worker);
    std::lock_guard<std::mutex> lock(mu_);
    workers_[wi].state = WorkerState::kFailed;
    workers_[wi].pid = -1;
  }
}

void Coordinator::reap_children() {
  for (;;) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) return;
    int worker = -1;
    bool done_frame = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (WorkerStatus& st : workers_) {
        if (st.pid != pid) continue;
        worker = st.id;
        done_frame = st.done_frame;
        st.pid = -1;
        break;
      }
    }
    if (worker < 0) continue;  // not ours (cannot happen in practice)
    const bool clean =
        WIFEXITED(status) && WEXITSTATUS(status) == 0 && done_frame;
    if (clean) {
      std::lock_guard<std::mutex> lock(mu_);
      workers_[static_cast<std::size_t>(worker)].state =
          WorkerState::kCompleted;
      TORPEDO_LOG(LogLevel::kInfo, "fleet: worker %d completed", worker);
    } else {
      fail_worker(worker);
    }
  }
}

void Coordinator::scan_heartbeats() {
  const std::int64_t now_wall = telemetry::wall_now_ns();
  for (int w = 0; w < config_.manifest.workers; ++w) {
    const std::size_t wi = static_cast<std::size_t>(w);
    const std::filesystem::path hb =
        config_.workdir / "workers" / std::to_string(w) / "heartbeat.json";
    std::ifstream in(hb);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto object = telemetry::parse_json_object(trim(buffer.str()));
    if (!object) continue;

    std::int64_t wall = 0;
    std::uint64_t executions = 0;
    int monitor_port = -1;
    if (auto it = object->find("wall_ns"); it != object->end())
      wall = it->second.integer;
    if (auto it = object->find("executions"); it != object->end())
      executions = static_cast<std::uint64_t>(it->second.integer);
    if (auto it = object->find("monitor_port"); it != object->end())
      monitor_port = static_cast<int>(it->second.integer);

    std::lock_guard<std::mutex> lock(mu_);
    WorkerStatus& st = workers_[wi];
    st.heartbeat_wall_ns = wall;
    if (monitor_port > 0) st.monitor_port = monitor_port;
    if (!st.done_frame && executions > st.executions)
      st.executions = executions;
    // Stall detection: a live worker whose heartbeat went quiet. Recovery
    // (a fresh stamp) flips it straight back to running.
    if (st.state == WorkerState::kRunning &&
        now_wall - wall > config_.stall_budget_wall_ns) {
      st.state = WorkerState::kStalled;
      TORPEDO_LOG(LogLevel::kWarn, "fleet: worker %d heartbeat stalled", w);
    } else if (st.state == WorkerState::kStalled &&
               now_wall - wall <= config_.stall_budget_wall_ns) {
      st.state = WorkerState::kRunning;
    }
  }
}

std::vector<WorkerStatus> Coordinator::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_;
}

std::string Coordinator::fleet_status_json() const {
  std::vector<WorkerStatus> snapshot = workers();
  // The ledger is only touched by the coordinator loop; its counters are
  // read here as plain loads (the /fleet endpoint serves the file the loop
  // writes, not this function, so cross-thread reads never happen).
  const feedback::CorpusLedger::Stats& stats = ledger_->stats();
  telemetry::JsonDict doc;
  doc.set("wall_ns", telemetry::wall_now_ns())
      .set("workers", config_.manifest.workers)
      .set("epoch", ledger_->epoch())
      .set("active", ledger_->active())
      .set("restarts", total_restarts_)
      .set("hub_published", stats.published)
      .set("hub_unique", stats.unique)
      .set("hub_merged", stats.merged)
      .set("hub_pulled", stats.pulled)
      .set("denylist", stats.denylist_size);
  std::string array = "[";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const WorkerStatus& st = snapshot[i];
    telemetry::JsonDict d;
    d.set("id", st.id)
        .set("state", worker_state_name(st.state))
        .set("pid", static_cast<std::int64_t>(st.pid))
        .set("restarts", st.restarts)
        .set("done", st.done_frame)
        .set("monitor_port", st.monitor_port)
        .set("executions", st.executions)
        .set("heartbeat_wall_ns", st.heartbeat_wall_ns)
        .set("batches", st.batches)
        .set("rounds", st.rounds)
        .set("corpus", st.corpus)
        .set("findings", st.findings)
        .set("crashes", st.crashes);
    if (i) array += ",";
    array += d.to_string();
  }
  array += "]";
  doc.set_raw("worker_states", array);
  return doc.to_string();
}

void Coordinator::write_fleet_status() const {
  const std::filesystem::path path = config_.workdir / "fleet_status.json";
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << fleet_status_json() << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

bool Coordinator::all_terminal() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const WorkerStatus& st : workers_) {
    if (st.state == WorkerState::kCompleted) continue;
    if (st.state == WorkerState::kFailed && st.pid < 0) continue;
    return false;
  }
  return true;
}

Coordinator::Result Coordinator::run() {
  Result result;
  std::error_code ec;
  std::filesystem::create_directories(config_.workdir / "workers", ec);
  save_manifest(config_.workdir / "fleet.json", config_.manifest);
  if (!setup_listener()) {
    TORPEDO_LOG(LogLevel::kError, "fleet: cannot bind %s",
                socket_path_.c_str());
    return result;
  }

  // Coordinator-side monitor (exec mode only): one scrape target for the
  // whole fleet. /metrics re-labels every live worker's exposition with
  // {worker="k"}; /fleet serves the same JSON as fleet_status.json.
  std::optional<telemetry::MonitorServer> monitor;
  if (config_.coordinator_monitor_port >= 0) {
    telemetry::MonitorServer::Config mon_config;
    mon_config.port = config_.coordinator_monitor_port;
    monitor.emplace(mon_config);
    monitor->set_extra_metrics([this] {
      std::vector<std::pair<int, std::string>> expositions;
      for (const WorkerStatus& st : workers()) {
        if (st.monitor_port <= 0 || st.pid < 0) continue;
        const std::string response =
            telemetry::http_get(st.monitor_port, "/metrics");
        const std::string_view body = telemetry::http_body(response);
        if (!body.empty()) expositions.emplace_back(st.id, std::string(body));
      }
      return telemetry::aggregate_expositions(expositions);
    });
    monitor->add_json_endpoint("/fleet", [this](std::string_view) {
      std::ifstream in(config_.workdir / "fleet_status.json");
      if (!in) return std::optional<std::string>{};
      std::stringstream buffer;
      buffer << in.rdbuf();
      return std::optional<std::string>(std::string(trim(buffer.str())));
    });
    if (monitor->start()) {
      TORPEDO_LOG(LogLevel::kInfo, "fleet: monitor on port %d",
                  monitor->port());
    } else {
      monitor.reset();
    }
  }

  for (int w = 0; w < config_.manifest.workers; ++w) {
    if (!spawn_worker(w)) {
      std::lock_guard<std::mutex> lock(mu_);
      workers_[static_cast<std::size_t>(w)].state = WorkerState::kFailed;
    }
  }

  Nanos last_status = 0;
  while (!all_terminal()) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> conn_index;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i]->fd < 0) continue;
      fds.push_back({conns_[i]->fd, POLLIN, 0});
      conn_index.push_back(i);
    }
    const int ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    if (ready > 0) {
      if ((fds[0].revents & POLLIN) != 0) accept_connections();
      for (std::size_t i = 1; i < fds.size(); ++i)
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
          read_connection(conn_index[i - 1]);
    }
    // Drop closed connections.
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const auto& c) { return c->fd < 0; }),
                 conns_.end());
    reap_children();
    scan_heartbeats();
    const Nanos now = telemetry::steady_now_ns();
    if (now - last_status >= kStatusWritePeriod) {
      write_fleet_status();
      last_status = now;
    }
  }
  write_fleet_status();
  if (monitor) monitor->stop();

  std::vector<std::filesystem::path> completed_dirs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const WorkerStatus& st : workers_) {
      if (st.state == WorkerState::kCompleted) {
        ++result.completed;
        result.executions += st.executions;
        completed_dirs.push_back(config_.workdir / "workers" /
                                 std::to_string(st.id));
      } else {
        ++result.failed;
      }
    }
    result.restarts = total_restarts_;
    result.max_recovery_wall_ns = max_recovery_ns_;
  }

  const Nanos merge_start = telemetry::steady_now_ns();
  MergeOptions merge;
  merge.workdir = config_.workdir;
  merge.worker_dirs = std::move(completed_dirs);
  merge.ledger = ledger_.get();
  merge.manifest = &config_.manifest;
  const bool merged = merge_workdir(merge);
  result.merge_wall_ns = telemetry::steady_now_ns() - merge_start;
  result.ok = merged && result.failed == 0;

  telemetry::Registry& metrics = telemetry::global();
  const feedback::CorpusLedger::Stats& stats = ledger_->stats();
  metrics.counter("hub.epochs").inc(stats.epochs);
  metrics.counter("hub.published").inc(stats.published);
  metrics.counter("hub.unique").inc(stats.unique);
  metrics.counter("hub.merged").inc(stats.merged);
  metrics.counter("hub.pulled").inc(stats.pulled);
  metrics.counter("fleet.restarts").inc(static_cast<std::uint64_t>(
      result.restarts));
  metrics.gauge("fleet.workers")
      .set(static_cast<double>(config_.manifest.workers));
  return result;
}

}  // namespace torpedo::fleet
