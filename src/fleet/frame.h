// Length-prefixed frame transport for the fleet socket protocol.
//
// Every message between a fleet worker and the coordinator is one frame:
//
//   [u32 payload length, little-endian][u8 type][payload bytes]
//
// Four frame types cover the whole conversation:
//
//   kHello    worker -> coordinator   protocol version + worker id
//   kPublish  worker -> coordinator   encode_publish() body (wire.h)
//   kDelta    coordinator -> worker   encode_delta() body (wire.h)
//   kDone     worker -> coordinator   final campaign totals
//
// The worker side is blocking (send_frame/recv_frame over its one socket);
// the coordinator side is non-blocking — it feeds whatever poll() delivered
// into a per-connection FrameBuffer and pops complete frames, so one slow
// worker can never stall the loop. Both sides are EINTR- and
// short-read/short-write-safe. A length prefix beyond kMaxFramePayload is
// treated as a protocol error, not an allocation request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace torpedo::fleet {

enum class FrameType : std::uint8_t {
  kHello = 1,
  kPublish = 2,
  kDelta = 3,
  kDone = 4,
};

struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

// Corpus publications are bounded by kMaxListLength entries (wire.cpp);
// 64 MiB leaves an order of magnitude of headroom over any real batch.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

// [len][type][payload] as one contiguous byte string.
std::string encode_frame(FrameType type, std::string_view payload);

// Blocking full write of one frame. False on any write error (EPIPE, ...).
bool send_frame(int fd, FrameType type, std::string_view payload);

// Blocking full read of one frame. False on EOF, error, or an oversized
// length prefix.
bool recv_frame(int fd, Frame* out);

// Reassembles frames from arbitrarily-chunked reads (the coordinator's
// poll() loop). append() raw bytes as they arrive; next() pops the next
// complete frame. An oversized length prefix poisons the buffer: error()
// turns true and next() never yields again — the owner drops the peer.
class FrameBuffer {
 public:
  void append(const char* data, std::size_t n);
  bool next(Frame* out);
  bool error() const { return error_; }
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool error_ = false;
};

// write(2) until all of `data` is on the wire; EINTR-safe. Shared by the
// frame senders above.
bool write_all(int fd, const char* data, std::size_t n);

}  // namespace torpedo::fleet
