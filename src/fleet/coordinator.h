// The fleet coordinator: a multi-process campaign manager.
//
// `torpedo fleet` scales the sharded campaign out of one address space: N
// worker processes (fleet/worker.h), each a full sequential campaign stack,
// exchange corpus entries and denylist learning through this coordinator
// over a Unix-domain socket. The coordinator owns the same CorpusLedger
// state machine CorpusHub wraps in-process, so the merged corpus after any
// epoch is the same pure function of what each worker published — the fleet
// merge is schedule-independent exactly like the sharded one.
//
// Process lifecycle (the syz-manager / FlashFuzz expmanager role):
//   * spawn     fork/exec of `worker_binary` (production), or fork + direct
//               worker_main() call when worker_binary is empty (tests, the
//               selftest replay — no binary path needed).
//   * monitor   one poll() loop over the listen socket and every worker
//               connection (the MonitorServer pattern — no threads, no
//               third-party deps), plus heartbeat files for liveness and
//               /metrics discovery. Worker states: not-started, running,
//               stalled (heartbeat older than the stall budget), failed,
//               completed.
//   * restart   a worker that dies without its kDone frame is respawned up
//               to max_restarts times. Its ledger cursor rewinds to zero,
//               so the restart resumes from the last published corpus epoch
//               — the committed stream is the checkpoint.
//   * reap      waitpid() on loop ticks; exit status decides
//               completed/failed.
//
// After every worker reaches a terminal state the coordinator merges the
// per-worker workdirs into one (fleet/merge.h) that `torpedo report`,
// `stats`, and `diff` consume unchanged.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

#include "feedback/corpus_hub.h"
#include "fleet/frame.h"
#include "fleet/manifest.h"
#include "fleet/worker.h"
#include "util/time.h"

namespace torpedo::fleet {

enum class WorkerState {
  kNotStarted = 0,
  kRunning,
  kStalled,
  kFailed,
  kCompleted,
};
std::string_view worker_state_name(WorkerState state);

struct FleetConfig {
  Manifest manifest;
  // Merged workdir root; worker k writes workdir/workers/<k>/.
  std::filesystem::path workdir;
  // Path of the torpedo binary to fork/exec per worker. Empty = fork mode:
  // the child calls worker_main() directly. Fork mode requires this process
  // to be single-threaded, so it forces coordinator_monitor_port = -1.
  std::string worker_binary;
  // Per-worker monitor: -1 = none, 0 = ephemeral (discovered via
  // heartbeat.json and aggregated into the coordinator's /metrics).
  int worker_monitor_port = -1;
  // Coordinator's own monitor (/metrics aggregation, /fleet status).
  int coordinator_monitor_port = -1;
  // A running worker whose heartbeat is older than this counts as stalled.
  Nanos stall_budget_wall_ns = 60 * kSecond;
  bool verbose = false;
  // Test hook, fork mode only: worker `test_crash_worker`'s FIRST launch
  // runs with crash_after_batch = test_crash_batch, exercising the
  // fail/restart path without signals.
  int test_crash_worker = -1;
  int test_crash_batch = 0;
};

struct WorkerStatus {
  int id = 0;
  WorkerState state = WorkerState::kNotStarted;
  pid_t pid = -1;
  int restarts = 0;
  bool done_frame = false;   // kDone received for the current process
  int monitor_port = -1;     // from heartbeat.json; -1 until discovered
  std::uint64_t executions = 0;
  std::int64_t heartbeat_wall_ns = 0;  // last heartbeat stamp (wall clock)
  // Final totals from the kDone frame.
  int batches = 0;
  int rounds = 0;
  std::uint64_t corpus = 0;
  std::uint64_t findings = 0;
  std::uint64_t crashes = 0;
  // Crash-recovery probe: wall ns from failure detection to the restarted
  // process's next publish (bench_fleet_scaling reports the max).
  Nanos recovery_wall_ns = 0;
};

class Coordinator {
 public:
  explicit Coordinator(FleetConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  struct Result {
    bool ok = false;      // every worker completed and the merge succeeded
    int completed = 0;
    int failed = 0;       // workers that exhausted max_restarts
    int restarts = 0;
    std::uint64_t executions = 0;  // summed worker totals
    Nanos merge_wall_ns = 0;       // file-level merge duration
    Nanos max_recovery_wall_ns = 0;
  };

  // Spawns every worker, runs the event loop to completion, merges the
  // workdirs. Blocking; call once.
  Result run();

  // Snapshot for fleet_status.json, the /fleet endpoint, and tests.
  std::vector<WorkerStatus> workers() const;
  std::string fleet_status_json() const;

  const feedback::CorpusLedger& ledger() const { return *ledger_; }
  const std::filesystem::path& socket_path() const { return socket_path_; }

 private:
  struct Connection;

  bool setup_listener();
  WorkerOptions worker_options(int worker) const;
  bool spawn_worker(int worker);
  void accept_connections();
  void read_connection(std::size_t index);
  void handle_frame(Connection& conn, const Frame& frame);
  void worker_left(int worker);
  void flush_deltas();
  void reap_children();
  void scan_heartbeats();
  void write_fleet_status() const;
  bool all_terminal() const;
  void fail_worker(int worker);

  FleetConfig config_;
  std::filesystem::path socket_path_;
  std::unique_ptr<feedback::CorpusLedger> ledger_;
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<bool> awaiting_delta_;  // published, owed a kDelta
  // Guards workers_: the coordinator monitor thread reads snapshots while
  // the loop mutates.
  mutable std::mutex mu_;
  std::vector<WorkerStatus> workers_;
  std::vector<Nanos> failure_detected_ns_;  // steady clock, 0 = none pending
  int total_restarts_ = 0;
  Nanos max_recovery_ns_ = 0;
};

}  // namespace torpedo::fleet
