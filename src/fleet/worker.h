// One fleet worker process: a full sequential campaign stack that trades
// corpus entries through the coordinator's socket instead of an in-process
// CorpusHub.
//
// worker_main() is the entire child process body. It is callable two ways:
//   * exec mode — `torpedo run --fleet-socket S --fleet-worker K ...`
//     (hidden flags) parses a CampaignConfig and calls it; this is what the
//     coordinator fork/execs in production.
//   * fork mode — tests and the selftest replay fork() and call it directly,
//     so fleet campaigns are exercisable without knowing a binary path.
//
// The batch loop mirrors ShardedCampaign::run_shard exactly: run a batch,
// publish the fresh corpus tail + denylist, block until the coordinator's
// delta arrives (the socket is this process's epoch barrier), fold the
// delta in. The worker writes a complete per-worker workdir — the same
// artifact set `torpedo run --workdir` produces, with every finding,
// provenance record, corpus entry, and timeseries line stamped with the
// worker id as its shard — which the coordinator later merges file-by-file.
#pragma once

#include <filesystem>
#include <string>

#include "core/campaign.h"

namespace torpedo::fleet {

struct WorkerOptions {
  int worker_id = 0;
  // Coordinator's Unix-domain socket. The worker connects with a short
  // retry window (the coordinator binds before spawning, but a restarted
  // worker may race a busy coordinator loop).
  std::string socket_path;
  core::CampaignConfig config;
  std::filesystem::path workdir;  // per-worker artifact directory
  std::string seeds_dir;          // "" = default Moonshine-like corpus
  // Host CPU affinity list ("0", "2,3", "0-2"); "" = unpinned.
  std::string cpuset;
  // Worker-local monitor: -1 = off, 0 = ephemeral port (recorded in
  // heartbeat.json via HeartbeatWriter::set_monitor_port), > 0 = fixed.
  int monitor_port = -1;
  bool verbose = false;
  // Test hook: _exit(77) right after publishing batch N (0-based), leaving
  // the socket mid-epoch — exercises the coordinator's crash/restart path
  // deterministically, no kill() needed. < 0 = never.
  int crash_after_batch = -1;
};

// Exit code 77 = the crash_after_batch hook fired.
inline constexpr int kWorkerCrashExit = 77;

// Runs the whole worker campaign; returns the process exit code (0 = done,
// campaign finalized and artifacts written; nonzero = socket/config error).
int worker_main(const WorkerOptions& options);

// Parses "0,2-3"-style lists and applies sched_setaffinity. Returns false
// on parse failure or an empty resulting set (the affinity call itself
// failing is reported but non-fatal — cpuset is an optimization).
bool apply_cpuset(const std::string& cpuset);

}  // namespace torpedo::fleet
