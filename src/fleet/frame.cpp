#include "fleet/frame.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace torpedo::fleet {

namespace {

constexpr std::size_t kHeaderBytes = 5;  // u32 length + u8 type

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

// read(2) exactly n bytes; false on EOF or error.
bool read_all(int fd, char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, data + done, n - done);
    if (got > 0) {
      done += static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // EOF (0) or hard error
  }
  return true;
}

}  // namespace

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent = ::write(fd, data + done, n - done);
    if (sent > 0) {
      done += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  out.push_back(static_cast<char>(type));
  out.append(payload.data(), payload.size());
  return out;
}

bool send_frame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const std::string frame = encode_frame(type, payload);
  return write_all(fd, frame.data(), frame.size());
}

bool recv_frame(int fd, Frame* out) {
  char header[kHeaderBytes];
  if (!read_all(fd, header, kHeaderBytes)) return false;
  const std::uint32_t len = read_u32le(header);
  if (len > kMaxFramePayload) return false;
  out->type = static_cast<FrameType>(header[4]);
  out->payload.resize(len);
  return len == 0 || read_all(fd, out->payload.data(), len);
}

void FrameBuffer::append(const char* data, std::size_t n) {
  if (error_) return;
  buf_.append(data, n);
}

bool FrameBuffer::next(Frame* out) {
  if (error_ || buf_.size() < kHeaderBytes) return false;
  const std::uint32_t len = read_u32le(buf_.data());
  if (len > kMaxFramePayload) {
    error_ = true;
    return false;
  }
  if (buf_.size() < kHeaderBytes + len) return false;
  out->type = static_cast<FrameType>(buf_[4]);
  out->payload.assign(buf_, kHeaderBytes, len);
  buf_.erase(0, kHeaderBytes + len);
  return true;
}

}  // namespace torpedo::fleet
