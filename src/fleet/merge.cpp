#include "fleet/merge.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/workdir.h"
#include "feedback/corpus.h"
#include "kernel/syscalls.h"
#include "telemetry/json.h"
#include "triage/cluster.h"
#include "util/log.h"
#include "util/strings.h"

namespace torpedo::fleet {

namespace fs = std::filesystem;

namespace {

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

int worker_id_of(const fs::path& dir) {
  return std::atoi(dir.filename().string().c_str());
}

// --- report.txt ---------------------------------------------------------------

struct ReportPieces {
  int batches = 0;
  int rounds = 0;
  unsigned long long executions = 0;
  std::vector<std::string> finding_blocks;
  std::vector<std::string> crash_blocks;  // "== crash ==" blocks, in order
};

// Splits a report body into "== ..."-headed blocks, preserving each block's
// bytes exactly (the merge must not reformat what save_report wrote).
std::optional<ReportPieces> parse_report(const std::string& text) {
  ReportPieces pieces;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "# TORPEDO campaign report")
    return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;
  std::size_t corpus = 0;
  if (std::sscanf(line.c_str(), "# batches=%d rounds=%d executions=%llu "
                  "corpus=%zu",
                  &pieces.batches, &pieces.rounds, &pieces.executions,
                  &corpus) != 4)
    return std::nullopt;

  std::string block;
  bool is_crash = false;
  auto flush = [&] {
    if (block.empty()) return;
    (is_crash ? pieces.crash_blocks : pieces.finding_blocks)
        .push_back(std::move(block));
    block.clear();
  };
  bool in_body = false;
  while (std::getline(in, line)) {
    if (starts_with(line, "== ")) {
      flush();
      in_body = true;
      is_crash = starts_with(line, "== crash ==");
    }
    if (in_body) block += line + "\n";
  }
  flush();
  return pieces;
}

// The crash's identity for cross-worker dedup (ShardedCampaign::merge dedups
// crashes by message; the block's "message: " line carries it verbatim).
std::string crash_message(const std::string& block) {
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line))
    if (starts_with(line, "message: ")) return line;
  return block;
}

bool merge_reports(const MergeOptions& options, std::size_t merged_corpus) {
  ReportPieces total;
  std::vector<std::string> crashes;
  std::set<std::string> crash_seen;
  for (const fs::path& dir : options.worker_dirs) {
    const auto text = read_file(dir / "report.txt");
    if (!text) continue;
    auto pieces = parse_report(*text);
    if (!pieces) {
      TORPEDO_LOG(LogLevel::kWarn, "fleet merge: unparseable %s",
                  (dir / "report.txt").c_str());
      continue;
    }
    total.batches += pieces->batches;
    total.rounds += pieces->rounds;
    total.executions += pieces->executions;
    for (std::string& b : pieces->finding_blocks)
      total.finding_blocks.push_back(std::move(b));
    for (std::string& b : pieces->crash_blocks) {
      if (!crash_seen.insert(crash_message(b)).second) continue;
      crashes.push_back(std::move(b));
    }
  }
  std::string out = format(
      "# TORPEDO campaign report\n# batches=%d rounds=%d executions=%llu "
      "corpus=%zu\n\n",
      total.batches, total.rounds, total.executions, merged_corpus);
  for (const std::string& b : total.finding_blocks) out += b;
  for (const std::string& b : crashes) out += b;
  return write_file(options.workdir / "report.txt", out);
}

// --- violation bundles --------------------------------------------------------

std::size_t merge_bundles(const MergeOptions& options) {
  int next_id = 0;
  for (const fs::path& dir : options.worker_dirs) {
    const fs::path src_root = dir / "violations";
    if (!fs::exists(src_root)) continue;
    std::vector<fs::path> bundles;
    for (const auto& entry : fs::directory_iterator(src_root))
      if (entry.is_directory()) bundles.push_back(entry.path());
    std::sort(bundles.begin(), bundles.end());
    for (const fs::path& src : bundles) {
      const int id = next_id++;
      const fs::path dst =
          options.workdir / "violations" / format("%03d", id);
      std::error_code ec;
      fs::create_directories(dst, ec);
      if (ec) continue;
      // bundle.json leads with {"bundle":<old-id>, — renumber it so ids are
      // unique across the merged set (torpedo report keys tables on them).
      if (auto text = read_file(src / "bundle.json")) {
        const std::string prefix = "{\"bundle\":";
        if (starts_with(*text, prefix)) {
          std::size_t end = prefix.size();
          while (end < text->size() && std::isdigit((*text)[end])) ++end;
          *text = prefix + std::to_string(id) + text->substr(end);
        }
        write_file(dst / "bundle.json", *text);
      }
      if (auto text = read_file(src / "report.md")) {
        const std::size_t eol = text->find('\n');
        if (starts_with(*text, "# Violation bundle ") &&
            eol != std::string::npos)
          *text = format("# Violation bundle %03d", id) + text->substr(eol);
        write_file(dst / "report.md", *text);
      }
      for (const char* name : {"program.prog", "original.prog"})
        if (auto text = read_file(src / name)) write_file(dst / name, *text);
    }
  }
  return static_cast<std::size_t>(next_id);
}

// --- counter-table artifacts --------------------------------------------------

std::optional<std::vector<std::map<std::string, telemetry::JsonValue>>>
load_json_rows(const fs::path& file, const char* array_key) {
  const auto text = read_file(file);
  if (!text) return std::nullopt;
  auto object = telemetry::parse_json_object(trim(*text));
  if (!object) return std::nullopt;
  auto it = object->find(array_key);
  if (it == object->end() ||
      it->second.kind != telemetry::JsonValue::Kind::kRaw)
    return std::nullopt;
  return telemetry::parse_json_array_of_objects(it->second.text);
}

std::int64_t row_int(const std::map<std::string, telemetry::JsonValue>& row,
                     const char* key) {
  auto it = row.find(key);
  if (it == row.end()) return 0;
  return it->second.integer;
}

bool merge_syscall_profiles(const MergeOptions& options) {
  struct Sums {
    std::uint64_t executions = 0, signal_new = 0, implications = 0;
  };
  std::map<int, Sums> by_nr;  // ordered: canonical ascending-nr output
  for (const fs::path& dir : options.worker_dirs) {
    auto rows = load_json_rows(dir / "syscall_profile.json", "syscalls");
    if (!rows) continue;
    for (const auto& row : *rows) {
      Sums& s = by_nr[static_cast<int>(row_int(row, "nr"))];
      s.executions += static_cast<std::uint64_t>(row_int(row, "executions"));
      s.signal_new += static_cast<std::uint64_t>(row_int(row, "signal_new"));
      s.implications +=
          static_cast<std::uint64_t>(row_int(row, "implications"));
    }
  }
  std::string array = "[";
  bool first = true;
  for (const auto& [nr, s] : by_nr) {
    telemetry::JsonDict d;
    d.set("nr", nr)
        .set("name", kernel::sysno_name(nr))
        .set("executions", s.executions)
        .set("signal_new", s.signal_new)
        .set("implications", s.implications);
    if (!first) array += ",";
    first = false;
    array += d.to_string();
  }
  array += "]";
  telemetry::JsonDict doc;
  doc.set_raw("syscalls", array);
  return write_file(options.workdir / "syscall_profile.json",
                    doc.to_string() + "\n");
}

bool merge_mutation_efficacy(const MergeOptions& options) {
  struct Sums {
    std::uint64_t attempts = 0, accepted = 0, executions = 0,
                  novel_signal = 0, violations = 0, corpus_inserts = 0;
  };
  // Canonical key order = OriginOp enum order, the order every per-worker
  // file already lists (MutationEfficacy::rows iterates the enum).
  std::vector<Sums> by_op(static_cast<std::size_t>(feedback::kNumOriginOps));
  for (const fs::path& dir : options.worker_dirs) {
    auto rows = load_json_rows(dir / "mutation_efficacy.json", "ops");
    if (!rows) continue;
    for (const auto& row : *rows) {
      auto it = row.find("op");
      if (it == row.end()) continue;
      auto op = feedback::origin_op_from_name(it->second.text);
      if (!op) continue;
      Sums& s = by_op[static_cast<std::size_t>(*op)];
      s.attempts += static_cast<std::uint64_t>(row_int(row, "attempts"));
      s.accepted += static_cast<std::uint64_t>(row_int(row, "accepted"));
      s.executions += static_cast<std::uint64_t>(row_int(row, "executions"));
      s.novel_signal +=
          static_cast<std::uint64_t>(row_int(row, "novel_signal"));
      s.violations += static_cast<std::uint64_t>(row_int(row, "violations"));
      s.corpus_inserts +=
          static_cast<std::uint64_t>(row_int(row, "corpus_inserts"));
    }
  }
  std::string array = "[";
  for (int i = 0; i < feedback::kNumOriginOps; ++i) {
    const Sums& s = by_op[static_cast<std::size_t>(i)];
    telemetry::JsonDict d;
    d.set("op", feedback::origin_op_name(static_cast<feedback::OriginOp>(i)))
        .set("attempts", s.attempts)
        .set("accepted", s.accepted)
        .set("executions", s.executions)
        .set("novel_signal", s.novel_signal)
        .set("violations", s.violations)
        .set("corpus_inserts", s.corpus_inserts);
    if (i) array += ",";
    array += d.to_string();
  }
  array += "]";
  telemetry::JsonDict doc;
  doc.set_raw("ops", array);
  return write_file(options.workdir / "mutation_efficacy.json",
                    doc.to_string() + "\n");
}

// --- timeseries ---------------------------------------------------------------

bool merge_timeseries(const MergeOptions& options) {
  std::ofstream out(options.workdir / "timeseries.jsonl", std::ios::trunc);
  if (!out) return false;
  for (const fs::path& dir : options.worker_dirs) {
    const int worker = worker_id_of(dir);
    std::ifstream in(dir / "timeseries.jsonl");
    if (!in) continue;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      // Each sample line already carries "shard":k from the recorder; the
      // merge adds the fleet dimension explicitly.
      if (line.back() == '}')
        line = line.substr(0, line.size() - 1) + ",\"worker\":" +
               std::to_string(worker) + "}";
      out << line << "\n";
    }
  }
  return static_cast<bool>(out);
}

}  // namespace

bool merge_workdir(const MergeOptions& options) {
  TORPEDO_CHECK(options.ledger != nullptr && options.manifest != nullptr);
  std::error_code ec;
  fs::create_directories(options.workdir, ec);

  // Merged corpus: the ledger's committed stream, deduplicated (it already
  // is — commit order makes the fold deterministic) with signals intact.
  feedback::Corpus corpus;
  for (const feedback::CorpusLedger::Committed& c :
       options.ledger->committed())
    corpus.add(c.entry.program, c.entry.signal, c.entry.best_score,
               c.entry.lineage);
  core::save_corpus(options.workdir / "corpus.txt", corpus);

  bool ok = merge_reports(options, corpus.size());
  merge_bundles(options);

  // campaign.json must exist before triage_workdir recomputes clusters (it
  // reads the runtime name from it).
  core::CampaignManifest manifest = options.manifest->defaults;
  manifest.fleet_workers = options.manifest->workers;
  core::save_campaign_manifest(options.workdir / "campaign.json", manifest);

  fs::remove(options.workdir / "clusters.json", ec);
  if (auto triaged = triage::triage_workdir(options.workdir)) {
    triage::save_clusters(options.workdir / "clusters.json", *triaged);
  } else {
    // Empty campaign: an empty-but-present clusters.json, like `torpedo run`
    // writes for a run with no findings.
    triage::TriageResult empty =
        triage::ClusterEngine().cluster({});
    empty.runtime = manifest.runtime;
    triage::save_clusters(options.workdir / "clusters.json", empty);
  }

  ok = merge_syscall_profiles(options) && ok;
  ok = merge_mutation_efficacy(options) && ok;
  ok = merge_timeseries(options) && ok;
  return ok;
}

}  // namespace torpedo::fleet
