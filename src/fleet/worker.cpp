#include "fleet/worker.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sched.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "core/provenance.h"
#include "core/workdir.h"
#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "feedback/wire.h"
#include "fleet/frame.h"
#include "kernel/syscalls.h"
#include "telemetry/monitor.h"
#include "telemetry/timeseries.h"
#include "triage/cluster.h"
#include "util/log.h"

namespace torpedo::fleet {

namespace {

// Connect to the coordinator's Unix socket, retrying for ~5 s: a restarted
// worker can beat the coordinator's accept loop to the rendezvous.
int connect_coordinator(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    ::close(fd);
    timespec delay{0, 50 * 1000 * 1000};  // 50 ms
    ::nanosleep(&delay, nullptr);
  }
  return -1;
}

struct ProfileGuard {
  ~ProfileGuard() { feedback::set_syscall_profile(nullptr); }
};
struct EfficacyGuard {
  ~EfficacyGuard() { feedback::set_mutation_efficacy(nullptr); }
};

}  // namespace

bool apply_cpuset(const std::string& cpuset) {
  cpu_set_t set;
  CPU_ZERO(&set);
  int count = 0;
  const char* p = cpuset.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p || lo < 0 || lo >= CPU_SETSIZE) return false;
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      if (end == p + 1 || hi < lo || hi >= CPU_SETSIZE) return false;
      p = end;
    }
    for (long cpu = lo; cpu <= hi; ++cpu) {
      CPU_SET(static_cast<int>(cpu), &set);
      ++count;
    }
    if (*p == ',') {
      ++p;
    } else if (*p != '\0') {
      return false;
    }
  }
  if (count == 0) return false;
  if (::sched_setaffinity(0, sizeof(set), &set) != 0)
    TORPEDO_LOG(LogLevel::kWarn, "sched_setaffinity(%s) failed: %s",
                cpuset.c_str(), std::strerror(errno));
  return true;
}

int worker_main(const WorkerOptions& options) {
  if (options.verbose) set_log_level(LogLevel::kInfo);
  if (!options.cpuset.empty() && !apply_cpuset(options.cpuset)) {
    std::fprintf(stderr, "fleet worker %d: bad cpuset '%s'\n",
                 options.worker_id, options.cpuset.c_str());
    return 2;
  }

  const int fd = connect_coordinator(options.socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "fleet worker %d: cannot connect to %s\n",
                 options.worker_id, options.socket_path.c_str());
    return 1;
  }
  {
    feedback::WireWriter hello;
    hello.u32(1);  // protocol version
    hello.u32(static_cast<std::uint32_t>(options.worker_id));
    if (!send_frame(fd, FrameType::kHello, hello.data())) {
      ::close(fd);
      return 1;
    }
  }

  // The same always-on introspection `torpedo run` wires up: per-syscall
  // attribution, per-operator efficacy, the signal-growth recorder.
  feedback::SyscallProfile profile;
  ProfileGuard profile_guard;
  feedback::set_syscall_profile(&profile);
  feedback::MutationEfficacy efficacy;
  EfficacyGuard efficacy_guard;
  feedback::set_mutation_efficacy(&efficacy);

  core::Campaign campaign(options.config);
  // Entries born here carry the worker id as their shard; entries pulled
  // through the coordinator keep the birth_shard they arrived with.
  campaign.corpus().set_shard(options.worker_id);

  telemetry::TimeSeriesRecorder::Config ts_config;
  ts_config.shard = options.worker_id;
  telemetry::TimeSeriesRecorder timeseries(ts_config);
  campaign.set_timeseries(&timeseries);

  telemetry::LiveStatus status;
  campaign.set_live_status(&status);

  telemetry::HeartbeatWriter heartbeat(options.workdir / "heartbeat.json");
  campaign.set_heartbeat(&heartbeat);

  triage::LiveTriage live_triage;
  std::optional<telemetry::MonitorServer> monitor;
  if (options.monitor_port >= 0) {
    telemetry::MonitorServer::Config mon_config;
    mon_config.port = options.monitor_port;
    monitor.emplace(mon_config);
    monitor->set_status(&status);
    monitor->set_extra_metrics([&profile, &efficacy, &live_triage] {
      return profile.to_prometheus(&kernel::sysno_name) +
             efficacy.to_prometheus() + live_triage.to_prometheus();
    });
    if (monitor->start()) {
      // The coordinator discovers this worker's /metrics through the
      // heartbeat, so the actual bound port must be in every stamp.
      heartbeat.set_monitor_port(monitor->port());
    } else {
      std::fprintf(stderr, "fleet worker %d: cannot bind monitor port %d\n",
                   options.worker_id, options.monitor_port);
      monitor.reset();
    }
  }

  if (!options.seeds_dir.empty()) {
    std::vector<std::string> errors;
    auto seeds = core::load_seed_files(options.seeds_dir, &errors);
    for (const std::string& e : errors)
      TORPEDO_LOG(LogLevel::kWarn, "%s", e.c_str());
    campaign.load_seeds(std::move(seeds));
  } else {
    campaign.load_default_seeds();
  }

  // The run_shard loop, with the socket as the epoch barrier. Corpus
  // entries below `published` have already been through the coordinator —
  // published by us, or pulled from a peer — and are never re-sent.
  std::size_t published = 0;
  for (int b = 0; b < options.config.batches; ++b) {
    const core::BatchResult batch = campaign.run_one_batch();
    TORPEDO_LOG(LogLevel::kInfo,
                "worker %d batch %d: rounds=%d best=%.1f corpus=%zu",
                options.worker_id, b, batch.rounds, batch.best_score,
                campaign.corpus().size());
    feedback::PublishBody body;
    for (; published < campaign.corpus().size(); ++published)
      body.entries.push_back(campaign.corpus().entry(published));
    body.denylist = campaign.fuzzer().denylist();
    if (!send_frame(fd, FrameType::kPublish, feedback::encode_publish(body))) {
      std::fprintf(stderr, "fleet worker %d: coordinator gone (publish)\n",
                   options.worker_id);
      ::close(fd);
      return 1;
    }
    if (options.crash_after_batch == b) _exit(kWorkerCrashExit);
    Frame frame;
    if (!recv_frame(fd, &frame) || frame.type != FrameType::kDelta) {
      std::fprintf(stderr, "fleet worker %d: coordinator gone (delta)\n",
                   options.worker_id);
      ::close(fd);
      return 1;
    }
    auto delta = feedback::decode_delta(frame.payload);
    if (!delta) {
      std::fprintf(stderr, "fleet worker %d: malformed delta\n",
                   options.worker_id);
      ::close(fd);
      return 1;
    }
    for (feedback::CorpusEntry& e : delta->entries)
      campaign.corpus().add(std::move(e.program), e.signal, e.best_score,
                            e.lineage);
    published = campaign.corpus().size();
    campaign.fuzzer().adopt_denylist(delta->denylist);
  }

  core::CampaignReport report = campaign.finalize();
  // This process is one shard of the fleet: stamp its id onto everything
  // the merge distinguishes workers by, exactly as ShardedCampaign::merge
  // stamps shard indices.
  for (core::Finding& f : report.findings) f.shard = options.worker_id;
  for (core::CrashFinding& c : report.crashes) c.shard = options.worker_id;
  for (core::Provenance& p : report.provenance) p.shard = options.worker_id;

  const triage::TriageResult tri = triage::cluster_report(
      report, runtime::runtime_name(options.config.runtime));
  live_triage.install(tri);
  if (monitor) monitor->stop();

  const std::filesystem::path& dir = options.workdir;
  core::save_corpus(dir / "corpus.txt", campaign.corpus());
  core::save_report(dir / "report.txt", report);
  triage::save_clusters(dir / "clusters.json", tri);
  core::write_violation_bundles(dir, report);
  {
    std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
    if (out) out << profile.to_json(&kernel::sysno_name) << "\n";
  }
  const telemetry::TimeSeriesRecorder* recorder_ptrs[] = {&timeseries};
  core::save_timeseries(dir / "timeseries.jsonl", recorder_ptrs);
  core::save_mutation_efficacy(dir / "mutation_efficacy.json", efficacy);
  core::CampaignManifest manifest =
      core::CampaignManifest::from_config(options.config);
  manifest.seeds_dir = options.seeds_dir;
  core::save_campaign_manifest(dir / "campaign.json", manifest);

  feedback::WireWriter done;
  done.u32(static_cast<std::uint32_t>(report.batches));
  done.u32(static_cast<std::uint32_t>(report.rounds));
  done.u64(report.executions);
  done.u64(static_cast<std::uint64_t>(report.corpus_size));
  done.u64(static_cast<std::uint64_t>(report.findings.size()));
  done.u64(static_cast<std::uint64_t>(report.crashes.size()));
  send_frame(fd, FrameType::kDone, done.data());
  ::close(fd);
  return 0;
}

}  // namespace torpedo::fleet
