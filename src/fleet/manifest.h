// The fleet experiment-matrix manifest.
//
// One fleet campaign runs N workers; by default every worker runs the same
// campaign template with seed mix_seed(base, worker) — the process analogue
// of ShardedCampaign's shard seeds. The manifest's matrix overrides that
// uniformity per worker, spanning the experiment axes the paper sweeps:
// runtime (runc/crun/runsc/kata), CPU quota (--cpus), host cpuset
// (affinity pinning), and seed — plus batch count for asymmetric-length
// sweeps.
//
// JSON shape (workdir/fleet.json, also accepted via `torpedo fleet
// --manifest FILE`):
//
//   {"workers":4,"max_restarts":2,
//    "defaults":{"runtime":"runc","batches":8,"num_executors":3,
//                "round_duration_ns":5000000000,"num_seeds":40,
//                "seed":118185680,"snapshot_exec":true,"seeds_dir":""},
//    "matrix":[{"worker":1,"runtime":"runsc","seed":7,"cpus":0.5,
//               "cpuset":"2,3","batches":4}]}
//
// `defaults` reuses the CampaignManifest keys; `matrix` entries name a
// worker index and override only the fields they carry. The manifest is
// what the selftest replay differ re-executes, so worker_config() must be a
// pure function of (manifest, worker).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/workdir.h"

namespace torpedo::fleet {

// Per-worker overrides; unset fields fall back to the defaults.
struct WorkerSpec {
  int worker = -1;
  std::optional<std::string> runtime;
  std::optional<std::uint64_t> seed;
  std::optional<int> batches;
  std::optional<double> cpus;  // container CPU quota (the paper's --cpus)
  std::string cpuset;          // host CPU affinity list, "" = unpinned
};

struct Manifest {
  int workers = 2;
  int max_restarts = 2;
  core::CampaignManifest defaults;
  std::vector<WorkerSpec> matrix;

  // The matrix row for `worker`, or nullptr when it runs pure defaults.
  const WorkerSpec* spec(int worker) const;

  // Worker k's resolved campaign config: defaults, matrix overrides, and —
  // when the matrix names no explicit seed — mix_seed(defaults.seed, k), so
  // worker 0 of a uniform fleet reproduces the sequential campaign exactly.
  core::CampaignConfig worker_config(int worker) const;

  // Resolved runtime name / cpuset for `worker` (for triage and affinity).
  std::string worker_runtime(int worker) const;
  std::string worker_cpuset(int worker) const;
};

std::string manifest_to_json(const Manifest& manifest);
std::optional<Manifest> manifest_from_json(std::string_view text);

void save_manifest(const std::filesystem::path& file,
                   const Manifest& manifest);
std::optional<Manifest> load_manifest(const std::filesystem::path& file);

}  // namespace torpedo::fleet
