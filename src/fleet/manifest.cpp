#include "fleet/manifest.h"

#include <fstream>
#include <sstream>

#include "runtime/runtime.h"
#include "util/rng.h"
#include "util/strings.h"

namespace torpedo::fleet {

const WorkerSpec* Manifest::spec(int worker) const {
  for (const WorkerSpec& s : matrix)
    if (s.worker == worker) return &s;
  return nullptr;
}

core::CampaignConfig Manifest::worker_config(int worker) const {
  core::CampaignConfig config = defaults.to_config();
  config.seed = mix_seed(defaults.seed, static_cast<std::uint64_t>(worker));
  if (const WorkerSpec* s = spec(worker)) {
    if (s->runtime) {
      if (auto kind = runtime::runtime_from_name(*s->runtime))
        config.runtime = *kind;
    }
    if (s->seed) config.seed = *s->seed;
    if (s->batches) config.batches = *s->batches;
    if (s->cpus) config.cpus_per_container = *s->cpus;
  }
  return config;
}

std::string Manifest::worker_runtime(int worker) const {
  if (const WorkerSpec* s = spec(worker); s != nullptr && s->runtime)
    return *s->runtime;
  return defaults.runtime;
}

std::string Manifest::worker_cpuset(int worker) const {
  if (const WorkerSpec* s = spec(worker)) return s->cpuset;
  return {};
}

std::string manifest_to_json(const Manifest& manifest) {
  telemetry::JsonDict doc;
  doc.set("workers", manifest.workers)
      .set("max_restarts", manifest.max_restarts)
      .set_raw("defaults",
               core::campaign_manifest_to_dict(manifest.defaults).to_string());
  std::string matrix = "[";
  bool first = true;
  for (const WorkerSpec& s : manifest.matrix) {
    telemetry::JsonDict d;
    d.set("worker", s.worker);
    if (s.runtime) d.set("runtime", *s.runtime);
    if (s.seed) d.set("seed", static_cast<std::int64_t>(*s.seed));
    if (s.batches) d.set("batches", *s.batches);
    if (s.cpus) d.set("cpus", *s.cpus);
    if (!s.cpuset.empty()) d.set("cpuset", s.cpuset);
    if (!first) matrix += ",";
    first = false;
    matrix += d.to_string();
  }
  matrix += "]";
  doc.set_raw("matrix", matrix);
  return doc.to_string();
}

std::optional<Manifest> manifest_from_json(std::string_view text) {
  auto object = telemetry::parse_json_object(trim(text));
  if (!object) return std::nullopt;

  Manifest m;
  auto it = object->find("workers");
  if (it == object->end() ||
      it->second.kind != telemetry::JsonValue::Kind::kNumber)
    return std::nullopt;
  m.workers = static_cast<int>(it->second.integer);
  if (m.workers < 1) return std::nullopt;

  if (auto r = object->find("max_restarts");
      r != object->end() &&
      r->second.kind == telemetry::JsonValue::Kind::kNumber)
    m.max_restarts = static_cast<int>(r->second.integer);

  if (auto d = object->find("defaults");
      d != object->end() &&
      d->second.kind == telemetry::JsonValue::Kind::kRaw) {
    // Lenient: the fleet manifest is the hand-written surface — users list
    // only the defaults they override.
    auto defaults = core::parse_campaign_manifest_lenient(d->second.text);
    if (!defaults) return std::nullopt;
    m.defaults = *defaults;
  }

  if (auto mx = object->find("matrix");
      mx != object->end() &&
      mx->second.kind == telemetry::JsonValue::Kind::kRaw) {
    auto rows = telemetry::parse_json_array_of_objects(mx->second.text);
    if (!rows) return std::nullopt;
    for (const auto& row : *rows) {
      WorkerSpec s;
      auto w = row.find("worker");
      if (w == row.end() ||
          w->second.kind != telemetry::JsonValue::Kind::kNumber)
        return std::nullopt;
      s.worker = static_cast<int>(w->second.integer);
      if (s.worker < 0 || s.worker >= m.workers) return std::nullopt;
      if (auto f = row.find("runtime");
          f != row.end() &&
          f->second.kind == telemetry::JsonValue::Kind::kString) {
        if (!runtime::runtime_from_name(f->second.text)) return std::nullopt;
        s.runtime = f->second.text;
      }
      if (auto f = row.find("seed");
          f != row.end() &&
          f->second.kind == telemetry::JsonValue::Kind::kNumber)
        s.seed = static_cast<std::uint64_t>(f->second.integer);
      if (auto f = row.find("batches");
          f != row.end() &&
          f->second.kind == telemetry::JsonValue::Kind::kNumber)
        s.batches = static_cast<int>(f->second.integer);
      if (auto f = row.find("cpus");
          f != row.end() &&
          f->second.kind == telemetry::JsonValue::Kind::kNumber)
        s.cpus = f->second.number;
      if (auto f = row.find("cpuset");
          f != row.end() &&
          f->second.kind == telemetry::JsonValue::Kind::kString)
        s.cpuset = f->second.text;
      m.matrix.push_back(std::move(s));
    }
  }
  return m;
}

void save_manifest(const std::filesystem::path& file,
                   const Manifest& manifest) {
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
  }
  std::ofstream out(file);
  out << manifest_to_json(manifest) << "\n";
}

std::optional<Manifest> load_manifest(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return manifest_from_json(buffer.str());
}

}  // namespace torpedo::fleet
