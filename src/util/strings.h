// Small string helpers shared by the serializer, procfs parser, and report
// formatting. Kept deliberately minimal; anything std:: provides directly is
// not duplicated here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace torpedo {

// Split on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string_view> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

// Parses decimal or 0x-prefixed hex. Returns nullopt on any trailing junk.
std::optional<std::uint64_t> parse_u64(std::string_view s);
std::optional<std::int64_t> parse_i64(std::string_view s);

// Formats as 0x%x, the style used by the syzkaller text format.
std::string hex(std::uint64_t v);

// printf-style convenience.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace torpedo
