// Bump-pointer arena allocator.
//
// Backs the executor's pre-lowered program image (the fork-server snapshot
// of call storage): a prime() lowers the program into arena memory once, and
// every later reset() reuses the same chunks instead of returning them to
// the heap — per-mutation lowering churn becomes pointer arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

namespace torpedo::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 << 10)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw allocation; memory is uninitialized and freed only by the arena's
  // destruction (reset() recycles it).
  void* alloc(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    std::size_t offset = (offset_ + align - 1) & ~(align - 1);
    if (current_ >= chunks_.size() || offset + bytes > chunks_[current_].size) {
      if (!advance(bytes + align)) return nullptr;
      offset = (offset_ + align - 1) & ~(align - 1);
    }
    offset_ = offset + bytes;
    bytes_allocated_ += bytes;
    return chunks_[current_].data.get() + offset;
  }

  // Typed array of default-constructed elements. T must be trivially
  // destructible — the arena never runs destructors.
  template <typename T>
  T* make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    T* out = static_cast<T*>(alloc(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (out + i) T();
    return out;
  }

  // Copies `s` into the arena and returns a view of the stable copy.
  std::string_view intern(std::string_view s) {
    char* out = static_cast<char*>(alloc(s.size(), 1));
    std::memcpy(out, s.data(), s.size());
    return {out, s.size()};
  }

  // Recycle: every chunk is kept, all offsets rewind. Invalidates all
  // outstanding allocations.
  void reset() {
    current_ = 0;
    offset_ = 0;
    bytes_allocated_ = 0;
  }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  bool advance(std::size_t need) {
    // Move to the next existing chunk that fits, or grow.
    std::size_t next = chunks_.empty() ? 0 : current_ + 1;
    while (next < chunks_.size() && chunks_[next].size < need) ++next;
    if (next >= chunks_.size()) {
      const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
      chunks_.push_back({std::make_unique<char[]>(size), size});
      next = chunks_.size() - 1;
    }
    current_ = next;
    offset_ = 0;
    return true;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t offset_ = 0;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace torpedo::util
