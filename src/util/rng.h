// Deterministic random number generation.
//
// Every stochastic decision in the framework flows through an Rng instance
// seeded from the campaign configuration, so a campaign is exactly
// reproducible from its seed. Implementation: xoshiro256++, seeded via
// SplitMix64 (the reference seeding procedure).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace torpedo {

// Derives an independent stream seed from a base seed (one SplitMix64 step
// over base ^ mixed(stream)). Stream 0 returns the base unchanged, so
// "stream 0 of N" reproduces the unsharded configuration exactly; every
// other stream lands in an uncorrelated part of the seed space.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x7095ED0C0FFEEULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  // Uniform double in [0, 1).
  double uniform();

  // Pick a uniformly random element.
  template <typename T>
  const T& pick(std::span<const T> items) {
    TORPEDO_CHECK(!items.empty());
    return items[below(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  // Pick an index with probability proportional to weights[i].
  std::size_t weighted(std::span<const double> weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Fork a child generator whose stream is independent of further draws on
  // this one (used to give each executor its own stream).
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace torpedo
