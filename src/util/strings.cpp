#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace torpedo {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    s.remove_prefix(2);
    if (s.empty() || s.size() > 16) return std::nullopt;
    for (char c : s) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return std::nullopt;
      value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    return value;
  }
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t next = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (next < value) return std::nullopt;  // overflow
    value = next;
  }
  return value;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  bool neg = false;
  if (!s.empty() && (s.front() == '-' || s.front() == '+')) {
    neg = s.front() == '-';
    s.remove_prefix(1);
  }
  auto mag = parse_u64(s);
  if (!mag) return std::nullopt;
  if (neg) {
    if (*mag > 0x8000000000000000ULL) return std::nullopt;
    return -static_cast<std::int64_t>(*mag);
  }
  if (*mag > 0x7FFFFFFFFFFFFFFFULL) return std::nullopt;
  return static_cast<std::int64_t>(*mag);
}

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace torpedo
