// Virtual time units used throughout the simulator.
//
// All simulated time is expressed in nanoseconds since host boot. The
// /proc/stat surface converts to jiffies (USER_HZ = 100) when rendered, just
// like the real kernel, which is why the paper's appendix tables count in
// ~500-per-5s units.
#pragma once

#include <cstdint>

namespace torpedo {

using Nanos = std::int64_t;

// Sentinel for "no deadline / never": later than any representable instant.
inline constexpr Nanos kMaxNanos = INT64_MAX;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

// USER_HZ: granularity of /proc/stat counters.
inline constexpr Nanos kJiffy = kSecond / 100;

constexpr std::int64_t nanos_to_jiffies(Nanos ns) { return ns / kJiffy; }
constexpr Nanos jiffies_to_nanos(std::int64_t j) { return j * kJiffy; }

constexpr Nanos seconds(double s) {
  return static_cast<Nanos>(s * static_cast<double>(kSecond));
}

}  // namespace torpedo
