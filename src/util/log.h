// Minimal leveled logger. The fuzzing core and observer log round summaries
// through this; benches and tests lower the level to keep output clean.
#pragma once

#include <string>

#include "util/strings.h"

namespace torpedo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

#define TORPEDO_LOG(level, ...)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::torpedo::log_level()))                    \
      ::torpedo::log_message(level, ::torpedo::format(__VA_ARGS__)); \
  } while (0)

}  // namespace torpedo
