// Plain-text table formatter used by the bench harnesses to print the paper's
// tables (4.1-4.3, A.1-A.4) in the same row/column layout.
#pragma once

#include <string>
#include <vector>

namespace torpedo {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Renders with space-padded, left-aligned columns.
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace torpedo
