#include "util/rng.h"

#include <cmath>

namespace torpedo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t stream) {
  if (stream == 0) return base;
  std::uint64_t x = base ^ (stream * 0x9E3779B97F4A7C15ULL);
  return splitmix64(x);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  TORPEDO_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  TORPEDO_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  TORPEDO_CHECK(den > 0);
  if (num >= den) return true;
  return below(den) < num;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  TORPEDO_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    TORPEDO_CHECK(w >= 0);
    total += w;
  }
  TORPEDO_CHECK(total > 0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.state_) s = next();
  return child;
}

}  // namespace torpedo
