// Lightweight precondition / invariant checking.
//
// TORPEDO_CHECK is used for conditions that indicate a programming error in
// the framework itself (never for syscall-level errors, which are modeled as
// errno values). Violations throw, so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace torpedo {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string out = "check failed: ";
  out += expr;
  out += " at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  if (!msg.empty()) {
    out += " (";
    out += msg;
    out += ")";
  }
  throw CheckFailure(out);
}

}  // namespace torpedo

#define TORPEDO_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::torpedo::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TORPEDO_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::torpedo::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
