#include "util/table.h"

#include "util/check.h"

namespace torpedo {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TORPEDO_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  TORPEDO_CHECK_MSG(cells.size() == header_.size(),
                    "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit(header_, out);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, out);
  return out;
}

}  // namespace torpedo
