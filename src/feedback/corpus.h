// The program corpus: the manager-side collection of interesting programs.
//
// Entries are deduplicated by content hash; each remembers the coverage
// signal it contributed and the best oracle score it ever achieved (the
// paper keeps "only the set of mutated workloads that generated the most
// adversarial resource usage", §3.5.2).
#pragma once

#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "feedback/signal.h"
#include "prog/program.h"

namespace torpedo::feedback {

struct CorpusEntry {
  prog::Program program;
  SignalSet signal;
  double best_score = 0;
};

class Corpus {
 public:
  // Adds (or refreshes) an entry. Returns true if the program was new.
  bool add(prog::Program program, const SignalSet& signal, double score);

  // Global coverage accumulated across all added programs.
  const SignalSet& coverage() const { return coverage_; }
  // Convenience: would this signal contribute anything new?
  std::size_t novelty(const SignalSet& signal) const {
    return coverage_.novelty(signal);
  }
  std::size_t novelty(const SmallSignalSet& signal) const {
    return coverage_.novelty(signal);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CorpusEntry& entry(std::size_t i) const { return entries_[i]; }

  // Splice-donor view: pointers into the entries (stable — entries live in a
  // deque and are never removed), so each program is stored exactly once.
  std::span<const prog::Program* const> donors() const { return donors_; }

 private:
  std::deque<CorpusEntry> entries_;
  std::vector<const prog::Program*> donors_;  // entries_[i].program
  std::unordered_map<std::uint64_t, std::size_t> by_hash_;
  SignalSet coverage_;
};

}  // namespace torpedo::feedback
