// The program corpus: the manager-side collection of interesting programs.
//
// Entries are deduplicated by content hash; each remembers the coverage
// signal it contributed, the best oracle score it ever achieved (the
// paper keeps "only the set of mutated workloads that generated the most
// adversarial resource usage", §3.5.2), and its lineage: which corpus
// parent it was spliced from, which mutation operator produced it, and the
// round/shard it was born in. Lineage is what the introspection layer
// (mutation efficacy tables, ancestry chains in violation bundles,
// `torpedo stats`) is built on.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "feedback/signal.h"
#include "prog/program.h"

namespace torpedo::feedback {

// Where a program came from. The first two are batch origins (seed queue /
// generator); the other four are the mutation operators (prog/mutate.h).
enum class OriginOp : std::uint8_t {
  kSeed = 0,
  kGenerate,
  kSplice,
  kInsertCall,
  kRemoveCall,
  kMutateArg,
};
inline constexpr int kNumOriginOps = 6;

// Stable short names ("seed", "splice", ...) used in corpus.txt headers,
// mutation_efficacy.json, and /metrics labels.
std::string_view origin_op_name(OriginOp op);
std::optional<OriginOp> origin_op_from_name(std::string_view name);

// Provenance of one corpus entry. `parent_hash == 0` means root: the entry
// has no corpus parent (fresh seed or generated program). A non-zero parent
// is always the content hash of a splice donor, which by construction was a
// corpus entry when the splice happened — so parents resolve within the
// corpus (or the merged corpus, for sharded campaigns).
struct Lineage {
  std::uint64_t parent_hash = 0;
  OriginOp op = OriginOp::kSeed;
  int birth_round = -1;  // observer round whose retirement inserted the entry
  int birth_shard = -1;  // producing shard; -1 for unsharded campaigns
};

struct CorpusEntry {
  prog::Program program;
  SignalSet signal;
  double best_score = 0;
  Lineage lineage;
};

class Corpus {
 public:
  // Adds (or refreshes) an entry. Returns true if the program was new.
  // On a duplicate hash the existing entry keeps its lineage (first birth
  // wins — re-discovering a program does not rewrite its ancestry).
  bool add(prog::Program program, const SignalSet& signal, double score,
           Lineage lineage = {});

  // Global coverage accumulated across all added programs.
  const SignalSet& coverage() const { return coverage_; }
  // Convenience: would this signal contribute anything new?
  std::size_t novelty(const SignalSet& signal) const {
    return coverage_.novelty(signal);
  }
  std::size_t novelty(const SmallSignalSet& signal) const {
    return coverage_.novelty(signal);
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CorpusEntry& entry(std::size_t i) const { return entries_[i]; }

  // Entry by content hash; nullptr when absent.
  const CorpusEntry* find(std::uint64_t hash) const;

  // Ancestry chain length of the entry with this hash: 0 for a root entry,
  // 1 for a child of a root, ... Walks parent_hash links within this corpus;
  // a dangling or cyclic link terminates the walk (cycle guard at 64).
  std::size_t depth(std::uint64_t hash) const;

  // Default birth_shard stamped onto entries added with birth_shard == -1
  // (sharded campaigns set this once per shard stack; entries pulled from
  // another shard keep their original birth_shard).
  void set_shard(int shard) { shard_ = shard; }
  int shard() const { return shard_; }

  // Splice-donor view: pointers into the entries (stable — entries live in a
  // deque and are never removed), so each program is stored exactly once.
  std::span<const prog::Program* const> donors() const { return donors_; }

 private:
  std::deque<CorpusEntry> entries_;
  std::vector<const prog::Program*> donors_;  // entries_[i].program
  std::unordered_map<std::uint64_t, std::size_t> by_hash_;
  SignalSet coverage_;
  int shard_ = -1;
};

}  // namespace torpedo::feedback
