#include "feedback/syscall_profile.h"

#include "telemetry/json.h"

namespace torpedo::feedback {

namespace {
SyscallProfile* g_profile = nullptr;
}  // namespace

SyscallProfile* syscall_profile() { return g_profile; }
void set_syscall_profile(SyscallProfile* profile) { g_profile = profile; }

std::vector<SyscallProfile::Row> SyscallProfile::rows() const {
  std::vector<Row> out;
  for (int nr = 0; nr < kMaxSysno; ++nr) {
    const std::size_t i = static_cast<std::size_t>(nr);
    Row row;
    row.nr = nr;
    row.executions = executions_[i].load(std::memory_order_relaxed);
    row.signal_new = signal_[i].load(std::memory_order_relaxed);
    row.implications = implications_[i].load(std::memory_order_relaxed);
    if (row.executions || row.signal_new || row.implications)
      out.push_back(row);
  }
  return out;
}

std::string SyscallProfile::to_json(NameFn name) const {
  std::string array = "[";
  bool first = true;
  for (const Row& row : rows()) {
    telemetry::JsonDict d;
    d.set("nr", row.nr)
        .set("name", name != nullptr ? name(row.nr) : std::string_view("?"))
        .set("executions", row.executions)
        .set("signal_new", row.signal_new)
        .set("implications", row.implications);
    if (!first) array += ",";
    first = false;
    array += d.to_string();
  }
  array += "]";
  telemetry::JsonDict out;
  out.set_raw("syscalls", array);
  return out.to_string();
}

std::string SyscallProfile::to_prometheus(NameFn name) const {
  const std::vector<Row> all = rows();
  std::string out;
  auto series = [&](std::string_view metric, std::string_view help,
                    std::uint64_t Row::* field) {
    out += "# HELP " + std::string(metric) + " " + std::string(help) + "\n";
    out += "# TYPE " + std::string(metric) + " counter\n";
    for (const Row& row : all) {
      if (row.*field == 0) continue;
      const std::string_view n =
          name != nullptr ? name(row.nr) : std::string_view("unknown");
      out += std::string(metric) + "{syscall=\"" + std::string(n) +
             "\",nr=\"" + std::to_string(row.nr) +
             "\"} " + std::to_string(row.*field) + "\n";
    }
  };
  series("torpedo_syscall_executions_total",
         "per-syscall individual call executions", &Row::executions);
  series("torpedo_syscall_signal_total",
         "per-syscall novel coverage-signal elements at triage",
         &Row::signal_new);
  series("torpedo_syscall_implications_total",
         "per-syscall appearances in oracle-implicated programs",
         &Row::implications);
  return out;
}

void SyscallProfile::reset() {
  for (int nr = 0; nr < kMaxSysno; ++nr) {
    const std::size_t i = static_cast<std::size_t>(nr);
    executions_[i].store(0, std::memory_order_relaxed);
    signal_[i].store(0, std::memory_order_relaxed);
    implications_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace torpedo::feedback
