// Wire codec for the corpus-exchange protocol.
//
// Fleet mode (fleet/coordinator.h) runs the CorpusHub epoch protocol across
// processes: workers publish corpus entries and denylist deltas to the
// coordinator over a Unix-domain socket and pull merged deltas back. This
// header is the byte layer of that conversation — a little-endian,
// length-delimited encoding of CorpusEntry values, publish bodies, and
// delta bodies.
//
// Determinism contract: encoding is a pure function of the value. Signal
// elements are sorted before they are written (SignalSet iterates in hash
// order), so the same entry always encodes to the same bytes and the
// coordinator's merge sees a schedule-independent stream.
//
// Robustness contract: decoding never trusts the peer. Every read is
// bounds-checked; a truncated or oversized buffer flips the reader's ok()
// flag and the decode_* helpers return nullopt instead of tearing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "feedback/corpus.h"

namespace torpedo::feedback {

// --- primitive writer/reader --------------------------------------------------

// Appends little-endian primitives to a growing byte string.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);  // IEEE-754 bits as u64
  // u32 length prefix + raw bytes.
  void str(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Bounds-checked reads over a byte view. The first out-of-range read flips
// ok() to false; subsequent reads return zero values. Callers check ok()
// once at the end instead of after every field.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();

  bool ok() const { return ok_; }
  // All bytes consumed and no read ever ran short.
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- corpus-entry codec -------------------------------------------------------

// Program text, score, lineage, and the full signal set (sorted).
void encode_corpus_entry(WireWriter& w, const CorpusEntry& entry);
// nullopt on truncation, a program that fails to parse, or an unknown
// origin-op byte.
std::optional<CorpusEntry> decode_corpus_entry(WireReader& r);

// --- message bodies -----------------------------------------------------------

// What one worker pushes at a batch boundary.
struct PublishBody {
  std::vector<CorpusEntry> entries;
  std::vector<std::string> denylist;
};

// What the coordinator hands back after the epoch commits.
struct DeltaBody {
  std::uint64_t epoch = 0;
  std::vector<CorpusEntry> entries;
  std::vector<std::string> denylist;  // full merged denylist, sorted
};

std::string encode_publish(const PublishBody& body);
std::optional<PublishBody> decode_publish(std::string_view payload);

std::string encode_delta(const DeltaBody& body);
std::optional<DeltaBody> decode_delta(std::string_view payload);

}  // namespace torpedo::feedback
