#include "feedback/corpus_hub.h"

#include <algorithm>

#include "util/check.h"

namespace torpedo::feedback {

// --- CorpusLedger -------------------------------------------------------------

CorpusLedger::CorpusLedger(int shards)
    : shards_(shards),
      active_(shards),
      pending_(static_cast<std::size_t>(shards)),
      left_(static_cast<std::size_t>(shards), false),
      cursor_(static_cast<std::size_t>(shards), 0) {
  TORPEDO_CHECK(shards > 0);
}

void CorpusLedger::publish(int shard, std::vector<CorpusEntry> entries,
                           std::vector<std::string> denylist) {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  TORPEDO_CHECK_MSG(!left_[static_cast<std::size_t>(shard)],
                    "publish() after leave()");
  Pending& p = pending_[static_cast<std::size_t>(shard)];
  TORPEDO_CHECK_MSG(!p.present, "double publish() in one epoch");
  p.entries = std::move(entries);
  p.denylist = std::move(denylist);
  p.present = true;
  ++arrived_;
}

void CorpusLedger::commit_epoch() {
  for (int s = 0; s < shards_; ++s) {
    Pending& p = pending_[static_cast<std::size_t>(s)];
    if (!p.present) continue;
    for (CorpusEntry& entry : p.entries) {
      ++stats_.published;
      const std::uint64_t h = entry.program.hash();
      auto it = by_hash_.find(h);
      if (it == by_hash_.end()) {
        by_hash_[h] = committed_.size();
        committed_.push_back({std::move(entry), s});
        ++stats_.unique;
      } else {
        Committed& c = committed_[it->second];
        c.entry.signal.merge(entry.signal);
        if (entry.best_score > c.entry.best_score)
          c.entry.best_score = entry.best_score;
        ++stats_.merged;
      }
    }
    for (std::string& name : p.denylist) {
      auto it = std::lower_bound(denylist_.begin(), denylist_.end(), name);
      if (it == denylist_.end() || *it != name)
        denylist_.insert(it, std::move(name));
    }
    p = Pending{};
  }
  stats_.denylist_size = denylist_.size();
  arrived_ = 0;
  ++epoch_;
  ++stats_.epochs;
}

CorpusDelta CorpusLedger::pull(int shard) {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  CorpusDelta delta;
  delta.epoch = epoch_;
  std::size_t& cursor = cursor_[static_cast<std::size_t>(shard)];
  for (; cursor < committed_.size(); ++cursor) {
    const Committed& c = committed_[cursor];
    if (c.source_shard == shard) continue;
    delta.entries.push_back(c.entry);
    ++stats_.pulled;
  }
  delta.denylist = denylist_;
  return delta;
}

bool CorpusLedger::leave(int shard) {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  if (left_[static_cast<std::size_t>(shard)]) return false;
  left_[static_cast<std::size_t>(shard)] = true;
  --active_;
  // A pending publication from a leaving shard would stall the epoch count;
  // drop it (the shard's final state still reaches the merge via its local
  // corpus, not the hub).
  if (pending_[static_cast<std::size_t>(shard)].present) {
    pending_[static_cast<std::size_t>(shard)] = Pending{};
    --arrived_;
  }
  // The departure may be exactly what the barrier was waiting for.
  if (epoch_ready()) {
    commit_epoch();
    return true;
  }
  return false;
}

void CorpusLedger::rejoin(int shard) {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  TORPEDO_CHECK_MSG(left_[static_cast<std::size_t>(shard)],
                    "rejoin() of a shard that never left");
  left_[static_cast<std::size_t>(shard)] = false;
  pending_[static_cast<std::size_t>(shard)] = Pending{};
  // Rewind: the restarted shard rebuilds its corpus from the whole
  // committed stream on its first pull.
  cursor_[static_cast<std::size_t>(shard)] = 0;
  ++active_;
}

bool CorpusLedger::left(int shard) const {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  return left_[static_cast<std::size_t>(shard)];
}

bool CorpusLedger::published(int shard) const {
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  return pending_[static_cast<std::size_t>(shard)].present;
}

// --- CorpusHub ----------------------------------------------------------------

CorpusHub::CorpusHub(int shards) : ledger_(shards) {}

CorpusHub::Delta CorpusHub::exchange(int shard,
                                     std::vector<CorpusEntry> entries,
                                     std::vector<std::string> denylist) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t my_epoch = ledger_.epoch();
  ledger_.publish(shard, std::move(entries), std::move(denylist));
  if (ledger_.epoch_ready()) {
    ledger_.commit_epoch();
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return ledger_.epoch() > my_epoch; });
  }
  return ledger_.pull(shard);
}

void CorpusHub::leave(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ledger_.left(shard)) return;
  const bool committed = ledger_.leave(shard);
  if (committed || ledger_.active() == 0) cv_.notify_all();
}

CorpusHub::Stats CorpusHub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_.stats();
}

}  // namespace torpedo::feedback
