#include "feedback/corpus_hub.h"

#include <algorithm>

#include "util/check.h"

namespace torpedo::feedback {

CorpusHub::CorpusHub(int shards)
    : shards_(shards),
      active_(shards),
      pending_(static_cast<std::size_t>(shards)),
      left_(static_cast<std::size_t>(shards), false),
      cursor_(static_cast<std::size_t>(shards), 0) {
  TORPEDO_CHECK(shards > 0);
}

void CorpusHub::commit_epoch_locked() {
  for (int s = 0; s < shards_; ++s) {
    Pending& p = pending_[static_cast<std::size_t>(s)];
    if (!p.present) continue;
    for (CorpusEntry& entry : p.entries) {
      ++stats_.published;
      const std::uint64_t h = entry.program.hash();
      auto it = by_hash_.find(h);
      if (it == by_hash_.end()) {
        by_hash_[h] = committed_.size();
        committed_.push_back({std::move(entry), s});
        ++stats_.unique;
      } else {
        Committed& c = committed_[it->second];
        c.entry.signal.merge(entry.signal);
        if (entry.best_score > c.entry.best_score)
          c.entry.best_score = entry.best_score;
        ++stats_.merged;
      }
    }
    for (std::string& name : p.denylist) {
      auto it = std::lower_bound(denylist_.begin(), denylist_.end(), name);
      if (it == denylist_.end() || *it != name)
        denylist_.insert(it, std::move(name));
    }
    p = Pending{};
  }
  stats_.denylist_size = denylist_.size();
  arrived_ = 0;
  ++epoch_;
  ++stats_.epochs;
  cv_.notify_all();
}

CorpusHub::Delta CorpusHub::exchange(int shard,
                                     std::vector<CorpusEntry> entries,
                                     std::vector<std::string> denylist) {
  std::unique_lock<std::mutex> lock(mu_);
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  TORPEDO_CHECK_MSG(!left_[static_cast<std::size_t>(shard)],
                    "exchange() after leave()");
  Pending& p = pending_[static_cast<std::size_t>(shard)];
  TORPEDO_CHECK_MSG(!p.present, "double exchange() in one epoch");
  p.entries = std::move(entries);
  p.denylist = std::move(denylist);
  p.present = true;
  ++arrived_;

  const std::uint64_t my_epoch = epoch_;
  if (arrived_ >= active_) {
    commit_epoch_locked();
  } else {
    cv_.wait(lock, [&] { return epoch_ > my_epoch; });
  }

  Delta delta;
  delta.epoch = epoch_;
  std::size_t& cursor = cursor_[static_cast<std::size_t>(shard)];
  for (; cursor < committed_.size(); ++cursor) {
    const Committed& c = committed_[cursor];
    if (c.source_shard == shard) continue;
    delta.entries.push_back(c.entry);
    ++stats_.pulled;
  }
  delta.denylist = denylist_;
  return delta;
}

void CorpusHub::leave(int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  TORPEDO_CHECK(shard >= 0 && shard < shards_);
  if (left_[static_cast<std::size_t>(shard)]) return;
  left_[static_cast<std::size_t>(shard)] = true;
  --active_;
  // A pending publication from a leaving shard would stall the epoch count;
  // drop it (the shard's final state still reaches the merge via its local
  // corpus, not the hub).
  if (pending_[static_cast<std::size_t>(shard)].present) {
    pending_[static_cast<std::size_t>(shard)] = Pending{};
    --arrived_;
  }
  // The departure may be exactly what the barrier was waiting for.
  if (active_ > 0 && arrived_ >= active_) commit_epoch_locked();
  if (active_ == 0) cv_.notify_all();
}

CorpusHub::Stats CorpusHub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace torpedo::feedback
