#include "feedback/wire.h"

#include <algorithm>
#include <cstring>

namespace torpedo::feedback {

namespace {
// Entry/denylist counts are length-prefixed; a hostile or corrupt prefix
// must not drive a multi-gigabyte reserve. Real batches publish a handful
// of entries.
constexpr std::uint32_t kMaxListLength = 1u << 20;
}  // namespace

// --- WireWriter ---------------------------------------------------------------

void WireWriter::u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void WireWriter::u64(std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// --- WireReader ---------------------------------------------------------------

bool WireReader::take(std::size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t WireReader::u8() {
  const char* p = nullptr;
  if (!take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint32_t WireReader::u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  const char* p = nullptr;
  if (!take(n, &p)) return {};
  return std::string(p, n);
}

// --- corpus-entry codec -------------------------------------------------------

void encode_corpus_entry(WireWriter& w, const CorpusEntry& entry) {
  w.str(entry.program.serialize());
  w.f64(entry.best_score);
  w.u64(entry.lineage.parent_hash);
  w.u8(static_cast<std::uint8_t>(entry.lineage.op));
  w.i32(entry.lineage.birth_round);
  w.i32(entry.lineage.birth_shard);
  // SignalSet iterates in hash order; sort so identical sets always encode
  // to identical bytes.
  std::vector<std::uint64_t> elements(entry.signal.elements().begin(),
                                      entry.signal.elements().end());
  std::sort(elements.begin(), elements.end());
  w.u32(static_cast<std::uint32_t>(elements.size()));
  for (std::uint64_t e : elements) w.u64(e);
}

std::optional<CorpusEntry> decode_corpus_entry(WireReader& r) {
  const std::string text = r.str();
  CorpusEntry entry;
  entry.best_score = r.f64();
  entry.lineage.parent_hash = r.u64();
  const std::uint8_t op = r.u8();
  entry.lineage.birth_round = r.i32();
  entry.lineage.birth_shard = r.i32();
  const std::uint32_t signals = r.u32();
  // Each signal element is 8 bytes; reject counts the buffer cannot hold
  // before reserving.
  if (!r.ok() || signals > r.remaining() / 8) return std::nullopt;
  for (std::uint32_t i = 0; i < signals; ++i) entry.signal.add(r.u64());
  if (!r.ok() || op >= kNumOriginOps) return std::nullopt;
  entry.lineage.op = static_cast<OriginOp>(op);
  auto program = prog::Program::parse(text);
  if (!program) return std::nullopt;
  entry.program = std::move(*program);
  return entry;
}

// --- message bodies -----------------------------------------------------------

namespace {

void encode_string_list(WireWriter& w, const std::vector<std::string>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const std::string& s : list) w.str(s);
}

bool decode_string_list(WireReader& r, std::vector<std::string>& out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxListLength) return false;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(r.str());
    if (!r.ok()) return false;
  }
  return true;
}

void encode_entry_list(WireWriter& w, const std::vector<CorpusEntry>& list) {
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const CorpusEntry& e : list) encode_corpus_entry(w, e);
}

bool decode_entry_list(WireReader& r, std::vector<CorpusEntry>& out) {
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > kMaxListLength) return false;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto entry = decode_corpus_entry(r);
    if (!entry) return false;
    out.push_back(std::move(*entry));
  }
  return true;
}

}  // namespace

std::string encode_publish(const PublishBody& body) {
  WireWriter w;
  encode_entry_list(w, body.entries);
  encode_string_list(w, body.denylist);
  return w.take();
}

std::optional<PublishBody> decode_publish(std::string_view payload) {
  WireReader r(payload);
  PublishBody body;
  if (!decode_entry_list(r, body.entries)) return std::nullopt;
  if (!decode_string_list(r, body.denylist)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return body;
}

std::string encode_delta(const DeltaBody& body) {
  WireWriter w;
  w.u64(body.epoch);
  encode_entry_list(w, body.entries);
  encode_string_list(w, body.denylist);
  return w.take();
}

std::optional<DeltaBody> decode_delta(std::string_view payload) {
  WireReader r(payload);
  DeltaBody body;
  body.epoch = r.u64();
  if (!decode_entry_list(r, body.entries)) return std::nullopt;
  if (!decode_string_list(r, body.denylist)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;
  return body;
}

}  // namespace torpedo::feedback
