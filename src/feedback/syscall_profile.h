// Per-syscall attribution profiler.
//
// The feedback loop knows three things about each syscall number that the
// aggregate counters throw away: how often it actually executed, how much
// out-of-band coverage signal it contributed (novel fallback-signal elements
// at candidate triage, §3.5's program-level gate), and how often it appeared
// in a program the oracle flag scan implicated (§3.6.1). This profiler keeps
// all three as per-sysno counters so a live scrape (or the post-run report)
// can answer "which syscalls is this campaign actually learning from?".
//
// Threading matches the telemetry instruments: any number of shard threads
// may write concurrently (relaxed fetch_add per cell); the monitor thread
// reads relaxed for /metrics. The profiler is installed process-wide with
// set_syscall_profile(); every probe site is a pointer check when disabled,
// so campaigns that don't ask for the profile pay nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace torpedo::feedback {

class SyscallProfile {
 public:
  // Covers every real Linux syscall number (x86-64 tops out well below 512).
  static constexpr int kMaxSysno = 512;

  struct Row {
    int nr = 0;
    std::uint64_t executions = 0;    // individual call executions
    std::uint64_t signal_new = 0;    // novel signal elements at triage
    std::uint64_t implications = 0;  // appearances in flag-implicated programs
  };

  // Probes (campaign thread). Out-of-range nrs are dropped, not clamped.
  void record_execution(int nr) { bump(executions_, nr, 1); }
  void record_novel_signal(int nr, std::uint64_t novel) {
    bump(signal_, nr, novel);
  }
  void record_implication(int nr) { bump(implications_, nr, 1); }

  // Rows with any non-zero column, ascending by syscall number.
  std::vector<Row> rows() const;

  // Rendering takes a name table as a function so this layer stays below
  // kernel/ in the dependency graph (callers pass kernel::sysno_name).
  using NameFn = std::string_view (*)(int);

  // {"syscalls":[{"nr":..,"name":..,"executions":..,"signal_new":..,
  //   "implications":..},...]}
  std::string to_json(NameFn name) const;
  // Prometheus exposition: torpedo_syscall_executions_total,
  // torpedo_syscall_signal_total, torpedo_syscall_implications_total, each
  // with {syscall="<name>",nr="<nr>"} labels.
  std::string to_prometheus(NameFn name) const;

  void reset();

 private:
  using Cells = std::array<std::atomic<std::uint64_t>, kMaxSysno>;

  // Multi-writer: concurrent shard threads bump shared cells, so the per-call
  // hot path is a single relaxed RMW.
  static void bump(Cells& cells, int nr, std::uint64_t n) {
    if (nr < 0 || nr >= kMaxSysno || n == 0) return;
    cells[static_cast<std::size_t>(nr)].fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  Cells executions_{};
  Cells signal_{};
  Cells implications_{};
};

// The process-wide profile probes default to; nullptr == profiling disabled.
SyscallProfile* syscall_profile();
void set_syscall_profile(SyscallProfile* profile);

}  // namespace torpedo::feedback
