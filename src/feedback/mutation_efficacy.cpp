#include "feedback/mutation_efficacy.h"

#include "telemetry/json.h"

namespace torpedo::feedback {

namespace {
MutationEfficacy* g_efficacy = nullptr;
}  // namespace

MutationEfficacy* mutation_efficacy() { return g_efficacy; }
void set_mutation_efficacy(MutationEfficacy* efficacy) {
  g_efficacy = efficacy;
}

std::vector<MutationEfficacy::Row> MutationEfficacy::rows() const {
  std::vector<Row> rows;
  rows.reserve(kNumOriginOps);
  for (int i = 0; i < kNumOriginOps; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    Row row;
    row.op = static_cast<OriginOp>(i);
    row.attempts = attempts_[idx].load(std::memory_order_relaxed);
    row.accepted = accepted_[idx].load(std::memory_order_relaxed);
    row.executions = executions_[idx].load(std::memory_order_relaxed);
    row.novel_signal = novel_signal_[idx].load(std::memory_order_relaxed);
    row.violations = violations_[idx].load(std::memory_order_relaxed);
    row.corpus_inserts =
        corpus_inserts_[idx].load(std::memory_order_relaxed);
    rows.push_back(row);
  }
  return rows;
}

std::string MutationEfficacy::to_json() const {
  std::string ops = "[";
  bool first = true;
  for (const Row& row : rows()) {
    telemetry::JsonDict d;
    d.set("op", origin_op_name(row.op))
        .set("attempts", row.attempts)
        .set("accepted", row.accepted)
        .set("executions", row.executions)
        .set("novel_signal", row.novel_signal)
        .set("violations", row.violations)
        .set("corpus_inserts", row.corpus_inserts);
    if (!first) ops += ",";
    first = false;
    ops += d.to_string();
  }
  ops += "]";
  telemetry::JsonDict out;
  out.set_raw("ops", ops);
  return out.to_string();
}

std::string MutationEfficacy::to_prometheus() const {
  const std::vector<Row> all = rows();
  std::string out;
  struct Family {
    const char* name;
    const char* help;
    std::uint64_t Row::* column;
  };
  static constexpr Family kFamilies[] = {
      {"torpedo_mutation_attempts_total",
       "operator applications inside mutation bursts", &Row::attempts},
      {"torpedo_mutation_accepted_total",
       "operator applications inside accepted bursts", &Row::accepted},
      {"torpedo_mutation_executions_total",
       "executions attributed to the operator's programs", &Row::executions},
      {"torpedo_mutation_novel_signal_total",
       "novel coverage signal contributed at corpus retirement",
       &Row::novel_signal},
      {"torpedo_mutation_violations_total",
       "flag-scan violations attributed to the operator's programs",
       &Row::violations},
      {"torpedo_mutation_corpus_inserts_total",
       "corpus insertions of the operator's programs", &Row::corpus_inserts},
  };
  for (const Family& family : kFamilies) {
    out += "# HELP " + std::string(family.name) + " " + family.help + "\n";
    out += "# TYPE " + std::string(family.name) + " counter\n";
    for (const Row& row : all) {
      out += std::string(family.name) + "{op=\"" +
             std::string(origin_op_name(row.op)) + "\"} " +
             std::to_string(row.*family.column) + "\n";
    }
  }
  return out;
}

void MutationEfficacy::reset() {
  for (Cells* cells : {&attempts_, &accepted_, &executions_, &novel_signal_,
                       &violations_, &corpus_inserts_})
    for (auto& cell : *cells) cell.store(0, std::memory_order_relaxed);
}

}  // namespace torpedo::feedback
