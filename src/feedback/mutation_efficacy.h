// Per-mutation-operator efficacy profiler.
//
// The kernel-fuzzing literature treats mutation-energy assignment as one of
// the levers that separates fuzzers, but the aggregate counters
// (fuzzer.mutations_tried / _accepted) cannot say *which* operator earns its
// keep. This profiler keeps one row per origin operator (seed, generate,
// splice, insert_call, remove_call, mutate_arg) with six columns:
//
//   attempts        operator applications inside mutation bursts (batch
//                   origins count one "attempt" per program drafted)
//   accepted        applications inside bursts the score loop accepted
//   executions      simulated program executions attributed to programs this
//                   operator produced — summed over operators this equals
//                   the fuzzer's total_executions() exactly
//   novel_signal    coverage-signal elements the operator's programs
//                   contributed at corpus retirement
//   violations      oracle flag-scan violations in rounds attributed to the
//                   operator's programs
//   corpus_inserts  programs the operator produced that entered the corpus
//
// Threading matches SyscallProfile: any number of shard threads write
// concurrently (relaxed fetch_add per cell); readers are relaxed. Installed
// process-wide with set_mutation_efficacy(); every probe site is a pointer
// check when disabled. All totals are deterministic for a fixed (seed,
// config) because they are sums of per-shard deterministic contributions.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "feedback/corpus.h"

namespace torpedo::feedback {

class MutationEfficacy {
 public:
  struct Row {
    OriginOp op = OriginOp::kSeed;
    std::uint64_t attempts = 0;
    std::uint64_t accepted = 0;
    std::uint64_t executions = 0;
    std::uint64_t novel_signal = 0;
    std::uint64_t violations = 0;
    std::uint64_t corpus_inserts = 0;
  };

  // Probes (campaign / shard threads).
  void record_attempt(OriginOp op) { bump(attempts_, op, 1); }
  void record_accept(OriginOp op) { bump(accepted_, op, 1); }
  void record_executions(OriginOp op, std::uint64_t n) {
    bump(executions_, op, n);
  }
  void record_novel_signal(OriginOp op, std::uint64_t novel) {
    bump(novel_signal_, op, novel);
  }
  void record_violation(OriginOp op) { bump(violations_, op, 1); }
  void record_corpus_insert(OriginOp op) { bump(corpus_inserts_, op, 1); }

  // All six rows in fixed operator order (stable output shape).
  std::vector<Row> rows() const;

  // {"ops":[{"op":"seed","attempts":..,"accepted":..,"executions":..,
  //   "novel_signal":..,"violations":..,"corpus_inserts":..},...]}
  std::string to_json() const;
  // Prometheus exposition: torpedo_mutation_attempts_total,
  // torpedo_mutation_accepted_total, torpedo_mutation_executions_total,
  // torpedo_mutation_novel_signal_total, torpedo_mutation_violations_total,
  // torpedo_mutation_corpus_inserts_total, each with {op="<name>"} labels.
  std::string to_prometheus() const;

  void reset();

 private:
  using Cells = std::array<std::atomic<std::uint64_t>, kNumOriginOps>;

  static void bump(Cells& cells, OriginOp op, std::uint64_t n) {
    const auto i = static_cast<std::size_t>(op);
    if (i >= kNumOriginOps || n == 0) return;
    cells[i].fetch_add(n, std::memory_order_relaxed);
  }

  Cells attempts_{};
  Cells accepted_{};
  Cells executions_{};
  Cells novel_signal_{};
  Cells violations_{};
  Cells corpus_inserts_{};
};

// The process-wide profiler probes default to; nullptr == disabled.
MutationEfficacy* mutation_efficacy();
void set_mutation_efficacy(MutationEfficacy* efficacy);

}  // namespace torpedo::feedback
