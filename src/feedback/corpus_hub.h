// Cross-shard corpus exchange (the syzkaller-hub idea, in-process).
//
// A sharded campaign (core/sharded.h) runs K fully independent campaign
// stacks; the hub is the only object they share. After each batch a shard
// publishes the corpus entries it added plus its learned denylist, waits at
// an epoch barrier until every *active* shard has arrived, and pulls the
// entries other shards contributed since its last visit.
//
// Determinism contract: the merged state after any epoch is a pure function
// of what each shard published, never of thread scheduling. Two mechanisms
// enforce this:
//   1. Epoch barrier — publications are held pending until all active shards
//      arrive; the last arriver commits every pending publication in
//      ascending shard order. So when two shards publish the same program
//      hash in one epoch, the lower shard index always wins the insert and
//      the higher one merges (signal union, max score) — regardless of which
//      thread got there first.
//   2. Per-shard pull cursors — a shard pulls exactly the committed entries
//      appended since its previous exchange, in commit order.
//
// A shard that finishes (or dies) calls leave(); the barrier shrinks so the
// remaining shards cannot deadlock, and a leave that satisfies the barrier
// commits the epoch on behalf of the waiters.
//
// The protocol state machine itself lives in CorpusLedger — a plain,
// non-blocking object with explicit publish/commit/pull/leave/rejoin steps.
// CorpusHub wraps it with a mutex + condvar for the in-process threaded
// case; the fleet coordinator (fleet/coordinator.h) drives the same ledger
// from its poll() loop, with workers on the far side of a socket instead of
// a condition variable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "feedback/corpus.h"

namespace torpedo::feedback {

// What a shard takes home from an exchange.
struct CorpusDelta {
  // Novel entries committed since this shard's previous exchange,
  // excluding its own publications, in deterministic commit order. Whole
  // CorpusEntry values travel through the hub, so lineage (parent hash,
  // origin op, birth round/shard) survives cross-shard pulls; splice
  // donors were corpus-resident before their children were born, so they
  // were published no later than the child's batch — a pulled entry's
  // parent always resolves once the puller's corpus catches up.
  std::vector<CorpusEntry> entries;
  // The full merged denylist (sorted), superset of what was published.
  std::vector<std::string> denylist;
  std::uint64_t epoch = 0;  // epoch this exchange completed
};

// The epoch-commit merge state machine, single-threaded and non-blocking.
// The owner decides when an epoch is ready (epoch_ready()) and commits it;
// the determinism contract above is entirely in here.
class CorpusLedger {
 public:
  explicit CorpusLedger(int shards);

  CorpusLedger(const CorpusLedger&) = delete;
  CorpusLedger& operator=(const CorpusLedger&) = delete;

  // Stages one shard's publication for the current epoch. Publishing twice
  // in one epoch or after leaving (without rejoin) is a checked error.
  void publish(int shard, std::vector<CorpusEntry> entries,
               std::vector<std::string> denylist);

  // True when every active shard has published the current epoch.
  bool epoch_ready() const { return active_ > 0 && arrived_ >= active_; }

  // Commits every pending publication in ascending shard order and opens
  // the next epoch. Caller decides readiness (normally epoch_ready()).
  void commit_epoch();

  // Everything committed since this shard's previous pull, excluding its
  // own publications, in commit order. Advances the shard's cursor.
  CorpusDelta pull(int shard);

  // Permanently removes a shard from the barrier (done or dying) until
  // rejoin(). Drops its pending publication. Returns true when the
  // departure was exactly what the barrier waited for and this call
  // committed the epoch. Idempotent.
  bool leave(int shard);

  // Re-activates a left shard (a restarted fleet worker). Its pull cursor
  // rewinds to zero, so the first pull replays the entire committed stream
  // — the restart checkpoint is the ledger itself.
  void rejoin(int shard);

  bool left(int shard) const;
  bool published(int shard) const;
  int shards() const { return shards_; }
  int active() const { return active_; }
  std::uint64_t epoch() const { return epoch_; }

  // One committed entry (merged signal/score), in commit order.
  struct Committed {
    CorpusEntry entry;
    int source_shard = -1;
  };
  const std::vector<Committed>& committed() const { return committed_; }
  const std::vector<std::string>& denylist() const { return denylist_; }

  // Aggregate counters (monitor / bench).
  struct Stats {
    std::uint64_t epochs = 0;     // completed exchange epochs
    std::uint64_t published = 0;  // entries shards pushed in
    std::uint64_t unique = 0;     // distinct program hashes committed
    std::uint64_t merged = 0;     // publications that hit an existing hash
    std::uint64_t pulled = 0;     // entries handed back out
    std::uint64_t denylist_size = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<CorpusEntry> entries;
    std::vector<std::string> denylist;
    bool present = false;
  };

  const int shards_;
  int active_;
  int arrived_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<Pending> pending_;      // indexed by shard
  std::vector<bool> left_;            // indexed by shard
  std::vector<Committed> committed_;  // append-only
  std::unordered_map<std::uint64_t, std::size_t> by_hash_;
  std::vector<std::string> denylist_;  // kept sorted
  std::vector<std::size_t> cursor_;    // per-shard pull position
  Stats stats_;
};

// The threaded wrapper: exchange() blocks at the epoch barrier on a
// condition variable. This is what ShardedCampaign's shard threads share.
class CorpusHub {
 public:
  explicit CorpusHub(int shards);

  CorpusHub(const CorpusHub&) = delete;
  CorpusHub& operator=(const CorpusHub&) = delete;

  using Delta = CorpusDelta;
  using Stats = CorpusLedger::Stats;

  // Publishes `entries` + `denylist`, blocks until every active shard has
  // arrived at this epoch, then returns the pull. Call exactly once per
  // batch boundary per shard; calling from a shard that already left is an
  // error.
  Delta exchange(int shard, std::vector<CorpusEntry> entries,
                 std::vector<std::string> denylist);

  // Permanently removes a shard from the barrier (done or dying). Idempotent.
  void leave(int shard);

  // Aggregate counters (monitor / bench). Safe to call concurrently.
  Stats stats() const;

  int shards() const { return ledger_.shards(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  CorpusLedger ledger_;
};

}  // namespace torpedo::feedback
