#include "feedback/corpus.h"

namespace torpedo::feedback {

namespace {
constexpr std::string_view kOpNames[kNumOriginOps] = {
    "seed", "generate", "splice", "insert_call", "remove_call", "mutate_arg"};
}  // namespace

std::string_view origin_op_name(OriginOp op) {
  const auto i = static_cast<std::size_t>(op);
  return i < kNumOriginOps ? kOpNames[i] : "unknown";
}

std::optional<OriginOp> origin_op_from_name(std::string_view name) {
  for (int i = 0; i < kNumOriginOps; ++i)
    if (kOpNames[static_cast<std::size_t>(i)] == name)
      return static_cast<OriginOp>(i);
  return std::nullopt;
}

bool Corpus::add(prog::Program program, const SignalSet& signal, double score,
                 Lineage lineage) {
  coverage_.merge(signal);
  const std::uint64_t h = program.hash();
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    CorpusEntry& entry = entries_[it->second];
    entry.signal.merge(signal);
    if (score > entry.best_score) entry.best_score = score;
    return false;
  }
  if (lineage.birth_shard < 0) lineage.birth_shard = shard_;
  by_hash_[h] = entries_.size();
  CorpusEntry entry;
  entry.program = std::move(program);
  entry.signal = signal;
  entry.best_score = score;
  entry.lineage = lineage;
  entries_.push_back(std::move(entry));
  donors_.push_back(&entries_.back().program);
  return true;
}

const CorpusEntry* Corpus::find(std::uint64_t hash) const {
  auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? nullptr : &entries_[it->second];
}

std::size_t Corpus::depth(std::uint64_t hash) const {
  std::size_t depth = 0;
  const CorpusEntry* entry = find(hash);
  while (entry != nullptr && entry->lineage.parent_hash != 0 && depth < 64) {
    const CorpusEntry* parent = find(entry->lineage.parent_hash);
    if (parent == nullptr || parent == entry) break;
    ++depth;
    entry = parent;
  }
  return depth;
}

}  // namespace torpedo::feedback
