#include "feedback/corpus.h"

namespace torpedo::feedback {

bool Corpus::add(prog::Program program, const SignalSet& signal,
                 double score) {
  coverage_.merge(signal);
  const std::uint64_t h = program.hash();
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    CorpusEntry& entry = entries_[it->second];
    entry.signal.merge(signal);
    if (score > entry.best_score) entry.best_score = score;
    return false;
  }
  by_hash_[h] = entries_.size();
  CorpusEntry entry;
  entry.program = std::move(program);
  entry.signal = signal;
  entry.best_score = score;
  entries_.push_back(std::move(entry));
  donors_.push_back(&entries_.back().program);
  return true;
}

}  // namespace torpedo::feedback
