// Coverage signal.
//
// Kernel line coverage (kcov) is unavailable under gVisor, and the paper
// disables it everywhere for parity (§3.1.2, §4.2): "SYZKALLER computes a
// 'coverage' signal by computing the unique XOR of the syscall number and
// return code". fallback_signal is exactly that computation; SignalSet is
// the dedup container the fuzzer and corpus share.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace torpedo::feedback {

// One signal element for an executed call.
constexpr std::uint64_t fallback_signal(int sysno, int err) {
  std::uint64_t v = static_cast<std::uint64_t>(sysno) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(err))
                     << 16);
  // Finalize (splitmix64 tail) so near-identical inputs spread out.
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
  return v ^ (v >> 31);
}

class SignalSet {
 public:
  // Returns true if the element was new.
  bool add(std::uint64_t element) { return elements_.insert(element).second; }

  bool contains(std::uint64_t element) const {
    return elements_.contains(element);
  }

  // Merges `other` in; returns how many elements were new.
  std::size_t merge(const SignalSet& other) {
    std::size_t added = 0;
    for (std::uint64_t e : other.elements_)
      if (elements_.insert(e).second) ++added;
    return added;
  }

  // How many of `other`'s elements are NOT already in this set.
  std::size_t novelty(const SignalSet& other) const {
    std::size_t n = 0;
    for (std::uint64_t e : other.elements_)
      if (!elements_.contains(e)) ++n;
    return n;
  }

  std::size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  void clear() { elements_.clear(); }

  const std::unordered_set<std::uint64_t>& elements() const {
    return elements_;
  }

 private:
  std::unordered_set<std::uint64_t> elements_;
};

}  // namespace torpedo::feedback
