// Coverage signal.
//
// Kernel line coverage (kcov) is unavailable under gVisor, and the paper
// disables it everywhere for parity (§3.1.2, §4.2): "SYZKALLER computes a
// 'coverage' signal by computing the unique XOR of the syscall number and
// return code". fallback_signal is exactly that computation; SignalSet is
// the dedup container the fuzzer and corpus share, and SmallSignalSet is the
// allocation-light variant the executor keeps per call index.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

namespace torpedo::feedback {

// One signal element for an executed call.
constexpr std::uint64_t fallback_signal(int sysno, int err) {
  std::uint64_t v = static_cast<std::uint64_t>(sysno) ^
                    (static_cast<std::uint64_t>(static_cast<std::uint32_t>(err))
                     << 16);
  // Finalize (splitmix64 tail) so near-identical inputs spread out.
  v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
  v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
  return v ^ (v >> 31);
}

// Small sorted-vector signal set for the per-call hot path. A call index
// observes a handful of distinct (sysno, err) pairs per round, so a sorted
// vector beats an unordered_set there: one contiguous allocation instead of
// a node per element, and linear insert at these sizes is cheaper than
// hashing (see bench_micro BM_SignalPerCall_*).
class SmallSignalSet {
 public:
  // Returns true if the element was new.
  bool add(std::uint64_t element) {
    auto it = std::lower_bound(elements_.begin(), elements_.end(), element);
    if (it != elements_.end() && *it == element) return false;
    elements_.insert(it, element);
    return true;
  }

  bool contains(std::uint64_t element) const {
    return std::binary_search(elements_.begin(), elements_.end(), element);
  }

  std::size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  void clear() { elements_.clear(); }

  // Sorted ascending.
  std::span<const std::uint64_t> elements() const { return elements_; }

 private:
  std::vector<std::uint64_t> elements_;
};

class SignalSet {
 public:
  // Returns true if the element was new.
  bool add(std::uint64_t element) { return elements_.insert(element).second; }

  bool contains(std::uint64_t element) const {
    return elements_.contains(element);
  }

  // Merges `other` in; returns how many elements were new. Reserving up
  // front keeps a growing merge to at most one rehash instead of one per
  // load-factor doubling.
  std::size_t merge(const SignalSet& other) {
    elements_.reserve(elements_.size() + other.elements_.size());
    std::size_t added = 0;
    for (std::uint64_t e : other.elements_)
      if (elements_.insert(e).second) ++added;
    return added;
  }

  // How many of `other`'s elements are NOT already in this set.
  std::size_t novelty(const SignalSet& other) const {
    std::size_t n = 0;
    for (std::uint64_t e : other.elements_)
      if (!elements_.contains(e)) ++n;
    return n;
  }
  std::size_t novelty(const SmallSignalSet& other) const {
    std::size_t n = 0;
    for (std::uint64_t e : other.elements())
      if (!elements_.contains(e)) ++n;
    return n;
  }

  std::size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  void clear() { elements_.clear(); }

  const std::unordered_set<std::uint64_t>& elements() const {
    return elements_;
  }

 private:
  std::unordered_set<std::uint64_t> elements_;
};

}  // namespace torpedo::feedback
