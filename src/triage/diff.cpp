#include "triage/diff.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace torpedo::triage {

namespace fs = std::filesystem;

namespace {

double num_field(const std::map<std::string, telemetry::JsonValue>& obj,
                 const std::string& key, double fallback = 0) {
  auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  const telemetry::JsonValue& v = it->second;
  return v.is_integer ? static_cast<double>(v.integer) : v.number;
}

std::string str_field(const std::map<std::string, telemetry::JsonValue>& obj,
                      const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? std::string() : it->second.text;
}

std::string cluster_label(const Cluster& c) {
  const std::string syscalls = join_multiset(c.centroid.syscalls);
  if (c.centroid.cause.empty()) return syscalls;
  if (syscalls.empty()) return c.centroid.cause;
  return syscalls + " | " + c.centroid.cause;
}

// Executions per simulated second: per shard, the last timeseries sample's
// executions divided by its sim time, summed. A pure function of the
// recorded artifact — no wall clock involved, so the self-diff is exact.
bool throughput_of(const fs::path& workdir, double* out) {
  std::ifstream in(workdir / "timeseries.jsonl");
  if (!in) return false;
  struct Last {
    double executions = 0;
    double sim_ns = 0;
  };
  std::map<int, Last> by_shard;
  std::string line;
  while (std::getline(in, line)) {
    if (trim(line).empty()) continue;
    const auto obj = telemetry::parse_json_object(line);
    if (!obj) continue;
    const int shard = obj->count("shard")
                          ? static_cast<int>(num_field(*obj, "shard"))
                          : -1;
    by_shard[shard] = {num_field(*obj, "executions"),
                       num_field(*obj, "sim_ns")};
  }
  if (by_shard.empty()) return false;
  double rate = 0;
  for (const auto& [shard, last] : by_shard) {
    (void)shard;
    if (last.sim_ns > 0) rate += last.executions / (last.sim_ns / 1e9);
  }
  *out = rate;
  return true;
}

struct EfficacyRow {
  double attempts = 0;
  double accepted = 0;
  std::uint64_t novel = 0;
};

std::map<std::string, EfficacyRow> efficacy_of(const fs::path& workdir) {
  std::map<std::string, EfficacyRow> rows;
  std::ifstream in(workdir / "mutation_efficacy.json");
  if (!in) return rows;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto obj = telemetry::parse_json_object(trim(buffer.str()));
  if (!obj) return rows;
  auto ops_it = obj->find("ops");
  if (ops_it == obj->end()) return rows;
  const auto ops =
      telemetry::parse_json_array_of_objects(trim(ops_it->second.text));
  if (!ops) return rows;
  for (const auto& op : *ops) {
    EfficacyRow row;
    row.attempts = num_field(op, "attempts");
    row.accepted = num_field(op, "accepted");
    row.novel = static_cast<std::uint64_t>(num_field(op, "novel_signal"));
    rows[str_field(op, "op")] = row;
  }
  return rows;
}

}  // namespace

telemetry::JsonDict DiffResult::to_json() const {
  auto matched_array = [](const std::vector<MatchedCluster>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += telemetry::JsonDict{}
                 .set("cluster_a", v[i].id_a)
                 .set("cluster_b", v[i].id_b)
                 .set("similarity", v[i].similarity)
                 .set("severity_a", v[i].severity_a)
                 .set("severity_b", v[i].severity_b)
                 .set("size_a", static_cast<std::int64_t>(v[i].size_a))
                 .set("size_b", static_cast<std::int64_t>(v[i].size_b))
                 .set("label", v[i].label)
                 .to_string();
    }
    return out + "]";
  };
  auto unmatched_array = [](const std::vector<UnmatchedCluster>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i) out += ",";
      out += telemetry::JsonDict{}
                 .set("cluster", v[i].id)
                 .set("severity", v[i].severity)
                 .set("size", static_cast<std::int64_t>(v[i].size))
                 .set("label", v[i].label)
                 .to_string();
    }
    return out + "]";
  };
  std::string reasons = "[";
  for (std::size_t i = 0; i < regression_reasons.size(); ++i) {
    if (i) reasons += ",";
    reasons += "\"" + telemetry::json_escape(regression_reasons[i]) + "\"";
  }
  reasons += "]";
  std::string ops = "[";
  for (std::size_t i = 0; i < efficacy.size(); ++i) {
    if (i) ops += ",";
    ops += telemetry::JsonDict{}
               .set("op", efficacy[i].op)
               .set("accept_rate_a", efficacy[i].accept_rate_a)
               .set("accept_rate_b", efficacy[i].accept_rate_b)
               .set("novel_signal_a", efficacy[i].novel_a)
               .set("novel_signal_b", efficacy[i].novel_b)
               .to_string();
  }
  ops += "]";

  telemetry::JsonDict d;
  d.set("ran", ran)
      .set("error", error)
      .set("regression", regression)
      .set_raw("regression_reasons", reasons)
      .set_raw("persisting", matched_array(persisting))
      .set_raw("fixed", unmatched_array(fixed))
      .set_raw("added", unmatched_array(added))
      .set("have_throughput", have_throughput)
      .set("execs_per_sim_sec_a", execs_per_sim_sec_a)
      .set("execs_per_sim_sec_b", execs_per_sim_sec_b)
      .set_raw("mutation_efficacy", ops);
  return d;
}

DiffResult diff_workdirs(const fs::path& a, const fs::path& b,
                         const DiffOptions& options) {
  DiffResult result;
  const auto tri_a = triage_workdir(a, options.cluster);
  if (!tri_a) {
    result.error = "cannot triage " + a.string() +
                   " (no clusters.json and no violation bundles)";
    return result;
  }
  const auto tri_b = triage_workdir(b, options.cluster);
  if (!tri_b) {
    result.error = "cannot triage " + b.string() +
                   " (no clusters.json and no violation bundles)";
    return result;
  }
  result.ran = true;

  // Greedy best-pair matching: repeatedly take the highest-similarity
  // (cluster_a, cluster_b) pair above the threshold, ties toward the lowest
  // (id_a, id_b). Deterministic and order-independent.
  struct Pair {
    double sim;
    std::size_t ia, ib;
  };
  std::vector<Pair> pairs;
  for (std::size_t ia = 0; ia < tri_a->clusters.size(); ++ia)
    for (std::size_t ib = 0; ib < tri_b->clusters.size(); ++ib) {
      const double sim = weighted_jaccard(tri_a->clusters[ia].centroid,
                                          tri_b->clusters[ib].centroid,
                                          options.cluster.weights);
      if (sim >= options.match_threshold) pairs.push_back({sim, ia, ib});
    }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    if (x.sim != y.sim) return x.sim > y.sim;
    if (x.ia != y.ia) return x.ia < y.ia;
    return x.ib < y.ib;
  });
  std::vector<bool> used_a(tri_a->clusters.size(), false);
  std::vector<bool> used_b(tri_b->clusters.size(), false);
  for (const Pair& p : pairs) {
    if (used_a[p.ia] || used_b[p.ib]) continue;
    used_a[p.ia] = true;
    used_b[p.ib] = true;
    const Cluster& ca = tri_a->clusters[p.ia];
    const Cluster& cb = tri_b->clusters[p.ib];
    result.persisting.push_back({ca.id, cb.id, p.sim, ca.severity,
                                 cb.severity, ca.members.size(),
                                 cb.members.size(), cluster_label(cb)});
  }
  std::sort(result.persisting.begin(), result.persisting.end(),
            [](const MatchedCluster& x, const MatchedCluster& y) {
              return x.id_a < y.id_a;
            });
  for (std::size_t ia = 0; ia < tri_a->clusters.size(); ++ia)
    if (!used_a[ia]) {
      const Cluster& c = tri_a->clusters[ia];
      result.fixed.push_back(
          {c.id, c.severity, c.members.size(), cluster_label(c)});
    }
  for (std::size_t ib = 0; ib < tri_b->clusters.size(); ++ib)
    if (!used_b[ib]) {
      const Cluster& c = tri_b->clusters[ib];
      result.added.push_back(
          {c.id, c.severity, c.members.size(), cluster_label(c)});
    }

  double rate_a = 0, rate_b = 0;
  if (throughput_of(a, &rate_a) && throughput_of(b, &rate_b)) {
    result.have_throughput = true;
    result.execs_per_sim_sec_a = rate_a;
    result.execs_per_sim_sec_b = rate_b;
  }

  const auto eff_a = efficacy_of(a);
  const auto eff_b = efficacy_of(b);
  std::map<std::string, bool> ops_seen;
  for (const auto& [op, row] : eff_a) {
    (void)row;
    ops_seen[op] = true;
  }
  for (const auto& [op, row] : eff_b) {
    (void)row;
    ops_seen[op] = true;
  }
  for (const auto& [op, seen] : ops_seen) {
    (void)seen;
    EfficacyDelta delta;
    delta.op = op;
    if (auto it = eff_a.find(op); it != eff_a.end()) {
      delta.accept_rate_a = it->second.attempts > 0
                                ? it->second.accepted / it->second.attempts
                                : 0;
      delta.novel_a = it->second.novel;
    }
    if (auto it = eff_b.find(op); it != eff_b.end()) {
      delta.accept_rate_b = it->second.attempts > 0
                                ? it->second.accepted / it->second.attempts
                                : 0;
      delta.novel_b = it->second.novel;
    }
    result.efficacy.push_back(std::move(delta));
  }

  // Regression verdict.
  if (!result.added.empty())
    result.regression_reasons.push_back(
        format("%zu new cluster%s", result.added.size(),
               result.added.size() == 1 ? "" : "s"));
  for (const MatchedCluster& m : result.persisting)
    if (m.severity_b - m.severity_a > options.severity_regression)
      result.regression_reasons.push_back(
          format("cluster severity rose %.1f -> %.1f (%s)", m.severity_a,
                 m.severity_b, m.label.c_str()));
  if (options.max_throughput_drop_pct >= 0 && result.have_throughput &&
      result.execs_per_sim_sec_a > 0) {
    const double drop_pct =
        100.0 *
        (result.execs_per_sim_sec_a - result.execs_per_sim_sec_b) /
        result.execs_per_sim_sec_a;
    if (drop_pct > options.max_throughput_drop_pct)
      result.regression_reasons.push_back(
          format("throughput dropped %.1f%% (%.0f -> %.0f exec/sim-s)",
                 drop_pct, result.execs_per_sim_sec_a,
                 result.execs_per_sim_sec_b));
  }
  result.regression = !result.regression_reasons.empty();
  return result;
}

}  // namespace torpedo::triage
