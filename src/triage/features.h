// Triage feature vectors (the clustering half of fuzzing-as-a-service).
//
// A campaign at scale produces far more confirmed findings than a human can
// read; the report layer's exact-program-hash dedup only collapses literal
// re-discoveries. This module extracts a deterministic feature vector per
// finding from its provenance bundle — the oracle heuristics that fired, the
// minimized program's syscall multiset, the KernelTrace signal set, the
// violated subjects, the runtime, and the interference magnitude — so that
// near-duplicate findings (same root cause, different program text) can be
// grouped by weighted-Jaccard similarity.
//
// Two extraction paths produce the *same* vector: features_from_provenance
// (in-process, `torpedo run` right after finalize) and features_from_bundle
// (offline, `torpedo report`/`torpedo diff` re-reading bundle.json). Both
// sort every set facet, so the vector is a pure function of the finding and
// clustering is independent of bundle numbering or shard interleaving.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/provenance.h"
#include "telemetry/json.h"

namespace torpedo::triage {

// Deterministic per-finding feature vector. String-vector facets are sorted
// and deduplicated; the syscall multiset is sorted by name and keeps counts.
struct FindingFeatures {
  // Identity / metadata (not part of similarity).
  int bundle = -1;           // violations/NNN bundle id
  std::string program_hash;  // 16-hex-digit minimized-program signature
  int source_round = -1;
  int shard = -1;  // -1 == unsharded
  double oracle_score = 0;

  // Similarity facets.
  std::vector<std::string> heuristics;  // distinct oracle heuristics fired
  std::vector<std::pair<std::string, int>> syscalls;  // minimized multiset
  std::vector<std::string> signals;   // distinct KernelTrace event kinds
  std::vector<std::string> subjects;  // distinct violated subjects
  std::string cause;                  // KernelTrace classification
  std::string runtime;                // container runtime under test

  // Severity inputs.
  double escape_magnitude = 1.0;  // worst violation excess ratio (>= 1)
  int minimized_calls = 0;        // calls in the minimized program
  int confirm_rounds = 0;         // observer rounds spent confirming
};

// Direction-agnostic violation excess: how far `value` escaped `threshold`,
// as a ratio >= 1. Handles both "expect below" heuristics (value above the
// threshold is bad) and "expect above" ones (value below is bad) without
// knowing which kind fired, because either direction lands at ratio > 1.
// Capped at 10 so one absurd outlier cannot dominate severity.
double violation_excess(double value, double threshold);

// Syscall-name multiset of a serialized program ("r0 = open(...)" lines),
// sorted by name. Returns pairs of (name, count).
std::vector<std::pair<std::string, int>> syscall_multiset(
    std::string_view serialized_program);

// In-process extraction from a finalized campaign's provenance record.
FindingFeatures features_from_provenance(const core::Provenance& p,
                                         int bundle_id,
                                         std::string_view runtime);

// Offline extraction from a parsed bundle.json object (parse_json_object
// output). Returns nullopt when the object lacks the mandatory fields.
std::optional<FindingFeatures> features_from_bundle(
    const std::map<std::string, telemetry::JsonValue>& bundle,
    std::string_view runtime);

// Facet weights for the similarity metric. The defaults emphasize what the
// oracle saw (heuristics) and what the program did (syscall multiset) over
// circumstantial facets; they sum to 1.
struct SimilarityWeights {
  double heuristics = 0.30;
  double syscalls = 0.30;
  double cause = 0.20;
  double signals = 0.10;
  double subjects = 0.05;
  double runtime = 0.05;
};

// Weighted-Jaccard similarity in [0, 1]: per-facet Jaccard (sets) or
// sum-min/sum-max (the syscall multiset), combined by the weights. Two
// findings with identical facets score 1; fully disjoint facets score 0.
// Symmetric, deterministic.
double weighted_jaccard(const FindingFeatures& a, const FindingFeatures& b,
                        const SimilarityWeights& weights = {});

// Comma-joined renderers for persistence ("a,b" / "open:2,sync:1") and their
// parsers, used by clusters.json round-tripping.
std::string join_facet(const std::vector<std::string>& facet);
std::vector<std::string> parse_facet(std::string_view text);
std::string join_multiset(const std::vector<std::pair<std::string, int>>& ms);
std::vector<std::pair<std::string, int>> parse_multiset(std::string_view text);

}  // namespace torpedo::triage
