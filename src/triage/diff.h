// Cross-campaign diffing: `torpedo diff WD_A WD_B`.
//
// Matches the triage clusters of two workdirs (greedy best-pair matching on
// centroid weighted-Jaccard similarity) and classifies each as persisting
// (in both), fixed (only in A) or new (only in B), alongside throughput and
// mutation-efficacy deltas read from the workdirs' introspection artifacts.
// Everything is deterministic, so CI can gate on the regression verdict:
// new clusters — and, optionally, severity jumps or throughput drops — make
// `torpedo diff` exit nonzero.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "triage/cluster.h"

namespace torpedo::triage {

struct DiffOptions {
  // Minimum centroid similarity for two clusters to count as the same
  // finding class across campaigns. Lower than the clustering threshold:
  // matching across independently-minimized campaigns is fuzzier than
  // clustering within one.
  double match_threshold = 0.60;
  // A persisting cluster whose severity rose by more than this counts as a
  // regression.
  double severity_regression = 5.0;
  // When >= 0: a throughput (execs per sim-second) drop beyond this percent
  // counts as a regression. Negative disables the gate.
  double max_throughput_drop_pct = -1;
  ClusterConfig cluster;  // used when a workdir lacks clusters.json
};

struct MatchedCluster {
  int id_a = -1;
  int id_b = -1;
  double similarity = 0;
  double severity_a = 0;
  double severity_b = 0;
  std::size_t size_a = 0;
  std::size_t size_b = 0;
  std::string label;  // centroid summary: "syscalls | cause"
};

struct UnmatchedCluster {
  int id = -1;
  double severity = 0;
  std::size_t size = 0;
  std::string label;
};

struct EfficacyDelta {
  std::string op;
  double accept_rate_a = 0;  // accepted / attempts
  double accept_rate_b = 0;
  std::uint64_t novel_a = 0;  // novel_signal
  std::uint64_t novel_b = 0;
};

struct DiffResult {
  bool ran = false;
  std::string error;

  std::vector<MatchedCluster> persisting;
  std::vector<UnmatchedCluster> fixed;  // clusters only in A
  std::vector<UnmatchedCluster> added;  // clusters only in B

  bool have_throughput = false;
  double execs_per_sim_sec_a = 0;
  double execs_per_sim_sec_b = 0;

  std::vector<EfficacyDelta> efficacy;

  bool regression = false;
  std::vector<std::string> regression_reasons;

  telemetry::JsonDict to_json() const;
};

// Diffs two workdirs. Each side's clusters come from clusters.json, falling
// back to recomputing from violation bundles. `error` is set (ran == false)
// when either side cannot be triaged at all.
DiffResult diff_workdirs(const std::filesystem::path& a,
                         const std::filesystem::path& b,
                         const DiffOptions& options = {});

}  // namespace torpedo::triage
