#include "triage/features.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace torpedo::triage {

namespace {

// Sorted + deduplicated copy.
std::vector<std::string> distinct_sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// Plain Jaccard over sorted string sets; two empty sets are identical (1).
double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t i = 0, j = 0, both = 0, either = 0;
  while (i < a.size() || j < b.size()) {
    ++either;
    if (i == a.size()) {
      ++j;
    } else if (j == b.size()) {
      ++i;
    } else if (a[i] == b[j]) {
      ++both;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return either == 0 ? 1.0 : static_cast<double>(both) / either;
}

// Multiset Jaccard: sum(min(count)) / sum(max(count)) over the union of
// names. Two empty multisets are identical (1).
double multiset_jaccard(const std::vector<std::pair<std::string, int>>& a,
                        const std::vector<std::pair<std::string, int>>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t i = 0, j = 0;
  long sum_min = 0, sum_max = 0;
  while (i < a.size() || j < b.size()) {
    if (i == a.size()) {
      sum_max += b[j++].second;
    } else if (j == b.size()) {
      sum_max += a[i++].second;
    } else if (a[i].first == b[j].first) {
      sum_min += std::min(a[i].second, b[j].second);
      sum_max += std::max(a[i].second, b[j].second);
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      sum_max += a[i++].second;
    } else {
      sum_max += b[j++].second;
    }
  }
  return sum_max == 0 ? 1.0 : static_cast<double>(sum_min) / sum_max;
}

double num_field(const std::map<std::string, telemetry::JsonValue>& obj,
                 const std::string& key, double fallback = 0) {
  auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  const telemetry::JsonValue& v = it->second;
  return v.is_integer ? static_cast<double>(v.integer) : v.number;
}

std::string str_field(const std::map<std::string, telemetry::JsonValue>& obj,
                      const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? std::string() : it->second.text;
}

}  // namespace

double violation_excess(double value, double threshold) {
  constexpr double kCap = 10.0;
  constexpr double kEps = 1e-9;
  double ratio;
  if (threshold <= kEps) {
    // A zero threshold means any positive value is a violation; treat the
    // magnitude itself as the ratio so the cap still applies.
    ratio = value > kEps ? kCap : 1.0;
  } else if (value >= threshold) {
    ratio = value / threshold;
  } else {
    ratio = threshold / std::max(value, kEps);
  }
  return std::min(ratio, kCap);
}

std::vector<std::pair<std::string, int>> syscall_multiset(
    std::string_view serialized_program) {
  std::map<std::string, int> counts;
  for (const auto line_view : split(serialized_program, '\n')) {
    std::string_view line = trim(line_view);
    if (line.empty()) continue;
    // Strip the "rN = " result prefix if present.
    if (const auto eq = line.find('='); eq != std::string_view::npos &&
                                        !line.empty() && line[0] == 'r') {
      line = trim(line.substr(eq + 1));
    }
    const auto paren = line.find('(');
    if (paren == std::string_view::npos || paren == 0) continue;
    counts[std::string(trim(line.substr(0, paren)))]++;
  }
  return {counts.begin(), counts.end()};
}

FindingFeatures features_from_provenance(const core::Provenance& p,
                                         int bundle_id,
                                         std::string_view runtime) {
  FindingFeatures f;
  f.bundle = bundle_id;
  f.program_hash =
      format("%016llx", static_cast<unsigned long long>(p.program_hash));
  f.source_round = p.source_round;
  f.shard = p.shard;
  f.oracle_score = p.oracle_score;
  f.cause = p.cause;
  f.runtime = std::string(runtime);
  f.confirm_rounds = p.confirm_rounds;

  std::vector<std::string> heuristics, subjects;
  double escape = 1.0;
  for (const oracle::Violation& v : p.final_violations) {
    heuristics.push_back(v.heuristic);
    subjects.push_back(v.subject);
    escape = std::max(escape, violation_excess(v.value, v.threshold));
  }
  f.heuristics = distinct_sorted(std::move(heuristics));
  f.subjects = distinct_sorted(std::move(subjects));
  f.escape_magnitude = escape;

  f.syscalls = syscall_multiset(p.minimized_serialized);
  for (const auto& [name, count] : f.syscalls) {
    (void)name;
    f.minimized_calls += count;
  }

  std::vector<std::string> signals;
  for (const kernel::TraceEvent& e : p.trace_events)
    signals.push_back(std::string(kernel::trace_kind_name(e.kind)));
  f.signals = distinct_sorted(std::move(signals));
  return f;
}

std::optional<FindingFeatures> features_from_bundle(
    const std::map<std::string, telemetry::JsonValue>& bundle,
    std::string_view runtime) {
  const std::string hash = str_field(bundle, "program_hash");
  if (hash.empty()) return std::nullopt;

  FindingFeatures f;
  f.bundle = static_cast<int>(num_field(bundle, "bundle", -1));
  f.program_hash = hash;
  f.source_round = static_cast<int>(num_field(bundle, "source_round", -1));
  f.shard = static_cast<int>(num_field(bundle, "shard", -1));
  f.oracle_score = num_field(bundle, "oracle_score");
  f.cause = str_field(bundle, "cause");
  f.runtime = std::string(runtime);
  f.confirm_rounds = static_cast<int>(num_field(bundle, "confirm_rounds"));

  std::vector<std::string> heuristics, subjects;
  double escape = 1.0;
  auto violations_it = bundle.find("violations");
  if (violations_it != bundle.end()) {
    if (const auto rows = telemetry::parse_json_array_of_objects(
            trim(violations_it->second.text))) {
      for (const auto& row : *rows) {
        heuristics.push_back(str_field(row, "heuristic"));
        subjects.push_back(str_field(row, "subject"));
        escape = std::max(escape, violation_excess(num_field(row, "value"),
                                                   num_field(row,
                                                             "threshold")));
      }
    }
  }
  f.heuristics = distinct_sorted(std::move(heuristics));
  f.subjects = distinct_sorted(std::move(subjects));
  f.escape_magnitude = escape;

  f.syscalls = syscall_multiset(str_field(bundle, "program"));
  for (const auto& [name, count] : f.syscalls) {
    (void)name;
    f.minimized_calls += count;
  }

  std::vector<std::string> signals;
  auto trace_it = bundle.find("kernel_trace");
  if (trace_it != bundle.end()) {
    if (const auto rows = telemetry::parse_json_array_of_objects(
            trim(trace_it->second.text))) {
      for (const auto& row : *rows) {
        const std::string kind = str_field(row, "kind");
        if (!kind.empty()) signals.push_back(kind);
      }
    }
  }
  f.signals = distinct_sorted(std::move(signals));
  return f;
}

double weighted_jaccard(const FindingFeatures& a, const FindingFeatures& b,
                        const SimilarityWeights& weights) {
  double score = 0;
  score += weights.heuristics * jaccard(a.heuristics, b.heuristics);
  score += weights.syscalls * multiset_jaccard(a.syscalls, b.syscalls);
  score += weights.cause * (a.cause == b.cause ? 1.0 : 0.0);
  score += weights.signals * jaccard(a.signals, b.signals);
  score += weights.subjects * jaccard(a.subjects, b.subjects);
  score += weights.runtime * (a.runtime == b.runtime ? 1.0 : 0.0);
  const double total = weights.heuristics + weights.syscalls + weights.cause +
                       weights.signals + weights.subjects + weights.runtime;
  return total > 0 ? score / total : 0;
}

std::string join_facet(const std::vector<std::string>& facet) {
  std::string out;
  for (const std::string& s : facet) {
    if (!out.empty()) out += ",";
    out += s;
  }
  return out;
}

std::vector<std::string> parse_facet(std::string_view text) {
  std::vector<std::string> out;
  for (const auto field : split(text, ','))
    if (!trim(field).empty()) out.emplace_back(trim(field));
  return out;
}

std::string join_multiset(
    const std::vector<std::pair<std::string, int>>& ms) {
  std::string out;
  for (const auto& [name, count] : ms) {
    if (!out.empty()) out += ",";
    out += name + ":" + std::to_string(count);
  }
  return out;
}

std::vector<std::pair<std::string, int>> parse_multiset(
    std::string_view text) {
  std::vector<std::pair<std::string, int>> out;
  for (const auto field : split(text, ',')) {
    const auto entry = trim(field);
    if (entry.empty()) continue;
    const auto colon = entry.rfind(':');
    if (colon == std::string_view::npos) {
      out.emplace_back(std::string(entry), 1);
      continue;
    }
    const auto count = parse_u64(entry.substr(colon + 1));
    out.emplace_back(std::string(entry.substr(0, colon)),
                     count ? static_cast<int>(*count) : 1);
  }
  return out;
}

}  // namespace torpedo::triage
