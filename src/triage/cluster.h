// ClusterEngine: weighted-Jaccard clustering + severity scoring.
//
// Findings are sorted by program hash (so the outcome is independent of
// bundle numbering and shard interleaving), deduplicated by exact hash, and
// greedily assigned to the most similar existing cluster centroid — the
// first member of each cluster — when the similarity clears the threshold;
// otherwise they seed a new cluster. Every step is deterministic: ties break
// toward the lowest cluster index, and the final ordering is severity
// descending with the representative hash as tiebreak. The same (seed,
// config) campaign therefore always produces a byte-identical clusters.json,
// sharded or not.
//
// Severity ranks clusters by what makes a finding actionable:
//   escape     how far past its threshold the worst violation landed
//   repro      how quickly confirmation succeeded (fewer rounds = better)
//   concision  how small the minimized program is (smaller = crisper)
//   breadth    how many distinct subjects (cores/processes/containers) the
//              cluster's violations implicate
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "triage/features.h"

namespace torpedo::core {
struct CampaignReport;
}  // namespace torpedo::core

namespace torpedo::triage {

struct ClusterConfig {
  // Minimum weighted-Jaccard similarity to join an existing cluster.
  double similarity_threshold = 0.72;
  SimilarityWeights weights;
};

struct ClusterMember {
  FindingFeatures features;
  double similarity = 1.0;  // to the cluster centroid (1 for the centroid)
};

struct Cluster {
  int id = 0;
  double severity = 0;  // 0-100
  // Severity components, each normalized to [0, 1].
  double escape = 0;
  double reproducibility = 0;
  double concision = 0;
  double breadth = 0;
  // The centroid: the features of the cluster's first (hash-lowest) member.
  FindingFeatures centroid;
  std::vector<ClusterMember> members;
};

struct TriageResult {
  std::vector<Cluster> clusters;  // severity descending
  int findings = 0;               // distinct findings clustered
  int duplicates = 0;             // exact program-hash duplicates collapsed
  double similarity_threshold = 0;
  std::string runtime;
};

class ClusterEngine {
 public:
  explicit ClusterEngine(ClusterConfig config = {}) : config_(config) {}

  TriageResult cluster(std::vector<FindingFeatures> findings) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

// Severity in [0, 100] from the four normalized components; exposed so the
// ordering is unit-testable without building whole clusters.
double severity_score(double escape, double reproducibility, double concision,
                      double breadth);

// Convenience: extract features from every provenance record of a finalized
// report and cluster them.
TriageResult cluster_report(const core::CampaignReport& report,
                            std::string_view runtime,
                            ClusterConfig config = {});

// --- persistence (workdir/clusters.json) -------------------------------------

// The "clusters" array alone, rendered (for `torpedo report --json`).
std::string clusters_to_json_array(const TriageResult& result);

// The whole clusters.json document (single JSON object, one line).
std::string clusters_to_json(const TriageResult& result);

void save_clusters(const std::filesystem::path& file,
                   const TriageResult& result);

// Parses a clusters.json back. Member lists and centroid facets round-trip;
// enough for `torpedo report` tables and `torpedo diff` matching.
std::optional<TriageResult> load_clusters(const std::filesystem::path& file);

// Loads workdir/clusters.json, or recomputes from violations/*/bundle.json
// (runtime from campaign.json) when the file is absent. Returns nullopt when
// the workdir has neither clusters nor bundles to triage — an empty campaign
// yields a present-but-empty result, not nullopt.
std::optional<TriageResult> triage_workdir(
    const std::filesystem::path& workdir, ClusterConfig config = {});

// --- rendering ----------------------------------------------------------------

// Severity-ranked text table for `torpedo report` / `torpedo stats`.
std::string cluster_table(const TriageResult& result);

// torpedo_clusters, torpedo_cluster_severity{cluster="N"},
// torpedo_cluster_size{cluster="N"}, torpedo_cluster_escape{cluster="N"}.
std::string clusters_to_prometheus(const TriageResult& result);

// --- live endpoint holder -----------------------------------------------------

// Thread-safe triage snapshot for MonitorServer JSON endpoints. The campaign
// thread installs the result after finalize; the monitor thread serves
// GET /findings, GET /clusters and GET /clusters/N from the snapshot (empty
// arrays before install). handle() returns nullopt for unknown paths.
class LiveTriage {
 public:
  void install(TriageResult result);
  std::optional<std::string> handle(std::string_view path) const;
  std::string to_prometheus() const;

 private:
  std::shared_ptr<const TriageResult> snapshot() const;

  mutable std::mutex mu_;
  std::shared_ptr<const TriageResult> result_;
};

}  // namespace torpedo::triage
