#include "triage/cluster.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/campaign.h"
#include "core/workdir.h"
#include "util/strings.h"
#include "util/table.h"

namespace torpedo::triage {

namespace fs = std::filesystem;

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double num_field(const std::map<std::string, telemetry::JsonValue>& obj,
                 const std::string& key, double fallback = 0) {
  auto it = obj.find(key);
  if (it == obj.end()) return fallback;
  const telemetry::JsonValue& v = it->second;
  return v.is_integer ? static_cast<double>(v.integer) : v.number;
}

std::string str_field(const std::map<std::string, telemetry::JsonValue>& obj,
                      const std::string& key) {
  auto it = obj.find(key);
  return it == obj.end() ? std::string() : it->second.text;
}

telemetry::JsonDict member_to_json(const ClusterMember& m) {
  telemetry::JsonDict d;
  d.set("bundle", m.features.bundle)
      .set("program_hash", m.features.program_hash)
      .set("shard", m.features.shard)
      .set("source_round", m.features.source_round)
      .set("similarity", m.similarity)
      .set("oracle_score", m.features.oracle_score)
      .set("escape", m.features.escape_magnitude)
      .set("confirm_rounds", m.features.confirm_rounds)
      .set("calls", m.features.minimized_calls);
  return d;
}

telemetry::JsonDict cluster_to_json(const Cluster& c, bool with_members) {
  telemetry::JsonDict d;
  d.set("cluster", c.id)
      .set("severity", c.severity)
      .set("size", static_cast<std::int64_t>(c.members.size()))
      .set("escape", c.escape)
      .set("reproducibility", c.reproducibility)
      .set("concision", c.concision)
      .set("breadth", c.breadth)
      .set("representative", c.centroid.program_hash)
      .set("cause", c.centroid.cause)
      .set("heuristics", join_facet(c.centroid.heuristics))
      .set("syscalls", join_multiset(c.centroid.syscalls))
      .set("signals", join_facet(c.centroid.signals))
      .set("subjects", join_facet(c.centroid.subjects));
  if (with_members) {
    std::string members = "[";
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      if (i) members += ",";
      members += member_to_json(c.members[i]).to_string();
    }
    members += "]";
    d.set_raw("members", members);
  }
  return d;
}

}  // namespace

double severity_score(double escape, double reproducibility, double concision,
                      double breadth) {
  return 100.0 * (0.40 * clamp01(escape) + 0.25 * clamp01(reproducibility) +
                  0.20 * clamp01(concision) + 0.15 * clamp01(breadth));
}

TriageResult ClusterEngine::cluster(
    std::vector<FindingFeatures> findings) const {
  TriageResult result;
  result.similarity_threshold = config_.similarity_threshold;
  if (!findings.empty()) result.runtime = findings.front().runtime;

  // Hash order makes the assignment independent of bundle numbering (and
  // therefore of shard interleaving in a merged report).
  std::sort(findings.begin(), findings.end(),
            [](const FindingFeatures& a, const FindingFeatures& b) {
              if (a.program_hash != b.program_hash)
                return a.program_hash < b.program_hash;
              return a.bundle < b.bundle;
            });

  std::vector<Cluster> clusters;
  std::string last_hash;
  for (FindingFeatures& f : findings) {
    if (!f.program_hash.empty() && f.program_hash == last_hash) {
      ++result.duplicates;
      continue;
    }
    last_hash = f.program_hash;
    ++result.findings;

    int best = -1;
    double best_sim = 0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const double sim =
          weighted_jaccard(f, clusters[c].centroid, config_.weights);
      if (sim > best_sim) {  // strict: ties keep the lowest cluster index
        best_sim = sim;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0 && best_sim >= config_.similarity_threshold) {
      clusters[static_cast<std::size_t>(best)].members.push_back(
          {std::move(f), best_sim});
    } else {
      Cluster c;
      c.centroid = f;
      c.members.push_back({std::move(f), 1.0});
      clusters.push_back(std::move(c));
    }
  }

  for (Cluster& c : clusters) {
    double max_escape = 1.0;
    double repro_sum = 0, concision_sum = 0;
    std::vector<std::string> subjects;
    for (const ClusterMember& m : c.members) {
      max_escape = std::max(max_escape, m.features.escape_magnitude);
      repro_sum +=
          std::min(1.0, 3.0 / std::max(1, m.features.confirm_rounds));
      concision_sum +=
          1.0 / (1.0 + 0.25 * (std::max(1, m.features.minimized_calls) - 1));
      subjects.insert(subjects.end(), m.features.subjects.begin(),
                      m.features.subjects.end());
    }
    std::sort(subjects.begin(), subjects.end());
    subjects.erase(std::unique(subjects.begin(), subjects.end()),
                   subjects.end());
    const double n = static_cast<double>(c.members.size());
    c.escape = clamp01((std::min(max_escape, 4.0) - 1.0) / 3.0);
    c.reproducibility = n > 0 ? repro_sum / n : 0;
    c.concision = n > 0 ? concision_sum / n : 0;
    c.breadth = std::min<std::size_t>(subjects.size(), 4) / 4.0;
    c.severity =
        severity_score(c.escape, c.reproducibility, c.concision, c.breadth);
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.centroid.program_hash < b.centroid.program_hash;
            });
  for (std::size_t i = 0; i < clusters.size(); ++i)
    clusters[i].id = static_cast<int>(i);
  result.clusters = std::move(clusters);
  return result;
}

TriageResult cluster_report(const core::CampaignReport& report,
                            std::string_view runtime, ClusterConfig config) {
  std::vector<FindingFeatures> features;
  for (std::size_t i = 0; i < report.provenance.size(); ++i)
    features.push_back(features_from_provenance(
        report.provenance[i], static_cast<int>(i), runtime));
  TriageResult result = ClusterEngine(config).cluster(std::move(features));
  result.runtime = std::string(runtime);
  return result;
}

std::string clusters_to_json_array(const TriageResult& result) {
  std::string out = "[";
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    if (i) out += ",";
    out += cluster_to_json(result.clusters[i], /*with_members=*/true)
               .to_string();
  }
  return out + "]";
}

std::string clusters_to_json(const TriageResult& result) {
  telemetry::JsonDict d;
  d.set("artifact", "clusters")
      .set("findings", result.findings)
      .set("duplicates", result.duplicates)
      .set("similarity_threshold", result.similarity_threshold)
      .set("runtime", result.runtime)
      .set_raw("clusters", clusters_to_json_array(result));
  return d.to_string();
}

void save_clusters(const fs::path& file, const TriageResult& result) {
  std::error_code ec;
  if (file.has_parent_path()) fs::create_directories(file.parent_path(), ec);
  std::ofstream out(file, std::ios::trunc);
  if (out) out << clusters_to_json(result) << "\n";
}

std::optional<TriageResult> load_clusters(const fs::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto obj = telemetry::parse_json_object(trim(buffer.str()));
  if (!obj) return std::nullopt;

  TriageResult result;
  result.findings = static_cast<int>(num_field(*obj, "findings"));
  result.duplicates = static_cast<int>(num_field(*obj, "duplicates"));
  result.similarity_threshold = num_field(*obj, "similarity_threshold");
  result.runtime = str_field(*obj, "runtime");

  auto clusters_it = obj->find("clusters");
  if (clusters_it == obj->end()) return result;
  const auto rows = telemetry::parse_json_array_of_objects(
      trim(clusters_it->second.text));
  if (!rows) return std::nullopt;
  for (const auto& row : *rows) {
    Cluster c;
    c.id = static_cast<int>(num_field(row, "cluster"));
    c.severity = num_field(row, "severity");
    c.escape = num_field(row, "escape");
    c.reproducibility = num_field(row, "reproducibility");
    c.concision = num_field(row, "concision");
    c.breadth = num_field(row, "breadth");
    c.centroid.program_hash = str_field(row, "representative");
    c.centroid.cause = str_field(row, "cause");
    c.centroid.heuristics = parse_facet(str_field(row, "heuristics"));
    c.centroid.syscalls = parse_multiset(str_field(row, "syscalls"));
    c.centroid.signals = parse_facet(str_field(row, "signals"));
    c.centroid.subjects = parse_facet(str_field(row, "subjects"));
    c.centroid.runtime = result.runtime;
    auto members_it = row.find("members");
    if (members_it != row.end()) {
      if (const auto members = telemetry::parse_json_array_of_objects(
              trim(members_it->second.text))) {
        for (const auto& m : *members) {
          ClusterMember member;
          member.similarity = num_field(m, "similarity", 1.0);
          member.features.bundle = static_cast<int>(num_field(m, "bundle"));
          member.features.program_hash = str_field(m, "program_hash");
          member.features.shard = static_cast<int>(num_field(m, "shard", -1));
          member.features.source_round =
              static_cast<int>(num_field(m, "source_round", -1));
          member.features.oracle_score = num_field(m, "oracle_score");
          member.features.escape_magnitude = num_field(m, "escape", 1.0);
          member.features.confirm_rounds =
              static_cast<int>(num_field(m, "confirm_rounds"));
          member.features.minimized_calls =
              static_cast<int>(num_field(m, "calls"));
          c.members.push_back(std::move(member));
        }
      }
    }
    result.clusters.push_back(std::move(c));
  }
  return result;
}

std::optional<TriageResult> triage_workdir(const fs::path& workdir,
                                           ClusterConfig config) {
  if (auto loaded = load_clusters(workdir / "clusters.json")) return loaded;
  if (!fs::exists(workdir)) return std::nullopt;

  std::string runtime = "runc";
  if (const auto manifest =
          core::load_campaign_manifest(workdir / "campaign.json"))
    runtime = manifest->runtime;

  std::vector<fs::path> bundle_files;
  const fs::path violations = workdir / "violations";
  if (fs::exists(violations))
    for (const auto& entry : fs::directory_iterator(violations))
      if (fs::exists(entry.path() / "bundle.json"))
        bundle_files.push_back(entry.path() / "bundle.json");
  std::sort(bundle_files.begin(), bundle_files.end());

  std::vector<FindingFeatures> features;
  for (const fs::path& file : bundle_files) {
    std::ifstream in(file);
    if (!in) continue;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto obj = telemetry::parse_json_object(trim(buffer.str()));
    if (!obj) continue;
    if (auto f = features_from_bundle(*obj, runtime))
      features.push_back(std::move(*f));
  }
  TriageResult result = ClusterEngine(config).cluster(std::move(features));
  result.runtime = runtime;
  return result;
}

std::string cluster_table(const TriageResult& result) {
  std::string out =
      format("clusters: %zu (from %d finding%s", result.clusters.size(),
             result.findings, result.findings == 1 ? "" : "s");
  if (result.duplicates)
    out += format(", +%d exact duplicate%s", result.duplicates,
                  result.duplicates == 1 ? "" : "s");
  out += ")\n";
  if (result.clusters.empty()) return out;
  TextTable table({"cluster", "severity", "size", "syscalls", "cause",
                   "heuristics", "escape", "repro"});
  for (const Cluster& c : result.clusters)
    table.add_row({format("%d", c.id), format("%.1f", c.severity),
                   format("%zu", c.members.size()),
                   join_multiset(c.centroid.syscalls), c.centroid.cause,
                   join_facet(c.centroid.heuristics),
                   format("%.2f", c.escape), format("%.2f",
                                                    c.reproducibility)});
  out += "\n";
  out += table.to_string();
  out += "\n";
  return out;
}

std::string clusters_to_prometheus(const TriageResult& result) {
  std::string out;
  out += "# HELP torpedo_clusters Distinct violation clusters after triage.\n";
  out += "# TYPE torpedo_clusters gauge\n";
  out += format("torpedo_clusters %zu\n", result.clusters.size());
  if (result.clusters.empty()) return out;
  out += "# HELP torpedo_cluster_severity Severity score (0-100) per "
         "cluster.\n";
  out += "# TYPE torpedo_cluster_severity gauge\n";
  for (const Cluster& c : result.clusters)
    out += format("torpedo_cluster_severity{cluster=\"%d\"} %.4f\n", c.id,
                  c.severity);
  out += "# HELP torpedo_cluster_size Findings per cluster.\n";
  out += "# TYPE torpedo_cluster_size gauge\n";
  for (const Cluster& c : result.clusters)
    out += format("torpedo_cluster_size{cluster=\"%d\"} %zu\n", c.id,
                  c.members.size());
  out += "# HELP torpedo_cluster_escape Normalized escape magnitude per "
         "cluster.\n";
  out += "# TYPE torpedo_cluster_escape gauge\n";
  for (const Cluster& c : result.clusters)
    out += format("torpedo_cluster_escape{cluster=\"%d\"} %.4f\n", c.id,
                  c.escape);
  return out;
}

void LiveTriage::install(TriageResult result) {
  auto snapshot = std::make_shared<const TriageResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mu_);
  result_ = std::move(snapshot);
}

std::shared_ptr<const TriageResult> LiveTriage::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_;
}

std::optional<std::string> LiveTriage::handle(std::string_view path) const {
  const std::shared_ptr<const TriageResult> result = snapshot();
  static const TriageResult kEmpty;
  const TriageResult& tri = result ? *result : kEmpty;

  if (path == "/findings") {
    std::string findings = "[";
    bool first = true;
    for (const Cluster& c : tri.clusters) {
      for (const ClusterMember& m : c.members) {
        if (!first) findings += ",";
        first = false;
        findings += telemetry::JsonDict{}
                        .set("bundle", m.features.bundle)
                        .set("cluster", c.id)
                        .set("severity", c.severity)
                        .set("program_hash", m.features.program_hash)
                        .set("shard", m.features.shard)
                        .set("source_round", m.features.source_round)
                        .to_string();
      }
    }
    findings += "]";
    telemetry::JsonDict d;
    d.set("ready", result != nullptr)
        .set("count", tri.findings)
        .set_raw("findings", findings);
    return d.to_string();
  }
  if (path == "/clusters") {
    std::string clusters = "[";
    for (std::size_t i = 0; i < tri.clusters.size(); ++i) {
      if (i) clusters += ",";
      clusters += cluster_to_json(tri.clusters[i], /*with_members=*/false)
                      .to_string();
    }
    clusters += "]";
    telemetry::JsonDict d;
    d.set("ready", result != nullptr)
        .set("count", static_cast<std::int64_t>(tri.clusters.size()))
        .set_raw("clusters", clusters);
    return d.to_string();
  }
  if (starts_with(path, "/clusters/")) {
    const auto id = parse_u64(path.substr(std::string_view("/clusters/")
                                              .size()));
    if (!id) return std::nullopt;
    for (const Cluster& c : tri.clusters)
      if (c.id == static_cast<int>(*id))
        return cluster_to_json(c, /*with_members=*/true).to_string();
    return std::nullopt;
  }
  return std::nullopt;
}

std::string LiveTriage::to_prometheus() const {
  const std::shared_ptr<const TriageResult> result = snapshot();
  if (!result) return "";
  return clusters_to_prometheus(*result);
}

}  // namespace torpedo::triage
