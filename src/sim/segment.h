// Work segments: the unit of simulated execution.
//
// A task's behaviour is a queue of segments. The kernel layer translates each
// system call into segments (user time, system time, blocking waits) plus an
// optional completion callback that applies side effects (deferring work to a
// kworker, delivering a signal, waking another task) at the simulated instant
// the call finishes.
#pragma once

#include <functional>

#include "cgroup/cgroup.h"
#include "util/time.h"

namespace torpedo::sim {

enum class SegmentKind {
  kRunUser,     // on-CPU, userspace; charged to `charge` (or task cgroup)
  kRunSystem,   // on-CPU, kernel space; same charging rules
  kBlockUntil,  // off-CPU until an absolute time; io_wait selects the counter
  kBlockWake,   // off-CPU until another task calls Host::wake()
};

struct Segment {
  SegmentKind kind = SegmentKind::kRunUser;
  Nanos remaining = 0;    // kRunUser / kRunSystem
  Nanos until = 0;        // kBlockUntil
  bool io_wait = false;   // kBlockUntil: account idle time as iowait
  // Charge target for on-CPU segments; nullptr means the task's own cgroup.
  // Kernel-deferred work passes the root cgroup here — that is the
  // accounting gap Torpedo hunts for.
  cgroup::Cgroup* charge = nullptr;
  // Fired when the segment completes (time fully consumed or wake received).
  std::function<void()> on_complete;

  static Segment user(Nanos ns, cgroup::Cgroup* charge_to = nullptr) {
    Segment s;
    s.kind = SegmentKind::kRunUser;
    s.remaining = ns;
    s.charge = charge_to;
    return s;
  }
  static Segment system(Nanos ns, cgroup::Cgroup* charge_to = nullptr) {
    Segment s;
    s.kind = SegmentKind::kRunSystem;
    s.remaining = ns;
    s.charge = charge_to;
    return s;
  }
  static Segment block_until(Nanos t, bool io_wait = false) {
    Segment s;
    s.kind = SegmentKind::kBlockUntil;
    s.until = t;
    s.io_wait = io_wait;
    return s;
  }
  static Segment block_wake() {
    Segment s;
    s.kind = SegmentKind::kBlockWake;
    return s;
  }

  Segment&& then(std::function<void()> fn) && {
    on_complete = std::move(fn);
    return std::move(*this);
  }
};

}  // namespace torpedo::sim
