// Work segments: the unit of simulated execution.
//
// A task's behaviour is a queue of segments. The kernel layer translates each
// system call into segments (user time, system time, blocking waits) plus an
// optional completion callback that applies side effects (deferring work to a
// kworker, delivering a signal, waking another task) at the simulated instant
// the call finishes.
#pragma once

#include <cstdint>

#include "cgroup/cgroup.h"
#include "util/time.h"

namespace torpedo::sim {

class Host;

enum class SegmentKind {
  kRunUser,     // on-CPU, userspace; charged to `charge` (or task cgroup)
  kRunSystem,   // on-CPU, kernel space; same charging rules
  kBlockUntil,  // off-CPU until an absolute time; io_wait selects the counter
  kBlockWake,   // off-CPU until another task calls Host::wake()
};

struct Segment {
  // Completion callbacks are a plain function pointer plus one word of
  // payload, keeping Segment trivially movable: tens of millions of segments
  // flow through per-task ring queues per campaign, and a std::function here
  // puts a branchy move on every push. Callers needing real closures park
  // them host-side and pass a lookup key as the payload (see the workqueue
  // completion marker in Host).
  using Callback = void (*)(Host&, std::uint64_t);

  SegmentKind kind = SegmentKind::kRunUser;
  bool io_wait = false;   // kBlockUntil: account idle time as iowait
  // One timing word, disambiguated by kind: tens of millions of segments are
  // written through the ring queues per batch, so every byte of Segment is
  // push/pop memory traffic.
  union {
    Nanos remaining = 0;  // kRunUser / kRunSystem
    Nanos until;          // kBlockUntil
  };
  // Charge target for on-CPU segments; nullptr means the task's own cgroup.
  // Kernel-deferred work passes the root cgroup here — that is the
  // accounting gap Torpedo hunts for.
  cgroup::Cgroup* charge = nullptr;
  // Fired when the segment completes (time fully consumed or wake received).
  Callback on_complete = nullptr;
  std::uint64_t payload = 0;

  static Segment user(Nanos ns, cgroup::Cgroup* charge_to = nullptr) {
    Segment s;
    s.kind = SegmentKind::kRunUser;
    s.remaining = ns;
    s.charge = charge_to;
    return s;
  }
  static Segment system(Nanos ns, cgroup::Cgroup* charge_to = nullptr) {
    Segment s;
    s.kind = SegmentKind::kRunSystem;
    s.remaining = ns;
    s.charge = charge_to;
    return s;
  }
  static Segment block_until(Nanos t, bool io_wait = false) {
    Segment s;
    s.kind = SegmentKind::kBlockUntil;
    s.until = t;
    s.io_wait = io_wait;
    return s;
  }
  static Segment block_wake() {
    Segment s;
    s.kind = SegmentKind::kBlockWake;
    return s;
  }

  Segment&& then(Callback fn, std::uint64_t arg = 0) && {
    on_complete = fn;
    payload = arg;
    return std::move(*this);
  }
};

}  // namespace torpedo::sim
