// Background host noise.
//
// The paper notes that short observation rounds are easily disrupted by
// "noise spikes" from the host (cron jobs, sudden arrival of network packets,
// system logging events) and that idle cores still show a few percent of
// utilization. NoiseModel spawns per-core background daemons that generate
// small, deterministic pseudo-random bursts so baselines look like Table A.1
// and the round-duration ablation can study noise sensitivity.
#pragma once

#include <cstdint>

#include "sim/host.h"

namespace torpedo::sim {

struct NoiseConfig {
  // Mean fraction of each core consumed by background noise (~0.04 matches
  // the paper's idle-core baseline of ~4-6%).
  double mean_utilization = 0.045;
  // Burstiness: each burst lasts [min,max] microseconds of mixed user/system.
  Nanos burst_min = 50 * kMicrosecond;
  Nanos burst_max = 400 * kMicrosecond;
  // Occasional spike: probability per wakeup of a 10x burst (cron job, log
  // rotation). Drives false positives at short round durations.
  double spike_chance = 0.01;
  std::uint64_t seed = 0xBADC0FFEEULL;
};

// Installs one background daemon per core. Returns the number spawned.
int install_noise(Host& host, const NoiseConfig& config = {});

}  // namespace torpedo::sim
