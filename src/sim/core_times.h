// Per-core CPU time counters with the exact category set /proc/stat exposes.
#pragma once

#include <array>
#include <string_view>

#include "util/time.h"

namespace torpedo::sim {

enum class CpuCategory : int {
  kUser = 0,
  kNice,
  kSystem,
  kIdle,
  kIoWait,
  kIrq,
  kSoftirq,
  kSteal,
  kGuest,
  kGuestNice,
};

inline constexpr int kNumCpuCategories = 10;

constexpr std::string_view cpu_category_name(CpuCategory c) {
  switch (c) {
    case CpuCategory::kUser: return "USER";
    case CpuCategory::kNice: return "NICE";
    case CpuCategory::kSystem: return "SYSTEM";
    case CpuCategory::kIdle: return "IDLE";
    case CpuCategory::kIoWait: return "IO WAIT";
    case CpuCategory::kIrq: return "IRQ";
    case CpuCategory::kSoftirq: return "SOFTIRQ";
    case CpuCategory::kSteal: return "STEAL";
    case CpuCategory::kGuest: return "GUEST";
    case CpuCategory::kGuestNice: return "GUEST NICE";
  }
  return "?";
}

struct CoreTimes {
  std::array<Nanos, kNumCpuCategories> ns{};

  Nanos& operator[](CpuCategory c) { return ns[static_cast<int>(c)]; }
  Nanos operator[](CpuCategory c) const { return ns[static_cast<int>(c)]; }

  // Total accounted time across all categories (== wall time on the core).
  Nanos total() const {
    Nanos t = 0;
    for (Nanos v : ns) t += v;
    return t;
  }

  // Non-idle, non-iowait time — the paper's "BUSY" column.
  Nanos busy() const {
    return total() - (*this)[CpuCategory::kIdle] -
           (*this)[CpuCategory::kIoWait];
  }

  CoreTimes operator-(const CoreTimes& rhs) const {
    CoreTimes out;
    for (int i = 0; i < kNumCpuCategories; ++i) out.ns[i] = ns[i] - rhs.ns[i];
    return out;
  }
  CoreTimes& operator+=(const CoreTimes& rhs) {
    for (int i = 0; i < kNumCpuCategories; ++i) ns[i] += rhs.ns[i];
    return *this;
  }
};

}  // namespace torpedo::sim
