#include "sim/noise.h"

#include <memory>

#include "util/check.h"

namespace torpedo::sim {

int install_noise(Host& host, const NoiseConfig& config) {
  TORPEDO_CHECK(config.mean_utilization >= 0 && config.mean_utilization < 0.5);
  TORPEDO_CHECK(config.burst_min > 0 && config.burst_max >= config.burst_min);

  for (int core = 0; core < host.num_cores(); ++core) {
    // Each daemon owns its own RNG stream so adding cores doesn't perturb
    // the noise pattern on existing ones.
    auto rng = std::make_shared<Rng>(config.seed * 1000003ULL +
                                     static_cast<std::uint64_t>(core));
    const NoiseConfig cfg = config;
    host.spawn({
        .name = "noise/" + std::to_string(core),
        .kind = TaskKind::kDaemon,
        .group = nullptr,
        .affinity = cgroup::CpuSet::single(core),
        .supplier =
            [rng, cfg](Host& h, Task& task) {
              Nanos burst = rng->range(cfg.burst_min, cfg.burst_max);
              if (rng->uniform() < cfg.spike_chance) burst *= 10;
              if (cfg.mean_utilization <= 0) {
                task.push(Segment::block_until(h.now() + kSecond));
                return true;
              }
              // Duty cycle: burst / (burst + gap) == mean_utilization.
              const double gap_factor =
                  (1.0 - cfg.mean_utilization) / cfg.mean_utilization;
              const Nanos gap =
                  static_cast<Nanos>(static_cast<double>(burst) * gap_factor);
              // Split the burst ~60/40 between user and system time, the mix
              // system daemons typically show.
              const Nanos user = burst * 3 / 5;
              task.push(Segment::user(user));
              task.push(Segment::system(burst - user));
              task.push(Segment::block_until(h.now() + burst + gap));
              return true;
            },
    });
  }
  return host.num_cores();
}

}  // namespace torpedo::sim
