// FIFO ring buffer for per-task segment queues.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace torpedo::sim {

// std::deque allocates and frees a backing chunk every few elements when a
// queue cycles through push_back/pop_front — which is exactly what a task's
// segment queue does tens of millions of times per campaign. The ring reuses
// one allocation for the task's lifetime and only grows (by doubling) when a
// burst outruns the capacity.
//
// pop_front() does not destroy the popped element; it stays in its slot until
// overwritten or clear()ed. Callers that queue resource-owning elements must
// move those resources out before popping (Host::finish_segment does).
template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  // Resets every slot so resources held by queued (or popped-but-not-yet-
  // overwritten) elements are released, matching deque::clear semantics.
  void clear() {
    for (T& slot : slots_) slot = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t capacity = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(capacity);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    slots_ = std::move(next);
    head_ = 0;
    mask_ = capacity - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace torpedo::sim
