// Simulated tasks (processes/threads).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cgroup/cgroup.h"
#include "sim/ring_queue.h"
#include "sim/segment.h"
#include "util/time.h"

namespace torpedo::sim {

using TaskId = std::uint64_t;

enum class TaskKind {
  kUser,     // container / host userspace process
  kKthread,  // long-lived kernel thread (kthreadd, ksoftirqd)
  kKworker,  // workqueue worker
  kDaemon,   // system daemon (journald, kauditd, dockerd, ...)
  kHelper,   // short-lived usermodehelper child (modprobe, core_pattern pipe)
};

enum class TaskState { kRunnable, kBlocked, kDead };

class Host;

// Supplies more segments when the task's queue drains. Return false to exit
// the task. The supplier may push segments, spawn tasks, and inspect
// Host::now(); it runs at the simulated instant the queue drained.
using Supplier = std::function<bool(Host&, class Task&)>;

class Task {
 public:
  Task(TaskId id, std::string name, TaskKind kind, cgroup::Cgroup* group,
       cgroup::CpuSet affinity, Nanos start_time)
      : id_(id),
        name_(std::move(name)),
        kind_(kind),
        cgroup_(group),
        affinity_(affinity),
        start_time_(start_time) {}

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  TaskId id() const { return id_; }
  const std::string& name() const { return name_; }
  TaskKind kind() const { return kind_; }
  cgroup::Cgroup* group() const { return cgroup_; }
  const cgroup::CpuSet& affinity() const { return affinity_; }

  TaskState state() const { return state_; }
  bool alive() const { return state_ != TaskState::kDead; }
  int core() const { return core_; }

  Nanos utime() const { return utime_; }
  Nanos stime() const { return stime_; }
  Nanos cpu_time() const { return utime_ + stime_; }
  Nanos start_time() const { return start_time_; }
  Nanos end_time() const { return end_time_; }

  void push(Segment segment) { segments_.push_back(std::move(segment)); }
  void set_supplier(Supplier supplier) { supplier_ = std::move(supplier); }

  // Scheduler weight from cgroup cpu.shares (1024 == weight 1.0).
  double weight() const {
    return cgroup_ ? static_cast<double>(cgroup_->cpu().shares) / 1024.0 : 1.0;
  }

 private:
  friend class Host;

  // Scheduler-hot fields first: pick_runnable scans state_, throttle_until_
  // and vruntime_ across every task on a core, so they share the object's
  // first cache line instead of sitting behind the name string.
  TaskState state_ = TaskState::kRunnable;
  int core_ = -1;
  Nanos wake_time_ = 0;     // valid when blocked on kBlockUntil
  bool wake_on_time_ = false;
  bool io_wait_ = false;    // blocked waiting for IO
  Nanos throttle_until_ = 0;
  double vruntime_ = 0;

  TaskId id_;
  std::string name_;
  TaskKind kind_;
  cgroup::Cgroup* cgroup_;
  cgroup::CpuSet affinity_;

  Nanos utime_ = 0;
  Nanos stime_ = 0;
  Nanos start_time_ = 0;
  Nanos end_time_ = -1;

  RingQueue<Segment> segments_;
  Supplier supplier_;
};

}  // namespace torpedo::sim
