// The simulated host: cores, scheduler, kernel threads, and time.
//
// Host advances virtual time in fixed scheduling quanta. Within each quantum
// every core independently runs its highest-priority runnable task (CFS-style
// minimum-vruntime pick, weighted by cgroup cpu.shares) subject to cgroup CFS
// bandwidth throttling and cpuset affinity. Pending softirq work is drained
// at quantum boundaries in the context of the core (charged to the root
// cgroup — the paper's interrupt-accounting gap).
//
// Every nanosecond of simulated core time lands in exactly one CpuCategory of
// exactly one core, so `sum(categories) == wall time` is an invariant the
// test suite checks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cgroup/cgroup.h"
#include "sim/block_device.h"
#include "sim/core_times.h"
#include "sim/task.h"
#include "sim/workqueue.h"
#include "util/rng.h"
#include "util/time.h"

namespace torpedo::telemetry {
class Registry;
class Counter;
class Histogram;
}  // namespace torpedo::telemetry

namespace torpedo::sim {

struct HostConfig {
  int num_cores = 12;
  Nanos quantum = kMillisecond;
  int num_kworkers = 8;
  std::uint64_t disk_bytes_per_second = 200ull << 20;
  std::uint64_t seed = 0x70717065646FULL;  // "torpedo"
  // Telemetry destination; nullptr selects telemetry::global().
  telemetry::Registry* metrics = nullptr;
};

// Snapshot of one task for the top(1)-style sampler.
struct TaskSample {
  TaskId id = 0;
  std::string name;
  TaskKind kind = TaskKind::kUser;
  std::string cgroup_path;
  Nanos cpu_time = 0;
  Nanos start_time = 0;
  Nanos end_time = -1;  // -1: still alive
  bool alive = false;
  // Core the task is (or was last) assigned to; the selftest
  // cpuset-containment invariant audits this against the cgroup's cpuset.
  int core = -1;
};

// Substrate fault taps for selftest fault-injection campaigns. Every hook
// defaults to "no fault"; the Host consults an installed hook at the named
// decision points.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  // Return true to swallow the kworker wakeup schedule_work() would send.
  // The work item stays queued until the next un-dropped wakeup — the
  // "lost wakeup" failure mode deferral-heavy workloads are sensitive to.
  virtual bool drop_kworker_wakeup(Nanos now) {
    (void)now;
    return false;
  }
};

class Host {
 public:
  explicit Host(HostConfig config = {});

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  Nanos now() const { return now_; }
  int num_cores() const { return config_.num_cores; }
  const HostConfig& config() const { return config_; }

  cgroup::Hierarchy& cgroups() { return cgroups_; }
  BlockDevice& disk() { return disk_; }
  Rng& rng() { return rng_; }

  // --- task management -----------------------------------------------------

  struct SpawnParams {
    std::string name;
    TaskKind kind = TaskKind::kUser;
    cgroup::Cgroup* group = nullptr;  // nullptr == root
    cgroup::CpuSet affinity;          // empty == cgroup's effective cpuset
    Supplier supplier;                // may be null (pure segment queue)
  };

  Task& spawn(SpawnParams params);

  // Wake a task blocked on kBlockWake (completing that segment) or blocked on
  // time (waking it early). No-op if runnable or dead.
  void wake(Task& task);

  // Terminate a task immediately (e.g. killed by a fatal signal).
  void kill(Task& task);

  Task* find_task(TaskId id);

  // --- kernel facilities ---------------------------------------------------

  // Defer work to a kworker (root cgroup). The vulnerability surface.
  void schedule_work(WorkItem item);

  // Raise `ns` of softirq work on a core; drained at quantum boundaries in
  // core context, charged to the root cgroup.
  void raise_softirq(int core, Nanos ns);
  // Hard IRQ time (outside any process context).
  void raise_irq(int core, Nanos ns);

  // --- simulation ----------------------------------------------------------

  void run_until(Nanos t);
  void run_for(Nanos d) { run_until(now_ + d); }

  // --- measurement surface -------------------------------------------------

  const CoreTimes& core_times(int core) const;
  CoreTimes aggregate_times() const;
  // With alive_only, dead-but-unreaped tasks (helper floods between reaps)
  // are skipped. The observer's diff only reports tasks alive at both window
  // edges, so alive-only snapshots are observationally identical and skip
  // copying two strings per dead helper.
  std::vector<TaskSample> sample_tasks(bool alive_only = false) const;

  // Read-only task walk; the selftest cpuset-containment invariant uses this
  // instead of sample_tasks() to avoid string copies on the audit path.
  void for_each_task(const std::function<void(const Task&)>& fn) const;

  // --- selftest hook points ------------------------------------------------

  // Invoked after every scheduling quantum, once all cores have advanced to
  // now(). Single slot; installing replaces the previous hook, nullptr
  // removes it. The selftest invariant checker and fault injector hang off
  // this — the unset hook costs one branch per quantum.
  void set_tick_hook(std::function<void(Host&)> hook) {
    tick_hook_ = std::move(hook);
  }

  // Fault-injection tap (selftest pillar 3). Caller keeps ownership and must
  // clear the hook before destroying it.
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }

  // Deliberately skip Cgroup::consume_cpu charging. Test-only: validates
  // that the selftest charge-conservation invariant detects a broken
  // accounting path. Never set outside the selftest harness.
  void set_skip_cgroup_charging_for_selftest(bool skip) {
    skip_cgroup_charging_ = skip;
  }

  std::uint64_t tasks_spawned() const { return next_task_id_ - 1; }

  // Drop bookkeeping for dead tasks that ended before `before` (keeps long
  // campaigns lean; the top sampler only needs the current window).
  void reap_dead_tasks_before(Nanos before);

 private:
  struct Core {
    int id = 0;
    CoreTimes times;
    std::vector<Task*> tasks;  // all non-dead tasks assigned here
    Nanos pending_softirq = 0;
    Nanos pending_irq = 0;
    // Conservative lower bound on the earliest pending timed wake of any
    // task on this core; process_wakeups() skips its scan until it passes.
    // Stale-low values (after an early wake or a kill) only cost a spurious
    // scan, never a missed wakeup.
    Nanos next_timed_wake = kMaxNanos;
    // Bumped whenever a task on this core becomes runnable via wake();
    // the sole-runnable fast path uses it to prove eligibility on this
    // core is unchanged (wakes on other cores don't matter here).
    std::uint64_t wake_count = 0;
  };

  void simulate_core(Core& core, Nanos start, Nanos end);
  // Runs `task` at time t for at most `budget`; returns time consumed.
  Nanos run_task_slice(Core& core, Task& task, Nanos t, Nanos budget);
  // Ensures the task has a current segment; may invoke the supplier or kill
  // the task. Returns false if the task can't run (blocked/dead/empty).
  bool ensure_segment(Task& task, Nanos t);
  // Minimum-vruntime eligible task (first in list order wins ties). Also
  // reports whether it was the only eligible task and the earliest throttle
  // expiry among runnable-but-throttled tasks — the sole-runnable fast path
  // in simulate_core needs both to prove a re-pick would be identical.
  Task* pick_runnable(Core& core, Nanos t, bool& sole,
                      Nanos& next_throttle_end);
  void process_wakeups(Core& core, Nanos t);
  int place_on_core(const Task& task);
  void account(Core& core, CpuCategory cat, Nanos ns);
  void finish_segment(Task& task);

  HostConfig config_;
  Nanos now_ = 0;
  cgroup::Hierarchy cgroups_;
  BlockDevice disk_;
  Rng rng_;

  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::unordered_map<TaskId, Task*> index_;
  TaskId next_task_id_ = 1;
  std::size_t place_counter_ = 0;

  WorkQueue workqueue_;
  std::vector<Task*> kworkers_;
  // Parked workqueue completion closures; a marker segment's payload is the
  // ticket (Segment carries only a raw callback pointer + one word).
  std::unordered_map<std::uint64_t, std::function<void()>> work_callbacks_;
  std::uint64_t next_work_ticket_ = 1;

  std::function<void(Host&)> tick_hook_;
  FaultHook* fault_hook_ = nullptr;
  bool skip_cgroup_charging_ = false;

  // Hot-path event tallies, batched into the telemetry counters once per
  // run_until() instead of one atomic RMW per event (tens of millions of
  // segments per campaign batch). Readers between run_until() calls see
  // fully up-to-date values; a mid-run scrape sees values at most one
  // run_until() window stale.
  std::uint64_t n_quanta_ = 0;
  std::uint64_t n_picks_ = 0;
  std::uint64_t n_wakeups_ = 0;
  std::uint64_t n_segments_ = 0;
  void flush_tallies();

  // Telemetry probes, resolved once at construction (no lookups on the hot
  // path).
  telemetry::Counter* ctr_quanta_ = nullptr;
  telemetry::Counter* ctr_sched_picks_ = nullptr;
  telemetry::Counter* ctr_wakeups_ = nullptr;
  telemetry::Counter* ctr_segments_ = nullptr;
  telemetry::Histogram* hist_run_until_wall_us_ = nullptr;
};

}  // namespace torpedo::sim
