#include "sim/host.h"

#include <algorithm>
#include <limits>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace torpedo::sim {

namespace {
constexpr Nanos kForever = std::numeric_limits<Nanos>::max();
}

Host::Host(HostConfig config)
    : config_(config),
      cgroups_(config.num_cores),
      disk_(config.disk_bytes_per_second),
      rng_(config.seed) {
  TORPEDO_CHECK(config_.num_cores > 0 && config_.num_cores <= 64);
  TORPEDO_CHECK(config_.quantum > 0);
  telemetry::Registry& metrics =
      config_.metrics ? *config_.metrics : telemetry::global();
  ctr_quanta_ = &metrics.counter("sim.quanta");
  ctr_sched_picks_ = &metrics.counter("sim.scheduler_picks");
  ctr_wakeups_ = &metrics.counter("sim.wakeups");
  ctr_segments_ = &metrics.counter("sim.segments_finished");
  hist_run_until_wall_us_ = &metrics.histogram("sim.run_until_wall_us");
  cores_.resize(static_cast<std::size_t>(config_.num_cores));
  for (int i = 0; i < config_.num_cores; ++i) cores_[static_cast<std::size_t>(i)].id = i;

  for (int i = 0; i < config_.num_kworkers; ++i) {
    Task& w = spawn({
        .name = "kworker/u:" + std::to_string(i),
        .kind = TaskKind::kKworker,
        .group = nullptr,
        .affinity = {},
        .supplier =
            [this](Host& host, Task& task) {
              if (workqueue_.empty()) {
                task.push(Segment::block_wake());
                return true;
              }
              WorkItem item = workqueue_.pop();
              if (item.system_time > 0)
                task.push(Segment::system(item.system_time));
              if (item.io_write_bytes > 0) {
                const Nanos done =
                    disk_.submit(host.now(), item.io_write_bytes);
                task.push(Segment::block_until(done, /*io_wait=*/true));
              }
              if (item.on_complete) {
                // Attach completion to the last queued segment. The closure
                // parks host-side; the marker carries the claim ticket.
                const std::uint64_t ticket = host.next_work_ticket_++;
                host.work_callbacks_[ticket] = std::move(item.on_complete);
                Segment marker = Segment::system(0);
                marker.on_complete = [](Host& h, std::uint64_t id) {
                  auto it = h.work_callbacks_.find(id);
                  std::function<void()> cb = std::move(it->second);
                  h.work_callbacks_.erase(it);
                  cb();
                };
                marker.payload = ticket;
                task.push(marker);
              }
              return true;
            },
    });
    kworkers_.push_back(&w);
  }
}

Task& Host::spawn(SpawnParams params) {
  cgroup::Cgroup* group = params.group ? params.group : &cgroups_.root();
  cgroup::CpuSet affinity = params.affinity.empty()
                                ? group->effective_cpuset()
                                : params.affinity;
  affinity = affinity.intersect(cgroup::CpuSet::all(config_.num_cores));
  TORPEDO_CHECK_MSG(!affinity.empty(), "task has no allowed cores");

  auto task = std::make_unique<Task>(next_task_id_++, std::move(params.name),
                                     params.kind, group, affinity, now_);
  task->set_supplier(std::move(params.supplier));
  Task* raw = task.get();
  tasks_.push_back(std::move(task));
  index_[raw->id()] = raw;

  const int core = place_on_core(*raw);
  raw->core_ = core;
  cores_[static_cast<std::size_t>(core)].tasks.push_back(raw);
  return *raw;
}

int Host::place_on_core(const Task& task) {
  int best = -1;
  std::vector<int> candidates;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (int c : task.affinity().cores()) {
    if (c >= config_.num_cores) continue;
    std::size_t load = 0;
    for (const Task* t : cores_[static_cast<std::size_t>(c)].tasks)
      if (t->state() == TaskState::kRunnable) ++load;
    if (load < best_load) {
      best_load = load;
      candidates.clear();
    }
    if (load == best_load) candidates.push_back(c);
  }
  TORPEDO_CHECK(!candidates.empty());
  best = candidates[place_counter_++ % candidates.size()];
  return best;
}

void Host::wake(Task& task) {
  if (task.state() != TaskState::kBlocked) return;
  ++n_wakeups_;
  task.state_ = TaskState::kRunnable;
  task.io_wait_ = false;
  task.wake_on_time_ = false;
  // The front segment is the one we were blocked on.
  if (!task.segments_.empty() &&
      (task.segments_.front().kind == SegmentKind::kBlockWake ||
       task.segments_.front().kind == SegmentKind::kBlockUntil)) {
    finish_segment(task);
  }
  // Migrate if the current core is no longer allowed.
  if (!task.affinity().contains(task.core_)) {
    auto& old_tasks = cores_[static_cast<std::size_t>(task.core_)].tasks;
    old_tasks.erase(std::find(old_tasks.begin(), old_tasks.end(), &task));
    const int core = place_on_core(task);
    task.core_ = core;
    cores_[static_cast<std::size_t>(core)].tasks.push_back(&task);
  }
  // Normalize vruntime so a long sleeper doesn't monopolize the core.
  double min_vr = std::numeric_limits<double>::max();
  for (const Task* t : cores_[static_cast<std::size_t>(task.core_)].tasks)
    if (t != &task && t->state() == TaskState::kRunnable)
      min_vr = std::min(min_vr, t->vruntime_);
  if (min_vr != std::numeric_limits<double>::max())
    task.vruntime_ = std::max(task.vruntime_, min_vr);
  cores_[static_cast<std::size_t>(task.core_)].wake_count++;
}

void Host::kill(Task& task) {
  if (task.state() == TaskState::kDead) return;
  task.state_ = TaskState::kDead;
  task.end_time_ = now_;
  task.segments_.clear();
  task.supplier_ = nullptr;
  auto& tasks = cores_[static_cast<std::size_t>(task.core_)].tasks;
  auto it = std::find(tasks.begin(), tasks.end(), &task);
  if (it != tasks.end()) tasks.erase(it);
}

Task* Host::find_task(TaskId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : it->second;
}

void Host::schedule_work(WorkItem item) {
  workqueue_.push(std::move(item));
  // A dropped wakeup leaves the item queued; it drains when the next
  // schedule_work() wakeup lands or a kworker is already awake.
  if (fault_hook_ && fault_hook_->drop_kworker_wakeup(now_)) return;
  for (Task* w : kworkers_) {
    if (w->state() == TaskState::kBlocked) {
      wake(*w);
      break;
    }
  }
}

void Host::raise_softirq(int core, Nanos ns) {
  TORPEDO_CHECK(core >= 0 && core < config_.num_cores);
  TORPEDO_CHECK(ns >= 0);
  cores_[static_cast<std::size_t>(core)].pending_softirq += ns;
}

void Host::raise_irq(int core, Nanos ns) {
  TORPEDO_CHECK(core >= 0 && core < config_.num_cores);
  TORPEDO_CHECK(ns >= 0);
  cores_[static_cast<std::size_t>(core)].pending_irq += ns;
}

void Host::run_until(Nanos t) {
  TORPEDO_CHECK(t >= now_);
  const telemetry::ScopedTimerUs timer(*hist_run_until_wall_us_);
  const Nanos final_time = t;
  while (now_ < final_time) {
    const Nanos start = now_;
    const Nanos end = std::min(final_time, start + config_.quantum);
    ++n_quanta_;
    for (Core& core : cores_) simulate_core(core, start, end);
    now_ = end;
    if (tick_hook_) tick_hook_(*this);
  }
  flush_tallies();
}

void Host::flush_tallies() {
  if (n_quanta_) ctr_quanta_->inc(n_quanta_);
  if (n_picks_) ctr_sched_picks_->inc(n_picks_);
  if (n_wakeups_) ctr_wakeups_->inc(n_wakeups_);
  if (n_segments_) ctr_segments_->inc(n_segments_);
  n_quanta_ = n_picks_ = n_wakeups_ = n_segments_ = 0;
}

void Host::account(Core& core, CpuCategory cat, Nanos ns) {
  core.times[cat] += ns;
}

void Host::finish_segment(Task& task) {
  TORPEDO_CHECK(!task.segments_.empty());
  ++n_segments_;
  // Read the callback before popping: on_complete may push new segments.
  const Segment::Callback cb = task.segments_.front().on_complete;
  const std::uint64_t payload = task.segments_.front().payload;
  task.segments_.pop_front();
  if (cb) cb(*this, payload);
}

bool Host::ensure_segment(Task& task, Nanos t) {
  int guard = 0;
  while (task.segments_.empty()) {
    if (!task.supplier_) {
      now_ = t;
      kill(task);
      return false;
    }
    now_ = t;
    const bool keep_running = task.supplier_(*this, task);
    if (!keep_running) {
      kill(task);
      return false;
    }
    TORPEDO_CHECK_MSG(++guard < 64,
                      "supplier returned true without pushing segments");
  }
  return true;
}

Task* Host::pick_runnable(Core& core, Nanos t, bool& sole,
                          Nanos& next_throttle_end) {
  Task* best = nullptr;
  sole = true;
  next_throttle_end = kForever;
  for (Task* task : core.tasks) {
    if (task->state() != TaskState::kRunnable) continue;
    if (task->throttle_until_ > t) {
      next_throttle_end = std::min(next_throttle_end, task->throttle_until_);
      continue;
    }
    if (!best) {
      best = task;
    } else {
      sole = false;
      if (task->vruntime_ < best->vruntime_) best = task;
    }
  }
  if (best) ++n_picks_;
  return best;
}

void Host::process_wakeups(Core& core, Nanos t) {
  // The cached bound turns the per-iteration task scan into one comparison
  // for every scheduler step where no timer is due.
  if (t < core.next_timed_wake) return;
  // Index-based: waking a task may fire callbacks that spawn tasks here.
  for (std::size_t i = 0; i < core.tasks.size(); ++i) {
    Task* task = core.tasks[i];
    if (task->state() == TaskState::kBlocked && task->wake_on_time_ &&
        task->wake_time_ <= t) {
      now_ = t;
      wake(*task);
    }
  }
  // Tasks only enter timed-blocked state in run_task_slice (which refreshes
  // the bound), so recomputing from the survivors here is exact.
  Nanos next = kForever;
  for (const Task* task : core.tasks)
    if (task->state() == TaskState::kBlocked && task->wake_on_time_)
      next = std::min(next, task->wake_time_);
  core.next_timed_wake = next;
}

Nanos Host::run_task_slice(Core& core, Task& task, Nanos t, Nanos budget) {
  if (!ensure_segment(task, t)) return 0;
  Segment& seg = task.segments_.front();

  switch (seg.kind) {
    case SegmentKind::kBlockUntil:
      if (seg.until <= t) {
        now_ = t;
        finish_segment(task);
        return 0;
      }
      task.state_ = TaskState::kBlocked;
      task.wake_on_time_ = true;
      task.wake_time_ = seg.until;
      task.io_wait_ = seg.io_wait;
      core.next_timed_wake = std::min(core.next_timed_wake, seg.until);
      return 0;
    case SegmentKind::kBlockWake:
      task.state_ = TaskState::kBlocked;
      task.wake_on_time_ = false;
      task.io_wait_ = false;
      return 0;
    case SegmentKind::kRunUser:
    case SegmentKind::kRunSystem:
      break;
  }

  if (seg.remaining == 0) {
    now_ = t;
    finish_segment(task);
    return 0;
  }

  cgroup::Cgroup* charge = seg.charge ? seg.charge : task.group();
  const Nanos want = std::min(budget, seg.remaining);
  const Nanos allowed = charge->cpu_runtime_available(t, want);
  if (allowed == 0) {
    task.throttle_until_ = charge->next_refill(t);
    TORPEDO_CHECK_MSG(task.throttle_until_ > t, "throttle must make progress");
    return 0;
  }

  const bool user = seg.kind == SegmentKind::kRunUser;
  account(core, user ? CpuCategory::kUser : CpuCategory::kSystem, allowed);
  if (user)
    task.utime_ += allowed;
  else
    task.stime_ += allowed;
  if (!skip_cgroup_charging_) charge->consume_cpu(t, allowed);
  task.vruntime_ += static_cast<double>(allowed) / task.weight();

  seg.remaining -= allowed;
  if (seg.remaining == 0) {
    now_ = t + allowed;
    finish_segment(task);
  }
  return allowed;
}

void Host::simulate_core(Core& core, Nanos start, Nanos end) {
  Nanos t = start;
  int zero_progress = 0;
  while (t < end) {
    now_ = t;
    process_wakeups(core, t);

    // Hard IRQs preempt everything and are not charged to any cgroup.
    if (core.pending_irq > 0) {
      const Nanos amt = std::min(core.pending_irq, end - t);
      account(core, CpuCategory::kIrq, amt);
      core.pending_irq -= amt;
      t += amt;
      continue;
    }
    // Softirqs run in the context of whatever is on the core; the time is
    // visible in the core's SOFTIRQ column and charged to the root cgroup,
    // never to the originating container.
    if (core.pending_softirq > 0) {
      const Nanos amt = std::min(core.pending_softirq, end - t);
      account(core, CpuCategory::kSoftirq, amt);
      cgroups_.root().charge_cpu(amt);
      core.pending_softirq -= amt;
      t += amt;
      continue;
    }

    bool sole = true;
    Nanos next_throttle_end = kForever;
    Task* task = pick_runnable(core, t, sole, next_throttle_end);
    if (!task) {
      // Nothing eligible: idle until the earliest timed wake (the cached
      // bound; a stale-low value only splits the idle span into two hops
      // with identical accounting) or throttle expiry, which pick_runnable
      // reported. Both are strictly > t after process_wakeups ran.
      const Nanos next = std::min(core.next_timed_wake, next_throttle_end);
      const Nanos idle_end = std::max(next, t + 1) > end ? end : std::max(next, t + 1);
      bool io = false;
      for (const Task* blocked : core.tasks) {
        if (blocked->state() == TaskState::kBlocked && blocked->io_wait_) {
          io = true;
          break;
        }
      }
      account(core, io ? CpuCategory::kIoWait : CpuCategory::kIdle,
              idle_end - t);
      t = idle_end;
      continue;
    }

    Nanos consumed = run_task_slice(core, *task, t, end - t);
    t += consumed;
    if (consumed == 0) {
      TORPEDO_CHECK_MSG(++zero_progress < 200000,
                        "scheduler made no progress");
      continue;
    }
    zero_progress = 0;

    // Sole-runnable fast path: keep driving the picked task through
    // consecutive segments while every step of the outer loop is provably a
    // no-op — no timer due (process_wakeups would early-return), no pending
    // irq/softirq, and a re-pick would return the same task because it is
    // still the only eligible one: nothing woke anywhere (global wakeup
    // counter), nothing joined this core (task-list size), no throttled
    // sibling became eligible, and the task itself is still runnable.
    // Budgets stay (end - t), so slice split points — and therefore the
    // floating-point vruntime accumulation — are identical to the slow path.
    if (sole) {
      const std::uint64_t wake_mark = core.wake_count;
      const std::size_t ntasks = core.tasks.size();
      while (t < end && t < core.next_timed_wake && t < next_throttle_end &&
             task->state_ == TaskState::kRunnable && core.pending_irq == 0 &&
             core.pending_softirq == 0 && core.tasks.size() == ntasks &&
             core.wake_count == wake_mark) {
        consumed = run_task_slice(core, *task, t, end - t);
        t += consumed;
        if (consumed == 0) break;  // throttled or killed: outer loop decides
      }
    }
  }
}

const CoreTimes& Host::core_times(int core) const {
  TORPEDO_CHECK(core >= 0 && core < config_.num_cores);
  return cores_[static_cast<std::size_t>(core)].times;
}

CoreTimes Host::aggregate_times() const {
  CoreTimes total;
  for (const Core& core : cores_) total += core.times;
  return total;
}

std::vector<TaskSample> Host::sample_tasks(bool alive_only) const {
  std::vector<TaskSample> out;
  out.reserve(tasks_.size());
  for (const auto& task : tasks_) {
    if (alive_only && !task->alive()) continue;
    TaskSample s;
    s.id = task->id();
    s.name = task->name();
    s.kind = task->kind();
    s.cgroup_path = task->group() ? task->group()->path() : "/";
    s.cpu_time = task->cpu_time();
    s.start_time = task->start_time();
    s.end_time = task->end_time();
    s.alive = task->alive();
    s.core = task->core_;
    out.push_back(std::move(s));
  }
  return out;
}

void Host::for_each_task(const std::function<void(const Task&)>& fn) const {
  for (const auto& task : tasks_) fn(*task);
}

void Host::reap_dead_tasks_before(Nanos before) {
  auto dead = [&](const std::unique_ptr<Task>& t) {
    return t->state() == TaskState::kDead && t->end_time() < before;
  };
  for (const auto& t : tasks_)
    if (dead(t)) index_.erase(t->id());
  tasks_.erase(std::remove_if(tasks_.begin(), tasks_.end(), dead),
               tasks_.end());
}

}  // namespace torpedo::sim
