// A single serialized block device with a dirty page cache.
//
// Buffered writes land in the cache instantly; sync/fsync schedules writeback
// (on a kworker) which occupies the device for bytes/bandwidth. While the
// device is occupied, other tasks' IO completes only after the device frees
// up — that is how sync(2) manufactures IO-wait on unrelated cores
// (Table A.2).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace torpedo::sim {

class BlockDevice {
 public:
  explicit BlockDevice(std::uint64_t bytes_per_second = 200ull << 20)
      : bytes_per_second_(bytes_per_second) {}

  // Submits a transfer at `now`; returns its completion time. Transfers are
  // serialized FIFO.
  Nanos submit(Nanos now, std::uint64_t bytes) {
    const Nanos start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + transfer_time(bytes);
    total_bytes_ += bytes;
    total_ios_ += 1;
    return busy_until_;
  }

  // Occupies the device for a fixed duration (journal barriers, floored
  // flushes) serialized behind any queued transfers.
  Nanos occupy(Nanos now, Nanos duration) {
    const Nanos start = busy_until_ > now ? busy_until_ : now;
    busy_until_ = start + duration;
    total_ios_ += 1;
    return busy_until_;
  }

  Nanos transfer_time(std::uint64_t bytes) const {
    return static_cast<Nanos>(
        (static_cast<__int128>(bytes) * kSecond) / bytes_per_second_);
  }

  Nanos busy_until() const { return busy_until_; }
  bool busy_at(Nanos t) const { return busy_until_ > t; }

  // Dirty page cache (filled by buffered writes, drained by writeback).
  void dirty(std::uint64_t bytes) { dirty_bytes_ += bytes; }
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  std::uint64_t take_dirty() {
    std::uint64_t d = dirty_bytes_;
    dirty_bytes_ = 0;
    return d;
  }

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_ios() const { return total_ios_; }

 private:
  std::uint64_t bytes_per_second_;
  Nanos busy_until_ = 0;
  std::uint64_t dirty_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_ios_ = 0;
};

}  // namespace torpedo::sim
