// Kernel work queues and the deferred-work accounting gap.
//
// schedule_work() enqueues an item that a kworker (root cgroup) will execute.
// The CPU time is charged to the *root* cgroup — never to the container that
// caused the work — reproducing the "work deferral" class of cgroup escapes
// from Gao et al. that Torpedo detects.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "cgroup/cgroup.h"
#include "util/time.h"

namespace torpedo::sim {

struct WorkItem {
  std::string name;
  Nanos system_time = 0;          // CPU time the kworker burns
  std::uint64_t io_write_bytes = 0;  // device occupancy (writeback)
  std::function<void()> on_complete;
};

class WorkQueue {
 public:
  void push(WorkItem item) { items_.push_back(std::move(item)); }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  WorkItem pop() {
    WorkItem item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  std::deque<WorkItem> items_;
};

}  // namespace torpedo::sim
