#include "kernel/services.h"

#include "kernel/kernel.h"
#include "util/check.h"

namespace torpedo::kernel {

SystemServices::SystemServices(SimKernel& kernel, ServiceConfig config)
    : kernel_(kernel), config_(config) {
  sim::Host& host = kernel_.host();
  TORPEDO_CHECK(config_.journald_core < host.num_cores());
  TORPEDO_CHECK(config_.dockerd_core < host.num_cores());

  auto& hierarchy = host.cgroups();
  system_slice_ = &hierarchy.create(hierarchy.root(), "system.slice");
  docker_slice_ = &hierarchy.create(hierarchy.root(), "docker");

  kauditd_queue_ = std::make_shared<std::deque<DaemonWork>>();
  journald_queue_ = std::make_shared<std::deque<DaemonWork>>();
  dockerd_queue_ = std::make_shared<std::deque<DaemonWork>>();
  containerd_queue_ = std::make_shared<std::deque<DaemonWork>>();

  // kauditd is a kernel thread (root cgroup); the rest live in their own
  // service cgroups like a systemd host.
  kauditd_ = spawn_daemon("kauditd", nullptr, config_.kauditd_core,
                          kauditd_queue_, /*periodic_logging=*/false);
  journald_ =
      spawn_daemon("systemd-journal",
                   &hierarchy.create(*system_slice_, "systemd-journald"),
                   config_.journald_core, journald_queue_,
                   /*periodic_logging=*/true);
  dockerd_ = spawn_daemon("dockerd",
                          &hierarchy.create(*system_slice_, "docker.service"),
                          config_.dockerd_core, dockerd_queue_,
                          /*periodic_logging=*/true);
  containerd_ = spawn_daemon(
      "containerd", &hierarchy.create(*system_slice_, "containerd.service"),
      config_.containerd_core, containerd_queue_, /*periodic_logging=*/false);
}

sim::TaskId SystemServices::spawn_daemon(
    const std::string& name, cgroup::Cgroup* group, int core,
    std::shared_ptr<std::deque<DaemonWork>> queue, bool periodic_logging) {
  SimKernel* kernel = &kernel_;
  const ServiceConfig cfg = config_;
  // Periodic timers are per-daemon state captured by the supplier.
  auto next_log = std::make_shared<Nanos>(cfg.log_period);
  auto next_fsync = std::make_shared<Nanos>(cfg.fsync_period);

  sim::Task& task = kernel_.host().spawn({
      .name = name,
      .kind = sim::TaskKind::kDaemon,
      .group = group,
      .affinity = cgroup::CpuSet::single(core),
      .supplier =
          [kernel, cfg, queue, periodic_logging, next_log, next_fsync](
              sim::Host& host, sim::Task& task_ref) {
            if (!queue->empty()) {
              DaemonWork work = queue->front();
              queue->pop_front();
              if (work.user > 0) task_ref.push(sim::Segment::user(work.user));
              if (work.sys > 0) task_ref.push(sim::Segment::system(work.sys));
              if (work.write_bytes > 0)
                kernel->vfs().dirty(work.write_bytes);
              if (work.fsync) {
                const Nanos done =
                    host.disk().submit(host.now(), work.write_bytes);
                task_ref.push(
                    sim::Segment::block_until(done, /*io_wait=*/true));
              }
              return true;
            }
            if (periodic_logging && host.now() >= *next_log) {
              *next_log = host.now() + cfg.log_period;
              // Produce a log chunk: small CPU, buffered write.
              task_ref.push(sim::Segment::user(20 * kMicrosecond));
              task_ref.push(sim::Segment::system(15 * kMicrosecond));
              kernel->vfs().dirty(cfg.log_bytes);
              if (host.now() >= *next_fsync) {
                *next_fsync = host.now() + cfg.fsync_period;
                // Flush our own journal segment; queue behind any sync(2)
                // flood currently occupying the device.
                const std::uint64_t flush = cfg.log_bytes * 4;
                const Nanos done = host.disk().submit(host.now(), flush);
                task_ref.push(sim::Segment::system(25 * kMicrosecond));
                task_ref.push(
                    sim::Segment::block_until(done, /*io_wait=*/true));
              }
              return true;
            }
            // Sleep until the next periodic tick (or a work-queue wake).
            const Nanos tick = periodic_logging
                                   ? std::min(*next_log, *next_fsync)
                                   : host.now() + 250 * kMillisecond;
            task_ref.push(sim::Segment::block_until(
                std::max(tick, host.now() + kMillisecond)));
            return true;
          },
  });
  return task.id();
}

void SystemServices::audit_event(std::uint64_t pid, const std::string& detail) {
  if (journald_queue_->size() >= config_.audit_queue_limit) {
    ++audit_suppressed_;  // journald rate limiting kicked in
    return;
  }
  ++audit_events_;
  kernel_.trace().record({.time = kernel_.host().now(),
                          .kind = TraceKind::kAudit,
                          .pid = pid,
                          .detail = detail});
  kauditd_queue_->push_back({.user = 0, .sys = config_.kauditd_sys});
  journald_queue_->push_back({.user = config_.journald_user,
                              .sys = config_.journald_sys,
                              .write_bytes = config_.journal_bytes});
  if (sim::Task* t = kernel_.host().find_task(kauditd_)) kernel_.host().wake(*t);
  if (sim::Task* t = kernel_.host().find_task(journald_)) kernel_.host().wake(*t);
}

void SystemServices::ldisc_stream(int core, std::uint64_t bytes,
                                  std::uint64_t pid) {
  // Data flushed to the LDISC layer of the TTY subsystem through work queues
  // (Gao et al., observed by the paper as a framework side effect): softirq
  // time on the receiving core plus a little dockerd CPU.
  const Nanos softirq = static_cast<Nanos>(bytes) * 110;  // ~110ns/byte
  kernel_.host().raise_softirq(core, softirq);
  kernel_.trace().record({.time = kernel_.host().now(),
                          .kind = TraceKind::kLdiscFlush,
                          .pid = pid,
                          .detail = "bytes=" + std::to_string(bytes)});
  dockerd_queue_->push_back(
      {.user = 15 * kMicrosecond, .sys = 10 * kMicrosecond,
       .write_bytes = bytes / 4});
  if (sim::Task* t = kernel_.host().find_task(dockerd_)) kernel_.host().wake(*t);
}

}  // namespace torpedo::kernel
