// Host system services: the audit pipeline, journald, and the Docker
// daemons.
//
// These are the "other process cgroups" work can be deferred to (§2.4.3 of
// the paper): the kernel audit subsystem (kauditd -> journald) performs work
// on behalf of containerized processes but charges it to its own cgroup, and
// dockerd/containerd stream container output through the TTY LDISC layer,
// producing the persistent softirq side-band the paper observes on the first
// core after the fuzzing set.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "cgroup/cgroup.h"
#include "kernel/trace.h"
#include "sim/host.h"

namespace torpedo::kernel {

struct ServiceConfig {
  // Core placement mirrors the paper's testbed: system daemons cluster on
  // the last cores, away from the fuzzing cpusets.
  int journald_core = 6;
  int kauditd_core = 6;
  int dockerd_core = 7;
  int containerd_core = 7;

  // Background log production (keeps the page cache dirty so sync(2) has
  // something to flush, like a real host).
  Nanos log_period = 25 * kMillisecond;
  std::uint64_t log_bytes = 96 << 10;
  Nanos fsync_period = 120 * kMillisecond;

  // journald rate limiting: records beyond this backlog are suppressed
  // ("Suppressed N messages"), bounding how long a flood can echo.
  std::size_t audit_queue_limit = 2000;

  // Per-audit-event costs.
  Nanos kauditd_sys = 35 * kMicrosecond;
  Nanos journald_user = 60 * kMicrosecond;
  Nanos journald_sys = 25 * kMicrosecond;
  std::uint64_t journal_bytes = 512;
};

// Work pushed to a daemon by the kernel.
struct DaemonWork {
  Nanos user = 0;
  Nanos sys = 0;
  std::uint64_t write_bytes = 0;
  bool fsync = false;
};

class SimKernel;

class SystemServices {
 public:
  SystemServices(SimKernel& kernel, ServiceConfig config);

  SystemServices(const SystemServices&) = delete;
  SystemServices& operator=(const SystemServices&) = delete;

  // Emit an audit record on behalf of `pid`: queues work to kauditd and
  // journald and records a trace event. The cost lands in the daemons'
  // cgroups, not the caller's — the accounting gap.
  void audit_event(std::uint64_t pid, const std::string& detail);

  // dockerd-side cost of streaming container output; the LDISC flush runs in
  // softirq context on `core`.
  void ldisc_stream(int core, std::uint64_t bytes, std::uint64_t pid);

  cgroup::Cgroup& system_slice() { return *system_slice_; }
  cgroup::Cgroup& docker_slice() { return *docker_slice_; }

  sim::TaskId kauditd() const { return kauditd_; }
  sim::TaskId journald() const { return journald_; }
  sim::TaskId dockerd() const { return dockerd_; }
  sim::TaskId containerd() const { return containerd_; }

  std::uint64_t audit_events() const { return audit_events_; }
  std::uint64_t audit_suppressed() const { return audit_suppressed_; }

 private:
  sim::TaskId spawn_daemon(const std::string& name, cgroup::Cgroup* group,
                           int core,
                           std::shared_ptr<std::deque<DaemonWork>> queue,
                           bool periodic_logging);

  SimKernel& kernel_;
  ServiceConfig config_;
  cgroup::Cgroup* system_slice_ = nullptr;
  cgroup::Cgroup* docker_slice_ = nullptr;

  std::shared_ptr<std::deque<DaemonWork>> kauditd_queue_;
  std::shared_ptr<std::deque<DaemonWork>> journald_queue_;
  std::shared_ptr<std::deque<DaemonWork>> dockerd_queue_;
  std::shared_ptr<std::deque<DaemonWork>> containerd_queue_;

  sim::TaskId kauditd_ = 0;
  sim::TaskId journald_ = 0;
  sim::TaskId dockerd_ = 0;
  sim::TaskId containerd_ = 0;

  std::uint64_t audit_events_ = 0;
  std::uint64_t audit_suppressed_ = 0;
};

}  // namespace torpedo::kernel
