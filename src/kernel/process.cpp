#include "kernel/process.h"

#include "kernel/errno.h"

namespace torpedo::kernel {

int Process::install_fd(FileDesc desc) {
  if (fds_.size() >= rlimit(RLIMIT_NOFILE_)) return -EMFILE_;
  int candidate = 3;
  for (const auto& [n, _] : fds_) {
    if (n > candidate) break;
    if (n == candidate) ++candidate;
  }
  fds_[candidate] = desc;
  return candidate;
}

FileDesc* Process::fd(int n) {
  auto it = fds_.find(n);
  return it == fds_.end() ? nullptr : &it->second;
}

int Process::close_fd(int n) {
  auto it = fds_.find(n);
  if (it == fds_.end()) return EBADF_;
  fds_.erase(it);
  return 0;
}

}  // namespace torpedo::kernel
