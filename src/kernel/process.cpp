#include "kernel/process.h"

#include "kernel/errno.h"

namespace torpedo::kernel {

int Process::install_fd(FileDesc desc) {
  if (open_fds_ >= rlimit(RLIMIT_NOFILE_)) return -EMFILE_;
  // fd_scan_from_ is a floor: every fd in [3, fd_scan_from_) is live, so the
  // first dead/absent slot from there is the lowest free descriptor.
  int candidate = fd_scan_from_;
  while (static_cast<std::size_t>(candidate) < fd_slots_.size() &&
         fd_slots_[candidate].epoch == fd_epoch_)
    ++candidate;
  if (static_cast<std::size_t>(candidate) >= fd_slots_.size())
    fd_slots_.resize(candidate + 1);
  fd_slots_[candidate] = {desc, fd_epoch_};
  fd_scan_from_ = candidate + 1;
  ++open_fds_;
  return candidate;
}

FileDesc* Process::fd(int n) {
  if (n < 0 || static_cast<std::size_t>(n) >= fd_slots_.size()) return nullptr;
  FdSlot& slot = fd_slots_[n];
  return slot.epoch == fd_epoch_ ? &slot.desc : nullptr;
}

int Process::close_fd(int n) {
  if (n < 0 || static_cast<std::size_t>(n) >= fd_slots_.size() ||
      fd_slots_[n].epoch != fd_epoch_)
    return EBADF_;
  fd_slots_[n].epoch = 0;
  --open_fds_;
  if (n >= 3 && n < fd_scan_from_) fd_scan_from_ = n;
  return 0;
}

}  // namespace torpedo::kernel
