#include "kernel/procfs.h"

#include "util/strings.h"

namespace torpedo::kernel {

namespace {

void append_row(std::string& out, const std::string& label,
                const sim::CoreTimes& times) {
  out += label;
  for (int i = 0; i < sim::kNumCpuCategories; ++i) {
    out += ' ';
    out += std::to_string(nanos_to_jiffies(times.ns[static_cast<std::size_t>(i)]));
  }
  out += '\n';
}

}  // namespace

std::string render_proc_stat(const sim::Host& host) {
  std::string out;
  append_row(out, "cpu ", host.aggregate_times());
  for (int c = 0; c < host.num_cores(); ++c)
    append_row(out, "cpu" + std::to_string(c), host.core_times(c));
  // Trailer lines a real /proc/stat carries; the parser skips them.
  out += "intr 0\nctxt 0\nbtime 0\nprocesses " +
         std::to_string(host.tasks_spawned()) + "\n";
  return out;
}

std::optional<ProcStat> parse_proc_stat(const std::string& text) {
  ProcStat stat;
  bool saw_aggregate = false;
  for (std::string_view line : split(text, '\n')) {
    if (!starts_with(line, "cpu")) continue;
    auto fields = split_ws(line);
    if (fields.empty() || fields.size() < 1 + sim::kNumCpuCategories)
      return std::nullopt;
    ProcStatRow row;
    std::string_view label = fields[0];
    if (label == "cpu") {
      row.core = -1;
    } else {
      auto n = parse_u64(label.substr(3));
      if (!n) return std::nullopt;
      row.core = static_cast<int>(*n);
    }
    for (int i = 0; i < sim::kNumCpuCategories; ++i) {
      auto v = parse_i64(fields[static_cast<std::size_t>(i) + 1]);
      if (!v) return std::nullopt;
      row.jiffies[static_cast<std::size_t>(i)] = *v;
    }
    if (row.core < 0) {
      stat.aggregate = row;
      saw_aggregate = true;
    } else {
      stat.cores.push_back(row);
    }
  }
  if (!saw_aggregate && stat.cores.empty()) return std::nullopt;
  return stat;
}

}  // namespace torpedo::kernel
