#include "kernel/syscalls.h"

#include <array>
#include <utility>

namespace torpedo::kernel {

namespace {
constexpr std::array<std::pair<int, std::string_view>, 70> kNames{{
    {kRead, "read"},
    {kWrite, "write"},
    {kOpen, "open"},
    {kClose, "close"},
    {kStat, "stat"},
    {kFstat, "fstat"},
    {kPoll, "poll"},
    {kLseek, "lseek"},
    {kMmap, "mmap"},
    {kMunmap, "munmap"},
    {kRtSigreturn, "rt_sigreturn"},
    {kIoctl, "ioctl"},
    {kAccess, "access"},
    {kPipe, "pipe"},
    {kSchedYield, "sched_yield"},
    {kMsync, "msync"},
    {kMadvise, "madvise"},
    {kDup, "dup"},
    {kPause, "pause"},
    {kNanosleep, "nanosleep"},
    {kAlarm, "alarm"},
    {kGetpid, "getpid"},
    {kSocket, "socket"},
    {kConnect, "connect"},
    {kSendto, "sendto"},
    {kRecvfrom, "recvfrom"},
    {kShutdown, "shutdown"},
    {kBind, "bind"},
    {kListen, "listen"},
    {kSocketpair, "socketpair"},
    {kSetsockopt, "setsockopt"},
    {kGetsockopt, "getsockopt"},
    {kExit, "exit"},
    {kKill, "kill"},
    {kUname, "uname"},
    {kFcntl, "fcntl"},
    {kFlock, "flock"},
    {kFsync, "fsync"},
    {kFdatasync, "fdatasync"},
    {kFtruncate, "ftruncate"},
    {kGetcwd, "getcwd"},
    {kChdir, "chdir"},
    {kRename, "rename"},
    {kMkdir, "mkdir"},
    {kCreat, "creat"},
    {kUnlink, "unlink"},
    {kReadlink, "readlink"},
    {kChmod, "chmod"},
    {kUmask, "umask"},
    {kGetrlimit, "getrlimit"},
    {kSysinfo, "sysinfo"},
    {kTimes, "times"},
    {kGetuid, "getuid"},
    {kGeteuid, "geteuid"},
    {kSetuid, "setuid"},
    {kPrctl, "prctl"},
    {kSetrlimit, "setrlimit"},
    {kSync, "sync"},
    {kSetxattr, "setxattr"},
    {kGetxattr, "getxattr"},
    {kTimeOfDay, "gettimeofday"},
    {kClockGettime, "clock_gettime"},
    {kExitGroup, "exit_group"},
    {kTgkill, "tgkill"},
    {kMqOpen, "mq_open"},
    {kInotifyInit, "inotify_init"},
    {kInotifyAddWatch, "inotify_add_watch"},
    {kFallocate, "fallocate"},
    {kEventfd2, "eventfd2"},
    {kEpollCreate1, "epoll_create1"},
}};
// Entries that don't fit the array above.
constexpr std::array<std::pair<int, std::string_view>, 7> kMoreNames{{
    {kDup3, "dup3"},
    {kSyncfs, "syncfs"},
    {kKcmp, "kcmp"},
    {kMemfdCreate, "memfd_create"},
    {kRseq, "rseq"},
    {kSocketpair, "socketpair"},
    {kEventfd2, "eventfd2"},
}};
}  // namespace

std::string_view sysno_name(int nr) {
  for (const auto& [no, name] : kNames)
    if (no == nr) return name;
  for (const auto& [no, name] : kMoreNames)
    if (no == nr) return name;
  return "unknown";
}

std::optional<int> sysno_from_name(std::string_view name) {
  for (const auto& [no, n] : kNames)
    if (n == name) return no;
  for (const auto& [no, n] : kMoreNames)
    if (n == name) return no;
  return std::nullopt;
}

}  // namespace torpedo::kernel
