#include "kernel/kernel.h"

#include <algorithm>

#include "kernel/errno.h"
#include "kernel/signals.h"
#include "kernel/syscalls.h"
#include "util/check.h"

namespace torpedo::kernel {

namespace {

// Socket address families (linux/socket.h numbering).
constexpr int kAfMax = 45;
constexpr bool family_loaded(int family) {
  switch (family) {
    case 1:   // AF_UNIX
    case 2:   // AF_INET
    case 10:  // AF_INET6
    case 16:  // AF_NETLINK
    case 17:  // AF_PACKET
      return true;
    default:
      return false;
  }
}
constexpr int kNetlinkAudit = 9;

constexpr std::uint64_t kSockTypeMask = 0xF;
constexpr bool sock_type_valid(int type) { return type >= 1 && type <= 6; }

}  // namespace

SimKernel::SimKernel(KernelConfig config)
    : config_(config),
      host_(std::make_unique<sim::Host>(config.host)),
      cost_rng_(config.host.seed ^ 0xC057C057C057ULL) {
  vfs_.set_lookup_cache(config_.path_lookup_cache);
  if (config_.install_services)
    services_ = std::make_unique<SystemServices>(*this, config_.services);
}

SimKernel::~SimKernel() = default;

Nanos SimKernel::jitter(Nanos base) {
  if (base <= 0) return base;
  // Deterministic +/-15%.
  const double f = 0.85 + 0.30 * cost_rng_.uniform();
  return static_cast<Nanos>(static_cast<double>(base) * f);
}

Process& SimKernel::create_process(std::string name, cgroup::Cgroup* group,
                                   sim::TaskId task) {
  const std::uint64_t pid = task;  // pid == backing task id
  auto proc = std::make_unique<Process>(pid, std::move(name), group, task);
  proc->set_epoch_fd_restore(config_.epoch_fd_restore);
  Process& ref = *proc;
  processes_[pid] = std::move(proc);
  return ref;
}

void SimKernel::destroy_process(Process& proc) {
  reset_process(proc);
  processes_.erase(proc.pid());
}

void SimKernel::reset_process(Process& proc) {
  proc.close_all_fds();
  if (proc.mapped_bytes > 0 && proc.group())
    proc.group()->uncharge_memory(static_cast<std::int64_t>(proc.mapped_bytes));
  proc.mapped_bytes = 0;
  proc.pending_fatal = 0;
  proc.in_signal_context = false;
  proc.alarm_at = 0;
}

Process* SimKernel::find_process(std::uint64_t pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void SimKernel::request_module(Process& proc, const std::string& module) {
  ++modprobe_execs_;
  const Nanos now = host_->now();
  trace_.record({.time = now,
                 .kind = TraceKind::kUsermodeHelper,
                 .pid = proc.pid(),
                 .detail = "/sbin/modprobe " + module});
  trace_.record({.time = now,
                 .kind = TraceKind::kModprobe,
                 .pid = proc.pid(),
                 .detail = module});

  // The helper runs in the root cgroup with no core restriction: its CPU is
  // out-of-band relative to the requesting container.
  sim::Host* host = host_.get();
  const sim::TaskId caller = proc.task();
  sim::Task& helper = host->spawn({
      .name = "modprobe",
      .kind = sim::TaskKind::kHelper,
      .group = &host->cgroups().root(),
      .affinity = cgroup::CpuSet::all(host->num_cores()),
      .supplier = nullptr,
  });
  helper.push(sim::Segment::system(jitter(config_.costs.modprobe_sys)));
  helper.push(sim::Segment::user(jitter(config_.costs.modprobe_user)));
  sim::Segment done = sim::Segment::system(0);
  done.on_complete = [](sim::Host& h, std::uint64_t who) {
    if (sim::Task* t = h.find_task(who)) h.wake(*t);
  };
  done.payload = caller;
  helper.push(done);
}

void SimKernel::deliver_fatal_signal(Process& proc, int sig) {
  proc.pending_fatal = sig;
  if (!signal_dumps_core(sig)) return;
  if (!proc.host_coredumps) return;  // sandboxed runtime handles it internally
  ++coredumps_;
  const Nanos now = host_->now();
  trace_.record({.time = now,
                 .kind = TraceKind::kCoredump,
                 .pid = proc.pid(),
                 .detail = std::string(signal_name(sig))});
  trace_.record({.time = now,
                 .kind = TraceKind::kUsermodeHelper,
                 .pid = proc.pid(),
                 .detail = "core_pattern helper"});

  // do_coredump() pipes the core through a root-cgroup usermodehelper child
  // (the |/usr/share/apport/... pattern). The child's CPU and IO are charged
  // to nobody the container pays for — up to 200x amplification in Gao et al.
  sim::Task& helper = host_->spawn({
      .name = "core-helper",
      .kind = sim::TaskKind::kHelper,
      .group = &host_->cgroups().root(),
      .affinity = cgroup::CpuSet::all(host_->num_cores()),
      .supplier = nullptr,
  });
  helper.push(sim::Segment::system(jitter(config_.costs.coredump_helper_sys)));
  helper.push(sim::Segment::user(jitter(config_.costs.coredump_helper_user)));
  vfs_.dirty(config_.costs.coredump_bytes);
}

SysResult SimKernel::do_syscall(Process& proc, const SysReq& req) {
  SyscallCtx ctx{.proc = proc, .req = req, .now = host_->now(), .res = {}};

  // Pending SIGALRM fires at the next syscall boundary.
  if (proc.alarm_at != 0 && ctx.now >= proc.alarm_at) {
    proc.alarm_at = 0;
    deliver_fatal_signal(proc, SIGALRM_);
    ctx.res.err = EINTR_;
    ctx.res.ret = -EINTR_;
    ctx.res.fatal_signal = SIGALRM_;
    ctx.res.sys_ns = jitter(config_.costs.trivial);
    return ctx.res;
  }

  // Selftest fault injection: fail the call before any kernel state changes.
  // The caller still pays entry costs, as if the kernel bailed at the top of
  // the handler.
  if (fault_hook_) {
    if (const int inject_err = fault_hook_->inject(proc, req);
        inject_err != 0) {
      ctx.res.err = inject_err;
      ctx.res.ret = -inject_err;
      ctx.res.sys_ns = jitter(config_.costs.entry);
      ctx.res.user_ns = 600;
      return ctx.res;
    }
  }

  ctx.res.sys_ns = jitter(config_.costs.entry);
  ctx.res.user_ns = 600;  // libc wrapper overhead

  if (req.nr >= 0 && req.nr < kMaxSysno) {
    if (const SyscallHandler handler = syscall_table()[
            static_cast<std::size_t>(req.nr)];
        handler != nullptr)
      return (this->*handler)(ctx);
  }
  return h_enosys(ctx);
}

const std::array<SimKernel::SyscallHandler, SimKernel::kMaxSysno>&
SimKernel::syscall_table() {
  static const std::array<SyscallHandler, kMaxSysno> table = [] {
    std::array<SyscallHandler, kMaxSysno> t{};
    t[kGetpid] = &SimKernel::h_getpid;
    t[kGetuid] = &SimKernel::h_getuid;
    t[kGeteuid] = &SimKernel::h_getuid;
    t[kUname] = &SimKernel::h_trivial;
    t[kSysinfo] = &SimKernel::h_trivial;
    t[kTimes] = &SimKernel::h_trivial;
    t[kGetcwd] = &SimKernel::h_trivial;
    t[kClockGettime] = &SimKernel::h_trivial;
    t[kTimeOfDay] = &SimKernel::h_trivial;
    t[kSchedYield] = &SimKernel::h_trivial;
    t[kPrctl] = &SimKernel::h_trivial;
    t[kUmask] = &SimKernel::h_umask;
    t[kOpen] = &SimKernel::h_open;
    t[kCreat] = &SimKernel::h_creat;
    t[kClose] = &SimKernel::h_close;
    t[kDup] = &SimKernel::h_dup;
    t[kDup3] = &SimKernel::h_dup;
    t[kRead] = &SimKernel::h_read;
    t[kWrite] = &SimKernel::h_write;
    t[kLseek] = &SimKernel::h_lseek;
    t[kStat] = &SimKernel::h_path_stat;
    t[kAccess] = &SimKernel::h_path_stat;
    t[kFstat] = &SimKernel::h_fstat;
    t[kReadlink] = &SimKernel::h_readlink;
    t[kChmod] = &SimKernel::h_chmod;
    t[kMkdir] = &SimKernel::h_mkdir;
    t[kUnlink] = &SimKernel::h_unlink;
    t[kRename] = &SimKernel::h_rename;
    t[kMmap] = &SimKernel::h_mmap;
    t[kMunmap] = &SimKernel::h_munmap;
    t[kMsync] = &SimKernel::h_msync;
    t[kMadvise] = &SimKernel::h_msync;
    t[kSocket] = &SimKernel::h_socket;
    t[kSocketpair] = &SimKernel::h_socketpair;
    t[kSendto] = &SimKernel::h_sendto;
    t[kRecvfrom] = &SimKernel::h_recvfrom;
    t[kConnect] = &SimKernel::h_sockop;
    t[kBind] = &SimKernel::h_sockop;
    t[kListen] = &SimKernel::h_sockop;
    t[kShutdown] = &SimKernel::h_sockop;
    t[kSetsockopt] = &SimKernel::h_sockop;
    t[kGetsockopt] = &SimKernel::h_sockop;
    t[kSync] = &SimKernel::h_sync;
    t[kSyncfs] = &SimKernel::h_syncfs;
    t[kFsync] = &SimKernel::h_fsync;
    t[kFdatasync] = &SimKernel::h_fsync;
    t[kFallocate] = &SimKernel::h_fallocate;
    t[kFtruncate] = &SimKernel::h_ftruncate;
    t[kRtSigreturn] = &SimKernel::h_rt_sigreturn;
    t[kRseq] = &SimKernel::h_rseq;
    t[kKill] = &SimKernel::h_kill;
    t[kTgkill] = &SimKernel::h_kill;
    t[kExit] = &SimKernel::h_exit;
    t[kExitGroup] = &SimKernel::h_exit;
    t[kAlarm] = &SimKernel::h_alarm;
    t[kPause] = &SimKernel::h_pause;
    t[kNanosleep] = &SimKernel::h_nanosleep;
    t[kPoll] = &SimKernel::h_poll;
    t[kGetrlimit] = &SimKernel::h_getrlimit;
    t[kSetrlimit] = &SimKernel::h_setrlimit;
    t[kSetuid] = &SimKernel::h_setuid;
    t[kSetxattr] = &SimKernel::h_setxattr;
    t[kGetxattr] = &SimKernel::h_getxattr;
    t[kIoctl] = &SimKernel::h_ioctl;
    t[kFcntl] = &SimKernel::h_fdcheck_ok;
    t[kFlock] = &SimKernel::h_fdcheck_ok;
    t[kInotifyInit] = &SimKernel::h_inotify_init;
    t[kInotifyAddWatch] = &SimKernel::h_inotify_add_watch;
    t[kPipe] = &SimKernel::h_pipe;
    t[kEpollCreate1] = &SimKernel::h_epoll_create1;
    t[kEventfd2] = &SimKernel::h_eventfd2;
    t[kMemfdCreate] = &SimKernel::h_memfd_create;
    t[kMqOpen] = &SimKernel::h_mq_open;
    t[kKcmp] = &SimKernel::h_kcmp;
    return t;
  }();
  return table;
}

SysResult SimKernel::syscall_fatal(SyscallCtx& ctx, int sig) {
  deliver_fatal_signal(ctx.proc, sig);
  ctx.res.fatal_signal = sig;
  ctx.res.err = EINTR_;
  ctx.res.ret = -EINTR_;
  // do_coredump() writes the dump in the dying task's kernel context
  // before handing it to the usermodehelper pipe.
  if (signal_dumps_core(sig) && ctx.proc.host_coredumps)
    ctx.res.sys_ns += jitter(config_.costs.coredump_caller_sys);
  return ctx.res;
}

Nanos SimKernel::syscall_deadline(const SyscallCtx& ctx, Nanos want) const {
  const Nanos cap = ctx.proc.block_deadline > 0
                        ? ctx.proc.block_deadline
                        : ctx.now + config_.costs.nanosleep_cap;
  return std::min(ctx.now + want, std::max(cap, ctx.now));
}

SysResult SimKernel::install_new_fd(SyscallCtx& ctx, FdKind kind) {
  const int fd = ctx.proc.install_fd({.kind = kind});
  if (fd < 0) return ctx.fail(-fd);
  return ctx.ok(fd);
}

SysResult SimKernel::h_getpid(SyscallCtx& ctx) {
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.ok(static_cast<std::int64_t>(ctx.proc.pid()));
}

SysResult SimKernel::h_getuid(SyscallCtx& ctx) {
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.ok(static_cast<std::int64_t>(ctx.proc.uid));
}

SysResult SimKernel::h_trivial(SyscallCtx& ctx) {
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.ok();
}

SysResult SimKernel::h_umask(SyscallCtx& ctx) {
  const std::uint64_t old = ctx.proc.umask;
  ctx.proc.umask = ctx.req.val(0) & 0777;
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.ok(static_cast<std::int64_t>(old));
}

SysResult SimKernel::h_open(SyscallCtx& ctx) {
  return sys_file_open(ctx.proc, ctx.req, /*creat=*/false);
}

SysResult SimKernel::h_creat(SyscallCtx& ctx) {
  return sys_file_open(ctx.proc, ctx.req, /*creat=*/true);
}

SysResult SimKernel::h_close(SyscallCtx& ctx) {
  const int err = ctx.proc.close_fd(static_cast<int>(ctx.req.val(0)));
  return err ? ctx.fail(err) : ctx.ok();
}

SysResult SimKernel::h_dup(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  const int nfd = ctx.proc.install_fd(*fd);
  if (nfd < 0) return ctx.fail(-nfd);
  return ctx.ok(nfd);
}

SysResult SimKernel::h_read(SyscallCtx& ctx) {
  return sys_read_write(ctx.proc, ctx.req, /*write=*/false);
}

SysResult SimKernel::h_write(SyscallCtx& ctx) {
  return sys_read_write(ctx.proc, ctx.req, /*write=*/true);
}

SysResult SimKernel::h_lseek(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  if (fd->kind == FdKind::kSocket || fd->kind == FdKind::kPipe)
    return ctx.fail(ESPIPE_);
  const std::int64_t offset = static_cast<std::int64_t>(ctx.req.val(1));
  const std::uint64_t whence = ctx.req.val(2);
  std::int64_t base = 0;
  if (whence == 0)
    base = 0;  // SEEK_SET
  else if (whence == 1)
    base = static_cast<std::int64_t>(fd->offset);  // SEEK_CUR
  else if (whence == 2)
    base = fd->inode ? static_cast<std::int64_t>(fd->inode->size) : 0;
  else
    return ctx.fail(EINVAL_);
  const std::int64_t target = base + offset;
  if (target < 0) return ctx.fail(EINVAL_);
  fd->offset = static_cast<std::uint64_t>(target);
  return ctx.ok(target);
}

SysResult SimKernel::h_path_stat(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  LookupResult lr = vfs_.lookup(ctx.req.str(0));
  ctx.res.sys_ns += lr.follows * config_.costs.symlink_step;
  if (!lr.inode) return ctx.fail(lr.error);
  return ctx.ok();
}

SysResult SimKernel::h_fstat(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  return ctx.ok();
}

SysResult SimKernel::h_readlink(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  const std::string& path = ctx.req.str(0);
  // readlink does NOT follow the final component, but does resolve the
  // directory prefix. A chain of looping directory components burns the
  // symlink budget.
  LookupResult lr = vfs_.lookup(path);
  ctx.res.sys_ns += lr.follows * config_.costs.symlink_step;
  if (!lr.inode) {
    if (lr.error == ELOOP_) return ctx.fail(ELOOP_);
    return ctx.fail(lr.error);
  }
  if (lr.inode->kind != InodeKind::kSymlink) return ctx.fail(EINVAL_);
  return ctx.ok(static_cast<std::int64_t>(lr.inode->symlink_target.size()));
}

SysResult SimKernel::h_chmod(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  LookupResult lr = vfs_.lookup(ctx.req.str(0));
  ctx.res.sys_ns += lr.follows * config_.costs.symlink_step;
  if (!lr.inode) return ctx.fail(lr.error);
  lr.inode->mode = static_cast<std::uint32_t>(ctx.req.val(1)) & 07777;
  return ctx.ok();
}

SysResult SimKernel::h_mkdir(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  const int err = vfs_.mkdir(ctx.req.str(0),
                             static_cast<std::uint32_t>(ctx.req.val(1)));
  return err ? ctx.fail(err) : ctx.ok();
}

SysResult SimKernel::h_unlink(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  const int err = vfs_.remove(ctx.req.str(0));
  return err ? ctx.fail(err) : ctx.ok();
}

SysResult SimKernel::h_rename(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.path_sys);
  LookupResult lr = vfs_.lookup(ctx.req.str(0));
  if (!lr.inode) return ctx.fail(lr.error);
  // Simplified: rename re-creates the target and drops the source.
  Inode* out = nullptr;
  vfs_.create(ctx.req.str(1), lr.inode->mode, &out);
  if (out) out->size = lr.inode->size;
  vfs_.remove(ctx.req.str(0));
  return ctx.ok();
}

SysResult SimKernel::h_mmap(SyscallCtx& ctx) {
  return sys_mmap(ctx.proc, ctx.req);
}

SysResult SimKernel::h_munmap(SyscallCtx& ctx) {
  const std::uint64_t len = ctx.req.val(1);
  if (len == 0) return ctx.fail(EINVAL_);
  const std::uint64_t release = std::min(len, ctx.proc.mapped_bytes);
  if (release > 0 && ctx.proc.group())
    ctx.proc.group()->uncharge_memory(static_cast<std::int64_t>(release));
  ctx.proc.mapped_bytes -= release;
  ctx.res.sys_ns += jitter(config_.costs.mmap_sys / 2);
  return ctx.ok();
}

SysResult SimKernel::h_msync(SyscallCtx& ctx) {
  ctx.res.sys_ns += jitter(config_.costs.trivial * 2);
  return ctx.ok();
}

SysResult SimKernel::h_socket(SyscallCtx& ctx) {
  return sys_socket(ctx.proc, ctx.req, /*pair=*/false);
}

SysResult SimKernel::h_socketpair(SyscallCtx& ctx) {
  return sys_socket(ctx.proc, ctx.req, /*pair=*/true);
}

SysResult SimKernel::h_sendto(SyscallCtx& ctx) {
  return sys_sendto(ctx.proc, ctx.req);
}

SysResult SimKernel::h_recvfrom(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  if (fd->kind != FdKind::kSocket) return ctx.fail(ENOTCONN_);
  // Nothing ever arrives; block until the deadline then EAGAIN. These
  // calls are "thoroughly uninteresting" (§4.1.2) and end up denylisted.
  ctx.res.block_until = syscall_deadline(ctx, config_.costs.nanosleep_cap);
  return ctx.fail(EAGAIN_);
}

SysResult SimKernel::h_sockop(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  if (fd->kind != FdKind::kSocket) return ctx.fail(ENOTCONN_);
  ctx.res.sys_ns += jitter(config_.costs.socket_sys / 2);
  if (ctx.req.nr == kConnect) return ctx.fail(ETIMEDOUT_);
  return ctx.ok();
}

SysResult SimKernel::h_sync(SyscallCtx& ctx) {
  return sys_sync(ctx.proc, -1, /*whole_system=*/true);
}

SysResult SimKernel::h_syncfs(SyscallCtx& ctx) {
  if (!ctx.proc.fd(static_cast<int>(ctx.req.val(0)))) return ctx.fail(EBADF_);
  return sys_sync(ctx.proc, static_cast<int>(ctx.req.val(0)),
                  /*whole_system=*/true);
}

SysResult SimKernel::h_fsync(SyscallCtx& ctx) {
  if (!ctx.proc.fd(static_cast<int>(ctx.req.val(0)))) return ctx.fail(EBADF_);
  return sys_sync(ctx.proc, static_cast<int>(ctx.req.val(0)),
                  /*whole_system=*/false);
}

SysResult SimKernel::h_fallocate(SyscallCtx& ctx) {
  return sys_size_change(ctx.proc, ctx.req, /*fallocate=*/true);
}

SysResult SimKernel::h_ftruncate(SyscallCtx& ctx) {
  return sys_size_change(ctx.proc, ctx.req, /*fallocate=*/false);
}

SysResult SimKernel::h_rt_sigreturn(SyscallCtx& ctx) {
  // Outside a signal handler the restored context is garbage: SIGSEGV,
  // whose default action dumps core (the paper's §4.3 "any usage" row).
  ctx.res.sys_ns += jitter(config_.costs.trivial * 2);
  if (!ctx.proc.in_signal_context) return syscall_fatal(ctx, SIGSEGV_);
  ctx.proc.in_signal_context = false;
  return ctx.ok();
}

SysResult SimKernel::h_rseq(SyscallCtx& ctx) {
  // rseq(ptr, len, flags, sig): misaligned ptr or bad len/flags kill the
  // caller with SIGSEGV on registration (matches the paper's finding).
  const std::uint64_t ptr = ctx.req.val(0);
  const std::uint64_t len = ctx.req.val(1);
  const std::uint64_t flags = ctx.req.val(2);
  ctx.res.sys_ns += jitter(config_.costs.trivial * 2);
  if (flags != 0 && flags != 1) return ctx.fail(EINVAL_);
  if ((ptr & 0x1F) != 0 || len != 32) return syscall_fatal(ctx, SIGSEGV_);
  return ctx.ok();
}

SysResult SimKernel::h_kill(SyscallCtx& ctx) {
  const std::uint64_t target = ctx.req.val(0);
  const int sig = static_cast<int>(ctx.req.nr == kTgkill ? ctx.req.val(2)
                                                         : ctx.req.val(1));
  if (sig < 0 || sig > 64) return ctx.fail(EINVAL_);
  if (target != ctx.proc.pid()) return ctx.fail(ESRCH_);  // PID-namespaced
  if (sig == 0) return ctx.ok();
  if (signal_is_fatal(sig)) return syscall_fatal(ctx, sig);
  return ctx.ok();
}

SysResult SimKernel::h_exit(SyscallCtx& ctx) {
  // Voluntary exit: no dump; the executor restarts the program process.
  ctx.proc.pending_fatal = SIGKILL_;
  ctx.res.fatal_signal = SIGKILL_;
  return ctx.ok();
}

SysResult SimKernel::h_alarm(SyscallCtx& ctx) {
  const std::uint64_t secs = ctx.req.val(0);
  const Nanos previous = ctx.proc.alarm_at;
  ctx.proc.alarm_at =
      secs == 0 ? 0 : ctx.now + static_cast<Nanos>(secs) * kSecond;
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  const Nanos remaining =
      previous > ctx.now ? (previous - ctx.now + kSecond - 1) / kSecond : 0;
  return ctx.ok(remaining);
}

SysResult SimKernel::h_pause(SyscallCtx& ctx) {
  ctx.res.block_until = syscall_deadline(ctx, kSecond * 3600);
  return ctx.fail(EINTR_);
}

SysResult SimKernel::h_nanosleep(SyscallCtx& ctx) {
  const Nanos want = static_cast<Nanos>(ctx.req.val(0));
  ctx.res.block_until =
      syscall_deadline(ctx, std::max<Nanos>(want, kMicrosecond));
  return ctx.ok();
}

SysResult SimKernel::h_poll(SyscallCtx& ctx) {
  const Nanos timeout_ms = static_cast<Nanos>(ctx.req.val(2));
  ctx.res.block_until = syscall_deadline(ctx, timeout_ms * kMillisecond);
  return ctx.ok(0);
}

SysResult SimKernel::h_getrlimit(SyscallCtx& ctx) {
  const std::uint64_t which = ctx.req.val(0);
  if (which >= kNumRlimits) return ctx.fail(EINVAL_);
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.ok();
}

SysResult SimKernel::h_setrlimit(SyscallCtx& ctx) {
  const std::uint64_t which = ctx.req.val(0);
  if (which >= kNumRlimits) return ctx.fail(EINVAL_);
  ctx.proc.set_rlimit(static_cast<int>(which), ctx.req.val(1));
  return ctx.ok();
}

SysResult SimKernel::h_setuid(SyscallCtx& ctx) {
  ctx.proc.uid = ctx.req.val(0);
  // Credential changes are audited; the audit daemons do the work in
  // their own cgroups (§2.4.3 "deferring work to other process cgroups").
  if (services_ && ctx.proc.host_audit)
    services_->audit_event(ctx.proc.pid(), "syscall=setuid");
  ctx.res.sys_ns += jitter(config_.costs.trivial * 2);
  return ctx.ok();
}

SysResult SimKernel::h_setxattr(SyscallCtx& ctx) {
  return sys_xattr(ctx.proc, ctx.req, /*set=*/true);
}

SysResult SimKernel::h_getxattr(SyscallCtx& ctx) {
  return sys_xattr(ctx.proc, ctx.req, /*set=*/false);
}

SysResult SimKernel::h_ioctl(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  ctx.res.sys_ns += jitter(config_.costs.trivial * 3);
  return ctx.fail(ENOTTY_);  // no simulated device implements ioctls
}

SysResult SimKernel::h_fdcheck_ok(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  return ctx.ok(0);
}

SysResult SimKernel::h_inotify_init(SyscallCtx& ctx) {
  return install_new_fd(ctx, FdKind::kInotify);
}

SysResult SimKernel::h_inotify_add_watch(SyscallCtx& ctx) {
  FileDesc* fd = ctx.proc.fd(static_cast<int>(ctx.req.val(0)));
  if (!fd) return ctx.fail(EBADF_);
  if (fd->kind != FdKind::kInotify) return ctx.fail(EINVAL_);
  LookupResult lr = vfs_.lookup(ctx.req.str(1));
  if (!lr.inode) return ctx.fail(lr.error);
  return ctx.ok(1);
}

SysResult SimKernel::h_pipe(SyscallCtx& ctx) {
  const int r = ctx.proc.install_fd({.kind = FdKind::kPipe});
  if (r < 0) return ctx.fail(-r);
  const int w = ctx.proc.install_fd({.kind = FdKind::kPipe});
  if (w < 0) return ctx.fail(-w);
  return ctx.ok(0);
}

SysResult SimKernel::h_epoll_create1(SyscallCtx& ctx) {
  return install_new_fd(ctx, FdKind::kEpoll);
}

SysResult SimKernel::h_eventfd2(SyscallCtx& ctx) {
  return install_new_fd(ctx, FdKind::kEventfd);
}

SysResult SimKernel::h_memfd_create(SyscallCtx& ctx) {
  return install_new_fd(ctx, FdKind::kMemfd);
}

SysResult SimKernel::h_mq_open(SyscallCtx& ctx) {
  return install_new_fd(ctx, FdKind::kMqueue);
}

SysResult SimKernel::h_kcmp(SyscallCtx& ctx) {
  const std::uint64_t pid1 = ctx.req.val(0);
  const std::uint64_t pid2 = ctx.req.val(1);
  const std::uint64_t type = ctx.req.val(2);
  if (type > 7) return ctx.fail(EINVAL_);
  if (pid1 != ctx.proc.pid() && !processes_.contains(pid1))
    return ctx.fail(ESRCH_);
  if (pid2 != ctx.proc.pid() && !processes_.contains(pid2))
    return ctx.fail(ESRCH_);
  return ctx.ok(0);
}

SysResult SimKernel::h_enosys(SyscallCtx& ctx) {
  ctx.res.sys_ns = jitter(config_.costs.trivial);
  return ctx.fail(ENOSYS_);
}

SysResult SimKernel::sys_file_open(Process& proc, const SysReq& req,
                                   bool creat) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.open_sys);
  res.user_ns = 600;
  const std::string& path = req.str(0);
  const std::uint64_t flags = creat ? 0x241 /*O_WRONLY|O_CREAT|O_TRUNC*/
                                    : req.val(1);
  const std::uint64_t mode = creat ? req.val(1) : req.val(2);

  Inode* inode = nullptr;
  LookupResult lr = vfs_.lookup(path);
  res.sys_ns += lr.follows * config_.costs.symlink_step;
  if (lr.inode) {
    inode = lr.inode;
    if (creat || (flags & 0x200) /*O_TRUNC*/) inode->size = 0;
  } else if (lr.error == ELOOP_) {
    res.err = ELOOP_;
    res.ret = -ELOOP_;
    return res;
  } else if (creat || (flags & 0x40) /*O_CREAT*/) {
    const int err = vfs_.create(path, static_cast<std::uint32_t>(mode), &inode);
    if (err) {
      res.err = err;
      res.ret = -err;
      return res;
    }
  } else {
    res.err = lr.error;
    res.ret = -lr.error;
    return res;
  }

  // Occasional cold-cache stall.
  if (cost_rng_.uniform() < config_.costs.open_block_chance) {
    res.block_until = host_->now() + jitter(config_.costs.open_block);
    res.block_io = true;
  }

  const int fd = proc.install_fd(
      {.kind = FdKind::kFile, .inode = inode, .offset = 0, .flags = flags});
  if (fd < 0) {
    res.err = -fd;
    res.ret = fd;
    return res;
  }
  res.ret = fd;
  return res;
}

SysResult SimKernel::sys_read_write(Process& proc, const SysReq& req,
                                    bool write) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry);
  res.user_ns = 600;
  FileDesc* fd = proc.fd(static_cast<int>(req.val(0)));
  if (!fd) {
    res.err = EBADF_;
    res.ret = -EBADF_;
    return res;
  }
  const std::uint64_t count = req.val(2);
  res.sys_ns += jitter(config_.costs.rw_sys) +
                static_cast<Nanos>(count / 1024) * config_.costs.rw_per_kb;

  if (fd->kind == FdKind::kSocket) {
    res.err = ENOTCONN_;
    res.ret = -ENOTCONN_;
    return res;
  }
  if (fd->kind != FdKind::kFile || !fd->inode) {
    // pipes/eventfds: treat as short ok transfer
    res.ret = static_cast<std::int64_t>(std::min<std::uint64_t>(count, 4096));
    return res;
  }

  Inode* inode = fd->inode;
  if (write) {
    if (inode->kind == InodeKind::kProcFile) {
      inode->contents = req.str(1);
      res.ret = static_cast<std::int64_t>(count ? count : req.str(1).size());
      return res;
    }
    // RLIMIT_FSIZE enforcement: exceeding it raises SIGXFSZ (core dump set).
    const std::uint64_t limit = proc.rlimit(RLIMIT_FSIZE_);
    if (limit != kRlimInfinity && fd->offset + count > limit) {
      deliver_fatal_signal(proc, SIGXFSZ_);
      res.fatal_signal = SIGXFSZ_;
      if (proc.host_coredumps)
        res.sys_ns += jitter(config_.costs.coredump_caller_sys);
      res.err = EFBIG_;
      res.ret = -EFBIG_;
      return res;
    }
    // Buffered write: dirty pages now, device later. The blkio controller
    // never sees this IO — the gap sync(2) exploits.
    vfs_.dirty(count);
    inode->size = std::max(inode->size, fd->offset + count);
    fd->offset += count;
    // Writers stall while a sync(2) flush holds the superblock.
    if (flush_in_flight_until_ > host_->now()) {
      res.block_until = flush_in_flight_until_;
      res.block_io = true;
    }
    res.ret = static_cast<std::int64_t>(count);
    return res;
  }

  // read
  std::uint64_t avail = 0;
  if (inode->kind == InodeKind::kProcFile) {
    avail = inode->contents.size() > fd->offset
                ? inode->contents.size() - fd->offset
                : 0;
  } else if (inode->kind == InodeKind::kCharDev) {
    avail = count;
  } else {
    avail = inode->size > fd->offset ? inode->size - fd->offset : 0;
  }
  const std::uint64_t n = std::min(avail, count);
  fd->offset += n;
  res.ret = static_cast<std::int64_t>(n);
  return res;
}

SysResult SimKernel::sys_socket(Process& proc, const SysReq& req, bool pair) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.socket_sys);
  res.user_ns = 600;
  const int family = static_cast<int>(req.val(0));
  const int raw_type = static_cast<int>(req.val(1));
  const int type = raw_type & static_cast<int>(kSockTypeMask);
  const int protocol = static_cast<int>(req.val(2));

  auto fail_with_modprobe = [&](int err, const std::string& module) {
    if (!proc.modprobe_on_missing) {
      // Sandboxed netstack: the request never reaches the host kernel.
      res.err = err;
      res.ret = -err;
      return res;
    }
    // request_module() has no negative-result cache: *every* failing request
    // re-execs modprobe — the paper's new runC finding (§4.3.3).
    request_module(proc, module);
    // The caller blocks until the helper exits (request_module is
    // synchronous); the helper's completion wakes it early.
    const Nanos cap = proc.block_deadline > 0
                          ? proc.block_deadline
                          : host_->now() + 50 * kMillisecond;
    res.block_until = std::max(cap, host_->now());
    // The helper's exit wakes the caller well before the deadline; tell the
    // executor's Algorithm-1 accounting what to actually expect.
    res.block_hint =
        2 * (config_.costs.modprobe_sys + config_.costs.modprobe_user);
    res.err = err;
    res.ret = -err;
    return res;
  };

  if (family < 0 || family >= kAfMax) {
    // Invalid family: rejected before the module path.
    res.err = EAFNOSUPPORT_;
    res.ret = -EAFNOSUPPORT_;
    return res;
  }
  if (!family_loaded(family))
    return fail_with_modprobe(EAFNOSUPPORT_,
                              "net-pf-" + std::to_string(family));
  if (!sock_type_valid(type))
    return fail_with_modprobe(ESOCKTNOSUPPORT_,
                              "net-pf-" + std::to_string(family) + "-type-" +
                                  std::to_string(type));

  bool proto_ok = false;
  switch (family) {
    case 1:  // AF_UNIX
    case 17:
      proto_ok = protocol == 0;
      break;
    case 2:   // AF_INET
    case 10:  // AF_INET6
      proto_ok = protocol == 0 || protocol == 1 || protocol == 6 ||
                 protocol == 17;
      break;
    case 16:  // AF_NETLINK
      proto_ok = protocol >= 0 && protocol <= 22;
      break;
    default:
      proto_ok = protocol == 0;
  }
  if (!proto_ok)
    return fail_with_modprobe(EPROTONOSUPPORT_,
                              "net-pf-" + std::to_string(family) + "-proto-" +
                                  std::to_string(protocol));

  FileDesc desc{.kind = FdKind::kSocket,
                .family = family,
                .type = type,
                .protocol = protocol};
  const int fd = proc.install_fd(desc);
  if (fd < 0) {
    res.err = -fd;
    res.ret = fd;
    return res;
  }
  if (pair) {
    const int fd2 = proc.install_fd(desc);
    if (fd2 < 0) {
      proc.close_fd(fd);
      res.err = -fd2;
      res.ret = fd2;
      return res;
    }
    res.ret = 0;
    return res;
  }
  res.ret = fd;
  return res;
}

SysResult SimKernel::sys_sendto(Process& proc, const SysReq& req) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.sendto_sys);
  res.user_ns = 600;
  FileDesc* fd = proc.fd(static_cast<int>(req.val(0)));
  if (!fd) {
    res.err = EBADF_;
    res.ret = -EBADF_;
    return res;
  }
  if (fd->kind != FdKind::kSocket) {
    res.err = ENOTCONN_;
    res.ret = -ENOTCONN_;
    return res;
  }
  const std::uint64_t len = req.val(2);

  if (fd->family == 16 && fd->protocol == kNetlinkAudit) {
    // Writing to the audit netlink socket generates audit records that
    // kauditd/journald process in their own cgroups (Table A.3's program).
    // Sandboxed runtimes terminate netlink in the sentry's netstack.
    if (services_ && proc.host_audit)
      services_->audit_event(proc.pid(), "netlink-audit len=" +
                                             std::to_string(len));
    res.ret = static_cast<std::int64_t>(len);
    return res;
  }
  if (fd->family == 2 || fd->family == 10) {
    if (fd->type == 1 /*SOCK_STREAM*/) {
      res.err = ENOTCONN_;
      res.ret = -ENOTCONN_;
      return res;
    }
    // Datagram tx: rx processing happens in softirq context on the
    // receiving core — time charged to no container (IRON's motivation).
    if (sim::Task* t = host_->find_task(proc.task())) {
      const int rx_core = (t->core() + 1) % host_->num_cores();
      host_->raise_softirq(rx_core, jitter(config_.costs.net_softirq));
      trace_.record({.time = host_->now(),
                     .kind = TraceKind::kNetSoftirq,
                     .pid = proc.pid(),
                     .detail = "len=" + std::to_string(len)});
    }
    res.ret = static_cast<std::int64_t>(len);
    return res;
  }
  // unix/packet/other netlink: local delivery, cheap.
  res.ret = static_cast<std::int64_t>(len);
  return res;
}

SysResult SimKernel::sys_sync(Process& proc, int /*fd*/, bool whole_system) {
  SysResult res;
  res.user_ns = 600;
  const Nanos now = host_->now();

  std::uint64_t flush_bytes = 0;
  if (whole_system) {
    flush_bytes = vfs_.take_dirty();
    res.sys_ns = jitter(config_.costs.entry) +
                 jitter(config_.costs.sync_caller_sys);
  } else {
    flush_bytes = vfs_.consume_dirty(1 << 20);
    res.sys_ns = jitter(config_.costs.entry) +
                 jitter(config_.costs.sync_caller_sys / 4);
  }

  trace_.record({.time = now,
                 .kind = TraceKind::kIoFlush,
                 .pid = proc.pid(),
                 .detail = (whole_system ? "sync bytes=" : "fsync bytes=") +
                           std::to_string(flush_bytes)});

  // Writeback bookkeeping runs on a kworker in the root cgroup: CPU the
  // caller is never charged for.
  const Nanos wb_cpu = std::max<Nanos>(
      20 * kMicrosecond,
      static_cast<Nanos>(flush_bytes >> 20) * config_.costs.writeback_sys_per_mb);
  sim::WorkItem wb;
  wb.name = "writeback";
  wb.system_time = jitter(wb_cpu);
  host_->schedule_work(std::move(wb));

  // The device-side flush: journal barriers give it a floor even when the
  // dirty set is small. The transfer is serialized behind whatever the
  // device is already doing.
  const Nanos floor = whole_system ? config_.costs.sync_floor
                                   : config_.costs.sync_floor / 4;
  const Nanos transfer =
      std::max(floor, disk_transfer_time(flush_bytes));
  const Nanos done = host_->disk().occupy(now, transfer);

  if (whole_system) flush_in_flight_until_ = std::max(flush_in_flight_until_, done);

  // sync(2) waits for completion; the wait is IO wait.
  res.block_until = done;
  res.block_io = true;
  res.ret = 0;
  return res;
}

SysResult SimKernel::sys_size_change(Process& proc, const SysReq& req,
                                     bool fallocate) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.fallocate_sys);
  res.user_ns = 600;
  FileDesc* fd = proc.fd(static_cast<int>(req.val(0)));
  if (!fd) {
    res.err = EBADF_;
    res.ret = -EBADF_;
    return res;
  }
  if (fd->kind != FdKind::kFile || !fd->inode) {
    res.err = EINVAL_;
    res.ret = -EINVAL_;
    return res;
  }

  std::uint64_t target = 0;
  if (fallocate) {
    const std::uint64_t offset = req.val(2);
    const std::uint64_t len = req.val(3);
    if (len == 0) {
      res.err = EINVAL_;
      res.ret = -EINVAL_;
      return res;
    }
    target = offset + len;
    if (target < offset) target = ~0ULL;  // overflow saturates
  } else {
    target = req.val(1);
  }

  const std::uint64_t limit = proc.rlimit(RLIMIT_FSIZE_);
  if (limit != kRlimInfinity && target > limit) {
    // Growing a file past RLIMIT_FSIZE delivers SIGXFSZ; the default action
    // terminates with a core dump (§4.3.2).
    deliver_fatal_signal(proc, SIGXFSZ_);
    res.fatal_signal = SIGXFSZ_;
    if (proc.host_coredumps)
      res.sys_ns += jitter(config_.costs.coredump_caller_sys);
    res.err = EFBIG_;
    res.ret = -EFBIG_;
    return res;
  }
  fd->inode->size = std::max(fd->inode->size, target);
  return res;
}

SysResult SimKernel::sys_mmap(Process& proc, const SysReq& req) {
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.mmap_sys);
  res.user_ns = 600;
  const std::uint64_t len = req.val(1);
  if (len == 0) {
    res.err = EINVAL_;
    res.ret = -EINVAL_;
    return res;
  }
  if (len > (1ULL << 46)) {
    res.err = ENOMEM_;
    res.ret = -ENOMEM_;
    return res;
  }
  if (proc.group() &&
      !proc.group()->charge_memory(static_cast<std::int64_t>(len))) {
    res.err = ENOMEM_;
    res.ret = -ENOMEM_;
    return res;
  }
  proc.mapped_bytes += len;
  res.ret = 0x7f0000000000;
  return res;
}

SysResult SimKernel::sys_xattr(Process& proc, const SysReq& req, bool set) {
  (void)proc;
  SysResult res;
  res.sys_ns = jitter(config_.costs.entry) + jitter(config_.costs.xattr_sys);
  res.user_ns = 600;
  LookupResult lr = vfs_.lookup(req.str(0));
  res.sys_ns += lr.follows * config_.costs.symlink_step;
  if (!lr.inode) {
    res.err = lr.error;
    res.ret = -lr.error;
    return res;
  }
  const std::string& name = req.str(1);
  if (set) {
    lr.inode->xattrs[name] = req.str(2);
    res.ret = 0;
    return res;
  }
  auto it = lr.inode->xattrs.find(name);
  if (it == lr.inode->xattrs.end()) {
    res.err = ENODATA_;
    res.ret = -ENODATA_;
    return res;
  }
  const std::uint64_t size = req.val(3);
  if (size == 0) {
    res.ret = static_cast<std::int64_t>(it->second.size());
    return res;
  }
  if (size < it->second.size()) {
    res.err = ERANGE_;
    res.ret = -ERANGE_;
    return res;
  }
  res.ret = static_cast<std::int64_t>(it->second.size());
  return res;
}

Nanos SimKernel::disk_transfer_time(std::uint64_t bytes) const {
  return host_->disk().transfer_time(bytes);
}

}  // namespace torpedo::kernel
