#include "kernel/vfs.h"

#include <algorithm>

#include "kernel/errno.h"
#include "util/strings.h"

namespace torpedo::kernel {

namespace {
constexpr int kMaxSymlinkFollows = 40;
}

std::string normalize_path(std::string_view path) {
  std::string out;
  out.reserve(path.size());
  bool prev_slash = false;
  for (char c : path) {
    if (c == '/') {
      if (prev_slash) continue;
      prev_slash = true;
    } else {
      prev_slash = false;
    }
    out += c;
  }
  if (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

Vfs::Vfs() {
  // Files the Moonshine-style seeds and the paper's appendix programs touch.
  put("/lib/x86_64-linux-gnu/libc.so.6", InodeKind::kRegular)->size = 2029592;
  put("/proc/sys/fs/mqueue/msg_max", InodeKind::kProcFile)->contents = "10\n";
  put("/proc/cpuinfo", InodeKind::kProcFile);
  put("/proc/stat", InodeKind::kProcFile);
  put("/dev/null", InodeKind::kCharDev);
  put("/dev/zero", InodeKind::kCharDev);
  put("/etc/passwd", InodeKind::kRegular)->size = 1704;
  put("mntpoint", InodeKind::kDirectory);
  put("testdir_1", InodeKind::kDirectory);
  // The classic self-loop the Moonshine readlink seeds probe.
  add_symlink("test_eloop", "test_eloop");
}

Inode* Vfs::put(std::string path, InodeKind kind) {
  auto inode = std::make_unique<Inode>();
  inode->kind = kind;
  inode->ino = next_ino_++;
  Inode* raw = inode.get();
  files_[normalize_path(path)] = std::move(inode);
  // Structural change (possibly freeing an overwritten inode): stale cached
  // resolutions must not survive it.
  ++generation_;
  return raw;
}

LookupResult Vfs::lookup(std::string_view path) {
  if (!cache_enabled_) return resolve(path);
  if (cache_generation_ != generation_) {
    lookup_cache_.clear();
    cache_generation_ = generation_;
  }
  if (auto it = lookup_cache_.find(path); it != lookup_cache_.end())
    return it->second;
  const LookupResult result = resolve(path);
  lookup_cache_.emplace(std::string(path), result);
  return result;
}

LookupResult Vfs::resolve(std::string_view path) const {
  std::string current = normalize_path(path);
  if (current.empty()) return {nullptr, ENOENT_, 0};

  // Walk components, counting symlink traversals. A path that *contains* a
  // looping symlink as a directory component (e.g. "test_eloop/test_eloop/
  // ...") burns one follow per appearance and hits ELOOP at 40.
  int follows = 0;
  for (int pass = 0; pass < kMaxSymlinkFollows + 1; ++pass) {
    auto it = files_.find(current);
    if (it != files_.end()) {
      if (it->second->kind == InodeKind::kSymlink) {
        if (++follows > kMaxSymlinkFollows) return {nullptr, ELOOP_, follows};
        current = normalize_path(it->second->symlink_target);
        continue;
      }
      return {it->second.get(), 0, follows};
    }
    // Check whether some prefix component is a symlink (self-loop case).
    std::size_t slash = current.find('/');
    bool replaced = false;
    while (slash != std::string::npos) {
      std::string prefix = current.substr(0, slash);
      auto pit = files_.find(prefix);
      if (pit != files_.end() && pit->second->kind == InodeKind::kSymlink) {
        if (++follows > kMaxSymlinkFollows) return {nullptr, ELOOP_, follows};
        current = normalize_path(pit->second->symlink_target +
                                 current.substr(slash));
        replaced = true;
        break;
      }
      slash = current.find('/', slash + 1);
    }
    if (!replaced) return {nullptr, ENOENT_, follows};
  }
  return {nullptr, ELOOP_, kMaxSymlinkFollows};
}

int Vfs::create(std::string_view path, std::uint32_t mode, Inode** out) {
  std::string norm = normalize_path(path);
  if (norm.empty()) return ENOENT_;
  auto it = files_.find(norm);
  if (it != files_.end()) {
    if (it->second->kind == InodeKind::kDirectory) return EISDIR_;
    it->second->size = 0;  // O_TRUNC semantics of creat()
    if (out) *out = it->second.get();
    return 0;
  }
  Inode* inode = put(norm, InodeKind::kRegular);
  inode->mode = mode;
  if (out) *out = inode;
  return 0;
}

int Vfs::remove(std::string_view path) {
  auto it = files_.find(normalize_path(path));
  if (it == files_.end()) return ENOENT_;
  if (it->second->kind == InodeKind::kDirectory) return EISDIR_;
  files_.erase(it);
  ++generation_;
  return 0;
}

void Vfs::add_symlink(std::string_view path, std::string_view target) {
  Inode* inode = put(normalize_path(path), InodeKind::kSymlink);
  inode->symlink_target = std::string(target);
}

int Vfs::mkdir(std::string_view path, std::uint32_t mode) {
  std::string norm = normalize_path(path);
  if (files_.contains(norm)) return EEXIST_;
  Inode* inode = put(norm, InodeKind::kDirectory);
  inode->mode = mode;
  return 0;
}

}  // namespace torpedo::kernel
