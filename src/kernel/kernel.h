// SimKernel: the syscall surface of the simulated host.
//
// Translates each system call into (a) simulated CPU/blocking costs for the
// caller, (b) state changes in the VFS / fd tables / cgroups, and (c) the
// side effects that make workloads adversarial: writeback deferral on
// sync(2), coredumps through the usermodehelper API on fatal signals,
// *uncached* modprobe execs on unsupported socket families, and audit
// records fanned out to the audit daemons.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/process.h"
#include "kernel/services.h"
#include "kernel/trace.h"
#include "kernel/vfs.h"
#include "sim/host.h"
#include "util/time.h"

namespace torpedo::kernel {

// Cost model (all values are means; the kernel applies deterministic +/-15%
// jitter from its own RNG stream).
struct KernelCosts {
  Nanos entry = 3'000;                    // syscall entry/exit
  Nanos trivial = 1'500;                    // getpid & friends
  Nanos open_sys = 18'000;
  double open_block_chance = 0.05;        // cold dentry/readahead stall
  Nanos open_block = 50 * kMicrosecond;
  Nanos rw_sys = 14'000;
  Nanos rw_per_kb = 350;
  Nanos mmap_sys = 22'000;
  Nanos socket_sys = 26'000;
  Nanos xattr_sys = 16'000;
  Nanos path_sys = 14'000;                 // stat/chmod/access/readlink base
  Nanos symlink_step = 3'500;             // per symlink traversal (ELOOP walk)

  // sync(2): caller-side superblock walk + device flush occupancy.
  Nanos sync_caller_sys = 350 * kMicrosecond;
  Nanos sync_floor = 1'200 * kMicrosecond;  // flush floor even with no dirty
  Nanos writeback_sys_per_mb = 600 * kMicrosecond;

  // usermodehelper children (root cgroup, unconstrained cores).
  Nanos modprobe_user = 1'300 * kMicrosecond;
  Nanos modprobe_sys = 900 * kMicrosecond;
  Nanos coredump_caller_sys = 550 * kMicrosecond;  // dump write in task ctx
  Nanos coredump_helper_sys = 400 * kMicrosecond;
  Nanos coredump_helper_user = 2'600 * kMicrosecond;
  std::uint64_t coredump_bytes = 2 << 20;

  Nanos fallocate_sys = 28'000;
  Nanos nanosleep_cap = 100 * kMillisecond;
  Nanos sendto_sys = 20'000;
  Nanos net_softirq = 12'000;             // rx processing per packet
};

struct KernelConfig {
  sim::HostConfig host;
  KernelCosts costs;
  ServiceConfig services;
  bool install_services = true;
  // Snapshot-exec fast path: cache VFS path resolutions, invalidated by the
  // namespace generation counter. Resolution results are bit-exact and the
  // lookup consumes no RNG, so enabling it cannot change simulated behavior.
  bool path_lookup_cache = false;
  // Snapshot-exec fast path: restore process fd tables with an epoch bump
  // (O(dirty)) instead of the cold-boot teardown-and-reallocate. Descriptor
  // numbering and limits are identical either way.
  bool epoch_fd_restore = true;
};

// One argument of a syscall request: a number or a string (paths, buffers).
struct SysArg {
  std::uint64_t val = 0;
  std::string str;
  bool is_str = false;

  static SysArg num(std::uint64_t v) {
    SysArg a;
    a.val = v;
    return a;
  }
  static SysArg text(std::string s) {
    return {.val = 0, .str = std::move(s), .is_str = true};
  }
};

struct SysReq {
  int nr = 0;
  std::vector<SysArg> args;

  std::uint64_t val(std::size_t i) const {
    return i < args.size() ? args[i].val : 0;
  }
  const std::string& str(std::size_t i) const {
    static const std::string kEmpty;
    return i < args.size() && args[i].is_str ? args[i].str : kEmpty;
  }
};

struct SysResult {
  std::int64_t ret = 0;   // raw return value (fd, count, ...); 0 on error
  int err = 0;            // errno; 0 == success
  Nanos user_ns = 0;      // caller user time (libc wrapper side)
  Nanos sys_ns = 0;       // caller kernel time (charged to its cgroup)
  Nanos block_until = 0;  // absolute wall deadline; 0 == no block
  bool block_io = false;  // block counts as iowait
  // Expected block duration for throughput accounting when block_until is a
  // conservative deadline with an early wake (request_module). -1 == use
  // block_until - now.
  Nanos block_hint = -1;
  int fatal_signal = 0;   // nonzero: caller was killed by this signal
};

// Selftest fault-injection tap, consulted at the top of do_syscall. A
// non-zero return fails the call with that errno before any kernel state
// changes — the syscall-error-injection knob of the selftest harness.
class SyscallFaultHook {
 public:
  virtual ~SyscallFaultHook() = default;
  virtual int inject(const Process& proc, const SysReq& req) = 0;
};

class SimKernel {
 public:
  explicit SimKernel(KernelConfig config = {});
  ~SimKernel();

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  sim::Host& host() { return *host_; }
  const sim::Host& host() const { return *host_; }
  Vfs& vfs() { return vfs_; }
  KernelTrace& trace() { return trace_; }
  SystemServices& services() { return *services_; }
  const KernelCosts& costs() const { return config_.costs; }

  // --- processes -----------------------------------------------------------

  Process& create_process(std::string name, cgroup::Cgroup* group,
                          sim::TaskId task);
  void destroy_process(Process& proc);
  // Close fds, release memory charges, clear signal state (between program
  // iterations).
  void reset_process(Process& proc);
  Process* find_process(std::uint64_t pid);

  // --- the syscall interface ------------------------------------------------

  SysResult do_syscall(Process& proc, const SysReq& req);

  // --- paths shared with the runtime layer ----------------------------------

  // Fatal-signal delivery: records the coredump trace and, when the signal's
  // default action dumps core, spawns the core_pattern usermodehelper.
  void deliver_fatal_signal(Process& proc, int sig);

  // request_module(): spawns a modprobe helper in the root cgroup and
  // returns; the caller should block until `wake_pid`'s task is woken (the
  // helper's exit wakes it). No negative caching — each call re-execs.
  void request_module(Process& proc, const std::string& module);

  std::uint64_t modprobe_execs() const { return modprobe_execs_; }
  std::uint64_t coredumps() const { return coredumps_; }

  // Selftest fault tap. Caller keeps ownership; nullptr removes the hook.
  void set_fault_hook(SyscallFaultHook* hook) { fault_hook_ = hook; }

 private:
  Nanos jitter(Nanos base);
  Nanos disk_transfer_time(std::uint64_t bytes) const;

  // --- table-driven dispatch -------------------------------------------------
  //
  // do_syscall runs the shared preamble (alarm delivery, fault injection,
  // the entry-cost jitter draw) into a SyscallCtx, then indexes the handler
  // table by syscall nr. Handlers mutate ctx.res in place. The RNG draw
  // order is identical to the old switch: trivial handlers overwrite sys_ns
  // with their own jitter(trivial) draw, and the sys_* helpers below still
  // build their own SysResult with fresh draws (the preamble's entry draw is
  // consumed either way).
  struct SyscallCtx {
    Process& proc;
    const SysReq& req;
    Nanos now;
    SysResult res;

    SysResult fail(int err) {
      res.err = err;
      res.ret = -err;
      return res;
    }
    SysResult ok(std::int64_t ret = 0) {
      res.err = 0;
      res.ret = ret;
      return res;
    }
  };
  using SyscallHandler = SysResult (SimKernel::*)(SyscallCtx&);
  static constexpr int kMaxSysno = 335;  // kRseq + 1; table is dense
  static const std::array<SyscallHandler, kMaxSysno>& syscall_table();

  // Fatal-signal path shared by handlers (the old `fatal` lambda).
  SysResult syscall_fatal(SyscallCtx& ctx, int sig);
  // Blocking deadline clamped to the process deadline / nanosleep cap.
  Nanos syscall_deadline(const SyscallCtx& ctx, Nanos want) const;
  // install_fd + ok/fail plumbing shared by the fd-creating handlers.
  SysResult install_new_fd(SyscallCtx& ctx, FdKind kind);

  SysResult h_getpid(SyscallCtx& ctx);
  SysResult h_getuid(SyscallCtx& ctx);
  SysResult h_trivial(SyscallCtx& ctx);
  SysResult h_umask(SyscallCtx& ctx);
  SysResult h_open(SyscallCtx& ctx);
  SysResult h_creat(SyscallCtx& ctx);
  SysResult h_close(SyscallCtx& ctx);
  SysResult h_dup(SyscallCtx& ctx);
  SysResult h_read(SyscallCtx& ctx);
  SysResult h_write(SyscallCtx& ctx);
  SysResult h_lseek(SyscallCtx& ctx);
  SysResult h_path_stat(SyscallCtx& ctx);
  SysResult h_fstat(SyscallCtx& ctx);
  SysResult h_readlink(SyscallCtx& ctx);
  SysResult h_chmod(SyscallCtx& ctx);
  SysResult h_mkdir(SyscallCtx& ctx);
  SysResult h_unlink(SyscallCtx& ctx);
  SysResult h_rename(SyscallCtx& ctx);
  SysResult h_mmap(SyscallCtx& ctx);
  SysResult h_munmap(SyscallCtx& ctx);
  SysResult h_msync(SyscallCtx& ctx);
  SysResult h_socket(SyscallCtx& ctx);
  SysResult h_socketpair(SyscallCtx& ctx);
  SysResult h_sendto(SyscallCtx& ctx);
  SysResult h_recvfrom(SyscallCtx& ctx);
  SysResult h_sockop(SyscallCtx& ctx);
  SysResult h_sync(SyscallCtx& ctx);
  SysResult h_syncfs(SyscallCtx& ctx);
  SysResult h_fsync(SyscallCtx& ctx);
  SysResult h_fallocate(SyscallCtx& ctx);
  SysResult h_ftruncate(SyscallCtx& ctx);
  SysResult h_rt_sigreturn(SyscallCtx& ctx);
  SysResult h_rseq(SyscallCtx& ctx);
  SysResult h_kill(SyscallCtx& ctx);
  SysResult h_exit(SyscallCtx& ctx);
  SysResult h_alarm(SyscallCtx& ctx);
  SysResult h_pause(SyscallCtx& ctx);
  SysResult h_nanosleep(SyscallCtx& ctx);
  SysResult h_poll(SyscallCtx& ctx);
  SysResult h_getrlimit(SyscallCtx& ctx);
  SysResult h_setrlimit(SyscallCtx& ctx);
  SysResult h_setuid(SyscallCtx& ctx);
  SysResult h_setxattr(SyscallCtx& ctx);
  SysResult h_getxattr(SyscallCtx& ctx);
  SysResult h_ioctl(SyscallCtx& ctx);
  SysResult h_fdcheck_ok(SyscallCtx& ctx);
  SysResult h_inotify_init(SyscallCtx& ctx);
  SysResult h_inotify_add_watch(SyscallCtx& ctx);
  SysResult h_pipe(SyscallCtx& ctx);
  SysResult h_epoll_create1(SyscallCtx& ctx);
  SysResult h_eventfd2(SyscallCtx& ctx);
  SysResult h_memfd_create(SyscallCtx& ctx);
  SysResult h_mq_open(SyscallCtx& ctx);
  SysResult h_kcmp(SyscallCtx& ctx);
  SysResult h_enosys(SyscallCtx& ctx);

  SysResult sys_file_open(Process& proc, const SysReq& req, bool creat);
  SysResult sys_read_write(Process& proc, const SysReq& req, bool write);
  SysResult sys_socket(Process& proc, const SysReq& req, bool pair);
  SysResult sys_sendto(Process& proc, const SysReq& req);
  SysResult sys_sync(Process& proc, int fd, bool whole_system);
  SysResult sys_size_change(Process& proc, const SysReq& req, bool fallocate);
  SysResult sys_mmap(Process& proc, const SysReq& req);
  SysResult sys_xattr(Process& proc, const SysReq& req, bool set);

  KernelConfig config_;
  std::unique_ptr<sim::Host> host_;
  Vfs vfs_;
  KernelTrace trace_;
  std::unique_ptr<SystemServices> services_;
  Rng cost_rng_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Process>> processes_;

  // sync(2) exclusion: writers stall while a flush is in flight.
  Nanos flush_in_flight_until_ = 0;

  std::uint64_t modprobe_execs_ = 0;
  std::uint64_t coredumps_ = 0;

  SyscallFaultHook* fault_hook_ = nullptr;
};

}  // namespace torpedo::kernel
