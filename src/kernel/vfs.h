// In-memory virtual filesystem.
//
// Implements exactly the surface the fuzzed syscalls touch: path lookup with
// symlink-loop detection, regular files with sizes and extended attributes,
// a handful of preloaded pseudo/system files, and a dirty-page ledger feeding
// the block device writeback path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace torpedo::kernel {

enum class InodeKind { kRegular, kDirectory, kSymlink, kCharDev, kProcFile };

struct Inode {
  InodeKind kind = InodeKind::kRegular;
  std::uint64_t ino = 0;
  std::uint64_t size = 0;
  std::uint32_t mode = 0644;
  std::string symlink_target;          // kSymlink
  std::string contents;                // small files / proc files
  std::map<std::string, std::string> xattrs;
};

// Result of path resolution.
struct LookupResult {
  Inode* inode = nullptr;  // nullptr => error
  int error = 0;           // errno when inode == nullptr
  int follows = 0;         // symlink traversals performed (costed per step)
};

class Vfs {
 public:
  Vfs();

  // Resolve a path; applies the kernel's 40-link symlink budget so paths of
  // chained "test_eloop" links return ELOOP like the Moonshine seeds expect.
  LookupResult lookup(std::string_view path);

  // Snapshot-exec dirty tracking for the inode table: every structural
  // mutation (create/remove/overwrite) bumps the generation. The optional
  // lookup cache memoizes resolutions per raw path string and is dropped
  // wholesale whenever the generation moves, so a cached result is always
  // exactly what a cold walk would produce (resolution consumes no RNG).
  std::uint64_t generation() const { return generation_; }
  void set_lookup_cache(bool enabled) {
    cache_enabled_ = enabled;
    if (!enabled) lookup_cache_.clear();
  }

  // Create (or truncate) a regular file. Returns errno.
  int create(std::string_view path, std::uint32_t mode, Inode** out);

  int remove(std::string_view path);

  // Make a symlink chain <base>/<name> -> <base> used by ELOOP seeds.
  void add_symlink(std::string_view path, std::string_view target);

  // Directory creation (intermediate components are created implicitly by
  // create(); this is for explicit mkdir).
  int mkdir(std::string_view path, std::uint32_t mode);

  std::size_t file_count() const { return files_.size(); }

  // Dirty-page ledger (buffered writes awaiting writeback). Capped at the
  // kernel's dirty ratio: beyond it, background writeback keeps pace and the
  // foreground flush backlog stops growing.
  static constexpr std::uint64_t kMaxDirtyBytes = 128ULL << 20;
  void dirty(std::uint64_t bytes) {
    dirty_bytes_ = std::min(dirty_bytes_ + bytes, kMaxDirtyBytes);
  }
  std::uint64_t dirty_bytes() const { return dirty_bytes_; }
  std::uint64_t take_dirty() {
    std::uint64_t d = dirty_bytes_;
    dirty_bytes_ = 0;
    return d;
  }
  // Partial flush (fsync of one file): removes up to `max_bytes` from the
  // dirty ledger and returns the amount flushed.
  std::uint64_t consume_dirty(std::uint64_t max_bytes) {
    std::uint64_t d = std::min(dirty_bytes_, max_bytes);
    dirty_bytes_ -= d;
    return d;
  }

 private:
  Inode* put(std::string path, InodeKind kind);
  LookupResult resolve(std::string_view path) const;

  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::map<std::string, std::unique_ptr<Inode>, std::less<>> files_;
  std::uint64_t next_ino_ = 1;
  std::uint64_t dirty_bytes_ = 0;

  std::uint64_t generation_ = 0;
  bool cache_enabled_ = false;
  std::uint64_t cache_generation_ = 0;
  std::unordered_map<std::string, LookupResult, TransparentHash,
                     std::equal_to<>>
      lookup_cache_;
};

// Normalizes a path: strips duplicate slashes and a trailing slash. Paths in
// the program IR are relative to the container root; we treat them as a flat
// namespace keyed by the normalized string.
std::string normalize_path(std::string_view path);

}  // namespace torpedo::kernel
