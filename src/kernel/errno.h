// Errno values (Linux x86-64 numbering) used by the simulated kernel.
//
// The numeric values matter: the paper's socket(2) finding keys on errno
// {93, 94, 97}, and the fallback coverage signal mixes errno into the hash.
#pragma once

#include <string_view>

namespace torpedo::kernel {

enum Errno : int {
  kOk = 0,
  EPERM_ = 1,
  ENOENT_ = 2,
  ESRCH_ = 3,
  EINTR_ = 4,
  EIO_ = 5,
  EBADF_ = 9,
  EAGAIN_ = 11,
  ENOMEM_ = 12,
  EACCES_ = 13,
  EFAULT_ = 14,
  EBUSY_ = 16,
  EEXIST_ = 17,
  ENOTDIR_ = 20,
  EISDIR_ = 21,
  EINVAL_ = 22,
  ENFILE_ = 23,
  EMFILE_ = 24,
  ENOTTY_ = 25,
  EFBIG_ = 27,
  ENOSPC_ = 28,
  ESPIPE_ = 29,
  ERANGE_ = 34,
  ENAMETOOLONG_ = 36,
  ENOSYS_ = 38,
  ELOOP_ = 40,
  ENODATA_ = 61,
  EPROTONOSUPPORT_ = 93,
  ESOCKTNOSUPPORT_ = 94,
  EOPNOTSUPP_ = 95,
  EAFNOSUPPORT_ = 97,
  EADDRINUSE_ = 98,
  ENOTCONN_ = 107,
  ETIMEDOUT_ = 110,
};

constexpr std::string_view errno_name(int err) {
  switch (err) {
    case kOk: return "OK";
    case EPERM_: return "EPERM";
    case ENOENT_: return "ENOENT";
    case ESRCH_: return "ESRCH";
    case EINTR_: return "EINTR";
    case EIO_: return "EIO";
    case EBADF_: return "EBADF";
    case EAGAIN_: return "EAGAIN";
    case ENOMEM_: return "ENOMEM";
    case EACCES_: return "EACCES";
    case EFAULT_: return "EFAULT";
    case EBUSY_: return "EBUSY";
    case EEXIST_: return "EEXIST";
    case ENOTDIR_: return "ENOTDIR";
    case EISDIR_: return "EISDIR";
    case EINVAL_: return "EINVAL";
    case ENFILE_: return "ENFILE";
    case EMFILE_: return "EMFILE";
    case ENOTTY_: return "ENOTTY";
    case EFBIG_: return "EFBIG";
    case ENOSPC_: return "ENOSPC";
    case ESPIPE_: return "ESPIPE";
    case ERANGE_: return "ERANGE";
    case ENAMETOOLONG_: return "ENAMETOOLONG";
    case ENOSYS_: return "ENOSYS";
    case ELOOP_: return "ELOOP";
    case ENODATA_: return "ENODATA";
    case EPROTONOSUPPORT_: return "EPROTONOSUPPORT";
    case ESOCKTNOSUPPORT_: return "ESOCKTNOSUPPORT";
    case EOPNOTSUPP_: return "EOPNOTSUPP";
    case EAFNOSUPPORT_: return "EAFNOSUPPORT";
    case EADDRINUSE_: return "EADDRINUSE";
    case ENOTCONN_: return "ENOTCONN";
    case ETIMEDOUT_: return "ETIMEDOUT";
    default: return "E?";
  }
}

}  // namespace torpedo::kernel
