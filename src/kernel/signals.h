// Signal numbers and default dispositions.
//
// The paper's fallocate(2) finding (§4.3.2) generalizes to *every* signal
// whose default action is terminate-with-coredump: SIGABRT/SIGIOT, SIGBUS,
// SIGFPE, SIGILL, SIGSEGV, SIGQUIT, SIGSYS/SIGUNUSED, SIGTRAP, SIGXCPU and
// SIGXFSZ. That exact set is encoded here and checked by tests.
#pragma once

#include <string_view>

namespace torpedo::kernel {

enum Signal : int {
  SIGHUP_ = 1,
  SIGINT_ = 2,
  SIGQUIT_ = 3,
  SIGILL_ = 4,
  SIGTRAP_ = 5,
  SIGABRT_ = 6,  // == SIGIOT
  SIGBUS_ = 7,
  SIGFPE_ = 8,
  SIGKILL_ = 9,
  SIGUSR1_ = 10,
  SIGSEGV_ = 11,
  SIGUSR2_ = 12,
  SIGPIPE_ = 13,
  SIGALRM_ = 14,
  SIGTERM_ = 15,
  SIGCHLD_ = 17,
  SIGCONT_ = 18,
  SIGSTOP_ = 19,
  SIGXCPU_ = 24,
  SIGXFSZ_ = 25,
  SIGSYS_ = 31,  // == SIGUNUSED
};

// Default action is terminate + core dump.
constexpr bool signal_dumps_core(int sig) {
  switch (sig) {
    case SIGABRT_:
    case SIGBUS_:
    case SIGFPE_:
    case SIGILL_:
    case SIGSEGV_:
    case SIGQUIT_:
    case SIGSYS_:
    case SIGTRAP_:
    case SIGXCPU_:
    case SIGXFSZ_:
      return true;
    default:
      return false;
  }
}

// Default action terminates the process (with or without a dump).
constexpr bool signal_is_fatal(int sig) {
  switch (sig) {
    case SIGCHLD_:
    case SIGCONT_:
    case SIGSTOP_:
    case SIGUSR1_:
    case SIGUSR2_:
      return false;
    default:
      return sig >= 1 && sig <= 31;
  }
}

constexpr std::string_view signal_name(int sig) {
  switch (sig) {
    case SIGHUP_: return "SIGHUP";
    case SIGINT_: return "SIGINT";
    case SIGQUIT_: return "SIGQUIT";
    case SIGILL_: return "SIGILL";
    case SIGTRAP_: return "SIGTRAP";
    case SIGABRT_: return "SIGABRT";
    case SIGBUS_: return "SIGBUS";
    case SIGFPE_: return "SIGFPE";
    case SIGKILL_: return "SIGKILL";
    case SIGSEGV_: return "SIGSEGV";
    case SIGPIPE_: return "SIGPIPE";
    case SIGALRM_: return "SIGALRM";
    case SIGTERM_: return "SIGTERM";
    case SIGXCPU_: return "SIGXCPU";
    case SIGXFSZ_: return "SIGXFSZ";
    case SIGSYS_: return "SIGSYS";
    default: return "SIG?";
  }
}

}  // namespace torpedo::kernel
