// Kernel-side process state: file descriptors, rlimits, signal state.
//
// One Process is bound to one simulated task. The executor resets the
// process between program iterations (syzkaller's EnableCloseFDs behaviour),
// so each iteration starts from a clean descriptor table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgroup/cgroup.h"
#include "kernel/vfs.h"
#include "sim/task.h"
#include "util/time.h"

namespace torpedo::kernel {

enum class FdKind {
  kFile,
  kSocket,
  kPipe,
  kInotify,
  kEpoll,
  kEventfd,
  kMemfd,
  kMqueue,
};

struct FileDesc {
  FdKind kind = FdKind::kFile;
  Inode* inode = nullptr;  // kFile only; VFS owns it
  std::uint64_t offset = 0;
  std::uint64_t flags = 0;
  // kSocket:
  int family = 0;
  int type = 0;
  int protocol = 0;
};

enum Rlimit : int {
  RLIMIT_CPU_ = 0,
  RLIMIT_FSIZE_ = 1,
  RLIMIT_DATA_ = 2,
  RLIMIT_NOFILE_ = 7,
  kNumRlimits = 16,
};

inline constexpr std::uint64_t kRlimInfinity = ~0ULL;

class Process {
 public:
  Process(std::uint64_t pid, std::string name, cgroup::Cgroup* group,
          sim::TaskId task)
      : pid_(pid), name_(std::move(name)), cgroup_(group), task_(task) {
    rlimits_[RLIMIT_FSIZE_] = 1ULL << 30;  // container default: 1 GiB
    rlimits_[RLIMIT_NOFILE_] = 1024;
  }

  std::uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  cgroup::Cgroup* group() const { return cgroup_; }
  sim::TaskId task() const { return task_; }

  // --- descriptor table ---
  //
  // Epoch-tagged slab: slot n is live iff its epoch matches the table's.
  // With epoch restore on (snapshot-exec), close_all_fds() — the
  // per-iteration restore the executor runs millions of times — is a single
  // epoch bump, the O(dirty) restore of the process table. With it off, the
  // table is torn down and reallocated like a freshly booted process. fd
  // numbering (lowest free fd >= 3), the EMFILE limit, and every lookup
  // behave identically either way.
  int install_fd(FileDesc desc);  // lowest free fd >= 3, or -EMFILE
  FileDesc* fd(int n);
  int close_fd(int n);  // errno
  void set_epoch_fd_restore(bool on) { epoch_fd_restore_ = on; }
  void close_all_fds() {
    if (epoch_fd_restore_) {
      ++fd_epoch_;
    } else {
      fd_slots_.clear();
      fd_slots_.shrink_to_fit();
      fd_epoch_ = 1;
    }
    open_fds_ = 0;
    fd_scan_from_ = 3;
  }
  std::size_t open_fd_count() const { return open_fds_; }

  // --- rlimits ---
  std::uint64_t rlimit(int which) const {
    return (which >= 0 && which < kNumRlimits) ? rlimits_[which]
                                               : kRlimInfinity;
  }
  void set_rlimit(int which, std::uint64_t value) {
    if (which >= 0 && which < kNumRlimits) rlimits_[which] = value;
  }

  // --- signals / lifetime ---
  bool in_signal_context = false;  // true while running a handler
  int pending_fatal = 0;           // signal that killed the process
  Nanos alarm_at = 0;              // pending SIGALRM deadline; 0 = unset
  std::uint64_t umask = 022;
  std::uint64_t uid = 0;

  // --- memory ---
  std::uint64_t mapped_bytes = 0;

  // Deadline for blocking syscalls (set by the executor to the round stop
  // time so a blocked program can't outlive its measurement window).
  Nanos block_deadline = 0;

  // Runtime-controlled behaviour. Native runtimes (runC/crun) leave both
  // true; sandboxed/virtualized runtimes (gVisor/Kata) service these paths
  // inside the sandbox, so the host-side effects never happen.
  bool host_coredumps = true;       // fatal signals reach do_coredump()
  bool modprobe_on_missing = true;  // socket() may exec /sbin/modprobe
  bool host_audit = true;           // privileged calls emit host audit records

 private:
  std::uint64_t pid_;
  std::string name_;
  cgroup::Cgroup* cgroup_;
  sim::TaskId task_;
  struct FdSlot {
    FileDesc desc;
    std::uint64_t epoch = 0;  // live iff == fd_epoch_ (which starts at 1)
  };
  std::vector<FdSlot> fd_slots_;
  std::uint64_t fd_epoch_ = 1;
  std::size_t open_fds_ = 0;
  int fd_scan_from_ = 3;  // no live fd below this is free
  bool epoch_fd_restore_ = true;
  std::uint64_t rlimits_[kNumRlimits] = {
      kRlimInfinity, kRlimInfinity, kRlimInfinity, kRlimInfinity,
      kRlimInfinity, kRlimInfinity, kRlimInfinity, kRlimInfinity,
      kRlimInfinity, kRlimInfinity, kRlimInfinity, kRlimInfinity,
      kRlimInfinity, kRlimInfinity, kRlimInfinity, kRlimInfinity};
};

}  // namespace torpedo::kernel
