// /proc/stat rendering and parsing.
//
// The Torpedo observer collects per-core utilization "by sampling the
// contents of /proc/stat at two different intervals and computing the
// difference" (Appendix A). To exercise the same code path, the simulated
// kernel renders a textual /proc/stat in the real format (jiffies, USER_HZ =
// 100) and the observer parses it back.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/core_times.h"
#include "sim/host.h"

namespace torpedo::kernel {

// One parsed "cpuN ..." row, in jiffies.
struct ProcStatRow {
  int core = -1;  // -1 == the aggregate "cpu" row
  std::array<std::int64_t, sim::kNumCpuCategories> jiffies{};

  std::int64_t total() const {
    std::int64_t t = 0;
    for (auto v : jiffies) t += v;
    return t;
  }
  std::int64_t busy() const {
    return total() - jiffies[static_cast<int>(sim::CpuCategory::kIdle)] -
           jiffies[static_cast<int>(sim::CpuCategory::kIoWait)];
  }
};

struct ProcStat {
  ProcStatRow aggregate;
  std::vector<ProcStatRow> cores;
};

// Renders the host's counters as /proc/stat text.
std::string render_proc_stat(const sim::Host& host);

// Parses /proc/stat text; nullopt on malformed input.
std::optional<ProcStat> parse_proc_stat(const std::string& text);

}  // namespace torpedo::kernel
