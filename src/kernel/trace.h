// ftrace-style kernel event trace.
//
// The paper's confirmation workflow (§4.1.4) runs flagged programs under
// `trace-cmd` and searches the kernel function graph for the deferral
// patterns of Gao et al. This trace is our equivalent: the kernel records one
// event per deferral-class interaction, and the Torpedo cause classifier
// queries a time window for them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace torpedo::kernel {

enum class TraceKind : int {
  kIoFlush,          // sync-family: writeback deferred to a kworker
  kCoredump,         // fatal signal entered do_coredump
  kUsermodeHelper,   // call_usermodehelper spawned a root-cgroup child
  kModprobe,         // request_module executed /sbin/modprobe
  kAudit,            // audit record emitted to kauditd/journald
  kLdiscFlush,       // TTY line-discipline flush via workqueue (softirq)
  kNetSoftirq,       // packet processing in softirq context
  kOomKill,          // memory controller killed a task
};

constexpr std::string_view trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kIoFlush: return "io_flush";
    case TraceKind::kCoredump: return "coredump";
    case TraceKind::kUsermodeHelper: return "usermodehelper";
    case TraceKind::kModprobe: return "modprobe";
    case TraceKind::kAudit: return "audit";
    case TraceKind::kLdiscFlush: return "ldisc_flush";
    case TraceKind::kNetSoftirq: return "net_softirq";
    case TraceKind::kOomKill: return "oom_kill";
  }
  return "?";
}

struct TraceEvent {
  Nanos time = 0;
  TraceKind kind = TraceKind::kIoFlush;
  std::uint64_t pid = 0;      // originating process (0 == kernel)
  std::string detail;
};

class KernelTrace {
 public:
  explicit KernelTrace(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  void record(TraceEvent event) {
    // window()/count() binary-search on time, so the deque must stay sorted.
    // Producers stamp with the monotonic host clock; a stale stamp (caller
    // cached `now` across a blocking step) is clamped rather than allowed to
    // break the ordering invariant.
    if (!events_.empty() && event.time < events_.back().time)
      event.time = events_.back().time;
    if (events_.size() == capacity_) events_.pop_front();
    events_.push_back(std::move(event));
  }

  // All events with time in [from, to). Events arrive in time order (the
  // host clock is monotonic), so both window edges are binary searches —
  // queries stay O(log n + matches) even against a full 2^20-event ring.
  std::vector<TraceEvent> window(Nanos from, Nanos to) const {
    auto [lo, hi] = window_range(from, to);
    return std::vector<TraceEvent>(lo, hi);
  }

  // Count of a given kind in [from, to).
  std::size_t count(TraceKind kind, Nanos from, Nanos to) const {
    auto [lo, hi] = window_range(from, to);
    std::size_t n = 0;
    for (auto it = lo; it != hi; ++it)
      if (it->kind == kind) ++n;
    return n;
  }

  std::size_t size() const { return events_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear() { events_.clear(); }

 private:
  using Iter = std::deque<TraceEvent>::const_iterator;
  std::pair<Iter, Iter> window_range(Nanos from, Nanos to) const {
    const auto lo = std::lower_bound(
        events_.begin(), events_.end(), from,
        [](const TraceEvent& e, Nanos t) { return e.time < t; });
    const auto hi = std::lower_bound(
        lo, events_.end(), to,
        [](const TraceEvent& e, Nanos t) { return e.time < t; });
    return {lo, hi};
  }

  std::size_t capacity_;
  std::deque<TraceEvent> events_;
};

}  // namespace torpedo::kernel
