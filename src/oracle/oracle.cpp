#include "oracle/oracle.h"

#include "util/strings.h"

namespace torpedo::oracle {

std::string Violation::to_string() const {
  return format("%s on %s: %.2f (threshold %.2f)", heuristic.c_str(),
                subject.c_str(), value, threshold);
}

telemetry::JsonDict Violation::to_json() const {
  telemetry::JsonDict d;
  d.set("heuristic", heuristic)
      .set("subject", subject)
      .set("value", value)
      .set("threshold", threshold);
  return d;
}

std::string violations_to_json(const std::vector<Violation>& violations) {
  std::string out = "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i) out += ",";
    out += violations[i].to_json().to_string();
  }
  out += "]";
  return out;
}

bool is_system_process(std::string_view name) {
  return starts_with(name, "dockerd") || starts_with(name, "containerd") ||
         starts_with(name, "kworker") || starts_with(name, "kauditd") ||
         starts_with(name, "systemd-journal") ||
         starts_with(name, "ksoftirqd") || starts_with(name, "kthread");
}

// --- CpuOracle ----------------------------------------------------------------

double CpuOracle::score(const observer::Observation& obs) const {
  return obs.total_utilization();
}

std::vector<Violation> CpuOracle::flag(
    const observer::Observation& obs) const {
  std::vector<Violation> out;

  for (const observer::CoreUsage& core : obs.cores) {
    const double busy = core.percent() / 100.0;
    if (obs.is_fuzz_core(core.core)) {
      if (busy < config_.fuzz_core_min_busy) {
        out.push_back({"fuzz-core-utilization-low",
                       "cpu" + std::to_string(core.core), busy,
                       config_.fuzz_core_min_busy});
      }
    } else {
      if (core.core == obs.side_band_core) continue;  // framework side-band
      if (busy > config_.idle_core_max_busy) {
        out.push_back({"idle-core-utilization-high",
                       "cpu" + std::to_string(core.core), busy,
                       config_.idle_core_max_busy});
      }
    }
  }

  // Total: everything the containers are allowed to use plus noise headroom.
  if (!obs.cores.empty()) {
    const double cores = static_cast<double>(obs.cores.size());
    const double cap_fraction =
        (obs.configured_cpu_cap +
         config_.noise_headroom_per_core * cores) /
        cores;
    const double total = obs.total_utilization() / 100.0;
    if (total > cap_fraction) {
      out.push_back({"total-utilization-exceeds-caps", "host", total,
                     cap_fraction});
    }
  }

  for (const observer::ProcSample& proc : obs.processes) {
    if (!is_system_process(proc.name)) continue;
    if (proc.cpu_percent > config_.sysproc_max_percent) {
      out.push_back({"system-process-utilization-high", proc.name,
                     proc.cpu_percent, config_.sysproc_max_percent});
    }
  }
  return out;
}

// --- IoOracle -----------------------------------------------------------------

double IoOracle::score(const observer::Observation& obs) const {
  // Fraction of host time spent in IO wait, in percent.
  double io = 0;
  for (const observer::CoreUsage& core : obs.cores)
    io += core.iowait_fraction();
  return obs.cores.empty() ? 0 : 100.0 * io / static_cast<double>(obs.cores.size());
}

std::vector<Violation> IoOracle::flag(
    const observer::Observation& obs) const {
  std::vector<Violation> out;
  for (const observer::CoreUsage& core : obs.cores) {
    if (obs.is_fuzz_core(core.core)) continue;
    if (core.core == obs.side_band_core) continue;
    const double io = core.iowait_fraction();
    if (io > config_.nonfuzz_iowait_max) {
      out.push_back({"nonfuzz-core-iowait-high",
                     "cpu" + std::to_string(core.core), io,
                     config_.nonfuzz_iowait_max});
    }
  }

  // blkio gap: the device moved bytes nobody was charged for.
  std::uint64_t charged = 0;
  for (const observer::ContainerUsage& c : obs.containers)
    charged += c.blkio_bytes;
  const double secs =
      static_cast<double>(obs.duration()) / static_cast<double>(kSecond);
  if (secs > 0) {
    const double unattributed =
        obs.device_bytes > charged
            ? static_cast<double>(obs.device_bytes - charged) / secs
            : 0.0;
    if (unattributed > config_.unattributed_bytes_per_sec) {
      out.push_back({"unattributed-device-io", "disk", unattributed,
                     config_.unattributed_bytes_per_sec});
    }
  }
  return out;
}

// --- MemoryOracle ---------------------------------------------------------------

double MemoryOracle::score(const observer::Observation& obs) const {
  double failures = 0;
  for (const observer::ContainerUsage& c : obs.containers)
    failures += static_cast<double>(c.memory_failcnt);
  return failures;
}

std::vector<Violation> MemoryOracle::flag(
    const observer::Observation& obs) const {
  std::vector<Violation> out;
  for (const observer::ContainerUsage& c : obs.containers) {
    if (c.memory_failcnt > config_.max_failcnt) {
      out.push_back({"memory-limit-thrashing", c.cgroup_path,
                     static_cast<double>(c.memory_failcnt),
                     static_cast<double>(config_.max_failcnt)});
    }
  }
  return out;
}

}  // namespace torpedo::oracle
