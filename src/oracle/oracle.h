// The Oracle library (§3.5.1).
//
// An oracle encapsulates, for one resource class, the two operations the
// fuzzing loop needs:
//   1. score(observation)  — rank how adversarial the round looked (higher
//      is more suspicious); drives mutation decisions.
//   2. flag(observation)   — decide with confidence that one or more
//      resource isolation boundaries were violated; drives reporting.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "observer/observation.h"
#include "telemetry/json.h"

namespace torpedo::oracle {

struct Violation {
  std::string heuristic;  // which Table-4.1 row fired
  std::string subject;    // core / process / container it fired on
  double value = 0;
  double threshold = 0;

  std::string to_string() const;
  // Structured form: {"heuristic":..,"subject":..,"value":..,"threshold":..}.
  // Bundles and `torpedo report` consume this instead of re-parsing the
  // human-readable string.
  telemetry::JsonDict to_json() const;
};

// Renders a list of violations as a JSON array of to_json() objects.
std::string violations_to_json(const std::vector<Violation>& violations);

class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string_view name() const = 0;
  virtual double score(const observer::Observation& obs) const = 0;
  virtual std::vector<Violation> flag(
      const observer::Observation& obs) const = 0;
};

// --- CPU oracle (Table 4.1) --------------------------------------------------

struct CpuOracleConfig {
  // "fuzzing core CPU utilization: expect above some threshold" — a fuzzing
  // core far below this suggests the work went somewhere else.
  double fuzz_core_min_busy = 0.35;
  // "idle core CPU utilization: expect below some threshold".
  double idle_core_max_busy = 0.10;
  // "total CPU utilization: expect below some threshold": the sum of the
  // --cpus caps plus per-core noise headroom, as a fraction of the host.
  double noise_headroom_per_core = 0.075;
  // "system process CPU utilization: expect below some threshold" (percent
  // of one core, per filtered process group).
  double sysproc_max_percent = 9.0;
};

class CpuOracle : public Oracle {
 public:
  explicit CpuOracle(CpuOracleConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "cpu"; }
  // The paper: "CPU Utilization was used as the Oracle score."
  double score(const observer::Observation& obs) const override;
  std::vector<Violation> flag(
      const observer::Observation& obs) const override;

  const CpuOracleConfig& config() const { return config_; }
  CpuOracleConfig& config() { return config_; }

 private:
  CpuOracleConfig config_;
};

// --- IO oracle (future-work oracle of §5.1, implemented) ----------------------

struct IoOracleConfig {
  // IO wait on cores not used for fuzzing: expect below this fraction.
  double nonfuzz_iowait_max = 0.02;
  // Device bytes not charged to any container's blkio (the sync(2) gap):
  // expect below this many bytes per second.
  double unattributed_bytes_per_sec = 12.0 * (1 << 20);
};

class IoOracle : public Oracle {
 public:
  explicit IoOracle(IoOracleConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "io"; }
  double score(const observer::Observation& obs) const override;
  std::vector<Violation> flag(
      const observer::Observation& obs) const override;

  const IoOracleConfig& config() const { return config_; }
  IoOracleConfig& config() { return config_; }

 private:
  IoOracleConfig config_;
};

// --- memory oracle (future-work oracle of §5.1, implemented) ------------------

struct MemoryOracleConfig {
  // Limit hits per round: a workload hammering its memory limit.
  std::uint64_t max_failcnt = 50;
};

class MemoryOracle : public Oracle {
 public:
  explicit MemoryOracle(MemoryOracleConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "memory"; }
  double score(const observer::Observation& obs) const override;
  std::vector<Violation> flag(
      const observer::Observation& obs) const override;

 private:
  MemoryOracleConfig config_;
};

// System-process name filter used by the CPU oracle's fourth heuristic (the
// categories the paper's top wrapper selects: docker, kworker, kauditd,
// systemd-journal, and miscellaneous kernel threads).
bool is_system_process(std::string_view name);

}  // namespace torpedo::oracle
