// Container runtime interface.
//
// The paper distinguishes three runtime designs (§2.3.2): native (runC,
// crun), sandboxed (gVisor), and virtualized (Kata). Torpedo is runtime
// agnostic: the runtime only decides how each containerized system call is
// serviced — forwarded to the host kernel, emulated inside a sandbox, or
// rejected — and what it costs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cgroup/cgroup.h"
#include "kernel/kernel.h"
#include "util/rng.h"

namespace torpedo::runtime {

enum class RuntimeKind { kRunc, kCrun, kGvisor, kKata };

constexpr std::string_view runtime_name(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kRunc: return "runc";
    case RuntimeKind::kCrun: return "crun";
    case RuntimeKind::kGvisor: return "runsc";
    case RuntimeKind::kKata: return "kata-runtime";
  }
  return "?";
}

std::optional<RuntimeKind> runtime_from_name(std::string_view name);

// Per-call execution context the executor provides.
struct ExecContext {
  // True while the executor is in collider mode (several calls racing on
  // sibling threads) — the trigger for gVisor's second open(2) bug.
  bool collider = false;
};

// Result of servicing one syscall through the runtime.
struct ExecOutcome {
  kernel::SysResult res;
  // The runtime itself died (sentry panic / VMM abort): the container is
  // gone and must be restarted by the engine.
  bool runtime_crashed = false;
  std::string crash_message;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual RuntimeKind kind() const = 0;
  std::string_view name() const { return runtime_name(kind()); }

  // Service one system call for a containerized process. Writes into a
  // caller-owned outcome so the per-call hot path reuses one buffer instead
  // of constructing a fresh ExecOutcome (and its string) per syscall; the
  // implementation must reset runtime_crashed and fully set res, and only
  // needs to touch crash_message when it crashes.
  virtual void execute(kernel::Process& proc, const kernel::SysReq& req,
                       const ExecContext& ctx, ExecOutcome& out) = 0;

  // Container creation cost paid by the engine (runc fork+exec vs sentry
  // boot vs a full VM boot).
  virtual Nanos startup_cost() const = 0;

  // Configure a freshly created containerized process (host-effect policy).
  virtual void prepare_process(kernel::Process& proc) const {
    proc.host_coredumps = true;
    proc.modprobe_on_missing = true;
  }
};

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, kernel::SimKernel& k,
                                      std::uint64_t seed);

}  // namespace torpedo::runtime
