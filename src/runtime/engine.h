// A Docker-like container engine.
//
// TORPEDO drives containers "rather than directly interact with the Docker
// daemon over HTTP ... through a wrapper around the Docker command line
// interface" (§3.2). That interface is what Engine models: run/stop/restart
// with the Table-3.1 restrictions, translated into cgroup configuration and
// a containerized entrypoint task.
//
// The engine also reproduces the framework's own measured side effect: the
// CLI streams executor output through the TTY LDISC layer, whose flush work
// lands as softirq on a fixed host core (the persistent SOFTIRQ column the
// paper calls out on the first non-fuzzing core).
#pragma once

#include <memory>
#include <vector>

#include "kernel/kernel.h"
#include "runtime/container.h"
#include "runtime/runtime.h"

namespace torpedo::runtime {

struct EngineConfig {
  // Core that absorbs the CLI/LDISC softirq side-band. The paper's setup
  // fuzzes cores 0..2 and sees the side-band on core 3.
  int ldisc_core = 3;
  std::uint64_t seed = 0xD0C4E2ULL;
};

class Engine {
 public:
  Engine(kernel::SimKernel& kernel, EngineConfig config = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // `docker run`: creates the cgroup, pays the runtime's startup cost, and
  // spawns the containerized entrypoint with the given behaviour.
  Container& run(const ContainerSpec& spec, sim::Supplier entrypoint);

  // Runtime crash (sentry panic etc.): tears the container down and records
  // the message; callers may `restart` it afterwards.
  void mark_crashed(Container& ctr, const std::string& message);
  void restart(Container& ctr, sim::Supplier entrypoint);

  void stop(Container& ctr);
  void remove(Container& ctr);

  // `docker logs --follow` data path: raises the LDISC softirq side-band
  // and dockerd activity proportional to the streamed bytes.
  void stream_output(Container& ctr, std::uint64_t bytes);

  Runtime& runtime(RuntimeKind kind);
  kernel::SimKernel& kernel() { return kernel_; }
  const EngineConfig& config() const { return config_; }

  std::size_t live_containers() const;
  std::uint64_t crashes() const { return crashes_; }

 private:
  void spawn_entrypoint(Container& ctr, sim::Supplier entrypoint);

  kernel::SimKernel& kernel_;
  EngineConfig config_;
  cgroup::Cgroup* docker_parent_ = nullptr;
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::vector<std::unique_ptr<Container>> containers_;
  std::uint64_t next_id_ = 1;
  std::uint64_t crashes_ = 0;
};

}  // namespace torpedo::runtime
