#include "runtime/gvisor.h"

#include "kernel/errno.h"
#include "kernel/signals.h"
#include "kernel/syscalls.h"
#include "util/strings.h"

namespace torpedo::runtime {

using kernel::Sysno;

GvisorRuntime::GvisorRuntime(kernel::SimKernel& kernel, std::uint64_t seed,
                             GvisorConfig config)
    : kernel_(kernel), config_(config), rng_(seed ^ 0x67766973ULL) {
  // The sentry's compatibility table (a subset of the host surface; the
  // paper notes "not all applications are supported"). Anything absent
  // returns ENOSYS from the sentry without touching the host.
  supported_ = {
      Sysno::kRead,        Sysno::kWrite,      Sysno::kOpen,
      Sysno::kClose,       Sysno::kStat,       Sysno::kFstat,
      Sysno::kLseek,       Sysno::kMmap,       Sysno::kMunmap,
      Sysno::kRtSigreturn, Sysno::kAccess,     Sysno::kPipe,
      Sysno::kSchedYield,  Sysno::kDup,        Sysno::kDup3,
      Sysno::kPause,       Sysno::kNanosleep,  Sysno::kAlarm,
      Sysno::kGetpid,      Sysno::kSocket,     Sysno::kSocketpair,
      Sysno::kSendto,      Sysno::kRecvfrom,   Sysno::kConnect,
      Sysno::kBind,        Sysno::kListen,     Sysno::kShutdown,
      Sysno::kSetsockopt,  Sysno::kGetsockopt, Sysno::kExit,
      Sysno::kExitGroup,   Sysno::kKill,       Sysno::kUname,
      Sysno::kFcntl,       Sysno::kFsync,      Sysno::kFdatasync,
      Sysno::kFtruncate,   Sysno::kGetcwd,     Sysno::kChdir,
      Sysno::kRename,      Sysno::kMkdir,      Sysno::kCreat,
      Sysno::kUnlink,      Sysno::kReadlink,   Sysno::kChmod,
      Sysno::kUmask,       Sysno::kGetrlimit,  Sysno::kSetrlimit,
      Sysno::kGetuid,      Sysno::kGeteuid,    Sysno::kSetuid,
      Sysno::kSync,        Sysno::kClockGettime, Sysno::kTimeOfDay,
      Sysno::kMsync,       Sysno::kMadvise,    Sysno::kPoll,
      Sysno::kFallocate,   Sysno::kEpollCreate1, Sysno::kEventfd2,
      Sysno::kMemfdCreate, Sysno::kTgkill,     Sysno::kPrctl,
      Sysno::kSysinfo,
      // Deliberately missing (matches gVisor's published compat gaps and the
      // paper's setup): ioctl(KCOV...), kcmp, rseq, inotify*, xattrs,
      // mq_open, flock, syncfs, times, ...
  };
}

void GvisorRuntime::execute(kernel::Process& proc, const kernel::SysReq& req,
                            const ExecContext& ctx, ExecOutcome& out) {
  out.runtime_crashed = false;
  out.res = kernel::SysResult{};
  kernel::SysResult& res = out.res;

  // --- sentry interception cost, paid on every call --------------------
  const Nanos intercept = config_.intercept_user;

  if (!supports(req.nr)) {
    res.err = kernel::ENOSYS_;
    res.ret = -kernel::ENOSYS_;
    res.user_ns = intercept + 1'500;
    res.sys_ns = 400;  // a bare host futex/membarrier, nothing else
    return;
  }

  // --- injected bugs (Table 4.3) ----------------------------------------
  if (req.nr == Sysno::kOpen) {
    const std::uint64_t flags = req.val(1);
    if ((flags & config_.panic_flag_mask) == config_.panic_flag_mask) {
      out.runtime_crashed = true;
      out.crash_message =
          "sentry panic: open flags " + hex(flags) +
          ": unhandled flag combination in fsgofer (container exited)";
      res.user_ns = intercept;
      res.err = kernel::EINVAL_;
      res.ret = -kernel::EINVAL_;
      return;
    }
    if (ctx.collider && rng_.uniform() < config_.collider_crash_chance) {
      out.runtime_crashed = true;
      out.crash_message =
          "sentry panic: concurrent open(2): fd table race detected";
      res.user_ns = intercept;
      res.err = kernel::EINVAL_;
      res.ret = -kernel::EINVAL_;
      return;
    }
  }

  // --- sentry-internal services (no host side effects) -------------------
  if (req.nr == Sysno::kSync || req.nr == Sysno::kFsync ||
      req.nr == Sysno::kFdatasync) {
    // The sentry flushes its own overlay cache; nothing reaches the host
    // writeback path, so none of the runC sync(2) behaviour appears.
    res.user_ns = intercept + 90 * kMicrosecond;
    res.sys_ns = 8 * kMicrosecond;
    res.ret = 0;
    return;
  }

  // --- forward to the host kernel with the cost transformation -----------
  res = kernel_.do_syscall(proc, req);
  res.user_ns = static_cast<Nanos>(static_cast<double>(res.user_ns) *
                                   config_.user_scale) +
                intercept;
  res.sys_ns = static_cast<Nanos>(static_cast<double>(res.sys_ns) *
                                  config_.sys_scale) +
               config_.intercept_sys;

  // In-sandbox dump cost for fatal signals (replaces the host helper).
  if (res.fatal_signal != 0 && kernel::signal_dumps_core(res.fatal_signal))
    res.user_ns += config_.sentry_dump_user;

  // Internal synchronization stall (sentry goroutine handoff).
  if (res.block_until == 0 && rng_.uniform() < config_.stall_chance) {
    res.block_until = kernel_.host().now() + config_.stall;
    res.block_io = false;
  }
}

}  // namespace torpedo::runtime
