// Kata Containers: a virtualized runtime (future-work target, §5.2).
//
// The workload runs inside a lightweight VM with its own guest kernel, so —
// like gVisor but more strongly — no host-side deferral is reachable, and
// every call pays VM-exit overhead. Startup boots a VM.
#pragma once

#include "kernel/signals.h"
#include "kernel/syscalls.h"
#include "runtime/runtime.h"

namespace torpedo::runtime {

class KataRuntime : public Runtime {
 public:
  KataRuntime(kernel::SimKernel& kernel, std::uint64_t seed)
      : kernel_(kernel), rng_(seed ^ 0x6B617461ULL) {}

  RuntimeKind kind() const override { return RuntimeKind::kKata; }

  void execute(kernel::Process& proc, const kernel::SysReq& req,
               const ExecContext& ctx, ExecOutcome& out) override {
    (void)ctx;
    out.runtime_crashed = false;
    out.res = kernel::SysResult{};
    kernel::SysResult& res = out.res;
    // The guest kernel owns the page cache: sync lands on the virtio disk
    // image, never the host writeback path.
    if (req.nr == kernel::Sysno::kSync || req.nr == kernel::Sysno::kFsync ||
        req.nr == kernel::Sysno::kFdatasync ||
        req.nr == kernel::Sysno::kSyncfs) {
      res.user_ns = 120 * kMicrosecond;  // guest flush, shows as VMM user
      res.sys_ns = 3'500;
      res.ret = 0;
      return;
    }
    res = kernel_.do_syscall(proc, req);
    // Guest-kernel execution: the host sees mostly guest time; we account it
    // as user time of the VMM plus vm-exit system time.
    res.user_ns = res.user_ns + res.sys_ns;  // guest work shows as VMM user
    res.sys_ns = 3'500;                      // vm-exit / virtio kick
    // IO crosses virtio with added latency.
    if (res.block_until != 0)
      res.block_until += 80 * kMicrosecond;
    if (res.fatal_signal != 0 && kernel::signal_dumps_core(res.fatal_signal))
      res.user_ns += 600 * kMicrosecond;  // guest-side core dump
  }

  Nanos startup_cost() const override { return 450 * kMillisecond; }

  void prepare_process(kernel::Process& proc) const override {
    proc.host_coredumps = false;
    proc.modprobe_on_missing = false;
    proc.host_audit = false;
  }

 private:
  kernel::SimKernel& kernel_;
  Rng rng_;
};

}  // namespace torpedo::runtime
