// Native ("bare metal") runtimes: runC and crun.
//
// After container setup the workload shares the host kernel directly, so
// every syscall — and every host-side deferral vulnerability — is reachable.
#pragma once

#include "runtime/runtime.h"

namespace torpedo::runtime {

class NativeRuntime : public Runtime {
 public:
  NativeRuntime(RuntimeKind kind, kernel::SimKernel& kernel)
      : kind_(kind), kernel_(kernel) {}

  RuntimeKind kind() const override { return kind_; }

  void execute(kernel::Process& proc, const kernel::SysReq& req,
               const ExecContext& ctx, ExecOutcome& out) override {
    (void)ctx;
    out.runtime_crashed = false;
    out.res = kernel_.do_syscall(proc, req);
  }

  Nanos startup_cost() const override {
    // runc forks, applies the cgroup/namespace config, and exits. crun is
    // the same design with a leaner (C, low-memory) implementation.
    return kind_ == RuntimeKind::kCrun ? 18 * kMillisecond
                                       : 35 * kMillisecond;
  }

 private:
  RuntimeKind kind_;
  kernel::SimKernel& kernel_;
};

}  // namespace torpedo::runtime
