// gVisor (runsc): a sandboxed runtime.
//
// The Sentry implements a large portion of the Linux syscall interface in
// userspace and only issues a narrow set of syscalls to the host. For
// Torpedo this means three observable differences from runC, all reproduced
// here:
//   1. Per-call interception overhead (more user time, less host kernel
//      time, extra internal synchronization stalls) — Table A.4's lower
//      utilization.
//   2. Host-effect suppression: sync(2) flushes the sentry's own cache,
//      fatal signals dump inside the sandbox, and the netstack never calls
//      request_module() — none of the runC adversarial findings reproduce.
//   3. Two injected open(2) bugs matching Table 4.3: a flag pattern that
//      panics the sentry, and a multithreaded collision race.
#pragma once

#include <unordered_set>

#include "runtime/runtime.h"

namespace torpedo::runtime {

struct GvisorConfig {
  // Cost transformation relative to native execution.
  double user_scale = 1.25;
  double sys_scale = 0.60;
  Nanos intercept_user = 1'500;       // per-call sentry dispatch (user part)
  Nanos intercept_sys = 4'000;        // host-side exits (ptrace/KVM)
  double stall_chance = 0.12;         // internal lock/channel stall
  Nanos stall = 30 * kMicrosecond;

  // Bug #1 (Table 4.3 row 1, §A.2.2): open() with this flag pattern panics
  // the sentry. 0x680002 — the Moonshine-mutated trace from the paper —
  // matches.
  std::uint64_t panic_flag_mask = 0x600000;

  // Bug #2 (Table 4.3 row 2): open() racing with parallel calls in collider
  // mode hits a sentry fd-table race.
  double collider_crash_chance = 0.02;

  // In-sentry core handling cost when a fatal signal dumps (stays in the
  // container's cgroup — no host usermodehelper).
  Nanos sentry_dump_user = 800 * kMicrosecond;
};

class GvisorRuntime : public Runtime {
 public:
  GvisorRuntime(kernel::SimKernel& kernel, std::uint64_t seed,
                GvisorConfig config = {});

  RuntimeKind kind() const override { return RuntimeKind::kGvisor; }

  void execute(kernel::Process& proc, const kernel::SysReq& req,
               const ExecContext& ctx, ExecOutcome& out) override;

  Nanos startup_cost() const override { return 120 * kMillisecond; }

  void prepare_process(kernel::Process& proc) const override {
    proc.host_coredumps = false;
    proc.modprobe_on_missing = false;
    proc.host_audit = false;  // sentry services credentials internally
  }

  bool supports(int sysno) const { return supported_.contains(sysno); }
  const GvisorConfig& config() const { return config_; }

 private:
  kernel::SimKernel& kernel_;
  GvisorConfig config_;
  Rng rng_;
  std::unordered_set<int> supported_;
};

}  // namespace torpedo::runtime
