// A container instance managed by the Engine.
#pragma once

#include <cstdint>
#include <string>

#include "cgroup/cgroup.h"
#include "kernel/process.h"
#include "runtime/runtime.h"
#include "sim/task.h"

namespace torpedo::runtime {

// The Docker resource restrictions Torpedo supports (Table 3.1):
// --runtime, --cpus, --cpuset-cpus (plus -m, used by the memory oracle).
struct ContainerSpec {
  std::string name;
  RuntimeKind runtime = RuntimeKind::kRunc;
  double cpus = 0;              // --cpus; 0 == unlimited
  std::string cpuset_cpus;      // --cpuset-cpus; empty == all cores
  std::int64_t memory_bytes = -1;  // -m; -1 == unlimited
};

enum class ContainerState { kRunning, kCrashed, kStopped, kRemoved };

class Engine;

class Container {
 public:
  std::uint64_t id() const { return id_; }
  const ContainerSpec& spec() const { return spec_; }
  ContainerState state() const { return state_; }
  cgroup::Cgroup& group() const { return *group_; }
  Runtime& runtime() const { return *runtime_; }

  kernel::Process* process() const { return process_; }
  sim::TaskId task() const { return task_; }

  const std::string& crash_message() const { return crash_message_; }
  int restarts() const { return restarts_; }

 private:
  friend class Engine;
  std::uint64_t id_ = 0;
  ContainerSpec spec_;
  ContainerState state_ = ContainerState::kRunning;
  cgroup::Cgroup* group_ = nullptr;
  Runtime* runtime_ = nullptr;
  kernel::Process* process_ = nullptr;
  sim::TaskId task_ = 0;
  std::string crash_message_;
  int restarts_ = 0;
};

}  // namespace torpedo::runtime
