#include "runtime/runtime.h"

#include "runtime/gvisor.h"
#include "runtime/kata.h"
#include "runtime/native.h"

namespace torpedo::runtime {

std::optional<RuntimeKind> runtime_from_name(std::string_view name) {
  if (name == "runc") return RuntimeKind::kRunc;
  if (name == "crun") return RuntimeKind::kCrun;
  if (name == "runsc" || name == "gvisor") return RuntimeKind::kGvisor;
  if (name == "kata-runtime" || name == "kata") return RuntimeKind::kKata;
  return std::nullopt;
}

std::unique_ptr<Runtime> make_runtime(RuntimeKind kind, kernel::SimKernel& k,
                                      std::uint64_t seed) {
  switch (kind) {
    case RuntimeKind::kRunc:
    case RuntimeKind::kCrun:
      return std::make_unique<NativeRuntime>(kind, k);
    case RuntimeKind::kGvisor:
      return std::make_unique<GvisorRuntime>(k, seed);
    case RuntimeKind::kKata:
      return std::make_unique<KataRuntime>(k, seed);
  }
  return nullptr;
}

}  // namespace torpedo::runtime
