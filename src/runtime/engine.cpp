#include "runtime/engine.h"

#include "util/check.h"
#include "util/strings.h"

namespace torpedo::runtime {

Engine::Engine(kernel::SimKernel& kernel, EngineConfig config)
    : kernel_(kernel), config_(config) {
  TORPEDO_CHECK(config_.ldisc_core >= 0 &&
                config_.ldisc_core < kernel_.host().num_cores());
  auto& hierarchy = kernel_.host().cgroups();
  docker_parent_ = hierarchy.find("/docker");
  if (!docker_parent_)
    docker_parent_ = &hierarchy.create(hierarchy.root(), "docker");
}

Runtime& Engine::runtime(RuntimeKind kind) {
  for (const auto& r : runtimes_)
    if (r->kind() == kind) return *r;
  runtimes_.push_back(make_runtime(kind, kernel_, config_.seed));
  return *runtimes_.back();
}

Container& Engine::run(const ContainerSpec& spec, sim::Supplier entrypoint) {
  auto ctr = std::make_unique<Container>();
  ctr->id_ = next_id_++;
  ctr->spec_ = spec;
  ctr->runtime_ = &runtime(spec.runtime);

  // --- translate the CLI restrictions into cgroup configuration ---------
  auto& hierarchy = kernel_.host().cgroups();
  cgroup::Cgroup& group = hierarchy.create(
      *docker_parent_, spec.name.empty()
                           ? "ctr-" + std::to_string(ctr->id_)
                           : spec.name + "-" + std::to_string(ctr->id_));
  ctr->group_ = &group;
  if (spec.cpus > 0) {
    auto& cpu = group.cpu();
    cpu.quota = static_cast<Nanos>(spec.cpus *
                                   static_cast<double>(cpu.period));
  }
  if (!spec.cpuset_cpus.empty()) {
    auto parsed = cgroup::CpuSet::parse(spec.cpuset_cpus);
    TORPEDO_CHECK_MSG(parsed.has_value(), "invalid --cpuset-cpus value");
    group.set_cpuset(*parsed);
  }
  if (spec.memory_bytes >= 0) group.memory().limit_bytes = spec.memory_bytes;

  // --- container setup: the runtime binary runs briefly and exits -------
  sim::Task& setup = kernel_.host().spawn({
      .name = std::string(ctr->runtime_->name()) + ":create",
      .kind = sim::TaskKind::kHelper,
      .group = &group,
      .affinity = {},
      .supplier = nullptr,
  });
  const Nanos cost = ctr->runtime_->startup_cost();
  setup.push(sim::Segment::system(cost / 2));
  setup.push(sim::Segment::user(cost - cost / 2));

  Container& ref = *ctr;
  containers_.push_back(std::move(ctr));
  spawn_entrypoint(ref, std::move(entrypoint));
  return ref;
}

void Engine::spawn_entrypoint(Container& ctr, sim::Supplier entrypoint) {
  sim::Task& task = kernel_.host().spawn({
      .name = "ctr/" + std::to_string(ctr.id_),
      .kind = sim::TaskKind::kUser,
      .group = ctr.group_,
      .affinity = {},
      .supplier = std::move(entrypoint),
  });
  ctr.task_ = task.id();
  ctr.process_ = &kernel_.create_process("ctr/" + std::to_string(ctr.id_),
                                         ctr.group_, task.id());
  ctr.runtime_->prepare_process(*ctr.process_);
  ctr.state_ = ContainerState::kRunning;
}

void Engine::mark_crashed(Container& ctr, const std::string& message) {
  if (ctr.state_ != ContainerState::kRunning) return;
  ++crashes_;
  ctr.state_ = ContainerState::kCrashed;
  ctr.crash_message_ = message;
  if (sim::Task* t = kernel_.host().find_task(ctr.task_))
    kernel_.host().kill(*t);
  if (ctr.process_) {
    kernel_.destroy_process(*ctr.process_);
    ctr.process_ = nullptr;
  }
}

void Engine::restart(Container& ctr, sim::Supplier entrypoint) {
  TORPEDO_CHECK(ctr.state_ == ContainerState::kCrashed ||
                ctr.state_ == ContainerState::kStopped);
  ++ctr.restarts_;
  // Restart pays the runtime startup again.
  sim::Task& setup = kernel_.host().spawn({
      .name = std::string(ctr.runtime_->name()) + ":create",
      .kind = sim::TaskKind::kHelper,
      .group = ctr.group_,
      .affinity = {},
      .supplier = nullptr,
  });
  const Nanos cost = ctr.runtime_->startup_cost();
  setup.push(sim::Segment::system(cost / 2));
  setup.push(sim::Segment::user(cost - cost / 2));
  spawn_entrypoint(ctr, std::move(entrypoint));
}

void Engine::stop(Container& ctr) {
  if (ctr.state_ != ContainerState::kRunning) return;
  ctr.state_ = ContainerState::kStopped;
  if (sim::Task* t = kernel_.host().find_task(ctr.task_))
    kernel_.host().kill(*t);
  if (ctr.process_) {
    kernel_.destroy_process(*ctr.process_);
    ctr.process_ = nullptr;
  }
}

void Engine::remove(Container& ctr) {
  stop(ctr);
  if (ctr.state_ == ContainerState::kRemoved) return;
  ctr.state_ = ContainerState::kRemoved;
  if (ctr.group_) {
    kernel_.host().cgroups().remove(*ctr.group_);
    ctr.group_ = nullptr;
  }
}

void Engine::stream_output(Container& ctr, std::uint64_t bytes) {
  if (kernel_.host().num_cores() <= config_.ldisc_core) return;
  const std::uint64_t pid = ctr.process_ ? ctr.process_->pid() : 0;
  kernel_.services().ldisc_stream(config_.ldisc_core, bytes, pid);
}

std::size_t Engine::live_containers() const {
  std::size_t n = 0;
  for (const auto& c : containers_)
    if (c->state() == ContainerState::kRunning) ++n;
  return n;
}

}  // namespace torpedo::runtime
