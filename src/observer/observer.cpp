#include "observer/observer.h"

#include <algorithm>
#include <unordered_map>

#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/check.h"

namespace torpedo::observer {

Observer::Observer(kernel::SimKernel& kernel,
                   std::vector<exec::Executor*> executors,
                   ObserverConfig config)
    : kernel_(kernel), executors_(std::move(executors)), config_(config) {
  TORPEDO_CHECK(!executors_.empty());
  TORPEDO_CHECK(config_.round_duration > 0);
  telemetry::Registry& metrics = telemetry::global();
  ctr_rounds_ = &metrics.counter("observer.rounds");
  hist_round_wall_us_ = &metrics.histogram("observer.round_wall_us");
  hist_snapshot_wall_us_ = &metrics.histogram("observer.snapshot_wall_us");
  hist_quiesce_ns_ = &metrics.histogram("observer.quiesce_drain_sim_ns");
}

void Observer::warm_up(Nanos duration) {
  kernel_.host().run_for(duration);
}

void Observer::prune_log() {
  if (config_.max_log_rounds == 0) return;
  while (log_.size() > config_.max_log_rounds) log_.pop_front();
}

Observer::Snapshot Observer::snapshot() const {
  Snapshot snap;
  // The real observer reads /proc/stat text; we exercise the same
  // render+parse path rather than peeking at internal counters.
  auto parsed = kernel::parse_proc_stat(kernel::render_proc_stat(kernel_.host()));
  TORPEDO_CHECK(parsed.has_value());
  snap.stat = std::move(*parsed);
  snap.tasks = kernel_.host().sample_tasks(config_.snapshot_exec);
  for (exec::Executor* e : executors_) {
    const cgroup::Cgroup& group = e->container().group();
    ContainerUsage usage;
    usage.cgroup_path = group.path();
    usage.cpu_ns = group.cpu().usage;
    usage.memory_bytes = group.memory().usage_bytes;
    usage.memory_failcnt = group.memory().failcnt;
    usage.blkio_bytes = group.blkio().bytes_read + group.blkio().bytes_written;
    snap.containers.push_back(std::move(usage));
  }
  snap.device_bytes = kernel_.host().disk().total_bytes();
  return snap;
}

Observation Observer::diff(const Snapshot& before,
                           const Snapshot& after) const {
  Observation obs;
  obs.aggregate.core = -1;
  for (int i = 0; i < sim::kNumCpuCategories; ++i)
    obs.aggregate.jiffies[static_cast<std::size_t>(i)] =
        after.stat.aggregate.jiffies[static_cast<std::size_t>(i)] -
        before.stat.aggregate.jiffies[static_cast<std::size_t>(i)];
  for (std::size_t c = 0; c < after.stat.cores.size() &&
                          c < before.stat.cores.size();
       ++c) {
    CoreUsage usage;
    usage.core = after.stat.cores[c].core;
    for (int i = 0; i < sim::kNumCpuCategories; ++i)
      usage.jiffies[static_cast<std::size_t>(i)] =
          after.stat.cores[c].jiffies[static_cast<std::size_t>(i)] -
          before.stat.cores[c].jiffies[static_cast<std::size_t>(i)];
    obs.cores.push_back(usage);
  }

  // top(1) semantics: a process is only reported if it existed at both frame
  // boundaries. Short-lived helpers (modprobe storms, core-dump children)
  // are invisible here — but not in the per-core counters above.
  std::unordered_map<std::uint64_t, const sim::TaskSample*> earlier;
  for (const sim::TaskSample& t : before.tasks) earlier[t.id] = &t;
  const double window = static_cast<double>(config_.round_duration);
  for (const sim::TaskSample& t : after.tasks) {
    if (!t.alive) continue;
    auto it = earlier.find(t.id);
    if (it == earlier.end() || !it->second->alive) continue;
    ProcSample sample;
    sample.pid = t.id;
    sample.name = t.name;
    sample.cgroup = t.cgroup_path;
    sample.cpu_percent =
        100.0 * static_cast<double>(t.cpu_time - it->second->cpu_time) /
        window;
    if (sample.cpu_percent > 0.005) obs.processes.push_back(std::move(sample));
  }
  std::sort(obs.processes.begin(), obs.processes.end(),
            [](const ProcSample& a, const ProcSample& b) {
              return a.cpu_percent > b.cpu_percent;
            });

  for (std::size_t i = 0;
       i < after.containers.size() && i < before.containers.size(); ++i) {
    ContainerUsage usage = after.containers[i];
    usage.cpu_ns -= before.containers[i].cpu_ns;
    usage.memory_failcnt -= before.containers[i].memory_failcnt;
    usage.blkio_bytes -= before.containers[i].blkio_bytes;
    obs.containers.push_back(std::move(usage));
  }
  obs.device_bytes = after.device_bytes - before.device_bytes;

  // Oracle context: which cores are supposed to be busy and what the sum of
  // the --cpus caps is.
  for (exec::Executor* e : executors_) {
    const runtime::ContainerSpec& spec = e->container().spec();
    const cgroup::CpuSet cpus = e->container().group().effective_cpuset();
    for (int c : cpus.cores()) {
      if (c >= kernel_.host().num_cores()) continue;
      if (!obs.is_fuzz_core(c) && cpus.count() <= 4) obs.fuzz_cores.push_back(c);
    }
    obs.configured_cpu_cap +=
        spec.cpus > 0 ? spec.cpus : static_cast<double>(cpus.count());
  }
  std::sort(obs.fuzz_cores.begin(), obs.fuzz_cores.end());
  obs.side_band_core = config_.side_band_core;
  return obs;
}

const RoundResult& Observer::run_round(
    std::span<const prog::Program> programs) {
  TORPEDO_CHECK_MSG(programs.size() == executors_.size(),
                    "one program per executor");
  const Nanos round_wall_start = telemetry::steady_now_ns();
  telemetry::ScopedSpan round_span(
      "round", telemetry::JsonDict{}.set("round", round_));

  // Recover any container whose runtime died last round.
  for (exec::Executor* e : executors_)
    if (e->crashed()) e->restart();

  const Nanos stop = kernel_.host().now() + config_.round_duration;

  // Stage 1: distribute programs; executors latch ready (Algorithm 2,
  // lines 9-13).
  for (std::size_t i = 0; i < executors_.size(); ++i)
    executors_[i]->prime(programs[i], stop);

  // top warm-up frame: taken and discarded before the measured window.
  if (config_.discard_top_warmup)
    (void)kernel_.host().sample_tasks(config_.snapshot_exec);

  Snapshot before;
  {
    const telemetry::ScopedTimerUs timer(*hist_snapshot_wall_us_);
    const telemetry::ScopedSpan span("round.snapshot_before");
    before = snapshot();
  }

  // Stage 2: release all executors; their windows align with ours.
  for (exec::Executor* e : executors_) e->start();

  // TakeMeasurement(T): returns after T seconds (Algorithm 2, line 15).
  {
    const telemetry::ScopedSpan span("round.measure");
    kernel_.host().run_until(stop);
  }

  Snapshot after;
  {
    const telemetry::ScopedTimerUs timer(*hist_snapshot_wall_us_);
    const telemetry::ScopedSpan span("round.snapshot_after");
    after = snapshot();
  }

  // Grace drain (outside the measured window): a mid-iteration executor
  // finishes its partial iteration and latches idle; Algorithm 1 guarantees
  // it won't *start* another iteration past the stop timestamp.
  const std::uint64_t quiesce_span =
      telemetry::spans() ? telemetry::spans()->begin("round.quiesce") : 0;
  auto quiesced = [&] {
    for (exec::Executor* e : executors_)
      if (!e->idle() && !e->crashed()) return false;
    return true;
  };
  const Nanos soft_deadline = stop + kSecond;
  while (!quiesced() && kernel_.host().now() < soft_deadline)
    kernel_.host().run_for(kMillisecond);
  // Still stuck (e.g. blocked deep in a flush backlog): interrupt, the way
  // the real executor kills a program that overruns its timeout.
  const Nanos hard_deadline = soft_deadline + 3 * kSecond;
  while (!quiesced() && kernel_.host().now() < hard_deadline) {
    for (exec::Executor* e : executors_)
      if (!e->idle() && !e->crashed()) e->interrupt();
    kernel_.host().run_for(kMillisecond);
  }
  TORPEDO_CHECK_MSG(quiesced(), "executor failed to quiesce after its round");
  if (telemetry::spans()) telemetry::spans()->end(quiesce_span);
  const Nanos quiesce_drain = kernel_.host().now() - stop;
  hist_quiesce_ns_->record(static_cast<std::uint64_t>(quiesce_drain));

  RoundResult result;
  result.round = round_++;
  result.observation = diff(before, after);
  result.observation.round = result.round;
  result.observation.window_start = stop - config_.round_duration;
  result.observation.window_end = stop;
  result.programs.assign(programs.begin(), programs.end());
  for (exec::Executor* e : executors_) {
    exec::RunStats stats = e->take_stats();
    result.any_crash = result.any_crash || stats.crashed || e->crashed();
    result.stats.push_back(std::move(stats));
  }

  // Keep the task table from growing without bound across long campaigns.
  kernel_.host().reap_dead_tasks_before(result.observation.window_start);

  ctr_rounds_->inc();
  const std::uint64_t round_wall_us = static_cast<std::uint64_t>(
      (telemetry::steady_now_ns() - round_wall_start) / 1000);
  hist_round_wall_us_->record(round_wall_us);

  if (trace_) {
    std::uint64_t executions = 0, fatal_signals = 0, crashes = 0;
    for (const exec::RunStats& s : result.stats) {
      executions += s.executions;
      fatal_signals += s.fatal_signals;
      crashes += s.crashed ? 1 : 0;
    }
    telemetry::JsonDict record;
    record.set("round", result.round)
        .set("window_start_ns", result.observation.window_start)
        .set("window_end_ns", result.observation.window_end)
        .set("executors", static_cast<std::uint64_t>(executors_.size()))
        .set("executions", executions)
        .set("fatal_signals", fatal_signals)
        .set("crashes", crashes)
        .set("quiesce_drain_ns", quiesce_drain)
        .set("wall_us", round_wall_us);
    trace_->write("round", kernel_.host().now(), record);
  }

  log_.push_back(std::move(result));
  if (round_hook_) round_hook_(log_.back());
  return log_.back();
}

}  // namespace torpedo::observer
