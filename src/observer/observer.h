// The Observer: round-based, synchronized measurement (Algorithm 2).
//
// Rounds last T seconds. Each round the observer distributes one program per
// executor (two-stage latch: prime, then start), advances the host exactly T,
// samples /proc/stat and the process table at both edges, and produces an
// Observation. Round results accumulate in a log that the flagging pass
// (§3.6.1) scans asynchronously.
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "exec/executor.h"
#include "observer/observation.h"

namespace torpedo::telemetry {
class Counter;
class Histogram;
class TraceSink;
}  // namespace torpedo::telemetry

namespace torpedo::observer {

struct ObserverConfig {
  Nanos round_duration = 5 * kSecond;  // T; the paper settles on 3-5 s
  // top(1) needs a throwaway warm-up frame before trustworthy output; the
  // wrapper discards it (§3.4). Modeled as an extra pre-round sample.
  bool discard_top_warmup = true;
  // Core carrying the engine's LDISC side-band; oracles ignore it.
  int side_band_core = -1;
  // Round-log retention: prune_log() keeps at most this many of the newest
  // rounds. 0 = unlimited (every RoundResult kept forever, the historical
  // behavior). Long campaigns set a bound once the flag scan consumes rounds
  // incrementally — a RoundResult holds full programs + stats, so an
  // unbounded log is the largest allocation in the process.
  std::size_t max_log_rounds = 0;
  // Snapshot-exec fast path: sample only live tasks at the window edges.
  // The diff reports exclusively tasks alive at both edges, so the
  // Observation is byte-identical; what is skipped is copying name and
  // cgroup-path strings for every dead-but-unreaped helper task.
  bool snapshot_exec = true;
};

struct RoundResult {
  int round = 0;
  Observation observation;
  std::vector<prog::Program> programs;       // one per executor
  std::vector<exec::RunStats> stats;         // one per executor
  bool any_crash = false;
};

class Observer {
 public:
  Observer(kernel::SimKernel& kernel, std::vector<exec::Executor*> executors,
           ObserverConfig config = {});

  // Runs one round with programs[i] on executor i (Algorithm 2 lines 7-16).
  // Crashed executors are restarted before priming.
  const RoundResult& run_round(std::span<const prog::Program> programs);

  // Lets host background activity settle without measuring (used before
  // baselines).
  void warm_up(Nanos duration);

  // Deque: RoundResult references returned by run_round stay valid as the
  // log grows. Pruning (below) only ever drops the *oldest* rounds, so a
  // reference stays valid as long as its round is within the retention
  // window and prune_log() has not been called more recently.
  const std::deque<RoundResult>& log() const { return log_; }

  // Drops the oldest rounds until at most config().max_log_rounds remain
  // (no-op when max_log_rounds == 0). NEVER called implicitly: the caller
  // decides the safe point (the campaign prunes at batch boundaries, after
  // the incremental flag scan has consumed the batch's rounds and the
  // fuzzer's round references are dead).
  void prune_log();
  int rounds_run() const { return round_; }
  const ObserverConfig& config() const { return config_; }
  std::size_t executor_count() const { return executors_.size(); }
  exec::Executor& executor(std::size_t i) const { return *executors_[i]; }

  // When set, every completed round appends one "round" record to the sink
  // (the machine-readable campaign trace). Caller keeps ownership.
  void set_trace_sink(telemetry::TraceSink* sink) { trace_ = sink; }
  telemetry::TraceSink* trace_sink() const { return trace_; }

  // Invoked at the end of every completed round with its result, before
  // run_round returns (the live-monitor wiring: heartbeat stamping and
  // status snapshots hang off this). Runs on the campaign thread.
  using RoundHook = std::function<void(const RoundResult&)>;
  void set_round_hook(RoundHook hook) { round_hook_ = std::move(hook); }

 private:
  struct Snapshot {
    kernel::ProcStat stat;
    std::vector<sim::TaskSample> tasks;
    std::vector<ContainerUsage> containers;
    std::uint64_t device_bytes = 0;
  };
  Snapshot snapshot() const;
  Observation diff(const Snapshot& before, const Snapshot& after) const;

  kernel::SimKernel& kernel_;
  std::vector<exec::Executor*> executors_;
  ObserverConfig config_;
  std::deque<RoundResult> log_;
  int round_ = 0;

  telemetry::TraceSink* trace_ = nullptr;
  RoundHook round_hook_;
  telemetry::Counter* ctr_rounds_ = nullptr;
  telemetry::Histogram* hist_round_wall_us_ = nullptr;
  telemetry::Histogram* hist_snapshot_wall_us_ = nullptr;
  telemetry::Histogram* hist_quiesce_ns_ = nullptr;
};

}  // namespace torpedo::observer
