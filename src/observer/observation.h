// Observations: what TORPEDO measures during one round.
//
// Two complementary mechanisms (§3.4):
//  * per-core counters from /proc/stat sampled at the window edges and
//    diffed — catches everything, including short-lived kernel helpers;
//  * a top(1)-style per-process sampler that can only see processes alive at
//    both frame boundaries ("top is incapable of reporting CPU utilization
//    by processes that begin or end during the time between frames"), which
//    is why modprobe storms show up in the former but not the latter.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/procfs.h"
#include "sim/core_times.h"
#include "util/time.h"

namespace torpedo::observer {

// Per-core delta over the round, in jiffies (the appendix tables' rows).
struct CoreUsage {
  int core = -1;  // -1 == the aggregate "CPU" row
  std::array<std::int64_t, sim::kNumCpuCategories> jiffies{};

  std::int64_t operator[](sim::CpuCategory c) const {
    return jiffies[static_cast<std::size_t>(c)];
  }
  std::int64_t total() const {
    std::int64_t t = 0;
    for (auto v : jiffies) t += v;
    return t;
  }
  std::int64_t busy() const {
    return total() - (*this)[sim::CpuCategory::kIdle] -
           (*this)[sim::CpuCategory::kIoWait];
  }
  // The appendix tables' PERCENT column.
  double percent() const {
    const std::int64_t t = total();
    return t > 0 ? 100.0 * static_cast<double>(busy()) /
                       static_cast<double>(t)
                 : 0.0;
  }
  double iowait_fraction() const {
    const std::int64_t t = total();
    return t > 0 ? static_cast<double>((*this)[sim::CpuCategory::kIoWait]) /
                       static_cast<double>(t)
                 : 0.0;
  }
};

// One top(1) row. Only processes alive at both window edges appear.
struct ProcSample {
  std::uint64_t pid = 0;
  std::string name;
  std::string cgroup;
  double cpu_percent = 0;  // of one core, over the window
};

// Per-container accounting deltas (cgroup view).
struct ContainerUsage {
  std::string cgroup_path;
  Nanos cpu_ns = 0;                 // what the container was charged
  std::int64_t memory_bytes = 0;    // usage at window end
  std::uint64_t memory_failcnt = 0; // limit hits during the window
  std::uint64_t blkio_bytes = 0;    // charged block IO during the window
};

struct Observation {
  int round = 0;
  Nanos window_start = 0;
  Nanos window_end = 0;

  CoreUsage aggregate;
  std::vector<CoreUsage> cores;
  std::vector<ProcSample> processes;
  std::vector<ContainerUsage> containers;

  // Context the oracles need.
  std::vector<int> fuzz_cores;   // cores assigned to fuzzing containers
  double configured_cpu_cap = 0; // sum of --cpus limits (in cores)
  // The framework's own LDISC/softirq side-band core ("a side-effect of our
  // framework [that] can be safely ignored for most analysis", Appendix A).
  int side_band_core = -1;

  // Host-wide IO: bytes the device actually moved vs bytes any container
  // was charged for (the blkio gap).
  std::uint64_t device_bytes = 0;

  Nanos duration() const { return window_end - window_start; }
  bool is_fuzz_core(int core) const {
    for (int c : fuzz_cores)
      if (c == core) return true;
    return false;
  }
  const CoreUsage* core_usage(int core) const {
    for (const CoreUsage& u : cores)
      if (u.core == core) return &u;
    return nullptr;
  }
  // Total host utilization in percent of all cores — the paper's oracle
  // score ("CPU Utilization was used as the Oracle score").
  double total_utilization() const { return aggregate.percent(); }
};

}  // namespace torpedo::observer
