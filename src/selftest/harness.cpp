#include "selftest/harness.h"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/provenance.h"
#include "core/workdir.h"
#include "feedback/syscall_profile.h"
#include "kernel/syscalls.h"
#include "selftest/faultinject.h"
#include "selftest/invariants.h"
#include "selftest/replay.h"
#include "telemetry/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace torpedo::selftest {

namespace fs = std::filesystem;

namespace {

// One failed trial, with enough context to re-run it standalone.
struct TrialFailure {
  std::string pillar;
  int trial = -1;
  std::uint64_t seed = 0;
  std::string detail;
  // Shrunk first-violation tick for invariant failures; -1 otherwise.
  Nanos first_violation_ns = -1;
  std::string violations_json;  // "[]" when not an invariant failure

  telemetry::JsonDict to_json() const {
    telemetry::JsonDict d;
    d.set("pillar", pillar)
        .set("trial", trial)
        .set("seed", static_cast<std::int64_t>(seed))
        .set("detail", detail)
        .set("first_violation_ns", first_violation_ns)
        .set_raw("violations", violations_json);
    return d;
  }
};

// Small, fast campaign whose shape still exercises scheduler, cgroups,
// throttling, and the full post-processing pipeline.
core::CampaignConfig mini_config(Rng& rng) {
  core::CampaignConfig config;
  config.num_executors = 1 + static_cast<int>(rng.below(2));
  config.round_duration =
      (20 + static_cast<Nanos>(rng.below(41))) * kMillisecond;
  config.batches = 1;
  config.num_seeds = 3 + rng.below(4);
  config.seed = rng.next();
  config.max_confirmations = 4;
  config.fuzzer.cycle_out_rounds = 3;
  // 8 cores: the smallest host that still leaves the default service
  // daemons their cores 6-7 beside the pinned executor cpusets.
  config.kernel.host.num_cores = 8;
  config.kernel.host.num_kworkers = 4;
  return config;
}

// Re-runs the exact trial deterministically with a single-check probe at
// `probe_ns`. Returns the tick the probe actually ran at (quantum-aligned,
// >= probe_ns) and whether it violated; nullopt when the campaign retired
// before the probe fired.
struct ProbeOutcome {
  Nanos tick_ns = -1;
  bool violated = false;
};
std::optional<ProbeOutcome> probe_trial(const core::CampaignConfig& config,
                                        Nanos probe_ns, bool skip_charging) {
  core::Campaign campaign(config);
  if (skip_charging)
    campaign.kernel().host().set_skip_cgroup_charging_for_selftest(true);
  InvariantConfig icfg;
  icfg.probe_at_ns = probe_ns;
  InvariantChecker checker(campaign.kernel(), icfg);
  checker.install();
  campaign.load_default_seeds();
  try {
    campaign.run_one_batch();
  } catch (const ProbeStop& stop) {
    checker.uninstall();
    return ProbeOutcome{.tick_ns = stop.tick_ns, .violated = stop.violated};
  }
  checker.uninstall();
  return std::nullopt;
}

// Bisects the first tick in (lo, hi] where the trial's invariants break,
// by re-running the identical deterministic trial with probes. `hi` must be
// a tick where a check violated.
struct ShrinkResult {
  Nanos first_bad_ns = -1;
  int probes = 0;
};
ShrinkResult shrink_first_violation(const core::CampaignConfig& config,
                                    bool skip_charging, Nanos lo, Nanos hi) {
  ShrinkResult result;
  const Nanos quantum = config.kernel.host.quantum;
  while (hi - lo > quantum && result.probes < 48) {
    const Nanos mid = lo + (hi - lo) / 2;
    ++result.probes;
    const auto outcome = probe_trial(config, mid, skip_charging);
    if (!outcome) {
      // Campaign retired before the probe: nothing to observe past mid.
      lo = mid;
      continue;
    }
    if (outcome->violated)
      hi = outcome->tick_ns;
    else
      lo = outcome->tick_ns > mid ? outcome->tick_ns : mid;
  }
  result.first_bad_ns = hi;
  return result;
}

struct InvariantPillar {
  int trials = 0;
  int failed = 0;
  std::uint64_t checks_run = 0;
};

void run_invariant_trial(std::uint64_t seed, int index, bool break_charging,
                         InvariantPillar& pillar,
                         std::vector<TrialFailure>& failures) {
  Rng rng(seed);
  const core::CampaignConfig config = mini_config(rng);
  ++pillar.trials;

  core::Campaign campaign(config);
  if (break_charging)
    campaign.kernel().host().set_skip_cgroup_charging_for_selftest(true);
  const Nanos install_ns = campaign.kernel().host().now();
  InvariantChecker checker(campaign.kernel());
  checker.install();
  campaign.load_default_seeds();
  std::string error;
  try {
    campaign.run_one_batch();
    checker.check_now();
  } catch (const std::exception& e) {
    error = e.what();
  }
  checker.uninstall();
  pillar.checks_run += checker.checks_run();

  const bool violated = !checker.violations().empty();
  // A detector-validation trial *must* violate; a normal trial must not.
  const bool trial_failed =
      !error.empty() || (break_charging ? !violated : violated);
  if (!trial_failed) return;
  ++pillar.failed;

  TrialFailure failure;
  failure.pillar = break_charging ? "detector-validation" : "invariants";
  failure.trial = index;
  failure.seed = seed;
  failure.violations_json = invariant_violations_to_json(checker.violations());
  if (!error.empty()) {
    failure.detail = "trial raised: " + error;
  } else if (break_charging) {
    failure.detail =
        "broken cgroup charging went undetected by charge-conservation";
  } else {
    const ShrinkResult shrunk = shrink_first_violation(
        config, false, install_ns, checker.first_violation_tick());
    failure.first_violation_ns = shrunk.first_bad_ns;
    failure.detail = format(
        "%zu invariant violation(s); first broken tick shrunk to %lld ns "
        "(%d probes)",
        checker.violations().size(),
        static_cast<long long>(shrunk.first_bad_ns), shrunk.probes);
  }
  failures.push_back(std::move(failure));
}

// Detector validation: break the accounting on purpose, demand that the
// charge-conservation oracle catches it, and shrink the detection to its
// first tick. Reported separately because *failing to fail* is the bug.
struct DetectorValidation {
  bool ran = false;
  bool detected = false;
  std::string invariant;
  Nanos first_violation_ns = -1;
  Nanos shrunk_ns = -1;
  int probes = 0;
};

DetectorValidation run_detector_validation(std::uint64_t seed,
                                           std::vector<TrialFailure>& failures) {
  DetectorValidation v;
  v.ran = true;
  Rng rng(seed);
  const core::CampaignConfig config = mini_config(rng);

  core::Campaign campaign(config);
  campaign.kernel().host().set_skip_cgroup_charging_for_selftest(true);
  const Nanos install_ns = campaign.kernel().host().now();
  InvariantConfig icfg;
  icfg.check_every_ticks = 4;
  InvariantChecker checker(campaign.kernel(), icfg);
  checker.install();
  campaign.load_default_seeds();
  try {
    campaign.run_one_batch();
    checker.check_now();
  } catch (const std::exception&) {
  }
  checker.uninstall();

  for (const InvariantViolation& violation : checker.violations()) {
    if (violation.invariant == "charge-conservation") {
      v.detected = true;
      v.invariant = violation.invariant;
      break;
    }
  }
  v.first_violation_ns = checker.first_violation_tick();
  if (v.detected) {
    const ShrinkResult shrunk = shrink_first_violation(
        config, true, install_ns, checker.first_violation_tick());
    v.shrunk_ns = shrunk.first_bad_ns;
    v.probes = shrunk.probes;
  } else {
    failures.push_back({.pillar = "detector-validation",
                        .trial = 0,
                        .seed = seed,
                        .detail = "deliberately broken cgroup charging was "
                                  "not caught by charge-conservation",
                        .violations_json = invariant_violations_to_json(
                            checker.violations())});
  }
  return v;
}

struct FaultPillar {
  int trials = 0;
  int failed = 0;
  std::uint64_t syscalls_seen = 0;
  std::uint64_t errors_injected = 0;
  std::uint64_t wakeups_dropped = 0;
  std::uint64_t irq_bursts = 0;
  int artifact_checks = 0;
};

void run_fault_trial(std::uint64_t seed, int index, const fs::path& dir,
                     FaultPillar& pillar, std::vector<TrialFailure>& failures) {
  Rng rng(seed);
  const core::CampaignConfig config = mini_config(rng);
  const FaultPlan plan = FaultPlan::random(rng.next());
  ++pillar.trials;

  auto fail = [&](std::string detail) {
    ++pillar.failed;
    failures.push_back({.pillar = "faults",
                        .trial = index,
                        .seed = seed,
                        .detail = std::move(detail),
                        .violations_json = "[]"});
  };

  core::Campaign campaign(config);
  FaultInjector injector(plan);
  injector.install(campaign.kernel());
  core::CampaignReport report;
  try {
    // Graceful degradation: under injected errno storms, dropped wakeups,
    // and IRQ bursts the campaign must still retire and post-process.
    campaign.load_default_seeds();
    campaign.run_one_batch();
    report = campaign.finalize();
  } catch (const std::exception& e) {
    injector.uninstall(campaign.kernel());
    fail(std::string("campaign under faults raised: ") + e.what());
    return;
  }
  injector.uninstall(campaign.kernel());
  pillar.syscalls_seen += injector.stats().syscalls_seen;
  pillar.errors_injected += injector.stats().errors_injected;
  pillar.wakeups_dropped += injector.stats().wakeups_dropped;
  pillar.irq_bursts += injector.stats().irq_bursts;

  // Artifact robustness: the artifacts written under duress must parse, and
  // torn (truncated) copies of them must be rejected cleanly, not crash.
  fs::create_directories(dir);
  core::save_report(dir / "report.txt", report);
  core::save_corpus(dir / "corpus.txt", campaign.corpus());
  core::write_violation_bundles(dir, report);
  ++pillar.artifact_checks;

  std::ifstream in(dir / "report.txt");
  std::string header;
  std::getline(in, header);
  if (header != "# TORPEDO campaign report") {
    fail("report.txt written under faults has a corrupt header: " + header);
    return;
  }
  {
    feedback::Corpus loaded;
    const std::size_t entries = core::load_corpus(dir / "corpus.txt", loaded);
    if (campaign.corpus().size() != entries) {
      fail(format("corpus round-trip lost entries under faults: %zu -> %zu",
                  campaign.corpus().size(), entries));
      return;
    }
  }
  try {
    const double keep = 0.1 + 0.8 * rng.uniform();
    truncate_file(dir / "corpus.txt", keep);
    feedback::Corpus truncated;
    (void)core::load_corpus(dir / "corpus.txt", truncated);
    const fs::path bundle = dir / "violations" / "000" / "bundle.json";
    if (fs::exists(bundle)) {
      std::ifstream bundle_in(bundle);
      std::stringstream buffer;
      buffer << bundle_in.rdbuf();
      if (!telemetry::parse_json_object(trim(buffer.str()))) {
        fail("intact bundle.json failed to parse");
        return;
      }
      truncate_file(bundle, keep);
      std::ifstream torn_in(bundle);
      std::stringstream torn;
      torn << torn_in.rdbuf();
      // A torn bundle must parse to nullopt or a smaller object — never
      // crash or hang. parse_json_object is iterative, so this is the
      // regression hook for stack-depth and truncation handling.
      (void)telemetry::parse_json_object(trim(torn.str()));
    }
  } catch (const std::exception& e) {
    fail(std::string("torn-artifact handling raised: ") + e.what());
  }
}

struct ReplayPillar {
  int trials = 0;
  int failed = 0;
  int artifacts_compared = 0;
};

void run_replay_trial(std::uint64_t seed, int index, const fs::path& dir,
                      ReplayPillar& pillar,
                      std::vector<TrialFailure>& failures) {
  Rng rng(seed);
  // Replay reconstructs the config from the manifest alone, so the recorded
  // trial may only vary manifest-capturable fields.
  core::CampaignManifest manifest;
  manifest.batches = 1;
  manifest.num_executors = 1 + static_cast<int>(rng.below(2));
  manifest.round_duration =
      (20 + static_cast<Nanos>(rng.below(41))) * kMillisecond;
  manifest.num_seeds = 3 + rng.below(4);
  manifest.seed = rng.next();
  ++pillar.trials;

  auto fail = [&](std::string detail) {
    ++pillar.failed;
    failures.push_back({.pillar = "replay",
                        .trial = index,
                        .seed = seed,
                        .detail = std::move(detail),
                        .violations_json = "[]"});
  };

  // Record: run once and persist the same artifact stack `torpedo run
  // --workdir` writes, manifest included.
  fs::create_directories(dir);
  feedback::SyscallProfile profile;
  feedback::SyscallProfile* previous = feedback::syscall_profile();
  feedback::set_syscall_profile(&profile);
  try {
    core::Campaign campaign(manifest.to_config());
    campaign.load_default_seeds();
    const core::CampaignReport report = campaign.run();
    core::save_corpus(dir / "corpus.txt", campaign.corpus());
    core::save_report(dir / "report.txt", report);
    core::write_violation_bundles(dir, report);
    std::ofstream out(dir / "syscall_profile.json", std::ios::trunc);
    out << profile.to_json(&kernel::sysno_name) << "\n";
    core::save_campaign_manifest(dir / "campaign.json", manifest);
  } catch (const std::exception& e) {
    feedback::set_syscall_profile(previous);
    fail(std::string("recording campaign raised: ") + e.what());
    return;
  }
  feedback::set_syscall_profile(previous);

  ReplayOptions options;
  options.workdir = dir;
  options.max_execution_diffs = 2;
  const ReplayResult result = replay_workdir(options);
  pillar.artifacts_compared += result.artifacts_compared;
  if (!result.ran) {
    fail("replay did not run: " + result.error);
    return;
  }
  if (!result.identical) {
    std::string detail =
        format("replay diverged in %zu place(s):", result.diffs.size());
    for (std::size_t i = 0; i < result.diffs.size() && i < 3; ++i) {
      const ReplayDiff& diff = result.diffs[i];
      detail += format(" [%s %s: %s != %s]", diff.artifact.c_str(),
                       diff.path.c_str(), diff.original.c_str(),
                       diff.replayed.c_str());
    }
    fail(std::move(detail));
  }
}

}  // namespace

SelftestResult run_selftest(const SelftestOptions& options) {
  SelftestResult result;
  const fs::path scratch = options.scratch.empty()
                               ? fs::temp_directory_path() / "torpedo-selftest"
                               : options.scratch;
  std::error_code ec;
  fs::remove_all(scratch, ec);
  fs::create_directories(scratch);

  const int trials = options.trials > 0 ? options.trials : 1;
  std::vector<TrialFailure> failures;
  InvariantPillar invariants;
  DetectorValidation detector;
  FaultPillar faults;
  ReplayPillar replay;

  // Distinct seed streams per pillar so adding trials to one pillar never
  // perturbs another.
  if (options.run_invariants) {
    for (int i = 0; i < trials; ++i) {
      if (options.verbose) std::fprintf(stderr, "selftest: invariants %d\n", i);
      run_invariant_trial(mix_seed(options.seed, 0x1000 + i), i, false,
                          invariants, failures);
    }
    detector = run_detector_validation(mix_seed(options.seed, 0x2000), failures);
  }
  if (options.run_faults) {
    for (int i = 0; i < trials; ++i) {
      if (options.verbose) std::fprintf(stderr, "selftest: faults %d\n", i);
      run_fault_trial(mix_seed(options.seed, 0x3000 + i), i,
                      scratch / format("fault-%03d", i), faults, failures);
    }
  }
  if (options.run_replay) {
    const int replay_trials = trials / 12 > 0 ? trials / 12 : 1;
    for (int i = 0; i < replay_trials; ++i) {
      if (options.verbose) std::fprintf(stderr, "selftest: replay %d\n", i);
      run_replay_trial(mix_seed(options.seed, 0x4000 + i), i,
                       scratch / format("replay-%03d", i), replay, failures);
    }
  }

  result.trials_run = invariants.trials + (detector.ran ? 1 : 0) +
                      faults.trials + replay.trials;
  result.trials_failed = static_cast<int>(failures.size());
  result.passed = failures.empty() &&
                  (!options.run_invariants || detector.detected);

  telemetry::JsonDict invariants_json;
  invariants_json.set("trials", invariants.trials)
      .set("failed", invariants.failed)
      .set("checks_run", static_cast<std::int64_t>(invariants.checks_run));
  telemetry::JsonDict detector_json;
  detector_json.set("ran", detector.ran)
      .set("detected", detector.detected)
      .set("invariant", detector.invariant)
      .set("first_violation_ns", detector.first_violation_ns)
      .set("shrunk_first_bad_ns", detector.shrunk_ns)
      .set("shrink_probes", detector.probes);
  telemetry::JsonDict faults_json;
  faults_json.set("trials", faults.trials)
      .set("failed", faults.failed)
      .set("syscalls_seen", static_cast<std::int64_t>(faults.syscalls_seen))
      .set("errors_injected",
           static_cast<std::int64_t>(faults.errors_injected))
      .set("wakeups_dropped",
           static_cast<std::int64_t>(faults.wakeups_dropped))
      .set("irq_bursts", static_cast<std::int64_t>(faults.irq_bursts))
      .set("artifact_checks", faults.artifact_checks);
  telemetry::JsonDict replay_json;
  replay_json.set("trials", replay.trials)
      .set("failed", replay.failed)
      .set("artifacts_compared", replay.artifacts_compared);

  std::string failures_json = "[";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) failures_json += ",";
    failures_json += failures[i].to_json().to_string();
  }
  failures_json += "]";

  telemetry::JsonDict report;
  report.set("seed", static_cast<std::int64_t>(options.seed))
      .set("trials", trials)
      .set("passed", result.passed)
      .set("trials_run", result.trials_run)
      .set("trials_failed", result.trials_failed)
      .set_raw("invariants", invariants_json.to_string())
      .set_raw("detector_validation", detector_json.to_string())
      .set_raw("faults", faults_json.to_string())
      .set_raw("replay", replay_json.to_string())
      .set_raw("failures", failures_json);
  result.report_json = report.to_string() + "\n";

  if (!options.keep_scratch && result.passed) fs::remove_all(scratch, ec);
  return result;
}

}  // namespace torpedo::selftest
