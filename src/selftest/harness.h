// Selftest harness: randomized trial campaigns over the three pillars.
//
// run_selftest() drives N seeded trials per pillar against miniature
// campaigns (small cores/seeds/rounds, one batch each):
//
//   invariants  the InvariantChecker audits every trial campaign; any
//               violation fails the trial and is shrunk — by re-running the
//               identical trial with single-check probes and bisecting — to
//               the first tick where the invariant broke. One
//               detector-validation trial deliberately breaks cgroup
//               charging (a test-only host switch) and REQUIRES the
//               charge-conservation oracle to catch it.
//   faults      a seeded FaultPlan perturbs the substrate; the campaign
//               must finish, its artifacts must parse, and torn (truncated)
//               copies of them must be rejected cleanly.
//   replay      a recorded mini campaign replayed through replay_workdir()
//               must regenerate every artifact byte-for-byte.
//
// Everything in the report is derived from simulated state, so the same
// (seed, trials) pair produces the same selftest_report.json byte-for-byte.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

namespace torpedo::selftest {

struct SelftestOptions {
  int trials = 25;          // per randomized pillar
  std::uint64_t seed = 1;   // base seed; trial i uses mix_seed(seed, i)
  // Scratch directory for fault/replay artifacts; empty == a
  // "torpedo-selftest" directory under the system temp dir.
  std::filesystem::path scratch;
  bool keep_scratch = false;
  // Pillar switches (all on by default).
  bool run_invariants = true;
  bool run_faults = true;
  bool run_replay = true;
  bool verbose = false;  // per-trial progress on stderr
};

struct SelftestResult {
  bool passed = false;
  int trials_run = 0;
  int trials_failed = 0;
  std::string report_json;  // selftest_report.json payload (deterministic)
};

SelftestResult run_selftest(const SelftestOptions& options);

}  // namespace torpedo::selftest
