#include "selftest/invariants.h"

#include <utility>

#include "telemetry/telemetry.h"
#include "util/strings.h"

namespace torpedo::selftest {

telemetry::JsonDict InvariantViolation::to_json() const {
  telemetry::JsonDict d;
  d.set("invariant", invariant)
      .set("subject", subject)
      .set("value", value)
      .set("expected", expected)
      .set("time_ns", time)
      .set("detail", detail);
  return d;
}

std::string invariant_violations_to_json(
    const std::vector<InvariantViolation>& violations) {
  std::string out = "[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) out += ",";
    out += violations[i].to_json().to_string();
  }
  out += "]";
  return out;
}

InvariantChecker::InvariantChecker(kernel::SimKernel& kernel,
                                   InvariantConfig config)
    : kernel_(kernel), config_(config) {
  prev_times_.resize(static_cast<std::size_t>(kernel_.host().num_cores()));
  telemetry::Registry& metrics = telemetry::global();
  ctr_checks_ = &metrics.counter("selftest.invariant_checks");
  ctr_violations_ = &metrics.counter("selftest.invariant_violations");
}

void InvariantChecker::install() {
  kernel_.host().set_tick_hook(
      [this](sim::Host& host) { on_tick(host); });
}

void InvariantChecker::uninstall() { kernel_.host().set_tick_hook(nullptr); }

void InvariantChecker::on_tick(sim::Host& host) {
  ++ticks_;
  if (config_.probe_at_ns >= 0) {
    if (probe_done_ || host.now() < config_.probe_at_ns) return;
    probe_done_ = true;
    check_now();
    throw ProbeStop{.violated = !violations_.empty(), .tick_ns = host.now()};
  }
  if (config_.check_every_ticks > 0 &&
      ticks_ % static_cast<std::uint64_t>(config_.check_every_ticks) != 0)
    return;
  check_now();
}

void InvariantChecker::check_now() {
  ++checks_;
  ctr_checks_->inc();
  const std::size_t before = violations_.size();
  check_core_conservation();
  check_charge_conservation();
  check_monotonicity();
  check_cpuset_containment();
  check_quota_accounting();
  if (config_.check_signal_bookkeeping) check_signal_bookkeeping();
  if (violations_.size() > before && first_violation_tick_ < 0)
    first_violation_tick_ = kernel_.host().now();
}

void InvariantChecker::report(std::string invariant, std::string subject,
                              double value, double expected,
                              std::string detail) {
  if (violations_.size() >= config_.max_violations) return;
  ctr_violations_->inc();
  violations_.push_back({.invariant = std::move(invariant),
                         .subject = std::move(subject),
                         .value = value,
                         .expected = expected,
                         .time = kernel_.host().now(),
                         .detail = std::move(detail)});
}

void InvariantChecker::check_core_conservation() {
  const sim::Host& host = kernel_.host();
  const Nanos now = host.now();
  for (int c = 0; c < host.num_cores(); ++c) {
    const Nanos total = host.core_times(c).total();
    if (total != now) {
      report("core-time-conservation", format("core%d", c),
             static_cast<double>(total), static_cast<double>(now),
             "sum of /proc/stat categories must equal the host clock");
    }
  }
}

void InvariantChecker::check_charge_conservation() {
  sim::Host& host = kernel_.host();
  // Root cgroup usage must equal all *charged* core time: every category
  // except IDLE and IOWAIT (nothing ran) and hard IRQ (by design charged to
  // nobody — it preempts outside any process context).
  Nanos charged = 0;
  for (int c = 0; c < host.num_cores(); ++c) {
    const sim::CoreTimes& t = host.core_times(c);
    charged += t.total() - t[sim::CpuCategory::kIdle] -
               t[sim::CpuCategory::kIoWait] - t[sim::CpuCategory::kIrq];
  }
  const Nanos root_usage = host.cgroups().root().cpu().usage;
  if (root_usage != charged) {
    report("charge-conservation", "/", static_cast<double>(root_usage),
           static_cast<double>(charged),
           "root cgroup usage must equal non-idle non-irq core time");
  }
}

void InvariantChecker::check_monotonicity() {
  const sim::Host& host = kernel_.host();
  for (int c = 0; c < host.num_cores(); ++c) {
    const sim::CoreTimes& cur = host.core_times(c);
    sim::CoreTimes& prev = prev_times_[static_cast<std::size_t>(c)];
    for (int i = 0; i < sim::kNumCpuCategories; ++i) {
      if (cur.ns[static_cast<std::size_t>(i)] <
          prev.ns[static_cast<std::size_t>(i)]) {
        report("proc-stat-monotonicity",
               format("core%d/%s", c,
                      std::string(sim::cpu_category_name(
                                      static_cast<sim::CpuCategory>(i)))
                          .c_str()),
               static_cast<double>(cur.ns[static_cast<std::size_t>(i)]),
               static_cast<double>(prev.ns[static_cast<std::size_t>(i)]),
               "/proc/stat counters never decrease");
      }
    }
    prev = cur;
  }
}

void InvariantChecker::check_cpuset_containment() {
  sim::Host& host = kernel_.host();
  host.for_each_task([&](const sim::Task& task) {
    // Blocked tasks migrate lazily at wake(); only a task the scheduler can
    // actually place on its core is a containment violation.
    if (task.state() != sim::TaskState::kRunnable) return;
    const cgroup::Cgroup* group = task.group();
    if (!group) return;
    if (!group->effective_cpuset().contains(task.core())) {
      report("cpuset-containment", group->path(),
             static_cast<double>(task.core()), -1,
             format("task %llu (%s) runnable on core %d outside cpuset",
                    static_cast<unsigned long long>(task.id()),
                    task.name().c_str(), task.core()));
    }
  });
}

void InvariantChecker::check_quota_accounting() {
  // Depth-first over the hierarchy: a bandwidth-limited group must never
  // have consumed more than its quota within the current window.
  std::vector<const cgroup::Cgroup*> stack = {&kernel_.host().cgroups().root()};
  while (!stack.empty()) {
    const cgroup::Cgroup* group = stack.back();
    stack.pop_back();
    for (const cgroup::Cgroup* child : group->children()) stack.push_back(child);
    const cgroup::CpuController& cpu = group->cpu();
    if (cpu.quota == cgroup::CpuController::kNoQuota) continue;
    if (cpu.window_usage > cpu.quota) {
      report("quota-accounting", group->path(),
             static_cast<double>(cpu.window_usage),
             static_cast<double>(cpu.quota),
             "window usage exceeds CFS bandwidth quota");
    }
  }
}

void InvariantChecker::check_signal_bookkeeping() {
  // Counter/trace pairing only holds while the trace ring hasn't evicted.
  kernel::KernelTrace& trace = kernel_.trace();
  if (trace.size() >= trace.capacity()) return;
  const Nanos now = kernel_.host().now();
  const std::size_t traced_cores =
      trace.count(kernel::TraceKind::kCoredump, 0, now + 1);
  if (traced_cores != kernel_.coredumps()) {
    report("signal-bookkeeping", "coredump",
           static_cast<double>(kernel_.coredumps()),
           static_cast<double>(traced_cores),
           "coredump counter must pair 1:1 with kCoredump trace events");
  }
  const std::size_t traced_mods =
      trace.count(kernel::TraceKind::kModprobe, 0, now + 1);
  if (traced_mods != kernel_.modprobe_execs()) {
    report("signal-bookkeeping", "modprobe",
           static_cast<double>(kernel_.modprobe_execs()),
           static_cast<double>(traced_mods),
           "modprobe counter must pair 1:1 with kModprobe trace events");
  }
}

}  // namespace torpedo::selftest
