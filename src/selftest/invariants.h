// Invariant oracles for the simulated substrate (selftest pillar 1).
//
// Torpedo's findings are only as trustworthy as the simulator: the oracle
// reads /proc/stat deltas and per-process samples, so a silent conservation
// bug in sim/cgroup accounting fabricates — or hides — violations. The
// InvariantChecker audits the substrate itself from a sim::Host tick hook,
// against properties a correct simulator satisfies by construction:
//
//   core-time-conservation   every core's CoreTimes categories sum to the
//                            host clock (each nanosecond lands in exactly
//                            one category of exactly one core)
//   charge-conservation      root cgroup usage equals all charged core time:
//                            everything except IDLE, IOWAIT and hard IRQ,
//                            which is by design charged to nobody
//   proc-stat-monotonicity   per-core /proc/stat categories never decrease
//   cpuset-containment       no runnable task sits on a core outside its
//                            cgroup's effective cpuset
//   quota-accounting         window_usage never exceeds quota for any
//                            bandwidth-limited group
//   signal-bookkeeping       SimKernel coredump/modprobe counters match the
//                            KernelTrace event counts (while the trace ring
//                            is unsaturated)
//
// Violations are reported as structured JSON, mirroring oracle findings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "telemetry/json.h"
#include "util/time.h"

namespace torpedo::telemetry {
class Counter;
}  // namespace torpedo::telemetry

namespace torpedo::selftest {

struct InvariantViolation {
  std::string invariant;
  std::string subject;  // "core3", "/docker/ctr-1", "coredump", ...
  double value = 0;
  double expected = 0;
  Nanos time = 0;
  std::string detail;

  telemetry::JsonDict to_json() const;
};

// Renders a JSON array of violation objects (like oracle violations_to_json).
std::string invariant_violations_to_json(
    const std::vector<InvariantViolation>& violations);

struct InvariantConfig {
  // Checking cadence in scheduling quanta. The full catalog walks every task
  // and cgroup, so trials check sparsely; the shrinker narrows a failure to
  // its first tick with single-check probes.
  int check_every_ticks = 8;
  // Stop recording after this many violations: a broken invariant usually
  // stays broken, and one precise report beats thousands of repeats.
  std::size_t max_violations = 16;
  // Probe mode (for the shrinker): skip periodic checks, run exactly one
  // check at the first tick with now() >= probe_at_ns, then throw ProbeStop.
  // -1 disables.
  Nanos probe_at_ns = -1;
  bool check_signal_bookkeeping = true;
};

// Thrown out of the tick hook in probe mode once the probe check has run.
struct ProbeStop {
  bool violated = false;
  Nanos tick_ns = 0;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(kernel::SimKernel& kernel,
                            InvariantConfig config = {});

  // Installs the checker as the host's tick hook (replacing any previous
  // hook). The checker must outlive the host or be uninstalled first.
  void install();
  void uninstall();

  // Runs the full catalog at the current simulated instant.
  void check_now();

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  // Host time of the first recorded violation; -1 if clean.
  Nanos first_violation_tick() const { return first_violation_tick_; }
  std::uint64_t checks_run() const { return checks_; }

 private:
  void on_tick(sim::Host& host);
  void check_core_conservation();
  void check_charge_conservation();
  void check_monotonicity();
  void check_cpuset_containment();
  void check_quota_accounting();
  void check_signal_bookkeeping();
  void report(std::string invariant, std::string subject, double value,
              double expected, std::string detail);

  kernel::SimKernel& kernel_;
  InvariantConfig config_;
  std::uint64_t ticks_ = 0;
  std::uint64_t checks_ = 0;
  bool probe_done_ = false;
  Nanos first_violation_tick_ = -1;
  std::vector<InvariantViolation> violations_;
  // Previous per-core snapshot for the monotonicity check.
  std::vector<sim::CoreTimes> prev_times_;

  telemetry::Counter* ctr_checks_ = nullptr;
  telemetry::Counter* ctr_violations_ = nullptr;
};

}  // namespace torpedo::selftest
