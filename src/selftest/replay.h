// Deterministic replay differ (selftest pillar 2).
//
// The substrate is deterministic by construction: same (seed, config), same
// artifacts, byte for byte. replay_workdir() turns that into a one-command
// answer to "is this finding reproducible?" — it re-executes the campaign
// recorded in a workdir's campaign.json manifest, regenerates the full
// artifact stack into a scratch directory, and diffs it against the
// original: report.txt and corpus.txt byte-wise, syscall_profile.json and
// every violation bundle.json field-by-field (so a drifted Observation or
// KernelTrace window names the exact field), plus a syscall-returns diff
// that executes each bundle's minimized program in two fresh stacks and
// compares the per-call records.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace torpedo::selftest {

struct ReplayDiff {
  std::string artifact;  // "report.txt", "violations/000/bundle.json", ...
  std::string path;      // field path or "line N"
  std::string original;
  std::string replayed;

  telemetry::JsonDict to_json() const;
};

struct ReplayResult {
  bool ran = false;        // manifest found and the campaign re-executed
  bool identical = false;  // ran and zero diffs
  std::string error;
  int artifacts_compared = 0;
  std::vector<ReplayDiff> diffs;

  telemetry::JsonDict to_json() const;
};

struct ReplayOptions {
  std::filesystem::path workdir;
  // Where the replayed artifacts land; empty == workdir/"replay".
  std::filesystem::path scratch;
  // Bundles whose minimized program gets the double-execution
  // syscall-returns diff (each one costs two fresh campaign stacks).
  int max_execution_diffs = 4;
  bool keep_scratch = false;
};

ReplayResult replay_workdir(const ReplayOptions& options);

// Structural diff of two rendered JSON objects. Nested raw values are
// re-parsed and recursed; mismatches are appended to `out` (stopping at
// `max_diffs` per call tree) with `prefix`-qualified field paths.
void diff_json(const std::string& artifact, const std::string& prefix,
               const std::string& a, const std::string& b,
               std::vector<ReplayDiff>& out, std::size_t max_diffs = 32);

}  // namespace torpedo::selftest
