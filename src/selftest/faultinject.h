// Seeded substrate fault injection (selftest pillar 3).
//
// A fuzzing campaign must degrade gracefully when the world misbehaves: the
// FaultInjector perturbs the substrate under seeded, reproducible control —
// syscall error injection by sysno/probability, IRQ clock jitter within the
// noise model's burst bounds, dropped kworker wakeups — and the harness
// asserts the campaign neither crashes nor hangs, and that its artifacts
// still parse. truncate_file() simulates torn partial writes in the workdir
// for the artifact-robustness half of the same property.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "kernel/kernel.h"
#include "telemetry/json.h"
#include "util/rng.h"
#include "util/time.h"

namespace torpedo::selftest {

struct FaultPlan {
  std::uint64_t seed = 1;
  // Per-syscall probability of failing with `error_errno` before the kernel
  // touches any state.
  double syscall_error_pct = 0;
  int error_errno = 4;  // EINTR
  // Empty == all syscalls eligible; otherwise only these sysnos.
  std::vector<int> target_sysnos;
  // Per-schedule_work probability of swallowing the kworker wakeup.
  double drop_wakeup_pct = 0;
  // Per-quantum probability of an out-of-band IRQ burst on a random core,
  // bounded like NoiseConfig's burst range so jitter stays within the noise
  // envelope the oracle already tolerates.
  double irq_burst_pct = 0;
  Nanos irq_burst_min = 50 * kMicrosecond;
  Nanos irq_burst_max = 400 * kMicrosecond;

  // Draws a randomized-but-bounded plan for one trial.
  static FaultPlan random(std::uint64_t seed);
  telemetry::JsonDict to_json() const;
};

class FaultInjector final : public kernel::SyscallFaultHook,
                            public sim::FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Wires the syscall tap, the wakeup-drop tap, and (when the plan jitters)
  // the host tick hook. The injector must outlive the kernel or be
  // uninstalled first.
  void install(kernel::SimKernel& kernel);
  void uninstall(kernel::SimKernel& kernel);

  int inject(const kernel::Process& proc, const kernel::SysReq& req) override;
  bool drop_kworker_wakeup(Nanos now) override;

  struct Stats {
    std::uint64_t syscalls_seen = 0;
    std::uint64_t errors_injected = 0;
    std::uint64_t wakeups_dropped = 0;
    std::uint64_t irq_bursts = 0;
  };
  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void on_tick(sim::Host& host);

  FaultPlan plan_;
  Rng rng_;
  Stats stats_;
};

// Truncates `file` to floor(size * keep_fraction) bytes — a torn write, as
// if the process died mid-flush. Returns the new size, or 0 if the file was
// missing.
std::uintmax_t truncate_file(const std::filesystem::path& file,
                             double keep_fraction);

}  // namespace torpedo::selftest
