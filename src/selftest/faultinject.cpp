#include "selftest/faultinject.h"

#include <algorithm>
#include <fstream>
#include <string>

#include "kernel/errno.h"
#include "telemetry/telemetry.h"

namespace torpedo::selftest {

namespace fs = std::filesystem;

FaultPlan FaultPlan::random(std::uint64_t seed) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = rng.next();
  plan.syscall_error_pct = 0.02 + 0.18 * rng.uniform();  // 2% .. 20%
  static constexpr int kErrnos[] = {
      kernel::EINTR_, kernel::EIO_,    kernel::ENOMEM_,
      kernel::EAGAIN_, kernel::ENOSPC_,
  };
  plan.error_errno = kErrnos[rng.below(std::size(kErrnos))];
  // Half the plans target every syscall; the rest pick a few sysnos so the
  // degradation path is exercised both broadly and surgically.
  if (rng.uniform() < 0.5) {
    const std::size_t n = 1 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i)
      plan.target_sysnos.push_back(static_cast<int>(rng.below(330)));
  }
  plan.drop_wakeup_pct = rng.uniform() < 0.5 ? 0.05 + 0.45 * rng.uniform() : 0;
  plan.irq_burst_pct = rng.uniform() < 0.5 ? 0.005 + 0.045 * rng.uniform() : 0;
  return plan;
}

telemetry::JsonDict FaultPlan::to_json() const {
  std::string sysnos = "[";
  for (std::size_t i = 0; i < target_sysnos.size(); ++i) {
    if (i > 0) sysnos += ",";
    sysnos += std::to_string(target_sysnos[i]);
  }
  sysnos += "]";
  telemetry::JsonDict d;
  d.set("seed", static_cast<std::int64_t>(seed))
      .set("syscall_error_pct", syscall_error_pct)
      .set("error_errno", error_errno)
      .set_raw("target_sysnos", sysnos)
      .set("drop_wakeup_pct", drop_wakeup_pct)
      .set("irq_burst_pct", irq_burst_pct)
      .set("irq_burst_min_ns", irq_burst_min)
      .set("irq_burst_max_ns", irq_burst_max);
  return d;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::install(kernel::SimKernel& kernel) {
  kernel.set_fault_hook(this);
  kernel.host().set_fault_hook(this);
  if (plan_.irq_burst_pct > 0) {
    kernel.host().set_tick_hook(
        [this](sim::Host& host) { on_tick(host); });
  }
}

void FaultInjector::uninstall(kernel::SimKernel& kernel) {
  kernel.set_fault_hook(nullptr);
  kernel.host().set_fault_hook(nullptr);
  if (plan_.irq_burst_pct > 0) kernel.host().set_tick_hook(nullptr);
}

int FaultInjector::inject(const kernel::Process& proc,
                          const kernel::SysReq& req) {
  (void)proc;
  ++stats_.syscalls_seen;
  if (plan_.syscall_error_pct <= 0) return 0;
  if (!plan_.target_sysnos.empty() &&
      std::find(plan_.target_sysnos.begin(), plan_.target_sysnos.end(),
                req.nr) == plan_.target_sysnos.end())
    return 0;
  if (rng_.uniform() >= plan_.syscall_error_pct) return 0;
  ++stats_.errors_injected;
  telemetry::global().counter("selftest.fault_syscall_errors").inc();
  return plan_.error_errno;
}

bool FaultInjector::drop_kworker_wakeup(Nanos now) {
  (void)now;
  if (plan_.drop_wakeup_pct <= 0) return false;
  if (rng_.uniform() >= plan_.drop_wakeup_pct) return false;
  ++stats_.wakeups_dropped;
  telemetry::global().counter("selftest.fault_dropped_wakeups").inc();
  return true;
}

void FaultInjector::on_tick(sim::Host& host) {
  if (rng_.uniform() >= plan_.irq_burst_pct) return;
  ++stats_.irq_bursts;
  const int core = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(host.num_cores())));
  const Nanos ns = rng_.range(plan_.irq_burst_min, plan_.irq_burst_max);
  host.raise_irq(core, ns);
}

std::uintmax_t truncate_file(const fs::path& file, double keep_fraction) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(file, ec);
  if (ec) return 0;
  const auto keep = static_cast<std::uintmax_t>(
      static_cast<double>(size) * std::clamp(keep_fraction, 0.0, 1.0));
  fs::resize_file(file, keep, ec);
  return ec ? size : keep;
}

}  // namespace torpedo::selftest
