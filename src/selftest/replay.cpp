#include "selftest/replay.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/campaign.h"
#include "core/minimize.h"
#include "core/provenance.h"
#include "core/sharded.h"
#include "core/workdir.h"
#include "exec/executor.h"
#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "fleet/coordinator.h"
#include "fleet/manifest.h"
#include "telemetry/timeseries.h"
#include "triage/cluster.h"
#include "prog/program.h"
#include "kernel/syscalls.h"
#include "util/strings.h"
#include "runtime/runtime.h"

namespace torpedo::selftest {

namespace fs = std::filesystem;

namespace {

std::optional<std::string> slurp(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string clip(std::string_view s, std::size_t limit = 96) {
  if (s.size() <= limit) return std::string(s);
  return std::string(s.substr(0, limit)) + "...";
}

std::string render_value(const telemetry::JsonValue& v) {
  using Kind = telemetry::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return v.boolean ? "true" : "false";
    case Kind::kNumber:
      return v.is_integer ? std::to_string(v.integer)
                          : format("%.17g", v.number);
    case Kind::kString:
      return clip(v.text);
    case Kind::kRaw:
      return clip(v.text);
  }
  return "?";
}

// Byte-compare two files; on mismatch record the first differing line.
void diff_bytes(const std::string& artifact, const fs::path& original,
                const fs::path& replayed, std::vector<ReplayDiff>& out) {
  const auto a = slurp(original);
  const auto b = slurp(replayed);
  if (!a || !b) {
    if (a.has_value() != b.has_value())
      out.push_back({artifact, "(file)", a ? "present" : "missing",
                     b ? "present" : "missing"});
    return;
  }
  if (*a == *b) return;
  const auto lines_a = split(*a, '\n');
  const auto lines_b = split(*b, '\n');
  const std::size_t n = std::max(lines_a.size(), lines_b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view la = i < lines_a.size() ? lines_a[i] : "<eof>";
    const std::string_view lb = i < lines_b.size() ? lines_b[i] : "<eof>";
    if (la != lb) {
      out.push_back(
          {artifact, format("line %zu", i + 1), clip(la), clip(lb)});
      return;
    }
  }
  out.push_back({artifact, "(bytes)", format("%zu bytes", a->size()),
                 format("%zu bytes", b->size())});
}

// Sorted violations/NNN directories under `workdir`.
std::vector<fs::path> bundle_dirs(const fs::path& workdir) {
  std::vector<fs::path> dirs;
  const fs::path violations = workdir / "violations";
  if (!fs::exists(violations)) return dirs;
  for (const auto& entry : fs::directory_iterator(violations))
    if (entry.is_directory()) dirs.push_back(entry.path());
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

}  // namespace

telemetry::JsonDict ReplayDiff::to_json() const {
  telemetry::JsonDict d;
  d.set("artifact", artifact)
      .set("path", path)
      .set("original", original)
      .set("replayed", replayed);
  return d;
}

telemetry::JsonDict ReplayResult::to_json() const {
  std::string rendered = "[";
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (i > 0) rendered += ",";
    rendered += diffs[i].to_json().to_string();
  }
  rendered += "]";
  telemetry::JsonDict d;
  d.set("ran", ran)
      .set("identical", identical)
      .set("error", error)
      .set("artifacts_compared", artifacts_compared)
      .set("diff_count", static_cast<std::int64_t>(diffs.size()))
      .set_raw("diffs", rendered);
  return d;
}

void diff_json(const std::string& artifact, const std::string& prefix,
               const std::string& a, const std::string& b,
               std::vector<ReplayDiff>& out, std::size_t max_diffs) {
  if (out.size() >= max_diffs) return;
  const auto obj_a = telemetry::parse_json_object(trim(a));
  const auto obj_b = telemetry::parse_json_object(trim(b));
  if (!obj_a || !obj_b) {
    if (trim(a) != trim(b))
      out.push_back({artifact, prefix.empty() ? "(raw)" : prefix, clip(a),
                     clip(b)});
    return;
  }
  for (const auto& [key, va] : *obj_a) {
    if (out.size() >= max_diffs) return;
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    auto it = obj_b->find(key);
    if (it == obj_b->end()) {
      out.push_back({artifact, path, render_value(va), "<missing>"});
      continue;
    }
    const telemetry::JsonValue& vb = it->second;
    if (va.kind != vb.kind) {
      out.push_back({artifact, path, render_value(va), render_value(vb)});
      continue;
    }
    using Kind = telemetry::JsonValue::Kind;
    bool equal = true;
    switch (va.kind) {
      case Kind::kNull:
        break;
      case Kind::kBool:
        equal = va.boolean == vb.boolean;
        break;
      case Kind::kNumber:
        equal = va.is_integer == vb.is_integer &&
                (va.is_integer ? va.integer == vb.integer
                               : va.number == vb.number);
        break;
      case Kind::kString:
        equal = va.text == vb.text;
        break;
      case Kind::kRaw: {
        if (va.text == vb.text) break;
        // Nested object: recurse for a field-precise path. Arrays of
        // objects (trace windows, violations, top rows) diff element-wise.
        if (starts_with(trim(va.text), "{")) {
          diff_json(artifact, path, va.text, vb.text, out, max_diffs);
          break;
        }
        const auto arr_a = telemetry::parse_json_array_of_objects(trim(va.text));
        const auto arr_b = telemetry::parse_json_array_of_objects(trim(vb.text));
        if (arr_a && arr_b) {
          if (arr_a->size() != arr_b->size()) {
            out.push_back({artifact, path + ".length",
                           std::to_string(arr_a->size()),
                           std::to_string(arr_b->size())});
            break;
          }
          for (std::size_t i = 0; i < arr_a->size(); ++i) {
            if (out.size() >= max_diffs) return;
            // Re-render both elements through JsonDict? Elements are parsed
            // maps; compare field-by-field directly via a recursive call on
            // the raw slices is unavailable, so compare values in place.
            for (const auto& [ekey, eva] : (*arr_a)[i]) {
              const std::string epath =
                  path + format("[%zu].", i) + ekey;
              auto eit = (*arr_b)[i].find(ekey);
              if (eit == (*arr_b)[i].end()) {
                out.push_back(
                    {artifact, epath, render_value(eva), "<missing>"});
                continue;
              }
              if (render_value(eva) != render_value(eit->second))
                out.push_back({artifact, epath, render_value(eva),
                               render_value(eit->second)});
              if (out.size() >= max_diffs) return;
            }
          }
          break;
        }
        out.push_back({artifact, path, render_value(va), render_value(vb)});
        break;
      }
    }
    if (!equal)
      out.push_back({artifact, path, render_value(va), render_value(vb)});
  }
  for (const auto& [key, vb] : *obj_b) {
    if (out.size() >= max_diffs) return;
    if (obj_a->find(key) == obj_a->end()) {
      const std::string path = prefix.empty() ? key : prefix + "." + key;
      out.push_back({artifact, path, "<missing>", render_value(vb)});
    }
  }
}

namespace {

// Re-executes the recorded campaign and writes the artifact stack (the same
// files `torpedo run --workdir` writes) into `scratch`.
void regenerate(const core::CampaignManifest& manifest,
                const fs::path& workdir, const fs::path& scratch) {
  // Fleet merged workdir: re-run the whole fleet from the recorded
  // experiment matrix. Fork mode (empty worker_binary) keeps the replay
  // independent of any binary path; the coordinator's merge then writes the
  // same artifact stack into the scratch root.
  if (manifest.fleet_workers > 0) {
    auto fleet_manifest = fleet::load_manifest(workdir / "fleet.json");
    if (!fleet_manifest)
      throw std::runtime_error("fleet workdir without fleet.json: " +
                               workdir.string());
    fleet::FleetConfig fleet_config;
    fleet_config.manifest = std::move(*fleet_manifest);
    fleet_config.workdir = scratch;
    fleet::Coordinator coordinator(std::move(fleet_config));
    const fleet::Coordinator::Result fleet_result = coordinator.run();
    if (!fleet_result.ok)
      throw std::runtime_error(
          format("fleet replay incomplete: %d/%d workers completed",
                 fleet_result.completed,
                 fleet_result.completed + fleet_result.failed));
    return;
  }
  const core::CampaignConfig config = manifest.to_config();
  core::CampaignReport report;
  feedback::SyscallProfile profile;
  feedback::SyscallProfile* previous = feedback::syscall_profile();
  feedback::set_syscall_profile(&profile);
  feedback::MutationEfficacy efficacy;
  feedback::MutationEfficacy* previous_efficacy =
      feedback::mutation_efficacy();
  feedback::set_mutation_efficacy(&efficacy);
  // One recorder per shard, pre-created so the shard-start hook (which runs
  // on the shard's worker thread) only hands out stable pointers.
  std::vector<std::unique_ptr<telemetry::TimeSeriesRecorder>> recorders;
  try {
    if (manifest.shards > 1) {
      core::ShardedConfig sharded_config;
      sharded_config.base = config;
      sharded_config.shards = manifest.shards;
      sharded_config.corpus_sync = manifest.corpus_sync;
      core::ShardedCampaign sharded(sharded_config);
      for (int s = 0; s < manifest.shards; ++s) {
        telemetry::TimeSeriesRecorder::Config ts_config;
        ts_config.shard = s;
        recorders.push_back(
            std::make_unique<telemetry::TimeSeriesRecorder>(ts_config));
      }
      sharded.set_shard_start_hook([&](int shard, core::Campaign& campaign) {
        campaign.set_timeseries(
            recorders[static_cast<std::size_t>(shard)].get());
      });
      if (!manifest.seeds_dir.empty())
        sharded.set_seeds(core::load_seed_files(manifest.seeds_dir));
      report = sharded.run();
      core::save_corpus(scratch / "corpus.txt", sharded.merged_corpus());
    } else {
      core::Campaign campaign(config);
      recorders.push_back(std::make_unique<telemetry::TimeSeriesRecorder>());
      campaign.set_timeseries(recorders.back().get());
      if (!manifest.seeds_dir.empty())
        campaign.load_seeds(core::load_seed_files(manifest.seeds_dir));
      else
        campaign.load_default_seeds();
      report = campaign.run();
      core::save_corpus(scratch / "corpus.txt", campaign.corpus());
    }
    core::save_report(scratch / "report.txt", report);
    triage::save_clusters(
        scratch / "clusters.json",
        triage::cluster_report(report,
                               runtime::runtime_name(config.runtime)));
    core::write_violation_bundles(scratch, report);
    std::vector<const telemetry::TimeSeriesRecorder*> recorder_ptrs;
    for (const auto& r : recorders) recorder_ptrs.push_back(r.get());
    core::save_timeseries(scratch / "timeseries.jsonl", recorder_ptrs);
    core::save_mutation_efficacy(scratch / "mutation_efficacy.json",
                                 efficacy);
    std::ofstream out(scratch / "syscall_profile.json", std::ios::trunc);
    if (out) out << profile.to_json(&kernel::sysno_name) << "\n";
  } catch (...) {
    feedback::set_syscall_profile(previous);
    feedback::set_mutation_efficacy(previous_efficacy);
    throw;
  }
  feedback::set_syscall_profile(previous);
  feedback::set_mutation_efficacy(previous_efficacy);
}

// Runs `program` once on a fresh campaign stack and returns the per-call
// records of the last iteration.
std::vector<exec::CallRecord> run_once(const core::CampaignConfig& config,
                                       const prog::Program& program) {
  core::Campaign campaign(config);
  core::SingleRunner runner(campaign.observer(), campaign.cpu_oracle());
  (void)runner.violations(program);
  return runner.last_round().stats[0].last_iteration;
}

// Syscall-returns diff: the same minimized program executed in two fresh
// stacks must produce identical per-call (nr, ret, errno) records.
void diff_execution(const std::string& artifact,
                    const core::CampaignConfig& config,
                    const prog::Program& program,
                    std::vector<ReplayDiff>& out) {
  const std::vector<exec::CallRecord> first = run_once(config, program);
  const std::vector<exec::CallRecord> second = run_once(config, program);
  if (first.size() != second.size()) {
    out.push_back({artifact, "calls.length", std::to_string(first.size()),
                   std::to_string(second.size())});
    return;
  }
  for (std::size_t i = 0; i < first.size(); ++i) {
    const exec::CallRecord& a = first[i];
    const exec::CallRecord& b = second[i];
    if (a.nr != b.nr || a.ret != b.ret || a.err != b.err) {
      out.push_back(
          {artifact, format("calls[%zu]", i),
           format("nr=%d ret=%lld err=%d", a.nr,
                  static_cast<long long>(a.ret), a.err),
           format("nr=%d ret=%lld err=%d", b.nr,
                  static_cast<long long>(b.ret), b.err)});
    }
  }
}

}  // namespace

ReplayResult replay_workdir(const ReplayOptions& options) {
  ReplayResult result;
  const auto manifest =
      core::load_campaign_manifest(options.workdir / "campaign.json");
  if (!manifest) {
    result.error = "no campaign.json manifest in " + options.workdir.string() +
                   " (record one with `torpedo run --workdir`)";
    return result;
  }

  const fs::path scratch =
      options.scratch.empty() ? options.workdir / "replay" : options.scratch;
  std::error_code ec;
  fs::remove_all(scratch, ec);
  fs::create_directories(scratch);

  try {
    regenerate(*manifest, options.workdir, scratch);
  } catch (const std::exception& e) {
    result.error = std::string("replay execution failed: ") + e.what();
    return result;
  }
  result.ran = true;

  diff_bytes("report.txt", options.workdir / "report.txt",
             scratch / "report.txt", result.diffs);
  diff_bytes("corpus.txt", options.workdir / "corpus.txt",
             scratch / "corpus.txt", result.diffs);
  result.artifacts_compared = 2;

  {
    const auto a = slurp(options.workdir / "syscall_profile.json");
    const auto b = slurp(scratch / "syscall_profile.json");
    if (a && b) {
      diff_json("syscall_profile.json", "", *a, *b, result.diffs);
      ++result.artifacts_compared;
    }
  }

  // Introspection artifacts: only compared when the recorded workdir has
  // them (workdirs recorded before campaign introspection existed don't).
  if (fs::exists(options.workdir / "timeseries.jsonl")) {
    diff_bytes("timeseries.jsonl", options.workdir / "timeseries.jsonl",
               scratch / "timeseries.jsonl", result.diffs);
    ++result.artifacts_compared;
  }
  {
    const auto a = slurp(options.workdir / "mutation_efficacy.json");
    const auto b = slurp(scratch / "mutation_efficacy.json");
    if (a && b) {
      diff_json("mutation_efficacy.json", "", *a, *b, result.diffs);
      ++result.artifacts_compared;
    }
  }
  // Triage clusters: compared when the recorded workdir has them (workdirs
  // recorded before the triage engine existed don't).
  if (fs::exists(options.workdir / "clusters.json")) {
    const auto a = slurp(options.workdir / "clusters.json");
    const auto b = slurp(scratch / "clusters.json");
    if (a && b) {
      diff_json("clusters.json", "", *a, *b, result.diffs);
      ++result.artifacts_compared;
    } else {
      result.diffs.push_back({"clusters.json", "(file)",
                              a ? "present" : "missing",
                              b ? "present" : "missing"});
    }
  }

  const std::vector<fs::path> original_bundles = bundle_dirs(options.workdir);
  const std::vector<fs::path> replayed_bundles = bundle_dirs(scratch);
  if (original_bundles.size() != replayed_bundles.size()) {
    result.diffs.push_back({"violations", "bundle_count",
                            std::to_string(original_bundles.size()),
                            std::to_string(replayed_bundles.size())});
  }
  const std::size_t bundles =
      std::min(original_bundles.size(), replayed_bundles.size());
  const core::CampaignConfig exec_config = manifest->to_config();
  int execution_diffs = 0;
  for (std::size_t i = 0; i < bundles; ++i) {
    const std::string name =
        "violations/" + original_bundles[i].filename().string();
    const auto a = slurp(original_bundles[i] / "bundle.json");
    const auto b = slurp(replayed_bundles[i] / "bundle.json");
    if (a && b) diff_json(name + "/bundle.json", "", *a, *b, result.diffs);
    diff_bytes(name + "/program.prog", original_bundles[i] / "program.prog",
               replayed_bundles[i] / "program.prog", result.diffs);
    ++result.artifacts_compared;

    if (execution_diffs < options.max_execution_diffs) {
      if (const auto text = slurp(original_bundles[i] / "program.prog")) {
        if (auto program = prog::Program::parse(*text);
            program && !program->empty()) {
          ++execution_diffs;
          diff_execution(name + "/program.prog", exec_config, *program,
                         result.diffs);
        }
      }
    }
  }

  result.identical = result.diffs.empty();
  if (!options.keep_scratch && result.identical) fs::remove_all(scratch, ec);
  return result;
}

}  // namespace torpedo::selftest
