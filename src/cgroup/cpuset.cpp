#include "cgroup/cpuset.h"

#include "util/check.h"
#include "util/strings.h"

namespace torpedo::cgroup {

CpuSet CpuSet::all(int num_cores) {
  TORPEDO_CHECK(num_cores >= 0 && num_cores <= 64);
  CpuSet s;
  if (num_cores == 64)
    s.mask_ = ~0ULL;
  else
    s.mask_ = (1ULL << num_cores) - 1;
  return s;
}

CpuSet CpuSet::single(int core) {
  CpuSet s;
  s.add(core);
  return s;
}

CpuSet CpuSet::of(std::initializer_list<int> cores) {
  CpuSet s;
  for (int c : cores) s.add(c);
  return s;
}

std::optional<CpuSet> CpuSet::parse(std::string_view spec) {
  CpuSet out;
  if (trim(spec).empty()) return std::nullopt;
  for (auto part : split(spec, ',')) {
    part = trim(part);
    auto dash = part.find('-');
    if (dash == std::string_view::npos) {
      auto v = parse_u64(part);
      if (!v || *v >= 64) return std::nullopt;
      out.add(static_cast<int>(*v));
    } else {
      auto lo = parse_u64(trim(part.substr(0, dash)));
      auto hi = parse_u64(trim(part.substr(dash + 1)));
      if (!lo || !hi || *lo > *hi || *hi >= 64) return std::nullopt;
      for (std::uint64_t c = *lo; c <= *hi; ++c)
        out.add(static_cast<int>(c));
    }
  }
  return out;
}

void CpuSet::add(int core) {
  TORPEDO_CHECK(core >= 0 && core < 64);
  mask_ |= 1ULL << core;
}

void CpuSet::remove(int core) {
  TORPEDO_CHECK(core >= 0 && core < 64);
  mask_ &= ~(1ULL << core);
}

bool CpuSet::contains(int core) const {
  if (core < 0 || core >= 64) return false;
  return (mask_ >> core) & 1;
}

int CpuSet::count() const { return __builtin_popcountll(mask_); }

int CpuSet::first() const {
  if (mask_ == 0) return -1;
  return __builtin_ctzll(mask_);
}

std::vector<int> CpuSet::cores() const {
  std::vector<int> out;
  for (int c = 0; c < 64; ++c)
    if (contains(c)) out.push_back(c);
  return out;
}

std::string CpuSet::to_string() const {
  std::string out;
  int run_start = -1;
  auto flush = [&](int run_end) {
    if (run_start < 0) return;
    if (!out.empty()) out += ',';
    out += std::to_string(run_start);
    if (run_end > run_start) {
      out += '-';
      out += std::to_string(run_end);
    }
    run_start = -1;
  };
  for (int c = 0; c < 64; ++c) {
    if (contains(c)) {
      if (run_start < 0) run_start = c;
    } else if (run_start >= 0) {
      flush(c - 1);
    }
  }
  flush(63);
  return out;
}

CpuSet CpuSet::intersect(const CpuSet& other) const {
  CpuSet s;
  s.mask_ = mask_ & other.mask_;
  return s;
}

}  // namespace torpedo::cgroup
