// Control groups: hierarchical resource accounting and limiting.
//
// This models the subset of cgroup-v1 behaviour containers rely on (Table 2.1
// of the paper): the cpu controller (shares + CFS bandwidth quota), cpuset,
// memory, and blkio. Crucially it also models the accounting *gap* the paper
// exploits: work executed by kernel threads (kworkers, usermodehelper
// children, ksoftirqd) and system daemons lands in the root cgroup or a
// daemon cgroup, never in the originating container's group. The simulator
// routes every nanosecond of CPU through Cgroup::charge_cpu, so "out of
// band" utilization is exactly the utilization missing from the container
// group when compared against per-core counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cgroup/cpuset.h"
#include "util/time.h"

namespace torpedo::cgroup {

// CFS bandwidth control state for one group (cpu.cfs_quota_us semantics).
struct CpuController {
  std::uint64_t shares = 1024;
  // Quota per period; kNoQuota means unlimited.
  static constexpr Nanos kNoQuota = -1;
  Nanos quota = kNoQuota;
  Nanos period = 100 * kMillisecond;

  // Accounting.
  Nanos usage = 0;  // total charged CPU time, ever

  // Bandwidth-window state.
  Nanos window_start = 0;
  Nanos window_usage = 0;
  std::uint64_t nr_periods = 0;
  std::uint64_t nr_throttled = 0;
};

struct MemoryController {
  static constexpr std::int64_t kNoLimit = -1;
  std::int64_t limit_bytes = kNoLimit;
  std::int64_t usage_bytes = 0;
  std::int64_t max_usage_bytes = 0;
  std::uint64_t failcnt = 0;
};

struct BlkioController {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t ios = 0;
};

class Hierarchy;

class Cgroup {
 public:
  Cgroup(const Cgroup&) = delete;
  Cgroup& operator=(const Cgroup&) = delete;

  const std::string& name() const { return name_; }
  std::string path() const;
  Cgroup* parent() const { return parent_; }
  bool is_root() const { return parent_ == nullptr; }

  CpuController& cpu() { return cpu_; }
  const CpuController& cpu() const { return cpu_; }
  MemoryController& memory() { return memory_; }
  const MemoryController& memory() const { return memory_; }
  BlkioController& blkio() { return blkio_; }
  const BlkioController& blkio() const { return blkio_; }

  // Effective cpuset: own set intersected with all ancestors'. An empty own
  // set means "inherit".
  void set_cpuset(const CpuSet& cpus) { cpuset_ = cpus; }
  CpuSet effective_cpuset() const;

  // Charge `ns` of CPU time to this group and all ancestors.
  void charge_cpu(Nanos ns);

  // CFS bandwidth: how much of `want` this group (considering ancestors) may
  // run starting at `now` before hitting its quota. Returns 0 if throttled.
  Nanos cpu_runtime_available(Nanos now, Nanos want);

  // Consume bandwidth (call after the time actually ran). Also charges usage.
  void consume_cpu(Nanos now, Nanos ns);

  // Time at which the nearest exhausted ancestor's bandwidth window refills.
  Nanos next_refill(Nanos now) const;

  bool charge_memory(std::int64_t bytes);  // false (and failcnt++) on limit
  void uncharge_memory(std::int64_t bytes);

  void charge_blkio_read(std::uint64_t bytes);
  void charge_blkio_write(std::uint64_t bytes);

  const std::vector<Cgroup*>& children() const { return children_view_; }

 private:
  friend class Hierarchy;
  Cgroup(std::string name, Cgroup* parent);

  // Rolls the bandwidth window forward to the period containing `now`.
  void refresh_window(Nanos now);

  std::string name_;
  Cgroup* parent_ = nullptr;
  std::vector<std::unique_ptr<Cgroup>> children_;
  std::vector<Cgroup*> children_view_;

  CpuSet cpuset_;  // empty == inherit
  CpuController cpu_;
  MemoryController memory_;
  BlkioController blkio_;
};

// Owns the tree. The root group defines no restrictions, like the kernel's.
class Hierarchy {
 public:
  explicit Hierarchy(int num_cores);

  Cgroup& root() { return *root_; }
  const Cgroup& root() const { return *root_; }

  Cgroup& create(Cgroup& parent, const std::string& name);
  // Finds by absolute path ("/docker/<id>"); nullptr if absent.
  Cgroup* find(const std::string& path);
  void remove(Cgroup& group);  // group must have no children

  int num_cores() const { return num_cores_; }

  // cgtop-style flat listing of (path, cpu usage ns), depth-first.
  std::vector<std::pair<std::string, Nanos>> cpu_usage_by_group() const;

 private:
  int num_cores_;
  std::unique_ptr<Cgroup> root_;
};

}  // namespace torpedo::cgroup
