#include "cgroup/cgroup.h"

#include <algorithm>

#include "util/check.h"

namespace torpedo::cgroup {

Cgroup::Cgroup(std::string name, Cgroup* parent)
    : name_(std::move(name)), parent_(parent) {}

std::string Cgroup::path() const {
  if (is_root()) return "/";
  std::string p = parent_->path();
  if (p.back() != '/') p += '/';
  p += name_;
  return p;
}

CpuSet Cgroup::effective_cpuset() const {
  CpuSet inherited =
      parent_ ? parent_->effective_cpuset() : CpuSet::all(64);
  if (cpuset_.empty()) return inherited;
  return cpuset_.intersect(inherited);
}

void Cgroup::charge_cpu(Nanos ns) {
  for (Cgroup* g = this; g != nullptr; g = g->parent_) g->cpu_.usage += ns;
}

void Cgroup::refresh_window(Nanos now) {
  if (cpu_.quota == CpuController::kNoQuota) return;
  if (now < cpu_.window_start + cpu_.period) return;
  const std::uint64_t periods_passed = static_cast<std::uint64_t>(
      (now - cpu_.window_start) / cpu_.period);
  cpu_.window_start += static_cast<Nanos>(periods_passed) * cpu_.period;
  cpu_.window_usage = 0;
  cpu_.nr_periods += periods_passed;
}

Nanos Cgroup::cpu_runtime_available(Nanos now, Nanos want) {
  TORPEDO_CHECK(want >= 0);
  Nanos allowed = want;
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    if (g->cpu_.quota == CpuController::kNoQuota) continue;
    g->refresh_window(now);
    const Nanos remaining = std::max<Nanos>(
        0, g->cpu_.quota - g->cpu_.window_usage);
    // Never run past the end of the current window: the quota refills there.
    const Nanos to_window_end = g->cpu_.window_start + g->cpu_.period - now;
    allowed = std::min(allowed, std::min(remaining, to_window_end));
  }
  return std::max<Nanos>(0, allowed);
}

void Cgroup::consume_cpu(Nanos now, Nanos ns) {
  TORPEDO_CHECK(ns >= 0);
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    g->cpu_.usage += ns;
    if (g->cpu_.quota == CpuController::kNoQuota) continue;
    g->refresh_window(now);
    g->cpu_.window_usage += ns;
    if (g->cpu_.window_usage >= g->cpu_.quota) g->cpu_.nr_throttled++;
  }
}

Nanos Cgroup::next_refill(Nanos now) const {
  Nanos refill = now;
  for (const Cgroup* g = this; g != nullptr; g = g->parent_) {
    if (g->cpu_.quota == CpuController::kNoQuota) continue;
    // Window state may be stale; compute the window containing `now`.
    Nanos start = g->cpu_.window_start;
    if (now >= start + g->cpu_.period) {
      const std::int64_t periods = (now - start) / g->cpu_.period;
      start += periods * g->cpu_.period;
      // A rolled-over window has a fresh quota; no wait needed from it.
      continue;
    }
    if (g->cpu_.window_usage >= g->cpu_.quota)
      refill = std::max(refill, start + g->cpu_.period);
  }
  return refill;
}

bool Cgroup::charge_memory(std::int64_t bytes) {
  TORPEDO_CHECK(bytes >= 0);
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    if (g->memory_.limit_bytes != MemoryController::kNoLimit &&
        g->memory_.usage_bytes + bytes > g->memory_.limit_bytes) {
      g->memory_.failcnt++;
      return false;
    }
  }
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    g->memory_.usage_bytes += bytes;
    g->memory_.max_usage_bytes =
        std::max(g->memory_.max_usage_bytes, g->memory_.usage_bytes);
  }
  return true;
}

void Cgroup::uncharge_memory(std::int64_t bytes) {
  TORPEDO_CHECK(bytes >= 0);
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    g->memory_.usage_bytes = std::max<std::int64_t>(
        0, g->memory_.usage_bytes - bytes);
  }
}

void Cgroup::charge_blkio_read(std::uint64_t bytes) {
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    g->blkio_.bytes_read += bytes;
    g->blkio_.ios++;
  }
}

void Cgroup::charge_blkio_write(std::uint64_t bytes) {
  for (Cgroup* g = this; g != nullptr; g = g->parent_) {
    g->blkio_.bytes_written += bytes;
    g->blkio_.ios++;
  }
}

Hierarchy::Hierarchy(int num_cores) : num_cores_(num_cores) {
  TORPEDO_CHECK(num_cores > 0 && num_cores <= 64);
  root_ = std::unique_ptr<Cgroup>(new Cgroup("", nullptr));
  root_->set_cpuset(CpuSet::all(num_cores));
}

Cgroup& Hierarchy::create(Cgroup& parent, const std::string& name) {
  TORPEDO_CHECK_MSG(!name.empty() && name.find('/') == std::string::npos,
                    "cgroup name must be a single non-empty path segment");
  for (Cgroup* child : parent.children_view_)
    TORPEDO_CHECK_MSG(child->name() != name, "duplicate cgroup name");
  auto group = std::unique_ptr<Cgroup>(new Cgroup(name, &parent));
  Cgroup* raw = group.get();
  parent.children_.push_back(std::move(group));
  parent.children_view_.push_back(raw);
  return *raw;
}

Cgroup* Hierarchy::find(const std::string& path) {
  if (path.empty() || path[0] != '/') return nullptr;
  Cgroup* cur = root_.get();
  std::size_t pos = 1;
  while (pos < path.size()) {
    std::size_t next = path.find('/', pos);
    if (next == std::string::npos) next = path.size();
    const std::string_view segment(path.data() + pos, next - pos);
    Cgroup* found = nullptr;
    for (Cgroup* child : cur->children_view_) {
      if (child->name() == segment) {
        found = child;
        break;
      }
    }
    if (!found) return nullptr;
    cur = found;
    pos = next + 1;
  }
  return cur;
}

void Hierarchy::remove(Cgroup& group) {
  TORPEDO_CHECK_MSG(!group.is_root(), "cannot remove root cgroup");
  TORPEDO_CHECK_MSG(group.children_view_.empty(),
                    "cannot remove cgroup with children");
  Cgroup* parent = group.parent();
  auto& view = parent->children_view_;
  view.erase(std::find(view.begin(), view.end(), &group));
  auto& owned = parent->children_;
  owned.erase(std::find_if(owned.begin(), owned.end(),
                           [&](const auto& p) { return p.get() == &group; }));
}

std::vector<std::pair<std::string, Nanos>> Hierarchy::cpu_usage_by_group()
    const {
  std::vector<std::pair<std::string, Nanos>> out;
  // Depth-first, explicit stack to avoid recursion limits on deep trees.
  std::vector<const Cgroup*> stack{root_.get()};
  while (!stack.empty()) {
    const Cgroup* g = stack.back();
    stack.pop_back();
    out.emplace_back(g->path(), g->cpu().usage);
    const auto& kids = g->children();
    for (auto it = kids.rbegin(); it != kids.rend(); ++it)
      stack.push_back(*it);
  }
  return out;
}

}  // namespace torpedo::cgroup
