// CPU set: which physical cores a task/cgroup may be scheduled on.
//
// Mirrors the cpuset cgroup controller and Docker's --cpuset-cpus list syntax
// ("0-2,7"). The simulated host has at most 64 logical cores, which covers
// the paper's 12-thread testbed with room to spare.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace torpedo::cgroup {

class CpuSet {
 public:
  CpuSet() = default;

  static CpuSet all(int num_cores);
  static CpuSet single(int core);
  static CpuSet of(std::initializer_list<int> cores);

  // Parses Docker's --cpuset-cpus syntax, e.g. "0-2,7". Returns nullopt on
  // malformed input.
  static std::optional<CpuSet> parse(std::string_view spec);

  void add(int core);
  void remove(int core);
  bool contains(int core) const;
  bool empty() const { return mask_ == 0; }
  int count() const;
  int first() const;  // lowest set core, -1 if empty

  std::vector<int> cores() const;
  std::string to_string() const;  // canonical "0-2,7" form

  CpuSet intersect(const CpuSet& other) const;

  friend bool operator==(const CpuSet&, const CpuSet&) = default;

 private:
  std::uint64_t mask_ = 0;
};

}  // namespace torpedo::cgroup
