// Sharded parallel campaigns: K independent campaign stacks on K threads.
//
// The paper's throughput ceiling is round-serialized execution — every round
// is a synchronized measurement window, so one campaign can never use more
// than one host thread no matter how many cores exist (§3.4, §4.2). Kernel
// fuzzers buy their throughput back with fleet parallelism (syzbot, G-Fuzz):
// many independent instances that trade discoveries. ShardedCampaign is that
// fleet in-process: each shard owns a full stack (SimKernel, engine,
// executors, observer, oracles, fuzzer) seeded with mix_seed(base, shard),
// runs its batches on its own std::jthread, and trades corpus entries and
// denylist learning through a CorpusHub epoch barrier after every batch.
//
// Determinism: a fixed (seed, shards, batches) triple yields a byte-stable
// merged report across runs and thread schedules. Each shard is sequential
// and isolated; the only cross-shard channel is the hub, whose epoch
// protocol is schedule-independent (see corpus_hub.h); and the merge is a
// deterministic fold in shard order (findings stable-sorted by
// (shard, source_round), crashes deduplicated by message in shard order,
// denylist as a sorted union, corpus merged shard-major).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "feedback/corpus_hub.h"

namespace torpedo::core {

struct ShardedConfig {
  // Per-shard campaign template. `seed` is the base seed: shard k runs with
  // mix_seed(seed, k), so shard 0 of any fleet reproduces the unsharded
  // campaign exactly.
  CampaignConfig base;
  int shards = 1;
  // Cross-shard corpus sync through the hub (ablation: off = fully
  // independent shards that only merge at the end).
  bool corpus_sync = true;
};

class ShardedCampaign {
 public:
  explicit ShardedCampaign(ShardedConfig config);
  ~ShardedCampaign();

  ShardedCampaign(const ShardedCampaign&) = delete;
  ShardedCampaign& operator=(const ShardedCampaign&) = delete;

  // Shard k's campaign seed. shard_seed(base, 0) == base.
  static std::uint64_t shard_seed(std::uint64_t base, int shard);

  // Optional per-shard wiring (live status, heartbeat, watchdog, trace
  // sinks). Both hooks run on the shard's worker thread: `start` right after
  // the Campaign is constructed (before seeding), `finish` after finalize()
  // while the stack is still alive. Must be installed before run().
  using ShardHook = std::function<void(int shard, Campaign& campaign)>;
  void set_shard_start_hook(ShardHook hook) { start_hook_ = std::move(hook); }
  void set_shard_finish_hook(ShardHook hook) {
    finish_hook_ = std::move(hook);
  }

  // Seeds every shard with this set instead of the default corpus.
  void set_seeds(std::vector<prog::Program> seeds) {
    seeds_ = std::move(seeds);
  }

  // Runs all shards to completion and returns the deterministic merged
  // report. Throws if any shard died on an internal check; surviving shards
  // are joined first (the hub barrier shrinks, nobody deadlocks).
  CampaignReport run();

  // Valid after run().
  const std::vector<CampaignReport>& shard_reports() const {
    return shard_reports_;
  }
  const feedback::Corpus& merged_corpus() const { return merged_corpus_; }
  const feedback::CorpusHub& hub() const { return *hub_; }
  const ShardedConfig& config() const { return config_; }

 private:
  struct ShardResult {
    CampaignReport report;
    std::vector<feedback::CorpusEntry> corpus;  // shard-local final corpus
    std::string error;  // non-empty if the shard died
  };

  void run_shard(int shard, ShardResult& result);
  CampaignReport merge(std::vector<ShardResult>& results);

  ShardedConfig config_;
  std::unique_ptr<feedback::CorpusHub> hub_;
  std::optional<std::vector<prog::Program>> seeds_;
  ShardHook start_hook_;
  ShardHook finish_hook_;
  std::vector<CampaignReport> shard_reports_;
  feedback::Corpus merged_corpus_;
};

}  // namespace torpedo::core
