// Seed corpus: Moonshine-style distilled traces.
//
// The paper evaluates with "hundreds of high quality seeds" from the
// Moonshine corpus — realistic, interface-coherent syscall sequences
// distilled from real program traces. That corpus is not redistributable, so
// this module generates an equivalent: a fixed set of hand-distilled seeds
// (including the exact programs from the paper's Appendix A) plus
// deterministic per-interface sequences that exercise one kernel interface
// each, in Torpedo's IR. See DESIGN.md §1 for the substitution rationale.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "prog/program.h"

namespace torpedo::core {

// The named seeds from the paper (Appendix A and §4.1): exact call
// sequences, usable directly by the table-reproduction benches.
//   "appendix-a1-prog0/1/2"  — baseline utilization programs (Table A.1)
//   "sync"                   — the sync(2) adversarial program (Table A.2)
//   "audit-oob"              — netlink-audit + socketpair program (Table A.3)
//   "gvisor-prog0/1/2"       — gVisor baseline programs (Table A.4)
//   "gvisor-open-crash"      — the §A.2.2 crash recreation
//   "fallocate-sigxfsz", "rt-sigreturn", "rseq-invalid",
//   "socket-modprobe", "fsync-flood"
std::optional<prog::Program> named_seed(const std::string& name);
std::vector<std::string> named_seed_names();

// A deterministic Moonshine-like corpus of `count` seeds. The first entries
// are the hand-distilled known-vulnerability recreations (§4.1 starts "by
// distilling a handful of seeds from C programs that recreate the
// vulnerabilities described in [21]"); the rest are per-interface sequences.
std::vector<prog::Program> moonshine_seeds(std::size_t count,
                                           std::uint64_t seed = 0x5EED);

}  // namespace torpedo::core
