// Confirmation & cause classification (§4.1.4).
//
// The paper confirms flagged programs by re-running them under an ftrace
// (trace-cmd) session and "searching for some of the patterns identified in
// [21]". Our kernel's event trace records exactly those deferral patterns,
// so classification is a count over the confirmation window.
#pragma once

#include <string>
#include <vector>

#include "exec/executor.h"
#include "kernel/kernel.h"
#include "oracle/oracle.h"
#include "prog/program.h"

namespace torpedo::core {

// One row of Table 4.2 / 4.3.
struct Finding {
  prog::Program program;  // minimized
  std::string serialized;
  std::vector<std::string> syscalls;  // distinct call names, program order
  std::vector<oracle::Violation> violations;
  std::string symptoms;  // condensed violation summary
  std::string cause;     // classified kernel interaction
  bool is_new = false;   // previously undocumented (Table 4.2 "New?" column)
  int source_round = -1;
  // Which campaign shard produced this finding; -1 in unsharded campaigns
  // (artifacts omit the dimension entirely, keeping sequential output
  // byte-identical).
  int shard = -1;

  std::string syscall_list() const;  // "sync, fsync"
};

struct CrashFinding {
  prog::Program program;
  std::string serialized;
  std::string message;
  bool reproduced = false;
  int source_round = -1;
  int shard = -1;  // -1 in unsharded campaigns
};

class CauseClassifier {
 public:
  explicit CauseClassifier(kernel::SimKernel& kernel) : kernel_(kernel) {}

  // Classifies the dominant deferral pattern in [from, to); `stats` supplies
  // signal/err detail (e.g. which fatal signal the coredumps came from).
  std::string classify(Nanos from, Nanos to,
                       const exec::RunStats& stats) const;

  // The Table-4.2 "New?" policy: everything except the modprobe pattern
  // reconfirms Gao et al.; the modprobe storm is the paper's new result.
  static bool is_new_cause(const std::string& cause);

 private:
  kernel::SimKernel& kernel_;
};

// Condenses violations into the "Symptoms" column text.
std::string summarize_symptoms(const std::vector<oracle::Violation>& v);

}  // namespace torpedo::core
