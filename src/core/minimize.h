// Oracle-guided minimization (Algorithm 3) and single-program confirmation.
//
// "We systematically remove calls from the program until we obtain the
// smallest set of calls that result in the originally observed oracle
// violations." Confirmation isolates one program per round: the program
// under test runs on executor 0 while the others run an idle (blocking)
// program, so the observed violations are attributable.
#pragma once

#include <vector>

#include "observer/observer.h"
#include "oracle/oracle.h"
#include "prog/program.h"

namespace torpedo::core {

// Runs one program at a time through the observer (other executors idle).
class SingleRunner {
 public:
  SingleRunner(observer::Observer& observer, oracle::Oracle& oracle);

  // One round with `program` on slot 0; returns the oracle violations.
  std::vector<oracle::Violation> violations(const prog::Program& program);

  const observer::RoundResult& last_round() const;
  int rounds_used() const { return rounds_used_; }

 private:
  observer::Observer& observer_;
  oracle::Oracle& oracle_;
  prog::Program idle_;
  int rounds_used_ = 0;
};

// True when the two violation lists report the same set of heuristics
// (subjects may legally move between cores run-to-run).
bool same_violations(const std::vector<oracle::Violation>& a,
                     const std::vector<oracle::Violation>& b);

// One attempted call removal during minimization — the provenance bundle
// records the whole sequence so a finding's shrink path is reproducible.
struct MinimizeStep {
  int call_index = -1;        // index of the call the trial removed
  std::string call_name;      // its syscall name
  bool kept_removal = false;  // violations held -> removal accepted
  std::size_t size_after = 0; // program size after this step
};

// Algorithm 3: remove calls one at a time, keeping each removal only if the
// violation set is unchanged. When `history` is non-null, every attempted
// removal is appended to it in trial order.
prog::Program minimize(const prog::Program& program, SingleRunner& runner,
                       std::vector<MinimizeStep>* history = nullptr);

}  // namespace torpedo::core
