// Oracle-guided minimization (Algorithm 3) and single-program confirmation.
//
// "We systematically remove calls from the program until we obtain the
// smallest set of calls that result in the originally observed oracle
// violations." Confirmation isolates one program per round: the program
// under test runs on executor 0 while the others run an idle (blocking)
// program, so the observed violations are attributable.
#pragma once

#include <vector>

#include "observer/observer.h"
#include "oracle/oracle.h"
#include "prog/program.h"

namespace torpedo::core {

// Runs one program at a time through the observer (other executors idle).
class SingleRunner {
 public:
  SingleRunner(observer::Observer& observer, oracle::Oracle& oracle);

  // One round with `program` on slot 0; returns the oracle violations.
  std::vector<oracle::Violation> violations(const prog::Program& program);

  const observer::RoundResult& last_round() const;
  int rounds_used() const { return rounds_used_; }

 private:
  observer::Observer& observer_;
  oracle::Oracle& oracle_;
  prog::Program idle_;
  int rounds_used_ = 0;
};

// True when the two violation lists report the same set of heuristics
// (subjects may legally move between cores run-to-run).
bool same_violations(const std::vector<oracle::Violation>& a,
                     const std::vector<oracle::Violation>& b);

// Algorithm 3: remove calls one at a time, keeping each removal only if the
// violation set is unchanged.
prog::Program minimize(const prog::Program& program, SingleRunner& runner);

}  // namespace torpedo::core
