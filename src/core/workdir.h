// Campaign workdir persistence.
//
// syz-manager keeps its corpus and crash reports in a working directory so
// campaigns can be stopped, inspected, and resumed; Torpedo inherits that
// workflow (§2.6.2, and §1.2's "Adding Seed Ingestion" contribution). This
// module serializes seed files, the corpus, and findings reports using the
// program text format, so artifacts are human-readable and diffable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/classify.h"
#include "feedback/corpus.h"
#include "prog/program.h"
#include "telemetry/json.h"

namespace torpedo::feedback {
class MutationEfficacy;
}  // namespace torpedo::feedback

namespace torpedo::core {

// --- seed files ---------------------------------------------------------------

// Writes one program per file ("seed-NNN.prog") under `dir`.
// Returns the number written.
std::size_t write_seed_files(const std::filesystem::path& dir,
                             const std::vector<prog::Program>& seeds);

// Loads every "*.prog" file under `dir` (sorted by name). Files that fail to
// parse are skipped and reported in `errors` when non-null.
std::vector<prog::Program> load_seed_files(
    const std::filesystem::path& dir,
    std::vector<std::string>* errors = nullptr);

// --- corpus -------------------------------------------------------------------

// Serializes the corpus to a single text file: for each entry a header line
// ("# score=<best> signal=<n> hash=<hex> parent=<hex> op=<name> round=<r>",
// plus " shard=<s>" for sharded campaigns) followed by the program text and
// a blank line. The hash field makes each entry self-describing, so
// `torpedo stats` can build lineage-depth histograms without re-hashing.
void save_corpus(const std::filesystem::path& file,
                 const feedback::Corpus& corpus);

// Reads a corpus file back; entries that fail to parse are skipped. Scores
// and lineage round-trip (older headers without lineage fields load as
// roots); the coverage signal is re-learned by running the programs.
std::size_t load_corpus(const std::filesystem::path& file,
                        feedback::Corpus& corpus);

// --- introspection artifacts --------------------------------------------------

// Writes the signal-growth time series as JSONL, shard-major: all of the
// first recorder's retained samples, then the second's, ... (torpedo run,
// the selftest replay, and the determinism tests share this so the artifact
// has exactly one byte layout). Null recorders are skipped.
void save_timeseries(
    const std::filesystem::path& file,
    std::span<const telemetry::TimeSeriesRecorder* const> recorders);

// Writes the per-operator mutation-efficacy table as one JSON object.
void save_mutation_efficacy(const std::filesystem::path& file,
                            const feedback::MutationEfficacy& efficacy);

// --- findings -----------------------------------------------------------------

// Human-readable findings report (one block per finding + crash).
void save_report(const std::filesystem::path& file,
                 const CampaignReport& report);

// --- campaign manifest --------------------------------------------------------

// Everything `torpedo selftest --replay` needs to re-execute a recorded
// campaign: the (seed, config) pair that, on the deterministic substrate,
// regenerates every artifact byte-for-byte. Saved as workdir/campaign.json
// by `torpedo run --workdir`.
struct CampaignManifest {
  std::string runtime = "runc";
  int batches = 8;
  int num_executors = 3;
  Nanos round_duration = 5 * kSecond;
  std::size_t num_seeds = 40;
  std::uint64_t seed = 0x7095ED0;
  int shards = 1;         // 1 == sequential campaign
  bool corpus_sync = true;
  // Snapshot-exec fast path. Artifacts are byte-identical either way; the
  // replay differ regenerates with whatever the manifest recorded.
  bool snapshot_exec = true;
  std::string seeds_dir;  // empty == default Moonshine-like corpus
  // > 0 marks a fleet merged workdir: the campaign was N coordinator-driven
  // worker processes (fleet/coordinator.h) and replay must re-run the fleet
  // from workdir/fleet.json instead of one Campaign.
  int fleet_workers = 0;

  static CampaignManifest from_config(const CampaignConfig& config);
  // Manifest fields over campaign defaults. Fields the manifest doesn't
  // carry (cost model, oracle thresholds, ...) must match the recording
  // binary's defaults for the replay to be byte-exact.
  CampaignConfig to_config() const;
};

void save_campaign_manifest(const std::filesystem::path& file,
                            const CampaignManifest& manifest);
std::optional<CampaignManifest> load_campaign_manifest(
    const std::filesystem::path& file);

// The manifest as a JSON object / parsed back from one, without the file
// I/O — the fleet manifest (fleet/manifest.h) embeds the same object as its
// "defaults" field.
telemetry::JsonDict campaign_manifest_to_dict(const CampaignManifest& m);
std::optional<CampaignManifest> parse_campaign_manifest(std::string_view text);
// Lenient variant for hand-written documents (the fleet manifest's
// "defaults"): missing keys keep their CampaignManifest defaults; keys that
// are present must still have the right type. campaign.json stays on the
// strict parser — it is always machine-written complete, and a replay must
// not silently fill in defaults for a field the recording carried.
std::optional<CampaignManifest> parse_campaign_manifest_lenient(
    std::string_view text);

}  // namespace torpedo::core
