// Campaign workdir persistence.
//
// syz-manager keeps its corpus and crash reports in a working directory so
// campaigns can be stopped, inspected, and resumed; Torpedo inherits that
// workflow (§2.6.2, and §1.2's "Adding Seed Ingestion" contribution). This
// module serializes seed files, the corpus, and findings reports using the
// program text format, so artifacts are human-readable and diffable.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/classify.h"
#include "feedback/corpus.h"
#include "prog/program.h"

namespace torpedo::core {

// --- seed files ---------------------------------------------------------------

// Writes one program per file ("seed-NNN.prog") under `dir`.
// Returns the number written.
std::size_t write_seed_files(const std::filesystem::path& dir,
                             const std::vector<prog::Program>& seeds);

// Loads every "*.prog" file under `dir` (sorted by name). Files that fail to
// parse are skipped and reported in `errors` when non-null.
std::vector<prog::Program> load_seed_files(
    const std::filesystem::path& dir,
    std::vector<std::string>* errors = nullptr);

// --- corpus -------------------------------------------------------------------

// Serializes the corpus to a single text file: for each entry a header line
// ("# score=<best> signal=<n>") followed by the program text and a blank
// line.
void save_corpus(const std::filesystem::path& file,
                 const feedback::Corpus& corpus);

// Reads a corpus file back; entries that fail to parse are skipped. Scores
// round-trip; the coverage signal is re-learned by running the programs.
std::size_t load_corpus(const std::filesystem::path& file,
                        feedback::Corpus& corpus);

// --- findings -----------------------------------------------------------------

// Human-readable findings report (one block per finding + crash).
void save_report(const std::filesystem::path& file,
                 const CampaignReport& report);

}  // namespace torpedo::core
