#include "core/minimize.h"

#include <algorithm>

#include "telemetry/span.h"
#include "util/check.h"

namespace torpedo::core {

namespace {

prog::Program make_idle_program() {
  // nanosleep(forever): blocks to the round deadline, contributing nothing.
  const prog::SyscallDesc* desc =
      prog::SyscallTable::instance().by_name("nanosleep");
  TORPEDO_CHECK(desc != nullptr);
  prog::Call call;
  call.desc = desc;
  call.args = {prog::ArgValue::lit(100'000'000'000ULL),
               prog::ArgValue::text("")};
  return prog::Program({call});
}

}  // namespace

SingleRunner::SingleRunner(observer::Observer& observer,
                           oracle::Oracle& oracle)
    : observer_(observer), oracle_(oracle), idle_(make_idle_program()) {}

std::vector<oracle::Violation> SingleRunner::violations(
    const prog::Program& program) {
  telemetry::ScopedSpan span(
      "confirm.single_run",
      telemetry::JsonDict{}.set("program_hash", program.hash()));
  std::vector<prog::Program> slots(observer_.executor_count(), idle_);
  TORPEDO_CHECK(!slots.empty());
  slots[0] = program;
  // Let daemon backlog from the previous confirmation round (journald
  // catch-up, helper stragglers) drain so it can't be attributed to this
  // program.
  observer_.warm_up(kSecond);
  const observer::RoundResult& rr = observer_.run_round(slots);
  ++rounds_used_;
  std::vector<oracle::Violation> raw;
  {
    telemetry::ScopedSpan flag_span("oracle.flag");
    raw = oracle_.flag(rr.observation);
  }
  // Executors 1..n ran the idle program on purpose; their quiet fuzz cores
  // are not evidence against the program under test.
  const int active_core =
      observer_.executor(0).container().group().effective_cpuset().first();
  const std::string active = "cpu" + std::to_string(active_core);
  std::vector<oracle::Violation> out;
  for (oracle::Violation& v : raw) {
    if (v.heuristic == "fuzz-core-utilization-low" && v.subject != active)
      continue;
    out.push_back(std::move(v));
  }
  return out;
}

const observer::RoundResult& SingleRunner::last_round() const {
  TORPEDO_CHECK(!observer_.log().empty());
  return observer_.log().back();
}

bool same_violations(const std::vector<oracle::Violation>& a,
                     const std::vector<oracle::Violation>& b) {
  auto names = [](const std::vector<oracle::Violation>& v) {
    std::vector<std::string> out;
    out.reserve(v.size());
    for (const oracle::Violation& violation : v)
      out.push_back(violation.heuristic);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };
  return names(a) == names(b);
}

prog::Program minimize(const prog::Program& program, SingleRunner& runner,
                       std::vector<MinimizeStep>* history) {
  telemetry::ScopedSpan span(
      "minimize", telemetry::JsonDict{}.set(
                      "calls", static_cast<std::uint64_t>(program.size())));
  const std::vector<oracle::Violation> reference =
      runner.violations(program);
  if (reference.empty()) return program;  // nothing to preserve

  prog::Program current = program;
  // Back-to-front so indices into the remaining prefix stay stable.
  for (int i = static_cast<int>(current.size()) - 1; i >= 0; --i) {
    if (current.size() <= 1) break;
    prog::Program trial = current;
    const std::string removed_name = trial.calls()[i].desc->name;
    trial.calls().erase(trial.calls().begin() + i);
    // Removing a producer re-binds or degrades dependent references; that is
    // exactly the paper's caveat that "potentially unnecessary calls must be
    // preserved to pass information to a later call" — if the rebind changes
    // behaviour, the violation set changes and we put the call back.
    for (prog::Call& call : trial.calls())
      for (prog::ArgValue& value : call.args)
        if (value.kind == prog::ArgValue::Kind::kResult) {
          if (value.result_of == i)
            value.result_of = -1;
          else if (value.result_of > i)
            --value.result_of;
        }
    trial.fixup();
    const bool kept = same_violations(reference, runner.violations(trial));
    if (kept) current = std::move(trial);
    if (history)
      history->push_back({i, removed_name, kept, current.size()});
  }
  return current;
}

}  // namespace torpedo::core
