#include "core/classify.h"

#include <algorithm>

#include "kernel/signals.h"
#include "util/strings.h"

namespace torpedo::core {

std::string Finding::syscall_list() const {
  std::string out;
  for (const std::string& s : syscalls) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

std::string CauseClassifier::classify(Nanos from, Nanos to,
                                      const exec::RunStats& stats) const {
  const kernel::KernelTrace& trace = kernel_.trace();
  const std::size_t modprobes =
      trace.count(kernel::TraceKind::kModprobe, from, to);
  const std::size_t coredumps =
      trace.count(kernel::TraceKind::kCoredump, from, to);
  const std::size_t flushes =
      trace.count(kernel::TraceKind::kIoFlush, from, to);
  const std::size_t audits = trace.count(kernel::TraceKind::kAudit, from, to);
  const std::size_t net =
      trace.count(kernel::TraceKind::kNetSoftirq, from, to);

  // Priority order: the most specific usermodehelper patterns first.
  if (modprobes >= 10) return "repeated kernel modprobe";
  if (coredumps >= 5) {
    std::string sig = stats.last_fatal_signal != 0
                          ? std::string(kernel::signal_name(
                                stats.last_fatal_signal))
                          : "fatal signal";
    return "coredump via " + sig;
  }
  if (flushes >= 20) return "triggering IO buffer flushes";
  if (audits >= 100) return "audit daemon workload (kauditd/journald)";
  if (net >= 1000) return "softirq packet processing";
  return "unclassified kernel interaction";
}

bool CauseClassifier::is_new_cause(const std::string& cause) {
  // Table 4.2: sync/coredump rows reconfirm [21]; the modprobe storm is new.
  return cause == "repeated kernel modprobe";
}

std::string summarize_symptoms(const std::vector<oracle::Violation>& v) {
  std::vector<std::string> parts;
  for (const oracle::Violation& violation : v) {
    if (std::find(parts.begin(), parts.end(), violation.heuristic) ==
        parts.end())
      parts.push_back(violation.heuristic);
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += "; ";
    out += p;
  }
  return out;
}

}  // namespace torpedo::core
