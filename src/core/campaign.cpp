#include "core/campaign.h"

#include <algorithm>
#include <unordered_set>

#include "core/seeds.h"
#include "feedback/mutation_efficacy.h"
#include "feedback/syscall_profile.h"
#include "telemetry/monitor.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace torpedo::core {

std::vector<bool> implicated_slots(
    const std::vector<oracle::Violation>& violations, std::size_t num_slots,
    const std::unordered_map<int, std::size_t>& core_to_slot) {
  std::vector<bool> implicated(num_slots, false);
  for (const oracle::Violation& v : violations) {
    bool matched = false;
    // A low fuzz core points at the executor pinned there — but only when
    // the pinning is real. With an empty map (unpinned executors) the
    // subject core says nothing about which program ran on it.
    if (v.heuristic == "fuzz-core-utilization-low" && !core_to_slot.empty()) {
      for (const auto& [core, slot] : core_to_slot) {
        if (slot < num_slots && v.subject == "cpu" + std::to_string(core)) {
          implicated[slot] = true;
          matched = true;
        }
      }
    }
    // Anything host-wide (or unattributable) implicates the whole batch.
    if (!matched)
      for (std::size_t i = 0; i < num_slots; ++i) implicated[i] = true;
  }
  return implicated;
}

namespace {

// Flags with every oracle at once (symptoms should include IO-wait and
// memory violations even when the CPU oracle is the score source).
class UnionOracle final : public oracle::Oracle {
 public:
  UnionOracle(oracle::CpuOracle& cpu, oracle::IoOracle& io,
              oracle::MemoryOracle& memory)
      : cpu_(cpu), io_(io), memory_(memory) {}
  std::string_view name() const override { return "union"; }
  double score(const observer::Observation& obs) const override {
    return cpu_.score(obs);
  }
  std::vector<oracle::Violation> flag(
      const observer::Observation& obs) const override {
    std::vector<oracle::Violation> out = cpu_.flag(obs);
    for (auto& v : io_.flag(obs)) out.push_back(std::move(v));
    for (auto& v : memory_.flag(obs)) out.push_back(std::move(v));
    return out;
  }

 private:
  oracle::CpuOracle& cpu_;
  oracle::IoOracle& io_;
  oracle::MemoryOracle& memory_;
};

// Mutants of one program share their syscall-name set; confirming a few
// representatives per set keeps the budget for genuinely distinct shapes.
std::string shape_key(const prog::Program& p) {
  std::vector<std::string> names;
  for (const prog::Call& call : p.calls()) names.push_back(call.desc->name);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string key;
  for (const std::string& n : names) key += n + ",";
  return key;
}

}  // namespace

// Accumulates flag-scan output round by round. Collecting suspects as rounds
// complete (instead of one batch pass at finalize) means a pruned round log
// loses no findings — a round's evidence is extracted before it can age out.
struct Campaign::ScanState {
  struct Suspect {
    prog::Program program;
    int round;
    std::size_t severity = 0;  // violations in the source round
    feedback::Lineage lineage;  // of the program in its flagged round
  };

  ScanState(oracle::CpuOracle& cpu, oracle::IoOracle& io,
            oracle::MemoryOracle& memory)
      : oracle(cpu, io, memory) {}

  UnionOracle oracle;
  std::vector<Suspect> suspects;
  std::vector<Suspect> crash_suspects;
  std::unordered_set<std::uint64_t> seen;
  std::unordered_map<std::string, int> shape_counts;
  // Finalize's own confirmation/minimization rounds must not re-enter the
  // scan; it disarms the hook before running them.
  bool enabled = true;
  bool core_map_ready = false;
  std::unordered_map<int, std::size_t> core_to_slot;
};

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {
  TORPEDO_CHECK(config_.num_executors > 0);
  config_.kernel.host.seed ^= config_.seed;
  // One switch drives every snapshot-exec fast path in the stack.
  config_.exec.snapshot_exec = config_.snapshot_exec;
  config_.observer.snapshot_exec = config_.snapshot_exec;
  config_.kernel.path_lookup_cache = config_.snapshot_exec;
  config_.kernel.epoch_fd_restore = config_.snapshot_exec;
  kernel_ = std::make_unique<kernel::SimKernel>(config_.kernel);
  if (config_.install_noise)
    sim::install_noise(kernel_->host(), config_.noise);

  runtime::EngineConfig engine_config;
  engine_config.ldisc_core =
      std::min(config_.num_executors, kernel_->host().num_cores() - 1);
  engine_config.seed = config_.seed;
  engine_ = std::make_unique<runtime::Engine>(*kernel_, engine_config);

  for (int i = 0; i < config_.num_executors; ++i) {
    runtime::ContainerSpec spec;
    spec.name = "fuzz" + std::to_string(i);
    spec.runtime = config_.runtime;
    spec.cpus = config_.cpus_per_container;
    spec.memory_bytes = config_.memory_bytes_per_container;
    if (config_.pin_executors) spec.cpuset_cpus = std::to_string(i);
    executors_.push_back(
        std::make_unique<exec::Executor>(*engine_, spec, config_.exec));
  }

  std::vector<exec::Executor*> raw;
  for (const auto& e : executors_) raw.push_back(e.get());
  observer::ObserverConfig obs_config = config_.observer;
  obs_config.round_duration = config_.round_duration;
  obs_config.side_band_core = engine_config.ldisc_core;
  observer_ =
      std::make_unique<observer::Observer>(*kernel_, std::move(raw), obs_config);

  cpu_oracle_ = std::make_unique<oracle::CpuOracle>(config_.cpu_oracle);
  io_oracle_ = std::make_unique<oracle::IoOracle>(config_.io_oracle);
  memory_oracle_ = std::make_unique<oracle::MemoryOracle>();
  scan_ = std::make_unique<ScanState>(*cpu_oracle_, *io_oracle_,
                                      *memory_oracle_);

  generator_ =
      std::make_unique<prog::Generator>(Rng(config_.seed), config_.gen);
  mutator_ = std::make_unique<prog::Mutator>(*generator_, config_.mutate);
  fuzzer_ = std::make_unique<TorpedoFuzzer>(*observer_, *cpu_oracle_,
                                            *generator_, *mutator_, corpus_,
                                            config_.fuzzer);

  // Let the container setup helpers and daemons settle before measuring.
  observer_->warm_up(kSecond);

  observer_->set_round_hook(
      [this](const observer::RoundResult& rr) { on_round(rr); });
}

Campaign::~Campaign() = default;

void Campaign::load_default_seeds() {
  load_seeds(moonshine_seeds(config_.num_seeds, config_.seed));
}

void Campaign::load_seeds(std::vector<prog::Program> seeds) {
  for (prog::Program& p : seeds) fuzzer_->add_seed(std::move(p));
}

BatchResult Campaign::run_one_batch() {
  ++batches_run_;
  if (live_status_) live_status_->on_batch(batches_run_ - 1);
  telemetry::ScopedSpan span(
      "campaign.batch",
      telemetry::JsonDict{}.set("batch", batches_run_ - 1));
  BatchResult result = fuzzer_->run_batch();
  // Re-arm after a watchdog-forced retirement so the next batch starts
  // fresh instead of aborting on sight.
  if (result.aborted && watchdog_) watchdog_->clear_abort();
  // Safe point for log retention: the incremental scan consumed every round
  // of this batch as it completed, and the fuzzer's references into the log
  // die with run_batch.
  observer_->prune_log();
  if (trace_) {
    telemetry::JsonDict record;
    record.set("batch", batches_run_ - 1)
        .set("rounds", result.rounds)
        .set("baseline_score", result.baseline_score)
        .set("best_score", result.best_score)
        .set("improvements", result.improvements)
        .set("rejected_confirms", result.rejected_confirms)
        .set("corpus_signal_round", result.corpus_signal_round)
        .set("corpus_size", static_cast<std::uint64_t>(corpus_.size()))
        .set("saw_crash", result.saw_crash);
    trace_->write("batch", kernel_->host().now(), record);
  }
  return result;
}

void Campaign::set_trace_sink(telemetry::TraceSink* sink) {
  trace_ = sink;
  observer_->set_trace_sink(sink);
}

void Campaign::set_live_status(telemetry::LiveStatus* status) {
  live_status_ = status;
  if (live_status_)
    live_status_->begin_campaign(config_.batches, executors_.size());
}

void Campaign::set_heartbeat(telemetry::HeartbeatWriter* heartbeat) {
  heartbeat_ = heartbeat;
}

void Campaign::set_timeseries(telemetry::TimeSeriesRecorder* timeseries) {
  timeseries_ = timeseries;
}

void Campaign::set_watchdog(telemetry::Watchdog* watchdog) {
  watchdog_ = watchdog;
  const std::atomic<bool>* flag =
      watchdog_ ? &watchdog_->abort_flag() : nullptr;
  fuzzer_->set_abort_flag(flag);
  // Also arm every executor: the fuzzer only polls the flag at round
  // boundaries, so a single wall-expensive round (a fault-injected
  // infinite-EINTR loop, say) would spin past the watchdog without the
  // mid-round iteration check.
  for (const auto& executor : executors_) executor->set_abort_flag(flag);
}

void Campaign::on_round(const observer::RoundResult& rr) {
  if (scan_->enabled) scan_round(rr);
  for (const exec::RunStats& s : rr.stats) live_executions_ += s.executions;
  if (timeseries_) {
    telemetry::RoundSample sample;
    sample.round = rr.round;
    sample.sim_ns = kernel_->host().now();
    sample.executions = live_executions_;
    sample.corpus_size = corpus_.size();
    sample.distinct_signals = corpus_.coverage().size();
    sample.violations = violations_flagged_;
    if (timeseries_->record(sample))
      telemetry::global().counter("campaign.plateaus").inc();
    if (live_status_)
      live_status_->on_signal_growth(timeseries_->rounds_since_growth(),
                                     timeseries_->plateaus(),
                                     timeseries_->in_plateau());
  }
  if (live_status_) {
    std::vector<telemetry::LiveStatus::ExecutorState> states;
    states.reserve(rr.stats.size());
    for (std::size_t i = 0; i < rr.stats.size(); ++i) {
      telemetry::LiveStatus::ExecutorState state;
      state.name = i < executors_.size()
                       ? executors_[i]->container().spec().name
                       : "exec" + std::to_string(i);
      state.executions = rr.stats[i].executions;
      state.crashed = rr.stats[i].crashed;
      states.push_back(std::move(state));
    }
    live_status_->on_round(rr.round, kernel_->host().now(), live_executions_,
                           std::move(states));
  }
  if (heartbeat_)
    heartbeat_->stamp(kernel_->host().now(), batches_run_ - 1, rr.round,
                      live_executions_);
}

void Campaign::scan_round(const observer::RoundResult& rr) {
  ScanState& scan = *scan_;
  if (!scan.core_map_ready) {
    // Per-core attribution needs the *actual* cpusets: when executors are
    // not each pinned to their own core (pin_executors == false), the map is
    // empty and every violation implicates the whole batch.
    scan.core_to_slot = executor_core_map();
    scan.core_map_ready = true;
  }
  const std::vector<oracle::Violation> violations =
      scan.oracle.flag(rr.observation);
  violations_flagged_ += violations.size();
  const std::vector<bool> implicated =
      implicated_slots(violations, rr.programs.size(), scan.core_to_slot);
  // Per-operator attribution: each implicated slot charges one violation to
  // the operator that produced the program running there (slot order matches
  // round_lineage(): the fuzzer rotates lineage with shuffle rounds).
  const std::span<const feedback::Lineage> lineage = fuzzer_->round_lineage();
  if (feedback::MutationEfficacy* eff = feedback::mutation_efficacy()) {
    if (!violations.empty())
      for (std::size_t i = 0; i < rr.programs.size() && i < lineage.size();
           ++i)
        if (implicated[i]) eff->record_violation(lineage[i].op);
  }
  // Per-syscall attribution: each flag implication credits the distinct
  // syscall numbers of the implicated program.
  if (feedback::SyscallProfile* profile = feedback::syscall_profile()) {
    for (std::size_t i = 0; i < rr.programs.size(); ++i) {
      if (!implicated[i]) continue;
      std::unordered_set<int> nrs;
      for (const prog::Call& call : rr.programs[i].calls())
        nrs.insert(call.desc->nr);
      for (const int nr : nrs) profile->record_implication(nr);
    }
  }
  for (std::size_t i = 0; i < rr.programs.size(); ++i) {
    const prog::Program& p = rr.programs[i];
    const feedback::Lineage lin =
        i < lineage.size() ? lineage[i] : feedback::Lineage{};
    if (i < rr.stats.size() && rr.stats[i].crashed) {
      if (scan.seen.insert(p.hash() ^ 0xC4A54ULL).second)
        scan.crash_suspects.push_back({p, rr.round, 0, lin});
      continue;
    }
    if (implicated[i] && scan.seen.insert(p.hash()).second &&
        scan.shape_counts[shape_key(p)]++ < 3)
      scan.suspects.push_back({p, rr.round, violations.size(), lin});
  }
}

std::unordered_map<int, std::size_t> Campaign::executor_core_map() const {
  std::unordered_map<int, std::size_t> map;
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    const cgroup::CpuSet cpus =
        executors_[i]->container().group().effective_cpuset();
    if (cpus.count() != 1) return {};
    if (!map.emplace(cpus.first(), i).second) return {};
  }
  return map;
}

CampaignReport Campaign::run() {
  telemetry::ScopedSpan span("campaign.run");
  if (fuzzer_->pending() == 0) load_default_seeds();
  for (int b = 0; b < config_.batches; ++b) {
    const BatchResult result = run_one_batch();
    TORPEDO_LOG(LogLevel::kInfo,
                "batch %d: rounds=%d baseline=%.1f best=%.1f improvements=%d",
                b, result.rounds, result.baseline_score, result.best_score,
                result.improvements);
  }
  return finalize();
}

CampaignReport Campaign::finalize() {
  telemetry::ScopedSpan finalize_span("campaign.finalize");
  // Disarm the incremental scan: the confirmation/minimization rounds below
  // are diagnostic re-runs, not campaign evidence.
  scan_->enabled = false;
  CampaignReport report;
  report.batches = batches_run_;
  report.denylist = fuzzer_->denylist();

  // ---- flag-scan results (§3.6.1, collected incrementally per round) ------
  const std::uint64_t flag_scan_span =
      telemetry::spans() ? telemetry::spans()->begin("finalize.flag_scan") : 0;
  report.rounds = observer_->rounds_run();
  report.executions = fuzzer_->total_executions();
  report.corpus_size = corpus_.size();

  using Suspect = ScanState::Suspect;
  std::vector<Suspect> suspects = std::move(scan_->suspects);
  std::vector<Suspect> crash_suspects = std::move(scan_->crash_suspects);
  UnionOracle& union_oracle = scan_->oracle;
  // Interleave across shapes so one prolific mutant family can't starve the
  // confirmation budget: order shape groups by their best severity, then
  // take one suspect per group round-robin.
  {
    std::vector<std::pair<std::string, std::vector<Suspect>>> groups;
    for (Suspect& s : suspects) {
      const std::string key = shape_key(s.program);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == key; });
      if (it == groups.end()) {
        groups.emplace_back(key, std::vector<Suspect>{});
        it = groups.end() - 1;
      }
      it->second.push_back(std::move(s));
    }
    std::stable_sort(groups.begin(), groups.end(),
                     [](const auto& a, const auto& b) {
                       auto best = [](const std::vector<Suspect>& v) {
                         std::size_t m = 0;
                         for (const Suspect& s : v)
                           m = std::max(m, s.severity);
                         return m;
                       };
                       return best(a.second) > best(b.second);
                     });
    suspects.clear();
    for (std::size_t pass = 0;; ++pass) {
      bool any = false;
      for (auto& [key, group] : groups) {
        if (pass < group.size()) {
          suspects.push_back(std::move(group[pass]));
          any = true;
        }
      }
      if (!any) break;
    }
  }

  report.suspects = static_cast<int>(suspects.size());
  report.crash_suspects = static_cast<int>(crash_suspects.size());
  if (telemetry::spans()) telemetry::spans()->end(flag_scan_span);

  // ---- confirmation + minimization + classification ------------------------
  SingleRunner runner(*observer_, union_oracle);
  CauseClassifier classifier(*kernel_);
  std::unordered_set<std::string> dedup;

  std::size_t confirmations = 0;
  for (const Suspect& suspect : suspects) {
    if (confirmations >= config_.max_confirmations) break;
    ++confirmations;

    telemetry::ScopedSpan confirm_span(
        "finalize.confirm", telemetry::JsonDict{}
                                .set("program_hash", suspect.program.hash())
                                .set("source_round", suspect.round));
    std::vector<oracle::Violation> violations =
        runner.violations(suspect.program);
    if (violations.empty()) continue;  // innocent batch member

    // A program that merely blocks all round leaves its own core quiet and
    // nothing else; the paper treats these as "thoroughly uninteresting"
    // (denylist bait), not findings.
    const bool blocked_only =
        runner.last_round().stats[0].executions <= 3 &&
        std::all_of(violations.begin(), violations.end(),
                    [](const oracle::Violation& v) {
                      return v.heuristic == "fuzz-core-utilization-low";
                    });
    if (blocked_only) continue;

    SingleRunner confirm_runner(*observer_, union_oracle);
    std::vector<MinimizeStep> minimize_history;
    prog::Program minimized =
        minimize(suspect.program, confirm_runner, &minimize_history);

    // Classification window: rerun the minimized program once.
    std::vector<oracle::Violation> final_violations =
        confirm_runner.violations(minimized);
    if (final_violations.empty()) final_violations = violations;
    const observer::Observation& window =
        confirm_runner.last_round().observation;
    const exec::RunStats& stats = confirm_runner.last_round().stats[0];

    Finding finding;
    finding.program = minimized;
    finding.serialized = minimized.serialize();
    for (const prog::Call& call : minimized.calls()) {
      if (std::find(finding.syscalls.begin(), finding.syscalls.end(),
                    call.desc->name) == finding.syscalls.end())
        finding.syscalls.push_back(call.desc->name);
    }
    finding.violations = final_violations;
    finding.symptoms = summarize_symptoms(final_violations);
    finding.cause = classifier.classify(window.window_start,
                                        window.window_end, stats);
    finding.is_new = CauseClassifier::is_new_cause(finding.cause);
    finding.source_round = suspect.round;

    const std::string key = finding.syscall_list() + "|" + finding.cause;
    if (dedup.insert(key).second) {
      // Capture the causal evidence while the confirmation window is still
      // at hand: the full observation, the kernel trace slice, and the
      // confirm/minimize history (the flight-recorder bundle payload).
      Provenance prov;
      prov.finding_index = static_cast<int>(report.findings.size());
      prov.original_serialized = suspect.program.serialize();
      prov.minimized_serialized = finding.serialized;
      prov.program_hash = minimized.hash();
      prov.source_round = suspect.round;
      prov.confirm_rounds = confirm_runner.rounds_used() + 1;
      prov.oracle_score = union_oracle.score(window);
      prov.cause = finding.cause;
      prov.symptoms = finding.symptoms;
      prov.syscalls = finding.syscall_list();
      prov.initial_violations = std::move(violations);
      prov.final_violations = finding.violations;
      prov.observation = window;
      prov.trace_events =
          kernel_->trace().window(window.window_start, window.window_end);
      prov.minimize_history = std::move(minimize_history);
      // Ancestry chain: the suspect itself, then each splice donor walked
      // through the corpus. Donors are corpus-resident by construction;
      // the guard bounds pathological cycles.
      {
        feedback::Lineage lin = suspect.lineage;
        std::uint64_t hash = suspect.program.hash();
        for (int depth = 0; depth < 32; ++depth) {
          LineageLink link;
          link.hash = hash;
          link.parent_hash = lin.parent_hash;
          link.op = std::string(feedback::origin_op_name(lin.op));
          // The suspect never retired into the corpus, so its own lineage
          // carries no birth round; its flagged round stands in.
          link.round = lin.birth_round >= 0 ? lin.birth_round : suspect.round;
          link.shard = lin.birth_shard;
          prov.lineage.push_back(std::move(link));
          if (lin.parent_hash == 0) break;
          const feedback::CorpusEntry* parent = corpus_.find(lin.parent_hash);
          if (parent == nullptr) break;
          hash = lin.parent_hash;
          lin = parent->lineage;
        }
      }
      report.provenance.push_back(std::move(prov));
      report.findings.push_back(std::move(finding));
    }
  }

  // ---- runtime crash reports ------------------------------------------------
  {
    telemetry::ScopedSpan crash_span(
        "finalize.crash_repro",
        telemetry::JsonDict{}.set(
            "suspects", static_cast<std::uint64_t>(crash_suspects.size())));
    std::unordered_set<std::string> crash_dedup;
    for (const Suspect& suspect : crash_suspects) {
      CrashFinding crash;
      crash.program = suspect.program;
      crash.serialized = suspect.program.serialize();
      crash.source_round = suspect.round;
      // Reproduce in a fresh container: one confirmation round.
      (void)runner.violations(suspect.program);
      const observer::RoundResult& rr = runner.last_round();
      crash.reproduced = rr.any_crash;
      crash.message = rr.stats.empty() ? "" : rr.stats[0].crash_message;
      if (crash.message.empty()) crash.message = "container crashed";
      // The paper reports distinct *bugs*, not every mutant that trips the
      // same one: dedup by panic message.
      if (crash_dedup.insert(crash.message).second)
        report.crashes.push_back(std::move(crash));
    }
  }

  report.confirmations_run = static_cast<int>(confirmations);

  telemetry::Registry& metrics = telemetry::global();
  metrics.counter("campaign.suspects")
      .inc(static_cast<std::uint64_t>(report.suspects));
  metrics.counter("campaign.crash_suspects")
      .inc(static_cast<std::uint64_t>(report.crash_suspects));
  metrics.counter("campaign.confirmations")
      .inc(static_cast<std::uint64_t>(report.confirmations_run));
  metrics.counter("campaign.findings")
      .inc(report.findings.size());
  metrics.counter("campaign.crash_findings")
      .inc(report.crashes.size());
  metrics.gauge("campaign.corpus_size")
      .set(static_cast<double>(report.corpus_size));

  if (live_status_)
    live_status_->on_findings(report.findings.size(), report.crashes.size());

  if (trace_) {
    telemetry::JsonDict record;
    record.set("batches", report.batches)
        .set("rounds", report.rounds)
        .set("executions", report.executions)
        .set("suspects", report.suspects)
        .set("crash_suspects", report.crash_suspects)
        .set("confirmations", report.confirmations_run)
        .set("findings", static_cast<std::uint64_t>(report.findings.size()))
        .set("crashes", static_cast<std::uint64_t>(report.crashes.size()))
        .set("corpus_size", static_cast<std::uint64_t>(report.corpus_size))
        .set("denylist_size",
             static_cast<std::uint64_t>(report.denylist.size()));
    trace_->write("campaign", kernel_->host().now(), record);
  }

  return report;
}

}  // namespace torpedo::core
