#include "core/workdir.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "feedback/mutation_efficacy.h"
#include "telemetry/json.h"
#include "telemetry/timeseries.h"
#include "util/strings.h"

namespace torpedo::core {

namespace fs = std::filesystem;

std::size_t write_seed_files(const fs::path& dir,
                             const std::vector<prog::Program>& seeds) {
  fs::create_directories(dir);
  std::size_t written = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const fs::path file = dir / format("seed-%03zu.prog", i);
    std::ofstream out(file);
    if (!out) continue;
    out << seeds[i].serialize();
    ++written;
  }
  return written;
}

std::vector<prog::Program> load_seed_files(const fs::path& dir,
                                           std::vector<std::string>* errors) {
  std::vector<prog::Program> seeds;
  if (!fs::exists(dir)) return seeds;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".prog")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto program = prog::Program::parse(buffer.str());
    if (program && !program->empty()) {
      seeds.push_back(std::move(*program));
    } else if (errors) {
      errors->push_back(file.string() + ": parse error");
    }
  }
  return seeds;
}

void save_corpus(const fs::path& file, const feedback::Corpus& corpus) {
  if (file.has_parent_path()) fs::create_directories(file.parent_path());
  std::ofstream out(file);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const feedback::CorpusEntry& entry = corpus.entry(i);
    const feedback::Lineage& lin = entry.lineage;
    out << format("# score=%.4f signal=%zu hash=%016llx parent=%016llx "
                  "op=%s round=%d",
                  entry.best_score, entry.signal.size(),
                  static_cast<unsigned long long>(entry.program.hash()),
                  static_cast<unsigned long long>(lin.parent_hash),
                  std::string(feedback::origin_op_name(lin.op)).c_str(),
                  lin.birth_round);
    // The shard dimension exists only in sharded campaigns; unsharded
    // corpus files keep their historical shape.
    if (lin.birth_shard >= 0) out << format(" shard=%d", lin.birth_shard);
    out << "\n" << entry.program.serialize() << "\n";
  }
}

std::size_t load_corpus(const fs::path& file, feedback::Corpus& corpus) {
  std::ifstream in(file);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  double score = 0;
  feedback::Lineage lineage;
  std::string block;
  auto flush = [&] {
    if (block.empty()) return;
    auto program = prog::Program::parse(block);
    if (program && !program->empty()) {
      // Coverage signal is execution-derived; start empty and let the next
      // campaign re-learn it.
      if (corpus.add(std::move(*program), feedback::SignalSet{}, score,
                     lineage))
        ++loaded;
    }
    block.clear();
    score = 0;
    lineage = {};
  };
  while (std::getline(in, line)) {
    if (starts_with(line, "# score=")) {
      flush();
      const auto fields = split_ws(line);
      for (const auto field : fields) {
        if (starts_with(field, "score=")) {
          score = std::atof(std::string(field.substr(6)).c_str());
        } else if (starts_with(field, "parent=")) {
          lineage.parent_hash = std::strtoull(
              std::string(field.substr(7)).c_str(), nullptr, 16);
        } else if (starts_with(field, "op=")) {
          if (auto op = feedback::origin_op_from_name(field.substr(3)))
            lineage.op = *op;
        } else if (starts_with(field, "round=")) {
          lineage.birth_round =
              std::atoi(std::string(field.substr(6)).c_str());
        } else if (starts_with(field, "shard=")) {
          lineage.birth_shard =
              std::atoi(std::string(field.substr(6)).c_str());
        }
      }
      continue;
    }
    if (trim(line).empty()) {
      flush();
      continue;
    }
    block += std::string(line) + "\n";
  }
  flush();
  return loaded;
}

void save_timeseries(
    const fs::path& file,
    std::span<const telemetry::TimeSeriesRecorder* const> recorders) {
  if (file.has_parent_path()) fs::create_directories(file.parent_path());
  std::ofstream out(file);
  for (const telemetry::TimeSeriesRecorder* recorder : recorders)
    if (recorder != nullptr) recorder->flush_jsonl(out);
}

void save_mutation_efficacy(const fs::path& file,
                            const feedback::MutationEfficacy& efficacy) {
  if (file.has_parent_path()) fs::create_directories(file.parent_path());
  std::ofstream out(file);
  out << efficacy.to_json() << "\n";
}

void save_report(const fs::path& file, const CampaignReport& report) {
  if (file.has_parent_path()) fs::create_directories(file.parent_path());
  std::ofstream out(file);
  out << format(
      "# TORPEDO campaign report\n# batches=%d rounds=%d executions=%llu "
      "corpus=%zu\n\n",
      report.batches, report.rounds,
      static_cast<unsigned long long>(report.executions), report.corpus_size);
  for (const Finding& f : report.findings) {
    out << "== finding: " << f.syscall_list() << " ==\n";
    out << "cause: " << f.cause << (f.is_new ? " (new)" : " (reconfirm)")
        << "\n";
    out << "symptoms: " << f.symptoms << "\n";
    // Shard provenance exists only for sharded campaigns; sequential reports
    // stay byte-identical.
    if (f.shard >= 0) out << format("shard: %d\n", f.shard);
    // One structured record per violation: grep-able by humans, parseable by
    // tooling without reverse-engineering the prose format.
    for (const oracle::Violation& v : f.violations)
      out << "violation: " << v.to_json().to_string() << "\n";
    out << f.serialized << "\n";
  }
  for (const CrashFinding& crash : report.crashes) {
    out << "== crash ==\n";
    out << "message: " << crash.message << "\n";
    out << "reproduced: " << (crash.reproduced ? "yes" : "no") << "\n";
    if (crash.shard >= 0) out << format("shard: %d\n", crash.shard);
    out << crash.serialized << "\n";
  }
}

CampaignManifest CampaignManifest::from_config(const CampaignConfig& config) {
  CampaignManifest m;
  m.runtime = std::string(runtime::runtime_name(config.runtime));
  m.batches = config.batches;
  m.num_executors = config.num_executors;
  m.round_duration = config.round_duration;
  m.num_seeds = config.num_seeds;
  m.seed = config.seed;
  m.snapshot_exec = config.snapshot_exec;
  return m;
}

CampaignConfig CampaignManifest::to_config() const {
  CampaignConfig config;
  if (auto kind = runtime::runtime_from_name(runtime)) config.runtime = *kind;
  config.batches = batches;
  config.num_executors = num_executors;
  config.round_duration = round_duration;
  config.num_seeds = num_seeds;
  config.seed = seed;
  config.snapshot_exec = snapshot_exec;
  return config;
}

telemetry::JsonDict campaign_manifest_to_dict(const CampaignManifest& m) {
  telemetry::JsonDict doc;
  doc.set("runtime", m.runtime)
      .set("batches", m.batches)
      .set("num_executors", m.num_executors)
      .set("round_duration_ns", m.round_duration)
      .set("num_seeds", static_cast<std::int64_t>(m.num_seeds))
      .set("seed", static_cast<std::int64_t>(m.seed))
      .set("shards", m.shards)
      .set("corpus_sync", m.corpus_sync)
      .set("snapshot_exec", m.snapshot_exec)
      .set("seeds_dir", m.seeds_dir);
  // Only fleet merged workdirs carry the marker; sequential and sharded
  // manifests keep their pre-fleet byte layout.
  if (m.fleet_workers > 0) doc.set("fleet_workers", m.fleet_workers);
  return doc;
}

void save_campaign_manifest(const fs::path& file,
                            const CampaignManifest& manifest) {
  if (file.has_parent_path()) fs::create_directories(file.parent_path());
  std::ofstream out(file);
  out << campaign_manifest_to_dict(manifest).to_string() << "\n";
}

namespace {

std::optional<CampaignManifest> parse_manifest_impl(std::string_view text,
                                                    bool require_all) {
  auto object = telemetry::parse_json_object(trim(text));
  if (!object) return std::nullopt;

  CampaignManifest m;
  auto num = [&](const char* key, auto& field) -> bool {
    auto it = object->find(key);
    if (it == object->end()) return !require_all;
    if (it->second.kind != telemetry::JsonValue::Kind::kNumber ||
        !it->second.is_integer)
      return false;
    field = static_cast<std::remove_reference_t<decltype(field)>>(
        it->second.integer);
    return true;
  };
  if (auto it = object->find("runtime");
      it != object->end() &&
      it->second.kind == telemetry::JsonValue::Kind::kString)
    m.runtime = it->second.text;
  if (!num("batches", m.batches) || !num("num_executors", m.num_executors) ||
      !num("round_duration_ns", m.round_duration) ||
      !num("num_seeds", m.num_seeds) || !num("seed", m.seed) ||
      !num("shards", m.shards))
    return std::nullopt;
  if (auto it = object->find("corpus_sync");
      it != object->end() &&
      it->second.kind == telemetry::JsonValue::Kind::kBool)
    m.corpus_sync = it->second.boolean;
  // Optional for manifests recorded before the snapshot-exec fast path
  // existed; those campaigns ran the equivalent of snapshot-exec on.
  if (auto it = object->find("snapshot_exec");
      it != object->end() &&
      it->second.kind == telemetry::JsonValue::Kind::kBool)
    m.snapshot_exec = it->second.boolean;
  if (auto it = object->find("seeds_dir");
      it != object->end() &&
      it->second.kind == telemetry::JsonValue::Kind::kString)
    m.seeds_dir = it->second.text;
  // Optional: absent in every pre-fleet manifest.
  if (auto it = object->find("fleet_workers");
      it != object->end() &&
      it->second.kind == telemetry::JsonValue::Kind::kNumber)
    m.fleet_workers = static_cast<int>(it->second.integer);
  return m;
}

}  // namespace

std::optional<CampaignManifest> parse_campaign_manifest(
    std::string_view text) {
  return parse_manifest_impl(text, /*require_all=*/true);
}

std::optional<CampaignManifest> parse_campaign_manifest_lenient(
    std::string_view text) {
  return parse_manifest_impl(text, /*require_all=*/false);
}

std::optional<CampaignManifest> load_campaign_manifest(const fs::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_campaign_manifest(buffer.str());
}

}  // namespace torpedo::core
