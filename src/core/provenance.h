// Violation provenance bundles (the causal flight recorder's payload).
//
// The paper's findings are only as good as their evidence: the per-core
// jiffy deltas, the top(1) rows, and the KernelTrace deferral events the
// §4.1.4 trace-cmd workflow inspects. When a flagged program survives
// confirmation, Campaign::finalize captures all of that — plus the
// confirm/minimize history and the oracle's score/threshold math — into a
// Provenance record. write_violation_bundles() persists each record as a
// self-contained `workdir/violations/NNN/` directory:
//
//   bundle.json    machine-readable evidence (torpedo report consumes this)
//   report.md      the same story for a human triager
//   program.prog   the minimized program, runnable via `torpedo exec`
//   original.prog  the un-minimized suspect from the flagged round
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/minimize.h"
#include "kernel/trace.h"
#include "observer/observation.h"
#include "oracle/oracle.h"
#include "telemetry/json.h"

namespace torpedo::core {

struct CampaignReport;

// One step of a finding's ancestry chain, oldest last: the suspect program
// itself first, then each splice donor walking parent_hash links through the
// corpus. `parent_hash == 0` terminates (root seed / generated program).
struct LineageLink {
  std::uint64_t hash = 0;         // program content hash at this step
  std::uint64_t parent_hash = 0;  // splice donor; 0 == root
  std::string op;                 // origin operator name ("splice", ...)
  int round = -1;                 // birth round (-1: suspect never retired)
  int shard = -1;                 // birth shard (-1: unsharded)
};

// Everything needed to reproduce and explain one confirmed finding.
struct Provenance {
  int finding_index = -1;  // index into CampaignReport::findings
  int shard = -1;  // producing shard; -1 (omitted from bundles) when unsharded
  std::string original_serialized;   // suspect as flagged in the round log
  std::string minimized_serialized;  // after Algorithm 3
  std::uint64_t program_hash = 0;    // minimized program (dedup signature)
  int source_round = -1;
  int confirm_rounds = 0;            // observer rounds spent on this finding
  double oracle_score = 0;           // union-oracle score of the final window
  std::string cause;                 // KernelTrace classification
  std::string symptoms;
  std::string syscalls;              // "sync, fsync"
  std::vector<oracle::Violation> initial_violations;  // first confirmation
  std::vector<oracle::Violation> final_violations;    // minimized rerun
  observer::Observation observation;                  // final window, full
  std::vector<kernel::TraceEvent> trace_events;       // KernelTrace window
  std::vector<MinimizeStep> minimize_history;
  // Ancestry of the (un-minimized) suspect: suspect first, oldest donor last.
  std::vector<LineageLink> lineage;
};

// --- JSON renderers (hand-rolled, exact int64 like the rest of telemetry) ---

// Full Observation: window stamps, aggregate + per-core jiffies by /proc/stat
// category, top(1) rows, per-container accounting, and oracle context.
telemetry::JsonDict observation_to_json(const observer::Observation& obs);

// KernelTrace events as a JSON array: [{"time_ns":..,"kind":..,"pid":..,
// "detail":..}, ...].
std::string trace_events_to_json(
    const std::vector<kernel::TraceEvent>& events);

// The whole bundle (the contents of bundle.json).
telemetry::JsonDict provenance_to_json(const Provenance& p, int bundle_id);

// Human-readable markdown companion.
std::string provenance_report_md(const Provenance& p, int bundle_id);

// Writes `<workdir>/violations/NNN/` for every provenance record in the
// report. Returns the number of bundles written.
std::size_t write_violation_bundles(const std::filesystem::path& workdir,
                                    const CampaignReport& report);

}  // namespace torpedo::core
